// Package floorplan is a library for floorplan area optimization over fixed
// topologies, reproducing the system of Wang and Wong:
//
//	"A Graph Theoretic Technique to Speed up Floorplan Area Optimization"
//	(DAC 1992 / UT Austin TR-91-26),
//
// including the host optimizer of Wang–Wong DAC'90 it builds on, the
// constrained-shortest-path implementation-selection algorithms R_Selection
// and L_Selection that are the paper's contribution, Stockmeyer's slicing
// baseline, and the paper's evaluation harness.
//
// # Quick start
//
//	tree := floorplan.Wheel(
//	    floorplan.Leaf("nw"), floorplan.Leaf("ne"), floorplan.Leaf("se"),
//	    floorplan.Leaf("sw"), floorplan.Leaf("c"))
//	lib := floorplan.Library{
//	    "nw": {{W: 4, H: 7}}, "ne": {{W: 6, H: 4}}, "se": {{W: 3, H: 6}},
//	    "sw": {{W: 7, H: 3}}, "c": {{W: 3, H: 3}},
//	}
//	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
//	// res.Best is the minimum-area envelope; res.Placement the realization.
//
// To bound memory on large floorplans the way the paper does, set
// Options.Selection:
//
//	res, err = floorplan.Optimize(tree, lib, floorplan.Options{
//	    Selection: floorplan.Selection{K1: 40, K2: 2000, Theta: 0.5, S: 500},
//	})
//
// The packages under internal/ hold the implementation: shape lists, the
// CSPP solver, the selection algorithms, tree restructuring, combination
// operators, the optimizer, and the experiment harness.
package floorplan

import (
	"context"
	"io"
	"math/rand"

	"floorplan/internal/cache"
	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/render"
	"floorplan/internal/reqid"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/stockmeyer"
	"floorplan/internal/telemetry"
)

// Impl is a rectangular implementation (width, height).
type Impl = shape.RImpl

// LShape is an L-shaped implementation (the paper's 4-tuple).
type LShape = shape.LImpl

// Library maps module names to implementation lists. Lists may be given in
// any order with redundant entries; Optimize canonicalizes them.
type Library map[string][]Impl

// Tree is a floorplan topology node.
type Tree = plan.Node

// Leaf returns a basic rectangle holding the named module.
func Leaf(module string) *Tree { return plan.NewLeaf(module) }

// VSlice cuts a rectangle vertically; children are placed left to right.
func VSlice(children ...*Tree) *Tree { return plan.NewVSlice(children...) }

// HSlice cuts a rectangle horizontally; children are stacked bottom to top.
func HSlice(children ...*Tree) *Tree { return plan.NewHSlice(children...) }

// Wheel arranges five blocks in a clockwise pinwheel [NW, NE, SE, SW,
// center] — the order-5 non-slicing pattern.
func Wheel(nw, ne, se, sw, center *Tree) *Tree { return plan.NewWheel(nw, ne, se, sw, center) }

// CCWWheel is the counter-clockwise (mirrored) pinwheel.
func CCWWheel(nw, ne, se, sw, center *Tree) *Tree {
	return plan.NewCCWWheel(nw, ne, se, sw, center)
}

// ParseTree decodes a floorplan tree from JSON (see EncodeTree).
func ParseTree(data []byte) (*Tree, error) { return plan.ParseTree(data) }

// EncodeTree encodes a floorplan tree as JSON.
func EncodeTree(t *Tree) ([]byte, error) { return plan.EncodeTree(t) }

// Selection configures the paper's implementation-selection algorithms.
type Selection struct {
	// K1 caps each rectangular block's implementation count via
	// R_Selection (0 = off).
	K1 int
	// K2 caps each L-shaped block's implementation count via L_Selection
	// (0 = off).
	K2 int
	// Theta only triggers L_Selection when K2/X < Theta (0 = always when
	// X > K2).
	Theta float64
	// S pre-reduces an L-list heuristically to S entries before the exact
	// O(n³) L_Selection runs (0 = never).
	S int
}

// Options configures Optimize.
type Options struct {
	// Selection enables the paper's memory-reduction technique.
	Selection Selection
	// MemoryLimit aborts the run when more than this many implementations
	// are stored (0 = unlimited), reproducing the out-of-memory behaviour
	// the paper addresses. Use IsMemoryLimit to detect the failure.
	MemoryLimit int64
	// SkipPlacement skips traceback; only the optimal area is computed.
	SkipPlacement bool
	// Workers bounds the number of goroutines evaluating floorplan blocks
	// concurrently (0 = one per CPU, 1 = sequential). Successful runs
	// return bit-identical results for every worker count; memory-limited
	// runs always fail with IsMemoryLimit but may abort at a different
	// block.
	Workers int
	// Telemetry, when non-nil, records the run's metrics, per-block eval
	// spans and pipeline stage spans; read them back with
	// Collector.Report or export a Chrome trace with WriteTrace. nil (the
	// default) disables collection with no measurable overhead.
	Telemetry *Collector
}

// Collector gathers metrics, spans and histograms across a run; create one
// with NewCollector and pass it via Options.Telemetry. All methods are safe
// for concurrent use; a nil *Collector is the disabled state.
type Collector = telemetry.Collector

// TelemetryReport is the structured JSON run report a Collector snapshots:
// a deterministic section (identical for any worker count) and a Runtime
// section (wall times, spans, contention churn).
type TelemetryReport = telemetry.Report

// HistSnapshot is a latency/size histogram's point-in-time state, as carried
// by /v1/stats and /v1/cluster/stats; its Quantile method answers p50/p99
// queries from the bucket counts.
type HistSnapshot = telemetry.HistSnapshot

// HistExemplar is one histogram bucket's trace link: the W3C trace ID of a
// real request that landed in the bucket, with the node that recorded it in
// cluster aggregates.
type HistExemplar = telemetry.Exemplar

// NewCollector returns an empty telemetry collector whose span clock
// starts now.
func NewCollector() *Collector { return telemetry.New() }

// WriteTrace writes the collector's spans in Chrome trace_event format
// (load in Perfetto or chrome://tracing): one logical thread per worker,
// with per-block evaluation spans placed on the timeline.
func WriteTrace(w io.Writer, c *Collector) error { return c.WriteTrace(w) }

// WithTraceparent attaches a W3C traceparent header value (as produced by
// NewTraceparent, or received from an upstream system) to the context.
// Client.Optimize and friends propagate it to the server, which joins the
// same trace: its access log, telemetry spans and ResponseRuntime all carry
// the caller's trace ID. Malformed values are ignored and the client mints
// its own trace instead.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	tc, err := reqid.Parse(traceparent)
	if err != nil {
		return ctx
	}
	return reqid.NewContext(ctx, tc)
}

// TraceparentFromContext returns the context's traceparent header value, or
// "" when none is attached.
func TraceparentFromContext(ctx context.Context) string {
	tc, ok := reqid.FromContext(ctx)
	if !ok || !tc.Valid() {
		return ""
	}
	return tc.Traceparent()
}

// NewTraceparent mints a fresh W3C traceparent header value (random trace
// and span IDs, sampled flag set), for callers that want to know their
// request's trace ID before sending it.
func NewTraceparent() string { return reqid.New().Traceparent() }

// Stats are the run's cost metrics; see the paper's M and CPU columns.
type Stats = optimizer.Stats

// Placement is a realized floorplan (module boxes tiling the envelope).
type Placement = optimizer.Placement

// NodeStat describes one evaluated block: implementation counts before and
// after selection.
type NodeStat = optimizer.NodeStat

// Result is the outcome of Optimize.
type Result struct {
	// Best is the minimum-area implementation of the floorplan.
	Best Impl
	// RootList is the envelope's full implementation staircase.
	RootList []Impl
	// Placement realizes Best (nil with SkipPlacement).
	Placement *Placement
	// Stats carries memory and time metrics.
	Stats Stats
	// NodeStats describes every evaluated block in preorder.
	NodeStats []NodeStat
}

// Optimize runs floorplan area optimization: it selects an implementation
// for every module so that the enveloping rectangle's area is minimum for
// the given topology (Wang–Wong DAC'90), optionally bounding memory with
// the paper's R_Selection/L_Selection.
func Optimize(tree *Tree, lib Library, opts Options) (*Result, error) {
	canonical := make(optimizer.Library, len(lib))
	for name, impls := range lib {
		l, err := plan.CanonicalModule(name, impls)
		if err != nil {
			return nil, err
		}
		canonical[name] = l
	}
	o, err := optimizer.New(canonical, optimizer.Options{
		Policy: selection.Policy{
			K1:    opts.Selection.K1,
			K2:    opts.Selection.K2,
			Theta: opts.Selection.Theta,
			S:     opts.Selection.S,
		},
		MemoryLimit:   opts.MemoryLimit,
		SkipPlacement: opts.SkipPlacement,
		Workers:       opts.Workers,
		Telemetry:     opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	res, err := o.Run(tree)
	if err != nil {
		return wrapResult(res), err
	}
	return wrapResult(res), nil
}

func wrapResult(res *optimizer.Result) *Result {
	if res == nil {
		return nil
	}
	return &Result{
		Best:      res.Best,
		RootList:  []Impl(res.RootList),
		Placement: res.Placement,
		Stats:     res.Stats,
		NodeStats: res.NodeStats,
	}
}

// IsMemoryLimit reports whether an Optimize error was a memory-limit abort.
func IsMemoryLimit(err error) bool { return optimizer.IsMemoryLimit(err) }

// Fingerprint returns the canonical content address (hex SHA-256) of an
// optimization problem: the tree structure, the canonicalized shape lists
// of the modules the tree references, and every Options field that affects
// results. Equivalent requests — relabelled nodes, shuffled or redundant
// implementation lists, irrelevant library entries, any Workers value —
// fingerprint identically; this is the cache key fpserve memoizes under.
func Fingerprint(tree *Tree, lib Library, opts Options) (string, error) {
	if err := tree.Validate(); err != nil {
		return "", err
	}
	canonical, err := plan.CanonicalLibrary(plan.Library(lib))
	if err != nil {
		return "", err
	}
	k, err := cache.KeySpec{
		Tree:          tree,
		Lib:           canonical,
		K1:            opts.Selection.K1,
		K2:            opts.Selection.K2,
		Theta:         opts.Selection.Theta,
		S:             opts.Selection.S,
		MemoryLimit:   opts.MemoryLimit,
		SkipPlacement: opts.SkipPlacement,
	}.Key()
	if err != nil {
		return "", err
	}
	return k.String(), nil
}

// SelectImpls is the paper's R_Selection as a standalone utility: it picks
// the k-subset of a rectangular block's implementations (canonicalized
// first) that minimizes the lost staircase area, and returns the subset and
// the error. Useful for approximating continuous shape functions (Section 6).
func SelectImpls(impls []Impl, k int) ([]Impl, int64, error) {
	l, err := shape.NewRList(impls)
	if err != nil {
		return nil, 0, err
	}
	res, err := selection.RSelect(l, k)
	if err != nil {
		return nil, 0, err
	}
	return []Impl(res.Selected), res.Error, nil
}

// Rotatable returns the implementation list for a fixed rectangle that may
// be rotated by 90 degrees — the classic orientation problem's leaf.
func Rotatable(w, h int64) []Impl {
	l, err := stockmeyer.Module{W: w, H: h, Rotatable: true}.Implementations()
	if err != nil {
		return nil
	}
	return []Impl(l)
}

// OptimizeSlicing runs Stockmeyer's baseline on a slicing floorplan
// (no wheels). k1 > 0 applies R_Selection at every node.
func OptimizeSlicing(tree *Tree, lib Library, k1 int) (*Result, error) {
	canonical := make(map[string]shape.RList, len(lib))
	for name, impls := range lib {
		l, err := plan.CanonicalModule(name, impls)
		if err != nil {
			return nil, err
		}
		canonical[name] = l
	}
	res, err := stockmeyer.Optimize(tree, canonical, stockmeyer.Options{K1: k1})
	if err != nil {
		return nil, err
	}
	return &Result{
		Best:     res.Best,
		RootList: []Impl(res.RootList),
		Stats:    Stats{PeakStored: res.PeakStored, RSelections: res.RSelections},
	}, nil
}

// RenderPlacement draws a placement as ASCII art of the given width.
func RenderPlacement(p *Placement, width int) string { return render.Placement(p, width) }

// RenderSVG draws a placement as a standalone SVG document of the given
// pixel width.
func RenderSVG(p *Placement, width int) string { return render.SVG(p, width) }

// RenderTree draws a floorplan tree as an indented outline.
func RenderTree(t *Tree) string { return render.Tree(t) }

// PlacementTable lists each module's box, implementation and slack.
func PlacementTable(p *Placement) string { return render.PlacementTable(p) }

// PaperFloorplan returns one of the paper's test floorplans FP1–FP4
// (Figure 8 reconstructions; see DESIGN.md).
func PaperFloorplan(name string) (*Tree, error) { return gen.ByName(name) }

// RandomModules generates a seeded module library for every leaf of the
// tree, with n non-redundant implementations per module and default size
// diversity. Use GenerateModules to control the diversity.
func RandomModules(tree *Tree, n int, seed int64) (Library, error) {
	return GenerateModules(tree, ModuleGen{N: n, Seed: seed})
}

// ModuleGen controls random module generation. Zero fields take defaults.
type ModuleGen struct {
	// N is the number of non-redundant implementations per module
	// (default 20; the paper uses 20 and 40).
	N int
	// Seed makes generation reproducible.
	Seed int64
	// Aspect bounds the aspect ratio of the extreme implementations
	// (default 4). Larger values yield more diverse shapes and hence far
	// larger non-redundant sets during optimization.
	Aspect float64
	// MinArea and MaxArea bound module areas (defaults 120 and 1200).
	MinArea, MaxArea int64
}

// GenerateModules builds a seeded module library for every leaf of the
// tree.
func GenerateModules(tree *Tree, g ModuleGen) (Library, error) {
	if g.N == 0 {
		g.N = 20
	}
	params := gen.DefaultModuleParams(g.N)
	if g.Aspect > 0 {
		params.MaxAspect = g.Aspect
	}
	if g.MinArea > 0 {
		params.MinArea = g.MinArea
	}
	if g.MaxArea > 0 {
		params.MaxArea = g.MaxArea
	}
	rng := rand.New(rand.NewSource(g.Seed))
	raw, err := gen.Library(rng, tree, params)
	if err != nil {
		return nil, err
	}
	lib := make(Library, len(raw))
	for name, l := range raw {
		lib[name] = []Impl(l)
	}
	return lib, nil
}

// RandomTree generates a seeded random floorplan topology with the given
// number of modules; pWheel is the probability of non-slicing (pinwheel)
// nodes.
func RandomTree(modules int, pWheel float64, seed int64) (*Tree, error) {
	return gen.RandomTree(rand.New(rand.NewSource(seed)), modules, pWheel)
}
