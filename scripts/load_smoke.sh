#!/bin/sh
# load_smoke.sh boots fpserve on a random port and runs the open-loop load
# harness (`fpbench -load`) against it twice:
#
#   1. a short constant/ramp/burst schedule under generous SLOs, which must
#      pass and leave a well-formed JSON load report, and
#   2. the same schedule under a deliberately impossible SLO, which must
#      make fpbench exit non-zero — proving the gate actually gates.
#
# Invoked by `make load-smoke` and, through it, `make check`.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
server_pid=""

cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

"$GO" build -o "$workdir/fpserve" ./cmd/fpserve
"$GO" build -o "$workdir/fpbench" ./cmd/fpbench

"$workdir/fpserve" -addr localhost:0 -addr-file "$workdir/addr" \
    -cache-mb 16 -workers 4 -queue 64 2>"$workdir/fpserve.log" &
server_pid=$!

i=0
while [ ! -s "$workdir/addr" ]; do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "load-smoke: fpserve died during startup:" >&2
        cat "$workdir/fpserve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "load-smoke: fpserve did not publish an address in time" >&2
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$workdir/addr")"

# A sub-three-second schedule exercising all three rate shapes. The SLOs
# are deliberately loose — this gate proves the machinery, not the
# hardware it happens to run on.
cat >"$workdir/spec.json" <<'EOF'
{
  "seed": 7,
  "k1": 8,
  "connections": 32,
  "request_timeout_ms": 5000,
  "corpus": {"keys": 8, "min_modules": 4, "max_modules": 8, "impls": 4, "zipf_s": 1.3},
  "phases": [
    {"name": "warmup", "duration_ms": 600, "rate": 30},
    {"name": "ramp", "duration_ms": 800, "shape": "ramp", "rate": 30, "end_rate": 120},
    {"name": "burst", "duration_ms": 800, "shape": "burst", "rate": 30,
     "burst_rate": 200, "burst_ms": 100, "period_ms": 400}
  ],
  "slos": [
    {"metric": "error_rate", "max": 0.1},
    {"metric": "p999_ms", "max": 60000},
    {"phase": "warmup", "metric": "throughput_rps", "min": 10}
  ]
}
EOF

"$workdir/fpbench" -load -server "http://$addr" \
    -load-spec "$workdir/spec.json" -load-out "$workdir/report.json"

# The report must be on disk, schema-tagged, passing, and carrying the
# per-phase quantiles and the server-side stats delta.
for needle in '"schema": "floorplan/load-report/v1"' '"pass": true' \
    '"name": "burst"' '"name": "total"' '"p999_ms"' '"server"' '"requests"'; do
    grep -q "$needle" "$workdir/report.json" || {
        echo "load-smoke: report.json missing $needle" >&2
        cat "$workdir/report.json" >&2
        exit 1
    }
done

# Negative control: an impossible SLO must flip the exit code. A gate that
# cannot fail is not a gate.
sed 's/"max": 60000/"max": 0.0001/' "$workdir/spec.json" >"$workdir/spec_bad.json"
if "$workdir/fpbench" -load -server "http://$addr" \
    -load-spec "$workdir/spec_bad.json" -load-out "$workdir/report_bad.json" \
    2>"$workdir/bad.log"; then
    echo "load-smoke: deliberately violated SLO did not fail the run" >&2
    exit 1
fi
grep -q '"pass": false' "$workdir/report_bad.json" || {
    echo "load-smoke: violated run's report does not say pass: false" >&2
    exit 1
}

kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "load-smoke: OK (http://$addr)"
