#!/bin/sh
# serve_smoke.sh boots fpserve on a random port, drives it end to end with
# `fpbench -server` (health check, two optimize round-trips, cache hit-rate
# and byte-identity verification) and exits non-zero on any failure.
# Invoked by `make serve-smoke` and, through it, `make check`.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
server_pid=""

cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

"$GO" build -o "$workdir/fpserve" ./cmd/fpserve
"$GO" build -o "$workdir/fpbench" ./cmd/fpbench

"$workdir/fpserve" -addr localhost:0 -addr-file "$workdir/addr" \
    -cache-mb 16 -workers 2 2>"$workdir/fpserve.log" &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: fpserve died during startup:" >&2
        cat "$workdir/fpserve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: fpserve did not publish an address in time" >&2
        exit 1
    fi
    sleep 0.1
done

addr="$(cat "$workdir/addr")"
"$workdir/fpbench" -server "http://$addr"

# Graceful shutdown must drain cleanly (fpserve exits 0 on SIGTERM).
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serve-smoke: OK (http://$addr)"
