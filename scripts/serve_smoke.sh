#!/bin/sh
# serve_smoke.sh boots fpserve on a random port, drives it end to end with
# `fpbench -server` (health check, trace-ID round-trip, two optimize
# round-trips, cache hit-rate and byte-identity verification), scrapes
# GET /metrics for the Prometheus exposition, fetches the slow-request
# capture from GET /debug/slow (the threshold is set artificially low so
# every request qualifies) and checks the structured access log, exiting
# non-zero on any failure.
# Invoked by `make obs-check` and, through it, `make check`.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
server_pid=""

cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

"$GO" build -o "$workdir/fpserve" ./cmd/fpserve
"$GO" build -o "$workdir/fpbench" ./cmd/fpbench

"$workdir/fpserve" -addr localhost:0 -addr-file "$workdir/addr" \
    -cache-mb 16 -workers 2 -slow-threshold 1ns 2>"$workdir/fpserve.log" &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: fpserve died during startup:" >&2
        cat "$workdir/fpserve.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: fpserve did not publish an address in time" >&2
        exit 1
    fi
    sleep 0.1
done

addr="$(cat "$workdir/addr")"
"$workdir/fpbench" -server "http://$addr"

# The Prometheus exposition must be scrapeable and populated: the request
# counter family reflects the traffic fpbench just drove, and the latency
# histograms emit cumulative buckets.
curl -sf "http://$addr/metrics" >"$workdir/metrics"
grep -q '^floorplan_server_requests_total [1-9]' "$workdir/metrics" || {
    echo "serve-smoke: /metrics missing a populated floorplan_server_requests_total" >&2
    cat "$workdir/metrics" >&2
    exit 1
}
grep -q '_bucket{le="' "$workdir/metrics" || {
    echo "serve-smoke: /metrics has no histogram bucket samples" >&2
    exit 1
}

# Tail attribution: with the capture threshold at 1ns every request
# fpbench drove is "slow", so GET /debug/slow must return at least one
# captured optimize request with its trace identity and latency
# decomposition.
curl -sf "http://$addr/debug/slow" >"$workdir/slow"
grep -q '"path":"/v1/optimize"' "$workdir/slow" || {
    echo "serve-smoke: /debug/slow captured no optimize request" >&2
    cat "$workdir/slow" >&2
    exit 1
}
grep -q '"trace_id":"' "$workdir/slow" || {
    echo "serve-smoke: /debug/slow capture carries no trace_id" >&2
    exit 1
}
grep -q '"elapsed_ms":' "$workdir/slow" || {
    echo "serve-smoke: /debug/slow capture carries no latency decomposition" >&2
    exit 1
}

# The structured access log must carry per-request records with trace IDs.
grep -q '"msg":"request".*"path":"/v1/optimize".*"trace_id":' "$workdir/fpserve.log" || {
    echo "serve-smoke: no structured access-log record for /v1/optimize:" >&2
    cat "$workdir/fpserve.log" >&2
    exit 1
}

# Graceful shutdown must drain cleanly (fpserve exits 0 on SIGTERM).
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serve-smoke: OK (http://$addr)"
