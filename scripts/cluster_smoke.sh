#!/bin/sh
# cluster_smoke.sh boots a 3-node fpserve cluster (static -peers ring) plus
# a single-node reference and drives it end to end:
#
#   1. `fpbench -cluster-check`: a burst of identical fingerprints across all
#      three nodes must cost exactly one optimizer run cluster-wide, answer
#      byte-identically everywhere, match the single-node reference, and a
#      warm second wave must compute nothing (hot-key peer fill).
#   2. `fpbench -load` against all three nodes with a zipf-skewed corpus:
#      the SLO block must pass and the report must carry the per-target
#      disposition sections and per-node stats deltas.
#   3. the observability plane: GET /v1/cluster/stats must aggregate all
#      three nodes (complete, ring info, summed totals), a latency exemplar
#      scraped from /metrics must round-trip to a trace_id in that node's
#      access log, and the load run must have left a p99-triggered capture
#      in the profiling flight recorder (the nodes run with a 1ms hair
#      trigger, so steady load is an "incident").
#   4. kill -9 one node mid-run under a fresh corpus: the survivors must
#      degrade to local computation (peer_fallback > 0) with zero failed
#      requests and a passing SLO block — and the cluster stats aggregate
#      must degrade to a partial response marked incomplete, not an error.
#
# Cluster nodes need their ports fixed before boot (every peer list entry
# names a bound address), so the script picks a random base port and retries
# with a new one if any node loses the bind race.
#
# Invoked by `make cluster-smoke` and, through it, `make check`.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
pid1="" pid2="" pid3="" ref_pid="" load_pid=""

kill_node() {
    if [ -n "$1" ] && kill -0 "$1" 2>/dev/null; then
        kill -9 "$1" 2>/dev/null || true
        wait "$1" 2>/dev/null || true
    fi
}

cleanup() {
    status=$?
    kill_node "$load_pid"
    kill_node "$pid1"
    kill_node "$pid2"
    kill_node "$pid3"
    kill_node "$ref_pid"
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

"$GO" build -o "$workdir/fpserve" ./cmd/fpserve
"$GO" build -o "$workdir/fpbench" ./cmd/fpbench

# --- boot the 3-node ring, retrying the port block on bind races ---------

# start_node reports the child's pid through $node_pid rather than stdout:
# command substitution would block on the background server holding the
# substitution pipe open.
start_node() { # $1 = index, $2 = base port, $3 = peer list
    port=$(($2 + $1))
    "$workdir/fpserve" -addr "127.0.0.1:$port" -addr-file "$workdir/addr$1" \
        -peers "$3" -self "http://127.0.0.1:$port" -node-id "node$1" \
        -cache-mb 16 -workers 4 -queue 64 -peer-timeout 1s \
        -profile-trigger-p99 1ms -profile-interval 500ms \
        >"$workdir/node$1.log" 2>&1 &
    node_pid=$!
}

attempt=0
while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 5 ]; then
        echo "cluster-smoke: no free port block after 5 attempts" >&2
        exit 1
    fi
    base=$(awk 'BEGIN{srand('"$$$attempt"'); print 20000 + int(rand()*30000)}')
    peers="http://127.0.0.1:$((base + 1)),http://127.0.0.1:$((base + 2)),http://127.0.0.1:$((base + 3))"
    rm -f "$workdir/addr1" "$workdir/addr2" "$workdir/addr3"
    start_node 1 "$base" "$peers" && pid1=$node_pid
    start_node 2 "$base" "$peers" && pid2=$node_pid
    start_node 3 "$base" "$peers" && pid3=$node_pid
    i=0
    ok=1
    while [ ! -s "$workdir/addr1" ] || [ ! -s "$workdir/addr2" ] || [ ! -s "$workdir/addr3" ]; do
        if ! kill -0 "$pid1" 2>/dev/null || ! kill -0 "$pid2" 2>/dev/null ||
            ! kill -0 "$pid3" 2>/dev/null; then
            ok=0 # a node lost its bind; retry the whole block on a new base
            break
        fi
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: nodes did not publish addresses in time" >&2
            cat "$workdir"/node*.log >&2
            exit 1
        fi
        sleep 0.1
    done
    [ "$ok" -eq 1 ] && break
    kill_node "$pid1"
    kill_node "$pid2"
    kill_node "$pid3"
    pid1="" pid2="" pid3=""
done

node1="http://$(cat "$workdir/addr1")"
node2="http://$(cat "$workdir/addr2")"
node3="http://$(cat "$workdir/addr3")"

# Single-node reference for byte-identity: same optimizer, no cluster.
"$workdir/fpserve" -addr localhost:0 -addr-file "$workdir/addr_ref" \
    -cache-mb 16 -workers 4 2>"$workdir/ref.log" &
ref_pid=$!
i=0
while [ ! -s "$workdir/addr_ref" ]; do
    if ! kill -0 "$ref_pid" 2>/dev/null; then
        echo "cluster-smoke: reference fpserve died during startup:" >&2
        cat "$workdir/ref.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: reference fpserve did not publish an address" >&2
        exit 1
    fi
    sleep 0.1
done
ref="http://$(cat "$workdir/addr_ref")"

# --- 1. cluster-wide dedup + byte identity vs the reference --------------

"$workdir/fpbench" -cluster-check -server "$node1,$node2,$node3" -single "$ref"

# --- 2. skewed open-loop load spread across all three nodes --------------

cat >"$workdir/spec.json" <<'EOF'
{
  "seed": 11,
  "k1": 8,
  "connections": 32,
  "request_timeout_ms": 5000,
  "corpus": {"keys": 16, "min_modules": 4, "max_modules": 8, "impls": 4, "zipf_s": 1.6},
  "phases": [
    {"name": "warmup", "duration_ms": 600, "rate": 30},
    {"name": "steady", "duration_ms": 1200, "rate": 90}
  ],
  "slos": [
    {"metric": "error_rate", "max": 0.1},
    {"metric": "p999_ms", "max": 60000}
  ]
}
EOF

"$workdir/fpbench" -load -server "$node1,$node2,$node3" \
    -load-spec "$workdir/spec.json" -load-out "$workdir/report.json"

for needle in '"pass": true' '"targets"' '"nodes"' '"node_id"' '"computed"'; do
    grep -q -- "$needle" "$workdir/report.json" || {
        echo "cluster-smoke: report.json missing $needle" >&2
        cat "$workdir/report.json" >&2
        exit 1
    }
done

# --- 3. observability plane: cluster stats, exemplars, flight recorder ---

# The ring-wide aggregate from any node must be complete with all three up.
curl -sf "$node1/v1/cluster/stats" >"$workdir/clstats.json"
for needle in '"incomplete":false' '"node_id":"node1"' '"node_id":"node2"' \
    '"node_id":"node3"' '"ring":{' '"totals":' '"go_version"'; do
    grep -q -- "$needle" "$workdir/clstats.json" || {
        echo "cluster-smoke: /v1/cluster/stats missing $needle" >&2
        cat "$workdir/clstats.json" >&2
        exit 1
    }
done

# The operator CLI renders the same aggregate.
"$workdir/fpbench" -cluster-stats -server "$node1,$node2,$node3" >"$workdir/clstats.txt"
grep -q 'ring: 3 nodes' "$workdir/clstats.txt" || {
    echo "cluster-smoke: fpbench -cluster-stats did not report the 3-node ring" >&2
    cat "$workdir/clstats.txt" >&2
    exit 1
}

# A latency exemplar scraped from /metrics names a real trace: the same
# trace_id must appear in that node's access log.
tid=$(curl -sf "$node1/metrics" |
    sed -n 's/.*# {trace_id="\([0-9a-f]\{32\}\)"}.*/\1/p' | head -1)
if [ -z "$tid" ]; then
    echo "cluster-smoke: no exemplar trace_id on $node1/metrics" >&2
    exit 1
fi
grep -q "$tid" "$workdir/node1.log" || {
    echo "cluster-smoke: exemplar trace $tid not found in node1's access log" >&2
    exit 1
}

# The 1ms hair trigger makes steady load an incident: the flight recorder
# must have captured a p99-annotated profile pair by now (its watchdog
# samples every 500ms; give it a few more windows before giving up).
i=0
while :; do
    curl -sf "$node1/debug/profiles" >"$workdir/profiles.json"
    grep -q '"reason":"p99"' "$workdir/profiles.json" && break
    i=$((i + 1))
    if [ "$i" -gt 20 ]; then
        echo "cluster-smoke: no p99-triggered capture in /debug/profiles" >&2
        cat "$workdir/profiles.json" >&2
        exit 1
    fi
    sleep 0.5
done
grep -q '"trace_ids":\[' "$workdir/profiles.json" || {
    echo "cluster-smoke: flight-recorder capture carries no exemplar traces" >&2
    cat "$workdir/profiles.json" >&2
    exit 1
}
cap_id=$(sed -n 's/.*"id":\([0-9][0-9]*\).*/\1/p' "$workdir/profiles.json" | head -1)
curl -sf "$node1/debug/profiles?id=$cap_id&kind=heap" >"$workdir/heap.pb.gz"
[ -s "$workdir/heap.pb.gz" ] || {
    echo "cluster-smoke: capture $cap_id served an empty heap profile" >&2
    exit 1
}

# --- 4. kill one node mid-run: graceful degradation ----------------------

# Fresh seed = cold corpus, so keys owned by the doomed node are still
# uncached on the survivors when it dies; their forwards must degrade to
# local computation without failing a single request. Traffic goes to the
# two survivors only — the ring still routes ~1/3 of keys at node3.
sed 's/"seed": 11/"seed": 23/' "$workdir/spec.json" >"$workdir/spec_kill.json"

"$workdir/fpbench" -load -server "$node1,$node2" \
    -load-spec "$workdir/spec_kill.json" -load-out "$workdir/report_kill.json" \
    2>"$workdir/load_kill.log" &
load_pid=$!
sleep 0.5
kill -9 "$pid3" 2>/dev/null || true
wait "$pid3" 2>/dev/null || true
pid3=""
if ! wait "$load_pid"; then
    echo "cluster-smoke: load run with a killed node failed:" >&2
    cat "$workdir/load_kill.log" >&2
    [ -f "$workdir/report_kill.json" ] && cat "$workdir/report_kill.json" >&2
    exit 1
fi
load_pid=""

grep -q '"pass": true' "$workdir/report_kill.json" || {
    echo "cluster-smoke: SLO block failed after killing a node" >&2
    cat "$workdir/report_kill.json" >&2
    exit 1
}
fallbacks=$(sed -n 's/.*"peer_fallback": \([0-9][0-9]*\).*/\1/p' "$workdir/report_kill.json" | head -1)
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "cluster-smoke: killing a node produced no peer_fallback (got '${fallbacks:-none}')" >&2
    cat "$workdir/report_kill.json" >&2
    exit 1
fi

# With a peer dead the cluster aggregate degrades, it does not error: still
# HTTP 200, marked incomplete, survivors still reported.
curl -sf "$node1/v1/cluster/stats" >"$workdir/clstats_kill.json"
for needle in '"incomplete":true' '"reachable":false' '"node_id":"node1"'; do
    grep -q -- "$needle" "$workdir/clstats_kill.json" || {
        echo "cluster-smoke: partial cluster stats missing $needle" >&2
        cat "$workdir/clstats_kill.json" >&2
        exit 1
    }
done

echo "cluster-smoke: OK ($node1 $node2 $node3; $fallbacks peer fallbacks after kill)"
