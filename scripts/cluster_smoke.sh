#!/bin/sh
# cluster_smoke.sh boots a 3-node fpserve cluster (static -peers ring) plus
# a single-node reference and drives it end to end:
#
#   1. `fpbench -cluster-check`: a burst of identical fingerprints across all
#      three nodes must cost exactly one optimizer run cluster-wide, answer
#      byte-identically everywhere, match the single-node reference, and a
#      warm second wave must compute nothing (hot-key peer fill).
#   2. `fpbench -load` against all three nodes with a zipf-skewed corpus:
#      the SLO block must pass and the report must carry the per-target
#      disposition sections and per-node stats deltas.
#   3. kill -9 one node mid-run under a fresh corpus: the survivors must
#      degrade to local computation (peer_fallback > 0) with zero failed
#      requests and a passing SLO block.
#
# Cluster nodes need their ports fixed before boot (every peer list entry
# names a bound address), so the script picks a random base port and retries
# with a new one if any node loses the bind race.
#
# Invoked by `make cluster-smoke` and, through it, `make check`.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
pid1="" pid2="" pid3="" ref_pid="" load_pid=""

kill_node() {
    if [ -n "$1" ] && kill -0 "$1" 2>/dev/null; then
        kill -9 "$1" 2>/dev/null || true
        wait "$1" 2>/dev/null || true
    fi
}

cleanup() {
    status=$?
    kill_node "$load_pid"
    kill_node "$pid1"
    kill_node "$pid2"
    kill_node "$pid3"
    kill_node "$ref_pid"
    rm -rf "$workdir"
    exit $status
}
trap cleanup EXIT INT TERM

"$GO" build -o "$workdir/fpserve" ./cmd/fpserve
"$GO" build -o "$workdir/fpbench" ./cmd/fpbench

# --- boot the 3-node ring, retrying the port block on bind races ---------

# start_node reports the child's pid through $node_pid rather than stdout:
# command substitution would block on the background server holding the
# substitution pipe open.
start_node() { # $1 = index, $2 = base port, $3 = peer list
    port=$(($2 + $1))
    "$workdir/fpserve" -addr "127.0.0.1:$port" -addr-file "$workdir/addr$1" \
        -peers "$3" -self "http://127.0.0.1:$port" -node-id "node$1" \
        -cache-mb 16 -workers 4 -queue 64 -peer-timeout 1s \
        >"$workdir/node$1.log" 2>&1 &
    node_pid=$!
}

attempt=0
while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 5 ]; then
        echo "cluster-smoke: no free port block after 5 attempts" >&2
        exit 1
    fi
    base=$(awk 'BEGIN{srand('"$$$attempt"'); print 20000 + int(rand()*30000)}')
    peers="http://127.0.0.1:$((base + 1)),http://127.0.0.1:$((base + 2)),http://127.0.0.1:$((base + 3))"
    rm -f "$workdir/addr1" "$workdir/addr2" "$workdir/addr3"
    start_node 1 "$base" "$peers" && pid1=$node_pid
    start_node 2 "$base" "$peers" && pid2=$node_pid
    start_node 3 "$base" "$peers" && pid3=$node_pid
    i=0
    ok=1
    while [ ! -s "$workdir/addr1" ] || [ ! -s "$workdir/addr2" ] || [ ! -s "$workdir/addr3" ]; do
        if ! kill -0 "$pid1" 2>/dev/null || ! kill -0 "$pid2" 2>/dev/null ||
            ! kill -0 "$pid3" 2>/dev/null; then
            ok=0 # a node lost its bind; retry the whole block on a new base
            break
        fi
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: nodes did not publish addresses in time" >&2
            cat "$workdir"/node*.log >&2
            exit 1
        fi
        sleep 0.1
    done
    [ "$ok" -eq 1 ] && break
    kill_node "$pid1"
    kill_node "$pid2"
    kill_node "$pid3"
    pid1="" pid2="" pid3=""
done

node1="http://$(cat "$workdir/addr1")"
node2="http://$(cat "$workdir/addr2")"
node3="http://$(cat "$workdir/addr3")"

# Single-node reference for byte-identity: same optimizer, no cluster.
"$workdir/fpserve" -addr localhost:0 -addr-file "$workdir/addr_ref" \
    -cache-mb 16 -workers 4 2>"$workdir/ref.log" &
ref_pid=$!
i=0
while [ ! -s "$workdir/addr_ref" ]; do
    if ! kill -0 "$ref_pid" 2>/dev/null; then
        echo "cluster-smoke: reference fpserve died during startup:" >&2
        cat "$workdir/ref.log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: reference fpserve did not publish an address" >&2
        exit 1
    fi
    sleep 0.1
done
ref="http://$(cat "$workdir/addr_ref")"

# --- 1. cluster-wide dedup + byte identity vs the reference --------------

"$workdir/fpbench" -cluster-check -server "$node1,$node2,$node3" -single "$ref"

# --- 2. skewed open-loop load spread across all three nodes --------------

cat >"$workdir/spec.json" <<'EOF'
{
  "seed": 11,
  "k1": 8,
  "connections": 32,
  "request_timeout_ms": 5000,
  "corpus": {"keys": 16, "min_modules": 4, "max_modules": 8, "impls": 4, "zipf_s": 1.6},
  "phases": [
    {"name": "warmup", "duration_ms": 600, "rate": 30},
    {"name": "steady", "duration_ms": 1200, "rate": 90}
  ],
  "slos": [
    {"metric": "error_rate", "max": 0.1},
    {"metric": "p999_ms", "max": 60000}
  ]
}
EOF

"$workdir/fpbench" -load -server "$node1,$node2,$node3" \
    -load-spec "$workdir/spec.json" -load-out "$workdir/report.json"

for needle in '"pass": true' '"targets"' '"nodes"' '"node_id"' '"computed"'; do
    grep -q -- "$needle" "$workdir/report.json" || {
        echo "cluster-smoke: report.json missing $needle" >&2
        cat "$workdir/report.json" >&2
        exit 1
    }
done

# --- 3. kill one node mid-run: graceful degradation ----------------------

# Fresh seed = cold corpus, so keys owned by the doomed node are still
# uncached on the survivors when it dies; their forwards must degrade to
# local computation without failing a single request. Traffic goes to the
# two survivors only — the ring still routes ~1/3 of keys at node3.
sed 's/"seed": 11/"seed": 23/' "$workdir/spec.json" >"$workdir/spec_kill.json"

"$workdir/fpbench" -load -server "$node1,$node2" \
    -load-spec "$workdir/spec_kill.json" -load-out "$workdir/report_kill.json" \
    2>"$workdir/load_kill.log" &
load_pid=$!
sleep 0.5
kill -9 "$pid3" 2>/dev/null || true
wait "$pid3" 2>/dev/null || true
pid3=""
if ! wait "$load_pid"; then
    echo "cluster-smoke: load run with a killed node failed:" >&2
    cat "$workdir/load_kill.log" >&2
    [ -f "$workdir/report_kill.json" ] && cat "$workdir/report_kill.json" >&2
    exit 1
fi
load_pid=""

grep -q '"pass": true' "$workdir/report_kill.json" || {
    echo "cluster-smoke: SLO block failed after killing a node" >&2
    cat "$workdir/report_kill.json" >&2
    exit 1
}
fallbacks=$(sed -n 's/.*"peer_fallback": \([0-9][0-9]*\).*/\1/p' "$workdir/report_kill.json" | head -1)
if [ -z "$fallbacks" ] || [ "$fallbacks" -eq 0 ]; then
    echo "cluster-smoke: killing a node produced no peer_fallback (got '${fallbacks:-none}')" >&2
    cat "$workdir/report_kill.json" >&2
    exit 1
fi

echo "cluster-smoke: OK ($node1 $node2 $node3; $fallbacks peer fallbacks after kill)"
