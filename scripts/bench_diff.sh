#!/bin/sh
# bench_diff.sh — offline perf-regression gate over the committed BENCH
# snapshots. With two or more BENCH_*.json files the newest is diffed
# against the one before it; with exactly one, against its embedded
# baseline. Fails (non-zero) on any allocs/op increase or a >10% ns/op
# regression on any pinned cell. Nothing is re-measured, so this is cheap
# enough to run from `make check`.
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

set -- BENCH_*.json
if [ ! -e "$1" ]; then
    echo "bench_diff: no BENCH_*.json snapshots committed; nothing to gate" >&2
    exit 0
fi

# Lexicographic order is chronological for zero-padded BENCH_NNNN names.
latest=""
prev=""
for f in "$@"; do
    prev="$latest"
    latest="$f"
done

if [ -n "$prev" ]; then
    echo "bench_diff: $prev -> $latest" >&2
    exec "$GO" run ./cmd/fpbench -diff "$latest" -diff-base "$prev"
fi
echo "bench_diff: $latest vs embedded baseline" >&2
exec "$GO" run ./cmd/fpbench -diff "$latest"
