package floorplan_test

import (
	"testing"

	floorplan "floorplan"
)

// TestFullPipelineFP2 is the end-to-end integration test: the paper's
// 49-module FP2 with generated modules, optimized exactly and with both
// selection algorithms, placements verified, and the selection/memory
// relationships checked.
func TestFullPipelineFP2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration run")
	}
	tree, err := floorplan.PaperFloorplan("FP2")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := floorplan.GenerateModules(tree, floorplan.ModuleGen{N: 12, Seed: 77, Aspect: 5})
	if err != nil {
		t.Fatal(err)
	}

	exact, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Placement == nil || len(exact.Placement.Modules) != 49 {
		t.Fatalf("exact run placed %d modules", len(exact.Placement.Modules))
	}

	sel, err := floorplan.Optimize(tree, lib, floorplan.Options{
		Selection: floorplan.Selection{K1: 10, K2: 200, Theta: 0.5, S: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Placement == nil || len(sel.Placement.Modules) != 49 {
		t.Fatalf("selection run placed %d modules", len(sel.Placement.Modules))
	}
	if sel.Stats.PeakStored >= exact.Stats.PeakStored {
		t.Fatalf("selection failed to save memory: %d vs %d",
			sel.Stats.PeakStored, exact.Stats.PeakStored)
	}
	if sel.Best.Area() < exact.Best.Area() {
		t.Fatal("selection produced a better-than-optimal area")
	}
	loss := float64(sel.Best.Area()-exact.Best.Area()) / float64(exact.Best.Area())
	if loss > 0.10 {
		t.Fatalf("area loss %.1f%% implausibly large for K1=10/K2=200", 100*loss)
	}
	// Every envelope implementation in both runs is realizable: the best
	// ones were placed and verified; spot-check that the staircases are
	// canonical and the selected one is a subset-like approximation.
	if len(sel.RootList) > len(exact.RootList) {
		t.Fatalf("selection grew the root staircase: %d > %d",
			len(sel.RootList), len(exact.RootList))
	}
	// The node statistics account for the final footprint.
	var sum int64
	for _, ns := range sel.NodeStats {
		sum += int64(ns.Stored)
	}
	if sum != sel.Stats.FinalStored {
		t.Fatalf("node stats sum %d != FinalStored %d", sum, sel.Stats.FinalStored)
	}
	// Renderers accept the real thing.
	if svg := floorplan.RenderSVG(sel.Placement, 640); len(svg) < 500 {
		t.Fatal("SVG suspiciously small")
	}
	if art := floorplan.RenderPlacement(sel.Placement, 80); len(art) < 200 {
		t.Fatal("ASCII art suspiciously small")
	}
}
