// Quickstart: optimize a five-module pinwheel floorplan and print the
// resulting placement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	floorplan "floorplan"
)

func main() {
	// Topology: the classic order-5 pinwheel [NW, NE, SE, SW, center].
	tree := floorplan.Wheel(
		floorplan.Leaf("cpu"),
		floorplan.Leaf("cache"),
		floorplan.Leaf("dsp"),
		floorplan.Leaf("io"),
		floorplan.Leaf("pll"),
	)

	// Each module offers a few alternative implementations (shapes).
	lib := floorplan.Library{
		"cpu":   {{W: 4, H: 7}, {W: 7, H: 4}, {W: 5, H: 6}},
		"cache": {{W: 6, H: 4}, {W: 4, H: 6}, {W: 8, H: 3}},
		"dsp":   {{W: 3, H: 6}, {W: 6, H: 3}},
		"io":    {{W: 7, H: 3}, {W: 3, H: 7}},
		"pll":   {{W: 3, H: 3}},
	}

	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Topology:")
	fmt.Print(floorplan.RenderTree(tree))
	fmt.Printf("\nOptimal envelope: %dx%d (area %d)\n",
		res.Best.W, res.Best.H, res.Best.Area())
	fmt.Printf("Envelope staircase (all non-redundant shapes): %v\n\n", res.RootList)
	fmt.Println(floorplan.PlacementTable(res.Placement))
	fmt.Println(floorplan.RenderPlacement(res.Placement, 64))
}
