// Toposearch: the design step upstream of the paper. Starting from a
// mediocre random topology over 20 modules, simulated annealing rearranges
// cuts, wheels and module positions; every candidate topology is scored by
// the area optimizer with R_Selection keeping the inner loop fast.
//
//	go run ./examples/toposearch
package main

import (
	"fmt"
	"log"
	"time"

	floorplan "floorplan"
)

func main() {
	tree, err := floorplan.RandomTree(20, 0.5, 99)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 6, 99)
	if err != nil {
		log.Fatal(err)
	}

	// How good is the random starting topology, exactly?
	initial, err := floorplan.Optimize(tree, lib, floorplan.Options{SkipPlacement: true})
	if err != nil {
		log.Fatal(err)
	}
	var used int64
	for _, impls := range lib {
		best := impls[0].Area()
		for _, r := range impls[1:] {
			if r.Area() < best {
				best = r.Area()
			}
		}
		used += best
	}
	fmt.Printf("start: area %d (module lower bound %d, %.1f%% waste)\n",
		initial.Best.Area(), used,
		100*float64(initial.Best.Area()-used)/float64(initial.Best.Area()))

	begin := time.Now()
	res, err := floorplan.SearchTopology(tree, lib, floorplan.SearchOptions{
		Seed:       1,
		Iterations: 400,
		Selection:  floorplan.Selection{K1: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anneal: %d proposed, %d accepted, %d improved in %s\n",
		res.Proposed, res.Accepted, res.Improved, time.Since(begin).Round(time.Millisecond))

	// Re-optimize the winning topology exactly (no selection) and place it.
	final, err := floorplan.Optimize(res.Best, lib, floorplan.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gain := 100 * float64(initial.Best.Area()-final.Best.Area()) / float64(initial.Best.Area())
	fmt.Printf("final: area %d (%.1f%% better than the start, %.1f%% waste)\n\n",
		final.Best.Area(), gain,
		100*float64(final.Best.Area()-used)/float64(final.Best.Area()))
	fmt.Println(floorplan.RenderPlacement(final.Placement, 72))
}
