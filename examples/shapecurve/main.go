// Shapecurve: Section 6 of the paper notes that modules with *continuous*
// shape functions (soft macros: any rectangle with w·h >= A within aspect
// bounds) are handled by sampling the curve into many points and letting
// R_Selection cut the list down to a tractable size.
//
// This example samples three soft macros' hyperbolic shape curves at 400
// points each, optimizes the dense instance, then compares against
// R_Selection-reduced instances of decreasing size.
//
//	go run ./examples/shapecurve
package main

import (
	"fmt"
	"log"
	"time"

	floorplan "floorplan"
)

func sampleCurve(area int64, maxAspect float64, n int) []floorplan.Impl {
	impls, err := floorplan.SampleShapeCurve(area, maxAspect, n)
	if err != nil {
		log.Fatal(err)
	}
	return impls
}

func main() {
	tree := floorplan.Wheel(
		floorplan.Leaf("soft1"),
		floorplan.Leaf("soft2"),
		floorplan.Leaf("soft3"),
		floorplan.Leaf("hard1"),
		floorplan.Leaf("hard2"),
	)

	dense := floorplan.Library{
		"soft1": sampleCurve(120000, 3, 400),
		"soft2": sampleCurve(80000, 3, 400),
		"soft3": sampleCurve(200000, 2.5, 400),
		"hard1": {{W: 300, H: 200}, {W: 200, H: 300}},
		"hard2": {{W: 250, H: 250}},
	}

	start := time.Now()
	ref, err := floorplan.Optimize(tree, dense, floorplan.Options{SkipPlacement: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense sampling (400 points/curve): area %d, M=%d, %s\n",
		ref.Best.Area(), ref.Stats.PeakStored, time.Since(start).Round(time.Millisecond))

	for _, k := range []int{100, 40, 15, 5} {
		reduced := floorplan.Library{}
		var lost int64
		for name, impls := range dense {
			if len(impls) <= k {
				reduced[name] = impls
				continue
			}
			sel, errArea, err := floorplan.SelectImpls(impls, k)
			if err != nil {
				log.Fatal(err)
			}
			lost += errArea
			reduced[name] = sel
		}
		start = time.Now()
		res, err := floorplan.Optimize(tree, reduced, floorplan.Options{SkipPlacement: true})
		if err != nil {
			log.Fatal(err)
		}
		delta := 100 * float64(res.Best.Area()-ref.Best.Area()) / float64(ref.Best.Area())
		fmt.Printf("R_Selection to %3d points/curve: area %d (%+.3f%%), M=%d, staircase error %d, %s\n",
			k, res.Best.Area(), delta, res.Stats.PeakStored, lost,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nthe optimal selection keeps the area penalty tiny even at 15 points per curve")
}
