// Orientation: the classic Stockmeyer problem — every module is a fixed
// rectangle that may be rotated by 90 degrees, and the floorplan is
// slicing. Demonstrates the slicing baseline and the paper's point that
// R_Selection plugs into other optimizers (Section 6).
//
//	go run ./examples/orientation
package main

import (
	"fmt"
	"log"

	floorplan "floorplan"
)

func main() {
	// A 12-module slicing floorplan: three columns of four stacked blocks.
	column := func(names ...string) *floorplan.Tree {
		kids := make([]*floorplan.Tree, len(names))
		for i, n := range names {
			kids[i] = floorplan.Leaf(n)
		}
		return floorplan.HSlice(kids...)
	}
	tree := floorplan.VSlice(
		column("a1", "a2", "a3", "a4"),
		column("b1", "b2", "b3", "b4"),
		column("c1", "c2", "c3", "c4"),
	)

	lib := floorplan.Library{}
	dims := [][2]int64{
		{8, 3}, {6, 5}, {9, 2}, {7, 4},
		{5, 5}, {10, 3}, {4, 8}, {6, 6},
		{12, 2}, {3, 9}, {7, 5}, {8, 4},
	}
	names := []string{"a1", "a2", "a3", "a4", "b1", "b2", "b3", "b4", "c1", "c2", "c3", "c4"}
	for i, n := range names {
		lib[n] = floorplan.Rotatable(dims[i][0], dims[i][1])
	}

	plain, err := floorplan.OptimizeSlicing(tree, lib, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Stockmeyer baseline: envelope %dx%d, area %d, %d implementations stored\n",
		plain.Best.W, plain.Best.H, plain.Best.Area(), plain.Stats.PeakStored)

	// The same run with R_Selection capping every node at 4 implementations.
	pruned, err := floorplan.OptimizeSlicing(tree, lib, 4)
	if err != nil {
		log.Fatal(err)
	}
	loss := 100 * float64(pruned.Best.Area()-plain.Best.Area()) / float64(plain.Best.Area())
	fmt.Printf("With R_Selection (K1=4): area %d (+%.2f%%), %d stored, %d selections\n",
		pruned.Best.Area(), loss, pruned.Stats.PeakStored, pruned.Stats.RSelections)

	// Cross-check with the general optimizer, which also produces a
	// placement for slicing trees.
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Best.Area() != plain.Best.Area() {
		log.Fatalf("optimizers disagree: %v vs %v", res.Best, plain.Best)
	}
	fmt.Println()
	fmt.Println(floorplan.RenderPlacement(res.Placement, 72))
}
