// Memorylimit: the paper's core scenario. A non-slicing floorplan with a
// rich module set is optimized under a hard cap on stored implementations.
// Plain [9] runs out of memory; incorporating R_Selection completes well
// under the cap at a small area penalty.
//
//	go run ./examples/memorylimit
package main

import (
	"fmt"
	"log"
	"time"

	floorplan "floorplan"
)

func main() {
	tree, err := floorplan.PaperFloorplan("FP1")
	if err != nil {
		log.Fatal(err)
	}
	// A diverse module set (the paper's Table 1 case 4 in this repo's
	// calibration): 40 implementations per module, wide aspect range.
	lib, err := floorplan.GenerateModules(tree, floorplan.ModuleGen{
		N: 40, Seed: 4, Aspect: 7, MinArea: 2000000, MaxArea: 20000000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FP1: %d modules, %d wheels, depth %d\n",
		tree.ModuleCount(), tree.WheelCount(), tree.Depth())

	const limit = 100000
	fmt.Printf("memory budget: %d stored implementations\n\n", limit)

	// Plain [9]: enumerate every non-redundant implementation everywhere.
	start := time.Now()
	_, err = floorplan.Optimize(tree, lib, floorplan.Options{
		MemoryLimit:   limit,
		SkipPlacement: true,
	})
	switch {
	case err == nil:
		fmt.Println("[9] alone unexpectedly fit in memory — try a smaller limit")
	case floorplan.IsMemoryLimit(err):
		fmt.Printf("[9] alone: OUT OF MEMORY after %s\n    (%v)\n",
			time.Since(start).Round(time.Millisecond), err)
	default:
		log.Fatal(err)
	}

	// The unrestricted optimum, for reference (no limit).
	exact, err := floorplan.Optimize(tree, lib, floorplan.Options{SkipPlacement: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreference optimum (no limit): area %d, M=%d, CPU %s\n",
		exact.Best.Area(), exact.Stats.PeakStored, exact.Stats.Elapsed.Round(time.Millisecond))

	// [9] + R_Selection under the same budget.
	for _, k1 := range []int{20, 30, 40} {
		res, err := floorplan.Optimize(tree, lib, floorplan.Options{
			Selection:     floorplan.Selection{K1: k1},
			MemoryLimit:   limit,
			SkipPlacement: true,
		})
		if err != nil {
			log.Fatalf("K1=%d: %v", k1, err)
		}
		delta := 100 * float64(res.Best.Area()-exact.Best.Area()) / float64(exact.Best.Area())
		fmt.Printf("[9]+R_Selection K1=%d: area %d (+%.2f%%), M=%d (%.1fx less), CPU %s\n",
			k1, res.Best.Area(), delta,
			res.Stats.PeakStored,
			float64(exact.Stats.PeakStored)/float64(res.Stats.PeakStored),
			res.Stats.Elapsed.Round(time.Millisecond))
	}
}
