package floorplan_test

import (
	"fmt"

	floorplan "floorplan"
)

// The basic workflow: build a topology, list each module's shapes,
// optimize, inspect the result.
func ExampleOptimize() {
	tree := floorplan.Wheel(
		floorplan.Leaf("nw"), floorplan.Leaf("ne"), floorplan.Leaf("se"),
		floorplan.Leaf("sw"), floorplan.Leaf("c"))
	lib := floorplan.Library{
		"nw": {{W: 4, H: 7}},
		"ne": {{W: 6, H: 4}},
		"se": {{W: 3, H: 6}},
		"sw": {{W: 7, H: 3}},
		"c":  {{W: 3, H: 3}},
	}
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	slack, _ := res.Placement.WhiteSpace()
	fmt.Printf("envelope %dx%d, area %d, whitespace %d\n",
		res.Best.W, res.Best.H, res.Best.Area(), slack)
	// Output: envelope 10x10, area 100, whitespace 0
}

// R_Selection picks the k-subset of a staircase minimizing the lost area;
// the endpoints always survive.
func ExampleSelectImpls() {
	impls := []floorplan.Impl{
		{W: 12, H: 1}, {W: 10, H: 2}, {W: 8, H: 4},
		{W: 6, H: 6}, {W: 4, H: 9}, {W: 2, H: 11},
	}
	selected, lost, err := floorplan.SelectImpls(impls, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("kept %d shapes, staircase error %d\n", len(selected), lost)
	fmt.Printf("first %v, last %v\n", selected[0], selected[len(selected)-1])
	// Output:
	// kept 3 shapes, staircase error 16
	// first (12,1), last (2,11)
}

// Soft macros with continuous shape functions are sampled densely and then
// thinned optimally (Section 6 of the paper).
func ExampleSampleShapeCurve() {
	curve, err := floorplan.SampleShapeCurve(400, 4, 200)
	if err != nil {
		fmt.Println(err)
		return
	}
	thin, lost, err := floorplan.SelectImplsBudget(curve, 25)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sampled %d points, kept %d within error budget (lost %d)\n",
		len(curve), len(thin), lost)
	// Output: sampled 21 points, kept 10 within error budget (lost 24)
}

// Slicing floorplans use Stockmeyer's linear-merge baseline; modules that
// may rotate contribute both orientations.
func ExampleOptimizeSlicing() {
	tree := floorplan.HSlice(floorplan.Leaf("a"), floorplan.Leaf("b"))
	lib := floorplan.Library{
		"a": floorplan.Rotatable(4, 1),
		"b": floorplan.Rotatable(4, 1),
	}
	res, err := floorplan.OptimizeSlicing(tree, lib, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("best %dx%d (area %d) out of %d envelope shapes\n",
		res.Best.W, res.Best.H, res.Best.Area(), len(res.RootList))
	// Output: best 4x2 (area 8) out of 2 envelope shapes
}
