package floorplan_test

import (
	"testing"

	floorplan "floorplan"
)

func TestSampleShapeCurve(t *testing.T) {
	impls, err := floorplan.SampleShapeCurve(10000, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(impls) == 0 || len(impls) > 50 {
		t.Fatalf("got %d implementations", len(impls))
	}
	for _, r := range impls {
		if r.W*r.H < 10000 {
			t.Fatalf("%v violates the area constraint", r)
		}
		aspect := float64(r.W) / float64(r.H)
		// The rounding to the smallest feasible integer height can push
		// the aspect ratio slightly past the nominal bound.
		if aspect > 4.6 || aspect < 1/4.6 {
			t.Fatalf("%v has aspect %.2f beyond bound", r, aspect)
		}
	}
	// Canonical: strictly decreasing widths.
	for i := 1; i < len(impls); i++ {
		if impls[i].W >= impls[i-1].W {
			t.Fatal("curve not canonical")
		}
	}
}

func TestSampleShapeCurveErrors(t *testing.T) {
	if _, err := floorplan.SampleShapeCurve(0, 2, 5); err == nil {
		t.Error("zero area accepted")
	}
	if _, err := floorplan.SampleShapeCurve(100, 0.5, 5); err == nil {
		t.Error("aspect < 1 accepted")
	}
	if _, err := floorplan.SampleShapeCurve(100, 2, 0); err == nil {
		t.Error("zero samples accepted")
	}
	one, err := floorplan.SampleShapeCurve(100, 2, 1)
	if err != nil || len(one) != 1 {
		t.Errorf("single sample: %v %v", one, err)
	}
}

func TestSelectionCurveAndBudget(t *testing.T) {
	impls, err := floorplan.SampleShapeCurve(50000, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := floorplan.SelectionCurve(impls, len(impls))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 2 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	// Monotone non-increasing, ends at zero.
	for i := 1; i < len(curve); i++ {
		if curve[i].Error > curve[i-1].Error {
			t.Fatal("curve not monotone")
		}
	}
	if curve[len(curve)-1].Error != 0 {
		t.Fatal("full selection must cost 0")
	}
	// The budget selection lands on the curve.
	mid := curve[0].Error / 3
	sel, errArea, err := floorplan.SelectImplsBudget(impls, mid)
	if err != nil {
		t.Fatal(err)
	}
	if errArea > mid {
		t.Fatalf("budget exceeded: %d > %d", errArea, mid)
	}
	found := false
	for _, p := range curve {
		if p.K == len(sel) && p.Error == errArea {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("budget selection (k=%d, err=%d) not on the sweep curve", len(sel), errArea)
	}
}

func TestSelectImplsBudgetErrors(t *testing.T) {
	if _, _, err := floorplan.SelectImplsBudget(nil, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := floorplan.SelectImplsBudget([]floorplan.Impl{{W: 1, H: 1}}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := floorplan.Grid(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.ModuleCount() != 12 {
		t.Fatalf("ModuleCount = %d", g.ModuleCount())
	}
	if g.WheelCount() != 0 {
		t.Fatal("grid must be slicing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1x1 and 1xN edge cases.
	single, err := floorplan.Grid(1, 1, nil)
	if err != nil || single.ModuleCount() != 1 {
		t.Fatalf("1x1: %v %v", single, err)
	}
	row, err := floorplan.Grid(1, 5, func(r, c int) string { return "x" + string(rune('a'+c)) })
	if err != nil || row.ModuleCount() != 5 {
		t.Fatalf("1x5: %v", err)
	}
	if _, err := floorplan.Grid(0, 3, nil); err == nil {
		t.Error("0 rows accepted")
	}
	// A grid is optimizable end to end with the slicing baseline.
	lib := floorplan.Library{}
	for _, l := range g.Leaves() {
		lib[l.Module] = floorplan.Rotatable(6, 3)
	}
	res, err := floorplan.OptimizeSlicing(g, lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Area() < 12*18 {
		t.Fatalf("grid area %d below module area sum", res.Best.Area())
	}
}
