package floorplan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/plan"
	"floorplan/internal/reqid"
	"floorplan/internal/server"
	"floorplan/internal/telemetry"
)

func clientFixture(t *testing.T) (*Client, *Tree, Library) {
	t.Helper()
	store, err := cache.New(cache.Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Workers: 2, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	tree := plan.NewVSlice(
		plan.NewLeaf("a"),
		plan.NewHSlice(plan.NewLeaf("b"), plan.NewLeaf("c")),
	)
	lib := Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
		"c": {{W: 2, H: 5}, {W: 5, H: 2}},
	}
	return &Client{BaseURL: ts.URL + "/"}, tree, lib
}

func TestClientRoundTrip(t *testing.T) {
	c, tree, lib := clientFixture(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	first, err := c.Optimize(ctx, tree, lib, ServeOptions{})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if first.Runtime.Cache != "miss" {
		t.Fatalf("first call disposition = %q, want miss", first.Runtime.Cache)
	}
	res, err := first.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}

	// The client result must match a local in-process run exactly.
	local, err := Optimize(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != local.Best || res.Area != local.Best.Area() {
		t.Fatalf("served best %+v (area %d) != local best %+v", res.Best, res.Area, local.Best)
	}

	second, err := c.Optimize(ctx, tree, lib, ServeOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if second.Runtime.Cache != "hit" {
		t.Fatalf("second call disposition = %q, want hit", second.Runtime.Cache)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result not byte-identical to fresh result")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.Cache.Hits != 1 {
		t.Fatalf("stats = requests %d hits %d, want 2 and 1", stats.Requests, stats.Cache.Hits)
	}

	// The request key matches the public fingerprint of the same inputs.
	fp, err := Fingerprint(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Key != fp {
		t.Fatalf("server key %s != local fingerprint %s", first.Key, fp)
	}
}

func TestClientServerError(t *testing.T) {
	c, tree, _ := clientFixture(t)
	_, err := c.Optimize(context.Background(), tree, Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
	var se *ServeError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ServeError", err)
	}
	if se.Code != 400 {
		t.Fatalf("code %d, want 400", se.Code)
	}
}

// scriptedServer answers /v1/optimize from a fixed status/header script,
// one entry per attempt, recording attempt times.
func scriptedServer(t *testing.T, script []func(w http.ResponseWriter)) (*httptest.Server, *[]time.Time) {
	t.Helper()
	var mu sync.Mutex
	times := &[]time.Time{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := len(*times)
		*times = append(*times, time.Now())
		mu.Unlock()
		if n >= len(script) {
			t.Errorf("unexpected attempt %d beyond script", n+1)
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		script[n](w)
	}))
	t.Cleanup(ts.Close)
	return ts, times
}

const cannedOptimizeResponse = `{"key":"abc","result":{"best":{"W":1,"H":1},"area":1,"root_list":[],` +
	`"stats":{"peak_stored":0,"final_stored":0,"generated":0,"nodes":0,"l_nodes":0,` +
	`"r_selections":0,"l_selections":0,"max_rlist":0,"max_lset":0}},` +
	`"runtime":{"elapsed_ms":1,"cache":"miss"}}`

// TestClientRetryHonorsRetryAfter drives the retry loop through the exact
// sequence the server emits under load: a 429 with Retry-After, then
// success. The client must wait at least the hinted delay before retrying.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	ts, times := scriptedServer(t, []func(w http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated: request queue full"}`)
		},
		func(w http.ResponseWriter) { fmt.Fprint(w, cannedOptimizeResponse) },
	})
	col := NewCollector()
	c := &Client{
		BaseURL:   ts.URL,
		Retry:     RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Telemetry: col,
	}
	resp, err := c.Optimize(context.Background(), Leaf("a"), Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
	if err != nil {
		t.Fatalf("optimize through 429→200: %v", err)
	}
	if resp.Key != "abc" {
		t.Fatalf("key = %q, want abc", resp.Key)
	}
	if n := len(*times); n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
	if gap := (*times)[1].Sub((*times)[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry after %v, want >= ~1s (the Retry-After hint)", gap)
	}
	if a, r := col.Counter(telemetry.CtrClientAttempts), col.Counter(telemetry.CtrClientRetries); a != 2 || r != 1 {
		t.Fatalf("client counters attempts/retries = %d/%d, want 2/1", a, r)
	}
}

// TestClientRetryHonorsHTTPDateRetryAfter drives the retry loop through the
// RFC 9110 HTTP-date form of Retry-After: a future date must hold the retry
// back until roughly that instant, and a date already in the past must clamp
// to zero extra delay — the retry fires immediately on the backoff schedule
// instead of waiting on a stale hint (or, worse, a negative duration).
func TestClientRetryHonorsHTTPDateRetryAfter(t *testing.T) {
	busyAt := func(when time.Time) func(w http.ResponseWriter) {
		return func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", when.UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated: request queue full"}`)
		}
	}
	run := func(t *testing.T, when time.Time) time.Duration {
		t.Helper()
		ts, times := scriptedServer(t, []func(w http.ResponseWriter){
			busyAt(when),
			func(w http.ResponseWriter) { fmt.Fprint(w, cannedOptimizeResponse) },
		})
		c := &Client{
			BaseURL: ts.URL,
			Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		}
		resp, err := c.Optimize(context.Background(), Leaf("a"), Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
		if err != nil {
			t.Fatalf("optimize through 429→200: %v", err)
		}
		if resp.Key != "abc" {
			t.Fatalf("key = %q, want abc", resp.Key)
		}
		if n := len(*times); n != 2 {
			t.Fatalf("server saw %d attempts, want 2", n)
		}
		return (*times)[1].Sub((*times)[0])
	}
	t.Run("future date delays the retry", func(t *testing.T) {
		// http.TimeFormat has one-second resolution, so a +2s date leaves at
		// least ~1s of hint after truncation.
		if gap := run(t, time.Now().Add(2*time.Second)); gap < 900*time.Millisecond {
			t.Fatalf("retry after %v, want >= ~1s (the HTTP-date hint)", gap)
		}
	})
	t.Run("past date clamps to zero backoff", func(t *testing.T) {
		if gap := run(t, time.Now().Add(-time.Hour)); gap > 500*time.Millisecond {
			t.Fatalf("retry after %v: a stale HTTP-date hint must not delay the retry", gap)
		}
	})
}

// TestClientRetryTransportError covers the other retryable class: the
// connection died before any response arrived.
func TestClientRetryTransportError(t *testing.T) {
	ts, times := scriptedServer(t, []func(w http.ResponseWriter){
		func(w http.ResponseWriter) { panic(http.ErrAbortHandler) }, // slam the connection shut
		func(w http.ResponseWriter) { fmt.Fprint(w, `{"status":"ok"}`) },
	})
	c := &Client{BaseURL: ts.URL, Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health through aborted-then-ok: %v", err)
	}
	if n := len(*times); n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
}

// TestClientNoRetryOnBadRequest: 4xx other than 429 is the client's own
// fault; resending the same bytes cannot help and must not happen.
func TestClientNoRetryOnBadRequest(t *testing.T) {
	ts, times := scriptedServer(t, []func(w http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"missing tree"}`)
		},
	})
	c := &Client{BaseURL: ts.URL, Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}}
	_, err := c.Optimize(context.Background(), Leaf("a"), Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
	var se *ServeError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("error = %v, want ServeError 400", err)
	}
	if n := len(*times); n != 1 {
		t.Fatalf("server saw %d attempts, want 1 (400 is not retryable)", n)
	}
}

// TestClientRetryAfterExhaustion: the policy's budget bounds the loop and
// the final ServeError carries the hint for the caller.
func TestClientRetryAfterExhaustion(t *testing.T) {
	busy := func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"deadline reached while queued"}`)
	}
	ts, times := scriptedServer(t, []func(w http.ResponseWriter){busy, busy, busy})
	c := &Client{BaseURL: ts.URL, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}}
	_, err := c.Optimize(context.Background(), Leaf("a"), Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
	var se *ServeError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("error = %v, want ServeError 503 after exhausting retries", err)
	}
	if n := len(*times); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (MaxAttempts)", n)
	}
}

// TestClientResponseTooLarge: a body flowing past the read limit must
// surface as a clear truncation error, not a JSON decode failure.
func TestClientResponseTooLarge(t *testing.T) {
	old := clientMaxResponseBytes
	clientMaxResponseBytes = 1024
	defer func() { clientMaxResponseBytes = old }()

	ts, _ := scriptedServer(t, []func(w http.ResponseWriter){
		func(w http.ResponseWriter) {
			fmt.Fprintf(w, `{"pad":%q}`, strings.Repeat("x", 4096))
		},
	})
	c := &Client{BaseURL: ts.URL}
	_, err := c.Stats(context.Background())
	if err == nil || !strings.Contains(err.Error(), "exceeds the 1024-byte client limit") {
		t.Fatalf("error = %v, want a response-exceeds-limit error", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		lax  bool // HTTP-date: accept a small range
	}{
		{"", 0, false},
		{"2", 2 * time.Second, false},
		{"0", 0, false},
		{"-3", 0, false},
		{"garbage", 0, false},
		{time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat), 3 * time.Second, true},
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, false},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.in)
		if tc.lax {
			if got <= 0 || got > tc.want {
				t.Errorf("parseRetryAfter(%q) = %v, want in (0, %v]", tc.in, got, tc.want)
			}
		} else if got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestClientTraceparentPropagation: a trace attached with WithTraceparent
// travels to the server and comes back as the response's trace ID; each
// retry keeps the trace and sends a fresh span.
func TestClientTraceparentPropagation(t *testing.T) {
	tp := NewTraceparent()
	parsed, err := reqid.Parse(tp)
	if err != nil {
		t.Fatalf("NewTraceparent produced unparseable %q: %v", tp, err)
	}
	ctx := WithTraceparent(context.Background(), tp)
	if got := TraceparentFromContext(ctx); got != tp {
		t.Fatalf("TraceparentFromContext = %q, want %q", got, tp)
	}
	if got := TraceparentFromContext(context.Background()); got != "" {
		t.Fatalf("TraceparentFromContext on a bare context = %q, want empty", got)
	}
	if got := WithTraceparent(context.Background(), "garbage"); TraceparentFromContext(got) != "" {
		t.Fatal("WithTraceparent accepted a malformed header")
	}

	c, tree, lib := clientFixture(t)
	resp, err := c.Optimize(ctx, tree, lib, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Runtime.TraceID != parsed.TraceID.String() {
		t.Fatalf("server reported trace %q, want the caller's %q",
			resp.Runtime.TraceID, parsed.TraceID.String())
	}
	if resp.Runtime.SpanID == "" || resp.Runtime.SpanID == parsed.SpanID.String() {
		t.Fatalf("server span %q should be fresh, not the client's", resp.Runtime.SpanID)
	}
}

// TestClientRetriesShareTrace: the attempts of one logical call carry the
// same trace ID with distinct span IDs, even without a caller-provided
// traceparent.
func TestClientRetriesShareTrace(t *testing.T) {
	var mu sync.Mutex
	var headers []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get("traceparent"))
		n := len(headers)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		fmt.Fprint(w, cannedOptimizeResponse)
	}))
	t.Cleanup(ts.Close)

	c := &Client{BaseURL: ts.URL, Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}}
	if _, err := c.Optimize(context.Background(), Leaf("a"), Library{"a": {{W: 1, H: 1}}}, ServeOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(headers))
	}
	var ids [2]reqid.Context
	for i, h := range headers {
		tc, err := reqid.Parse(h)
		if err != nil {
			t.Fatalf("attempt %d sent unparseable traceparent %q: %v", i+1, h, err)
		}
		ids[i] = tc
	}
	if ids[0].TraceID != ids[1].TraceID {
		t.Fatalf("retries changed trace ID: %s vs %s", ids[0].TraceID, ids[1].TraceID)
	}
	if ids[0].SpanID == ids[1].SpanID {
		t.Fatal("retry reused the previous attempt's span ID")
	}
}
