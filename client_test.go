package floorplan

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"floorplan/internal/cache"
	"floorplan/internal/plan"
	"floorplan/internal/server"
)

func clientFixture(t *testing.T) (*Client, *Tree, Library) {
	t.Helper()
	store, err := cache.New(cache.Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Workers: 2, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	tree := plan.NewVSlice(
		plan.NewLeaf("a"),
		plan.NewHSlice(plan.NewLeaf("b"), plan.NewLeaf("c")),
	)
	lib := Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
		"c": {{W: 2, H: 5}, {W: 5, H: 2}},
	}
	return &Client{BaseURL: ts.URL + "/"}, tree, lib
}

func TestClientRoundTrip(t *testing.T) {
	c, tree, lib := clientFixture(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	first, err := c.Optimize(ctx, tree, lib, ServeOptions{})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if first.Runtime.Cache != "miss" {
		t.Fatalf("first call disposition = %q, want miss", first.Runtime.Cache)
	}
	res, err := first.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}

	// The client result must match a local in-process run exactly.
	local, err := Optimize(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != local.Best || res.Area != local.Best.Area() {
		t.Fatalf("served best %+v (area %d) != local best %+v", res.Best, res.Area, local.Best)
	}

	second, err := c.Optimize(ctx, tree, lib, ServeOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if second.Runtime.Cache != "hit" {
		t.Fatalf("second call disposition = %q, want hit", second.Runtime.Cache)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result not byte-identical to fresh result")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.Cache.Hits != 1 {
		t.Fatalf("stats = requests %d hits %d, want 2 and 1", stats.Requests, stats.Cache.Hits)
	}

	// The request key matches the public fingerprint of the same inputs.
	fp, err := Fingerprint(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Key != fp {
		t.Fatalf("server key %s != local fingerprint %s", first.Key, fp)
	}
}

func TestClientServerError(t *testing.T) {
	c, tree, _ := clientFixture(t)
	_, err := c.Optimize(context.Background(), tree, Library{"a": {{W: 1, H: 1}}}, ServeOptions{})
	var se *ServeError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ServeError", err)
	}
	if se.Code != 400 {
		t.Fatalf("code %d, want 400", se.Code)
	}
}
