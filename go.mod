module floorplan

go 1.22
