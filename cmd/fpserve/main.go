// fpserve serves floorplan area optimization over an HTTP JSON API, with a
// content-addressed cross-request result cache.
//
// Example:
//
//	fpserve -addr localhost:8080 -cache-mb 64 -workers 4 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/optimize -d '{
//	  "tree": {"kind":"vslice","children":[
//	    {"kind":"leaf","module":"a"},{"kind":"leaf","module":"b"}]},
//	  "library": {"a":[{"W":4,"H":7},{"W":7,"H":4}], "b":[{"W":3,"H":3}]},
//	  "options": {"k1": 20}
//	}'
//	curl -s localhost:8080/v1/stats
//
// The same request twice is answered from the cache the second time,
// byte-identically (see the `runtime.cache` field flip from "miss" to
// "hit"). `-addr :0` picks a free port; `-addr-file` publishes the bound
// address for scripts.
//
// Observability: GET /metrics serves a Prometheus text exposition, every
// request emits one structured access-log record on stderr (tune with
// -log-level and -log-format), and responses carry the request's W3C trace
// ID — propagated from a client traceparent header when one was sent.
//
// Cluster mode: start every node with the same -peers list and its own
// -self URL, e.g.
//
//	fpserve -addr localhost:8081 -self http://localhost:8081 \
//	  -peers http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Each cache key then has one owning node on a consistent-hash ring;
// requests landing elsewhere are forwarded to the owner (so a repeated
// fingerprint costs one optimizer run cluster-wide), hot keys replicate to
// every node's local cache, and a down peer degrades to local computation.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/cliutil"
	"floorplan/internal/cluster"
	"floorplan/internal/server"
	"floorplan/internal/substore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpserve: ")
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address (use :0 for a random port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		workers    = flag.Int("workers", 0, "concurrent optimizations (0 = all CPUs)")
		queue      = flag.Int("queue", 0, "requests allowed to wait for a worker before shedding (0 = 4x workers)")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		maxLimit   = flag.Int64("max-limit", 0, "ceiling on per-request stored-implementation budgets (0 = none)")
		cacheMB    = flag.Int64("cache-mb", 64, "result cache budget in MiB (0 disables the cache)")
		cacheShard = flag.Int("cache-shards", 16, "cache shard count")
		subBytes   = flag.Int64("subtree-cache-bytes", 64<<20, "subtree result store budget in bytes (0 disables subtree memoization)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful shutdown drain deadline")
		slowThresh = flag.Duration("slow-threshold", 0, "capture requests at least this slow into GET /debug/slow (0 disables)")
		slowCap    = flag.Int("slow-capacity", 0, "slow-request capture ring size (0 = 64)")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node, including this one (empty = single-node)")
		self       = flag.String("self", "", "this node's base URL exactly as spelled in -peers (required with -peers)")
		nodeID     = flag.String("node-id", "", "display id for this node in stats/logs (default: -self, or the listen address single-node)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per backend on the placement ring (0 = 128)")
		hotKeys    = flag.Int("hot-keys", 0, "top-K hot keys replicated to every node's cache (0 = 32, negative disables)")
		peerTO     = flag.Duration("peer-timeout", 0, "per-hop timeout for one peer forward attempt (0 = 2s)")
		statsTO    = flag.Duration("cluster-stats-timeout", 0, "per-peer timeout for one GET /v1/cluster/stats fan-out fetch (0 = 1s)")
		profP99    = flag.Duration("profile-trigger-p99", 0, "arm the profiling flight recorder: capture CPU+heap profiles when a sampling window's p99 crosses this (0 disables)")
		profRing   = flag.Int("profile-ring", 0, "profile capture ring size (0 = 4)")
		profEvery  = flag.Duration("profile-interval", 0, "flight recorder sampling period (0 = 5s)")
		tf         cliutil.TelemetryFlags
	)
	tf.Register(flag.CommandLine)
	flag.Parse()

	// The server always collects telemetry — GET /metrics must be populated
	// for every instance, not only the ones started with a telemetry flag.
	// The debug listener exposes it live, the report flushes at shutdown.
	col := tf.CollectorIf(true)
	logger, err := tf.Logger()
	if err != nil {
		log.Fatal(err)
	}
	if err := tf.StartDebug(col); err != nil {
		log.Fatal(err)
	}

	var store *cache.Cache
	if *cacheMB > 0 {
		var err error
		store, err = cache.New(cache.Config{
			MaxBytes:  *cacheMB << 20,
			Shards:    *cacheShard,
			Telemetry: col,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	var sub *substore.Store
	if *subBytes > 0 {
		var err error
		sub, err = substore.New(substore.Config{
			MaxBytes:  *subBytes,
			Telemetry: col,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	var cl *cluster.Cluster
	if *peers != "" {
		if *self == "" {
			log.Fatal("-peers requires -self (this node's URL as spelled in the peer list)")
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:        *self,
			Peers:       peerList,
			NodeID:      *nodeID,
			VNodes:      *vnodes,
			HotK:        *hotKeys,
			PeerTimeout: *peerTO,
			Telemetry:   col,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxMemoryLimit: *maxLimit,
		Cache:          store,
		Substore:       sub,
		Telemetry:      col,
		Logger:         logger,
		SlowThreshold:  *slowThresh,
		SlowCapacity:   *slowCap,
		NodeID:         *nodeID,
		Cluster:        cl,

		ClusterStatsTimeout: *statsTO,
		ProfileTriggerP99:   *profP99,
		ProfileRing:         *profRing,
		ProfileInterval:     *profEvery,
		// Span retention grows without bound on a long-lived server, so
		// only a run that will export a trace keeps them.
		KeepSpans: tf.Trace != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	if cl != nil {
		log.Printf("listening on http://%s (cache %d MiB, workers %d, cluster node %s of %d peers)",
			bound, *cacheMB, *workers, cl.NodeID(), len(cl.Ring().Nodes()))
	} else {
		log.Printf("listening on http://%s (cache %d MiB, workers %d)", bound, *cacheMB, *workers)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("draining (up to %s)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := tf.Flush(col); err != nil {
		log.Fatal(err)
	}
}
