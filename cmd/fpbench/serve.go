package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	floorplan "floorplan"
	"floorplan/internal/plan"
	"floorplan/internal/telemetry"
)

// serveCheck drives a running fpserve end to end: health, a concurrent
// burst of identical requests that must coalesce into one computation, two
// optimize round-trips of the same workload (expecting the second to hit
// the cache when one is enabled), byte-identity of the served results
// across worker counts, agreement with a local in-process run, and a
// non-zero cache hit count in /v1/stats. The client runs under a retry
// policy so transient 429/503 shedding does not fail the check; its
// attempt counters are reported at the end. Any violation is an error
// (non-zero exit), which is what lets `make serve-smoke` gate on it.
func serveCheck(baseURL string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	col := floorplan.NewCollector()
	c := &floorplan.Client{
		BaseURL:   baseURL,
		Retry:     floorplan.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond},
		Telemetry: col,
	}

	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("health check: %w", err)
	}

	coalesced, err := coalesceCheck(ctx, c)
	if err != nil {
		return err
	}

	tree, lib := serveWorkload()
	opts := floorplan.Options{Selection: floorplan.Selection{K1: 12}}
	before, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	// The first round-trip runs under an explicit trace: the server must
	// echo the caller's trace ID back in the runtime envelope.
	tp := floorplan.NewTraceparent()
	first, err := c.Optimize(floorplan.WithTraceparent(ctx, tp), tree, lib,
		floorplan.ServeOptions{K1: 12, Workers: 1})
	if err != nil {
		return fmt.Errorf("optimize #1: %w", err)
	}
	if want := tp[3:35]; first.Runtime.TraceID != want {
		return fmt.Errorf("server echoed trace ID %q, want the caller's %q (traceparent %s)",
			first.Runtime.TraceID, want, tp)
	}
	second, err := c.Optimize(ctx, tree, lib, floorplan.ServeOptions{K1: 12, Workers: 8})
	if err != nil {
		return fmt.Errorf("optimize #2: %w", err)
	}
	if second.Runtime.TraceID == "" || second.Runtime.SpanID == "" {
		return fmt.Errorf("server minted no trace identity (trace %q span %q)",
			second.Runtime.TraceID, second.Runtime.SpanID)
	}

	if first.Key != second.Key {
		return fmt.Errorf("key changed across identical workloads: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(first.Result, second.Result) {
		return fmt.Errorf("served results are not byte-identical across worker counts (dispositions %q, %q)",
			first.Runtime.Cache, second.Runtime.Cache)
	}
	if before.CacheEnabled && second.Runtime.Cache != "hit" {
		return fmt.Errorf("second request disposition = %q, want hit (cache is enabled)",
			second.Runtime.Cache)
	}

	// The served optimum must match this binary's own optimizer.
	res, err := first.DecodeResult()
	if err != nil {
		return err
	}
	local, err := floorplan.Optimize(tree, lib, opts)
	if err != nil {
		return fmt.Errorf("local reference run: %w", err)
	}
	if res.Best != local.Best {
		return fmt.Errorf("served optimum %+v differs from local optimum %+v", res.Best, local.Best)
	}

	after, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if before.CacheEnabled && after.Cache.Hits <= before.Cache.Hits {
		return fmt.Errorf("cache hits did not advance: %d -> %d", before.Cache.Hits, after.Cache.Hits)
	}

	total := after.Requests
	rate := 0.0
	if total > 0 {
		rate = float64(after.Coalesced+after.Cache.Hits) / float64(total)
	}
	log.Printf("serve check OK: %s optimum %dx%d area %d, dispositions %s/%s, cache hits %d",
		baseURL, res.Best.W, res.Best.H, res.Area,
		first.Runtime.Cache, second.Runtime.Cache, after.Cache.Hits)
	log.Printf("coalescing: %d/%d burst requests coalesced; server totals: coalesced %d, hits %d of %d requests (%.0f%% deduplicated)",
		coalesced, coalesceBurst, after.Coalesced, after.Cache.Hits, total, 100*rate)
	log.Printf("client: %d attempts, %d retries",
		col.Counter(telemetry.CtrClientAttempts), col.Counter(telemetry.CtrClientRetries))
	return nil
}

// coalesceBurst is how many identical concurrent requests coalesceCheck
// fires at a cold key.
const coalesceBurst = 6

// coalesceAttempts bounds the cold-key retries in coalesceCheck. Whether a
// burst actually overlaps the leader's computation is a race against the
// optimizer's speed; losing it occasionally (1 miss + N-1 hits, nothing
// coalesced) is not a correctness failure, so the check re-rolls on a fresh
// key rather than flaking.
const coalesceAttempts = 3

// coalesceCheck fires coalesceBurst concurrent identical requests and
// verifies they were answered from a single computation: byte-identical
// payloads, and — when the key was cold — at least one "coalesced"
// disposition. Against a server that already saw this workload (a rerun of
// fpbench -server) every response is a plain "hit", which also proves the
// deduplication path; the assertion adapts. A cold burst that resolves with
// no coalesced disposition lost the timing race; it retries on a salted
// (fresh) key up to coalesceAttempts times before failing.
func coalesceCheck(ctx context.Context, c *floorplan.Client) (int, error) {
	var dispositions map[string]int
	for attempt := 0; attempt < coalesceAttempts; attempt++ {
		var err error
		dispositions, err = coalesceBurstOnce(ctx, c, attempt)
		if err != nil {
			return 0, err
		}
		misses := dispositions["miss"] + dispositions["off"]
		if misses == 0 || dispositions["coalesced"] > 0 {
			return dispositions["coalesced"], nil
		}
	}
	return 0, fmt.Errorf("coalesce burst: %d cold bursts of %d identical requests produced no coalesced response (last dispositions %v)",
		coalesceAttempts, coalesceBurst, dispositions)
}

// coalesceBurstOnce fires one aligned burst at the salt-keyed workload and
// returns the disposition tally, enforcing the invariants that must hold
// regardless of timing: every reply succeeds, shares one cache key, and is
// byte-identical.
func coalesceBurstOnce(ctx context.Context, c *floorplan.Client, salt int) (map[string]int, error) {
	tree, lib := coalesceWorkload(salt)
	type reply struct {
		resp *floorplan.ServeResponse
		err  error
	}
	replies := make([]reply, coalesceBurst)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // align the burst so the requests overlap in flight
			resp, err := c.Optimize(ctx, tree, lib, floorplan.ServeOptions{})
			replies[i] = reply{resp, err}
		}(i)
	}
	close(start)
	wg.Wait()

	dispositions := map[string]int{}
	for i, r := range replies {
		if r.err != nil {
			return nil, fmt.Errorf("coalesce burst request %d: %w", i, r.err)
		}
		dispositions[r.resp.Runtime.Cache]++
		if r.resp.Key != replies[0].resp.Key {
			return nil, fmt.Errorf("coalesce burst: key diverged: %s vs %s", r.resp.Key, replies[0].resp.Key)
		}
		if !bytes.Equal(r.resp.Result, replies[0].resp.Result) {
			return nil, fmt.Errorf("coalesce burst: results not byte-identical (dispositions %v)", dispositions)
		}
	}
	return dispositions, nil
}

// serveWorkload is a small fixed floorplan with a wheel (so the L-shaped
// path is exercised) that still optimizes in milliseconds.
func serveWorkload() (*floorplan.Tree, floorplan.Library) {
	tree := plan.NewVSlice(
		plan.NewWheel(
			plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"),
			plan.NewLeaf("sw"), plan.NewLeaf("c"),
		),
		plan.NewHSlice(plan.NewLeaf("x"), plan.NewLeaf("y")),
	)
	lib := floorplan.Library{
		"nw": {{W: 2, H: 4}, {W: 4, H: 2}, {W: 3, H: 3}},
		"ne": {{W: 3, H: 3}, {W: 9, H: 1}},
		"se": {{W: 2, H: 4}, {W: 4, H: 2}},
		"sw": {{W: 3, H: 5}, {W: 5, H: 3}},
		"c":  {{W: 1, H: 2}, {W: 2, H: 1}},
		"x":  {{W: 4, H: 6}, {W: 6, H: 4}},
		"y":  {{W: 5, H: 5}},
	}
	return tree, lib
}

// coalesceWorkload is a deterministic heavyweight floorplan — a dozen
// wheels of 48-implementation modules under a slicing spine — whose exact
// optimization takes tens of milliseconds, long enough that a concurrent
// burst reliably overlaps one in-flight run (sized with margin over the
// PR-6 kernel speedups). Distinct from serveWorkload so the burst always
// starts on a cold key on a fresh server; salt perturbs the implementation
// areas so each value yields a distinct cache key, letting coalesceCheck
// retry on a fresh cold key.
func coalesceWorkload(salt int) (*floorplan.Tree, floorplan.Library) {
	const wheels, implsPerModule = 12, 48
	lib := floorplan.Library{}
	var tree *floorplan.Tree
	mod := 0
	for w := 0; w < wheels; w++ {
		var leaves [5]*floorplan.Tree
		for j := range leaves {
			name := fmt.Sprintf("m%d", mod)
			mod++
			leaves[j] = plan.NewLeaf(name)
			// Near-constant-area implementation curves with varied areas.
			area := int64(36 + 7*((mod*13)%11) + salt)
			impls := make([]floorplan.Impl, 0, implsPerModule)
			for k := 1; k <= implsPerModule; k++ {
				wd := int64(k + 1)
				impls = append(impls, floorplan.Impl{W: wd, H: (area + wd - 1) / wd})
			}
			lib[name] = impls
		}
		wheel := plan.NewWheel(leaves[0], leaves[1], leaves[2], leaves[3], leaves[4])
		switch {
		case tree == nil:
			tree = wheel
		case w%2 == 0:
			tree = plan.NewVSlice(tree, wheel)
		default:
			tree = plan.NewHSlice(tree, wheel)
		}
	}
	return tree, lib
}
