package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	floorplan "floorplan"
	"floorplan/internal/plan"
)

// serveCheck drives a running fpserve end to end: health, two optimize
// round-trips of the same workload (expecting the second to hit the cache
// when one is enabled), byte-identity of the served results across worker
// counts, agreement with a local in-process run, and a non-zero cache hit
// count in /v1/stats. Any violation is an error (non-zero exit), which is
// what lets `make serve-smoke` gate on it.
func serveCheck(baseURL string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := &floorplan.Client{BaseURL: baseURL}

	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("health check: %w", err)
	}

	tree, lib := serveWorkload()
	opts := floorplan.Options{Selection: floorplan.Selection{K1: 12}}
	before, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	first, err := c.Optimize(ctx, tree, lib, floorplan.ServeOptions{K1: 12, Workers: 1})
	if err != nil {
		return fmt.Errorf("optimize #1: %w", err)
	}
	second, err := c.Optimize(ctx, tree, lib, floorplan.ServeOptions{K1: 12, Workers: 8})
	if err != nil {
		return fmt.Errorf("optimize #2: %w", err)
	}

	if first.Key != second.Key {
		return fmt.Errorf("key changed across identical workloads: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(first.Result, second.Result) {
		return fmt.Errorf("served results are not byte-identical across worker counts (dispositions %q, %q)",
			first.Runtime.Cache, second.Runtime.Cache)
	}
	if before.CacheEnabled && second.Runtime.Cache != "hit" {
		return fmt.Errorf("second request disposition = %q, want hit (cache is enabled)",
			second.Runtime.Cache)
	}

	// The served optimum must match this binary's own optimizer.
	res, err := first.DecodeResult()
	if err != nil {
		return err
	}
	local, err := floorplan.Optimize(tree, lib, opts)
	if err != nil {
		return fmt.Errorf("local reference run: %w", err)
	}
	if res.Best != local.Best {
		return fmt.Errorf("served optimum %+v differs from local optimum %+v", res.Best, local.Best)
	}

	after, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if before.CacheEnabled && after.Cache.Hits <= before.Cache.Hits {
		return fmt.Errorf("cache hits did not advance: %d -> %d", before.Cache.Hits, after.Cache.Hits)
	}

	log.Printf("serve check OK: %s optimum %dx%d area %d, dispositions %s/%s, cache hits %d",
		baseURL, res.Best.W, res.Best.H, res.Area,
		first.Runtime.Cache, second.Runtime.Cache, after.Cache.Hits)
	return nil
}

// serveWorkload is a small fixed floorplan with a wheel (so the L-shaped
// path is exercised) that still optimizes in milliseconds.
func serveWorkload() (*floorplan.Tree, floorplan.Library) {
	tree := plan.NewVSlice(
		plan.NewWheel(
			plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"),
			plan.NewLeaf("sw"), plan.NewLeaf("c"),
		),
		plan.NewHSlice(plan.NewLeaf("x"), plan.NewLeaf("y")),
	)
	lib := floorplan.Library{
		"nw": {{W: 2, H: 4}, {W: 4, H: 2}, {W: 3, H: 3}},
		"ne": {{W: 3, H: 3}, {W: 9, H: 1}},
		"se": {{W: 2, H: 4}, {W: 4, H: 2}},
		"sw": {{W: 3, H: 5}, {W: 5, H: 3}},
		"c":  {{W: 1, H: 2}, {W: 2, H: 1}},
		"x":  {{W: 4, H: 6}, {W: 6, H: 4}},
		"y":  {{W: 5, H: 5}},
	}
	return tree, lib
}
