package main

import (
	"fmt"
	"log"
	"os"

	"floorplan/internal/benchsnap"
)

// runSnapshot measures the pinned perf grid (internal/benchsnap) and writes
// the committed BENCH snapshot. An existing snapshot at path contributes its
// baseline (or becomes it), so the perf trajectory is preserved across
// refreshes; -baseline overrides it explicitly.
func runSnapshot(path, baselinePath string, pr int) error {
	var baseline *benchsnap.Snapshot
	if baselinePath != "" {
		b, err := benchsnap.Read(baselinePath)
		if err != nil {
			return err
		}
		baseline = b
	}
	log.Printf("measuring pinned grid (this takes a minute)...")
	s, err := benchsnap.Run(pr)
	if err != nil {
		return err
	}
	if err := benchsnap.Write(s, path, baseline); err != nil {
		return err
	}
	printSnapshot(s)
	log.Printf("wrote %s", path)
	return nil
}

// runDiff gates a committed BENCH snapshot: its cells are compared against
// basePath (or, when empty, the snapshot's embedded baseline), failing on
// any allocs/op increase or a ns/op regression beyond the allowed slack.
// This is an offline check over committed files — nothing is re-measured —
// so it is cheap enough for `make check`.
func runDiff(path, basePath string) error {
	s, err := benchsnap.Read(path)
	if err != nil {
		return err
	}
	base := s.Baseline
	if basePath != "" {
		base, err = benchsnap.Read(basePath)
		if err != nil {
			return err
		}
	}
	if base == nil {
		return fmt.Errorf("%s has no embedded baseline; pass -diff-base", path)
	}
	report, err := benchsnap.Diff(base, s)
	fmt.Fprint(os.Stderr, report)
	if err != nil {
		return err
	}
	log.Printf("%s: no regression vs baseline", path)
	return nil
}

func printSnapshot(s *benchsnap.Snapshot) {
	fmt.Fprintf(os.Stderr, "%-24s %14s %12s %14s %10s\n", "cell", "ns/op", "allocs/op", "bytes/op", "vs base")
	for _, c := range s.Cells {
		ratio := "-"
		if s.Baseline != nil {
			if b, ok := s.Baseline.Lookup(c.Name); ok && c.NsPerOp > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(b.NsPerOp)/float64(c.NsPerOp))
			}
		}
		fmt.Fprintf(os.Stderr, "%-24s %14d %12d %14d %10s\n",
			c.Name, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp, ratio)
	}
}
