// fpbench regenerates the paper's evaluation tables (Tables 1–4 of
// Wang/Wong TR-91-26) on this reproduction's substrate, plus the
// repository's ablation experiments.
//
// Examples:
//
//	fpbench -table 1          # Table 1 (FP1)
//	fpbench -all              # all four tables (several minutes)
//	fpbench -ablation uniform # R_Selection vs uniform subsampling
//	fpbench -ablation thetas  # θ / S sensitivity on FP4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"floorplan/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpbench: ")
	var (
		table    = flag.Int("table", 0, "regenerate one paper table (1-4)")
		all      = flag.Bool("all", false, "regenerate all four tables")
		ablation = flag.String("ablation", "", "run an ablation: 'uniform' or 'thetas'")
		limit    = flag.Int64("limit", 0, "override the memory limit (default: calibrated 300000)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		csvOut   = flag.String("csv", "", "also write machine-readable CSV to this file")
		jsonDir  = flag.String("benchjson", "", "write BENCH_table<N>.json files into this directory")
		workers  = flag.Int("workers", 0, "concurrent optimizer runs (0 = all CPUs, 1 = sequential)")
	)
	flag.Parse()

	cfg := tables.DefaultConfig()
	if *limit > 0 {
		cfg.MemoryLimit = *limit
	}
	if *workers < 0 {
		log.Fatalf("negative -workers %d", *workers)
	}
	cfg.Workers = *workers
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	switch {
	case *ablation == "uniform":
		out, err := tables.AblationUniform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation == "thetas":
		out, err := tables.AblationThetaS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation != "":
		log.Fatalf("unknown ablation %q (want 'uniform' or 'thetas')", *ablation)
	case *all:
		var csvParts []string
		for i := 1; i <= 4; i++ {
			t, err := tables.Run(i, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Format())
			writeJSON(*jsonDir, t)
			if *csvOut != "" {
				part, err := t.CSV()
				if err != nil {
					log.Fatal(err)
				}
				if i > 1 {
					// Drop the duplicate header of subsequent tables.
					if idx := strings.IndexByte(part, '\n'); idx >= 0 {
						part = part[idx+1:]
					}
				}
				csvParts = append(csvParts, part)
			}
		}
		writeCSV(*csvOut, strings.Join(csvParts, ""))
	case *table >= 1 && *table <= 4:
		t, err := tables.Run(*table, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		writeJSON(*jsonDir, t)
		if *csvOut != "" {
			part, err := t.CSV()
			if err != nil {
				log.Fatal(err)
			}
			writeCSV(*csvOut, part)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeCSV(path, content string) {
	if path == "" || content == "" {
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// writeJSON drops one BENCH_table<N>.json per regenerated table into dir,
// the machine-readable record (M, cpu_ms, area per run) consumed by
// benchmark tooling.
func writeJSON(dir string, t *tables.Table) {
	if dir == "" {
		return
	}
	raw, err := t.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_table%d.json", t.Number))
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}
