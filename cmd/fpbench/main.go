// fpbench regenerates the paper's evaluation tables (Tables 1–4 of
// Wang/Wong TR-91-26) on this reproduction's substrate, plus the
// repository's ablation experiments.
//
// Examples:
//
//	fpbench -table 1          # Table 1 (FP1)
//	fpbench -all              # all four tables (several minutes)
//	fpbench -ablation uniform # R_Selection vs uniform subsampling
//	fpbench -ablation thetas  # θ / S sensitivity on FP4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"floorplan/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpbench: ")
	var (
		table    = flag.Int("table", 0, "regenerate one paper table (1-4)")
		all      = flag.Bool("all", false, "regenerate all four tables")
		ablation = flag.String("ablation", "", "run an ablation: 'uniform' or 'thetas'")
		limit    = flag.Int64("limit", 0, "override the memory limit (default: calibrated 300000)")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		csvOut   = flag.String("csv", "", "also write machine-readable CSV to this file")
	)
	flag.Parse()

	cfg := tables.DefaultConfig()
	if *limit > 0 {
		cfg.MemoryLimit = *limit
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	switch {
	case *ablation == "uniform":
		out, err := tables.AblationUniform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation == "thetas":
		out, err := tables.AblationThetaS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation != "":
		log.Fatalf("unknown ablation %q (want 'uniform' or 'thetas')", *ablation)
	case *all:
		var csvParts []string
		for i := 1; i <= 4; i++ {
			t, err := tables.Run(i, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Format())
			if *csvOut != "" {
				part, err := t.CSV()
				if err != nil {
					log.Fatal(err)
				}
				if i > 1 {
					// Drop the duplicate header of subsequent tables.
					if idx := strings.IndexByte(part, '\n'); idx >= 0 {
						part = part[idx+1:]
					}
				}
				csvParts = append(csvParts, part)
			}
		}
		writeCSV(*csvOut, strings.Join(csvParts, ""))
	case *table >= 1 && *table <= 4:
		t, err := tables.Run(*table, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		if *csvOut != "" {
			part, err := t.CSV()
			if err != nil {
				log.Fatal(err)
			}
			writeCSV(*csvOut, part)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeCSV(path, content string) {
	if path == "" || content == "" {
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}
