// fpbench regenerates the paper's evaluation tables (Tables 1–4 of
// Wang/Wong TR-91-26) on this reproduction's substrate, plus the
// repository's ablation experiments.
//
// Examples:
//
//	fpbench -table 1          # Table 1 (FP1)
//	fpbench -all              # all four tables (several minutes)
//	fpbench -ablation uniform # R_Selection vs uniform subsampling
//	fpbench -ablation thetas  # θ / S sensitivity on FP4
//	fpbench -smoke -benchjson out -report out/report.json  # CI-scale grid
//	fpbench -server http://localhost:8080  # end-to-end check of fpserve
//	fpbench -load -server http://localhost:8080 -load-spec spec.json \
//	    -load-out report.json  # open-loop load run with SLO gating
//	fpbench -load -server http://n1:8081,http://n2:8082,http://n3:8083
//	    # same, spread round-robin over a cluster's nodes
//	fpbench -cluster-check -server http://n1:8081,http://n2:8082 \
//	    -single http://ref:8080  # cluster-wide dedup + byte-identity check
//	fpbench -editloop -edit-iters 8  # subtree-store edit-loop proof:
//	    # spine-only recompute + bit-identity at workers 1 and 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"floorplan/internal/cliutil"
	"floorplan/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpbench: ")
	var (
		table     = flag.Int("table", 0, "regenerate one paper table (1-4)")
		all       = flag.Bool("all", false, "regenerate all four tables")
		smoke     = flag.Bool("smoke", false, "run a small CI-scale grid instead of a paper table")
		ablation  = flag.String("ablation", "", "run an ablation: 'uniform' or 'thetas'")
		limit     = flag.Int64("limit", 0, "override the memory limit (default: calibrated 300000)")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress lines")
		csvOut    = flag.String("csv", "", "also write machine-readable CSV to this file")
		jsonDir   = flag.String("benchjson", "", "write BENCH_table<N>.json files into this directory")
		workers   = flag.Int("workers", 0, "concurrent optimizer runs (0 = all CPUs, 1 = sequential)")
		servURL   = flag.String("server", "", "drive a running fpserve at this base URL end-to-end and exit (-load and -cluster-check accept a comma-separated list)")
		load      = flag.Bool("load", false, "with -server: run the open-loop load harness instead of the functional check")
		loadSpec  = flag.String("load-spec", "", "with -load: JSON load spec file (default: built-in schedule)")
		loadOut   = flag.String("load-out", "", "with -load: write the JSON load report here (default: stdout)")
		clCheck   = flag.Bool("cluster-check", false, "with -server (comma-separated node URLs): assert cluster-wide dedup and byte-identity, then exit")
		clStats   = flag.Bool("cluster-stats", false, "with -server: fetch GET /v1/cluster/stats from the first node and print the ring-wide aggregate, then exit")
		single    = flag.String("single", "", "with -cluster-check: also compare results against this single-node reference fpserve")
		editLoop  = flag.Bool("editloop", false, "run the subtree-store edit-loop proof (spine-only recompute + bit-identity) and exit")
		editIters = flag.Int("edit-iters", 8, "with -editloop: number of one-module edits")
		snapshot  = flag.String("snapshot", "", "measure the pinned perf grid, write a BENCH snapshot to this file and exit")
		baseFile  = flag.String("baseline", "", "with -snapshot: embed this snapshot file as the diff baseline")
		snapPR    = flag.Int("snapshot-pr", 9, "with -snapshot: PR number stamped into the snapshot")
		diffFile  = flag.String("diff", "", "diff this BENCH snapshot against its baseline and exit non-zero on regression")
		diffBase  = flag.String("diff-base", "", "with -diff: diff against this snapshot file instead of the embedded baseline")
		tf        cliutil.TelemetryFlags
	)
	tf.Register(flag.CommandLine)
	flag.Parse()

	if (*load || *clCheck || *clStats) && *servURL == "" {
		log.Fatal("-load/-cluster-check/-cluster-stats need -server pointing at running fpserve nodes")
	}
	if *servURL != "" {
		switch {
		case *load:
			if err := runLoad(*servURL, *loadSpec, *loadOut); err != nil {
				log.Fatal(err)
			}
		case *clStats:
			if err := clusterStatsReport(*servURL); err != nil {
				log.Fatal(err)
			}
		case *clCheck:
			if err := clusterCheck(*servURL, *single); err != nil {
				log.Fatal(err)
			}
		case strings.Contains(*servURL, ","):
			log.Fatal("the functional check takes a single URL; use -load or -cluster-check for multi-node runs")
		default:
			if err := serveCheck(*servURL); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *editLoop {
		if err := runEditLoop(*editIters); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *snapshot != "" {
		if err := runSnapshot(*snapshot, *baseFile, *snapPR); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *diffFile != "" {
		if err := runDiff(*diffFile, *diffBase); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := tables.DefaultConfig()
	if *limit > 0 {
		cfg.MemoryLimit = *limit
	}
	if *workers < 0 {
		log.Fatalf("negative -workers %d", *workers)
	}
	cfg.Workers = *workers
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	// The root collector spans the whole invocation; each table runs
	// against its own shard (so its BENCH json embeds only its own
	// numbers) and the shards merge back into the root for -report. The
	// -benchjson embed implies collection even without -report.
	root := tf.CollectorIf(*jsonDir != "")
	if _, err := tf.Logger(); err != nil {
		log.Fatal(err)
	}
	if err := tf.StartDebug(root); err != nil {
		log.Fatal(err)
	}
	// runTable executes fn with a per-table telemetry shard in cfg.
	runTable := func(fn func(cfg tables.Config) (*tables.Table, error)) *tables.Table {
		tcfg := cfg
		shard := root.Shard()
		tcfg.Telemetry = shard
		t, err := fn(tcfg)
		if err != nil {
			log.Fatal(err)
		}
		root.Merge(shard)
		return t
	}

	switch {
	case *ablation == "uniform":
		out, err := tables.AblationUniform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation == "thetas":
		out, err := tables.AblationThetaS(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
	case *ablation != "":
		log.Fatalf("unknown ablation %q (want 'uniform' or 'thetas')", *ablation)
	case *smoke:
		t := runTable(func(cfg tables.Config) (*tables.Table, error) {
			return tables.RunCases(1, "FP1", smokeCases(), cfg)
		})
		fmt.Println(t.Format())
		writeJSON(*jsonDir, t)
		if *csvOut != "" {
			part, err := t.CSV()
			if err != nil {
				log.Fatal(err)
			}
			writeCSV(*csvOut, part)
		}
	case *all:
		var csvParts []string
		for i := 1; i <= 4; i++ {
			i := i
			t := runTable(func(cfg tables.Config) (*tables.Table, error) {
				return tables.Run(i, cfg)
			})
			fmt.Println(t.Format())
			writeJSON(*jsonDir, t)
			if *csvOut != "" {
				part, err := t.CSV()
				if err != nil {
					log.Fatal(err)
				}
				if i > 1 {
					// Drop the duplicate header of subsequent tables.
					if idx := strings.IndexByte(part, '\n'); idx >= 0 {
						part = part[idx+1:]
					}
				}
				csvParts = append(csvParts, part)
			}
		}
		writeCSV(*csvOut, strings.Join(csvParts, ""))
	case *table >= 1 && *table <= 4:
		t := runTable(func(cfg tables.Config) (*tables.Table, error) {
			return tables.Run(*table, cfg)
		})
		fmt.Println(t.Format())
		writeJSON(*jsonDir, t)
		if *csvOut != "" {
			part, err := t.CSV()
			if err != nil {
				log.Fatal(err)
			}
			writeCSV(*csvOut, part)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if err := tf.Flush(root); err != nil {
		log.Fatal(err)
	}
}

// smokeCases is the CI-scale grid behind -smoke: two cases small enough to
// finish in well under a second yet still exercising the full table
// protocol (reference run, K1 sweep, selection, telemetry plumbing).
func smokeCases() []tables.Case {
	return []tables.Case{
		{ID: 1, N: 6, Aspect: 4, Seed: 1, K1s: []int{4, 6}},
		{ID: 2, N: 8, Aspect: 5, Seed: 2, K1s: []int{4, 6}},
	}
}

func writeCSV(path, content string) {
	if path == "" || content == "" {
		return
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// writeJSON drops one BENCH_table<N>.json per regenerated table into dir,
// the machine-readable record (M, cpu_ms, wall_ms, peak per run, plus the
// embedded telemetry report) consumed by benchmark tooling.
func writeJSON(dir string, t *tables.Table) {
	if dir == "" {
		return
	}
	raw, err := t.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_table%d.json", t.Number))
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}
