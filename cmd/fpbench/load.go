package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	floorplan "floorplan"
	"floorplan/internal/loadgen"
)

// runLoad drives a running fpserve with the open-loop load harness: it
// reads the spec (or uses the built-in default schedule), generates the
// workload corpus, runs the arrival schedule against the server, folds the
// /v1/stats delta into the report, evaluates the SLO assertions and writes
// the JSON load report. A failed SLO (or a server restart mid-run) is an
// error, which is what lets `make load-smoke` gate on the exit code.
func runLoad(baseURL, specPath, outPath string) error {
	spec := loadgen.DefaultSpec()
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		if spec, err = loadgen.ParseSpec(data); err != nil {
			return err
		}
	}

	// No retry policy: the harness measures the server as offered, and a
	// client-side retry would both re-anchor the request's latency and
	// inflate offered load beyond the spec. Shed (429) and timeout replies
	// are results, not conditions to paper over.
	client := &floorplan.Client{BaseURL: baseURL}
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("health check: %w", err)
	}
	before, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats before run: %w", err)
	}

	log.Printf("load: %d phases, %d keys, %d connections against %s",
		len(spec.Phases), spec.Corpus.Keys, spec.Connections, baseURL)
	report, err := loadgen.Run(ctx, spec, func(ctx context.Context, w loadgen.Workload) (string, error) {
		resp, err := client.Optimize(ctx, w.Tree, floorplan.Library(w.Library),
			floorplan.ServeOptions{K1: spec.K1})
		if err != nil {
			return classifySendError(err), err
		}
		return resp.Runtime.Cache, nil
	})
	if err != nil {
		return err
	}

	after, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats after run: %w", err)
	}
	report.Server = statsDelta(before, after)
	report.Evaluate()

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if outPath != "" {
		// Round-trip gate: never leave a report on disk that the schema
		// check would reject when a script reads it back.
		if _, err := loadgen.ParseReport(raw); err != nil {
			return err
		}
		if err := os.WriteFile(outPath, raw, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(raw)
	}

	printLoadSummary(report)
	if !report.Pass {
		return errors.New("load run violated its SLOs")
	}
	return nil
}

// classifySendError names the failure bucket for a request error, keeping
// server-imposed refusals distinguishable from transport problems.
func classifySendError(err error) string {
	var se *floorplan.ServeError
	if errors.As(err, &se) {
		switch se.Code {
		case 429:
			return "shed"
		case 503:
			return "timeout"
		default:
			return fmt.Sprintf("http_%d", se.Code)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "client_timeout"
	}
	return ""
}

// statsDelta computes the server-side counter movement across the run and
// flags a restart (start time moved), which zeroes counters and would make
// the deltas lie.
func statsDelta(before, after *floorplan.ServeStats) *loadgen.StatsDelta {
	return &loadgen.StatsDelta{
		Requests:    after.Requests - before.Requests,
		Shed:        after.Shed - before.Shed,
		Coalesced:   after.Coalesced - before.Coalesced,
		CacheHits:   after.Cache.Hits - before.Cache.Hits,
		CacheMisses: after.Cache.Misses - before.Cache.Misses,
		TimedOut: (after.TimedOutQueued + after.TimedOutComputing) -
			(before.TimedOutQueued + before.TimedOutComputing),
		Restarted:     after.StartTimeUnixMs != before.StartTimeUnixMs,
		UptimeSeconds: after.UptimeSeconds,
	}
}

// printLoadSummary renders the human-readable digest of a finished run on
// stderr (the JSON report owns stdout when no -load-out is given).
func printLoadSummary(r *loadgen.Report) {
	for _, p := range r.Phases {
		log.Printf("phase %-8s %6.1f rps  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms  max %7.2fms  sent %d done %d err %d drop %d",
			p.Name, p.ThroughputRPS, p.Latency.P50Ms, p.Latency.P99Ms,
			p.Latency.P999Ms, p.Latency.MaxMs, p.Sent, p.Done, p.Errors, p.Dropped)
	}
	if s := r.Server; s != nil {
		log.Printf("server:  +%d requests (%d shed, %d coalesced, %d cache hits, %d misses, %d timed out), uptime %.0fs, restarted=%v",
			s.Requests, s.Shed, s.Coalesced, s.CacheHits, s.CacheMisses,
			s.TimedOut, s.UptimeSeconds, s.Restarted)
	}
	for _, res := range r.SLOResults {
		verdict := "ok"
		if !res.OK {
			verdict = "VIOLATED: " + res.Detail
		}
		log.Printf("slo %-28s value %.4g  %s", res.SLO.String(), res.Value, verdict)
	}
	log.Printf("wall %s  pass=%v", time.Duration(r.WallMs)*time.Millisecond, r.Pass)
}
