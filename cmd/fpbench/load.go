package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	floorplan "floorplan"
	"floorplan/internal/loadgen"
)

// runLoad drives one or more running fpserve nodes with the open-loop load
// harness: it reads the spec (or uses the built-in default schedule),
// generates the workload corpus, runs the arrival schedule — spread
// round-robin by intended send time over every target — folds the summed
// (and per-node) /v1/stats deltas into the report, evaluates the SLO
// assertions and writes the JSON load report. A failed SLO (or a server
// restart mid-run) is an error, which is what lets `make load-smoke` and
// `make cluster-smoke` gate on the exit code.
//
// servers is the -server value: one base URL, or a comma-separated list to
// drive a cluster through every node at once.
func runLoad(servers, specPath, outPath string) error {
	spec := loadgen.DefaultSpec()
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		if spec, err = loadgen.ParseSpec(data); err != nil {
			return err
		}
	}

	targets := splitTargets(servers)
	if len(targets) == 0 {
		return errors.New("no target URLs in -server")
	}
	// No retry policy: the harness measures the servers as offered, and a
	// client-side retry would both re-anchor the request's latency and
	// inflate offered load beyond the spec. Shed (429) and timeout replies
	// are results, not conditions to paper over.
	clients := make([]*floorplan.Client, len(targets))
	ctx := context.Background()
	for i, t := range targets {
		clients[i] = &floorplan.Client{BaseURL: t}
		if err := clients[i].Health(ctx); err != nil {
			return fmt.Errorf("health check %s: %w", t, err)
		}
	}
	before, err := statsAll(ctx, targets, clients)
	if err != nil {
		return fmt.Errorf("stats before run: %w", err)
	}

	log.Printf("load: %d phases, %d keys, %d connections against %s",
		len(spec.Phases), spec.Corpus.Keys, spec.Connections, strings.Join(targets, ", "))
	report, err := loadgen.Run(ctx, spec, targets,
		func(ctx context.Context, w loadgen.Workload, target int) (string, error) {
			resp, err := clients[target].Optimize(ctx, w.Tree, floorplan.Library(w.Library),
				floorplan.ServeOptions{K1: spec.K1})
			if err != nil {
				return classifySendError(err), err
			}
			return resp.Runtime.Cache, nil
		})
	if err != nil {
		return err
	}

	after, err := statsAll(ctx, targets, clients)
	if err != nil {
		return fmt.Errorf("stats after run: %w", err)
	}
	report.Server = statsDeltaAll(targets, before, after)
	report.Evaluate()

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if outPath != "" {
		// Round-trip gate: never leave a report on disk that the schema
		// check would reject when a script reads it back.
		if _, err := loadgen.ParseReport(raw); err != nil {
			return err
		}
		if err := os.WriteFile(outPath, raw, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(raw)
	}

	printLoadSummary(report)
	if !report.Pass {
		return errors.New("load run violated its SLOs")
	}
	return nil
}

// classifySendError names the failure bucket for a request error, keeping
// server-imposed refusals distinguishable from transport problems.
func classifySendError(err error) string {
	var se *floorplan.ServeError
	if errors.As(err, &se) {
		switch se.Code {
		case 429:
			return "shed"
		case 503:
			return "timeout"
		default:
			return fmt.Sprintf("http_%d", se.Code)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "client_timeout"
	}
	return ""
}

// splitTargets parses a comma-separated -server value into base URLs.
func splitTargets(servers string) []string {
	var out []string
	for _, t := range strings.Split(servers, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// statsAll polls /v1/stats on every target.
func statsAll(ctx context.Context, targets []string, clients []*floorplan.Client) ([]*floorplan.ServeStats, error) {
	out := make([]*floorplan.ServeStats, len(clients))
	for i, c := range clients {
		s, err := c.Stats(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", targets[i], err)
		}
		out[i] = s
	}
	return out, nil
}

// statsDelta computes one server's counter movement across the run and
// flags a restart (start time moved), which zeroes counters and would make
// the deltas lie.
func statsDelta(before, after *floorplan.ServeStats) *loadgen.StatsDelta {
	d := &loadgen.StatsDelta{
		Requests:    after.Requests - before.Requests,
		Shed:        after.Shed - before.Shed,
		Coalesced:   after.Coalesced - before.Coalesced,
		CacheHits:   after.Cache.Hits - before.Cache.Hits,
		CacheMisses: after.Cache.Misses - before.Cache.Misses,
		Computed:    after.Computed - before.Computed,
		TimedOut: (after.TimedOutQueued + after.TimedOutComputing) -
			(before.TimedOutQueued + before.TimedOutComputing),
		Restarted:     after.StartTimeUnixMs != before.StartTimeUnixMs,
		UptimeSeconds: after.UptimeSeconds,
	}
	if after.Cluster != nil && before.Cluster != nil {
		d.Forwarded = after.Cluster.Forwarded - before.Cluster.Forwarded
		d.PeerFallback = after.Cluster.PeerFallbacks - before.Cluster.PeerFallbacks
	}
	return d
}

// statsDeltaAll sums the per-node deltas into the run's server delta and
// keeps the per-node breakdown; any node restarting mid-run poisons the
// whole delta (Restarted), exactly as single-node.
func statsDeltaAll(targets []string, before, after []*floorplan.ServeStats) *loadgen.StatsDelta {
	if len(targets) == 1 {
		return statsDelta(before[0], after[0])
	}
	sum := &loadgen.StatsDelta{}
	for i := range targets {
		d := statsDelta(before[i], after[i])
		sum.Requests += d.Requests
		sum.Shed += d.Shed
		sum.Coalesced += d.Coalesced
		sum.CacheHits += d.CacheHits
		sum.CacheMisses += d.CacheMisses
		sum.Computed += d.Computed
		sum.TimedOut += d.TimedOut
		sum.Forwarded += d.Forwarded
		sum.PeerFallback += d.PeerFallback
		sum.Restarted = sum.Restarted || d.Restarted
		if d.UptimeSeconds > sum.UptimeSeconds {
			sum.UptimeSeconds = d.UptimeSeconds
		}
		sum.Nodes = append(sum.Nodes, loadgen.NodeStatsDelta{
			Target:       targets[i],
			NodeID:       after[i].NodeID,
			Requests:     d.Requests,
			Computed:     d.Computed,
			Coalesced:    d.Coalesced,
			CacheHits:    d.CacheHits,
			Forwarded:    d.Forwarded,
			PeerFallback: d.PeerFallback,
			Restarted:    d.Restarted,
		})
	}
	return sum
}

// printLoadSummary renders the human-readable digest of a finished run on
// stderr (the JSON report owns stdout when no -load-out is given).
func printLoadSummary(r *loadgen.Report) {
	for _, p := range r.Phases {
		log.Printf("phase %-8s %6.1f rps  p50 %7.2fms  p99 %7.2fms  p999 %7.2fms  max %7.2fms  sent %d done %d err %d drop %d",
			p.Name, p.ThroughputRPS, p.Latency.P50Ms, p.Latency.P99Ms,
			p.Latency.P999Ms, p.Latency.MaxMs, p.Sent, p.Done, p.Errors, p.Dropped)
	}
	for _, t := range r.Targets {
		log.Printf("target %-28s sent %d done %d err %d drop %d", t.Target, t.Sent, t.Done, t.Errors, t.Dropped)
	}
	if s := r.Server; s != nil {
		log.Printf("server:  +%d requests (%d shed, %d coalesced, %d cache hits, %d misses, %d timed out, %d computed, %d forwarded, %d peer fallback), uptime %.0fs, restarted=%v",
			s.Requests, s.Shed, s.Coalesced, s.CacheHits, s.CacheMisses,
			s.TimedOut, s.Computed, s.Forwarded, s.PeerFallback, s.UptimeSeconds, s.Restarted)
		for _, n := range s.Nodes {
			log.Printf("node %-30s +%d requests, %d computed, %d forwarded, %d peer fallback, restarted=%v",
				n.Target, n.Requests, n.Computed, n.Forwarded, n.PeerFallback, n.Restarted)
		}
	}
	for _, res := range r.SLOResults {
		verdict := "ok"
		if !res.OK {
			verdict = "VIOLATED: " + res.Detail
		}
		log.Printf("slo %-28s value %.4g  %s", res.SLO.String(), res.Value, verdict)
	}
	log.Printf("wall %s  pass=%v", time.Duration(r.WallMs)*time.Millisecond, r.Pass)
}
