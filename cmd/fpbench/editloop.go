package main

import (
	"fmt"
	"math/rand"
	"reflect"

	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/substore"
)

// The edit-loop proof (-editloop): the interactive-floorplanning workload
// the subtree store exists for. Solve a floorplan cold, then repeatedly
// regenerate one module's implementation list and re-solve. Each re-solve
// must (a) evaluate exactly the root-to-leaf spine through the edited
// leaves — every other node's digest is unchanged and splices from the
// store — and (b) produce a result bit-identical to a store-disabled run
// of the same edited workload, at workers 1 and 8. Any violation is a
// fatal error, so the mode doubles as a CI smoke gate (make check).

// editLoopSpine counts the nodes of the restructured binary tree whose
// subtree contains a leaf of the given module — the set an edit of that
// module dirties — plus the total node count.
func editLoopSpine(bin *plan.BinNode, module string) (spine, total int) {
	var walk func(b *plan.BinNode) bool
	walk = func(b *plan.BinNode) bool {
		total++
		if b.Kind == plan.BinLeaf {
			if b.Module == module {
				spine++
				return true
			}
			return false
		}
		l := walk(b.Left)
		r := walk(b.Right)
		if l || r {
			spine++
			return true
		}
		return false
	}
	walk(bin)
	return spine, total
}

// editLoopCompare demands bit-identical deterministic payloads.
func editLoopCompare(got, want *optimizer.Result) error {
	if got.Best != want.Best {
		return fmt.Errorf("Best %v != %v", got.Best, want.Best)
	}
	gs, ws := got.Stats, want.Stats
	gs.Elapsed, ws.Elapsed = 0, 0
	if gs != ws {
		return fmt.Errorf("Stats %+v != %+v", gs, ws)
	}
	if !got.RootList.Equal(want.RootList) {
		return fmt.Errorf("root lists diverged")
	}
	if !reflect.DeepEqual(got.NodeStats, want.NodeStats) {
		return fmt.Errorf("NodeStats diverged")
	}
	if (got.Placement == nil) != (want.Placement == nil) {
		return fmt.Errorf("placement presence diverged")
	}
	if got.Placement != nil && !reflect.DeepEqual(got.Placement.Modules, want.Placement.Modules) {
		return fmt.Errorf("placements diverged")
	}
	return nil
}

func runEditLoop(iters int) error {
	if iters <= 0 {
		return fmt.Errorf("editloop: non-positive -edit-iters %d", iters)
	}
	tree, err := gen.ByName("FP2")
	if err != nil {
		return err
	}
	bin, err := plan.Restructure(tree)
	if err != nil {
		return err
	}
	params := gen.ModuleParams{N: 12, MinArea: 2000000, MaxArea: 20000000, MaxAspect: 5}
	rng := rand.New(rand.NewSource(17))
	rawLib, err := gen.Library(rng, tree, params)
	if err != nil {
		return err
	}
	lib := optimizer.Library(rawLib)
	policy := selection.Policy{K1: 20, K2: 600, Theta: 0.5, S: 400}

	newStore := func() (*substore.Store, error) {
		return substore.New(substore.Config{MaxBytes: 64 << 20})
	}
	run := func(w int, st *substore.Store) (*optimizer.Result, error) {
		opt, err := optimizer.New(lib, optimizer.Options{Policy: policy, Workers: w, Substore: st})
		if err != nil {
			return nil, err
		}
		return opt.Run(tree)
	}

	// One primed store per worker count under test, so the spine assertion
	// holds for both (a shared store would already hold the edit's records
	// after the first run).
	storeA, err := newStore()
	if err != nil {
		return err
	}
	storeB, err := newStore()
	if err != nil {
		return err
	}
	cold, err := run(1, storeA)
	if err != nil {
		return err
	}
	nodes := len(cold.NodeStats)
	if cold.Reuse.ComputedNodes != nodes || cold.Reuse.SplicedNodes != 0 {
		return fmt.Errorf("editloop: cold solve reuse %+v, want %d computed", cold.Reuse, nodes)
	}
	if _, err := run(8, storeB); err != nil {
		return err
	}
	fmt.Printf("editloop: FP2, %d modules, %d tree nodes, cold solve %v\n",
		len(tree.Modules()), nodes, cold.Stats.Elapsed.Round(0))

	modules := tree.Modules()
	var spineSum, evalSaved int
	var refNs, incNs int64
	for i := 0; i < iters; i++ {
		name := modules[i%len(modules)]
		for {
			nl, err := gen.Module(rng, params)
			if err != nil {
				return err
			}
			if !shape.RList(nl).Equal(lib[name]) {
				lib[name] = nl
				break
			}
		}
		spine, total := editLoopSpine(bin, name)
		ref, err := run(1, nil)
		if err != nil {
			return err
		}
		refNs += ref.Stats.Elapsed.Nanoseconds()
		for _, tc := range []struct {
			workers int
			store   *substore.Store
		}{{1, storeA}, {8, storeB}} {
			got, err := run(tc.workers, tc.store)
			if err != nil {
				return err
			}
			if err := editLoopCompare(got, ref); err != nil {
				return fmt.Errorf("editloop: edit %d (module %s, workers %d): store-on result diverged: %w",
					i+1, name, tc.workers, err)
			}
			if got.Reuse.ComputedNodes != spine || got.Reuse.SplicedNodes != total-spine {
				return fmt.Errorf("editloop: edit %d (module %s, workers %d): reuse %+v, want %d-node spine of %d",
					i+1, name, tc.workers, got.Reuse, spine, total)
			}
			if tc.workers == 1 {
				incNs += got.Stats.Elapsed.Nanoseconds()
			}
		}
		spineSum += spine
		evalSaved += total - spine
		fmt.Printf("editloop: edit %2d: module %-8s spine %2d/%d nodes, identical at workers 1 and 8\n",
			i+1, name, spine, total)
	}
	speedup := float64(refNs) / float64(incNs)
	fmt.Printf("editloop: OK — %d edits, avg spine %.1f/%d nodes, %d evaluations spliced, incremental re-solve %.1fx faster than full\n",
		iters, float64(spineSum)/float64(iters), nodes, evalSaved, speedup)
	return nil
}
