package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	floorplan "floorplan"
)

// clusterCheck drives a running fpserve cluster end to end: health on every
// node, one aligned burst of identical heavyweight requests spread across
// all nodes — which must produce exactly one optimizer run cluster-wide
// (summed computed deltas from /v1/stats), at least one peer forward, zero
// peer fallbacks and byte-identical results from every node — then a second
// wave that must be answered entirely from caches (zero further runs).
// With a reference single-node server (-single), the cluster's bytes must
// also equal the single node's for the same workload. Any violation is an
// error (non-zero exit), which is what lets `make cluster-smoke` gate on it.
func clusterCheck(servers, singleURL string) error {
	targets := splitTargets(servers)
	if len(targets) < 2 {
		return errors.New("-cluster-check needs at least two comma-separated URLs in -server")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	clients := make([]*floorplan.Client, len(targets))
	for i, t := range targets {
		clients[i] = &floorplan.Client{
			BaseURL: t,
			Retry:   floorplan.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond},
		}
		if err := clients[i].Health(ctx); err != nil {
			return fmt.Errorf("health check %s: %w", t, err)
		}
	}
	before, err := statsAll(ctx, targets, clients)
	if err != nil {
		return fmt.Errorf("stats before burst: %w", err)
	}

	// A salt derived from the wall clock keeps the fingerprint cold even
	// when the same cluster is checked twice; the dedup assertion below is
	// about the *first* cluster-wide computation of a key.
	salt := 100_000 + int(time.Now().UnixNano()%100_000)
	tree, lib := coalesceWorkload(salt)

	// One aligned burst, round-robin across every node: the viral-key
	// scenario. Non-owner nodes each coalesce their share onto one forward,
	// the owner coalesces the forwards with its own share, and exactly one
	// optimizer run serves the whole cluster.
	const perNode = 4
	replies, err := burstAcross(ctx, clients, tree, lib, perNode)
	if err != nil {
		return err
	}
	for i, r := range replies[1:] {
		if r.Key != replies[0].Key {
			return fmt.Errorf("burst reply %d: key diverged: %s vs %s", i+1, r.Key, replies[0].Key)
		}
		if !bytes.Equal(r.Result, replies[0].Result) {
			return fmt.Errorf("burst reply %d (node %q, disposition %q): result not byte-identical to reply 0 (node %q)",
				i+1, r.Runtime.NodeID, r.Runtime.Cache, replies[0].Runtime.NodeID)
		}
	}

	mid, err := statsAll(ctx, targets, clients)
	if err != nil {
		return fmt.Errorf("stats after burst: %w", err)
	}
	delta := statsDeltaAll(targets, before, mid)
	if delta.Restarted {
		return errors.New("a node restarted mid-check; deltas are invalid")
	}
	if delta.Computed != 1 {
		return fmt.Errorf("burst of %d identical requests across %d nodes ran the optimizer %d times cluster-wide, want exactly 1 (per node: %+v)",
			len(replies), len(targets), delta.Computed, delta.Nodes)
	}
	if delta.Forwarded < 1 {
		return fmt.Errorf("burst produced %d peer forwards, want at least 1 (is -peers configured on every node?)", delta.Forwarded)
	}
	if delta.PeerFallback != 0 {
		return fmt.Errorf("burst tripped %d peer fallbacks, want 0 with every node up", delta.PeerFallback)
	}

	// Second wave: the key is warm (and hot) now, so every node answers
	// without another optimizer run anywhere.
	replies2, err := burstAcross(ctx, clients, tree, lib, 1)
	if err != nil {
		return err
	}
	for i, r := range replies2 {
		if !bytes.Equal(r.Result, replies[0].Result) {
			return fmt.Errorf("warm reply %d not byte-identical to the burst result", i)
		}
	}
	after, err := statsAll(ctx, targets, clients)
	if err != nil {
		return fmt.Errorf("stats after warm wave: %w", err)
	}
	warm := statsDeltaAll(targets, mid, after)
	if warm.Computed != 0 {
		return fmt.Errorf("warm wave ran the optimizer %d more times, want 0", warm.Computed)
	}

	// Cross-check against a single-node reference: sharded and unsharded
	// serving must produce the same bytes for the same fingerprint.
	if singleURL != "" {
		ref := &floorplan.Client{
			BaseURL: singleURL,
			Retry:   floorplan.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond},
		}
		resp, err := ref.Optimize(ctx, tree, lib, floorplan.ServeOptions{})
		if err != nil {
			return fmt.Errorf("single-node reference %s: %w", singleURL, err)
		}
		if resp.Key != replies[0].Key {
			return fmt.Errorf("single-node key %s differs from cluster key %s", resp.Key, replies[0].Key)
		}
		if !bytes.Equal(resp.Result, replies[0].Result) {
			return fmt.Errorf("single-node result is not byte-identical to the cluster result")
		}
	}

	dispositions := map[string]int{}
	for _, r := range append(replies, replies2...) {
		dispositions[r.Runtime.Cache]++
	}
	log.Printf("cluster check OK: %d nodes, 1 optimizer run for %d requests (forwarded %d, fallback %d), dispositions %v",
		len(targets), len(replies)+len(replies2), delta.Forwarded, delta.PeerFallback, dispositions)
	return nil
}

// burstAcross fires perNode aligned identical requests at every client and
// returns the successful replies; any request error fails the burst.
func burstAcross(ctx context.Context, clients []*floorplan.Client, tree *floorplan.Tree, lib floorplan.Library, perNode int) ([]*floorplan.ServeResponse, error) {
	replies := make([]*floorplan.ServeResponse, len(clients)*perNode)
	errs := make([]error, len(replies))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // align the burst so the requests overlap in flight
			replies[i], errs[i] = clients[i%len(clients)].Optimize(ctx, tree, lib, floorplan.ServeOptions{})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("burst request %d (node %d): %w", i, i%len(clients), err)
		}
	}
	return replies, nil
}
