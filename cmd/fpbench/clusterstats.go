package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"floorplan"
)

// clusterStatsReport fetches GET /v1/cluster/stats from the first node of a
// comma-separated server list and renders the ring-wide aggregate as a
// human-readable report: the per-node health table, the counter totals, the
// merged latency quantiles with their exemplar traces, and the placement
// balance. This is the operator's one-command cluster view — the same data a
// dashboard would scrape, without standing one up.
func clusterStatsReport(servers string) error {
	first := strings.TrimSpace(strings.Split(servers, ",")[0])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := &floorplan.Client{
		BaseURL: first,
		Retry:   floorplan.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond},
	}
	cs, err := c.ClusterStats(ctx)
	if err != nil {
		return fmt.Errorf("cluster stats via %s: %w", first, err)
	}

	fmt.Printf("cluster stats (aggregated by %s)\n", first)
	if cs.Incomplete {
		fmt.Println("  PARTIAL: at least one node was unreachable; totals cover the reachable subset")
	}
	if cs.MixedVersions {
		fmt.Println("  WARNING: mixed build versions across the ring")
	}
	if r := cs.Ring; r != nil {
		fmt.Printf("  ring: %d nodes, %d vnodes, imbalance %.3f (1.0 = perfectly fair)\n",
			r.Nodes, r.VNodes, r.Imbalance)
	}

	fmt.Println("  nodes:")
	for _, n := range cs.Nodes {
		mark := " "
		if n.Self {
			mark = "*"
		}
		if !n.Reachable {
			fmt.Printf("  %s %-28s UNREACHABLE: %s\n", mark, n.Node, n.Error)
			continue
		}
		name := n.Node
		if n.NodeID != "" && n.NodeID != n.Node {
			name = fmt.Sprintf("%s (%s)", n.Node, n.NodeID)
		}
		fmt.Printf("  %s %-28s up %s  req %d  computed %d  pending %d  shed %d  share %.3f  rev %s\n",
			mark, name, (time.Duration(n.UptimeMs) * time.Millisecond).Round(time.Second),
			n.Requests, n.Computed, n.Pending, n.Shed, n.RingShare, shortRev(n.Revision))
	}

	t := cs.Totals
	fmt.Printf("  totals: requests %d  computed %d  coalesced %d  shed %d  cache %d/%d hit/miss  forwarded %d  fallback %d\n",
		t.Requests, t.Computed, t.Coalesced, t.Shed, t.CacheHits, t.CacheMisses,
		t.Forwarded, t.PeerFallbacks)

	if len(cs.Histograms) > 0 {
		fmt.Println("  merged latency (cluster-wide):")
		names := make([]string, 0, len(cs.Histograms))
		for name := range cs.Histograms {
			if strings.HasPrefix(name, "server.latency_") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			h := cs.Histograms[name]
			p50 := time.Duration(h.Quantile(0.50)).Round(10 * time.Microsecond)
			p99 := time.Duration(h.Quantile(0.99)).Round(10 * time.Microsecond)
			line := fmt.Sprintf("    %-28s n %-7d p50 %-10v p99 %-10v", name, h.Count, p50, p99)
			if ex := slowestExemplar(h); ex != nil {
				line += fmt.Sprintf(" slowest trace %s@%s", ex.TraceID, ex.NodeID)
			}
			fmt.Println(line)
		}
	}
	return nil
}

// slowestExemplar returns the exemplar of the highest exemplared bucket —
// the trace to pull first when the p99 looks wrong.
func slowestExemplar(h floorplan.HistSnapshot) *floorplan.HistExemplar {
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if e := h.Buckets[i].Exemplar; e != nil {
			return e
		}
	}
	return nil
}

// shortRev abbreviates a VCS revision for the table.
func shortRev(rev string) string {
	if len(rev) > 9 {
		return rev[:9]
	}
	if rev == "" {
		return "unknown"
	}
	return rev
}
