// fpgen emits floorplan topologies and module libraries as JSON files for
// fpopt.
//
// Examples:
//
//	fpgen -fp FP1 -n 20 -seed 1 -tree fp1.json -lib fp1-lib.json
//	fpgen -random 30 -pwheel 0.5 -seed 7 -n 10 -tree t.json -lib l.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	floorplan "floorplan"
	"floorplan/internal/cliutil"
	"floorplan/internal/gen"
	"floorplan/internal/render"
	"floorplan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpgen: ")
	var (
		fp       = flag.String("fp", "", "paper floorplan FP1..FP4")
		random   = flag.Int("random", 0, "generate a random floorplan with this many modules")
		pWheel   = flag.Float64("pwheel", 0.5, "wheel probability for -random")
		seed     = flag.Int64("seed", 1, "generation seed")
		n        = flag.Int("n", 20, "non-redundant implementations per module")
		aspect   = flag.Float64("aspect", 4, "module aspect-ratio spread (>= 1)")
		minArea  = flag.Int64("minarea", 2000000, "minimum module area")
		maxArea  = flag.Int64("maxarea", 20000000, "maximum module area")
		treeOut  = flag.String("tree", "", "write the topology JSON here (default stdout)")
		libOut   = flag.String("lib", "", "write the module library JSON here")
		showTree = flag.Bool("print", false, "also print the topology outline")
		tf       cliutil.TelemetryFlags
	)
	tf.Register(flag.CommandLine)
	flag.Parse()

	if _, err := tf.Logger(); err != nil {
		log.Fatal(err)
	}
	col := tf.Collector()
	if err := tf.StartDebug(col); err != nil {
		log.Fatal(err)
	}

	treeStart := col.Now()
	var tree *floorplan.Tree
	var err error
	switch {
	case *fp != "" && *random > 0:
		log.Fatal("use either -fp or -random, not both")
	case *fp != "":
		tree, err = floorplan.PaperFloorplan(*fp)
	case *random > 0:
		tree, err = floorplan.RandomTree(*random, *pWheel, *seed)
	default:
		log.Fatal("one of -fp or -random is required")
	}
	if err != nil {
		log.Fatal(err)
	}
	col.RecordSpan(telemetry.Span{
		Name: "generate_tree", Cat: telemetry.CatStage,
		Start: treeStart, Dur: col.Now() - treeStart,
	})

	data, err := floorplan.EncodeTree(tree)
	if err != nil {
		log.Fatal(err)
	}
	if *treeOut == "" {
		// Stdout can fail (closed pipe, full disk behind a redirect); a
		// generator that exits 0 with truncated output corrupts pipelines.
		if _, err := fmt.Println(string(data)); err != nil {
			log.Fatalf("writing topology to stdout: %v", err)
		}
	} else if err := os.WriteFile(*treeOut, data, 0o644); err != nil {
		log.Fatal(err)
	}

	if *libOut != "" {
		libStart := col.Now()
		rng := rand.New(rand.NewSource(*seed))
		params := gen.ModuleParams{N: *n, MinArea: *minArea, MaxArea: *maxArea, MaxAspect: *aspect}
		raw, err := gen.Library(rng, tree, params)
		if err != nil {
			log.Fatal(err)
		}
		col.Add(telemetry.CtrGenModules, int64(len(raw)))
		for _, l := range raw {
			col.Add(telemetry.CtrGenImpls, int64(len(l)))
		}
		col.RecordSpan(telemetry.Span{
			Name: "generate_library", Cat: telemetry.CatStage,
			Start: libStart, Dur: col.Now() - libStart,
		})
		blob, err := json.MarshalIndent(raw, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*libOut, blob, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if err := tf.Flush(col); err != nil {
		log.Fatal(err)
	}

	if *showTree {
		if _, err := fmt.Fprint(os.Stderr, render.Tree(tree)); err != nil {
			log.Fatalf("writing outline: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "generated %d modules (%d wheels, depth %d)\n",
		tree.ModuleCount(), tree.WheelCount(), tree.Depth())
}
