// fpopt optimizes a floorplan: it reads a topology and a module library
// (JSON, as produced by fpgen), runs the Wang–Wong optimizer with optional
// R_Selection/L_Selection, and reports the optimal area, memory statistics
// and (optionally) the placement.
//
// Example:
//
//	fpgen -fp FP1 -n 20 -seed 1 -tree fp1.json -lib lib.json
//	fpopt -tree fp1.json -lib lib.json -k1 30 -limit 400000 -art
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	floorplan "floorplan"
	"floorplan/internal/cliutil"
)

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Modules    int          `json:"modules"`
	Wheels     int          `json:"wheels"`
	Width      int64        `json:"width"`
	Height     int64        `json:"height"`
	Area       int64        `json:"area"`
	RootShapes int          `json:"rootShapes"`
	PeakStored int64        `json:"peakStored"`
	Generated  int64        `json:"generated"`
	RSel       int          `json:"rSelections"`
	LSel       int          `json:"lSelections"`
	EvalMs     int64        `json:"evalMs"`
	TotalMs    int64        `json:"totalMs"`
	Placement  []jsonModule `json:"placement,omitempty"`
}

type jsonModule struct {
	Module string `json:"module"`
	X      int64  `json:"x"`
	Y      int64  `json:"y"`
	W      int64  `json:"w"`
	H      int64  `json:"h"`
	ImplW  int64  `json:"implW"`
	ImplH  int64  `json:"implH"`
}

func emitJSON(tree *floorplan.Tree, res *floorplan.Result, elapsed time.Duration) {
	out := jsonResult{
		Modules:    tree.ModuleCount(),
		Wheels:     tree.WheelCount(),
		Width:      res.Best.W,
		Height:     res.Best.H,
		Area:       res.Best.Area(),
		RootShapes: len(res.RootList),
		PeakStored: res.Stats.PeakStored,
		Generated:  res.Stats.Generated,
		RSel:       res.Stats.RSelections,
		LSel:       res.Stats.LSelections,
		EvalMs:     res.Stats.Elapsed.Milliseconds(),
		TotalMs:    elapsed.Milliseconds(),
	}
	if res.Placement != nil {
		for _, m := range res.Placement.ByModule() {
			out.Placement = append(out.Placement, jsonModule{
				Module: m.Module,
				X:      m.Box.MinX, Y: m.Box.MinY,
				W: m.Box.Width(), H: m.Box.Height(),
				ImplW: m.Impl.W, ImplH: m.Impl.H,
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fpopt: ")
	var (
		treeFile = flag.String("tree", "", "topology JSON file (required)")
		libFile  = flag.String("lib", "", "module library JSON file (required)")
		k1       = flag.Int("k1", 0, "R_Selection limit per rectangular block (0 = off)")
		k2       = flag.Int("k2", 0, "L_Selection limit per L-shaped block (0 = off)")
		theta    = flag.Float64("theta", 0, "L_Selection trigger ratio θ (0 = always)")
		s        = flag.Int("s", 500, "heuristic pre-reduction threshold per L-list")
		limit    = flag.Int64("limit", 0, "stored-implementation limit (0 = unlimited)")
		art      = flag.Bool("art", false, "draw the placement as ASCII art")
		artWidth = flag.Int("artwidth", 78, "ASCII art width")
		table    = flag.Bool("table", false, "print the per-module placement table")
		skip     = flag.Bool("noplace", false, "skip placement traceback")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of text")
		nodes    = flag.Bool("nodes", false, "print per-block implementation counts")
		svgOut   = flag.String("svg", "", "write the placement as SVG to this file")
		workers  = flag.Int("workers", 0, "parallel block evaluators (0 = all CPUs, 1 = sequential)")
		tf       cliutil.TelemetryFlags
	)
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *treeFile == "" || *libFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	treeData, err := os.ReadFile(*treeFile)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := floorplan.ParseTree(treeData)
	if err != nil {
		log.Fatal(err)
	}
	libData, err := os.ReadFile(*libFile)
	if err != nil {
		log.Fatal(err)
	}
	var lib floorplan.Library
	if err := json.Unmarshal(libData, &lib); err != nil {
		log.Fatalf("decoding library: %v", err)
	}

	if _, err := tf.Logger(); err != nil {
		log.Fatal(err)
	}
	col := tf.Collector()
	if err := tf.StartDebug(col); err != nil {
		log.Fatal(err)
	}
	opts := floorplan.Options{
		Selection:     floorplan.Selection{K1: *k1, K2: *k2, Theta: *theta, S: *s},
		MemoryLimit:   *limit,
		SkipPlacement: *skip,
		Workers:       *workers,
		Telemetry:     col,
	}
	start := time.Now()
	res, err := floorplan.Optimize(tree, lib, opts)
	elapsed := time.Since(start)
	// The report and trace cover failed runs too — a memory-limit abort is
	// exactly when the selection-error and peak numbers matter.
	if ferr := tf.Flush(col); ferr != nil {
		log.Fatal(ferr)
	}
	if err != nil {
		if floorplan.IsMemoryLimit(err) && res != nil {
			fmt.Printf("OUT OF MEMORY: > %d implementations stored (limit %d) after %s\n",
				res.Stats.PeakStored, *limit, elapsed.Round(time.Millisecond))
			os.Exit(1)
		}
		log.Fatal(err)
	}

	if *jsonOut {
		emitJSON(tree, res, elapsed)
		return
	}

	fmt.Printf("modules:    %d (%d wheels)\n", tree.ModuleCount(), tree.WheelCount())
	fmt.Printf("optimum:    %dx%d  area %d\n", res.Best.W, res.Best.H, res.Best.Area())
	fmt.Printf("staircase:  %d envelope shapes\n", len(res.RootList))
	fmt.Printf("M:          %d implementations stored (peak)\n", res.Stats.PeakStored)
	fmt.Printf("generated:  %d before selection\n", res.Stats.Generated)
	fmt.Printf("selections: %d R, %d L\n", res.Stats.RSelections, res.Stats.LSelections)
	fmt.Printf("CPU:        %s (bottom-up), %s total\n",
		res.Stats.Elapsed.Round(time.Millisecond), elapsed.Round(time.Millisecond))
	if *nodes {
		fmt.Println()
		fmt.Printf("%-6s %-8s %-8s %10s %10s %8s\n", "node", "kind", "shape", "generated", "stored", "lists")
		for _, ns := range res.NodeStats {
			shapeKind := "rect"
			if ns.LShaped {
				shapeKind = "L"
			}
			fmt.Printf("%-6d %-8s %-8s %10d %10d %8d\n",
				ns.ID, ns.Kind, shapeKind, ns.Generated, ns.Stored, ns.Lists)
		}
	}
	if res.Placement != nil {
		slack, frac := res.Placement.WhiteSpace()
		fmt.Printf("whitespace: %d (%.2f%%)\n", slack, 100*frac)
		if *table {
			fmt.Println()
			fmt.Print(floorplan.PlacementTable(res.Placement))
		}
		if *art {
			fmt.Println()
			fmt.Print(floorplan.RenderPlacement(res.Placement, *artWidth))
		}
		if *svgOut != "" {
			if err := os.WriteFile(*svgOut, []byte(floorplan.RenderSVG(res.Placement, 800)), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}
