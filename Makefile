# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector (the parallel evaluator, annealer and
# table grid are all exercised concurrently by their tests), plus a focused
# race pass over the telemetry collector.

GO ?= go

.PHONY: all build test race vet bench bench-report bench-snapshot bench-diff race-arena serve-smoke load-smoke cluster-smoke race-serve editloop-smoke obs-check check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet also enforces gofmt: a formatting drift fails the gate with the list
# of offending files rather than surfacing as diff noise in review.
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Short-mode suite under the race detector; must stay race-clean.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run NONE -bench EvalParallel -benchtime 3x .

# bench-report runs the CI-scale grid with telemetry and writes the merged
# run report plus per-table BENCH json. fpbench itself re-parses the report
# (telemetry.ParseReport) and exits non-zero if it does not round-trip, so
# this target fails on any report schema or marshalling regression.
bench-report: build
	mkdir -p bench-out
	$(GO) run ./cmd/fpbench -smoke -quiet -benchjson bench-out -report bench-out/report.json

# bench-snapshot re-measures the pinned perf grid and rewrites the
# committed BENCH snapshot, carrying the previous trajectory forward as the
# embedded baseline. Run on an idle machine; commit the result.
bench-snapshot: build
	$(GO) run ./cmd/fpbench -snapshot BENCH_0009.json

# bench-diff is the offline perf gate: the newest committed BENCH snapshot
# must not regress (>10% ns/op or any allocs/op) against its predecessor
# (or its embedded baseline). No benchmarks are run.
bench-diff:
	GO="$(GO)" sh scripts/bench_diff.sh

# Focused race pass over the arena-backed evaluation hot path: the slab
# arenas themselves plus the parallel optimizer that resets them per node.
race-arena:
	$(GO) test -race -count=2 ./internal/arena/...
	$(GO) test -race -run 'TestWorkersBitIdentical|TestParallelMemoryLimit' ./internal/optimizer/

# serve-smoke boots fpserve on a random port and drives it through the
# HTTP API with `fpbench -server` (health check, a concurrent burst that
# must report the "coalesced" disposition, cache hit-rate and byte-identity
# verification, client retry policy); non-zero exit on failure.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# load-smoke boots fpserve and runs the open-loop load harness against it:
# a constant/ramp/burst schedule whose SLO assertions must pass, then a
# deliberately impossible SLO that must fail the run (the gate's negative
# control); non-zero exit on either going wrong.
load-smoke:
	GO="$(GO)" sh scripts/load_smoke.sh

# cluster-smoke boots a 3-node fpserve ring plus a single-node reference
# and asserts the multi-node tier end to end: cluster-wide dedup (one
# optimizer run for a burst of identical fingerprints across all nodes,
# byte-identical to the reference), a passing skewed load run spread over
# all three nodes, and graceful degradation (peer_fallback, zero failures)
# when one node is killed mid-run.
cluster-smoke:
	GO="$(GO)" sh scripts/cluster_smoke.sh

# Focused race pass over the serving hot path: the flight coalescing group,
# the cluster ring/forwarding layer, the subtree result store and the
# server's shared-computation plumbing.
race-serve:
	$(GO) test -race -count=2 ./internal/flight/... ./internal/cluster/... ./internal/server/... ./internal/substore/...

# editloop-smoke is the incremental re-optimization gate: fpbench's edit
# loop asserts that re-solving after a one-module edit evaluates only the
# root-to-leaf spine (subtree store splices the rest) and stays
# bit-identical to store-off runs at workers 1 and 8.
editloop-smoke: build
	$(GO) run ./cmd/fpbench -editloop -edit-iters 6

# obs-check gates the observability surface: vet over the trace/log
# packages, the Prometheus exposition golden + metric-metadata lint tests,
# and the serve smoke (which scrapes /metrics and greps the access log).
obs-check:
	$(GO) vet ./internal/reqid/... ./internal/slogx/... ./internal/telemetry/...
	$(GO) test -run 'TestPrometheus|TestMetricMeta' ./internal/telemetry/
	$(GO) test ./internal/reqid/... ./internal/slogx/...
	GO="$(GO)" sh scripts/serve_smoke.sh

check: vet race obs-check race-serve race-arena bench-diff editloop-smoke load-smoke cluster-smoke
	$(GO) test -race ./internal/telemetry/... ./internal/cache/...
