# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector (the parallel evaluator, annealer and
# table grid are all exercised concurrently by their tests), plus a focused
# race pass over the telemetry collector.

GO ?= go

.PHONY: all build test race vet bench bench-report serve-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Short-mode suite under the race detector; must stay race-clean.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run NONE -bench EvalParallel -benchtime 3x .

# bench-report runs the CI-scale grid with telemetry and writes the merged
# run report plus per-table BENCH json. fpbench itself re-parses the report
# (telemetry.ParseReport) and exits non-zero if it does not round-trip, so
# this target fails on any report schema or marshalling regression.
bench-report: build
	mkdir -p bench-out
	$(GO) run ./cmd/fpbench -smoke -quiet -benchjson bench-out -report bench-out/report.json

# serve-smoke boots fpserve on a random port and drives one optimize
# round-trip through the HTTP API with `fpbench -server` (health check,
# cache hit-rate and byte-identity verification); non-zero exit on failure.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

check: vet race serve-smoke
	$(GO) test -race ./internal/telemetry/... ./internal/cache/... ./internal/server/...
