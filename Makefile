# Developer entry points. `make check` is the CI gate: vet plus the full
# test suite under the race detector (the parallel evaluator, annealer and
# table grid are all exercised concurrently by their tests).

GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Short-mode suite under the race detector; must stay race-clean.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run NONE -bench EvalParallel -benchtime 3x .

check: vet race
