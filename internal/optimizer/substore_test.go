package optimizer

import (
	"math/rand"
	"reflect"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/substore"
)

func newTestStore(t *testing.T) *substore.Store {
	t.Helper()
	s, err := substore.New(substore.Config{MaxBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertSameResult demands bit-identical deterministic payloads: Best,
// Stats (except Elapsed), RootList, NodeStats and Placement.
func assertSameResult(t *testing.T, label string, got, ref *Result) {
	t.Helper()
	if got.Best != ref.Best {
		t.Fatalf("%s: Best %v != %v", label, got.Best, ref.Best)
	}
	gs, rs := got.Stats, ref.Stats
	gs.Elapsed, rs.Elapsed = 0, 0
	if gs != rs {
		t.Fatalf("%s: Stats %+v != %+v", label, gs, rs)
	}
	if !got.RootList.Equal(ref.RootList) {
		t.Fatalf("%s: root lists diverged", label)
	}
	if !reflect.DeepEqual(got.NodeStats, ref.NodeStats) {
		t.Fatalf("%s: NodeStats diverged:\n%+v\n%+v", label, got.NodeStats, ref.NodeStats)
	}
	if (got.Placement == nil) != (ref.Placement == nil) {
		t.Fatalf("%s: placement presence diverged", label)
	}
	if got.Placement == nil {
		return
	}
	if got.Placement.Envelope != ref.Placement.Envelope {
		t.Fatalf("%s: envelopes diverged", label)
	}
	if len(got.Placement.Modules) != len(ref.Placement.Modules) {
		t.Fatalf("%s: placements diverged", label)
	}
	for i := range got.Placement.Modules {
		if got.Placement.Modules[i] != ref.Placement.Modules[i] {
			t.Fatalf("%s: module %d placed differently", label, i)
		}
	}
}

// TestSubstoreBitIdenticalMatrix is the worker-count × store-state identity
// matrix the store's contract promises: for workers ∈ {1, 2, 8} and the
// store off, cold or fully warm, the deterministic payload is bit-identical.
// A warm run must additionally resolve every node (zero evaluations).
func TestSubstoreBitIdenticalMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(931))
	for trial := 0; trial < 3; trial++ {
		tree, err := gen.RandomTree(rng, 10+rng.Intn(10), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
		if err != nil {
			t.Fatal(err)
		}
		lib := Library(rawLib)
		policy := selection.Policy{K1: 4, K2: 40, S: 30}
		ref := mustRun(t, lib, Options{Policy: policy, Workers: 1}, tree)
		if ref.Reuse != (Reuse{}) {
			t.Fatalf("trial %d: store-off run reported reuse %+v", trial, ref.Reuse)
		}
		nodes := len(ref.NodeStats)
		for _, w := range []int{1, 2, 8} {
			store := newTestStore(t)
			cold := mustRun(t, lib, Options{Policy: policy, Workers: w, Substore: store}, tree)
			assertSameResult(t, "cold", cold, ref)
			if cold.Reuse.ComputedNodes != nodes || cold.Reuse.SplicedNodes != 0 {
				t.Fatalf("trial %d workers %d: cold reuse %+v, want %d computed",
					trial, w, cold.Reuse, nodes)
			}
			if cold.Reuse.StorePuts != nodes {
				t.Fatalf("trial %d workers %d: cold run stored %d of %d records",
					trial, w, cold.Reuse.StorePuts, nodes)
			}
			warm := mustRun(t, lib, Options{Policy: policy, Workers: w, Substore: store}, tree)
			assertSameResult(t, "warm", warm, ref)
			if warm.Reuse.ComputedNodes != 0 || warm.Reuse.SplicedNodes != nodes {
				t.Fatalf("trial %d workers %d: warm reuse %+v, want %d spliced",
					trial, w, warm.Reuse, nodes)
			}
		}
	}
}

// spineNodes counts the nodes of the restructured binary tree whose subtree
// contains a leaf of the given module — the union of root-to-leaf paths
// that an edit of that module's implementation list dirties.
func spineNodes(t *testing.T, tree *plan.Node, module string) (spine, total int) {
	t.Helper()
	bin, err := plan.Restructure(tree)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(b *plan.BinNode) bool
	walk = func(b *plan.BinNode) bool {
		total++
		if b.Kind == plan.BinLeaf {
			if b.Module == module {
				spine++
				return true
			}
			return false
		}
		l := walk(b.Left)
		r := walk(b.Right)
		if l || r {
			spine++
			return true
		}
		return false
	}
	walk(bin)
	return spine, total
}

// TestSubstoreEditRecomputesSpineOnly is the incremental re-optimization
// proof: after a cold solve, editing one leaf's implementation list and
// re-solving evaluates exactly the root-to-leaf spine through that leaf —
// every off-spine digest is unchanged and resolves from the store — and the
// result is byte-identical to a store-disabled run of the edited workload
// at workers 1 and 8.
func TestSubstoreEditRecomputesSpineOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(932))
	tree, err := gen.RandomTree(rng, 16, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	policy := selection.Policy{K1: 4, K2: 40, S: 30}

	// Prime two stores identically (one per worker count under test) with
	// a cold solve of the original workload.
	storeA, storeB := newTestStore(t), newTestStore(t)
	cold := mustRun(t, lib, Options{Policy: policy, Workers: 1, Substore: storeA}, tree)
	mustRun(t, lib, Options{Policy: policy, Workers: 8, Substore: storeB}, tree)
	if cold.Reuse.ComputedNodes != len(cold.NodeStats) {
		t.Fatalf("cold solve computed %d of %d nodes", cold.Reuse.ComputedNodes, len(cold.NodeStats))
	}

	// Edit one module: regenerate its implementation list until it differs.
	edited := tree.Modules()[0]
	lib2 := make(Library, len(lib))
	for name, l := range lib {
		lib2[name] = l
	}
	for {
		nl, err := gen.Module(rng, gen.DefaultModuleParams(5))
		if err != nil {
			t.Fatal(err)
		}
		if !shape.RList(nl).Equal(lib[edited]) {
			lib2[edited] = nl
			break
		}
	}

	spine, total := spineNodes(t, tree, edited)
	if spine < 2 || spine >= total {
		t.Fatalf("degenerate spine %d of %d nodes", spine, total)
	}

	ref := mustRun(t, lib2, Options{Policy: policy, Workers: 1}, tree)
	for _, tc := range []struct {
		workers int
		store   *substore.Store
	}{{1, storeA}, {8, storeB}} {
		got := mustRun(t, lib2, Options{Policy: policy, Workers: tc.workers, Substore: tc.store}, tree)
		assertSameResult(t, "edited", got, ref)
		if got.Reuse.ComputedNodes != spine {
			t.Fatalf("workers %d: edit recomputed %d nodes, want the %d-node spine",
				tc.workers, got.Reuse.ComputedNodes, spine)
		}
		if got.Reuse.SplicedNodes != total-spine {
			t.Fatalf("workers %d: edit spliced %d nodes, want %d",
				tc.workers, got.Reuse.SplicedNodes, total-spine)
		}
	}
}

// TestSubstoreSharesAcrossModuleNames pins the digest's name independence:
// a second workload whose leaves carry different names but identical
// canonical shape lists resolves entirely from a store warmed by the first,
// and still places its own module names.
func TestSubstoreSharesAcrossModuleNames(t *testing.T) {
	lib := Library{
		"a": shape.MustRList([]shape.RImpl{{W: 4, H: 7}, {W: 7, H: 4}}),
		"b": shape.MustRList([]shape.RImpl{{W: 3, H: 3}}),
	}
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	renamed := Library{
		"x": lib["a"],
		"y": lib["b"],
	}
	tree2 := plan.NewVSlice(plan.NewLeaf("x"), plan.NewLeaf("y"))

	store := newTestStore(t)
	mustRun(t, lib, Options{Substore: store}, tree)
	got := mustRun(t, renamed, Options{Substore: store}, tree2)
	if got.Reuse.ComputedNodes != 0 {
		t.Fatalf("renamed workload computed %d nodes, want full resolution", got.Reuse.ComputedNodes)
	}
	want := mustRun(t, renamed, Options{}, tree2)
	assertSameResult(t, "renamed", got, want)
	names := map[string]bool{}
	for _, m := range got.Placement.Modules {
		names[m.Module] = true
	}
	if !names["x"] || !names["y"] {
		t.Fatalf("spliced placement lost the tree's module names: %v", names)
	}
}

// TestSubstoreIgnoredUnderMemoryLimit pins the gate: memory-limited runs
// neither consult nor fill the store, even when one is configured.
func TestSubstoreIgnoredUnderMemoryLimit(t *testing.T) {
	lib := Library{
		"a": shape.MustRList([]shape.RImpl{{W: 4, H: 7}, {W: 7, H: 4}}),
		"b": shape.MustRList([]shape.RImpl{{W: 3, H: 3}}),
	}
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	store := newTestStore(t)
	res := mustRun(t, lib, Options{MemoryLimit: 1 << 30, Substore: store}, tree)
	if store.Len() != 0 {
		t.Fatalf("memory-limited run filled the store with %d records", store.Len())
	}
	if res.Reuse != (Reuse{}) {
		t.Fatalf("memory-limited run reported reuse %+v", res.Reuse)
	}
}
