package optimizer

import (
	"encoding/binary"
	"math"

	"floorplan/internal/plan"
	"floorplan/internal/substore"
)

// Subtree memoization: before evaluating, the run resolves every node
// whose content address is already in the subtree store, splicing the
// stored curve and statistics in place of evaluation; only the unresolved
// remainder is scheduled. Two requests sharing a sub-floorplan share the
// work below it, and re-optimizing an edited tree evaluates only the
// spine from the changed leaf to the root — every other digest is
// unchanged and resolves.
//
// The splice is exact, not approximate: a NodeRecord carries the full
// per-node outcome (curve, generated/stored counts, selection error and
// CSPP dimensions, combine candidates), so the deterministic accounting —
// Stats replay, NodeStats, telemetry counters — and placement traceback
// are byte-identical whether a node was evaluated or resolved. Memory-
// limited runs never consult the store (RunBinary gates on
// MemoryLimit == 0): an abort's partial statistics depend on which nodes
// actually admitted implementations, which splicing would change.

// substoreCtxVersion versions the digest context; bump it whenever the
// evaluation semantics behind a stored record change, so stale records
// from older builds can never resolve.
const substoreCtxVersion = 1

// substoreContext encodes everything outside the tree and library that
// changes a node's evaluation result: the selection policy. Worker count,
// placement skipping and telemetry do not affect per-node results (pinned
// by the bit-identity tests) and are deliberately excluded, so runs that
// differ only in those share records.
func (o *Optimizer) substoreContext() []byte {
	p := o.opts.Policy
	ctx := []byte{substoreCtxVersion}
	ctx = binary.AppendVarint(ctx, int64(p.K1))
	ctx = binary.AppendVarint(ctx, int64(p.K2))
	ctx = binary.AppendVarint(ctx, int64(p.S))
	ctx = binary.AppendUvarint(ctx, math.Float64bits(p.Theta))
	return ctx
}

// planLibrary views the optimizer's library as a plan.Library for digest
// computation.
func (o *Optimizer) planLibrary() plan.Library {
	pl := make(plan.Library, len(o.lib))
	for name, l := range o.lib {
		pl[name] = l
	}
	return pl
}

// resolveFromStore consults the store for every node of the canonical
// schedule, in postorder, splicing hits and returning the unresolved
// remainder (still in postorder) for evaluation. It runs on the calling
// goroutine before any worker starts, so every splice happens-before
// every evaluation that might read a spliced operand, and the resolved
// set is deterministic for a given store state.
func (st *runState) resolveFromStore(schedule []*plan.BinNode) []*plan.BinNode {
	work := schedule[:0:0]
	for _, b := range schedule {
		rec, ok := st.sub.Get(st.digests[b.ID])
		if !ok || rec.LShaped != b.IsL() {
			// Miss — or a record whose shape class contradicts the node,
			// which would mean digest collision or format drift; evaluate.
			work = append(work, b)
			continue
		}
		st.splice(b, rec)
	}
	return work
}

// splice installs a stored record as node b's outcome and retained curve,
// exactly as if the node had been evaluated. The memory ledger replays
// the node's admit/release so a later abort elsewhere reports the same
// tracker state a store-off run would (Add cannot fail: the store is
// gated to unlimited runs).
func (st *runState) splice(b *plan.BinNode, rec substore.NodeRecord) {
	out := &nodeOutcome{
		stat: NodeStat{
			ID:        b.ID,
			Kind:      b.Kind,
			LShaped:   rec.LShaped,
			Generated: rec.Generated,
			Stored:    rec.Stored,
			Lists:     rec.Lists,
		},
		selErr:     rec.SelErr,
		selN:       rec.SelN,
		selK:       rec.SelK,
		candidates: rec.Candidates,
	}
	if rec.RSel {
		out.rsel = 1
	}
	if rec.LSel {
		out.lsel = 1
	}
	st.outcomes[b.ID] = out
	st.evals[b.ID] = &nodeEval{rl: rec.RL, ls: rec.LS}
	_ = st.mem.Add(int64(rec.Generated))
	_ = st.mem.Release(int64(rec.Generated - rec.Stored))
}

// fillStore writes every successfully evaluated node's outcome back to
// the store and returns the number of records offered. Failed nodes are
// never stored (their outcome is a partial accounting artifact, not a
// reusable curve).
func (st *runState) fillStore(work []*plan.BinNode) int {
	puts := 0
	for _, b := range work {
		out := st.outcomes[b.ID]
		ev := st.evals[b.ID]
		if out == nil || out.failed || ev == nil {
			continue
		}
		st.sub.Put(st.digests[b.ID], substore.NodeRecord{
			LShaped:    out.stat.LShaped,
			RSel:       out.rsel > 0,
			LSel:       out.lsel > 0,
			Generated:  out.stat.Generated,
			Stored:     out.stat.Stored,
			Lists:      out.stat.Lists,
			SelErr:     out.selErr,
			SelN:       out.selN,
			SelK:       out.selK,
			Candidates: out.candidates,
			RL:         ev.rl,
			LS:         ev.ls,
		})
		puts++
	}
	return puts
}
