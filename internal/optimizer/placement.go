package optimizer

import (
	"fmt"
	"sort"

	"floorplan/internal/combine"
	"floorplan/internal/geom"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

// ModulePlacement is one module's realized basic rectangle. Box may be
// larger than Impl: basic rectangles absorb slack; the module itself sits
// at the box's lower-left corner.
type ModulePlacement struct {
	Module string
	Box    geom.Rect
	Impl   shape.RImpl
}

// Placement is a fully realized floorplan: the basic rectangles tile the
// envelope exactly.
type Placement struct {
	Envelope shape.RImpl
	Modules  []ModulePlacement
}

// trace reconstructs a placement for the root implementation `best` by
// descending the binary tree, at each node finding an operand pair that
// generated the node's chosen implementation.
func (st *runState) trace(bin *plan.BinNode, best shape.RImpl) (*Placement, error) {
	p := &Placement{Envelope: best}
	box := geom.RectWH(best.W, best.H)
	if err := st.placeR(bin, best, box, p); err != nil {
		return nil, err
	}
	return p, nil
}

// placeR realizes a rectangular block's implementation inside box.
// Invariant: box.Width() >= target.W and box.Height() >= target.H.
func (st *runState) placeR(b *plan.BinNode, target shape.RImpl, box geom.Rect, p *Placement) error {
	if box.Width() < target.W || box.Height() < target.H {
		return fmt.Errorf("optimizer: node %d: box %v smaller than implementation %v", b.ID, box, target)
	}
	ev := st.evals[b.ID]
	if ev == nil {
		return fmt.Errorf("optimizer: node %d has no stored evaluation", b.ID)
	}
	switch b.Kind {
	case plan.BinLeaf:
		p.Modules = append(p.Modules, ModulePlacement{Module: b.Module, Box: box, Impl: target})
		return nil
	case plan.BinVCut:
		a, c, ok := combine.FindVPair(st.evals[b.Left.ID].rl, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		leftBox := geom.Rect{MinX: box.MinX, MinY: box.MinY, MaxX: box.MinX + a.W, MaxY: box.MaxY}
		rightBox := geom.Rect{MinX: box.MinX + a.W, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY}
		if err := st.placeR(b.Left, a, leftBox, p); err != nil {
			return err
		}
		return st.placeR(b.Right, c, rightBox, p)
	case plan.BinHCut:
		a, c, ok := combine.FindHPair(st.evals[b.Left.ID].rl, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		bottomBox := geom.Rect{MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MinY + a.H}
		topBox := geom.Rect{MinX: box.MinX, MinY: box.MinY + a.H, MaxX: box.MaxX, MaxY: box.MaxY}
		if err := st.placeR(b.Left, a, bottomBox, p); err != nil {
			return err
		}
		return st.placeR(b.Right, c, topBox, p)
	case plan.BinClose:
		li, ci, ok := combine.FindClosePair(st.evals[b.Left.ID].ls, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		firstModule := len(p.Modules)
		// The NE block's box is the notch region of the allocation.
		neBox := geom.Rect{
			MinX: box.MinX + li.W2, MinY: box.MinY + li.H2,
			MaxX: box.MaxX, MaxY: box.MaxY,
		}
		// The L child receives the rest: exact top width and right height,
		// padded bottom width and left height.
		alloc := shape.LImpl{W1: box.Width(), W2: li.W2, H1: box.Height(), H2: li.H2}
		if err := st.placeL(b.Left, li, alloc, geom.Point{X: box.MinX, Y: box.MinY}, p); err != nil {
			return err
		}
		if err := st.placeR(b.Right, ci, neBox, p); err != nil {
			return err
		}
		if b.Mirror {
			mirrorModules(p.Modules[firstModule:], box)
		}
		return nil
	default:
		return fmt.Errorf("optimizer: placeR on %v node %d", b.Kind, b.ID)
	}
}

// placeL realizes an L-shaped block's implementation inside an allocated L
// region described by alloc (tuple) at origin. Invariants:
// alloc.W1 >= target.W1, alloc.W2 == target.W2, alloc.H1 >= target.H1,
// alloc.H2 >= target.H2.
func (st *runState) placeL(b *plan.BinNode, target, alloc shape.LImpl, origin geom.Point, p *Placement) error {
	if alloc.W1 < target.W1 || alloc.W2 != target.W2 || alloc.H1 < target.H1 || alloc.H2 < target.H2 {
		return fmt.Errorf("optimizer: node %d: allocation %v cannot hold %v", b.ID, alloc, target)
	}
	switch b.Kind {
	case plan.BinLStack:
		a, c, ok := combine.FindStackPair(st.evals[b.Left.ID].rl, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		// Bottom slab gets the full padded width and the full right height;
		// the top slab needs the remaining height to fit the NW block.
		if alloc.H1-alloc.H2 < c.H {
			return fmt.Errorf("optimizer: node %d: top slab %d too short for %v (allocation %v)", b.ID, alloc.H1-alloc.H2, c, alloc)
		}
		bottomBox := geom.Rect{
			MinX: origin.X, MinY: origin.Y,
			MaxX: origin.X + alloc.W1, MaxY: origin.Y + alloc.H2,
		}
		topBox := geom.Rect{
			MinX: origin.X, MinY: origin.Y + alloc.H2,
			MaxX: origin.X + alloc.W2, MaxY: origin.Y + alloc.H1,
		}
		if err := st.placeR(b.Left, a, bottomBox, p); err != nil {
			return err
		}
		return st.placeR(b.Right, c, topBox, p)
	case plan.BinLNotch:
		li, ci, ok := combine.FindNotchPair(st.evals[b.Left.ID].ls, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		// The center block sits in the notch: right of the top slab, on top
		// of the child L's bottom slab, absorbing all padding above and to
		// the right.
		centerBox := geom.Rect{
			MinX: origin.X + target.W2, MinY: origin.Y + li.H2,
			MaxX: origin.X + alloc.W1, MaxY: origin.Y + alloc.H2,
		}
		childAlloc := shape.LImpl{W1: alloc.W1, W2: li.W2, H1: alloc.H1, H2: li.H2}
		if err := st.placeL(b.Left, li, childAlloc, origin, p); err != nil {
			return err
		}
		return st.placeR(b.Right, ci, centerBox, p)
	case plan.BinLBottom:
		li, ci, ok := combine.FindBottomPair(st.evals[b.Left.ID].ls, st.evals[b.Right.ID].rl, target)
		if !ok {
			return fmt.Errorf("optimizer: node %d: no generating pair for %v", b.ID, target)
		}
		// The SE block occupies everything right of the child L's bottom
		// edge, up to the (possibly padded) notch line.
		seBox := geom.Rect{
			MinX: origin.X + li.W1, MinY: origin.Y,
			MaxX: origin.X + alloc.W1, MaxY: origin.Y + alloc.H2,
		}
		childAlloc := shape.LImpl{W1: li.W1, W2: li.W2, H1: alloc.H1, H2: alloc.H2}
		if err := st.placeL(b.Left, li, childAlloc, origin, p); err != nil {
			return err
		}
		return st.placeR(b.Right, ci, seBox, p)
	default:
		return fmt.Errorf("optimizer: placeL on %v node %d", b.Kind, b.ID)
	}
}

// mirrorModules reflects boxes horizontally within box (integer-exact).
func mirrorModules(ms []ModulePlacement, box geom.Rect) {
	for i := range ms {
		r := ms[i].Box
		ms[i].Box = geom.Rect{
			MinX: box.MinX + (box.MaxX - r.MaxX),
			MinY: r.MinY,
			MaxX: box.MinX + (box.MaxX - r.MinX),
			MaxY: r.MaxY,
		}
	}
}

// Verify checks that the placement is a legal floorplan realization:
//
//  1. every box lies inside the envelope;
//  2. boxes are pairwise non-overlapping;
//  3. the boxes tile the envelope exactly (areas sum to the envelope area);
//  4. every box is large enough for its module implementation;
//  5. every implementation appears in the module's library list or is
//     dominated by the box while matching a library entry exactly.
func (p *Placement) Verify(lib Library) error {
	env := geom.RectWH(p.Envelope.W, p.Envelope.H)
	var areaSum int64
	for i, m := range p.Modules {
		if !m.Box.Valid() || m.Box.Empty() {
			return fmt.Errorf("module %q: degenerate box %v", m.Module, m.Box)
		}
		if !env.Contains(m.Box) {
			return fmt.Errorf("module %q: box %v outside envelope %v", m.Module, m.Box, env)
		}
		if m.Box.Width() < m.Impl.W || m.Box.Height() < m.Impl.H {
			return fmt.Errorf("module %q: box %v too small for implementation %v", m.Module, m.Box, m.Impl)
		}
		if lib != nil {
			list, ok := lib[m.Module]
			if !ok {
				return fmt.Errorf("module %q not in library", m.Module)
			}
			found := false
			for _, r := range list {
				if r == m.Impl {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("module %q: implementation %v not in library", m.Module, m.Impl)
			}
		}
		areaSum += m.Box.Area()
		for j := 0; j < i; j++ {
			if m.Box.Overlaps(p.Modules[j].Box) {
				return fmt.Errorf("modules %q and %q overlap: %v vs %v", m.Module, p.Modules[j].Module, m.Box, p.Modules[j].Box)
			}
		}
	}
	if areaSum != env.Area() {
		return fmt.Errorf("boxes cover %d of envelope area %d: not a tiling", areaSum, env.Area())
	}
	return nil
}

// ByModule returns the placements sorted by module name, for stable output.
func (p *Placement) ByModule() []ModulePlacement {
	out := make([]ModulePlacement, len(p.Modules))
	copy(out, p.Modules)
	sort.Slice(out, func(i, j int) bool { return out[i].Module < out[j].Module })
	return out
}

// WhiteSpace returns the total slack area (envelope minus module
// implementation areas) and its fraction of the envelope.
func (p *Placement) WhiteSpace() (int64, float64) {
	var used int64
	for _, m := range p.Modules {
		used += m.Impl.Area()
	}
	slack := p.Envelope.Area() - used
	return slack, float64(slack) / float64(p.Envelope.Area())
}
