package optimizer

import (
	"bytes"
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/selection"
	"floorplan/internal/telemetry"
)

// TestTelemetryReportBitIdentical is the determinism contract of the
// telemetry layer: the canonical report (counters, watermarks, histogram
// buckets — everything outside the Runtime section) must be byte-for-byte
// identical whether the evaluation ran on one worker or eight. The runtime
// section (wall times, spans, CAS retries, pool churn) is explicitly
// excluded by Canonical().
func TestTelemetryReportBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 3; trial++ {
		tree, err := gen.RandomTree(rng, 12+rng.Intn(10), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
		if err != nil {
			t.Fatal(err)
		}
		lib := Library(rawLib)
		policy := selection.Policy{K1: 4, K2: 40, S: 30}

		canonical := func(workers int, disableArena bool) []byte {
			col := telemetry.New()
			res := mustRun(t, lib, Options{
				Policy: policy, Workers: workers, Telemetry: col,
				DisableArena: disableArena,
			}, tree)
			if res == nil {
				t.Fatal("nil result")
			}
			data, err := col.Report().Canonical().JSON()
			if err != nil {
				t.Fatal(err)
			}
			return data
		}

		ref := canonical(1, false)
		if len(ref) == 0 {
			t.Fatal("empty canonical report")
		}
		for _, w := range []int{2, 8} {
			for _, disableArena := range []bool{false, true} {
				got := canonical(w, disableArena)
				if !bytes.Equal(got, ref) {
					t.Fatalf("trial %d: canonical report differs between Workers=1 and Workers=%d (arena=%v):\n--- w=1 ---\n%s\n--- got ---\n%s",
						trial, w, !disableArena, ref, got)
				}
			}
		}
	}
}

// TestTelemetryCountersMatchStats cross-checks the collector against the
// run's own Stats: both are folds of the same per-node outcomes, so the
// deterministic counters must agree exactly.
func TestTelemetryCountersMatchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	tree, err := gen.RandomTree(rng, 16, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(6))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	col := telemetry.New()
	res := mustRun(t, lib, Options{
		Policy:    selection.Policy{K1: 4, K2: 40, S: 30},
		Workers:   4,
		Telemetry: col,
	}, tree)

	st := res.Stats
	checks := []struct {
		name string
		ctr  int64
		want int64
	}{
		{"nodes", col.Counter(telemetry.CtrNodes), int64(st.Nodes)},
		{"l_nodes", col.Counter(telemetry.CtrLNodes), int64(st.LNodes)},
		{"generated", col.Counter(telemetry.CtrGenerated), st.Generated},
		{"r_selections", col.Counter(telemetry.CtrRSelections), int64(st.RSelections)},
		{"l_selections", col.Counter(telemetry.CtrLSelections), int64(st.LSelections)},
		{"stored", col.Counter(telemetry.CtrStored), st.FinalStored},
		{"peak", col.Watermark(telemetry.MaxPeakStored), st.PeakStored},
		{"max_rlist", col.Watermark(telemetry.MaxRList), int64(st.MaxRList)},
		{"max_lset", col.Watermark(telemetry.MaxLSet), int64(st.MaxLSet)},
	}
	for _, c := range checks {
		if c.ctr != c.want {
			t.Errorf("%s: collector has %d, stats say %d", c.name, c.ctr, c.want)
		}
	}
	if st.RSelections > 0 && col.Counter(telemetry.CtrRSelectionError) <= 0 {
		t.Error("R selections ran but no admitted selection error was recorded")
	}
	if col.Counter(telemetry.CtrCombineCandidates) <= 0 {
		t.Error("no combine candidates counted")
	}
	// Only L_Selection routes through the cspp solver (RSelect inlines its
	// DP), so the pool counter is tied to L selections.
	if st.LSelections > 0 && col.Counter(telemetry.CtrCSPPSolves) <= 0 {
		t.Error("L selections ran but no CSPP solves were counted")
	}

	// Per-node eval spans plus the evaluate/traceback stage spans.
	spans := col.Spans()
	var evalSpans, stageSpans int
	for _, s := range spans {
		switch s.Cat {
		case "eval":
			evalSpans++
		case telemetry.CatStage:
			stageSpans++
		}
	}
	if evalSpans != st.Nodes {
		t.Errorf("got %d eval spans, want one per node (%d)", evalSpans, st.Nodes)
	}
	if stageSpans < 2 {
		t.Errorf("got %d stage spans, want at least evaluate+traceback", stageSpans)
	}
}

// TestTelemetryNilCollector runs the optimizer with a nil collector — the
// default — and demands the run succeed with outputs identical to an
// instrumented run, proving instrumentation is observation-only.
func TestTelemetryNilCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tree, err := gen.RandomTree(rng, 14, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	policy := selection.Policy{K1: 4, K2: 40, S: 30}
	plain := mustRun(t, lib, Options{Policy: policy, Workers: 4}, tree)
	instr := mustRun(t, lib, Options{Policy: policy, Workers: 4, Telemetry: telemetry.New()}, tree)
	if plain.Best != instr.Best {
		t.Fatalf("telemetry changed the result: %v != %v", plain.Best, instr.Best)
	}
	ps, is := plain.Stats, instr.Stats
	ps.Elapsed, is.Elapsed = 0, 0
	if ps != is {
		t.Fatalf("telemetry changed the stats: %+v != %+v", ps, is)
	}
}
