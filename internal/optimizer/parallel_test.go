package optimizer

import (
	"math/rand"
	"reflect"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
)

// TestWorkersBitIdentical runs the same tree and library with Workers 1, 2
// and 8, with the combine arenas both on and off, and demands bit-identical
// outputs: the worker count is a pure throughput knob and the arenas only
// move scratch memory, never change what is computed.
func TestWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 4; trial++ {
		tree, err := gen.RandomTree(rng, 10+rng.Intn(12), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
		if err != nil {
			t.Fatal(err)
		}
		lib := Library(rawLib)
		policy := selection.Policy{K1: 4, K2: 40, S: 30}
		ref := mustRun(t, lib, Options{Policy: policy, Workers: 1}, tree)
		variants := []Options{
			{Policy: policy, Workers: 1, DisableArena: true},
			{Policy: policy, Workers: 2},
			{Policy: policy, Workers: 8},
			{Policy: policy, Workers: 8, DisableArena: true},
		}
		for _, opts := range variants {
			w := opts.Workers
			got := mustRun(t, lib, opts, tree)
			if got.Best != ref.Best {
				t.Fatalf("trial %d workers %d arena=%v: Best %v != %v",
					trial, w, !opts.DisableArena, got.Best, ref.Best)
			}
			gs, rs := got.Stats, ref.Stats
			gs.Elapsed, rs.Elapsed = 0, 0
			if gs != rs {
				t.Fatalf("trial %d workers %d arena=%v: Stats %+v != %+v",
					trial, w, !opts.DisableArena, gs, rs)
			}
			if !got.RootList.Equal(ref.RootList) {
				t.Fatalf("trial %d workers %d arena=%v: root lists diverged",
					trial, w, !opts.DisableArena)
			}
			if !reflect.DeepEqual(got.NodeStats, ref.NodeStats) {
				t.Fatalf("trial %d workers %d arena=%v: NodeStats diverged:\n%+v\n%+v",
					trial, w, !opts.DisableArena, got.NodeStats, ref.NodeStats)
			}
			if len(got.Placement.Modules) != len(ref.Placement.Modules) {
				t.Fatalf("trial %d workers %d arena=%v: placements diverged",
					trial, w, !opts.DisableArena)
			}
			for i := range got.Placement.Modules {
				if got.Placement.Modules[i] != ref.Placement.Modules[i] {
					t.Fatalf("trial %d workers %d arena=%v: module %d placed differently",
						trial, w, !opts.DisableArena, i)
				}
			}
		}
	}
}

// TestParallelMemoryLimit reproduces the paper's out-of-memory failure
// under concurrency: with several workers and a small limit, the run must
// fail with ErrMemoryLimit, report the "> limit" peak, and — the
// reservation tracker's invariant — never actually admit past the limit
// (FinalStored is the admitted count at the end of the drained run).
func TestParallelMemoryLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	tree, err := gen.RandomTree(rng, 12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(8))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	const limit = 50
	for _, w := range []int{2, 4, 8} {
		res, err := mustOptimizer(t, lib, Options{MemoryLimit: limit, Workers: w}).Run(tree)
		if err == nil {
			t.Fatalf("workers %d: expected memory-limit abort", w)
		}
		if !IsMemoryLimit(err) {
			t.Fatalf("workers %d: error %v does not match ErrMemoryLimit", w, err)
		}
		if res == nil {
			t.Fatalf("workers %d: no partial stats", w)
		}
		if res.Stats.PeakStored <= limit {
			t.Errorf("workers %d: PeakStored = %d, want > %d for '> M' reporting",
				w, res.Stats.PeakStored, limit)
		}
		if res.Stats.FinalStored > limit {
			t.Errorf("workers %d: over-admitted: FinalStored = %d > limit %d",
				w, res.Stats.FinalStored, limit)
		}
	}
}

// TestExhaustedBudgetFailsWithoutOverAdmitting pins the remainingBudget
// fix: once the stored count sits exactly at the limit, the next combine
// must abort immediately with ErrMemoryLimit (it cannot store zero
// implementations) instead of being granted a phantom budget of 1.
func TestExhaustedBudgetFailsWithoutOverAdmitting(t *testing.T) {
	lib := Library{"a": {{W: 4, H: 2}, {W: 2, H: 4}}, "b": {{W: 3, H: 3}}}
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	// Leaves store 2+1 = 3 = limit exactly; the vcut node then has zero
	// budget left.
	res, err := mustOptimizer(t, lib, Options{MemoryLimit: 3}).Run(tree)
	if err == nil || !IsMemoryLimit(err) {
		t.Fatalf("err = %v, want ErrMemoryLimit", err)
	}
	if res.Stats.PeakStored <= 3 {
		t.Errorf("PeakStored = %d, want > 3 for '> M' reporting", res.Stats.PeakStored)
	}
	if res.Stats.FinalStored > 3 {
		t.Errorf("FinalStored = %d: admitted past the limit", res.Stats.FinalStored)
	}
}

// TestRunBinaryRenumbersBadIDs checks that hand-built binary trees with
// non-preorder IDs are renumbered instead of corrupting the ID-indexed
// evaluation tables.
func TestRunBinaryRenumbersBadIDs(t *testing.T) {
	lib := Library{"a": {{W: 2, H: 3}}, "b": {{W: 3, H: 2}}}
	bad := &plan.BinNode{
		Kind:  plan.BinVCut,
		Left:  &plan.BinNode{Kind: plan.BinLeaf, Module: "a", ID: 7},
		Right: &plan.BinNode{Kind: plan.BinLeaf, Module: "b", ID: 7},
		ID:    3,
	}
	o, err := New(lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.RunBinary(bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Area() != 15 {
		t.Fatalf("Best = %v", res.Best)
	}
	if !bad.HasPreorderIDs() {
		t.Error("tree was not renumbered")
	}
}
