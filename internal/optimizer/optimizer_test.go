package optimizer

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

func mustOptimizer(t *testing.T, lib Library, opts Options) *Optimizer {
	t.Helper()
	o, err := New(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func mustRun(t *testing.T, lib Library, opts Options, tree *plan.Node) *Result {
	t.Helper()
	res, err := mustOptimizer(t, lib, opts).Run(tree)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleModule(t *testing.T) {
	lib := Library{"m": shape.MustRList([]shape.RImpl{{W: 10, H: 2}, {W: 4, H: 4}, {W: 2, H: 12}})}
	res := mustRun(t, lib, Options{}, plan.NewLeaf("m"))
	if res.Best != (shape.RImpl{W: 4, H: 4}) {
		t.Fatalf("Best = %v", res.Best)
	}
	if res.Placement == nil || len(res.Placement.Modules) != 1 {
		t.Fatalf("Placement = %+v", res.Placement)
	}
	if res.Stats.Nodes != 1 || res.Stats.PeakStored != 3 {
		t.Fatalf("Stats = %+v", res.Stats)
	}
}

func TestTwoModuleSlice(t *testing.T) {
	lib := Library{
		"a": shape.MustRList([]shape.RImpl{{W: 4, H: 2}, {W: 2, H: 4}}),
		"b": shape.MustRList([]shape.RImpl{{W: 3, H: 3}}),
	}
	// Vertical: candidates (4+3, max(2,3))=(7,3)=21 and (2+3, max(4,3))=(5,4)=20.
	res := mustRun(t, lib, Options{}, plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b")))
	if res.Best.Area() != 20 {
		t.Fatalf("V Best = %v", res.Best)
	}
	// Horizontal: (max(4,3), 2+3)=(4,5)=20 and (max(2,3),4+3)=(3,7)=21.
	res = mustRun(t, lib, Options{}, plan.NewHSlice(plan.NewLeaf("a"), plan.NewLeaf("b")))
	if res.Best.Area() != 20 {
		t.Fatalf("H Best = %v", res.Best)
	}
}

func TestPerfectPinwheel(t *testing.T) {
	// The interlocking 10x10 pinwheel from the combine tests, as a full run.
	lib := Library{
		"nw": shape.RList{{W: 4, H: 7}},
		"ne": shape.RList{{W: 6, H: 4}},
		"se": shape.RList{{W: 3, H: 6}},
		"sw": shape.RList{{W: 7, H: 3}},
		"c":  shape.RList{{W: 3, H: 3}},
	}
	tree := plan.NewWheel(
		plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"),
		plan.NewLeaf("sw"), plan.NewLeaf("c"))
	res := mustRun(t, lib, Options{}, tree)
	if res.Best != (shape.RImpl{W: 10, H: 10}) {
		t.Fatalf("Best = %v", res.Best)
	}
	slack, frac := res.Placement.WhiteSpace()
	if slack != 0 || frac != 0 {
		t.Fatalf("perfect pinwheel has slack %d", slack)
	}
}

func TestCCWWheelMirrorsPlacement(t *testing.T) {
	lib := Library{
		"nw": shape.RList{{W: 4, H: 7}},
		"ne": shape.RList{{W: 6, H: 4}},
		"se": shape.RList{{W: 3, H: 6}},
		"sw": shape.RList{{W: 7, H: 3}},
		"c":  shape.RList{{W: 3, H: 3}},
	}
	cw := plan.NewWheel(plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"), plan.NewLeaf("sw"), plan.NewLeaf("c"))
	// The CCW wheel of the mirrored roles has the same shape set.
	ccw := plan.NewCCWWheel(plan.NewLeaf("ne"), plan.NewLeaf("nw"), plan.NewLeaf("sw"), plan.NewLeaf("se"), plan.NewLeaf("c"))
	resCW := mustRun(t, lib, Options{}, cw)
	resCCW := mustRun(t, lib, Options{}, ccw)
	if resCW.Best != resCCW.Best {
		t.Fatalf("CW %v vs CCW %v", resCW.Best, resCCW.Best)
	}
	// In the mirrored plan, "nw" must end up on the right half.
	for _, m := range resCCW.Placement.Modules {
		if m.Module == "nw" && m.Box.MinX == 0 {
			t.Fatalf("nw not mirrored: %v", m.Box)
		}
	}
}

// TestMatchesExhaustiveChoice checks completeness of the bottom-up
// enumeration: the optimal area equals the minimum over every combination
// of module implementation choices, each evaluated with singleton lists
// (where pruning has nothing to discard).
func TestMatchesExhaustiveChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		nMod := 2 + rng.Intn(6)
		tree, err := gen.RandomTree(rng, nMod, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		lib := make(Library)
		leaves := tree.Leaves()
		for _, l := range leaves {
			p := gen.DefaultModuleParams(1 + rng.Intn(3))
			p.MinArea, p.MaxArea = 6, 60
			ml, err := gen.Module(rng, p)
			if err != nil {
				t.Fatal(err)
			}
			lib[l.Module] = ml
		}
		full := mustRun(t, lib, Options{}, tree)

		// Exhaustive: every combination of one implementation per module.
		best := int64(-1)
		choice := make(map[string]shape.RImpl)
		var recurse func(i int)
		recurse = func(i int) {
			if i == len(leaves) {
				single := make(Library)
				for m, impl := range choice {
					single[m] = shape.RList{impl}
				}
				res, err := mustOptimizer(t, single, Options{SkipPlacement: true}).Run(tree)
				if err != nil {
					t.Fatal(err)
				}
				if best < 0 || res.Best.Area() < best {
					best = res.Best.Area()
				}
				return
			}
			for _, impl := range lib[leaves[i].Module] {
				choice[leaves[i].Module] = impl
				recurse(i + 1)
			}
		}
		recurse(0)
		if full.Best.Area() != best {
			t.Fatalf("trial %d: optimizer %d != exhaustive %d", trial, full.Best.Area(), best)
		}
	}
}

func TestPlacementLegalOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		nMod := 2 + rng.Intn(20)
		tree, err := gen.RandomTree(rng, nMod, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		p := gen.DefaultModuleParams(2 + rng.Intn(4))
		p.MinArea, p.MaxArea = 20, 200
		rawLib, err := gen.Library(rng, tree, p)
		if err != nil {
			t.Fatal(err)
		}
		lib := Library(rawLib)
		res := mustRun(t, lib, Options{}, tree)
		// Run already verifies; double-check the invariants explicitly.
		if err := res.Placement.Verify(lib); err != nil {
			t.Fatal(err)
		}
		if len(res.Placement.Modules) != nMod {
			t.Fatalf("placed %d of %d modules", len(res.Placement.Modules), nMod)
		}
		if res.Placement.Envelope != res.Best {
			t.Fatal("placement envelope differs from Best")
		}
	}
}

func TestSelectionNeverImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		tree, err := gen.RandomTree(rng, 8+rng.Intn(10), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		p := gen.DefaultModuleParams(6)
		rawLib, err := gen.Library(rng, tree, p)
		if err != nil {
			t.Fatal(err)
		}
		lib := Library(rawLib)
		exact := mustRun(t, lib, Options{}, tree)
		pruned := mustRun(t, lib, Options{
			Policy: selection.Policy{K1: 4, K2: 30},
		}, tree)
		if pruned.Best.Area() < exact.Best.Area() {
			t.Fatalf("selection improved area: %d < %d", pruned.Best.Area(), exact.Best.Area())
		}
		if pruned.Stats.PeakStored > exact.Stats.PeakStored {
			t.Fatalf("selection increased peak memory: %d > %d", pruned.Stats.PeakStored, exact.Stats.PeakStored)
		}
		// Selection runs must still produce legal placements.
		if err := pruned.Placement.Verify(lib); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargePolicyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	tree, err := gen.RandomTree(rng, 9, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(4))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	plain := mustRun(t, lib, Options{}, tree)
	huge := mustRun(t, lib, Options{Policy: selection.Policy{K1: 1 << 20, K2: 1 << 20}}, tree)
	if plain.Best != huge.Best {
		t.Fatalf("huge limits changed the result: %v vs %v", plain.Best, huge.Best)
	}
	if plain.Stats.Generated != huge.Stats.Generated {
		t.Fatalf("huge limits changed generation: %d vs %d", plain.Stats.Generated, huge.Stats.Generated)
	}
}

func TestMemoryLimitAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	tree, err := gen.RandomTree(rng, 12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(8))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	res, err := mustOptimizer(t, lib, Options{MemoryLimit: 50}).Run(tree)
	if err == nil {
		t.Fatal("expected memory-limit abort")
	}
	if !IsMemoryLimit(err) {
		t.Fatalf("error %v does not match ErrMemoryLimit", err)
	}
	if res == nil || res.Stats.PeakStored <= 50 {
		t.Fatalf("partial stats missing or wrong: %+v", res)
	}
}

func TestStatsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	tree := gen.FP1()
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(3))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	res := mustRun(t, lib, Options{}, tree)
	bin, err := plan.Restructure(tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Nodes != bin.Count() {
		t.Errorf("Nodes = %d, want %d", res.Stats.Nodes, bin.Count())
	}
	if res.Stats.LNodes != bin.CountL() {
		t.Errorf("LNodes = %d, want %d", res.Stats.LNodes, bin.CountL())
	}
	if res.Stats.RSelections != 0 || res.Stats.LSelections != 0 {
		t.Error("no selections expected without a policy")
	}
	if res.Stats.Generated < res.Stats.PeakStored {
		t.Error("Generated must be >= PeakStored")
	}
	if res.Stats.FinalStored != res.Stats.PeakStored {
		t.Error("without selection, final == peak (lists are only ever added)")
	}

	withSel := mustRun(t, lib, Options{Policy: selection.Policy{K1: 2, K2: 4}}, tree)
	if withSel.Stats.RSelections == 0 || withSel.Stats.LSelections == 0 {
		t.Errorf("selections not counted: %+v", withSel.Stats)
	}
	if withSel.Stats.PeakStored >= res.Stats.PeakStored {
		t.Errorf("selection did not reduce peak: %d vs %d", withSel.Stats.PeakStored, res.Stats.PeakStored)
	}
}

func TestValidationErrors(t *testing.T) {
	lib := Library{"m": shape.RList{{W: 1, H: 1}}}
	if _, err := New(Library{"bad": nil}, Options{}); err == nil {
		t.Error("empty module list accepted")
	}
	if _, err := New(lib, Options{Policy: selection.Policy{K1: 1}}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := New(lib, Options{MemoryLimit: -1}); err == nil {
		t.Error("negative memory limit accepted")
	}
	o := mustOptimizer(t, lib, Options{})
	if _, err := o.Run(plan.NewLeaf("missing")); err == nil {
		t.Error("missing module accepted")
	}
	if _, err := o.Run(&plan.Node{Kind: plan.Leaf}); err == nil {
		t.Error("invalid tree accepted")
	}
	// A hand-built L-shaped root must be rejected.
	bad := &plan.BinNode{
		Kind:  plan.BinLStack,
		Left:  &plan.BinNode{Kind: plan.BinLeaf, Module: "m"},
		Right: &plan.BinNode{Kind: plan.BinLeaf, Module: "m", ID: 1},
	}
	if _, err := o.RunBinary(bad); err == nil {
		t.Error("L-shaped root accepted")
	}
}

func TestSkipPlacement(t *testing.T) {
	lib := Library{"m": shape.RList{{W: 3, H: 3}}}
	res := mustRun(t, lib, Options{SkipPlacement: true}, plan.NewLeaf("m"))
	if res.Placement != nil {
		t.Error("placement produced despite SkipPlacement")
	}
	if res.Best.Area() != 9 {
		t.Errorf("Best = %v", res.Best)
	}
}

func TestWhiteSpace(t *testing.T) {
	lib := Library{
		"a": shape.RList{{W: 2, H: 2}},
		"b": shape.RList{{W: 2, H: 3}},
	}
	res := mustRun(t, lib, Options{}, plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b")))
	// Envelope (4,3) = 12; used 4+6 = 10; slack 2.
	slack, frac := res.Placement.WhiteSpace()
	if slack != 2 {
		t.Fatalf("slack = %d", slack)
	}
	if frac <= 0 || frac >= 1 {
		t.Fatalf("frac = %f", frac)
	}
}
