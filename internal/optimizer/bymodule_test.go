package optimizer

import (
	"testing"

	"floorplan/internal/geom"
	"floorplan/internal/shape"
)

func TestPlacementByModuleSorted(t *testing.T) {
	p := &Placement{
		Envelope: shape.RImpl{W: 10, H: 10},
		Modules: []ModulePlacement{
			{Module: "zeta", Box: geom.RectWH(2, 2)},
			{Module: "alpha", Box: geom.RectWH(3, 3)},
			{Module: "mid", Box: geom.RectWH(1, 1)},
		},
	}
	sorted := p.ByModule()
	if sorted[0].Module != "alpha" || sorted[1].Module != "mid" || sorted[2].Module != "zeta" {
		t.Fatalf("ByModule order: %v %v %v", sorted[0].Module, sorted[1].Module, sorted[2].Module)
	}
	// The original slice is untouched.
	if p.Modules[0].Module != "zeta" {
		t.Fatal("ByModule mutated the placement")
	}
}

func TestVerifyCatchesBadPlacements(t *testing.T) {
	lib := Library{"m": shape.RList{{W: 2, H: 2}}}
	env := shape.RImpl{W: 4, H: 2}
	cases := []struct {
		name string
		p    Placement
	}{
		{"outside envelope", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.Rect{MinX: 3, MinY: 0, MaxX: 6, MaxY: 2}, Impl: shape.RImpl{W: 2, H: 2}},
		}}},
		{"box too small", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.RectWH(1, 2), Impl: shape.RImpl{W: 2, H: 2}},
		}}},
		{"impl not in library", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.RectWH(4, 2), Impl: shape.RImpl{W: 3, H: 2}},
		}}},
		{"unknown module", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "ghost", Box: geom.RectWH(4, 2), Impl: shape.RImpl{W: 2, H: 2}},
		}}},
		{"overlap", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.RectWH(3, 2), Impl: shape.RImpl{W: 2, H: 2}},
			{Module: "m", Box: geom.Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 2}, Impl: shape.RImpl{W: 2, H: 2}},
		}}},
		{"not a tiling", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.RectWH(2, 2), Impl: shape.RImpl{W: 2, H: 2}},
		}}},
		{"degenerate box", Placement{Envelope: env, Modules: []ModulePlacement{
			{Module: "m", Box: geom.RectWH(0, 2), Impl: shape.RImpl{W: 2, H: 2}},
		}}},
	}
	for _, tc := range cases {
		if err := tc.p.Verify(lib); err == nil {
			t.Errorf("%s: verification passed", tc.name)
		}
	}
	// nil library skips the membership check but keeps geometry checks.
	good := Placement{Envelope: shape.RImpl{W: 2, H: 2}, Modules: []ModulePlacement{
		{Module: "anything", Box: geom.RectWH(2, 2), Impl: shape.RImpl{W: 2, H: 2}},
	}}
	if err := good.Verify(nil); err != nil {
		t.Errorf("nil-library verify failed: %v", err)
	}
}
