package optimizer

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
)

func TestNodeStatsCoverTree(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	tree, err := gen.RandomTree(rng, 12, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(5))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	res := mustRun(t, lib, Options{}, tree)
	bin, err := plan.Restructure(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeStats) != bin.Count() {
		t.Fatalf("%d node stats for %d nodes", len(res.NodeStats), bin.Count())
	}
	var total int64
	lCount := 0
	for i, ns := range res.NodeStats {
		if i > 0 && ns.ID <= res.NodeStats[i-1].ID {
			t.Fatal("node stats not sorted by ID")
		}
		if ns.Stored > ns.Generated {
			t.Fatalf("node %d stored %d > generated %d", ns.ID, ns.Stored, ns.Generated)
		}
		if ns.Stored < 1 {
			t.Fatalf("node %d stored nothing", ns.ID)
		}
		if ns.LShaped && ns.Lists < 1 {
			t.Fatalf("L node %d has no lists", ns.ID)
		}
		if !ns.LShaped && ns.Lists != 1 {
			t.Fatalf("rect node %d has %d lists", ns.ID, ns.Lists)
		}
		if ns.LShaped {
			lCount++
		}
		total += int64(ns.Stored)
	}
	if lCount != bin.CountL() {
		t.Fatalf("%d L nodes in stats, tree has %d", lCount, bin.CountL())
	}
	// Without selection, the sum of stored counts is the final footprint.
	if total != res.Stats.FinalStored {
		t.Fatalf("node stats sum %d != FinalStored %d", total, res.Stats.FinalStored)
	}
}

func TestNodeStatsReflectSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	tree := gen.FP1()
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(8))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	res := mustRun(t, lib, Options{Policy: selection.Policy{K1: 4, K2: 20}}, tree)
	reducedSomewhere := false
	for _, ns := range res.NodeStats {
		if ns.Stored < ns.Generated {
			reducedSomewhere = true
		}
		if !ns.LShaped && ns.Stored > 4 && ns.Kind != plan.BinLeaf {
			t.Fatalf("rect node %d stored %d > K1", ns.ID, ns.Stored)
		}
	}
	if !reducedSomewhere {
		t.Fatal("selection left no trace in node stats")
	}
}
