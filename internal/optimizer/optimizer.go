// Package optimizer implements the floorplan area optimization algorithm of
// Wang–Wong DAC'90 ([9] in the paper), the host into which the paper's
// R_Selection and L_Selection are incorporated.
//
// The optimizer takes a floorplan tree and a module library, restructures
// the tree into the binary tree T' of rectangular and L-shaped blocks
// (package plan), and computes every block's non-redundant implementation
// list bottom-up (package combine). After each internal node's list is
// generated, the configured selection policy (package selection) may reduce
// it; this is exactly the paper's memory-reduction scheme. The minimum-area
// implementation at the root is then traced back to a concrete placement of
// every module, which is verified geometrically.
package optimizer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"floorplan/internal/combine"
	"floorplan/internal/memtrack"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

// Library maps module names to their non-redundant implementation lists.
type Library map[string]shape.RList

// Validate checks that every list is non-empty and canonical.
func (lib Library) Validate() error {
	for name, l := range lib {
		if len(l) == 0 {
			return fmt.Errorf("optimizer: module %q has no implementations", name)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("optimizer: module %q: %w", name, err)
		}
	}
	return nil
}

// Options configures a run.
type Options struct {
	// Policy is the selection policy (zero value: plain [9], no selection).
	Policy selection.Policy
	// MemoryLimit caps the number of stored implementations, reproducing
	// the paper's out-of-memory failures. 0 = unlimited.
	MemoryLimit int64
	// SkipPlacement skips traceback and verification; evaluation stats and
	// the optimal area are still produced. Used by benchmarks that only
	// measure the bottom-up phase.
	SkipPlacement bool
}

// ErrMemoryLimit wraps memtrack.ErrLimit so callers can match the paper's
// "failed to run" outcome with errors.Is.
var ErrMemoryLimit = memtrack.ErrLimit

// Stats records the cost metrics the paper reports.
type Stats struct {
	// PeakStored is the paper's M: the maximum number of implementations
	// simultaneously stored.
	PeakStored int64
	// FinalStored is the implementation count at the end of the run.
	FinalStored int64
	// Generated is the total number of non-redundant implementations
	// produced across all nodes, before selection discarded any.
	Generated int64
	// Nodes is the number of BinNodes evaluated.
	Nodes int
	// LNodes is the number of L-shaped BinNodes evaluated.
	LNodes int
	// RSelections / LSelections count selection invocations.
	RSelections int
	LSelections int
	// MaxRList and MaxLSet are the largest rectangular list and L-shaped
	// set stored (after selection), for calibrating K1/K2.
	MaxRList int
	MaxLSet  int
	// Elapsed is the wall time of the bottom-up evaluation (the phase whose
	// CPU seconds the paper reports), excluding traceback.
	Elapsed time.Duration
}

// Result is a successful optimization outcome.
type Result struct {
	// Best is the minimum-area implementation of the entire floorplan.
	Best shape.RImpl
	// RootList is the root block's retained implementation list.
	RootList shape.RList
	// Placement realizes Best; nil when Options.SkipPlacement is set.
	Placement *Placement
	Stats     Stats
	// NodeStats describes every evaluated block in preorder (ID order):
	// where the implementations live and what selection did to them.
	NodeStats []NodeStat
}

// NodeStat records one block's evaluation outcome.
type NodeStat struct {
	// ID is the BinNode's preorder index.
	ID int
	// Kind is the combine operation that formed the block.
	Kind plan.BinKind
	// LShaped marks L-shaped blocks.
	LShaped bool
	// Generated is the non-redundant implementation count before
	// selection.
	Generated int
	// Stored is the count kept after selection (== Generated when
	// selection did not run).
	Stored int
	// Lists is the number of irreducible L-lists (1 for rectangular
	// blocks).
	Lists int
}

// Optimizer runs floorplan area optimization over one module library.
type Optimizer struct {
	lib  Library
	opts Options
}

// New validates the library and policy and returns an Optimizer.
func New(lib Library, opts Options) (*Optimizer, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Policy.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryLimit < 0 {
		return nil, fmt.Errorf("optimizer: negative memory limit %d", opts.MemoryLimit)
	}
	return &Optimizer{lib: lib, opts: opts}, nil
}

// nodeEval stores a node's retained implementation list; exactly one of
// rl/ls is meaningful depending on node kind. Lists are retained until the
// end of the run because traceback needs them — their count is what the
// memory tracker measures.
type nodeEval struct {
	rl shape.RList
	ls shape.LSet
}

type runState struct {
	o     *Optimizer
	mem   *memtrack.Tracker
	evals map[int]*nodeEval
	stats Stats
	nodes []NodeStat
}

// Run optimizes the floorplan tree. On memory exhaustion it returns an
// error matching ErrMemoryLimit together with a partial Result carrying the
// stats gathered so far (mirroring the paper's "> M" rows).
func (o *Optimizer) Run(tree *plan.Node) (*Result, error) {
	bin, err := plan.Restructure(tree)
	if err != nil {
		return nil, err
	}
	return o.RunBinary(bin)
}

// RunBinary optimizes an already-restructured binary tree.
func (o *Optimizer) RunBinary(bin *plan.BinNode) (*Result, error) {
	if err := bin.Validate(); err != nil {
		return nil, err
	}
	if bin.IsL() {
		return nil, fmt.Errorf("optimizer: root block is L-shaped; the floorplan root must be rectangular")
	}
	for _, m := range bin.Modules() {
		if _, ok := o.lib[m]; !ok {
			return nil, fmt.Errorf("optimizer: module %q not in library", m)
		}
	}
	st := &runState{
		o:     o,
		mem:   memtrack.NewTracker(o.opts.MemoryLimit),
		evals: make(map[int]*nodeEval),
	}
	start := time.Now()
	rootEval, evalErr := st.eval(bin)
	st.stats.Elapsed = time.Since(start)
	st.stats.PeakStored = st.mem.Peak()
	st.stats.FinalStored = st.mem.Current()
	if evalErr != nil {
		return &Result{Stats: st.stats}, evalErr
	}
	if len(rootEval.rl) == 0 {
		return &Result{Stats: st.stats}, fmt.Errorf("optimizer: root has no implementations")
	}
	best, _ := rootEval.rl.Best()
	sort.Slice(st.nodes, func(i, j int) bool { return st.nodes[i].ID < st.nodes[j].ID })
	res := &Result{
		Best:      best,
		RootList:  rootEval.rl.Clone(),
		Stats:     st.stats,
		NodeStats: st.nodes,
	}
	if !o.opts.SkipPlacement {
		placement, err := st.trace(bin, best)
		if err != nil {
			return res, err
		}
		if err := placement.Verify(o.lib); err != nil {
			return res, fmt.Errorf("optimizer: traceback produced an illegal placement: %w", err)
		}
		res.Placement = placement
	}
	return res, nil
}

// eval computes a node's retained implementation list bottom-up.
func (st *runState) eval(b *plan.BinNode) (*nodeEval, error) {
	st.stats.Nodes++
	if b.Kind == plan.BinLeaf {
		list := st.o.lib[b.Module]
		return st.finishR(b, list, false)
	}
	left, err := st.eval(b.Left)
	if err != nil {
		return nil, err
	}
	right, err := st.eval(b.Right)
	if err != nil {
		return nil, err
	}
	// budget lets the combination abort as soon as a node's non-redundant
	// set alone exceeds the remaining memory allowance, instead of fully
	// generating a doomed node first.
	budget := st.remainingBudget()
	switch b.Kind {
	case plan.BinVCut:
		return st.finishR(b, combine.VCut(left.rl, right.rl), false)
	case plan.BinHCut:
		return st.finishR(b, combine.HCut(left.rl, right.rl), false)
	case plan.BinLStack:
		set, truncated := combine.LStack(left.rl, right.rl, budget)
		return st.finishL(b, set, truncated)
	case plan.BinLNotch:
		set, truncated := combine.LNotch(left.ls, right.rl, budget)
		return st.finishL(b, set, truncated)
	case plan.BinLBottom:
		set, truncated := combine.LBottom(left.ls, right.rl, budget)
		return st.finishL(b, set, truncated)
	case plan.BinClose:
		list, truncated := combine.Close(left.ls, right.rl, budget)
		return st.finishR(b, list, truncated)
	default:
		return nil, fmt.Errorf("optimizer: unexpected node kind %v", b.Kind)
	}
}

// remainingBudget returns how many more implementations may be stored
// before the memory limit trips, or 0 (unlimited) when no limit is set.
func (st *runState) remainingBudget() int {
	limit := st.o.opts.MemoryLimit
	if limit <= 0 {
		return 0
	}
	rem := limit - st.mem.Current()
	if rem < 1 {
		rem = 1
	}
	return int(rem)
}

// finishR accounts for, optionally reduces, and stores a rectangular
// block's list. truncated marks a list whose generation aborted early on
// the memory budget; accounting still happens so the error carries the
// count, but the run must fail.
func (st *runState) finishR(b *plan.BinNode, list shape.RList, truncated bool) (*nodeEval, error) {
	st.stats.Generated += int64(len(list))
	if err := st.mem.Add(int64(len(list))); err != nil {
		return nil, fmt.Errorf("optimizer: node %d (%v): %w", b.ID, b.Kind, err)
	}
	if truncated {
		return nil, fmt.Errorf("optimizer: node %d (%v): generation aborted: %w: %d stored",
			b.ID, b.Kind, memtrack.ErrLimit, st.mem.Current())
	}
	generated := len(list)
	if st.o.opts.Policy.WantR(len(list)) {
		reduced, err := st.o.opts.Policy.ReduceR(list)
		if err != nil {
			return nil, err
		}
		st.stats.RSelections++
		if err := st.mem.Release(int64(len(list) - len(reduced))); err != nil {
			return nil, err
		}
		list = reduced
	}
	st.nodes = append(st.nodes, NodeStat{
		ID: b.ID, Kind: b.Kind, Generated: generated, Stored: len(list), Lists: 1,
	})
	if len(list) > st.stats.MaxRList {
		st.stats.MaxRList = len(list)
	}
	ev := &nodeEval{rl: list}
	st.evals[b.ID] = ev
	return ev, nil
}

// finishL accounts for, optionally reduces, and stores an L-shaped block's
// set of L-lists.
func (st *runState) finishL(b *plan.BinNode, set shape.LSet, truncated bool) (*nodeEval, error) {
	st.stats.LNodes++
	size := set.Size()
	st.stats.Generated += int64(size)
	if err := st.mem.Add(int64(size)); err != nil {
		return nil, fmt.Errorf("optimizer: node %d (%v): %w", b.ID, b.Kind, err)
	}
	if truncated {
		return nil, fmt.Errorf("optimizer: node %d (%v): generation aborted: %w: %d stored",
			b.ID, b.Kind, memtrack.ErrLimit, st.mem.Current())
	}
	generated := size
	if st.o.opts.Policy.WantL(size) {
		reduced, err := st.o.opts.Policy.ReduceLSet(set)
		if err != nil {
			return nil, err
		}
		st.stats.LSelections++
		if err := st.mem.Release(int64(size - reduced.Size())); err != nil {
			return nil, err
		}
		set = reduced
	}
	st.nodes = append(st.nodes, NodeStat{
		ID: b.ID, Kind: b.Kind, LShaped: true,
		Generated: generated, Stored: set.Size(), Lists: len(set.Lists),
	})
	if set.Size() > st.stats.MaxLSet {
		st.stats.MaxLSet = set.Size()
	}
	ev := &nodeEval{ls: set}
	st.evals[b.ID] = ev
	return ev, nil
}

// IsMemoryLimit reports whether err is a memory-limit abort.
func IsMemoryLimit(err error) bool { return errors.Is(err, memtrack.ErrLimit) }
