// Package optimizer implements the floorplan area optimization algorithm of
// Wang–Wong DAC'90 ([9] in the paper), the host into which the paper's
// R_Selection and L_Selection are incorporated.
//
// The optimizer takes a floorplan tree and a module library, restructures
// the tree into the binary tree T' of rectangular and L-shaped blocks
// (package plan), and computes every block's non-redundant implementation
// list bottom-up (package combine). After each internal node's list is
// generated, the configured selection policy (package selection) may reduce
// it; this is exactly the paper's memory-reduction scheme. The minimum-area
// implementation at the root is then traced back to a concrete placement of
// every module, which is verified geometrically.
package optimizer

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"floorplan/internal/arena"
	"floorplan/internal/combine"
	"floorplan/internal/cspp"
	"floorplan/internal/memtrack"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/substore"
	"floorplan/internal/telemetry"
)

// Library maps module names to their non-redundant implementation lists.
type Library map[string]shape.RList

// Validate checks that every list is non-empty and canonical.
func (lib Library) Validate() error {
	for name, l := range lib {
		if len(l) == 0 {
			return fmt.Errorf("optimizer: module %q has no implementations", name)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("optimizer: module %q: %w", name, err)
		}
	}
	return nil
}

// Options configures a run.
type Options struct {
	// Policy is the selection policy (zero value: plain [9], no selection).
	Policy selection.Policy
	// MemoryLimit caps the number of stored implementations, reproducing
	// the paper's out-of-memory failures. 0 = unlimited.
	MemoryLimit int64
	// SkipPlacement skips traceback and verification; evaluation stats and
	// the optimal area are still produced. Used by benchmarks that only
	// measure the bottom-up phase.
	SkipPlacement bool
	// Workers bounds the number of binary-tree nodes evaluated
	// concurrently. 0 defaults to runtime.GOMAXPROCS(0); 1 runs the exact
	// sequential evaluation order of the original implementation. For any
	// value, a successful run's Best, RootList, Stats (except Elapsed),
	// NodeStats and Placement are bit-identical: per-node results do not
	// depend on evaluation order and the final merge replays the
	// sequential memory-accounting order. Memory-limited runs may abort at
	// a different node under different worker counts (admission order is
	// scheduling-dependent), but they never admit past the limit and
	// always fail with an error matching ErrMemoryLimit.
	Workers int
	// Telemetry, when non-nil, receives the run's metrics, per-node eval
	// spans and stage spans. The deterministic report section is identical
	// for any worker count (the per-node records fold in canonical
	// postorder, like Stats); nil disables collection at the cost of one
	// branch per instrumentation site.
	Telemetry *telemetry.Collector
	// DisableArena turns off the per-worker slab arenas that back the
	// transient candidate buffers of the combine operations, falling back
	// to plain heap allocation. Results are bit-identical either way (the
	// arenas only change where scratch memory lives, never what is
	// computed — pinned by tests); the knob exists for debugging and for
	// those equality tests.
	DisableArena bool
	// Substore, when non-nil, memoizes per-subtree evaluation results
	// across runs: nodes whose content address resolves are spliced from
	// the store instead of evaluated, and freshly evaluated nodes fill it.
	// Results are bit-identical with the store nil, cold or warm, at any
	// worker count (pinned by tests). Memory-limited runs never consult
	// the store — when MemoryLimit > 0 this field is ignored.
	Substore *substore.Store
}

// workers resolves the effective worker count for a schedule of n nodes.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ErrMemoryLimit wraps memtrack.ErrLimit so callers can match the paper's
// "failed to run" outcome with errors.Is.
var ErrMemoryLimit = memtrack.ErrLimit

// Stats records the cost metrics the paper reports.
type Stats struct {
	// PeakStored is the paper's M: the maximum number of implementations
	// simultaneously stored.
	PeakStored int64
	// FinalStored is the implementation count at the end of the run.
	FinalStored int64
	// Generated is the total number of non-redundant implementations
	// produced across all nodes, before selection discarded any.
	Generated int64
	// Nodes is the number of BinNodes evaluated.
	Nodes int
	// LNodes is the number of L-shaped BinNodes evaluated.
	LNodes int
	// RSelections / LSelections count selection invocations.
	RSelections int
	LSelections int
	// MaxRList and MaxLSet are the largest rectangular list and L-shaped
	// set stored (after selection), for calibrating K1/K2.
	MaxRList int
	MaxLSet  int
	// Elapsed is the wall time of the bottom-up evaluation (the phase whose
	// CPU seconds the paper reports), excluding traceback.
	Elapsed time.Duration
}

// Result is a successful optimization outcome.
type Result struct {
	// Best is the minimum-area implementation of the entire floorplan.
	Best shape.RImpl
	// RootList is the root block's retained implementation list.
	RootList shape.RList
	// Placement realizes Best; nil when Options.SkipPlacement is set.
	Placement *Placement
	Stats     Stats
	// NodeStats describes every evaluated block in preorder (ID order):
	// where the implementations live and what selection did to them.
	NodeStats []NodeStat
	// Reuse reports how much of the run the subtree store absorbed; all
	// zeros when no store was configured.
	Reuse Reuse
}

// Reuse is a run's subtree-store scorecard. SplicedNodes + ComputedNodes
// equals Stats.Nodes on a successful run.
type Reuse struct {
	// ComputedNodes is the number of nodes actually evaluated.
	ComputedNodes int
	// SplicedNodes is the number of nodes resolved from the store.
	SplicedNodes int
	// StorePuts is the number of freshly evaluated records offered back.
	StorePuts int
}

// NodeStat records one block's evaluation outcome.
type NodeStat struct {
	// ID is the BinNode's preorder index.
	ID int
	// Kind is the combine operation that formed the block.
	Kind plan.BinKind
	// LShaped marks L-shaped blocks.
	LShaped bool
	// Generated is the non-redundant implementation count before
	// selection.
	Generated int
	// Stored is the count kept after selection (== Generated when
	// selection did not run).
	Stored int
	// Lists is the number of irreducible L-lists (1 for rectangular
	// blocks).
	Lists int
}

// Optimizer runs floorplan area optimization over one module library.
type Optimizer struct {
	lib  Library
	opts Options
}

// New validates the library and policy and returns an Optimizer.
func New(lib Library, opts Options) (*Optimizer, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Policy.Validate(); err != nil {
		return nil, err
	}
	if opts.MemoryLimit < 0 {
		return nil, fmt.Errorf("optimizer: negative memory limit %d", opts.MemoryLimit)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("optimizer: negative worker count %d", opts.Workers)
	}
	return &Optimizer{lib: lib, opts: opts}, nil
}

// nodeEval stores a node's retained implementation list; exactly one of
// rl/ls is meaningful depending on node kind. Lists are retained until the
// end of the run because traceback needs them — their count is what the
// memory tracker measures.
type nodeEval struct {
	rl shape.RList
	ls shape.LSet
}

// nodeOutcome is the order-independent record one node evaluation leaves
// behind. Outcomes are produced by whichever worker evaluates the node and
// merged into Stats/NodeStats afterwards in the canonical sequential order,
// which is what makes the run's statistics identical for any worker count.
type nodeOutcome struct {
	stat NodeStat
	// rsel/lsel count selection invocations at this node (0 or 1).
	rsel, lsel int
	// failed marks a node whose evaluation aborted (memory limit or
	// selection error): its generated count still feeds the stats, but it
	// contributes no NodeStat row and no stored list.
	failed bool

	// Telemetry fields, populated only when a collector is attached.
	// selErr is the selection error admitted at this node; selN/selK the
	// CSPP instance dimensions when selection ran; candidates the number
	// of implementation pairs the combine operation considered. start,
	// dur and worker place the evaluation on the trace timeline.
	selErr     int64
	selN, selK int
	candidates int64
	start, dur time.Duration
	worker     int
}

type runState struct {
	o   *Optimizer
	mem *memtrack.Tracker
	// tel is nil when telemetry is disabled; every use is one branch.
	tel *telemetry.Collector
	// evals and outcomes are indexed by BinNode.ID (preorder, 0..n-1).
	// Each slot is written exactly once, by the worker that evaluates the
	// node, before any reader can observe it (the scheduler's dependency
	// hand-off orders the accesses).
	evals    []*nodeEval
	outcomes []*nodeOutcome
	// allocs are the per-worker combine allocators, indexed by worker.
	// Each worker owns its arenas exclusively, so no synchronization is
	// needed; combine results never alias arena storage, which lets the
	// worker Reset its arenas after every node (slabs stay warm for the
	// next node on that worker). Zero-valued entries (heap fallback) when
	// Options.DisableArena is set.
	allocs []combine.Alloc
	// arenaLedger accounts slab bytes across all workers' arenas; its Peak
	// feeds the arena.slab_bytes_peak watermark. Nil when arenas are off.
	arenaLedger *memtrack.Tracker
	// sub is the subtree result store consulted and filled by this run;
	// nil when memoization is off. digests holds every node's content
	// address, indexed by BinNode.ID, computed once up front.
	sub     *substore.Store
	digests []plan.Digest
}

// arenaSlabImpls is the slab capacity, in implementations, of each combine
// arena. Deliberately modest (4Ki LImpls = 128KiB): a fresh slab is zeroed
// by the runtime, so oversizing it taxes short runs that never fill it.
// Buffers larger than one slab get exact-size dedicated slabs
// transparently — no dearer than the heap allocation they replace — and
// are reused by later nodes on the worker after Reset.
const arenaSlabImpls = 1 << 12

// newAllocs builds one combine.Alloc per worker, all charging the shared
// byte ledger.
func newAllocs(workers int, ledger *memtrack.Tracker) []combine.Alloc {
	allocs := make([]combine.Alloc, workers)
	for i := range allocs {
		allocs[i] = combine.Alloc{
			L: arena.New[shape.LImpl](ledger, arenaSlabImpls),
			R: arena.New[shape.RImpl](ledger, arenaSlabImpls),
		}
	}
	return allocs
}

// freeArenas returns every worker's slab bytes to the ledger. The arenas
// stay usable (a later Alloc re-charges), but runs never reuse a runState.
func (st *runState) freeArenas() {
	for i := range st.allocs {
		if st.allocs[i].L != nil {
			st.allocs[i].L.Free()
		}
		if st.allocs[i].R != nil {
			st.allocs[i].R.Free()
		}
	}
}

// Run optimizes the floorplan tree. On memory exhaustion it returns an
// error matching ErrMemoryLimit together with a partial Result carrying the
// stats gathered so far (mirroring the paper's "> M" rows).
func (o *Optimizer) Run(tree *plan.Node) (*Result, error) {
	tel := o.opts.Telemetry
	restructureStart := tel.Now()
	bin, err := plan.Restructure(tree)
	if err != nil {
		return nil, err
	}
	tel.RecordSpan(telemetry.Span{
		Name: "restructure", Cat: telemetry.CatStage,
		Start: restructureStart, Dur: tel.Now() - restructureStart,
	})
	return o.RunBinary(bin)
}

// RunBinary optimizes an already-restructured binary tree. Trees built by
// plan.Restructure carry preorder IDs; a hand-built tree whose IDs are not
// the preorder permutation 0..n-1 is renumbered in place first, because the
// evaluator's per-node tables are indexed by ID.
func (o *Optimizer) RunBinary(bin *plan.BinNode) (*Result, error) {
	if err := bin.Validate(); err != nil {
		return nil, err
	}
	if bin.IsL() {
		return nil, fmt.Errorf("optimizer: root block is L-shaped; the floorplan root must be rectangular")
	}
	for _, m := range bin.Modules() {
		if _, ok := o.lib[m]; !ok {
			return nil, fmt.Errorf("optimizer: module %q not in library", m)
		}
	}
	if !bin.HasPreorderIDs() {
		bin.AssignIDs()
	}
	schedule := flattenPostorder(bin)
	st := &runState{
		o:        o,
		mem:      memtrack.NewTracker(o.opts.MemoryLimit),
		tel:      o.opts.Telemetry,
		evals:    make([]*nodeEval, len(schedule)),
		outcomes: make([]*nodeOutcome, len(schedule)),
	}
	// Subtree memoization: resolve what the store already knows and
	// schedule only the remainder. Memory-limited runs never consult the
	// store — an abort's partial accounting depends on which nodes really
	// admitted implementations, which splicing would change.
	work := schedule
	if o.opts.Substore != nil && o.opts.MemoryLimit <= 0 {
		st.sub = o.opts.Substore
		st.digests = plan.SubtreeDigests(bin, o.substoreContext(), o.planLibrary())
		work = st.resolveFromStore(schedule)
	}
	workers := o.opts.workers(len(work))
	if o.opts.DisableArena {
		st.allocs = make([]combine.Alloc, workers)
	} else {
		st.arenaLedger = memtrack.NewTracker(0)
		st.allocs = newAllocs(workers, st.arenaLedger)
	}
	var poolSolves0, poolHits0, poolMisses0 int64
	var fusedR0, fusedL0, tableL0 int64
	evalSpanStart := st.tel.Now()
	if st.tel != nil {
		poolSolves0, poolHits0, poolMisses0 = cspp.PoolCounters()
		fusedR0, fusedL0, tableL0 = selection.FusedCounters()
	}
	start := time.Now()
	var evalErr error
	if len(work) > 0 {
		if workers <= 1 {
			evalErr = st.runSequential(work)
		} else {
			evalErr = st.runParallel(work, workers)
		}
	}
	var puts int
	if evalErr == nil && st.sub != nil {
		puts = st.fillStore(work)
	}
	stats, nodeStats := st.mergeOutcomes(schedule)
	stats.Elapsed = time.Since(start)
	st.freeArenas()
	if evalErr != nil {
		// A failed run reports the tracker's view: the peak includes the
		// would-be count of the rejected admission, the paper's "> M".
		stats.PeakStored = st.mem.Peak()
		stats.FinalStored = st.mem.Current()
	}
	if st.tel != nil {
		st.tel.RecordSpan(telemetry.Span{
			Name: "evaluate", Cat: telemetry.CatStage,
			Start: evalSpanStart, Dur: st.tel.Now() - evalSpanStart,
			Args: map[string]int64{"workers": int64(workers)},
		})
		solves, hits, misses := cspp.PoolCounters()
		st.tel.Add(telemetry.CtrCSPPSolves, solves-poolSolves0)
		st.tel.Add(telemetry.CtrCSPPPoolHits, hits-poolHits0)
		st.tel.Add(telemetry.CtrCSPPPoolMiss, misses-poolMisses0)
		fusedR, fusedL, tableL := selection.FusedCounters()
		st.tel.Add(telemetry.CtrFusedRSelect, fusedR-fusedR0)
		st.tel.Add(telemetry.CtrFusedLSelect, fusedL-fusedL0)
		st.tel.Add(telemetry.CtrTableLSelect, tableL-tableL0)
		if st.arenaLedger != nil {
			st.tel.Observe(telemetry.MaxArenaBytes, st.arenaLedger.Peak())
		}
		st.emitTelemetry(schedule, stats)
	}
	if evalErr != nil {
		return &Result{Stats: stats}, evalErr
	}
	rootEval := st.evals[bin.ID]
	if rootEval == nil || len(rootEval.rl) == 0 {
		return &Result{Stats: stats}, fmt.Errorf("optimizer: root has no implementations")
	}
	best, _ := rootEval.rl.Best()
	sort.Slice(nodeStats, func(i, j int) bool { return nodeStats[i].ID < nodeStats[j].ID })
	res := &Result{
		Best:      best,
		RootList:  rootEval.rl.Clone(),
		Stats:     stats,
		NodeStats: nodeStats,
	}
	if st.sub != nil {
		res.Reuse = Reuse{
			ComputedNodes: len(work),
			SplicedNodes:  len(schedule) - len(work),
			StorePuts:     puts,
		}
	}
	if !o.opts.SkipPlacement {
		traceStart := st.tel.Now()
		placement, err := st.trace(bin, best)
		if err != nil {
			return res, err
		}
		if err := placement.Verify(o.lib); err != nil {
			return res, fmt.Errorf("optimizer: traceback produced an illegal placement: %w", err)
		}
		res.Placement = placement
		st.tel.RecordSpan(telemetry.Span{
			Name: "traceback", Cat: telemetry.CatStage,
			Start: traceStart, Dur: st.tel.Now() - traceStart,
		})
	}
	return res, nil
}

// flattenPostorder linearizes the binary tree into the canonical bottom-up
// evaluation order (left subtree, right subtree, node) — the exact order
// the original recursive evaluator visited nodes, and the order the stats
// merge replays for memory accounting.
func flattenPostorder(bin *plan.BinNode) []*plan.BinNode {
	out := make([]*plan.BinNode, 0, bin.Count())
	var walk func(*plan.BinNode)
	walk = func(b *plan.BinNode) {
		if b == nil {
			return
		}
		walk(b.Left)
		walk(b.Right)
		out = append(out, b)
	}
	walk(bin)
	return out
}

// runSequential evaluates the schedule on the calling goroutine, in exact
// postorder — byte-for-byte the original single-threaded behavior.
func (st *runState) runSequential(schedule []*plan.BinNode) error {
	for _, b := range schedule {
		if err := st.evalNode(b, 0); err != nil {
			return err
		}
	}
	return nil
}

// mergeOutcomes folds the per-node outcomes into run-wide statistics. It
// walks the canonical postorder schedule, so every derived quantity — in
// particular PeakStored, which replays the sequential Add/Release ledger —
// is identical no matter which worker evaluated which node, or in what
// real-time order. Nodes never evaluated (parallel abort drained them) are
// skipped; a failed node contributes its generated count only.
func (st *runState) mergeOutcomes(schedule []*plan.BinNode) (Stats, []NodeStat) {
	var stats Stats
	var nodeStats []NodeStat
	var cur, peak int64
	for _, b := range schedule {
		out := st.outcomes[b.ID]
		if out == nil {
			continue
		}
		stats.Nodes++
		if out.stat.LShaped {
			stats.LNodes++
		}
		stats.Generated += int64(out.stat.Generated)
		stats.RSelections += out.rsel
		stats.LSelections += out.lsel
		if out.failed {
			continue
		}
		if out.stat.LShaped {
			if out.stat.Stored > stats.MaxLSet {
				stats.MaxLSet = out.stat.Stored
			}
		} else if out.stat.Stored > stats.MaxRList {
			stats.MaxRList = out.stat.Stored
		}
		// Replay the sequential memory ledger: the node admits its full
		// generated set, peaks, then selection releases the discarded part.
		cur += int64(out.stat.Generated)
		if cur > peak {
			peak = cur
		}
		cur -= int64(out.stat.Generated - out.stat.Stored)
		nodeStats = append(nodeStats, out.stat)
	}
	stats.PeakStored = peak
	stats.FinalStored = cur
	return stats, nodeStats
}

// evalNode computes one node's retained implementation list. Its operands
// (st.evals of the children) must already be present; the schedulers
// guarantee that. Apart from the shared memory tracker — which is atomic —
// it touches only this node's slots, so any number of evalNode calls on
// distinct nodes may run concurrently. worker tags the outcome for trace
// attribution; with telemetry disabled the timing wrapper is a single
// branch.
func (st *runState) evalNode(b *plan.BinNode, worker int) error {
	if st.tel == nil {
		return st.evalNodeInner(b, worker)
	}
	start := st.tel.Now()
	err := st.evalNodeInner(b, worker)
	if out := st.outcomes[b.ID]; out != nil {
		out.start = start
		out.dur = st.tel.Now() - start
		out.worker = worker
	}
	return err
}

func (st *runState) evalNodeInner(b *plan.BinNode, worker int) error {
	out := &nodeOutcome{}
	st.outcomes[b.ID] = out
	if b.Kind == plan.BinLeaf {
		return st.finishR(b, out, st.o.lib[b.Module], false)
	}
	left := st.evals[b.Left.ID]
	right := st.evals[b.Right.ID]
	if st.tel != nil || st.sub != nil {
		// Candidate pairs the combine operation enumerates: |left|·|right|.
		// Computed for the store as well as for telemetry: stored records
		// must carry the exact count so a spliced node's telemetry
		// contribution matches the evaluation it replaced.
		var ln, rn int
		if b.Left.IsL() {
			ln = left.ls.Size()
		} else {
			ln = len(left.rl)
		}
		if b.Right.IsL() {
			rn = right.ls.Size()
		} else {
			rn = len(right.rl)
		}
		out.candidates = int64(ln) * int64(rn)
	}
	// budget lets the combination abort as soon as a node's non-redundant
	// set alone exceeds the remaining memory allowance, instead of fully
	// generating a doomed node first.
	budget, err := st.remainingBudget(b)
	if err != nil {
		out.stat = NodeStat{ID: b.ID, Kind: b.Kind, LShaped: b.IsL()}
		out.failed = true
		return err
	}
	// al is this worker's private allocator; combine results never alias
	// its arenas (see combine.Alloc), so resetting them after the node is
	// safe and keeps the slabs warm for the worker's next node.
	al := st.allocs[worker]
	switch b.Kind {
	case plan.BinVCut:
		err = st.finishR(b, out, combine.VCut(left.rl, right.rl), false)
	case plan.BinHCut:
		err = st.finishR(b, out, combine.HCut(left.rl, right.rl), false)
	case plan.BinLStack:
		set, truncated := combine.LStackA(al, left.rl, right.rl, budget)
		err = st.finishL(b, out, set, truncated)
	case plan.BinLNotch:
		set, truncated := combine.LNotchA(al, left.ls, right.rl, budget)
		err = st.finishL(b, out, set, truncated)
	case plan.BinLBottom:
		set, truncated := combine.LBottomA(al, left.ls, right.rl, budget)
		err = st.finishL(b, out, set, truncated)
	case plan.BinClose:
		list, truncated := combine.CloseA(al, left.ls, right.rl, budget)
		err = st.finishR(b, out, list, truncated)
	default:
		out.failed = true
		return fmt.Errorf("optimizer: unexpected node kind %v", b.Kind)
	}
	if al.L != nil {
		al.L.Reset()
	}
	if al.R != nil {
		al.R.Reset()
	}
	return err
}

// remainingBudget returns how many more implementations may be stored
// before the memory limit trips, or 0 (unlimited) when no limit is set.
// When the budget is already exhausted it fails immediately: every
// combination stores at least one implementation, so generating the node
// would only burn CPU before the inevitable limit error. The probing Add
// records the would-be count so the failure reports "> limit" like every
// other abort.
func (st *runState) remainingBudget(b *plan.BinNode) (int, error) {
	limit := st.o.opts.MemoryLimit
	if limit <= 0 {
		return 0, nil
	}
	rem := limit - st.mem.Current()
	if rem >= 1 {
		return int(rem), nil
	}
	if err := st.mem.Add(1); err != nil {
		return 0, fmt.Errorf("optimizer: node %d (%v): %w", b.ID, b.Kind, err)
	}
	// A concurrent Release freed room between the two tracker reads; hand
	// the probed unit back and continue with the minimal budget.
	if err := st.mem.Release(1); err != nil {
		return 0, err
	}
	return 1, nil
}

// finishR accounts for, optionally reduces, and stores a rectangular
// block's list. truncated marks a list whose generation aborted early on
// the memory budget; accounting still happens so the error carries the
// count, but the run must fail.
func (st *runState) finishR(b *plan.BinNode, out *nodeOutcome, list shape.RList, truncated bool) error {
	out.stat = NodeStat{ID: b.ID, Kind: b.Kind, Generated: len(list)}
	if err := st.mem.Add(int64(len(list))); err != nil {
		out.failed = true
		return fmt.Errorf("optimizer: node %d (%v): %w", b.ID, b.Kind, err)
	}
	if truncated {
		out.failed = true
		return fmt.Errorf("optimizer: node %d (%v): generation aborted: %w: %d stored",
			b.ID, b.Kind, memtrack.ErrLimit, st.mem.Current())
	}
	if st.o.opts.Policy.WantR(len(list)) {
		reduced, admitted, err := st.o.opts.Policy.ReduceR(list)
		if err != nil {
			out.failed = true
			return err
		}
		out.rsel = 1
		out.selErr = admitted
		out.selN, out.selK = len(list), st.o.opts.Policy.K1
		if err := st.mem.Release(int64(len(list) - len(reduced))); err != nil {
			out.failed = true
			return err
		}
		list = reduced
	}
	out.stat.Stored = len(list)
	out.stat.Lists = 1
	st.evals[b.ID] = &nodeEval{rl: list}
	return nil
}

// finishL accounts for, optionally reduces, and stores an L-shaped block's
// set of L-lists.
func (st *runState) finishL(b *plan.BinNode, out *nodeOutcome, set shape.LSet, truncated bool) error {
	size := set.Size()
	out.stat = NodeStat{ID: b.ID, Kind: b.Kind, LShaped: true, Generated: size}
	if err := st.mem.Add(int64(size)); err != nil {
		out.failed = true
		return fmt.Errorf("optimizer: node %d (%v): %w", b.ID, b.Kind, err)
	}
	if truncated {
		out.failed = true
		return fmt.Errorf("optimizer: node %d (%v): generation aborted: %w: %d stored",
			b.ID, b.Kind, memtrack.ErrLimit, st.mem.Current())
	}
	if st.o.opts.Policy.WantL(size) {
		reduced, admitted, err := st.o.opts.Policy.ReduceLSet(set)
		if err != nil {
			out.failed = true
			return err
		}
		out.lsel = 1
		out.selErr = admitted
		out.selN, out.selK = size, st.o.opts.Policy.K2
		if err := st.mem.Release(int64(size - reduced.Size())); err != nil {
			out.failed = true
			return err
		}
		set = reduced
	}
	out.stat.Stored = set.Size()
	out.stat.Lists = len(set.Lists)
	st.evals[b.ID] = &nodeEval{ls: set}
	return nil
}

// emitTelemetry folds the per-node records into the run's collector,
// walking the canonical postorder schedule exactly like mergeOutcomes —
// every node's contribution lands in the same order no matter which
// worker produced it, so the deterministic report section is bit-identical
// across worker counts. Wall-clock data (eval spans, per-worker busy time,
// memtrack churn) goes to the runtime section, which legitimately varies.
func (st *runState) emitTelemetry(schedule []*plan.BinNode, stats Stats) {
	tel := st.tel
	for _, b := range schedule {
		out := st.outcomes[b.ID]
		if out == nil {
			continue
		}
		tel.Record(telemetry.HistListBefore, int64(out.stat.Generated))
		tel.Add(telemetry.CtrCombineCandidates, out.candidates)
		if out.rsel > 0 {
			tel.Add(telemetry.CtrRSelectionError, out.selErr)
		}
		if out.lsel > 0 {
			tel.Add(telemetry.CtrLSelectionError, out.selErr)
		}
		if out.rsel > 0 || out.lsel > 0 {
			tel.Observe(telemetry.MaxCSPPN, int64(out.selN))
			tel.Observe(telemetry.MaxCSPPK, int64(out.selK))
		}
		if !out.failed {
			tel.Record(telemetry.HistListAfter, int64(out.stat.Stored))
			tel.Add(telemetry.CtrStored, int64(out.stat.Stored))
		}
		if out.dur > 0 {
			tel.Record(telemetry.HistNodeEvalNs, out.dur.Nanoseconds())
			tel.RecordSpan(telemetry.Span{
				Name:  fmt.Sprintf("n%d %v", b.ID, b.Kind),
				Cat:   "eval",
				Track: out.worker,
				Start: out.start,
				Dur:   out.dur,
				Args: map[string]int64{
					"node":      int64(b.ID),
					"generated": int64(out.stat.Generated),
					"stored":    int64(out.stat.Stored),
				},
			})
		}
	}
	tel.Add(telemetry.CtrNodes, int64(stats.Nodes))
	tel.Add(telemetry.CtrLNodes, int64(stats.LNodes))
	tel.Add(telemetry.CtrGenerated, stats.Generated)
	tel.Add(telemetry.CtrRSelections, int64(stats.RSelections))
	tel.Add(telemetry.CtrLSelections, int64(stats.LSelections))
	tel.Observe(telemetry.MaxPeakStored, stats.PeakStored)
	tel.Observe(telemetry.MaxRList, int64(stats.MaxRList))
	tel.Observe(telemetry.MaxLSet, int64(stats.MaxLSet))
	tel.Add(telemetry.CtrMemDenials, st.mem.Denials())
	tel.Add(telemetry.CtrMemCASRetries, st.mem.CASRetries())
}

// IsMemoryLimit reports whether err is a memory-limit abort.
func IsMemoryLimit(err error) bool { return errors.Is(err, memtrack.ErrLimit) }
