package optimizer

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/oracle"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

// TestMatchesIndependentOracle cross-validates the whole bottom-up pipeline
// (restructuring, the L-shaped combine steps, dominance pruning, traceback)
// against internal/oracle, which evaluates the pinwheel geometry with
// independently derived closed-form width/height programs and brute-forces
// the implementation choice. Any divergence in the combine formulas, the
// pruning, or the restructuring would show up here.
func TestMatchesIndependentOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 60; trial++ {
		nMod := 2 + rng.Intn(7)
		tree, err := gen.RandomTree(rng, nMod, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		lib := make(Library)
		for _, l := range tree.Leaves() {
			p := gen.DefaultModuleParams(1 + rng.Intn(3))
			p.MinArea, p.MaxArea = 6, 80
			ml, err := gen.Module(rng, p)
			if err != nil {
				t.Fatal(err)
			}
			lib[l.Module] = ml
		}
		res := mustRun(t, lib, Options{}, tree)
		rawLib := make(map[string]shape.RList, len(lib))
		for k, v := range lib {
			rawLib[k] = v
		}
		want, assign, err := oracle.BruteMin(tree, rawLib)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Area() != want {
			t.Fatalf("trial %d: optimizer %d != oracle %d (assignment %v)\ntree: %d modules",
				trial, res.Best.Area(), want, assign, nMod)
		}
	}
}

// TestSelectionLowerBoundedByOracle: with selection enabled the area can
// only move up from the oracle optimum, never below it.
func TestSelectionLowerBoundedByOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 20; trial++ {
		tree, err := gen.RandomTree(rng, 2+rng.Intn(6), 0.8)
		if err != nil {
			t.Fatal(err)
		}
		lib := make(Library)
		rawLib := make(map[string]shape.RList)
		for _, l := range tree.Leaves() {
			p := gen.DefaultModuleParams(3)
			p.MinArea, p.MaxArea = 6, 80
			ml, err := gen.Module(rng, p)
			if err != nil {
				t.Fatal(err)
			}
			lib[l.Module] = ml
			rawLib[l.Module] = ml
		}
		want, _, err := oracle.BruteMin(tree, rawLib)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, lib, Options{Policy: selection.Policy{K1: 2, K2: 4}}, tree)
		if res.Best.Area() < want {
			t.Fatalf("selection run area %d below true optimum %d", res.Best.Area(), want)
		}
	}
}
