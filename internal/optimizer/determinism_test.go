package optimizer

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
)

// TestDeterministicRuns pins down that two identical runs produce identical
// results and statistics — the whole experiment harness depends on it.
func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tree, err := gen.RandomTree(rng, 15, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	rawLib, err := gen.Library(rng, tree, gen.DefaultModuleParams(6))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library(rawLib)
	opts := Options{Policy: selection.Policy{K1: 4, K2: 40, S: 30}}
	first := mustRun(t, lib, opts, tree)
	for trial := 0; trial < 3; trial++ {
		again := mustRun(t, lib, opts, tree)
		if again.Best != first.Best {
			t.Fatalf("trial %d: Best %v != %v", trial, again.Best, first.Best)
		}
		if again.Stats.PeakStored != first.Stats.PeakStored ||
			again.Stats.Generated != first.Stats.Generated ||
			again.Stats.RSelections != first.Stats.RSelections ||
			again.Stats.LSelections != first.Stats.LSelections {
			t.Fatalf("trial %d: stats diverged: %+v vs %+v", trial, again.Stats, first.Stats)
		}
		if !again.RootList.Equal(first.RootList) {
			t.Fatalf("trial %d: root lists diverged", trial)
		}
		if len(again.Placement.Modules) != len(first.Placement.Modules) {
			t.Fatalf("trial %d: placements diverged", trial)
		}
		for i := range again.Placement.Modules {
			if again.Placement.Modules[i] != first.Placement.Modules[i] {
				t.Fatalf("trial %d: module %d placed differently", trial, i)
			}
		}
	}
}

// TestNestedCCWWheels exercises mirrored placement inside mirrored
// placement.
func TestNestedCCWWheels(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	// Build explicitly: CCW wheel whose NW block is another CCW wheel.
	inner := plan.NewCCWWheel(
		plan.NewLeaf("i1"), plan.NewLeaf("i2"), plan.NewLeaf("i3"),
		plan.NewLeaf("i4"), plan.NewLeaf("i5"))
	outer := plan.NewCCWWheel(inner,
		plan.NewLeaf("o2"), plan.NewLeaf("o3"), plan.NewLeaf("o4"), plan.NewLeaf("o5"))
	lib := make(Library)
	for _, m := range []string{"i1", "i2", "i3", "i4", "i5", "o2", "o3", "o4", "o5"} {
		ml, err := gen.Module(rng, gen.DefaultModuleParams(3))
		if err != nil {
			t.Fatal(err)
		}
		lib[m] = ml
	}
	res := mustRun(t, lib, Options{}, outer)
	if err := res.Placement.Verify(lib); err != nil {
		t.Fatal(err)
	}
	if len(res.Placement.Modules) != 9 {
		t.Fatalf("placed %d modules", len(res.Placement.Modules))
	}
}
