package optimizer

import (
	"sort"
	"sync"
	"sync/atomic"

	"floorplan/internal/plan"
)

// runParallel evaluates the work schedule with a bounded pool of worker
// goroutines using dependency-counting dispatch: every node carries the
// number of unevaluated children; nodes with no unevaluated children
// (leaves, and nodes whose operands the subtree store resolved) start
// ready, and the worker that completes a node's last unevaluated child
// enqueues the node. The ready queue is a buffered channel sized for the
// whole schedule, so enqueues never block and a worker is only ever idle
// when no node is ready.
//
// work may be any postorder-closed subset of the tree: a node's operands
// are either in work (evaluated here, ordered by the dependency hand-off)
// or were spliced into st.evals before this call (ordered by goroutine
// creation). The per-ID tables are sized for the whole tree, so resolved
// IDs simply stay inert.
//
// Correctness notes:
//
//   - st.evals[id] and st.outcomes[id] are each written once, by the worker
//     evaluating node id. A parent's worker observes its children's writes
//     through the atomic pending-counter decrement followed by the channel
//     hand-off, both of which establish happens-before edges.
//   - The shared memory tracker is atomic and reservation-based, so
//     concurrent admissions can never push the stored count past the limit.
//   - On any failure the scheduler stops evaluating (remaining ready nodes
//     drain without running) and, after all workers join, reports the error
//     of the lowest-ID failed node — deterministic when a failure is itself
//     deterministic, e.g. a selection error on a specific node.
func (st *runState) runParallel(work []*plan.BinNode, workers int) error {
	n := len(st.outcomes)
	byID := make([]*plan.BinNode, n)
	parent := make([]int, n)
	pending := make([]atomic.Int32, n)
	for _, b := range work {
		byID[b.ID] = b
		parent[b.ID] = -1
	}
	ready := make(chan int, len(work))
	var inFlight atomic.Int64
	for _, b := range work {
		if b.Kind == plan.BinLeaf {
			continue
		}
		var deps int32
		if byID[b.Left.ID] != nil {
			parent[b.Left.ID] = b.ID
			deps++
		}
		if byID[b.Right.ID] != nil {
			parent[b.Right.ID] = b.ID
			deps++
		}
		pending[b.ID].Store(deps)
	}
	for _, b := range work {
		if pending[b.ID].Load() == 0 {
			inFlight.Add(1)
			ready <- b.ID
		}
	}

	var (
		aborted atomic.Bool
		errMu   sync.Mutex
		nodeErr []struct {
			id  int
			err error
		}
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := range ready {
				completed := false
				if !aborted.Load() {
					if err := st.evalNode(byID[id], w); err != nil {
						aborted.Store(true)
						errMu.Lock()
						nodeErr = append(nodeErr, struct {
							id  int
							err error
						}{id, err})
						errMu.Unlock()
					} else {
						completed = true
					}
				}
				if completed {
					if p := parent[id]; p >= 0 && pending[p].Add(-1) == 0 {
						inFlight.Add(1)
						ready <- p
					}
				}
				if inFlight.Add(-1) == 0 {
					close(ready)
				}
			}
		}(w)
	}
	wg.Wait()
	if len(nodeErr) == 0 {
		return nil
	}
	sort.Slice(nodeErr, func(i, j int) bool { return nodeErr[i].id < nodeErr[j].id })
	return nodeErr[0].err
}
