package telemetry

import (
	"bytes"
	"testing"
)

// TestServingMetricsAreRuntimeOnly pins the Canonical() split for the
// serving layer: cache and queue churn is request-order-dependent, so every
// one of its counters and watermarks must land in the runtime section only
// — otherwise two runs computing identical floorplans would diff as
// different under `make bench-report`'s canonical comparison.
func TestServingMetricsAreRuntimeOnly(t *testing.T) {
	c := New()
	c.Add(CtrCacheHits, 3)
	c.Add(CtrCacheMisses, 2)
	c.Add(CtrCacheEvictions, 1)
	c.Add(CtrCacheRejects, 1)
	c.Add(CtrServeRequests, 5)
	c.Add(CtrServeShed, 4)
	c.Observe(MaxServeQueue, 7)
	c.Observe(MaxServeInFlight, 2)
	c.Observe(MaxCacheBytes, 4096)

	r := c.Report()
	wantCounters := map[string]int64{
		"cache.hits": 3, "cache.misses": 2, "cache.evictions": 1,
		"cache.rejects": 1, "server.requests": 5, "server.shed": 4,
	}
	for name, want := range wantCounters {
		if got := r.Runtime.Counters[name]; got != want {
			t.Errorf("runtime counter %s = %d, want %d", name, got, want)
		}
		if _, leaked := r.Counters[name]; leaked {
			t.Errorf("counter %s leaked into the deterministic section", name)
		}
	}
	wantWatermarks := map[string]int64{
		"server.queue_peak": 7, "server.inflight_peak": 2, "cache.bytes_peak": 4096,
	}
	for name, want := range wantWatermarks {
		if got := r.Runtime.Watermarks[name]; got != want {
			t.Errorf("runtime watermark %s = %d, want %d", name, got, want)
		}
		if _, leaked := r.Watermarks[name]; leaked {
			t.Errorf("watermark %s leaked into the deterministic section", name)
		}
	}
}

// TestCanonicalStripsServingMetrics checks that two collectors recording the
// same deterministic work but wildly different serving churn canonicalize to
// identical bytes, and that a report carrying runtime watermarks still
// round-trips through ParseReport (the bench-report schema gate).
func TestCanonicalStripsServingMetrics(t *testing.T) {
	a, b := New(), New()
	for _, c := range []*Collector{a, b} {
		c.Add(CtrNodes, 9)
		c.Observe(MaxPeakStored, 123)
	}
	a.Add(CtrCacheHits, 50)
	a.Add(CtrServeShed, 8)
	a.Observe(MaxServeQueue, 31)
	b.Add(CtrCacheMisses, 50)
	b.Observe(MaxCacheBytes, 1<<20)

	ja, err := a.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("canonical reports differ despite identical deterministic work:\n%s\nvs\n%s", ja, jb)
	}

	raw, err := a.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(raw)
	if err != nil {
		t.Fatalf("report with runtime watermarks failed the round trip: %v", err)
	}
	if back.Runtime.Watermarks["server.queue_peak"] != 31 {
		t.Fatalf("runtime watermark lost in round trip: %+v", back.Runtime)
	}
	if back.Runtime.Counters["cache.hits"] != 50 {
		t.Fatalf("runtime counter lost in round trip: %+v", back.Runtime)
	}
}
