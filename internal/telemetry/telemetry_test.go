package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCountersWatermarks(t *testing.T) {
	c := New()
	c.Add(CtrGenerated, 10)
	c.Inc(CtrGenerated)
	c.Observe(MaxPeakStored, 7)
	c.Observe(MaxPeakStored, 3)
	if got := c.Counter(CtrGenerated); got != 11 {
		t.Fatalf("counter = %d, want 11", got)
	}
	if got := c.Watermark(MaxPeakStored); got != 7 {
		t.Fatalf("watermark = %d, want 7", got)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Add(CtrNodes, 5)
	c.Inc(CtrNodes)
	c.Observe(MaxRList, 9)
	c.Record(HistListBefore, 4)
	c.RecordSpan(Span{Name: "x"})
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	if c.Now() != 0 {
		t.Fatal("nil collector has a clock")
	}
	if c.Counter(CtrNodes) != 0 || c.Watermark(MaxRList) != 0 {
		t.Fatal("nil collector reads nonzero")
	}
	if c.Shard() != nil {
		t.Fatal("nil shard should stay nil")
	}
	r := c.Report()
	if r.Schema != Schema {
		t.Fatalf("nil report schema %q", r.Schema)
	}
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("nil trace: %v", err)
	}
}

func TestConcurrentRecordingIsExact(t *testing.T) {
	c := New()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(CtrNodes)
				c.Observe(MaxRList, int64(g*per+i))
				c.Record(HistListBefore, int64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Counter(CtrNodes); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := c.Watermark(MaxRList); got != goroutines*per-1 {
		t.Fatalf("watermark = %d, want %d", got, goroutines*per-1)
	}
	s := c.hists[HistListBefore].Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("hist count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Min != 0 || s.Max != per-1 {
		t.Fatalf("hist min/max = %d/%d", s.Min, s.Max)
	}
}

// TestMergeIsOrderIndependent folds the same shards in two different
// orders and demands identical canonical reports — the commutativity that
// underwrites the Workers=1 vs Workers=N bit-identity guarantee.
func TestMergeIsOrderIndependent(t *testing.T) {
	mkShards := func(parent *Collector) []*Collector {
		a, b, c := parent.Shard(), parent.Shard(), parent.Shard()
		a.Add(CtrGenerated, 100)
		a.Observe(MaxPeakStored, 40)
		a.Record(HistListBefore, 12)
		b.Add(CtrGenerated, 50)
		b.Observe(MaxPeakStored, 90)
		b.Record(HistListBefore, 7)
		c.Inc(CtrRSelections)
		c.Add(CtrRSelectionError, 33)
		c.Record(HistListBefore, 7)
		return []*Collector{a, b, c}
	}
	r1 := New()
	s := mkShards(r1)
	r1.Merge(s[0], s[1], s[2])
	r2 := New()
	s = mkShards(r2)
	r2.Merge(s[2], s[0], s[1])
	j1, err := r1.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.Report().Canonical().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("merge order changed the canonical report:\n%s\nvs\n%s", j1, j2)
	}
	if got := r1.Counter(CtrGenerated); got != 150 {
		t.Fatalf("merged counter = %d, want 150", got)
	}
	if got := r1.Watermark(MaxPeakStored); got != 90 {
		t.Fatalf("merged watermark = %d, want 90", got)
	}
}

func TestMergeSpansAndTracks(t *testing.T) {
	root := New()
	sh := root.Shard()
	sh.RecordSpan(Span{Name: "n1", Cat: "eval", Track: 2, Start: time.Millisecond, Dur: time.Millisecond})
	sh.RecordSpan(Span{Name: "n2", Cat: "eval", Track: 2, Start: 3 * time.Millisecond, Dur: time.Millisecond})
	root.RecordSpan(Span{Name: "evaluate", Cat: CatStage, Dur: 5 * time.Millisecond})
	root.Merge(sh)
	r := root.Report()
	if r.Runtime.SpanCount != 3 {
		t.Fatalf("span count = %d, want 3", r.Runtime.SpanCount)
	}
	if len(r.Runtime.Stages) != 1 || r.Runtime.Stages[0].Name != "evaluate" {
		t.Fatalf("stages = %+v", r.Runtime.Stages)
	}
	var tr *TrackStat
	for i := range r.Runtime.Tracks {
		if r.Runtime.Tracks[i].Track == 2 {
			tr = &r.Runtime.Tracks[i]
		}
	}
	if tr == nil || tr.Spans != 2 || tr.BusyNs != (2*time.Millisecond).Nanoseconds() {
		t.Fatalf("track 2 = %+v", tr)
	}
}

func TestReportRoundTrip(t *testing.T) {
	c := New()
	c.Add(CtrGenerated, 123)
	c.Add(CtrMemCASRetries, 4)
	c.Observe(MaxPeakStored, 99)
	c.Record(HistListBefore, 5)
	c.Record(HistNodeEvalNs, 1500)
	c.RecordSpan(Span{Name: "evaluate", Cat: CatStage, Dur: time.Millisecond, Args: map[string]int64{"nodes": 9}})
	raw, err := c.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("report does not round-trip:\n%s\nvs\n%s", raw, raw2)
	}
	if back.Counters["optimizer.generated"] != 123 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Runtime.Counters["memtrack.cas_retries"] != 4 {
		t.Fatalf("runtime counters = %v", back.Runtime.Counters)
	}
	if _, err := ParseReport([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("bogus schema accepted")
	}
}

func TestTraceExportShape(t *testing.T) {
	c := New()
	c.RecordSpan(Span{Name: "n0 leaf", Cat: "eval", Track: 0, Start: 0, Dur: 2 * time.Microsecond})
	c.RecordSpan(Span{Name: "n1 vcut", Cat: "eval", Track: 1, Start: 3 * time.Microsecond, Dur: 4 * time.Microsecond, Args: map[string]int64{"node": 1}})
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Two thread_name metadata events plus two complete events.
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Pid != 1 {
				t.Fatalf("pid = %d", ev.Pid)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("events: %d metadata, %d complete", meta, complete)
	}
	// The second span's timestamp is 3µs.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Ts != 3 || last.Dur != 4 {
		t.Fatalf("ts/dur = %v/%v, want 3/4", last.Ts, last.Dur)
	}
}

func TestDebugServer(t *testing.T) {
	c := New()
	c.Add(CtrNodes, 42)
	srv, addr, err := StartDebugServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	rep, err := ParseReport(get("/debug/report"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["optimizer.nodes"] != 42 {
		t.Fatalf("live report counters = %v", rep.Counters)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("expvar output: %v", err)
	}
	if _, ok := vars["floorplan_telemetry"]; !ok {
		t.Fatal("floorplan_telemetry not published to expvar")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("pprof cmdline empty")
	}
}
