package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"

	"floorplan/internal/buildinfo"
)

// This file renders a Collector in the Prometheus text exposition format
// (version 0.0.4), the lingua franca of metrics scrapers. The enum-indexed
// registry maps onto it directly: counters become counter families with a
// _total suffix, watermarks become gauges, and the log-linear histograms
// become cumulative histogram families with exact integer bucket bounds —
// a bucket holding values in [lo, hi) gets the inclusive Prometheus upper
// bound le="hi - 1", which loses nothing because every observation is an
// integer.
//
// Metric names derive mechanically from the registry names: "server.shed"
// → "floorplan_server_shed_total". Every family is emitted on every
// scrape, including zero-valued ones, so dashboards and alerts see series
// appear at process start rather than at first increment.

// promNamespace prefixes every exposed metric family.
const promNamespace = "floorplan"

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName converts a registry name ("server.latency_hit_ns") to a
// Prometheus family name ("floorplan_server_latency_hit_ns"), without any
// type suffix.
func promName(name string) string {
	return promNamespace + "_" + strings.ReplaceAll(name, ".", "_")
}

// writeFamily emits the HELP/TYPE header of one metric family.
func writeFamily(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// buildInfoSample is the single sample of the constant build_info gauge: the
// binary's VCS revision and toolchain as labels, value 1 — the standard
// *_build_info idiom, which lets dashboards join any series to the version
// that produced it and lets alerts catch mixed-version rings. A var (not a
// per-call lookup) so the golden test can pin it.
var buildInfoSample = func() string {
	bi := buildinfo.Get()
	return fmt.Sprintf("%s_build_info{revision=%q,modified=\"%t\",go_version=%q} 1",
		promNamespace, bi.Revision, bi.Modified, bi.GoVersion)
}()

// WritePrometheus renders the collector's counters, watermarks and
// histograms in the Prometheus text exposition format. Families appear in
// enum order, so the output for a given collector state is deterministic
// (the golden-file test relies on it). A nil collector renders every
// family at zero.
func (c *Collector) WritePrometheus(w io.Writer) error {
	name := promNamespace + "_build_info"
	if err := writeFamily(w, name, "Build identity of this binary (VCS revision, toolchain); constant 1.", "gauge"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", buildInfoSample); err != nil {
		return err
	}
	for i := Counter(0); i < numCounters; i++ {
		m := counterMeta[i]
		name := promName(m.name) + "_total"
		if err := writeFamily(w, name, m.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Counter(i)); err != nil {
			return err
		}
	}
	for i := Watermark(0); i < numWatermarks; i++ {
		m := watermarkMeta[i]
		name := promName(m.name)
		if err := writeFamily(w, name, m.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Watermark(i)); err != nil {
			return err
		}
	}
	for i := Hist(0); i < numHists; i++ {
		m := histMeta[i]
		name := promName(m.name)
		if err := writeFamily(w, name, m.help, "histogram"); err != nil {
			return err
		}
		var h *Histogram
		if c != nil {
			h = &c.hists[i]
		}
		if err := writePromHistogram(w, name, h); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family body: a cumulative
// _bucket series for every populated bucket (empty buckets add no
// information to a cumulative exposition and would bloat the scrape ~16×
// at log-linear resolution), the mandatory +Inf bucket, then _sum and
// _count. Buckets holding an exemplar append it in OpenMetrics syntax
// ("# {trace_id=...} value timestamp" after the sample), so a scraper that
// understands exemplars links the bucket straight to a trace and a plain
// 0.0.4 dashboard still reads the counts. A nil histogram (disabled
// collector) emits the empty family.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	var cum, sum, count int64
	if h != nil {
		count = h.count.Load()
		sum = h.sum.Load()
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			// Bucket i holds integer values in [lo, hi); its inclusive
			// upper bound is hi - 1. The top bucket's hi is already clamped
			// to MaxInt64, the true inclusive bound.
			_, hi := bucketBounds(i)
			le := hi - 1
			if hi == math.MaxInt64 {
				le = hi
			}
			ex := ""
			if e := h.exemplarAt(i); e != nil {
				ex = fmt.Sprintf(" # {trace_id=\"%s\"} %d %d.%03d",
					e.TraceID, e.Value, e.UnixMs/1000, e.UnixMs%1000)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d%s\n", name, le, cum, ex); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, sum, name, count)
	return err
}

// PromHandler serves the collector in the text exposition format — the
// handler behind GET /metrics on fpserve and the debug listener.
func PromHandler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = c.WritePrometheus(w)
	})
}
