package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// testTrace builds a distinct non-zero 16-byte trace ID from a seed.
func testTrace(seed byte) [16]byte {
	var tr [16]byte
	for i := range tr {
		tr[i] = seed + byte(i)
	}
	return tr
}

// TestExemplarStoreLoad: the seqlock slot round-trips a published exemplar
// and reports empty before any store.
func TestExemplarStoreLoad(t *testing.T) {
	var h Histogram
	if e := h.exemplarAt(17); e != nil {
		t.Fatalf("empty histogram returned exemplar %+v", e)
	}
	hi, lo := exemplarWords(testTrace(1))
	h.ObserveExemplar(100, hi, lo, 42)
	e := h.exemplarAt(bucketIndex(100))
	if e == nil {
		t.Fatal("exemplar not published")
	}
	if e.TraceID != traceHex(hi, lo) || e.Value != 100 || e.UnixMs != 42 {
		t.Fatalf("exemplar mismatch: %+v", e)
	}
	if e := h.exemplarAt(bucketIndex(5000)); e != nil {
		t.Fatalf("unexemplared bucket returned %+v", e)
	}
}

// TestExemplarZeroTraceSkipped: a zero trace records the observation but
// publishes no exemplar and allocates no slot table.
func TestExemplarZeroTraceSkipped(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(100, 0, 0, 42)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.ex.Load() != nil {
		t.Fatal("zero-trace observation allocated the exemplar table")
	}
	c := New()
	c.RecordExemplar(HistServeMissNs, 100, [16]byte{})
	if c.hists[HistServeMissNs].Count() != 1 {
		t.Fatal("RecordExemplar with zero trace dropped the observation")
	}
}

// TestExemplarLastWriterWins: repeated observations into the same bucket
// leave the latest store published.
func TestExemplarLastWriterWins(t *testing.T) {
	var h Histogram
	for i := 1; i <= 5; i++ {
		hi, lo := exemplarWords(testTrace(byte(i)))
		h.ObserveExemplar(100, hi, lo, int64(i))
	}
	e := h.exemplarAt(bucketIndex(100))
	if e == nil || e.UnixMs != 5 {
		t.Fatalf("want last store (unixMs 5), got %+v", e)
	}
}

// TestExemplarMergeNewerWins: Histogram.Merge keeps the newer capture per
// bucket regardless of merge direction.
func TestExemplarMergeNewerWins(t *testing.T) {
	hiA, loA := exemplarWords(testTrace(0xa0))
	hiB, loB := exemplarWords(testTrace(0xb0))
	for _, dir := range []string{"newer-into-older", "older-into-newer"} {
		var old, new Histogram
		old.ObserveExemplar(100, hiA, loA, 10)
		new.ObserveExemplar(100, hiB, loB, 20)
		dst, src := &old, &new
		if dir == "older-into-newer" {
			dst, src = &new, &old
		}
		dst.Merge(src)
		e := dst.exemplarAt(bucketIndex(100))
		if e == nil || e.TraceID != traceHex(hiB, loB) {
			t.Fatalf("%s: want newer exemplar %s, got %+v", dir, traceHex(hiB, loB), e)
		}
		if dst.Count() != 2 {
			t.Fatalf("%s: count = %d, want 2", dir, dst.Count())
		}
	}
}

// TestCollectorMergeExemplarRace is the race-detector stress for the
// seqlock: shards record exemplared observations while the root collector
// merges them and a reader snapshots — concurrent store/storeNewer/load on
// the same slots. Run under -race (make race does).
func TestCollectorMergeExemplarRace(t *testing.T) {
	root := New()
	const workers = 4
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sh := root.Shard()
				hi, lo := exemplarWords(testTrace(byte(w*16 + i%16 + 1)))
				sh.hists[HistServeMissNs].ObserveExemplar(int64(i%300), hi, lo, int64(i))
				root.hists[HistServeMissNs].ObserveExemplar(int64(i%300), hi, lo, int64(i))
				root.Merge(sh)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf jsonDiscard
		for i := 0; i < iters; i++ {
			s := root.hists[HistServeMissNs].Snapshot()
			for _, b := range s.Buckets {
				if b.Exemplar != nil && len(b.Exemplar.TraceID) != 32 {
					panic(fmt.Sprintf("torn exemplar read: %+v", b.Exemplar))
				}
			}
			_ = root.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	want := int64(2 * workers * iters)
	if got := root.hists[HistServeMissNs].Count(); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
}

type jsonDiscard struct{}

func (jsonDiscard) Write(p []byte) (int, error) { return len(p), nil }

// TestExemplarSnapshotJSONRoundTrip: an exemplar survives Snapshot →
// JSON → HistSnapshot (the /v1/stats path the cluster aggregator decodes),
// and snapshot-level Merge keeps the newer capture.
func TestExemplarSnapshotJSONRoundTrip(t *testing.T) {
	var h Histogram
	hi, lo := exemplarWords(testTrace(7))
	h.ObserveExemplar(900, hi, lo, 1234)
	h.Observe(3)

	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	var found *Exemplar
	for _, b := range s.Buckets {
		if b.Exemplar != nil {
			if found != nil {
				t.Fatalf("multiple exemplars after round trip")
			}
			found = b.Exemplar
		}
	}
	if found == nil || found.TraceID != traceHex(hi, lo) || found.Value != 900 || found.UnixMs != 1234 {
		t.Fatalf("exemplar did not survive JSON round trip: %+v", found)
	}

	// Merge a second node's snapshot carrying a newer exemplar in the same
	// bucket: the merged snapshot must keep the newer one.
	var h2 Histogram
	hi2, lo2 := exemplarWords(testTrace(9))
	h2.ObserveExemplar(900, hi2, lo2, 5678)
	s2 := h2.Snapshot()
	s.Merge(s2)
	for _, b := range s.Buckets {
		if b.Lo <= 900 && 900 < b.Hi {
			if b.Exemplar == nil || b.Exemplar.TraceID != traceHex(hi2, lo2) {
				t.Fatalf("snapshot merge kept older exemplar: %+v", b.Exemplar)
			}
			if b.N != 2 {
				t.Fatalf("merged bucket count = %d, want 2", b.N)
			}
		}
	}
}

// TestHistSnapshotDelta: the window between two cumulative snapshots holds
// exactly the observations recorded in between, carries the bucket
// exemplars forward, and an empty window is fully zero.
func TestHistSnapshotDelta(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(1000)
	prev := h.Snapshot()

	if d := prev.Delta(prev); d.Count != 0 || len(d.Buckets) != 0 {
		t.Fatalf("self-delta not empty: %+v", d)
	}

	hi, lo := exemplarWords(testTrace(3))
	h.ObserveExemplar(1000, hi, lo, 99)
	h.Observe(50)
	cur := h.Snapshot()

	d := cur.Delta(prev)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if d.Sum != 1050 {
		t.Fatalf("delta sum = %d, want 1050", d.Sum)
	}
	var exemplared int
	for _, b := range d.Buckets {
		if b.Lo <= 50 && 50 < b.Hi && b.N != 1 {
			t.Fatalf("window bucket for 50 has N=%d, want 1", b.N)
		}
		if b.Exemplar != nil {
			exemplared++
			if b.Exemplar.TraceID != traceHex(hi, lo) {
				t.Fatalf("delta exemplar mismatch: %+v", b.Exemplar)
			}
		}
	}
	if exemplared != 1 {
		t.Fatalf("delta carried %d exemplars, want 1", exemplared)
	}
	if d.Quantile(1) > cur.Max {
		t.Fatalf("delta max %d exceeds cumulative max %d", d.Quantile(1), cur.Max)
	}
}
