package telemetry

import "time"

// Span is one timed event on the collector's timeline. Track is the
// logical thread the span belongs to — a worker index in the optimizer, a
// speculation slot in the annealer, a test-case row in the table grid —
// and becomes the tid of the Chrome trace export.
type Span struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Track int    `json:"track"`
	// Start is the offset from the collector's epoch; Dur the span length.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Args carry small structured payloads into the trace viewer.
	Args map[string]int64 `json:"args,omitempty"`
	// TraceID correlates the span with one end-to-end request (the hex
	// W3C trace ID the serving stack propagates). Empty outside the
	// serving path; RecordSpan fills it from the collector's default
	// (SetTraceID) when unset.
	TraceID string `json:"trace_id,omitempty"`
}

// RecordSpan appends a span and credits its duration to the span's track.
// Span recording takes the collector lock — it is meant for per-node,
// per-cell and per-stage events, not per-implementation work; the scalar
// instruments cover the allocation-free hot path.
func (c *Collector) RecordSpan(s Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if s.TraceID == "" {
		s.TraceID = c.traceID
	}
	c.spans = append(c.spans, s)
	t := c.track(s.Track)
	t.busy += s.Dur
	t.spans++
	c.mu.Unlock()
}

// Spans returns a copy of all recorded spans, in recording order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}
