package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// paddedInt64 spaces adjacent atomics a cache line apart so independent
// counters written by different workers do not false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// bumpMax raises *v to at least x.
func bumpMax(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

// histBuckets is the bucket count of the power-of-two histogram: bucket 0
// holds the value 0 and bucket i (1 <= i <= 63) holds [2^(i-1), 2^i).
// Observations are non-negative int64s, so bits.Len64 never exceeds 63.
const histBuckets = 64

// Histogram is a lock-free power-of-two histogram over non-negative int64
// observations. All fields are atomics, so Observe never locks or
// allocates; bucket counts, count and sum fold commutatively, which keeps
// merged histograms deterministic regardless of recording order.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	minPlus atomic.Int64 // min+1; 0 means "no observations yet"
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int { return bits.Len64(uint64(v)) }

// bucketBounds returns the half-open [lo, hi) range of bucket i, with hi
// clamped to MaxInt64 for the top bucket (whose true bound 2^63 overflows).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << i
}

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	bumpMax(&h.max, v)
	// min+1 with 0 as the unset sentinel keeps the fast path a single CAS
	// loop without a separate "initialized" flag.
	for {
		old := h.minPlus.Load()
		if old != 0 && v+1 >= old {
			return
		}
		if h.minPlus.CompareAndSwap(old, v+1) {
			return
		}
	}
}

func (h *Histogram) merge(o *Histogram) {
	if o.count.Load() == 0 {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	bumpMax(&h.max, o.max.Load())
	if om := o.minPlus.Load(); om != 0 {
		for {
			old := h.minPlus.Load()
			if old != 0 && om >= old {
				return
			}
			if h.minPlus.CompareAndSwap(old, om) {
				return
			}
		}
	}
}

// BucketCount is one populated histogram bucket in a snapshot: observations
// v with Lo <= v < Hi.
type BucketCount struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// HistSnapshot is a histogram's point-in-time state for the JSON report.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// HistSnapshots returns a snapshot of every non-empty histogram keyed by
// its metric name — the additive form /v1/stats exposes. A nil collector
// returns nil.
func (c *Collector) HistSnapshots() map[string]HistSnapshot {
	if c == nil {
		return nil
	}
	out := make(map[string]HistSnapshot)
	for i := Hist(0); i < numHists; i++ {
		if s := c.hists[i].snapshot(); s.Count > 0 {
			out[histMeta[i].name] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if mp := h.minPlus.Load(); mp != 0 {
		s.Min = mp - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, N: n})
		}
	}
	return s
}
