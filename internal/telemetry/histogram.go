package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// paddedInt64 spaces adjacent atomics a cache line apart so independent
// counters written by different workers do not false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// bumpMax raises *v to at least x.
func bumpMax(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

// Bucket layout: log-linear (HDR-style). Each power-of-two octave is split
// into histSubCount = 2^histSubBits linear sub-buckets, so the relative
// bucket width is bounded by 2^-histSubBits everywhere: values below
// histSubCount land in exact single-value buckets (idx = v), and a value v
// with 2^(histSubBits+o-1) <= v < 2^(histSubBits+o) lands in octave o >= 1
// at idx = o*histSubCount + (v>>(o-1) - histSubCount), a bucket of width
// 2^(o-1). Reporting a bucket's midpoint therefore carries at most
// 2^-(histSubBits+1) ≈ 3.1% relative error — the resolution p999 needs,
// where the old pure power-of-two layout was off by up to 2×.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // linear sub-buckets per octave

	// histBuckets covers all of [0, MaxInt64]: bits.Len64 of a non-negative
	// int64 never exceeds 63, so the top octave is 63-histSubBits and the
	// last index is (63-histSubBits+1)*histSubCount - 1.
	histBuckets = (63 - histSubBits + 1) * histSubCount
)

// Histogram is a lock-free log-linear histogram over non-negative int64
// observations. All fields are atomics, so Observe never locks or
// allocates; bucket counts, count and sum fold commutatively, which keeps
// merged histograms deterministic regardless of recording order.
//
// The zero value is ready to use: the load harness records straight into
// standalone Histograms, the Collector embeds one per Hist enum value.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	minPlus atomic.Int64 // min+1; 0 means "no observations yet"
	buckets [histBuckets]atomic.Int64
	// ex is the per-bucket trace-exemplar table (exemplar.go), allocated
	// lazily on the first ObserveExemplar so plain histograms never pay.
	ex atomic.Pointer[[histBuckets]exemplarSlot]
}

// bucketIndex maps a non-negative value to its log-linear bucket.
func bucketIndex(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - histSubBits // octave, >= 1
	return o*histSubCount + int(v>>(o-1)) - histSubCount
}

// bucketBounds returns the half-open [lo, hi) range of bucket i, with hi
// clamped to MaxInt64 for the top bucket (whose true bound 2^63 overflows).
func bucketBounds(i int) (lo, hi int64) {
	if i < histSubCount {
		return int64(i), int64(i) + 1
	}
	o := i >> histSubBits // octave, >= 1
	sub := i & (histSubCount - 1)
	width := int64(1) << (o - 1)
	lo = int64(histSubCount+sub) << (o - 1)
	if hi = lo + width; hi < lo {
		hi = math.MaxInt64
	}
	return lo, hi
}

// Observe adds one observation. Negative values clamp to 0. Safe for
// concurrent use; never locks or allocates.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	bumpMax(&h.max, v)
	// min+1 with 0 as the unset sentinel keeps the fast path a single CAS
	// loop without a separate "initialized" flag.
	for {
		old := h.minPlus.Load()
		if old != 0 && v+1 >= old {
			return
		}
		if h.minPlus.CompareAndSwap(old, v+1) {
			return
		}
	}
}

// Merge folds o's observations into h bucketwise. Because every fold is
// commutative, a merged histogram is indistinguishable from one that
// observed the union stream directly. Exemplars fold too, newest capture
// per bucket winning.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count.Load() == 0 {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.mergeExemplars(o)
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	bumpMax(&h.max, o.max.Load())
	if om := o.minPlus.Load(); om != 0 {
		for {
			old := h.minPlus.Load()
			if old != 0 && om >= old {
				return
			}
			if h.minPlus.CompareAndSwap(old, om) {
				return
			}
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns the value at quantile q (0 <= q <= 1): the midpoint of
// the bucket holding the ⌈q·count⌉-th smallest observation, clamped to the
// observed [min, max]. With the log-linear layout the answer is within
// ~3.1% of the exact order statistic. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	return h.Snapshot().Quantile(q)
}

// BucketCount is one populated histogram bucket in a snapshot: observations
// v with Lo <= v < Hi, plus — when the histogram recorded exemplars — the
// trace link of one recent observation in the bucket.
type BucketCount struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
	// Exemplar links the bucket to a real request trace (exemplar.go);
	// absent on buckets (and histograms) never exemplared.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistSnapshot is a histogram's point-in-time state for the JSON report,
// /v1/stats and the load report. Buckets carry their bounds explicitly, so
// a snapshot that crossed a JSON round-trip still answers Quantile.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns the value at quantile q (0 <= q <= 1) from the
// snapshot's buckets: the midpoint of the bucket holding the ⌈q·count⌉-th
// smallest observation, clamped to [Min, Max] so the extremes are exact.
// Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	// The extreme order statistics are tracked exactly; answering them
	// from min/max instead of a bucket midpoint keeps Quantile(0) and
	// Quantile(1) error-free.
	if rank <= 1 {
		return s.Min
	}
	if rank >= s.Count {
		return s.Max
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= rank {
			v := b.Lo + (b.Hi-b.Lo-1)/2
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Merge folds o's buckets into s, producing the snapshot the union stream
// would have yielded. The receiver's bucket slice is rebuilt sorted by Lo.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min = o.Min
		s.Max = o.Max
	} else {
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
	s.Count += o.Count
	s.Sum += o.Sum
	byLo := make(map[int64]BucketCount, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byLo[b.Lo] = b
	}
	for _, b := range o.Buckets {
		if have, ok := byLo[b.Lo]; ok {
			have.N += b.N
			have.Exemplar = newerExemplar(have.Exemplar, b.Exemplar)
			byLo[b.Lo] = have
		} else {
			byLo[b.Lo] = b
		}
	}
	merged := make([]BucketCount, 0, len(byLo))
	for _, b := range byLo {
		merged = append(merged, b)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Lo < merged[j].Lo })
	s.Buckets = merged
}

// HistSnapshots returns a snapshot of every non-empty histogram keyed by
// its metric name — the additive form /v1/stats exposes. A nil collector
// returns nil.
func (c *Collector) HistSnapshots() map[string]HistSnapshot {
	if c == nil {
		return nil
	}
	out := make(map[string]HistSnapshot)
	for i := Hist(0); i < numHists; i++ {
		if s := c.hists[i].Snapshot(); s.Count > 0 {
			out[histMeta[i].name] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// SnapshotHist captures one histogram's current state by enum. A nil
// collector returns the empty snapshot. The profiling watchdog samples the
// serve-latency histograms through this without touching the full map form.
func (c *Collector) SnapshotHist(h Hist) HistSnapshot {
	if c == nil {
		return HistSnapshot{}
	}
	return c.hists[h].Snapshot()
}

// Snapshot captures the histogram's current state: totals plus every
// populated bucket with its bounds, in ascending value order.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if mp := h.minPlus.Load(); mp != 0 {
		s.Min = mp - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, N: n, Exemplar: h.exemplarAt(i)})
		}
	}
	return s
}

// Delta returns the window s − prev of two cumulative snapshots of the same
// histogram (prev taken earlier): the observations recorded between the two
// captures. Bucket exemplars carry over from s — per-bucket last-writer-wins
// makes them the most recent trace in each bucket, which is exactly what a
// watchdog sampling its own telemetry wants to annotate a capture with.
// Min/Max tighten to the window's populated bucket bounds (the exact
// extremes are not recoverable from cumulative state).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	if out.Count <= 0 {
		return HistSnapshot{}
	}
	prevByLo := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByLo[b.Lo] = b.N
	}
	for _, b := range s.Buckets {
		if n := b.N - prevByLo[b.Lo]; n > 0 {
			out.Buckets = append(out.Buckets, BucketCount{Lo: b.Lo, Hi: b.Hi, N: n, Exemplar: b.Exemplar})
		}
	}
	if len(out.Buckets) > 0 {
		out.Min = out.Buckets[0].Lo
		out.Max = out.Buckets[len(out.Buckets)-1].Hi - 1
		if s.Max < out.Max {
			out.Max = s.Max // the cumulative max bounds every window's max
		}
	}
	return out
}
