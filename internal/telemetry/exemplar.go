package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Trace exemplars: each histogram bucket can carry the W3C trace ID of one
// request that landed in it, so a p99 bucket on a dashboard links directly
// to a real slow trace instead of an anonymous count. The memory model is
// deliberately lossy — per-bucket last-writer-wins, drop-on-contention —
// because exemplars are samples: any recent trace from the bucket is as
// good as any other, and the hot path must stay lock-free and
// allocation-free (the 960-slot table is allocated once, on the first
// exemplared observation of a histogram, and never again).

// exemplarSlot is one bucket's exemplar: a seqlock over four atomic words.
// A writer claims the slot by CASing the sequence from even to odd, stores
// the fields, then publishes by restoring even; a writer that loses the CAS
// simply drops its exemplar (the winner's is just as representative).
// Readers retry on a torn read, so a published exemplar is always a
// consistent (trace, value, timestamp) triple — never two requests' halves
// stitched together.
type exemplarSlot struct {
	seq     atomic.Uint64 // even = stable, odd = writer mid-update; 0 = empty
	traceHi atomic.Uint64 // trace ID bytes 0..8, big-endian
	traceLo atomic.Uint64 // trace ID bytes 8..16, big-endian
	value   atomic.Int64  // the observed value
	unixMs  atomic.Int64  // wall-clock capture time, for cross-node LWW
}

// store publishes an exemplar unconditionally (last writer wins). Dropped
// silently when another writer holds the slot.
func (s *exemplarSlot) store(hi, lo uint64, v, unixMs int64) {
	n := s.seq.Load()
	if n&1 != 0 || !s.seq.CompareAndSwap(n, n+1) {
		return
	}
	s.traceHi.Store(hi)
	s.traceLo.Store(lo)
	s.value.Store(v)
	s.unixMs.Store(unixMs)
	s.seq.Store(n + 2)
}

// storeNewer publishes an exemplar only if the slot is empty or holds an
// older capture — the merge fold, where "last writer" means the later
// wall-clock observation regardless of which shard or node carried it.
func (s *exemplarSlot) storeNewer(hi, lo uint64, v, unixMs int64) {
	n := s.seq.Load()
	if n&1 != 0 || !s.seq.CompareAndSwap(n, n+1) {
		return
	}
	if n == 0 || unixMs >= s.unixMs.Load() {
		s.traceHi.Store(hi)
		s.traceLo.Store(lo)
		s.value.Store(v)
		s.unixMs.Store(unixMs)
	}
	s.seq.Store(n + 2)
}

// load returns a consistent exemplar snapshot; ok is false when the slot is
// empty or a writer kept it busy for all retries (rare, and losing one
// exemplar read is harmless).
func (s *exemplarSlot) load() (hi, lo uint64, v, unixMs int64, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		n := s.seq.Load()
		if n == 0 {
			return 0, 0, 0, 0, false
		}
		if n&1 != 0 {
			continue
		}
		hi, lo = s.traceHi.Load(), s.traceLo.Load()
		v, unixMs = s.value.Load(), s.unixMs.Load()
		if s.seq.Load() == n {
			return hi, lo, v, unixMs, true
		}
	}
	return 0, 0, 0, 0, false
}

// Exemplar is one bucket's published trace link, as carried by snapshots,
// /v1/stats, the cluster aggregation and the OpenMetrics exposition.
type Exemplar struct {
	// TraceID is the lowercase-hex W3C trace ID of the exemplared request.
	TraceID string `json:"trace_id"`
	// Value is the exemplared observation (nanoseconds for latency
	// histograms).
	Value int64 `json:"value"`
	// UnixMs is the wall-clock capture time; merges keep the newer exemplar.
	UnixMs int64 `json:"unix_ms"`
	// NodeID names the node that recorded the exemplar. Stamped by the
	// cluster stats aggregator (a process-local snapshot leaves it empty),
	// so a cluster-level p99 bucket names the node holding the slow trace.
	NodeID string `json:"node_id,omitempty"`
}

// traceHex renders the packed trace words as the 32-char lowercase-hex W3C
// trace ID.
func traceHex(hi, lo uint64) string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], hi)
	binary.BigEndian.PutUint64(b[8:], lo)
	return hex.EncodeToString(b[:])
}

// exemplarWords packs a raw 16-byte trace ID into the slot's two words.
func exemplarWords(trace [16]byte) (hi, lo uint64) {
	return binary.BigEndian.Uint64(trace[:8]), binary.BigEndian.Uint64(trace[8:])
}

// exemplars returns the histogram's slot table, allocating it on first use.
// Histograms that never record exemplars (the per-request optimizer shards)
// never pay for the table.
func (h *Histogram) exemplars() *[histBuckets]exemplarSlot {
	if e := h.ex.Load(); e != nil {
		return e
	}
	e := new([histBuckets]exemplarSlot)
	if h.ex.CompareAndSwap(nil, e) {
		return e
	}
	return h.ex.Load()
}

// ObserveExemplar adds one observation and attaches the observing request's
// trace identity to the observation's bucket, last writer wins. unixMs is
// the capture wall-clock time (millis) used to order exemplars across
// merges; a zero trace records the observation with no exemplar. Safe for
// concurrent use; allocation-free after the first call.
func (h *Histogram) ObserveExemplar(v int64, traceHi, traceLo uint64, unixMs int64) {
	if v < 0 {
		v = 0
	}
	h.Observe(v)
	if traceHi == 0 && traceLo == 0 {
		return
	}
	h.exemplars()[bucketIndex(v)].store(traceHi, traceLo, v, unixMs)
}

// mergeExemplars folds o's published exemplars into h, keeping the newer
// capture per bucket. Called by Histogram.Merge under no locks; both sides
// may be concurrently observed.
func (h *Histogram) mergeExemplars(o *Histogram) {
	oe := o.ex.Load()
	if oe == nil {
		return
	}
	he := h.exemplars()
	for i := range oe {
		if hi, lo, v, ts, ok := oe[i].load(); ok {
			he[i].storeNewer(hi, lo, v, ts)
		}
	}
}

// exemplarAt returns the published exemplar for bucket i, if any.
func (h *Histogram) exemplarAt(i int) *Exemplar {
	e := h.ex.Load()
	if e == nil {
		return nil
	}
	hi, lo, v, ts, ok := e[i].load()
	if !ok {
		return nil
	}
	return &Exemplar{TraceID: traceHex(hi, lo), Value: v, UnixMs: ts}
}

// newerExemplar picks the exemplar with the later capture time; either may
// be nil.
func newerExemplar(a, b *Exemplar) *Exemplar {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case b.UnixMs >= a.UnixMs:
		return b
	default:
		return a
	}
}

// RecordExemplar adds one observation to a histogram and links the
// observation's bucket to the recording request's raw 16-byte W3C trace ID
// (last writer wins). The serving layer calls this once per request with
// the request's trace, which is what lets a /metrics scrape or a cluster
// stats merge hand an operator a real slow trace for any latency bucket. A
// zero trace degrades to a plain Record; a nil collector records nothing.
func (c *Collector) RecordExemplar(h Hist, v int64, trace [16]byte) {
	if c == nil {
		return
	}
	hi, lo := exemplarWords(trace)
	if hi == 0 && lo == 0 {
		c.hists[h].Observe(clampNonNegative(v))
		return
	}
	c.hists[h].ObserveExemplar(v, hi, lo, time.Now().UnixMilli())
}

func clampNonNegative(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}
