package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar registration: expvar.Publish
// panics on duplicate names, and a long fpbench run may start the debug
// server once while folding many collectors.
var publishOnce sync.Once

// debugCollector is the collector the expvar snapshot reads; swapped under
// debugMu when a new debug server starts.
var (
	debugMu        sync.Mutex
	debugCollector *Collector
)

// StartDebugServer serves expvar (/debug/vars), pprof (/debug/pprof/), a
// live telemetry report (/debug/report) and a Prometheus text exposition
// of the collector (/metrics) on addr, for profiling long anneals and
// table grids while they run. It returns the server (for
// Close) and the bound address (useful with ":0"). The server runs until
// closed; serving errors after Close are ignored.
func StartDebugServer(addr string, c *Collector) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	debugMu.Lock()
	debugCollector = c
	debugMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("floorplan_telemetry", expvar.Func(func() any {
			debugMu.Lock()
			cur := debugCollector
			debugMu.Unlock()
			return cur.Report()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		debugMu.Lock()
		cur := debugCollector
		debugMu.Unlock()
		if err := cur.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		debugMu.Lock()
		cur := debugCollector
		debugMu.Unlock()
		if err := cur.WriteReport(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
