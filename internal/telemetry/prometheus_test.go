package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is the fixed trace identity exemplared into the seeded
// collector, and goldenTraceMs its capture time.
var goldenTrace = [16]byte{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6,
	0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}

const goldenTraceMs = 1700000000123

// seededCollector builds a collector with a fixed, representative state:
// counters, watermarks and histogram observations spanning several
// power-of-two buckets, including the zero bucket, plus one bucket
// exemplar with a pinned trace ID and capture time.
func seededCollector() *Collector {
	c := New()
	c.Add(CtrNodes, 11)
	c.Add(CtrLNodes, 2)
	c.Add(CtrServeRequests, 7)
	c.Add(CtrServeShed, 1)
	c.Add(CtrCacheHits, 3)
	c.Observe(MaxPeakStored, 4096)
	c.Observe(MaxServeQueue, 9)
	for _, v := range []int64{0, 1, 2, 3, 900, 1024} {
		c.Record(HistServeMissNs, v)
	}
	hi, lo := exemplarWords(goldenTrace)
	c.hists[HistServeMissNs].ObserveExemplar(70000, hi, lo, goldenTraceMs)
	c.Record(HistServeHitNs, 512)
	c.Record(HistListBefore, 33)
	return c
}

// pinBuildInfo swaps the build_info sample for a fixed one so golden output
// does not depend on the toolchain or VCS state the tests were built under.
func pinBuildInfo(t *testing.T) {
	t.Helper()
	old := buildInfoSample
	buildInfoSample = `floorplan_build_info{revision="deadbeef",modified="false",go_version="gotest"} 1`
	t.Cleanup(func() { buildInfoSample = old })
}

// TestPrometheusGolden pins the full exposition output for a seeded
// collector. Regenerate with `go test ./internal/telemetry -run
// TestPrometheusGolden -update` after intentional format changes.
func TestPrometheusGolden(t *testing.T) {
	pinBuildInfo(t)
	var buf bytes.Buffer
	if err := seededCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// promFamily and promSample are the grammar of the text exposition format
// this repo emits: family names, an optional label set (le on buckets, the
// identity labels on build_info), integer values, and an optional trailing
// OpenMetrics exemplar on bucket samples.
var (
	promFamily = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	promSample = regexp.MustCompile(`^([a-z_][a-z0-9_]*)` +
		`(\{[a-z0-9_]+="[^"]*"(?:,[a-z0-9_]+="[^"]*")*\})?` +
		` (-?[0-9]+)` +
		`( # \{trace_id="[0-9a-f]{32}"\} -?[0-9]+ [0-9]+\.[0-9]{3})?$`)
)

// TestPrometheusWellFormed parses every emitted line: HELP/TYPE comments
// pair up, every sample matches the grammar, histogram buckets are
// cumulative and end in +Inf matching _count.
func TestPrometheusWellFormed(t *testing.T) {
	pinBuildInfo(t)
	var buf bytes.Buffer
	if err := seededCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	var lastCum int64 = -1
	var curHist string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promFamily.MatchString(name) || strings.TrimSpace(help) == "" {
				t.Fatalf("line %d: malformed HELP %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE %q", i+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", i+1, line)
			}
			if fields[1] == "histogram" {
				curHist, lastCum = fields[0], -1
			} else {
				curHist = ""
			}
		default:
			m := promSample.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", i+1, line)
			}
			if curHist != "" && m[1] == curHist+"_bucket" {
				var v int64
				fmt.Sscanf(m[3], "%d", &v)
				if v < lastCum {
					t.Fatalf("line %d: bucket counts not cumulative (%d after %d): %q",
						i+1, v, lastCum, line)
				}
				lastCum = v
			}
		}
	}
	out := buf.String()
	for _, must := range []string{
		"floorplan_server_requests_total 7",
		"floorplan_server_queue_peak 9",
		`floorplan_server_latency_miss_ns_bucket{le="0"} 1`,
		`floorplan_server_latency_miss_ns_bucket{le="1"} 2`,
		`floorplan_server_latency_miss_ns_bucket{le="3"} 4`,
		`floorplan_server_latency_miss_ns_bucket{le="927"} 5`,
		`floorplan_server_latency_miss_ns_bucket{le="1087"} 6`,
		`floorplan_server_latency_miss_ns_bucket{le="73727"} 7 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 70000 1700000000.123`,
		`floorplan_server_latency_miss_ns_bucket{le="+Inf"} 7`,
		"floorplan_server_latency_miss_ns_count 7",
		`floorplan_build_info{revision="deadbeef",modified="false",go_version="gotest"} 1`,
	} {
		if !strings.Contains(out, must+"\n") {
			t.Errorf("exposition output missing %q", must)
		}
	}
}

// TestPrometheusNilCollector: the disabled state still renders every
// family (at zero) so scrape targets never 404 or emit partial families.
func TestPrometheusNilCollector(t *testing.T) {
	var c *Collector
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, must := range []string{
		"floorplan_optimizer_nodes_total 0",
		`floorplan_server_latency_hit_ns_bucket{le="+Inf"} 0`,
		"floorplan_server_latency_hit_ns_count 0",
	} {
		if !strings.Contains(out, must+"\n") {
			t.Errorf("nil-collector exposition missing %q", must)
		}
	}
}

// TestMetricMetaComplete is the enum/name-table drift lint: every Counter,
// Watermark and Hist enum value must carry a non-empty registry name and
// help string, names must be unique, and each must convert to a valid
// Prometheus family name.
func TestMetricMetaComplete(t *testing.T) {
	seen := map[string]string{}
	check := func(kind string, idx int, m metricMeta) {
		id := fmt.Sprintf("%s[%d]", kind, idx)
		if m.name == "" {
			t.Errorf("%s has no metric name", id)
			return
		}
		if m.help == "" {
			t.Errorf("%s (%s) has no help string", id, m.name)
		}
		if prev, dup := seen[m.name]; dup {
			t.Errorf("%s and %s share the metric name %q", id, prev, m.name)
		}
		seen[m.name] = id
		if p := promName(m.name); !promFamily.MatchString(p) {
			t.Errorf("%s: %q converts to invalid Prometheus name %q", id, m.name, p)
		}
	}
	for i := Counter(0); i < numCounters; i++ {
		check("Counter", int(i), counterMeta[i])
	}
	for i := Watermark(0); i < numWatermarks; i++ {
		check("Watermark", int(i), watermarkMeta[i])
	}
	for i := Hist(0); i < numHists; i++ {
		check("Hist", int(i), histMeta[i])
	}
}
