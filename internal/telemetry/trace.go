package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteTrace exports every recorded span as a Chrome trace_event JSON
// document (loadable in chrome://tracing and Perfetto): one trace thread
// (tid) per span track, so the optimizer's parallel postorder schedule
// renders as the worker-pool occupancy timeline. Spans are sorted
// canonically (start, track, name) before export, mirroring the
// deterministic postorder fold of the stats merge. Timestamps and
// durations are microseconds, per the trace_event format.
func (c *Collector) WriteTrace(w io.Writer) error {
	spans := c.Spans()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	tracks := map[int]bool{}
	for _, s := range spans {
		tracks[s.Track] = true
	}
	trackIDs := make([]int, 0, len(tracks))
	for t := range tracks {
		trackIDs = append(trackIDs, t)
	}
	sort.Ints(trackIDs)

	// Metadata events carry string args while complete events carry int64
	// args, so each event marshals independently.
	events := make([]json.RawMessage, 0, len(trackIDs)+len(spans))
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		events = append(events, raw)
		return nil
	}
	for _, t := range trackIDs {
		err := add(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": t,
			"args": map[string]string{"name": fmt.Sprintf("track %d", t)},
		})
		if err != nil {
			return err
		}
	}
	type completeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	for _, s := range spans {
		// The request trace ID rides in args so the trace viewer can filter
		// one request's spans across the serving and optimizer layers.
		var args map[string]any
		if len(s.Args) > 0 || s.TraceID != "" {
			args = make(map[string]any, len(s.Args)+1)
			for k, v := range s.Args {
				args[k] = v
			}
			if s.TraceID != "" {
				args["trace_id"] = s.TraceID
			}
		}
		err := add(completeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Track,
			Args: args,
		})
		if err != nil {
			return err
		}
	}
	doc := struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	return json.NewEncoder(w).Encode(doc)
}
