// Package telemetry is the measurement substrate of the floorplan system:
// lock-free counters, watermarks and histograms, a span recorder, a
// structured JSON run report, a Chrome trace_event export of the parallel
// schedule, and an expvar/pprof debug listener.
//
// Every recording method is nil-safe: a nil *Collector is the disabled
// state and costs exactly one branch per call site, so the optimizer's hot
// path carries no instrumentation overhead when telemetry is off. All
// scalar instruments are atomics — recording from any number of goroutines
// needs no locks and allocates nothing.
//
// Determinism: counters, watermarks and histogram buckets are folded by
// commutative operations (addition, max), so their merged values do not
// depend on which worker recorded what, or in what order — the same
// property PR 1's postorder stats merge gives the optimizer's Stats. The
// Report therefore splits into a deterministic section (bit-identical for
// any worker count on a successful run) and a Runtime section (wall times,
// spans, pool and CAS churn) that legitimately varies between runs;
// Report.Canonical strips the latter for diffing.
package telemetry

import (
	"sync"
	"time"
)

// Counter identifies one of the fixed additive metrics. The registry is a
// compile-time enum rather than a name map so that recording is a single
// atomic add with no hashing or allocation.
type Counter uint8

const (
	// Optimizer: bottom-up evaluation of the binary block tree.
	CtrNodes             Counter = iota // blocks evaluated
	CtrLNodes                           // L-shaped blocks evaluated
	CtrGenerated                        // implementations generated before selection
	CtrStored                           // implementations retained after selection
	CtrCombineCandidates                // candidate pairs considered by combine ops
	CtrRSelections                      // R_Selection invocations
	CtrLSelections                      // L_Selection invocations
	CtrRSelectionError                  // total staircase area admitted by R_Selection
	CtrLSelectionError                  // total distance error admitted by L_Selection
	CtrMemDenials                       // memtrack admissions rejected at the limit

	// Annealer: topology search moves.
	CtrMovesProposed
	CtrMovesAccepted
	CtrMovesImproved

	// Tables: paper-table grid cells (one optimizer run each).
	CtrCells

	// Generator: workload synthesis.
	CtrGenModules
	CtrGenImpls

	// Runtime-only counters: nondeterministic across runs or worker counts.
	CtrMemCASRetries // failed CAS attempts in the memory tracker
	CtrCSPPSolves    // CSPP DP solves
	CtrCSPPPoolHits  // DP table pool reuses (capacity already sufficient)
	CtrCSPPPoolMiss  // DP table pool misses (fresh allocation)
	CtrBatchWaste    // speculative anneal candidates evaluated then discarded

	// Serving layer: cross-request cache and request-queue churn. All
	// runtime-only — hit rates and shedding depend on request arrival
	// order, never on the optimization computed.
	CtrCacheHits      // cache lookups answered from a stored entry
	CtrCacheMisses    // cache lookups that fell through to computation
	CtrCacheEvictions // entries evicted to fit the byte budget
	CtrCacheRejects   // entries too large to cache under the budget
	CtrServeRequests         // optimize requests admitted by the server
	CtrServeShed             // optimize requests shed with 429 (queue full)
	CtrServeCoalesced        // misses answered by joining an in-flight computation
	CtrServeTimeoutQueued    // requests that hit their deadline while still queued
	CtrServeTimeoutComputing // requests that hit their deadline while computing
	CtrServeAbandonedErrors  // abandoned computations that finished with an error

	// Client: retry loop of floorplan.Client.
	CtrClientAttempts // HTTP attempts, including first tries
	CtrClientRetries  // attempts that were retries of a retryable failure

	numCounters
)

// Watermark identifies one of the fixed maximum-value metrics.
type Watermark uint8

const (
	MaxPeakStored Watermark = iota // memtrack peak (the paper's M)
	MaxRList                       // largest rectangular list stored
	MaxLSet                        // largest L-shaped set stored
	MaxCSPPN                       // largest CSPP instance size n
	MaxCSPPK                       // largest CSPP path length k

	// Runtime-only watermarks: high-water marks of serving-layer state.
	MaxServeQueue      // deepest optimize-request queue observed
	MaxServeInFlight   // most requests evaluating concurrently
	MaxCacheBytes      // largest cache byte footprint observed
	MaxServeRetryAfter // largest Retry-After hint sent, in milliseconds

	numWatermarks
)

// Hist identifies one of the fixed histograms.
type Hist uint8

const (
	// Deterministic, size-valued.
	HistListBefore Hist = iota // per-node implementation count before selection
	HistListAfter              // per-node implementation count after selection

	// Runtime-only, time-valued (nanoseconds).
	HistNodeEvalNs // per-node evaluation wall time
	HistCellNs     // per-table-cell wall time
	HistAnnealNs   // per-candidate annealer evaluation wall time

	numHists
)

// metricMeta names an instrument and classifies it as deterministic or
// runtime-only for report placement.
type metricMeta struct {
	name    string
	runtime bool
}

var counterMeta = [numCounters]metricMeta{
	CtrNodes:             {name: "optimizer.nodes"},
	CtrLNodes:            {name: "optimizer.l_nodes"},
	CtrGenerated:         {name: "optimizer.generated"},
	CtrStored:            {name: "optimizer.stored"},
	CtrCombineCandidates: {name: "optimizer.combine_candidates"},
	CtrRSelections:       {name: "optimizer.r_selections"},
	CtrLSelections:       {name: "optimizer.l_selections"},
	CtrRSelectionError:   {name: "optimizer.r_selection_error"},
	CtrLSelectionError:   {name: "optimizer.l_selection_error"},
	CtrMemDenials:        {name: "memtrack.denials"},
	CtrMovesProposed:     {name: "anneal.proposed"},
	CtrMovesAccepted:     {name: "anneal.accepted"},
	CtrMovesImproved:     {name: "anneal.improved"},
	CtrCells:             {name: "tables.cells"},
	CtrGenModules:        {name: "gen.modules"},
	CtrGenImpls:          {name: "gen.impls"},
	CtrMemCASRetries:     {name: "memtrack.cas_retries", runtime: true},
	CtrCSPPSolves:        {name: "cspp.solves", runtime: true},
	CtrCSPPPoolHits:      {name: "cspp.pool_hits", runtime: true},
	CtrCSPPPoolMiss:      {name: "cspp.pool_misses", runtime: true},
	CtrBatchWaste:        {name: "anneal.batch_waste", runtime: true},
	CtrCacheHits:         {name: "cache.hits", runtime: true},
	CtrCacheMisses:       {name: "cache.misses", runtime: true},
	CtrCacheEvictions:    {name: "cache.evictions", runtime: true},
	CtrCacheRejects:      {name: "cache.rejects", runtime: true},
	CtrServeRequests:         {name: "server.requests", runtime: true},
	CtrServeShed:             {name: "server.shed", runtime: true},
	CtrServeCoalesced:        {name: "server.coalesced", runtime: true},
	CtrServeTimeoutQueued:    {name: "server.timeout_queued", runtime: true},
	CtrServeTimeoutComputing: {name: "server.timeout_computing", runtime: true},
	CtrServeAbandonedErrors:  {name: "server.abandoned_errors", runtime: true},
	CtrClientAttempts:        {name: "client.attempts", runtime: true},
	CtrClientRetries:         {name: "client.retries", runtime: true},
}

var watermarkMeta = [numWatermarks]metricMeta{
	MaxPeakStored:    {name: "memtrack.peak"},
	MaxRList:         {name: "optimizer.max_rlist"},
	MaxLSet:          {name: "optimizer.max_lset"},
	MaxCSPPN:         {name: "cspp.max_n"},
	MaxCSPPK:         {name: "cspp.max_k"},
	MaxServeQueue:      {name: "server.queue_peak", runtime: true},
	MaxServeInFlight:   {name: "server.inflight_peak", runtime: true},
	MaxCacheBytes:      {name: "cache.bytes_peak", runtime: true},
	MaxServeRetryAfter: {name: "server.retry_after_ms", runtime: true},
}

var histMeta = [numHists]metricMeta{
	HistListBefore: {name: "optimizer.list_before"},
	HistListAfter:  {name: "optimizer.list_after"},
	HistNodeEvalNs: {name: "optimizer.node_eval_ns", runtime: true},
	HistCellNs:     {name: "tables.cell_ns", runtime: true},
	HistAnnealNs:   {name: "anneal.eval_ns", runtime: true},
}

// Collector accumulates one run's telemetry. The zero value is not used;
// create collectors with New (or Shard, to share the epoch). All methods
// are safe for concurrent use and safe on a nil receiver.
type Collector struct {
	epoch      time.Time
	counters   [numCounters]paddedInt64
	watermarks [numWatermarks]paddedInt64
	hists      [numHists]Histogram

	mu     sync.Mutex
	spans  []Span
	tracks map[int]*trackAccum
}

// trackAccum aggregates per-track (per-worker) busy time for the report.
type trackAccum struct {
	busy  time.Duration
	spans int
}

// New returns an empty collector whose span clock starts now.
func New() *Collector {
	return &Collector{epoch: time.Now(), tracks: make(map[int]*trackAccum)}
}

// Shard returns an empty collector sharing c's epoch, so spans recorded in
// the shard stay on the parent's timeline and Merge composes them
// seamlessly. Shard of a nil collector is nil, so a disabled parent
// propagates the disabled state for free.
func (c *Collector) Shard() *Collector {
	if c == nil {
		return nil
	}
	return &Collector{epoch: c.epoch, tracks: make(map[int]*trackAccum)}
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// Add adds n to a counter.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[ctr].v.Add(n)
}

// Inc adds 1 to a counter.
func (c *Collector) Inc(ctr Counter) { c.Add(ctr, 1) }

// Observe raises a watermark to at least v.
func (c *Collector) Observe(w Watermark, v int64) {
	if c == nil {
		return
	}
	bumpMax(&c.watermarks[w].v, v)
}

// Record adds one observation to a histogram. Negative values clamp to 0.
func (c *Collector) Record(h Hist, v int64) {
	if c == nil {
		return
	}
	c.hists[h].observe(v)
}

// Counter returns a counter's current value (0 on a nil collector).
func (c *Collector) Counter(ctr Counter) int64 {
	if c == nil {
		return 0
	}
	return c.counters[ctr].v.Load()
}

// Watermark returns a watermark's current value (0 on a nil collector).
func (c *Collector) Watermark(w Watermark) int64 {
	if c == nil {
		return 0
	}
	return c.watermarks[w].v.Load()
}

// Now returns the time since the collector's epoch — the timeline spans
// live on. A nil collector reports 0 without reading the clock.
func (c *Collector) Now() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch)
}

// Merge folds the shards into c: counters add, watermarks max, histograms
// add bucketwise, spans and track accumulators concatenate. All scalar
// folds are commutative, so any merge order yields the same deterministic
// report section; callers that also need a canonical span order (the trace
// export) get it from WriteTrace's sort. Mirroring the optimizer's
// postorder stats merge, callers should still pass shards in their
// canonical order so span slices concatenate reproducibly for equal
// timestamps. Nil shards are skipped; merging into a nil collector is a
// no-op.
func (c *Collector) Merge(shards ...*Collector) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil || s == c {
			continue
		}
		for i := range s.counters {
			if v := s.counters[i].v.Load(); v != 0 {
				c.counters[i].v.Add(v)
			}
		}
		for i := range s.watermarks {
			bumpMax(&c.watermarks[i].v, s.watermarks[i].v.Load())
		}
		for i := range s.hists {
			c.hists[i].merge(&s.hists[i])
		}
		s.mu.Lock()
		spans := append([]Span(nil), s.spans...)
		tracks := make(map[int]trackAccum, len(s.tracks))
		for id, t := range s.tracks {
			tracks[id] = *t
		}
		s.mu.Unlock()
		c.mu.Lock()
		c.spans = append(c.spans, spans...)
		for id, t := range tracks {
			c.track(id).add(t)
		}
		c.mu.Unlock()
	}
}

// MergeScalars folds only the shards' counters, watermarks and histograms
// into c, discarding their spans and track accumulators. Long-lived callers
// (the serving layer folds one shard per request) use this to accumulate
// run metrics without growing the span slice without bound; Merge remains
// the right fold for bounded runs that want the trace.
func (c *Collector) MergeScalars(shards ...*Collector) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil || s == c {
			continue
		}
		for i := range s.counters {
			if v := s.counters[i].v.Load(); v != 0 {
				c.counters[i].v.Add(v)
			}
		}
		for i := range s.watermarks {
			bumpMax(&c.watermarks[i].v, s.watermarks[i].v.Load())
		}
		for i := range s.hists {
			c.hists[i].merge(&s.hists[i])
		}
	}
}

// track returns the accumulator for a track id; c.mu must be held.
func (c *Collector) track(id int) *trackAccum {
	t := c.tracks[id]
	if t == nil {
		t = &trackAccum{}
		c.tracks[id] = t
	}
	return t
}

func (t *trackAccum) add(o trackAccum) {
	t.busy += o.busy
	t.spans += o.spans
}
