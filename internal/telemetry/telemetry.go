// Package telemetry is the measurement substrate of the floorplan system:
// lock-free counters, watermarks and histograms, a span recorder, a
// structured JSON run report, a Chrome trace_event export of the parallel
// schedule, and an expvar/pprof debug listener.
//
// Every recording method is nil-safe: a nil *Collector is the disabled
// state and costs exactly one branch per call site, so the optimizer's hot
// path carries no instrumentation overhead when telemetry is off. All
// scalar instruments are atomics — recording from any number of goroutines
// needs no locks and allocates nothing.
//
// Determinism: counters, watermarks and histogram buckets are folded by
// commutative operations (addition, max), so their merged values do not
// depend on which worker recorded what, or in what order — the same
// property PR 1's postorder stats merge gives the optimizer's Stats. The
// Report therefore splits into a deterministic section (bit-identical for
// any worker count on a successful run) and a Runtime section (wall times,
// spans, pool and CAS churn) that legitimately varies between runs;
// Report.Canonical strips the latter for diffing.
package telemetry

import (
	"sync"
	"time"
)

// Counter identifies one of the fixed additive metrics. The registry is a
// compile-time enum rather than a name map so that recording is a single
// atomic add with no hashing or allocation.
type Counter uint8

const (
	// Optimizer: bottom-up evaluation of the binary block tree.
	CtrNodes             Counter = iota // blocks evaluated
	CtrLNodes                           // L-shaped blocks evaluated
	CtrGenerated                        // implementations generated before selection
	CtrStored                           // implementations retained after selection
	CtrCombineCandidates                // candidate pairs considered by combine ops
	CtrRSelections                      // R_Selection invocations
	CtrLSelections                      // L_Selection invocations
	CtrRSelectionError                  // total staircase area admitted by R_Selection
	CtrLSelectionError                  // total distance error admitted by L_Selection
	CtrMemDenials                       // memtrack admissions rejected at the limit

	// Annealer: topology search moves.
	CtrMovesProposed
	CtrMovesAccepted
	CtrMovesImproved

	// Tables: paper-table grid cells (one optimizer run each).
	CtrCells

	// Generator: workload synthesis.
	CtrGenModules
	CtrGenImpls

	// Runtime-only counters: nondeterministic across runs or worker counts.
	CtrMemCASRetries // failed CAS attempts in the memory tracker
	CtrCSPPSolves    // CSPP DP solves
	CtrCSPPPoolHits  // DP table pool reuses (capacity already sufficient)
	CtrCSPPPoolMiss  // DP table pool misses (fresh allocation)
	CtrBatchWaste    // speculative anneal candidates evaluated then discarded
	CtrFusedRSelect  // R_Selections solved by the fused column DP
	CtrFusedLSelect  // Manhattan L_Selections solved by the fused prefix-sum pass
	CtrTableLSelect  // L_Selections that fell back to the error table

	// Serving layer: cross-request cache and request-queue churn. All
	// runtime-only — hit rates and shedding depend on request arrival
	// order, never on the optimization computed.
	CtrCacheHits             // cache lookups answered from a stored entry
	CtrCacheMisses           // cache lookups that fell through to computation
	CtrCacheEvictions        // entries evicted to fit the byte budget
	CtrCacheRejects          // entries too large to cache under the budget
	CtrServeRequests         // optimize requests admitted by the server
	CtrServeShed             // optimize requests shed with 429 (queue full)
	CtrServeCoalesced        // misses answered by joining an in-flight computation
	CtrServeTimeoutQueued    // requests that hit their deadline while still queued
	CtrServeTimeoutComputing // requests that hit their deadline while computing
	CtrServeAbandonedErrors  // abandoned computations that finished with an error

	// Client: retry loop of floorplan.Client.
	CtrClientAttempts // HTTP attempts, including first tries
	CtrClientRetries  // attempts that were retries of a retryable failure

	// Cluster tier: consistent-hash fingerprint sharding across fpserve
	// backends. All runtime-only — forwarding and replication depend on
	// request arrival and peer health, never on the optimization computed.
	CtrClusterForwarded     // requests proxied to their owning peer
	CtrClusterForwardErrors // forwards the owner answered non-2xx (relayed)
	CtrClusterPeerFallback  // owner unreachable; computed locally instead
	CtrClusterInternal      // hop-marked requests served for peers
	CtrClusterHotFills      // peer-fill stores of owner-marked hot keys
	CtrClusterReplicaHits   // local cache hits on peer-owned keys

	// Subtree result store: per-node shape-curve memoization across
	// requests. All runtime-only — what resolves from the store depends on
	// traffic history, never on the optimization computed (splices are
	// byte-identical to fresh evaluation by construction).
	CtrSubstoreHits      // node records resolved from the subtree store
	CtrSubstoreMisses    // node lookups that fell through to evaluation
	CtrSubstoreEvictions // node records evicted to fit the byte budget
	CtrSubstoreRejects   // node records too large to admit under the budget

	numCounters
)

// Watermark identifies one of the fixed maximum-value metrics.
type Watermark uint8

const (
	MaxPeakStored Watermark = iota // memtrack peak (the paper's M)
	MaxRList                       // largest rectangular list stored
	MaxLSet                        // largest L-shaped set stored
	MaxCSPPN                       // largest CSPP instance size n
	MaxCSPPK                       // largest CSPP path length k
	MaxArenaBytes                  // peak combine-arena slab bytes charged

	// Runtime-only watermarks: high-water marks of serving-layer state.
	MaxServeQueue      // deepest optimize-request queue observed
	MaxServeInFlight   // most requests evaluating concurrently
	MaxCacheBytes      // largest cache byte footprint observed
	MaxServeRetryAfter // largest Retry-After hint sent, in milliseconds

	MaxClusterForwardInflight // most peer forwards in flight concurrently

	MaxSubstoreBytes // largest subtree-store byte footprint observed

	numWatermarks
)

// Hist identifies one of the fixed histograms.
type Hist uint8

const (
	// Deterministic, size-valued.
	HistListBefore Hist = iota // per-node implementation count before selection
	HistListAfter              // per-node implementation count after selection

	// Runtime-only, time-valued (nanoseconds).
	HistNodeEvalNs // per-node evaluation wall time
	HistCellNs     // per-table-cell wall time
	HistAnnealNs   // per-candidate annealer evaluation wall time

	// Serving layer: end-to-end /v1/optimize latency split by disposition,
	// so a scrape distinguishes cheap cache hits from computations and from
	// the shed/timeout tail. All runtime-only.
	HistServeHitNs       // answered from the cache
	HistServeMissNs      // led a fresh computation
	HistServeCoalescedNs // joined another request's in-flight computation
	HistServeBypassNs    // cache bypassed (NoCache) or disabled
	HistServeShedNs      // shed at admission or timed out (429/503)
	HistServeErrorNs     // invalid requests and failed computations

	// Cluster tier: forward hop round trips and the end-to-end latency of
	// the two cluster dispositions. All runtime-only.
	HistClusterForwardNs // one forward hop to the owning peer, round trip
	HistServeForwardedNs // end-to-end, answered by proxying to the owner
	HistServeFallbackNs  // end-to-end, computed locally after owner failure

	numHists
)

// metricMeta names an instrument, carries its scrape-facing help string
// (the HELP line of the Prometheus exposition) and classifies it as
// deterministic or runtime-only for report placement. Every enum value
// must have a name and a help string; a lint test enforces it so the enum
// and this table cannot drift apart.
type metricMeta struct {
	name    string
	help    string
	runtime bool
}

var counterMeta = [numCounters]metricMeta{
	CtrNodes:                 {name: "optimizer.nodes", help: "Floorplan blocks evaluated bottom-up."},
	CtrLNodes:                {name: "optimizer.l_nodes", help: "L-shaped blocks evaluated."},
	CtrGenerated:             {name: "optimizer.generated", help: "Implementations generated before selection."},
	CtrStored:                {name: "optimizer.stored", help: "Implementations retained after selection."},
	CtrCombineCandidates:     {name: "optimizer.combine_candidates", help: "Candidate pairs considered by combine operators."},
	CtrRSelections:           {name: "optimizer.r_selections", help: "R_Selection invocations."},
	CtrLSelections:           {name: "optimizer.l_selections", help: "L_Selection invocations."},
	CtrRSelectionError:       {name: "optimizer.r_selection_error", help: "Total staircase area admitted by R_Selection."},
	CtrLSelectionError:       {name: "optimizer.l_selection_error", help: "Total distance error admitted by L_Selection."},
	CtrMemDenials:            {name: "memtrack.denials", help: "Memory-tracker admissions rejected at the limit."},
	CtrMovesProposed:         {name: "anneal.proposed", help: "Topology moves proposed by the annealer."},
	CtrMovesAccepted:         {name: "anneal.accepted", help: "Topology moves accepted by the annealer."},
	CtrMovesImproved:         {name: "anneal.improved", help: "Accepted moves that improved the best area."},
	CtrCells:                 {name: "tables.cells", help: "Paper-table grid cells run (one optimization each)."},
	CtrGenModules:            {name: "gen.modules", help: "Modules synthesized by the workload generator."},
	CtrGenImpls:              {name: "gen.impls", help: "Implementations synthesized by the workload generator."},
	CtrMemCASRetries:         {name: "memtrack.cas_retries", help: "Failed CAS attempts in the memory tracker.", runtime: true},
	CtrCSPPSolves:            {name: "cspp.solves", help: "Constrained-shortest-path DP solves.", runtime: true},
	CtrCSPPPoolHits:          {name: "cspp.pool_hits", help: "CSPP DP table pool reuses.", runtime: true},
	CtrCSPPPoolMiss:          {name: "cspp.pool_misses", help: "CSPP DP table pool misses (fresh allocations).", runtime: true},
	CtrBatchWaste:            {name: "anneal.batch_waste", help: "Speculative anneal candidates evaluated then discarded.", runtime: true},
	CtrFusedRSelect:          {name: "selection.fused_r", help: "R_Selections solved by the fused column DP.", runtime: true},
	CtrFusedLSelect:          {name: "selection.fused_l", help: "Manhattan L_Selections solved by the fused prefix-sum pass.", runtime: true},
	CtrTableLSelect:          {name: "selection.table_l", help: "L_Selections that fell back to the materialized error table.", runtime: true},
	CtrCacheHits:             {name: "cache.hits", help: "Result-cache lookups answered from a stored entry.", runtime: true},
	CtrCacheMisses:           {name: "cache.misses", help: "Result-cache lookups that fell through to computation.", runtime: true},
	CtrCacheEvictions:        {name: "cache.evictions", help: "Result-cache entries evicted to fit the byte budget.", runtime: true},
	CtrCacheRejects:          {name: "cache.rejects", help: "Result-cache entries too large to admit under the budget.", runtime: true},
	CtrServeRequests:         {name: "server.requests", help: "Optimize requests admitted by the server.", runtime: true},
	CtrServeShed:             {name: "server.shed", help: "Optimize requests shed with 429 (queue full).", runtime: true},
	CtrServeCoalesced:        {name: "server.coalesced", help: "Cache misses answered by joining an in-flight computation.", runtime: true},
	CtrServeTimeoutQueued:    {name: "server.timeout_queued", help: "Requests that hit their deadline while still queued.", runtime: true},
	CtrServeTimeoutComputing: {name: "server.timeout_computing", help: "Requests that hit their deadline while computing.", runtime: true},
	CtrServeAbandonedErrors:  {name: "server.abandoned_errors", help: "Abandoned computations that finished with an error.", runtime: true},
	CtrClientAttempts:        {name: "client.attempts", help: "Client HTTP attempts, including first tries.", runtime: true},
	CtrClientRetries:         {name: "client.retries", help: "Client attempts that were retries of a retryable failure.", runtime: true},
	CtrClusterForwarded:      {name: "cluster.forwarded", help: "Requests proxied to their owning peer.", runtime: true},
	CtrClusterForwardErrors:  {name: "cluster.forward_errors", help: "Forwards whose owner answered non-2xx (relayed to the client).", runtime: true},
	CtrClusterPeerFallback:   {name: "cluster.peer_fallback", help: "Requests computed locally because their owner was unreachable.", runtime: true},
	CtrClusterInternal:       {name: "cluster.internal_requests", help: "Hop-marked optimize requests served for peers.", runtime: true},
	CtrClusterHotFills:       {name: "cluster.hot_fills", help: "Peer-fill cache stores of owner-marked hot keys.", runtime: true},
	CtrClusterReplicaHits:    {name: "cluster.replica_hits", help: "Local cache hits on keys owned by a peer.", runtime: true},
	CtrSubstoreHits:          {name: "substore.hits", help: "Subtree-store node records resolved without evaluation.", runtime: true},
	CtrSubstoreMisses:        {name: "substore.misses", help: "Subtree-store node lookups that fell through to evaluation.", runtime: true},
	CtrSubstoreEvictions:     {name: "substore.evictions", help: "Subtree-store node records evicted to fit the byte budget.", runtime: true},
	CtrSubstoreRejects:       {name: "substore.rejects", help: "Subtree-store node records too large to admit under the budget.", runtime: true},
}

var watermarkMeta = [numWatermarks]metricMeta{
	MaxPeakStored:      {name: "memtrack.peak", help: "Peak implementations stored (the paper's M)."},
	MaxRList:           {name: "optimizer.max_rlist", help: "Largest rectangular implementation list stored."},
	MaxLSet:            {name: "optimizer.max_lset", help: "Largest L-shaped implementation set stored."},
	MaxCSPPN:           {name: "cspp.max_n", help: "Largest CSPP instance size n."},
	MaxCSPPK:           {name: "cspp.max_k", help: "Largest CSPP path length k."},
	MaxArenaBytes:      {name: "arena.slab_bytes_peak", help: "Peak combine-arena slab bytes charged across all workers.", runtime: true},
	MaxServeQueue:      {name: "server.queue_peak", help: "Deepest optimize-request queue observed.", runtime: true},
	MaxServeInFlight:   {name: "server.inflight_peak", help: "Most requests evaluating concurrently.", runtime: true},
	MaxCacheBytes:      {name: "cache.bytes_peak", help: "Largest result-cache byte footprint observed.", runtime: true},
	MaxServeRetryAfter: {name: "server.retry_after_ms", help: "Largest Retry-After hint sent, in milliseconds.", runtime: true},
	MaxClusterForwardInflight: {name: "cluster.forward_inflight_peak",
		help: "Most peer forwards in flight concurrently.", runtime: true},
	MaxSubstoreBytes: {name: "substore.bytes_peak",
		help: "Largest subtree-store byte footprint observed.", runtime: true},
}

var histMeta = [numHists]metricMeta{
	HistListBefore:       {name: "optimizer.list_before", help: "Per-node implementation count before selection."},
	HistListAfter:        {name: "optimizer.list_after", help: "Per-node implementation count after selection."},
	HistNodeEvalNs:       {name: "optimizer.node_eval_ns", help: "Per-node evaluation wall time in nanoseconds.", runtime: true},
	HistCellNs:           {name: "tables.cell_ns", help: "Per-table-cell wall time in nanoseconds.", runtime: true},
	HistAnnealNs:         {name: "anneal.eval_ns", help: "Per-candidate annealer evaluation wall time in nanoseconds.", runtime: true},
	HistServeHitNs:       {name: "server.latency_hit_ns", help: "End-to-end latency of optimize requests answered from the cache, in nanoseconds.", runtime: true},
	HistServeMissNs:      {name: "server.latency_miss_ns", help: "End-to-end latency of optimize requests that led a fresh computation, in nanoseconds.", runtime: true},
	HistServeCoalescedNs: {name: "server.latency_coalesced_ns", help: "End-to-end latency of optimize requests that joined an in-flight computation, in nanoseconds.", runtime: true},
	HistServeBypassNs:    {name: "server.latency_bypass_ns", help: "End-to-end latency of optimize requests that bypassed the cache or ran with it disabled, in nanoseconds.", runtime: true},
	HistServeShedNs:      {name: "server.latency_shed_ns", help: "End-to-end latency of optimize requests shed or timed out (429/503), in nanoseconds.", runtime: true},
	HistServeErrorNs:     {name: "server.latency_error_ns", help: "End-to-end latency of invalid or failed optimize requests, in nanoseconds.", runtime: true},
	HistClusterForwardNs: {name: "cluster.forward_ns", help: "Round-trip time of one forward hop to the owning peer, in nanoseconds.", runtime: true},
	HistServeForwardedNs: {name: "server.latency_forwarded_ns", help: "End-to-end latency of optimize requests answered by proxying to their owning peer, in nanoseconds.", runtime: true},
	HistServeFallbackNs:  {name: "server.latency_fallback_ns", help: "End-to-end latency of optimize requests computed locally after their owner was unreachable, in nanoseconds.", runtime: true},
}

// Collector accumulates one run's telemetry. The zero value is not used;
// create collectors with New (or Shard, to share the epoch). All methods
// are safe for concurrent use and safe on a nil receiver.
type Collector struct {
	epoch      time.Time
	counters   [numCounters]paddedInt64
	watermarks [numWatermarks]paddedInt64
	hists      [numHists]Histogram

	mu      sync.Mutex
	spans   []Span
	tracks  map[int]*trackAccum
	traceID string // default TraceID stamped on recorded spans
}

// trackAccum aggregates per-track (per-worker) busy time for the report.
type trackAccum struct {
	busy  time.Duration
	spans int
}

// New returns an empty collector whose span clock starts now.
func New() *Collector {
	return &Collector{epoch: time.Now(), tracks: make(map[int]*trackAccum)}
}

// Shard returns an empty collector sharing c's epoch, so spans recorded in
// the shard stay on the parent's timeline and Merge composes them
// seamlessly. Shard of a nil collector is nil, so a disabled parent
// propagates the disabled state for free.
func (c *Collector) Shard() *Collector {
	if c == nil {
		return nil
	}
	return &Collector{epoch: c.epoch, tracks: make(map[int]*trackAccum)}
}

// Enabled reports whether the collector records anything.
func (c *Collector) Enabled() bool { return c != nil }

// SetTraceID sets the default trace identity stamped on every span
// subsequently recorded on this collector (spans carrying their own
// TraceID keep it). The serving layer sets it on per-request shards so the
// optimizer's spans — recorded deep below the HTTP layer, which never sees
// the request — still land in the request's trace.
func (c *Collector) SetTraceID(id string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.traceID = id
	c.mu.Unlock()
}

// Add adds n to a counter.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[ctr].v.Add(n)
}

// Inc adds 1 to a counter.
func (c *Collector) Inc(ctr Counter) { c.Add(ctr, 1) }

// Observe raises a watermark to at least v.
func (c *Collector) Observe(w Watermark, v int64) {
	if c == nil {
		return
	}
	bumpMax(&c.watermarks[w].v, v)
}

// Record adds one observation to a histogram. Negative values clamp to 0.
func (c *Collector) Record(h Hist, v int64) {
	if c == nil {
		return
	}
	c.hists[h].Observe(v)
}

// Counter returns a counter's current value (0 on a nil collector).
func (c *Collector) Counter(ctr Counter) int64 {
	if c == nil {
		return 0
	}
	return c.counters[ctr].v.Load()
}

// Watermark returns a watermark's current value (0 on a nil collector).
func (c *Collector) Watermark(w Watermark) int64 {
	if c == nil {
		return 0
	}
	return c.watermarks[w].v.Load()
}

// Now returns the time since the collector's epoch — the timeline spans
// live on. A nil collector reports 0 without reading the clock.
func (c *Collector) Now() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch)
}

// Merge folds the shards into c: counters add, watermarks max, histograms
// add bucketwise, spans and track accumulators concatenate. All scalar
// folds are commutative, so any merge order yields the same deterministic
// report section; callers that also need a canonical span order (the trace
// export) get it from WriteTrace's sort. Mirroring the optimizer's
// postorder stats merge, callers should still pass shards in their
// canonical order so span slices concatenate reproducibly for equal
// timestamps. Nil shards are skipped; merging into a nil collector is a
// no-op.
func (c *Collector) Merge(shards ...*Collector) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil || s == c {
			continue
		}
		for i := range s.counters {
			if v := s.counters[i].v.Load(); v != 0 {
				c.counters[i].v.Add(v)
			}
		}
		for i := range s.watermarks {
			bumpMax(&c.watermarks[i].v, s.watermarks[i].v.Load())
		}
		for i := range s.hists {
			c.hists[i].Merge(&s.hists[i])
		}
		s.mu.Lock()
		spans := append([]Span(nil), s.spans...)
		tracks := make(map[int]trackAccum, len(s.tracks))
		for id, t := range s.tracks {
			tracks[id] = *t
		}
		s.mu.Unlock()
		c.mu.Lock()
		c.spans = append(c.spans, spans...)
		for id, t := range tracks {
			c.track(id).add(t)
		}
		c.mu.Unlock()
	}
}

// MergeScalars folds only the shards' counters, watermarks and histograms
// into c, discarding their spans and track accumulators. Long-lived callers
// (the serving layer folds one shard per request) use this to accumulate
// run metrics without growing the span slice without bound; Merge remains
// the right fold for bounded runs that want the trace.
func (c *Collector) MergeScalars(shards ...*Collector) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil || s == c {
			continue
		}
		for i := range s.counters {
			if v := s.counters[i].v.Load(); v != 0 {
				c.counters[i].v.Add(v)
			}
		}
		for i := range s.watermarks {
			bumpMax(&c.watermarks[i].v, s.watermarks[i].v.Load())
		}
		for i := range s.hists {
			c.hists[i].Merge(&s.hists[i])
		}
	}
}

// track returns the accumulator for a track id; c.mu must be held.
func (c *Collector) track(id int) *trackAccum {
	t := c.tracks[id]
	if t == nil {
		t = &trackAccum{}
		c.tracks[id] = t
	}
	return t
}

func (t *trackAccum) add(o trackAccum) {
	t.busy += o.busy
	t.spans += o.spans
}
