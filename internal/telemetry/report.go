package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the report document format. Bump on incompatible
// changes so downstream diff tooling can refuse mixed comparisons.
// v2: histogram buckets switched from power-of-two to log-linear
// (16 sub-buckets per octave); quantiles from a v2 report are accurate to
// ~3%, and v1/v2 bucket lists must never be diffed against each other.
const Schema = "floorplan/telemetry/v2"

// StageSpan is one coarse pipeline phase (restructure, evaluate,
// traceback, ...) in the report, in start order.
type StageSpan struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// CatSummary aggregates all spans of one category.
type CatSummary struct {
	Cat     string `json:"cat"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// TrackStat is one logical thread's occupancy: total span time credited to
// the track. Busy/wall is the worker-pool saturation the trace export
// shows visually.
type TrackStat struct {
	Track  int   `json:"track"`
	BusyNs int64 `json:"busy_ns"`
	Spans  int   `json:"spans"`
}

// RuntimeReport is the nondeterministic half of a report: wall times, span
// accounting, and churn counters that vary run to run (or worker count to
// worker count) even when the computation is bit-identical.
type RuntimeReport struct {
	WallNs     int64                   `json:"wall_ns"`
	Counters   map[string]int64        `json:"counters"`
	Watermarks map[string]int64        `json:"watermarks,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Stages     []StageSpan             `json:"stages,omitempty"`
	Categories []CatSummary            `json:"categories,omitempty"`
	Tracks     []TrackStat             `json:"tracks,omitempty"`
	SpanCount  int                     `json:"span_count"`
}

// Report is the structured run record: a deterministic section whose
// values depend only on the computation performed (identical for any
// worker count on a successful run), and a Runtime section that does not.
type Report struct {
	Schema     string                  `json:"schema"`
	Counters   map[string]int64        `json:"counters"`
	Watermarks map[string]int64        `json:"watermarks"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Runtime    RuntimeReport           `json:"runtime"`
}

// CatStage is the span category the report lists individually as pipeline
// stages.
const CatStage = "stage"

// Report snapshots the collector. A nil collector yields an empty (but
// schema-valid) report.
func (c *Collector) Report() *Report {
	r := &Report{
		Schema:     Schema,
		Counters:   map[string]int64{},
		Watermarks: map[string]int64{},
		Histograms: map[string]HistSnapshot{},
		Runtime: RuntimeReport{
			Counters:   map[string]int64{},
			Histograms: map[string]HistSnapshot{},
		},
	}
	if c == nil {
		return r
	}
	for i := Counter(0); i < numCounters; i++ {
		v := c.counters[i].v.Load()
		if v == 0 {
			continue
		}
		if counterMeta[i].runtime {
			r.Runtime.Counters[counterMeta[i].name] = v
		} else {
			r.Counters[counterMeta[i].name] = v
		}
	}
	for i := Watermark(0); i < numWatermarks; i++ {
		v := c.watermarks[i].v.Load()
		if v == 0 {
			continue
		}
		if watermarkMeta[i].runtime {
			if r.Runtime.Watermarks == nil {
				r.Runtime.Watermarks = map[string]int64{}
			}
			r.Runtime.Watermarks[watermarkMeta[i].name] = v
		} else {
			r.Watermarks[watermarkMeta[i].name] = v
		}
	}
	for i := Hist(0); i < numHists; i++ {
		s := c.hists[i].Snapshot()
		if s.Count == 0 {
			continue
		}
		if histMeta[i].runtime {
			r.Runtime.Histograms[histMeta[i].name] = s
		} else {
			r.Histograms[histMeta[i].name] = s
		}
	}
	r.Runtime.WallNs = c.Now().Nanoseconds()
	spans := c.Spans()
	r.Runtime.SpanCount = len(spans)
	cats := map[string]*CatSummary{}
	for _, s := range spans {
		if s.Cat == CatStage {
			r.Runtime.Stages = append(r.Runtime.Stages, StageSpan{
				Name:    s.Name,
				StartNs: s.Start.Nanoseconds(),
				DurNs:   s.Dur.Nanoseconds(),
			})
		}
		cs := cats[s.Cat]
		if cs == nil {
			cs = &CatSummary{Cat: s.Cat}
			cats[s.Cat] = cs
		}
		cs.Count++
		cs.TotalNs += s.Dur.Nanoseconds()
	}
	sort.Slice(r.Runtime.Stages, func(i, j int) bool {
		a, b := r.Runtime.Stages[i], r.Runtime.Stages[j]
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		return a.Name < b.Name
	})
	for _, cs := range cats {
		r.Runtime.Categories = append(r.Runtime.Categories, *cs)
	}
	sort.Slice(r.Runtime.Categories, func(i, j int) bool {
		return r.Runtime.Categories[i].Cat < r.Runtime.Categories[j].Cat
	})
	c.mu.Lock()
	for id, t := range c.tracks {
		r.Runtime.Tracks = append(r.Runtime.Tracks, TrackStat{
			Track: id, BusyNs: t.busy.Nanoseconds(), Spans: t.spans,
		})
	}
	c.mu.Unlock()
	sort.Slice(r.Runtime.Tracks, func(i, j int) bool {
		return r.Runtime.Tracks[i].Track < r.Runtime.Tracks[j].Track
	})
	return r
}

// Canonical returns a copy of the report with the Runtime section emptied.
// Two runs performing the same computation — in particular, the same run
// at different worker counts — marshal canonical reports to identical
// bytes, which is what makes telemetry reports diffable across perf work.
func (r *Report) Canonical() *Report {
	out := *r
	out.Runtime = RuntimeReport{
		Counters:   map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	return &out
}

// JSON marshals the report indented, ending with a newline.
func (r *Report) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// WriteReport snapshots the collector and writes the indented JSON report.
func (c *Collector) WriteReport(w io.Writer) error {
	raw, err := c.Report().JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// ParseReport unmarshals and schema-checks a report document — the
// round-trip gate the bench tooling runs on every report it writes.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: decoding report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("telemetry: report schema %q, want %q", r.Schema, Schema)
	}
	return &r, nil
}
