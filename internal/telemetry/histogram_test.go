package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketBoundaries pins the log-linear bucketing: values below
// histSubCount get exact single-value buckets, and octave o >= 1 splits
// [2^(histSubBits+o-1), 2^(histSubBits+o)) into histSubCount linear
// buckets of width 2^(o-1).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{15, 15},
		// Octave 1: [16, 32), width-1 buckets.
		{16, 16}, {17, 17}, {31, 31},
		// Octave 2: [32, 64), width-2 buckets.
		{32, 32}, {33, 32}, {34, 33}, {63, 47},
		// Octave 3: [64, 128), width-4 buckets.
		{64, 48}, {67, 48}, {68, 49},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	// Every value lives inside its bucket's bounds, and buckets tile the
	// value range contiguously.
	for _, v := range []int64{0, 1, 7, 15, 16, 100, 1023, 1024, 900000, 1 << 40, math.MaxInt64} {
		lo, hi := bucketBounds(bucketIndex(v))
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Errorf("value %d outside its bucket bounds [%d, %d)", v, lo, hi)
		}
	}
	prevHi := int64(0)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, want contiguous %d", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty or inverted: [%d, %d)", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("top bucket ends at %d, want MaxInt64", prevHi)
	}
	// The relative bucket width is bounded by 2^-histSubBits everywhere
	// past the exact range — the resolution guarantee behind Quantile.
	for i := histSubCount; i < histBuckets-1; i++ {
		lo, hi := bucketBounds(i)
		if float64(hi-lo)/float64(lo) > 1.0/histSubCount+1e-12 {
			t.Fatalf("bucket %d [%d, %d) wider than 1/%d relative", i, lo, hi, histSubCount)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 8, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 15 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Min != 0 || s.Max != 8 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	want := []BucketCount{
		{Lo: 0, Hi: 1, N: 2}, // 0 and clamped -5
		{Lo: 1, Hi: 2, N: 1},
		{Lo: 3, Hi: 4, N: 2},
		{Lo: 8, Hi: 9, N: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

// exactQuantile computes the order statistic Quantile approximates:
// the ⌈q·n⌉-th smallest value of the sorted stream.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileRelativeError is the harness's accuracy contract: across
// random value streams spanning several orders of magnitude, every
// reported quantile is within 5% of the exact sorted order statistic
// (the log-linear layout guarantees ~3.1%), and merged snapshots answer
// exactly as the union stream would.
func TestQuantileRelativeError(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var a, b Histogram
		n := 200 + rng.Intn(2000)
		values := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			// Log-uniform draws stress every octave from exact single-value
			// buckets up through ~10^9 (nanosecond latencies).
			v := int64(math.Exp(rng.Float64() * math.Log(2e9)))
			values = append(values, v)
			if i%2 == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		var union Histogram
		union.Merge(&a)
		union.Merge(&b)
		sorted := append([]int64(nil), values...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		snap := union.Snapshot()
		for _, q := range quantiles {
			exact := exactQuantile(sorted, q)
			got := snap.Quantile(q)
			relErr := math.Abs(float64(got)-float64(exact)) / math.Max(float64(exact), 1)
			if relErr > 0.05 {
				t.Fatalf("trial %d: Quantile(%v) = %d, exact %d (rel err %.3f > 0.05)",
					trial, q, got, exact, relErr)
			}
		}

		// A snapshot-level merge of the two halves must equal the union
		// stream's snapshot bucket for bucket.
		sa, sb := a.Snapshot(), b.Snapshot()
		sa.Merge(sb)
		if sa.Count != snap.Count || sa.Sum != snap.Sum || sa.Min != snap.Min || sa.Max != snap.Max {
			t.Fatalf("trial %d: merged snapshot totals %+v differ from union %+v", trial, sa, snap)
		}
		if len(sa.Buckets) != len(snap.Buckets) {
			t.Fatalf("trial %d: merged snapshot has %d buckets, union %d",
				trial, len(sa.Buckets), len(snap.Buckets))
		}
		for i := range sa.Buckets {
			if sa.Buckets[i] != snap.Buckets[i] {
				t.Fatalf("trial %d: merged bucket %d = %+v, union %+v",
					trial, i, sa.Buckets[i], snap.Buckets[i])
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot Quantile = %d, want 0", got)
	}
	var h Histogram
	h.Observe(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %d, want 42", q, got)
		}
	}
	// Min/Max clamping keeps the extremes exact even though the bucket
	// midpoint would round away from them.
	var g Histogram
	g.Observe(1000)
	g.Observe(1001)
	if got := g.Quantile(0); got != 1000 {
		t.Fatalf("Quantile(0) = %d, want the exact min 1000", got)
	}
	if got := g.Quantile(1); got != 1001 {
		t.Fatalf("Quantile(1) = %d, want the exact max 1001", got)
	}
}

// TestHotPathAllocationFree verifies the two instrumentation fast paths
// the optimizer relies on: the nil-collector no-op and live scalar
// recording must both be allocation-free.
func TestHotPathAllocationFree(t *testing.T) {
	var nilC *Collector
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Add(CtrGenerated, 3)
		nilC.Inc(CtrNodes)
		nilC.Observe(MaxPeakStored, 9)
		nilC.Record(HistListBefore, 4)
	}); n != 0 {
		t.Fatalf("nil collector fast path allocates %v/op", n)
	}
	c := New()
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(CtrGenerated, 3)
		c.Inc(CtrNodes)
		c.Observe(MaxPeakStored, 9)
		c.Record(HistListBefore, 4)
	}); n != 0 {
		t.Fatalf("live scalar recording allocates %v/op", n)
	}
}

// BenchmarkHistogramObserve asserts the record path stays zero-alloc at
// the new bucket resolution — the harness records every request latency
// through it, so a single allocation per observation would dominate.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 977)
	}
	if testing.AllocsPerRun(1000, func() { h.Observe(12345) }) != 0 {
		b.Fatal("Histogram.Observe allocates")
	}
}
