package telemetry

import (
	"math"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucketing: bucket 0 holds
// exactly the value 0 and bucket i holds [2^(i-1), 2^i).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{math.MaxInt64, 63},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		lo, hi := bucketBounds(bucketIndex(tc.v))
		if tc.v < lo || tc.v >= hi && hi != math.MaxInt64 {
			t.Errorf("value %d outside its bucket bounds [%d, %d)", tc.v, lo, hi)
		}
	}
	// Explicit bounds of the first few buckets.
	bounds := [][2]int64{{0, 1}, {1, 2}, {2, 4}, {4, 8}, {8, 16}}
	for i, want := range bounds {
		lo, hi := bucketBounds(i)
		if lo != want[0] || hi != want[1] {
			t.Errorf("bucketBounds(%d) = [%d, %d), want [%d, %d)", i, lo, hi, want[0], want[1])
		}
	}
	if lo, hi := bucketBounds(63); lo != 1<<62 || hi != math.MaxInt64 {
		t.Errorf("top bucket = [%d, %d), want [2^62, MaxInt64)", lo, hi)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 8, -5} {
		h.observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 15 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Min != 0 || s.Max != 8 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	want := []BucketCount{
		{Lo: 0, Hi: 1, N: 2}, // 0 and clamped -5
		{Lo: 1, Hi: 2, N: 1},
		{Lo: 2, Hi: 4, N: 2},
		{Lo: 8, Hi: 16, N: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestHotPathAllocationFree verifies the two instrumentation fast paths
// the optimizer relies on: the nil-collector no-op and live scalar
// recording must both be allocation-free.
func TestHotPathAllocationFree(t *testing.T) {
	var nilC *Collector
	if n := testing.AllocsPerRun(1000, func() {
		nilC.Add(CtrGenerated, 3)
		nilC.Inc(CtrNodes)
		nilC.Observe(MaxPeakStored, 9)
		nilC.Record(HistListBefore, 4)
	}); n != 0 {
		t.Fatalf("nil collector fast path allocates %v/op", n)
	}
	c := New()
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(CtrGenerated, 3)
		c.Inc(CtrNodes)
		c.Observe(MaxPeakStored, 9)
		c.Record(HistListBefore, 4)
	}); n != 0 {
		t.Fatalf("live scalar recording allocates %v/op", n)
	}
}
