// Package buildinfo resolves the running binary's embedded build identity
// (VCS revision, dirty flag, Go toolchain) once, from debug.ReadBuildInfo.
// The serving layer surfaces it as the build_info gauge on /metrics and the
// version block of /v1/stats, which is what lets the cluster stats
// aggregator flag a mixed-version ring — the classic silent cause of
// "only some nodes show the regression".
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// Info is the build identity of this binary.
type Info struct {
	// Revision is the VCS revision the binary was built from ("unknown"
	// when the build carried no VCS stamp, e.g. test binaries).
	Revision string `json:"revision"`
	// Modified is true when the working tree was dirty at build time.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var get = sync.OnceValue(func() Info {
	info := Info{Revision: "unknown", GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				info.Revision = s.Value
			}
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Get returns the binary's build identity; the lookup runs once.
func Get() Info { return get() }
