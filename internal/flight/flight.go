// Package flight implements per-key single-flight duplicate suppression
// for the serving layer: concurrent requests for the same content address
// share one computation instead of burning one worker slot each on
// byte-identical work.
//
// The lifecycle is split into explicit steps because the serving layer's
// computations are not plain function calls — they first wait for a worker
// slot, may be abandoned while queued, and keep running detached after
// every requester has timed out:
//
//	c, leader := g.Join(key)      // register as a waiter
//	defer c.Leave()               // deregister (last one out may abandon)
//	if leader {
//	    go func() {
//	        // wait for resources, racing c.Abandoned()
//	        if !c.Begin() { return }   // everyone left; release and bail
//	        v, err := compute()
//	        c.Finish(v, err)
//	    }()
//	}
//	select {
//	case <-c.Done():   // result via c.Result()
//	case <-ctx.Done(): // detach; the computation keeps running
//	}
//
// The first Join of a key creates the Call and nominates the caller as
// leader; later Joins attach as followers. Every waiter waits under its own
// deadline and detaches independently with Leave. If all waiters leave
// before the leader committed with Begin, the call is abandoned: Abandoned
// fires so the leader can stop waiting for resources it no longer needs.
// Once Begin succeeds the computation runs to completion even with zero
// waiters attached — exactly the serving layer's detached-computation
// contract, where an abandoned run still warms the cache for the retry.
package flight

import (
	"errors"
	"sync"
)

// ErrAbandoned is the result of a call whose waiters all left before the
// computation began; no result was produced.
var ErrAbandoned = errors.New("flight: abandoned before computation began")

// Group coalesces concurrent computations of the same key. The zero value
// is ready to use. All methods are safe for concurrent use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*Call[V]
}

// Call is one shared computation. Create calls with Group.Join (shared) or
// Solo (unshared); the zero value is not usable.
type Call[V any] struct {
	done      chan struct{} // closed once val/err are published
	abandoned chan struct{} // closed when the last waiter leaves before Begin
	detach    func()        // removes the call from its group (nil for Solo)

	mu       sync.Mutex
	waiters  int
	begun    bool
	finished bool
	tag      any
	val      V
	err      error
}

func newCall[V any]() *Call[V] {
	return &Call[V]{
		done:      make(chan struct{}),
		abandoned: make(chan struct{}),
		waiters:   1,
	}
}

// Join registers the caller as a waiter on key's call, creating the call —
// and nominating the caller as its leader — when none is in flight. The
// leader must start exactly one computation that eventually calls Begin and
// Finish (or observes Abandoned); followers only wait.
func (g *Group[K, V]) Join(key K) (c *Call[V], leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok && c.addWaiter() {
		return c, false
	}
	if g.calls == nil {
		g.calls = make(map[K]*Call[V])
	}
	c = newCall[V]()
	c.detach = func() {
		g.mu.Lock()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
	}
	g.calls[key] = c
	return c, true
}

// Solo returns an unshared call outside any group: the caller is both the
// only waiter and the leader. Cache-bypassing requests use it to get the
// same lifecycle — deadline-aware resource wait, abandon on detach,
// detached completion — without sharing their result.
func Solo[V any]() *Call[V] { return newCall[V]() }

// Stats reports the group's active calls and attached waiters, for tests
// and introspection.
func (g *Group[K, V]) Stats() (calls, waiters int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.calls {
		c.mu.Lock()
		calls++
		waiters += c.waiters
		c.mu.Unlock()
	}
	return calls, waiters
}

// addWaiter attaches one more waiter; it reports false when the call has
// already completed (finished or abandoned), in which case the joiner must
// start a fresh call instead.
func (c *Call[V]) addWaiter() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return false
	}
	c.waiters++
	return true
}

// Leave detaches a waiter. The last waiter to leave before Begin abandons
// the call: Abandoned fires, the call leaves its group, and Done reports
// ErrAbandoned. Each Join (and each Solo) pairs with exactly one Leave.
func (c *Call[V]) Leave() {
	c.mu.Lock()
	c.waiters--
	abandon := c.waiters == 0 && !c.begun && !c.finished
	if abandon {
		c.finished = true
		c.err = ErrAbandoned
	}
	c.mu.Unlock()
	if abandon {
		if c.detach != nil {
			c.detach()
		}
		close(c.abandoned)
		close(c.done)
	}
}

// Begin commits the leader to computing. It reports false when the call
// was abandoned first; the leader must then release whatever resources it
// acquired and skip the computation. After a successful Begin the call can
// no longer be abandoned.
func (c *Call[V]) Begin() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished {
		return false
	}
	c.begun = true
	return true
}

// SetTag attaches an arbitrary annotation to the call. The serving layer's
// leader stamps its request identity (trace context, timing slots) here
// immediately after Join, so followers coalescing onto the call can report
// which computation answered them. Later SetTag calls overwrite.
func (c *Call[V]) SetTag(tag any) {
	c.mu.Lock()
	c.tag = tag
	c.mu.Unlock()
}

// Tag returns the annotation set by SetTag (nil before any). A follower
// that joined between the leader's Join and SetTag may observe nil until
// the call finishes; reads after Done are ordered after the leader's
// SetTag.
func (c *Call[V]) Tag() any {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tag
}

// Begun reports whether the computation has started — i.e. whether a
// waiter's deadline expired while computing rather than while queued.
func (c *Call[V]) Begun() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.begun
}

// Finish publishes the result, removes the call from its group and wakes
// every waiter. It returns the number of waiters still attached — zero
// means everyone detached before the result arrived (the computation ran
// abandoned and nobody will observe err). Finishing an already-completed
// call is a no-op returning 0.
func (c *Call[V]) Finish(val V, err error) int {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return 0
	}
	c.finished = true
	c.val, c.err = val, err
	n := c.waiters
	c.mu.Unlock()
	if c.detach != nil {
		c.detach()
	}
	close(c.done)
	return n
}

// Done is closed once the result is available (or the call was abandoned).
func (c *Call[V]) Done() <-chan struct{} { return c.done }

// Abandoned is closed when every waiter left before Begin; the leader's
// resource wait selects on it.
func (c *Call[V]) Abandoned() <-chan struct{} { return c.abandoned }

// Result returns the published value and error; it must only be called
// after Done is closed.
func (c *Call[V]) Result() (V, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val, c.err
}
