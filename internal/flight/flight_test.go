package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLeaderFollowerShareResult(t *testing.T) {
	var g Group[string, int]
	c, leader := g.Join("k")
	if !leader {
		t.Fatal("first join is not the leader")
	}
	f, follower := g.Join("k")
	if follower {
		t.Fatal("second join unexpectedly became leader")
	}
	if f != c {
		t.Fatal("follower joined a different call")
	}
	if calls, waiters := g.Stats(); calls != 1 || waiters != 2 {
		t.Fatalf("stats = %d calls / %d waiters, want 1/2", calls, waiters)
	}

	go func() {
		if !c.Begin() {
			t.Error("Begin failed with waiters attached")
			return
		}
		c.Finish(42, nil)
	}()

	for _, w := range []*Call[int]{c, f} {
		<-w.Done()
		v, err := w.Result()
		if v != 42 || err != nil {
			t.Fatalf("Result = %d, %v, want 42, nil", v, err)
		}
		w.Leave()
	}
	if calls, waiters := g.Stats(); calls != 0 || waiters != 0 {
		t.Fatalf("stats after finish = %d calls / %d waiters, want 0/0", calls, waiters)
	}
}

func TestAbandonBeforeBegin(t *testing.T) {
	var g Group[string, int]
	c, _ := g.Join("k")
	f, _ := g.Join("k")

	c.Leave()
	select {
	case <-c.Abandoned():
		t.Fatal("abandoned with a waiter still attached")
	default:
	}
	f.Leave()

	select {
	case <-c.Abandoned():
	case <-time.After(time.Second):
		t.Fatal("last Leave before Begin did not abandon the call")
	}
	if c.Begin() {
		t.Fatal("Begin succeeded on an abandoned call")
	}
	<-c.Done()
	if _, err := c.Result(); !errors.Is(err, ErrAbandoned) {
		t.Fatalf("abandoned call result error = %v, want ErrAbandoned", err)
	}
	if calls, _ := g.Stats(); calls != 0 {
		t.Fatalf("abandoned call still registered (%d calls)", calls)
	}
	// The key is free again; the next join starts a fresh call.
	c2, leader := g.Join("k")
	if !leader || c2 == c {
		t.Fatal("join after abandon did not start a fresh call")
	}
}

func TestBegunBlocksAbandon(t *testing.T) {
	var g Group[string, int]
	c, _ := g.Join("k")
	if !c.Begin() {
		t.Fatal("Begin failed")
	}
	c.Leave() // last waiter leaves, but the computation already started
	select {
	case <-c.Abandoned():
		t.Fatal("call abandoned after Begin")
	default:
	}
	if n := c.Finish(7, nil); n != 0 {
		t.Fatalf("Finish reported %d waiters, want 0 (everyone left)", n)
	}
	<-c.Done()
	if v, err := c.Result(); v != 7 || err != nil {
		t.Fatalf("detached result = %d, %v, want 7, nil", v, err)
	}
}

func TestFinishReportsWaiters(t *testing.T) {
	var g Group[string, int]
	c, _ := g.Join("k")
	g.Join("k")
	c.Begin()
	if n := c.Finish(1, errors.New("boom")); n != 2 {
		t.Fatalf("Finish reported %d waiters, want 2", n)
	}
	if n := c.Finish(2, nil); n != 0 {
		t.Fatalf("second Finish reported %d waiters, want 0", n)
	}
	if v, err := c.Result(); v != 1 || err == nil {
		t.Fatalf("second Finish overwrote the result: %d, %v", v, err)
	}
}

func TestJoinAfterFinishStartsFresh(t *testing.T) {
	var g Group[string, int]
	c, _ := g.Join("k")
	c.Begin()
	c.Finish(1, nil)
	c.Leave()
	c2, leader := g.Join("k")
	if !leader || c2 == c {
		t.Fatal("join after finish did not start a fresh call")
	}
}

func TestSoloLifecycle(t *testing.T) {
	c := Solo[string]()
	go func() {
		if c.Begin() {
			c.Finish("done", nil)
		}
	}()
	<-c.Done()
	if v, err := c.Result(); v != "done" || err != nil {
		t.Fatalf("solo result = %q, %v", v, err)
	}
	c.Leave()

	// A solo call whose waiter leaves first abandons like a shared one.
	c = Solo[string]()
	c.Leave()
	select {
	case <-c.Abandoned():
	case <-time.After(time.Second):
		t.Fatal("solo call not abandoned after its only waiter left")
	}
}

// TestConcurrentJoins hammers one key from many goroutines under the race
// detector: exactly one computation runs per call generation and every
// attached waiter observes its value.
func TestConcurrentJoins(t *testing.T) {
	var g Group[int, int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, leader := g.Join(0)
			defer c.Leave()
			if leader {
				go func() {
					if !c.Begin() {
						return
					}
					n := computes.Add(1)
					c.Finish(int(n), nil)
				}()
			}
			<-c.Done()
			if _, err := c.Result(); err != nil {
				t.Errorf("waiter got error: %v", err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n < 1 || n > 64 {
		t.Fatalf("computes = %d, want within [1, 64]", n)
	}
	if calls, waiters := g.Stats(); calls != 0 || waiters != 0 {
		t.Fatalf("stats after drain = %d calls / %d waiters, want 0/0", calls, waiters)
	}
}

func TestTagSharedWithFollowers(t *testing.T) {
	var g Group[string, int]
	c, leader := g.Join("k")
	if !leader {
		t.Fatal("first join is not the leader")
	}
	if c.Tag() != nil {
		t.Fatalf("Tag before SetTag = %v, want nil", c.Tag())
	}
	type meta struct{ id string }
	c.SetTag(&meta{id: "leader"})

	f, _ := g.Join("k")
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-f.Done()
		m, ok := f.Tag().(*meta)
		if !ok || m.id != "leader" {
			t.Errorf("follower Tag after Done = %v, want the leader's meta", f.Tag())
		}
		f.Leave()
	}()

	if !c.Begin() {
		t.Fatal("Begin failed")
	}
	c.Finish(1, nil)
	<-done
	c.Leave()
}

func TestSetTagOverwrites(t *testing.T) {
	c := Solo[int]()
	c.SetTag(1)
	c.SetTag(2)
	if got := c.Tag(); got != 2 {
		t.Fatalf("Tag = %v, want 2", got)
	}
	c.Begin()
	c.Finish(0, nil)
	c.Leave()
}
