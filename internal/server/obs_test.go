package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"floorplan/internal/slogx"
	"floorplan/internal/telemetry"
)

// logBuffer is a goroutine-safe sink for the access log: handler goroutines
// write concurrently.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// records decodes every JSON log line.
func (b *logBuffer) records(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestTraceparentRoundTrip: a client-supplied traceparent header surfaces
// as the response's trace ID, in the access-log record (with the caller's
// span as parent_span_id), and the server's span ID is fresh.
func TestTraceparentRoundTrip(t *testing.T) {
	const (
		clientTrace = "0af7651916cd43dd8448eb211c80319c"
		clientSpan  = "b7ad6b7169203331"
		header      = "00-" + clientTrace + "-" + clientSpan + "-01"
	)
	logs := &logBuffer{}
	logger, err := slogx.New(logs, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Workers: 2,
		Cache:   testCache(t, 1<<20),
		Logger:  logger,
	})

	body, err := json.Marshal(&OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", header)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decodeOptimize(t, raw)
	if out.Runtime.Cache != "miss" {
		t.Fatalf("disposition = %q, want miss", out.Runtime.Cache)
	}
	if out.Runtime.TraceID != clientTrace {
		t.Fatalf("runtime trace_id = %q, want the caller's %q", out.Runtime.TraceID, clientTrace)
	}
	if out.Runtime.SpanID == "" || out.Runtime.SpanID == clientSpan {
		t.Fatalf("runtime span_id = %q, want a fresh server-side span", out.Runtime.SpanID)
	}

	var found bool
	for _, rec := range logs.records(t) {
		if rec["path"] != "/v1/optimize" || rec["msg"] != "request" {
			continue
		}
		found = true
		if rec["trace_id"] != clientTrace {
			t.Errorf("access log trace_id = %v, want %q", rec["trace_id"], clientTrace)
		}
		if rec["parent_span_id"] != clientSpan {
			t.Errorf("access log parent_span_id = %v, want %q", rec["parent_span_id"], clientSpan)
		}
		if rec["span_id"] != out.Runtime.SpanID {
			t.Errorf("access log span_id = %v, want the response's %q", rec["span_id"], out.Runtime.SpanID)
		}
		if rec["disposition"] != "miss" {
			t.Errorf("access log disposition = %v, want miss", rec["disposition"])
		}
		if rec["status"] != float64(http.StatusOK) {
			t.Errorf("access log status = %v, want 200", rec["status"])
		}
		for _, key := range []string{"method", "bytes", "elapsed_ms", "queue_wait_ms", "compute_ms"} {
			if _, ok := rec[key]; !ok {
				t.Errorf("access log record missing %q: %v", key, rec)
			}
		}
	}
	if !found {
		t.Fatalf("no access-log record for /v1/optimize in:\n%s", logs.String())
	}
}

// TestNoTraceparentMintsTrace: a bare request still gets a full trace
// identity, minted server-side.
func TestNoTraceparentMintsTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Cache: testCache(t, 1<<20)})
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	out := decodeOptimize(t, raw)
	if len(out.Runtime.TraceID) != 32 || len(out.Runtime.SpanID) != 16 {
		t.Fatalf("minted trace/span = %q/%q, want 32/16 hex chars",
			out.Runtime.TraceID, out.Runtime.SpanID)
	}
}

// TestCoalescedFollowersReportLeaderTrace: followers that joined another
// request's computation answer with the leader's trace ID and their own
// span IDs, and their access-log records carry flight_trace_id.
func TestCoalescedFollowersReportLeaderTrace(t *testing.T) {
	const n = 6
	release := make(chan struct{})
	testHookComputeStart = func() { <-release }
	defer func() { testHookComputeStart = nil }()

	logs := &logBuffer{}
	logger, err := slogx.New(logs, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Workers: 4,
		Cache:   testCache(t, 1<<20),
		Logger:  logger,
	})

	replies := make([]*OptimizeResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d", i, status)
				return
			}
			replies[i] = decodeOptimize(t, raw)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		calls, waiters := s.flight.Stats()
		if calls == 1 && waiters == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %d calls, %d waiters", calls, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var leaderTrace string
	for _, r := range replies {
		if r != nil && r.Runtime.Cache == "miss" {
			leaderTrace = r.Runtime.TraceID
		}
	}
	if leaderTrace == "" {
		t.Fatal("no miss (leader) reply found")
	}
	spans := map[string]bool{}
	for i, r := range replies {
		if r == nil {
			continue
		}
		if r.Runtime.Cache != "coalesced" && r.Runtime.Cache != "miss" {
			t.Fatalf("reply %d: disposition %q", i, r.Runtime.Cache)
		}
		if r.Runtime.TraceID != leaderTrace {
			t.Errorf("reply %d (%s): trace_id = %q, want the leader's %q",
				i, r.Runtime.Cache, r.Runtime.TraceID, leaderTrace)
		}
		if spans[r.Runtime.SpanID] {
			t.Errorf("reply %d: span_id %q reused across requests", i, r.Runtime.SpanID)
		}
		spans[r.Runtime.SpanID] = true
	}

	var coalescedLogged int
	for _, rec := range logs.records(t) {
		if rec["disposition"] != "coalesced" {
			continue
		}
		coalescedLogged++
		if rec["flight_trace_id"] != leaderTrace {
			t.Errorf("coalesced access record flight_trace_id = %v, want %q",
				rec["flight_trace_id"], leaderTrace)
		}
	}
	if coalescedLogged != n-1 {
		t.Errorf("access log has %d coalesced records, want %d", coalescedLogged, n-1)
	}
}

// TestMetricsEndpoint: GET /metrics renders the Prometheus exposition with
// the request counter and latency buckets populated.
func TestMetricsEndpoint(t *testing.T) {
	col := telemetry.New()
	_, ts := newTestServer(t, Config{Workers: 2, Cache: testCache(t, 1<<20), Telemetry: col})
	if status, _, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()}); status != http.StatusOK {
		t.Fatalf("optimize status %d", status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("content type %q, want %q", ct, telemetry.PromContentType)
	}
	out := string(raw)
	for _, must := range []string{
		"floorplan_server_requests_total 1\n",
		"# TYPE floorplan_server_latency_miss_ns histogram\n",
		"floorplan_server_latency_miss_ns_count 1\n",
	} {
		if !strings.Contains(out, must) {
			t.Errorf("exposition missing %q", must)
		}
	}
	if !strings.Contains(out, `_bucket{le="`) {
		t.Error("exposition has no histogram bucket lines")
	}

	postResp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status %d, want 405", postResp.StatusCode)
	}
}

// TestStatsHistograms: /v1/stats exports the populated latency histograms
// under their metric names.
func TestStatsHistograms(t *testing.T) {
	col := telemetry.New()
	_, ts := newTestServer(t, Config{Workers: 2, Cache: testCache(t, 1<<20), Telemetry: col})
	for i := 0; i < 2; i++ {
		if status, _, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()}); status != http.StatusOK {
			t.Fatalf("optimize %d: status %d", i, status)
		}
	}
	stats := getStats(t, ts)
	miss, ok := stats.Histograms["server.latency_miss_ns"]
	if !ok || miss.Count != 1 {
		t.Fatalf("stats histograms missing miss latency (count 1): %+v", stats.Histograms)
	}
	hit, ok := stats.Histograms["server.latency_hit_ns"]
	if !ok || hit.Count != 1 {
		t.Fatalf("stats histograms missing hit latency (count 1): %+v", stats.Histograms)
	}
}

// TestKeepSpansTracesOptimizer: with KeepSpans the collector retains the
// optimizer's and flight's spans, tagged with the leading request's trace
// ID, so WriteTrace emits one cross-layer trace per request.
func TestKeepSpansTracesOptimizer(t *testing.T) {
	col := telemetry.New()
	_, ts := newTestServer(t, Config{
		Workers:   2,
		Cache:     testCache(t, 1<<20),
		Telemetry: col,
		KeepSpans: true,
	})
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	out := decodeOptimize(t, raw)

	var trace bytes.Buffer
	if err := col.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not JSON: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Args["trace_id"] == out.Runtime.TraceID {
			cats[ev.Cat]++
		}
	}
	for _, cat := range []string{"serve", "flight", "eval"} {
		if cats[cat] == 0 {
			t.Errorf("no %q span carries the request trace ID %s (tagged: %v)",
				cat, out.Runtime.TraceID, cats)
		}
	}
}

// TestShedDisposition: a shed request logs disposition=shed and records
// into the shed latency histogram.
func TestShedDisposition(t *testing.T) {
	release := make(chan struct{})
	testHookComputeStart = func() { <-release }
	defer func() { testHookComputeStart = nil }()

	logs := &logBuffer{}
	logger, err := slogx.New(logs, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Cache:      testCache(t, 1<<20),
		Telemetry:  col,
		Logger:     logger,
	})

	// Fill the one worker slot and the one queue slot with distinct keys
	// (different trees) so they don't coalesce, then overflow.
	var wg sync.WaitGroup
	var shed atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &OptimizeRequest{Tree: testTree(), Library: testLibrary()}
			req.Options.NoCache = true // force distinct flights
			status, _, _ := postOptimize(t, ts, req)
			if status == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for shed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no request was shed")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	_ = s

	var logged bool
	for _, rec := range logs.records(t) {
		if rec["disposition"] == "shed" {
			logged = true
			if rec["trace_id"] == nil || rec["trace_id"] == "" {
				t.Error("shed access record has no trace_id")
			}
		}
	}
	if !logged {
		t.Fatalf("no shed access-log record in:\n%s", logs.String())
	}
	if snap := col.HistSnapshots()["server.latency_shed_ns"]; snap.Count < 1 {
		t.Errorf("shed latency histogram count = %d, want >= 1", snap.Count)
	}
}

// TestObservabilityMiddlewareDirect exercises withObservability without the
// HTTP stack: status/byte capture and histogram recording.
func TestObservabilityMiddlewareDirect(t *testing.T) {
	col := telemetry.New()
	s, err := New(Config{Workers: 1, Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	h := s.withObservability(func(w http.ResponseWriter, r *http.Request) {
		rec := accessInfoFrom(r.Context())
		rec.disposition = "hit"
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("body"))
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rr.Code != http.StatusTeapot {
		t.Fatalf("status %d", rr.Code)
	}
	if snap := col.HistSnapshots()["server.latency_hit_ns"]; snap.Count != 1 {
		t.Errorf("hit histogram count = %d, want 1", snap.Count)
	}
}
