package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"floorplan/internal/telemetry"
)

// getSlow fetches and decodes GET /debug/slow.
func getSlow(t *testing.T, ts *httptest.Server) (*slowResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out slowResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding /debug/slow: %v\n%s", err, raw)
	}
	return &out, resp.StatusCode
}

// TestSlowCapture is the tail-attribution acceptance test: a request held
// past the threshold must appear in GET /debug/slow with the same trace ID
// its client observed, a queue/compute decomposition, and the
// computation's span tree — and the ring must scrub on read.
func TestSlowCapture(t *testing.T) {
	const hold = 30 * time.Millisecond
	testHookComputeStart = func() { time.Sleep(hold) }
	defer func() { testHookComputeStart = nil }()

	_, ts := newTestServer(t, Config{
		Workers:       2,
		Cache:         testCache(t, 1<<20),
		Telemetry:     telemetry.New(),
		SlowThreshold: 5 * time.Millisecond,
	})

	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{
		Tree: testTree(), Library: testLibrary(),
	})
	if status != http.StatusOK {
		t.Fatalf("optimize status = %d: %s", status, raw)
	}
	resp := decodeOptimize(t, raw)
	if resp.Runtime.TraceID == "" {
		t.Fatal("response carries no trace ID")
	}

	slow, code := getSlow(t, ts)
	if code != http.StatusOK {
		t.Fatalf("/debug/slow status = %d", code)
	}
	if slow.ThresholdMs != 5 {
		t.Fatalf("threshold_ms = %v, want 5", slow.ThresholdMs)
	}
	var cap *SlowRequest
	for i := range slow.Requests {
		if slow.Requests[i].TraceID == resp.Runtime.TraceID {
			cap = &slow.Requests[i]
		}
	}
	if cap == nil {
		t.Fatalf("slow request (trace %s) not captured; got %+v", resp.Runtime.TraceID, slow.Requests)
	}
	if cap.Disposition != "miss" {
		t.Fatalf("captured disposition = %q, want miss", cap.Disposition)
	}
	if cap.SpanID != resp.Runtime.SpanID {
		t.Fatalf("captured span %q, client observed %q", cap.SpanID, resp.Runtime.SpanID)
	}
	holdMs := float64(hold / time.Millisecond)
	if cap.ElapsedMs < holdMs {
		t.Fatalf("elapsed_ms = %v, want >= %v (the induced stall)", cap.ElapsedMs, holdMs)
	}
	if cap.ComputeMs <= 0 {
		t.Fatalf("compute_ms = %v, want > 0", cap.ComputeMs)
	}
	// The induced stall sits between slot acquisition and the measured
	// compute, so the decomposition must attribute it to the remainder
	// bucket rather than losing it.
	if cap.UnattributedMs < holdMs-5 {
		t.Fatalf("unattributed_ms = %v, want ~%v (the stall): %+v", cap.UnattributedMs, holdMs, cap)
	}
	if sum := cap.QueueWaitMs + cap.ComputeMs + cap.UnattributedMs; sum > cap.ElapsedMs+1 {
		t.Fatalf("decomposition %v exceeds elapsed %v", sum, cap.ElapsedMs)
	}
	if len(cap.Spans) == 0 {
		t.Fatal("captured request retains no spans")
	}
	for _, sp := range cap.Spans {
		if sp.TraceID != cap.TraceID {
			t.Fatalf("span %q carries trace %q, capture %q", sp.Name, sp.TraceID, cap.TraceID)
		}
	}

	// Scrub on read: the capture must not be served twice, but the running
	// totals survive the drain.
	again, _ := getSlow(t, ts)
	if len(again.Requests) != 0 {
		t.Fatalf("second read returned %d captures, want 0 (scrub on read)", len(again.Requests))
	}
	if again.Captured != slow.Captured {
		t.Fatalf("captured total changed across reads: %d -> %d", slow.Captured, again.Captured)
	}
}

// TestSlowCaptureBelowThreshold: fast requests stay out of the ring.
func TestSlowCaptureBelowThreshold(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       2,
		Cache:         testCache(t, 1<<20),
		Telemetry:     telemetry.New(),
		SlowThreshold: 10 * time.Second,
	})
	if status, raw, _ := postOptimize(t, ts, &OptimizeRequest{
		Tree: testTree(), Library: testLibrary(),
	}); status != http.StatusOK {
		t.Fatalf("optimize status = %d: %s", status, raw)
	}
	slow, _ := getSlow(t, ts)
	if len(slow.Requests) != 0 || slow.Captured != 0 {
		t.Fatalf("fast request captured: %+v", slow)
	}
}

// TestSlowDisabled: without a threshold the endpoint reports 404 so a probe
// can tell "no slow requests" apart from "capture not running".
func TestSlowDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if _, code := getSlow(t, ts); code != http.StatusNotFound {
		t.Fatalf("/debug/slow on a capture-disabled server = %d, want 404", code)
	}
}

// TestSlowRingEviction: the ring is bounded; overflow evicts oldest-first
// and counts what it displaced.
func TestSlowRingEviction(t *testing.T) {
	r := newSlowRing(3)
	for i := 0; i < 5; i++ {
		r.add(SlowRequest{TraceID: fmt.Sprintf("t%d", i)})
	}
	reqs, captured, evicted := r.drain()
	if captured != 5 || evicted != 2 {
		t.Fatalf("captured/evicted = %d/%d, want 5/2", captured, evicted)
	}
	if len(reqs) != 3 || reqs[0].TraceID != "t2" || reqs[2].TraceID != "t4" {
		t.Fatalf("ring kept %+v, want the newest three (t2..t4)", reqs)
	}
	if again, _, _ := r.drain(); len(again) != 0 {
		t.Fatal("drain did not scrub the ring")
	}
}

// TestStatsStartTime: /v1/stats exposes the process start instant (the
// restart detector) and a coherent uptime pair.
func TestStatsStartTime(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	before := getStats(t, ts)
	if before.StartTimeUnixMs <= 0 {
		t.Fatalf("start_time_unix_ms = %d, want > 0", before.StartTimeUnixMs)
	}
	now := time.Now().UnixMilli()
	if d := now - before.StartTimeUnixMs; d < 0 || d > 60_000 {
		t.Fatalf("start time %d implausible (now %d)", before.StartTimeUnixMs, now)
	}
	time.Sleep(15 * time.Millisecond)
	after := getStats(t, ts)
	if after.StartTimeUnixMs != before.StartTimeUnixMs {
		t.Fatalf("start time moved on a running server: %d -> %d",
			before.StartTimeUnixMs, after.StartTimeUnixMs)
	}
	if after.UptimeMs <= before.UptimeMs {
		t.Fatalf("uptime_ms did not advance: %d -> %d", before.UptimeMs, after.UptimeMs)
	}
	if ms := after.UptimeSeconds * 1000; ms < float64(after.UptimeMs)-1000 || ms > float64(after.UptimeMs)+1000 {
		t.Fatalf("uptime_s %v inconsistent with uptime_ms %d", after.UptimeSeconds, after.UptimeMs)
	}
}
