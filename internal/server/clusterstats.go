package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"floorplan/internal/cluster"
	"floorplan/internal/telemetry"
)

// GET /v1/cluster/stats: one scrape for the whole ring. The answering node
// fans out to every peer's /v1/stats (concurrently, each fetch bounded by
// Config.ClusterStatsTimeout), folds the snapshots with the telemetry merge
// semantics — counters sum, histograms merge bucketwise, exemplars keep the
// newest capture per bucket stamped with the node that recorded it — and
// reports a per-node health table plus the ring's ownership shares. A peer
// that cannot be reached degrades the response to a partial one marked
// incomplete; it never fails the aggregate, because the scrape matters most
// exactly when part of the ring is down.

// ClusterNodeStats is one ring member's row in the aggregate health table.
type ClusterNodeStats struct {
	// Node is the member's ring name (its peer base URL); Self marks the
	// node that served this aggregate.
	Node string `json:"node"`
	Self bool   `json:"self,omitempty"`
	// Reachable reports whether the node's stats fetch succeeded; Error
	// carries the failure when it did not (every stat below is then zero).
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	// NodeID is the member's display id, when it reports one.
	NodeID string `json:"node_id,omitempty"`
	// Revision/GoVersion identify the member's build (mixed-version rings
	// flip the aggregate's MixedVersions flag).
	Revision  string `json:"revision,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// RingShare is the fraction of the key space the ring assigns this node.
	RingShare float64 `json:"ring_share,omitempty"`
	// The member's live serving state.
	UptimeMs  int64 `json:"uptime_ms,omitempty"`
	Requests  int64 `json:"requests,omitempty"`
	Computed  int64 `json:"computed,omitempty"`
	Pending   int64 `json:"pending,omitempty"`
	InFlight  int64 `json:"in_flight,omitempty"`
	Shed      int64 `json:"shed,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
}

// ClusterTotals is the counter fold across every reachable node — the same
// numbers a single node reports in /v1/stats, summed.
type ClusterTotals struct {
	Requests          int64 `json:"requests"`
	Computed          int64 `json:"computed"`
	Shed              int64 `json:"shed"`
	Coalesced         int64 `json:"coalesced"`
	TimedOutQueued    int64 `json:"timed_out_queued"`
	TimedOutComputing int64 `json:"timed_out_computing"`
	AbandonedErrors   int64 `json:"abandoned_errors"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	Forwarded         int64 `json:"forwarded"`
	PeerFallbacks     int64 `json:"peer_fallback"`
	ReplicaHits       int64 `json:"replica_hits"`
	HotFills          int64 `json:"hot_fills"`
}

// ClusterRingInfo describes the placement ring the aggregate was taken over.
type ClusterRingInfo struct {
	Nodes  int `json:"nodes"`
	VNodes int `json:"vnodes"`
	// Shares maps each node to its exact arc-length fraction of the key
	// space; Imbalance is the largest share relative to fair (max/(1/n)), so
	// 1.0 is perfectly balanced and 1.15 means the hottest node owns 15%
	// more keys than its fair share.
	Shares    map[string]float64 `json:"shares"`
	Imbalance float64            `json:"imbalance"`
}

// ClusterStatsResponse is the GET /v1/cluster/stats reply.
type ClusterStatsResponse struct {
	// Incomplete is true when at least one ring member could not be
	// reached: Totals and Histograms then cover only the reachable subset.
	Incomplete bool `json:"incomplete"`
	// MixedVersions is true when reachable nodes report different build
	// revisions or toolchains — the classic silent cause of "only some
	// nodes show the regression".
	MixedVersions bool               `json:"mixed_versions,omitempty"`
	Nodes         []ClusterNodeStats `json:"nodes"`
	Totals        ClusterTotals      `json:"totals"`
	Ring          *ClusterRingInfo   `json:"ring,omitempty"`
	// Histograms is the bucketwise merge of every reachable node's latency
	// histograms; a bucket's exemplar is the newest across the ring, with
	// NodeID naming the node holding that trace.
	Histograms map[string]telemetry.HistSnapshot `json:"histograms,omitempty"`
}

// fetchedStats is one node's decoded snapshot, or the fetch error.
type fetchedStats struct {
	node  string
	stats *StatsResponse
	err   error
}

// handleClusterStats serves the ring-wide aggregate. On a single-node server
// (no cluster configured) it degenerates to aggregating just this node, so
// tooling can scrape the same endpoint in both deployments.
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	cl := s.cfg.Cluster
	if cl == nil {
		own := s.statsResponse()
		stampExemplars(own.Histograms, exemplarNodeName(own, s.cfg.NodeID))
		writeJSON(w, http.StatusOK, aggregateStats(
			[]fetchedStats{{node: exemplarNodeName(own, "self"), stats: own}}, "", nil))
		return
	}

	// Fan out: every ring member except self is fetched concurrently, each
	// under its own timeout slice; self snapshots locally (no loop through
	// the network, and the aggregate works before Start).
	nodes := cl.Ring().Nodes()
	results := make([]fetchedStats, len(nodes))
	var wg sync.WaitGroup
	for i, node := range nodes {
		if node == cl.Self() {
			results[i] = fetchedStats{node: node, stats: s.statsResponse()}
			continue
		}
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			raw, err := cl.FetchStats(r.Context(), node, s.cfg.clusterStatsTimeout())
			if err != nil {
				results[i] = fetchedStats{node: node, err: err}
				return
			}
			var st StatsResponse
			if err := json.Unmarshal(raw, &st); err != nil {
				results[i] = fetchedStats{node: node, err: fmt.Errorf("decoding stats: %w", err)}
				return
			}
			results[i] = fetchedStats{node: node, stats: &st}
		}(i, node)
	}
	wg.Wait()

	// Stamp every node's exemplars before merging, so a cluster-level p99
	// bucket names the node whose access log holds the trace.
	for _, res := range results {
		if res.stats != nil {
			stampExemplars(res.stats.Histograms, exemplarNodeName(res.stats, res.node))
		}
	}
	writeJSON(w, http.StatusOK, aggregateStats(results, cl.Self(), cl.Ring()))
}

// exemplarNodeName picks the label stamped on a node's exemplars: its
// reported display id when it has one, its ring name otherwise.
func exemplarNodeName(st *StatsResponse, fallback string) string {
	if st != nil && st.NodeID != "" {
		return st.NodeID
	}
	return fallback
}

// stampExemplars labels every bucket exemplar in a freshly-built (or
// freshly-decoded) snapshot map with the node that recorded it. The map is
// private to the aggregation — statsResponse and json.Unmarshal both build
// new buckets — so mutating in place is safe.
func stampExemplars(hists map[string]telemetry.HistSnapshot, node string) {
	for _, h := range hists {
		for _, b := range h.Buckets {
			if b.Exemplar != nil {
				b.Exemplar.NodeID = node
			}
		}
	}
}

// aggregateStats folds the fetched snapshots into the wire response: health
// rows in ring order, counter sums, bucketwise histogram merges and the
// version skew check. ring is nil on single-node servers.
func aggregateStats(results []fetchedStats, self string, ring *cluster.Ring) *ClusterStatsResponse {
	resp := &ClusterStatsResponse{}
	var shares map[string]float64
	if ring != nil {
		shares = ring.Shares()
		info := &ClusterRingInfo{
			Nodes:  len(ring.Nodes()),
			VNodes: ring.VNodes(),
			Shares: shares,
		}
		var maxShare float64
		for _, sh := range shares {
			if sh > maxShare {
				maxShare = sh
			}
		}
		info.Imbalance = maxShare * float64(info.Nodes)
		resp.Ring = info
	}

	merged := map[string]telemetry.HistSnapshot{}
	versions := map[string]bool{}
	for _, res := range results {
		row := ClusterNodeStats{
			Node:      res.node,
			Self:      res.node == self,
			Reachable: res.err == nil,
			RingShare: shares[res.node],
		}
		if res.err != nil {
			row.Error = res.err.Error()
			resp.Incomplete = true
			resp.Nodes = append(resp.Nodes, row)
			continue
		}
		st := res.stats
		row.NodeID = st.NodeID
		row.Revision = st.Version.Revision
		row.GoVersion = st.Version.GoVersion
		row.UptimeMs = st.UptimeMs
		row.Requests = st.Requests
		row.Computed = st.Computed
		row.Pending = st.Pending
		row.InFlight = st.InFlight
		row.Shed = st.Shed
		row.CacheHits = st.Cache.Hits
		resp.Nodes = append(resp.Nodes, row)
		versions[st.Version.Revision+"/"+st.Version.GoVersion] = true

		t := &resp.Totals
		t.Requests += st.Requests
		t.Computed += st.Computed
		t.Shed += st.Shed
		t.Coalesced += st.Coalesced
		t.TimedOutQueued += st.TimedOutQueued
		t.TimedOutComputing += st.TimedOutComputing
		t.AbandonedErrors += st.AbandonedErrors
		t.CacheHits += st.Cache.Hits
		t.CacheMisses += st.Cache.Misses
		if c := st.Cluster; c != nil {
			t.Forwarded += c.Forwarded
			t.PeerFallbacks += c.PeerFallbacks
			t.ReplicaHits += c.ReplicaHits
			t.HotFills += c.HotFills
		}
		for name, h := range st.Histograms {
			have := merged[name]
			have.Merge(h)
			merged[name] = have
		}
	}
	resp.MixedVersions = len(versions) > 1
	if len(merged) > 0 {
		resp.Histograms = merged
	}
	// Ring order is already deterministic (ring.Nodes() sorts); the
	// single-node path has one row. Sorting defensively keeps the response
	// stable even if a future caller passes unsorted results.
	sort.SliceStable(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Node < resp.Nodes[j].Node })
	return resp
}
