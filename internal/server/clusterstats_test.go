package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"floorplan/internal/reqid"
	"floorplan/internal/telemetry"
)

// getClusterStats fetches and decodes GET /v1/cluster/stats from base.
func getClusterStats(t *testing.T, base string) *ClusterStatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster stats: HTTP %d", resp.StatusCode)
	}
	var out ClusterStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// withTelemetry gives every test-cluster node its own collector, so the
// aggregation has real per-node histograms to merge.
func withTelemetry(i int, cfg *Config) {
	cfg.Telemetry = telemetry.New()
}

// TestClusterStatsAggregate is the tentpole integration check on three
// in-process nodes: the fan-out totals equal the sum of the per-node stats,
// the merged histograms answer the same quantiles as a reference merge of
// the per-node snapshots, and a directed request's exemplar surfaces in the
// aggregate stamped with the node that recorded it.
func TestClusterStatsAggregate(t *testing.T) {
	nodes := startCluster(t, 3, withTelemetry)
	cl := nodes[0].srv.cfg.Cluster

	// One computed miss per node, each posted directly at its owner.
	for i, n := range nodes {
		req := reqOwnedBy(t, cl, n.url, i+1)
		if status, raw, _ := postURL(t, n.url, req, nil); status != http.StatusOK {
			t.Fatalf("node %d optimize: HTTP %d: %s", i, status, raw)
		}
	}
	// One more directed at node 2 under a known trace, so the aggregate's
	// exemplar for that request is predictable. A fresh Theta salt makes it
	// a miss (a new computation), which records the exemplared histogram.
	trace := reqid.New()
	tracedReq := reqOwnedBy(t, cl, nodes[2].url, 7)
	if status, raw, _ := postURL(t, nodes[2].url, tracedReq,
		map[string]string{"traceparent": trace.Traceparent()}); status != http.StatusOK {
		t.Fatalf("traced optimize: HTTP %d: %s", status, raw)
	}

	// Reference: every node's own stats, fetched the same way the
	// aggregator does (nothing serves optimize traffic in between, and
	// stats scrapes do not perturb the counters they report).
	perNode := make([]*StatsResponse, len(nodes))
	for i, n := range nodes {
		perNode[i] = getStatsURL(t, n.url)
		if perNode[i].Version.GoVersion == "" {
			t.Fatalf("node %d reports no go_version in /v1/stats", i)
		}
	}

	cs := getClusterStats(t, nodes[0].url)
	if cs.Incomplete {
		t.Fatal("aggregate marked incomplete with every node up")
	}
	if cs.MixedVersions {
		t.Fatal("identical binaries flagged as mixed versions")
	}
	if len(cs.Nodes) != 3 {
		t.Fatalf("aggregate has %d node rows, want 3", len(cs.Nodes))
	}

	var wantRequests, wantComputed, wantHits int64
	for _, st := range perNode {
		wantRequests += st.Requests
		wantComputed += st.Computed
		wantHits += st.Cache.Hits
	}
	if cs.Totals.Requests != wantRequests {
		t.Fatalf("totals.requests = %d, want sum of per-node %d", cs.Totals.Requests, wantRequests)
	}
	if cs.Totals.Computed != wantComputed || wantComputed != 4 {
		t.Fatalf("totals.computed = %d (per-node sum %d), want 4", cs.Totals.Computed, wantComputed)
	}
	if cs.Totals.CacheHits != wantHits {
		t.Fatalf("totals.cache_hits = %d, want %d", cs.Totals.CacheHits, wantHits)
	}

	var selfRows int
	for _, row := range cs.Nodes {
		if !row.Reachable {
			t.Fatalf("node %s unreachable in a healthy ring: %s", row.Node, row.Error)
		}
		if row.Self {
			selfRows++
			if row.NodeID != "node-0" {
				t.Fatalf("self row is %q, want node-0", row.NodeID)
			}
		}
		if row.RingShare <= 0 || row.RingShare >= 1 {
			t.Fatalf("node %s ring share %v out of (0,1)", row.Node, row.RingShare)
		}
	}
	if selfRows != 1 {
		t.Fatalf("%d rows marked self, want exactly 1", selfRows)
	}
	if cs.Ring == nil || cs.Ring.Nodes != 3 {
		t.Fatalf("ring info = %+v, want 3 nodes", cs.Ring)
	}
	if cs.Ring.Imbalance < 1 {
		t.Fatalf("ring imbalance %v below 1 (max share cannot be under fair)", cs.Ring.Imbalance)
	}

	// Merged histograms must be indistinguishable from a reference merge of
	// the per-node snapshots: same counts, same quantiles.
	reference := map[string]telemetry.HistSnapshot{}
	for _, st := range perNode {
		for name, h := range st.Histograms {
			have := reference[name]
			have.Merge(h)
			reference[name] = have
		}
	}
	if len(cs.Histograms) != len(reference) {
		t.Fatalf("aggregate has %d histogram families, reference %d", len(cs.Histograms), len(reference))
	}
	for name, want := range reference {
		got, ok := cs.Histograms[name]
		if !ok {
			t.Fatalf("aggregate lacks histogram %q", name)
		}
		if got.Count != want.Count {
			t.Fatalf("%s: merged count %d, reference %d", name, got.Count, want.Count)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if g, w := got.Quantile(q), want.Quantile(q); g != w {
				t.Fatalf("%s: merged q%.2f = %d, reference %d", name, q, g, w)
			}
		}
	}

	// The traced request's exemplar surfaces in the merged miss histogram,
	// stamped with the node that recorded it.
	miss, ok := cs.Histograms["server.latency_miss_ns"]
	if !ok {
		t.Fatal("aggregate lacks the miss latency histogram")
	}
	found := false
	for _, b := range miss.Buckets {
		if e := b.Exemplar; e != nil {
			if e.NodeID == "" {
				t.Fatalf("merged exemplar %s carries no node id", e.TraceID)
			}
			if e.TraceID == trace.TraceID.String() {
				found = true
				if e.NodeID != "node-2" {
					t.Fatalf("traced exemplar attributed to %q, want node-2", e.NodeID)
				}
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not found among merged exemplars", trace.TraceID.String())
	}
}

// TestClusterStatsPartial: killing one node degrades the aggregate to a
// partial response marked incomplete — never an error — with the dead node
// reported unreachable and the live ones still summed.
func TestClusterStatsPartial(t *testing.T) {
	nodes := startCluster(t, 3, func(i int, cfg *Config) {
		withTelemetry(i, cfg)
		cfg.ClusterStatsTimeout = 2 * time.Second
	})
	req := reqOwnedBy(t, nodes[0].srv.cfg.Cluster, nodes[0].url, 1)
	if status, raw, _ := postURL(t, nodes[0].url, req, nil); status != http.StatusOK {
		t.Fatalf("optimize: HTTP %d: %s", status, raw)
	}

	if err := nodes[2].hs.Close(); err != nil {
		t.Fatal(err)
	}

	cs := getClusterStats(t, nodes[0].url)
	if !cs.Incomplete {
		t.Fatal("aggregate not marked incomplete with a dead peer")
	}
	if len(cs.Nodes) != 3 {
		t.Fatalf("aggregate has %d node rows, want 3", len(cs.Nodes))
	}
	for _, row := range cs.Nodes {
		dead := row.Node == nodes[2].url
		if dead == row.Reachable {
			t.Fatalf("node %s reachable=%v, dead=%v", row.Node, row.Reachable, dead)
		}
		if dead && row.Error == "" {
			t.Fatal("dead node row carries no error")
		}
	}
	if cs.Totals.Computed != 1 {
		t.Fatalf("partial totals.computed = %d, want 1 from the live nodes", cs.Totals.Computed)
	}
}

// TestClusterStatsSingleNode: the endpoint answers on a server with no
// cluster configured — one self row, never incomplete — so tooling scrapes
// the same URL in both deployments.
func TestClusterStatsSingleNode(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, NodeID: "solo", Telemetry: telemetry.New()})
	_ = s
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusOK {
		t.Fatalf("optimize: HTTP %d: %s", status, raw)
	}
	cs := getClusterStats(t, ts.URL)
	if cs.Incomplete {
		t.Fatal("single-node aggregate marked incomplete")
	}
	if len(cs.Nodes) != 1 || !cs.Nodes[0].Reachable {
		t.Fatalf("single-node rows = %+v, want one reachable row", cs.Nodes)
	}
	if cs.Totals.Computed != 1 {
		t.Fatalf("single-node totals.computed = %d, want 1", cs.Totals.Computed)
	}
	if cs.Ring != nil {
		t.Fatalf("single-node aggregate reports ring info %+v", cs.Ring)
	}
	// The lone node's exemplars still carry its id, so dashboards built on
	// the cluster endpoint read identically against one node.
	for _, h := range cs.Histograms {
		for _, b := range h.Buckets {
			if b.Exemplar != nil && b.Exemplar.NodeID != "solo" {
				t.Fatalf("exemplar node id %q, want solo", b.Exemplar.NodeID)
			}
		}
	}
}

// TestSlowPeekKeep: ?keep=1 reads the slow ring without scrubbing it, the
// default drain still empties it.
func TestSlowPeekKeep(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       1,
		SlowThreshold: time.Nanosecond, // everything is "slow"
		Telemetry:     telemetry.New(),
	})
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusOK {
		t.Fatalf("optimize: HTTP %d: %s", status, raw)
	}

	fetch := func(path string) *slowResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		var out slowResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	// At a 1ns threshold the debug requests themselves get captured too, so
	// the optimize capture is identified by path rather than by count.
	hasOptimize := func(sr *slowResponse) bool {
		for _, req := range sr.Requests {
			if req.Path == "/v1/optimize" {
				return true
			}
		}
		return false
	}

	if peek1 := fetch("/debug/slow?keep=1"); !hasOptimize(peek1) {
		t.Fatal("first peek did not return the optimize capture")
	}
	if peek2 := fetch("/debug/slow?keep=1"); !hasOptimize(peek2) {
		t.Fatal("second peek lacks the optimize capture — the first peek drained the ring")
	}
	if drained := fetch("/debug/slow"); !hasOptimize(drained) {
		t.Fatal("drain did not return the peeked optimize capture")
	}
	if after := fetch("/debug/slow?keep=1"); hasOptimize(after) {
		t.Fatal("optimize capture survived the drain")
	}
}
