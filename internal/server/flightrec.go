package server

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"floorplan/internal/telemetry"
)

// Triggered profiling flight recorder: when Config.ProfileTriggerP99 is set,
// a watchdog goroutine samples this node's own serve-latency histograms
// every ProfileInterval and, when the window looks bad — p99 over the
// threshold, requests shed, or the queue watermark at capacity — captures a
// CPU+heap profile pair into a bounded ring served by GET /debug/profiles.
// The point is to have the profile of the incident, taken while it happened,
// waiting for the operator — instead of asking them to reproduce a tail
// spike with a manual pprof session after the fact. Each capture is
// annotated with the trigger reason and the window's exemplar trace IDs, so
// the profile cross-references the exact slow requests in the access log.

// latencyHists are the per-disposition end-to-end histograms the watchdog
// merges into one window (the same set dispositionHist records into).
var latencyHists = []telemetry.Hist{
	telemetry.HistServeHitNs,
	telemetry.HistServeMissNs,
	telemetry.HistServeCoalescedNs,
	telemetry.HistServeBypassNs,
	telemetry.HistServeForwardedNs,
	telemetry.HistServeFallbackNs,
	telemetry.HistServeShedNs,
	telemetry.HistServeErrorNs,
}

// maxCaptureTraces bounds the exemplar trace IDs annotated per capture.
const maxCaptureTraces = 8

// ProfileCapture is one flight-recorder entry: the trigger that fired, the
// window evidence, and the sizes of the captured profiles (the binary pprof
// bytes are fetched separately via ?id=N&kind=cpu|heap).
type ProfileCapture struct {
	ID int64 `json:"id"`
	// Reason is the trigger class: "p99" (window p99 over the threshold),
	// "shed" (requests refused in the window) or "pressure" (pending at
	// queue capacity). Detail is the human-readable specifics.
	Reason string `json:"reason"`
	Detail string `json:"detail"`
	// TriggeredUnixMs is the capture wall-clock time.
	TriggeredUnixMs int64 `json:"triggered_unix_ms"`
	// WindowRequests and P99Ms describe the sampling window that fired.
	WindowRequests int64   `json:"window_requests"`
	P99Ms          float64 `json:"p99_ms"`
	// TraceIDs are the window's bucket exemplars, slowest buckets first —
	// real requests from the incident, ready to grep in the access log.
	TraceIDs []string `json:"trace_ids,omitempty"`
	// CPUProfileBytes/HeapProfileBytes are the captured profile sizes (0
	// when that capture failed; see Error).
	CPUProfileBytes  int `json:"cpu_profile_bytes"`
	HeapProfileBytes int `json:"heap_profile_bytes"`
	// Error reports a partial capture (e.g. the CPU profiler was already
	// running); the heap profile is usually still present.
	Error string `json:"error,omitempty"`

	cpu  []byte
	heap []byte
}

// flightRecorder is the watchdog and its capture ring.
type flightRecorder struct {
	s        *Server
	trigger  time.Duration
	interval time.Duration

	mu       sync.Mutex
	captures []ProfileCapture // oldest first, bounded by cfg.profileRing()
	nextID   int64
	total    int64 // captures ever taken
	cooldown int   // ticks to skip after a capture
	prev     []telemetry.HistSnapshot
	prevShed int64

	stopCh   chan struct{}
	stopOnce sync.Once
}

func newFlightRecorder(s *Server) *flightRecorder {
	fr := &flightRecorder{
		s:        s,
		trigger:  s.cfg.ProfileTriggerP99,
		interval: s.cfg.profileInterval(),
		stopCh:   make(chan struct{}),
	}
	// Baseline the cumulative histograms now, so the first window covers
	// [construction, first tick] instead of all of process history.
	fr.prev, fr.prevShed = fr.sample()
	return fr
}

// sample snapshots the cumulative state the windows are deltas of.
func (fr *flightRecorder) sample() ([]telemetry.HistSnapshot, int64) {
	cur := make([]telemetry.HistSnapshot, len(latencyHists))
	for i, h := range latencyHists {
		cur[i] = fr.s.tel.SnapshotHist(h)
	}
	return cur, fr.s.shed.Load()
}

// start launches the watchdog loop; nil-safe so the disabled server calls it
// unconditionally.
func (fr *flightRecorder) start() {
	if fr == nil {
		return
	}
	go func() {
		t := time.NewTicker(fr.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fr.tick()
			case <-fr.stopCh:
				return
			}
		}
	}()
}

// stop ends the watchdog; nil-safe and idempotent, and harmless when start
// never ran (Handler-only servers).
func (fr *flightRecorder) stop() {
	if fr == nil {
		return
	}
	fr.stopOnce.Do(func() { close(fr.stopCh) })
}

// tick runs one watchdog evaluation: build the window since the previous
// tick, check the triggers, capture if one fired. Exposed to tests directly
// (they drive ticks without the timer).
func (fr *flightRecorder) tick() {
	cur, shed := fr.sample()
	prev, prevShed := fr.prev, fr.prevShed
	fr.prev, fr.prevShed = cur, shed

	fr.mu.Lock()
	inCooldown := fr.cooldown > 0
	if inCooldown {
		fr.cooldown--
	}
	fr.mu.Unlock()
	if inCooldown {
		return
	}

	var window telemetry.HistSnapshot
	for i := range cur {
		window.Merge(cur[i].Delta(prev[i]))
	}
	p99 := time.Duration(window.Quantile(0.99))
	shedDelta := shed - prevShed
	pending := fr.s.pending.Load()
	capacity := int64(fr.s.cfg.workers() + fr.s.cfg.queueDepth())

	var reason, detail string
	switch {
	case window.Count > 0 && p99 >= fr.trigger:
		reason = "p99"
		detail = fmt.Sprintf("window p99 %.1fms over threshold %.1fms (%d requests)",
			durMs(p99), durMs(fr.trigger), window.Count)
	case shedDelta > 0:
		reason = "shed"
		detail = fmt.Sprintf("%d requests shed in the window", shedDelta)
	case pending >= capacity:
		reason = "pressure"
		detail = fmt.Sprintf("pending %d at queue capacity %d", pending, capacity)
	default:
		return
	}
	fr.capture(reason, detail, window, p99)
}

// windowTraces collects the window's exemplar trace IDs, slowest buckets
// first — the requests most likely responsible for the trigger.
func windowTraces(window telemetry.HistSnapshot) []string {
	var out []string
	seen := map[string]bool{}
	for i := len(window.Buckets) - 1; i >= 0 && len(out) < maxCaptureTraces; i-- {
		if e := window.Buckets[i].Exemplar; e != nil && !seen[e.TraceID] {
			seen[e.TraceID] = true
			out = append(out, e.TraceID)
		}
	}
	return out
}

// capture takes the CPU+heap profile pair and appends it to the ring. The
// CPU profile samples min(interval/2, 1s) of live execution — during the
// incident, which is the whole point; a failed CPU start (e.g. a concurrent
// manual pprof session) degrades to a heap-only capture with the error
// recorded, never a lost entry.
func (fr *flightRecorder) capture(reason, detail string, window telemetry.HistSnapshot, p99 time.Duration) {
	cap := ProfileCapture{
		Reason:          reason,
		Detail:          detail,
		TriggeredUnixMs: time.Now().UnixMilli(),
		WindowRequests:  window.Count,
		P99Ms:           durMs(p99),
		TraceIDs:        windowTraces(window),
	}
	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		cap.Error = fmt.Sprintf("starting CPU profile: %v", err)
	} else {
		dur := fr.interval / 2
		if dur > time.Second {
			dur = time.Second
		}
		time.Sleep(dur)
		pprof.StopCPUProfile()
		cap.cpu = cpuBuf.Bytes()
		cap.CPUProfileBytes = len(cap.cpu)
	}
	var heapBuf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&heapBuf, 0); err != nil {
		if cap.Error != "" {
			cap.Error += "; "
		}
		cap.Error += fmt.Sprintf("writing heap profile: %v", err)
	} else {
		cap.heap = heapBuf.Bytes()
		cap.HeapProfileBytes = len(cap.heap)
	}

	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.nextID++
	cap.ID = fr.nextID
	fr.total++
	if max := fr.s.cfg.profileRing(); len(fr.captures) >= max {
		n := copy(fr.captures, fr.captures[1:])
		fr.captures = fr.captures[:n]
	}
	fr.captures = append(fr.captures, cap)
	// Cooldown: skip the next two windows so one sustained incident yields
	// a few spaced captures, not a profile per tick.
	fr.cooldown = 2
	if l := fr.s.logger; l != nil {
		l.Warn("flight recorder captured profiles",
			"reason", reason, "detail", detail, "capture_id", cap.ID)
	}
}

// snapshot returns the ring's entries (oldest first) without the profile
// bytes, plus the total capture count.
func (fr *flightRecorder) snapshot() (caps []ProfileCapture, total int64) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	caps = make([]ProfileCapture, len(fr.captures))
	for i, c := range fr.captures {
		c.cpu, c.heap = nil, nil
		caps[i] = c
	}
	return caps, fr.total
}

// profileBytes returns one capture's raw pprof bytes.
func (fr *flightRecorder) profileBytes(id int64, kind string) ([]byte, bool) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, c := range fr.captures {
		if c.ID != id {
			continue
		}
		switch kind {
		case "cpu":
			return c.cpu, c.cpu != nil
		case "heap":
			return c.heap, c.heap != nil
		}
		return nil, false
	}
	return nil, false
}

// profilesResponse is the GET /debug/profiles index.
type profilesResponse struct {
	TriggerP99Ms float64          `json:"trigger_p99_ms"`
	IntervalMs   float64          `json:"interval_ms"`
	Capacity     int              `json:"capacity"`
	Captured     int64            `json:"captured"`
	Captures     []ProfileCapture `json:"captures"`
}

// handleProfiles serves the flight recorder: the annotated capture index by
// default, one capture's raw pprof bytes with ?id=N&kind=cpu|heap (feed
// those straight to `go tool pprof`).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.rec == nil {
		writeError(w, http.StatusNotFound, "profiling flight recorder disabled (set ProfileTriggerP99)")
		return
	}
	q := r.URL.Query()
	if idStr := q.Get("id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad capture id")
			return
		}
		kind := q.Get("kind")
		if kind != "cpu" && kind != "heap" {
			writeError(w, http.StatusBadRequest, "kind must be cpu or heap")
			return
		}
		raw, ok := s.rec.profileBytes(id, kind)
		if !ok {
			writeError(w, http.StatusNotFound, "no such capture (the ring may have evicted it)")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("capture-%d-%s.pb.gz", id, kind)))
		_, _ = w.Write(raw)
		return
	}
	caps, total := s.rec.snapshot()
	if caps == nil {
		caps = []ProfileCapture{}
	}
	writeJSON(w, http.StatusOK, &profilesResponse{
		TriggerP99Ms: durMs(s.rec.trigger),
		IntervalMs:   durMs(s.rec.interval),
		Capacity:     s.cfg.profileRing(),
		Captured:     total,
		Captures:     caps,
	})
}
