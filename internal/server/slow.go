package server

import (
	"net/http"
	"sync"
	"time"

	"floorplan/internal/telemetry"
)

// Server-side tail attribution: when Config.SlowThreshold is set, every
// request whose end-to-end latency reaches it is captured into a bounded
// ring — identity (trace/span), response envelope, the queue/compute/
// coalesce decomposition from its flight, and the optimizer span tree the
// computation recorded. GET /debug/slow returns and drains the ring, so an
// operator chasing a tail spike gets the *attribution* for the slowest
// requests (where the time went, node by node) without grepping logs or
// correlating a trace export after the fact.

// SlowRequest is one captured tail request — the GET /debug/slow element.
type SlowRequest struct {
	// TraceID/SpanID are the identity the client observed in its response
	// runtime (and in its own traceparent, if it sent one).
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	Method       string `json:"method"`
	Path         string `json:"path"`
	Status       int    `json:"status"`
	// Disposition is the optimize outcome (hit, miss, coalesced, ...);
	// empty for non-optimize endpoints.
	Disposition string `json:"disposition,omitempty"`
	// FlightTraceID names the leader's trace when this request coalesced
	// onto another request's computation — the spans below belong to it.
	FlightTraceID string `json:"flight_trace_id,omitempty"`
	// NodeID names the node that served the request; ForwardedTo the owning
	// peer the compute was forwarded to (cluster mode). Together they say
	// which node actually did the work a tail capture attributes.
	NodeID      string `json:"node_id,omitempty"`
	ForwardedTo string `json:"forwarded_to,omitempty"`
	// CapturedUnixMs is the capture wall-clock time.
	CapturedUnixMs int64 `json:"captured_unix_ms"`

	// The latency decomposition: ElapsedMs is end-to-end; QueueWaitMs is
	// the computation's wait for a worker slot; ComputeMs is optimization
	// wall time; ForwardMs is the peer hop on forwarded requests;
	// UnattributedMs is the remainder (decode, marshal, response write,
	// and — for followers — waiting on a flight that started before this
	// request arrived). All zero except ElapsedMs when the request never
	// reached a computation (hits, shed, invalid).
	ElapsedMs      float64 `json:"elapsed_ms"`
	QueueWaitMs    float64 `json:"queue_wait_ms,omitempty"`
	ComputeMs      float64 `json:"compute_ms,omitempty"`
	ForwardMs      float64 `json:"forward_ms,omitempty"`
	UnattributedMs float64 `json:"unattributed_ms,omitempty"`

	// Spans is the span tree the answering computation recorded (flight and
	// optimizer layers), retained even when the server's collector discards
	// per-request spans (Config.KeepSpans off).
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// slowRing is the bounded capture buffer. Captures are rare by definition
// (tail requests only), so a mutex-guarded slice beats cleverness; when
// full, the oldest capture is evicted — the ring always holds the newest
// evidence.
type slowRing struct {
	mu       sync.Mutex
	capacity int
	buf      []SlowRequest
	captured int64 // total captures ever
	evicted  int64 // captures displaced before being read
}

func newSlowRing(capacity int) *slowRing {
	return &slowRing{capacity: capacity}
}

func (r *slowRing) add(req SlowRequest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.captured++
	if len(r.buf) >= r.capacity {
		n := copy(r.buf, r.buf[1:])
		r.buf = r.buf[:n]
		r.evicted++
	}
	r.buf = append(r.buf, req)
}

// drain returns the captured requests (oldest first) and scrubs the ring,
// so each capture is reported exactly once and the buffer never serves
// stale evidence twice.
func (r *slowRing) drain() (reqs []SlowRequest, captured, evicted int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	reqs = r.buf
	r.buf = nil
	return reqs, r.captured, r.evicted
}

// peek returns a copy of the buffered captures without scrubbing them — the
// non-destructive read behind GET /debug/slow?keep=1, so a human can look at
// the evidence without stealing it from the alerting pipeline's next drain.
func (r *slowRing) peek() (reqs []SlowRequest, captured, evicted int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) > 0 {
		reqs = append([]SlowRequest(nil), r.buf...)
	}
	return reqs, r.captured, r.evicted
}

// maybeCaptureSlow records the finished request into the slow ring when
// tail capture is enabled and the request crossed the threshold.
func (s *Server) maybeCaptureSlow(r *http.Request, sw *statusWriter, rec *accessInfo, elapsed time.Duration) {
	if s.slow == nil || elapsed < s.cfg.SlowThreshold {
		return
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	cap := SlowRequest{
		TraceID:        rec.trace.TraceID.String(),
		SpanID:         rec.trace.SpanID.String(),
		ParentSpanID:   rec.parentSpan,
		Method:         r.Method,
		Path:           r.URL.Path,
		Status:         status,
		Disposition:    rec.disposition,
		FlightTraceID:  rec.flightTraceID,
		NodeID:         s.cfg.NodeID,
		ForwardedTo:    rec.forwardedTo,
		CapturedUnixMs: time.Now().UnixMilli(),
		ElapsedMs:      durMs(elapsed),
	}
	if m := rec.flight; m != nil {
		cap.QueueWaitMs = durMs(time.Duration(m.queueWaitNs.Load()))
		cap.ComputeMs = durMs(time.Duration(m.computeNs.Load()))
		cap.ForwardMs = durMs(time.Duration(m.forwardNs.Load()))
		if rest := cap.ElapsedMs - cap.QueueWaitMs - cap.ComputeMs - cap.ForwardMs; rest > 0 {
			cap.UnattributedMs = rest
		}
		if sp := m.spans.Load(); sp != nil {
			cap.Spans = *sp
		}
	} else if cap.ElapsedMs > 0 {
		cap.UnattributedMs = cap.ElapsedMs
	}
	s.slow.add(cap)
}

// slowResponse is the GET /debug/slow reply.
type slowResponse struct {
	ThresholdMs float64 `json:"threshold_ms"`
	Capacity    int     `json:"capacity"`
	// Captured counts every capture since start; Evicted counts captures
	// displaced unread by newer ones. Requests holds (and scrubs) the
	// currently buffered captures, oldest first.
	Captured int64         `json:"captured"`
	Evicted  int64         `json:"evicted"`
	Requests []SlowRequest `json:"requests"`
}

// handleSlow serves GET /debug/slow: the buffered tail captures, scrubbed
// on read. ?keep=1 peeks without scrubbing, so an interactive look does not
// steal captures from whatever automation drains the ring.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.slow == nil {
		writeError(w, http.StatusNotFound, "slow-request capture disabled (set SlowThreshold)")
		return
	}
	read := s.slow.drain
	if r.URL.Query().Get("keep") == "1" {
		read = s.slow.peek
	}
	reqs, captured, evicted := read()
	if reqs == nil {
		reqs = []SlowRequest{}
	}
	writeJSON(w, http.StatusOK, &slowResponse{
		ThresholdMs: durMs(s.cfg.SlowThreshold),
		Capacity:    s.slow.capacity,
		Captured:    captured,
		Evicted:     evicted,
		Requests:    reqs,
	})
}
