package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"floorplan/internal/plan"
	"floorplan/internal/substore"
)

// TestDrainUnderLoadRace races Shutdown against a burst of optimize
// requests and pins the leader-side drain re-check: no background
// computation may start after Shutdown has returned — the leak the
// re-check closes is a handler that passed the entry drain check, then
// wg.Add'd after wg.Wait had already given up waiting. Every request must
// still get a definite answer: its result, or 503 draining.
func TestDrainUnderLoadRace(t *testing.T) {
	var shutdownDone, leaked atomic.Bool
	testHookComputeStart = func() {
		if shutdownDone.Load() {
			leaked.Store(true)
		}
	}
	t.Cleanup(func() { testHookComputeStart = nil })

	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256, Cache: testCache(t, 1<<20)})

	const n = 64
	statuses := make([]int, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Distinct K1 per request: every request leads its own flight
			// call, maximizing leaders in the racy window.
			req := &OptimizeRequest{Tree: testTree(), Library: testLibrary(),
				Options: RequestOptions{K1: i + 1}}
			status, _, _ := postOptimize(t, ts, req)
			statuses[i] = status
		}(i)
	}
	close(start)
	// Let part of the burst pass admission before the drain flips, so both
	// sides of the entry check are populated.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	shutdownDone.Store(true)
	wg.Wait()

	if leaked.Load() {
		t.Fatal("a computation started after Shutdown returned: drain re-check leaked")
	}
	for i, status := range statuses {
		if status != http.StatusOK && status != http.StatusServiceUnavailable {
			t.Errorf("request %d: status %d, want 200 or 503", i, status)
		}
	}
}

// TestOptimizeRejectsBadLibraries pins the request-validation satellite:
// empty implementation lists, non-positive extents and extents past the
// overflow bound are all 400s naming the offending module — never 500s or
// silently accepted degenerate runs.
func TestOptimizeRejectsBadLibraries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	cases := []struct {
		name string
		lib  plan.Library
		frag string
	}{
		{"empty list", plan.Library{"a": {}, "b": {{W: 3, H: 3}}}, "no implementations"},
		{"zero extent", plan.Library{"a": {{W: 0, H: 7}}, "b": {{W: 3, H: 3}}}, "invalid"},
		{"negative extent", plan.Library{"a": {{W: -4, H: 7}}, "b": {{W: 3, H: 3}}}, "invalid"},
		{"overflow extent", plan.Library{"a": {{W: 1 << 32, H: 1 << 32}}, "b": {{W: 3, H: 3}}}, "maximum extent"},
	}
	for _, tc := range cases {
		status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: tree, Library: tc.lib})
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", tc.name, status, raw)
			continue
		}
		if !strings.Contains(string(raw), tc.frag) {
			t.Errorf("%s: body %s does not name the failure (%q)", tc.name, raw, tc.frag)
		}
		if !strings.Contains(string(raw), `\"a\"`) && !strings.Contains(string(raw), `"a"`) {
			t.Errorf("%s: body %s does not name module a", tc.name, raw)
		}
	}
}

// TestServerSubstoreWarmup runs the same workload twice against a server
// with a subtree store and no result cache: the second run must resolve
// every node from the store, return byte-identical result payloads, and
// surface the splice scorecard in runtime and /v1/stats.
func TestServerSubstoreWarmup(t *testing.T) {
	sub, err := substore.New(substore.Config{MaxBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Substore: sub})
	req := &OptimizeRequest{Tree: testTree(), Library: testLibrary()}

	status, raw, _ := postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("cold: status %d (body %s)", status, raw)
	}
	cold := decodeOptimize(t, raw)
	if cold.Runtime.SubtreeComputed == 0 || cold.Runtime.SubtreeSpliced != 0 {
		t.Fatalf("cold runtime %+v: want all nodes computed", cold.Runtime)
	}

	status, raw, _ = postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("warm: status %d (body %s)", status, raw)
	}
	warm := decodeOptimize(t, raw)
	if warm.Runtime.SubtreeSpliced != cold.Runtime.SubtreeComputed || warm.Runtime.SubtreeComputed != 0 {
		t.Fatalf("warm runtime %+v: want all %d nodes spliced", warm.Runtime, cold.Runtime.SubtreeComputed)
	}
	if string(cold.Result) != string(warm.Result) {
		t.Fatal("spliced result payload not byte-identical to the cold one")
	}

	stats := getStats(t, ts)
	if !stats.SubstoreEnabled {
		t.Fatal("stats: substore not reported enabled")
	}
	if stats.Substore.Hits == 0 || stats.Substore.Entries == 0 {
		t.Fatalf("stats: substore %+v after a warm run", stats.Substore)
	}

	// NoCache demands a private run: it must neither consult nor warm the
	// shared store.
	before := sub.Stats()
	req.Options.NoCache = true
	status, raw, _ = postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("nocache: status %d (body %s)", status, raw)
	}
	priv := decodeOptimize(t, raw)
	if priv.Runtime.SubtreeSpliced != 0 || priv.Runtime.SubtreeComputed != 0 {
		t.Fatalf("nocache runtime %+v: private run touched the subtree store", priv.Runtime)
	}
	after := sub.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("nocache run moved store counters: %+v -> %+v", before, after)
	}
}
