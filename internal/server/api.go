package server

import (
	"encoding/json"
	"fmt"
	"time"

	"floorplan/internal/buildinfo"
	"floorplan/internal/cache"
	"floorplan/internal/cluster"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
	"floorplan/internal/substore"
	"floorplan/internal/telemetry"
)

// Wire format of the fpserve HTTP API. The optimize response splits the way
// the telemetry report does: Result is the deterministic payload — cached
// verbatim, bit-identical for any worker count and for cached vs. freshly
// computed answers — while Runtime carries what legitimately varies
// (latency, cache disposition).

// OptimizeRequest is the POST /v1/optimize body.
type OptimizeRequest struct {
	// Tree is the floorplan topology (the EncodeTree JSON format).
	Tree *plan.Node `json:"tree"`
	// Library maps module names to implementation lists (the EncodeLibrary
	// format); lists need not be canonical.
	Library plan.Library `json:"library"`
	// Options tune the run; the zero value optimizes exactly.
	Options RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors floorplan.Options plus serving controls.
type RequestOptions struct {
	// K1, K2, Theta, S configure the paper's selection algorithms.
	K1    int     `json:"k1,omitempty"`
	K2    int     `json:"k2,omitempty"`
	Theta float64 `json:"theta,omitempty"`
	S     int     `json:"s,omitempty"`
	// MemoryLimit caps stored implementations; the server clamps it to its
	// own configured ceiling.
	MemoryLimit int64 `json:"memory_limit,omitempty"`
	// SkipPlacement omits the placement from the result.
	SkipPlacement bool `json:"skip_placement,omitempty"`
	// Workers bounds this request's evaluation goroutines (0 = 1, i.e.
	// sequential; the server's pool already provides cross-request
	// parallelism). Does not participate in the cache key: results are
	// bit-identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs overrides the server's per-request deadline downwards.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cache for this request: no lookup, no store.
	NoCache bool `json:"no_cache,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize reply.
type OptimizeResponse struct {
	// Key is the request's content address (hex), the cache key.
	Key string `json:"key"`
	// Result is the deterministic payload (a marshaled Result). It is the
	// exact byte sequence the first computation of this key produced.
	Result json.RawMessage `json:"result"`
	// Runtime varies per request and is never cached.
	Runtime ResponseRuntime `json:"runtime"`
}

// ResponseRuntime is the nondeterministic half of a reply.
type ResponseRuntime struct {
	ElapsedMs int64 `json:"elapsed_ms"`
	// Cache is the disposition: "hit", "miss", "coalesced" (answered by
	// joining another request's in-flight computation of the same key),
	// "bypass" (NoCache set), "off" (server cache disabled), "forwarded"
	// (cluster mode: answered by the key's owning peer) or "peer_fallback"
	// (owner unreachable, computed locally).
	Cache string `json:"cache"`
	// NodeID names the node that answered; empty when the server runs
	// without an id.
	NodeID string `json:"node_id,omitempty"`
	// TraceID is the W3C trace ID the answer was produced under: the
	// caller's own trace (propagated from its traceparent header, or minted
	// by the server), except for coalesced answers, which report the trace
	// of the leading request whose computation they shared.
	TraceID string `json:"trace_id,omitempty"`
	// SpanID is the server-side span for this specific request, always the
	// request's own even when TraceID names the coalesced leader's trace.
	SpanID string `json:"span_id,omitempty"`
	// SubtreeSpliced/SubtreeComputed are the answering computation's
	// subtree-store scorecard: how many tree nodes resolved from the store
	// versus were evaluated. Runtime data (store warmth varies; the result
	// bytes never do); both absent for cache hits, forwards and runs
	// without a subtree store.
	SubtreeSpliced  int64 `json:"subtree_spliced,omitempty"`
	SubtreeComputed int64 `json:"subtree_computed,omitempty"`
}

// Result is the deterministic optimization payload.
type Result struct {
	Best     shape.RImpl   `json:"best"`
	Area     int64         `json:"area"`
	RootList []shape.RImpl `json:"root_list"`
	Stats    ResultStats   `json:"stats"`
	// NodeStats describes every evaluated block in preorder.
	NodeStats []optimizer.NodeStat `json:"node_stats,omitempty"`
	// Placement realizes Best, sorted by module name (omitted with
	// SkipPlacement).
	Placement []PlacedModule `json:"placement,omitempty"`
}

// ResultStats is optimizer.Stats minus Elapsed — wall time is runtime data
// and must not fragment cached payloads.
type ResultStats struct {
	PeakStored  int64 `json:"peak_stored"`
	FinalStored int64 `json:"final_stored"`
	Generated   int64 `json:"generated"`
	Nodes       int   `json:"nodes"`
	LNodes      int   `json:"l_nodes"`
	RSelections int   `json:"r_selections"`
	LSelections int   `json:"l_selections"`
	MaxRList    int   `json:"max_rlist"`
	MaxLSet     int   `json:"max_lset"`
}

// PlacedModule is one realized module box.
type PlacedModule struct {
	Module string `json:"module"`
	X      int64  `json:"x"`
	Y      int64  `json:"y"`
	W      int64  `json:"w"`
	H      int64  `json:"h"`
	ImplW  int64  `json:"impl_w"`
	ImplH  int64  `json:"impl_h"`
}

// DecodeResult unmarshals the deterministic payload.
func (r *OptimizeResponse) DecodeResult() (*Result, error) {
	var out Result
	if err := json.Unmarshal(r.Result, &out); err != nil {
		return nil, fmt.Errorf("server: decoding result payload: %w", err)
	}
	return &out, nil
}

// marshalResult builds the deterministic payload bytes from an optimizer
// result. Struct (not map) marshaling plus the name-sorted placement makes
// the bytes a pure function of the computation.
func marshalResult(res *optimizer.Result) ([]byte, error) {
	out := Result{
		Best:     res.Best,
		Area:     res.Best.Area(),
		RootList: []shape.RImpl(res.RootList),
		Stats: ResultStats{
			PeakStored:  res.Stats.PeakStored,
			FinalStored: res.Stats.FinalStored,
			Generated:   res.Stats.Generated,
			Nodes:       res.Stats.Nodes,
			LNodes:      res.Stats.LNodes,
			RSelections: res.Stats.RSelections,
			LSelections: res.Stats.LSelections,
			MaxRList:    res.Stats.MaxRList,
			MaxLSet:     res.Stats.MaxLSet,
		},
		NodeStats: res.NodeStats,
	}
	if res.Placement != nil {
		for _, m := range res.Placement.ByModule() {
			out.Placement = append(out.Placement, PlacedModule{
				Module: m.Module,
				X:      m.Box.MinX, Y: m.Box.MinY,
				W: m.Box.Width(), H: m.Box.Height(),
				ImplW: m.Impl.W, ImplH: m.Impl.H,
			})
		}
	}
	return json.Marshal(out)
}

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	// StartTimeUnixMs is the wall-clock instant the server process started
	// serving. A poller that sees it change between two scrapes knows the
	// server restarted — and that every counter below reset with it, so
	// deltas across the two scrapes are meaningless. The load harness uses
	// exactly this to invalidate a run whose server died mid-way.
	StartTimeUnixMs int64   `json:"start_time_unix_ms"`
	UptimeMs        int64   `json:"uptime_ms"`
	UptimeSeconds   float64 `json:"uptime_s"`
	// NodeID names this instance in cluster deployments (empty when unset).
	NodeID string `json:"node_id,omitempty"`
	// Version is the binary's build identity (VCS revision, toolchain). The
	// cluster stats aggregator compares it across nodes and flags
	// mixed-version rings.
	Version  buildinfo.Info `json:"version"`
	Requests int64          `json:"requests"`
	// Computed counts optimizer runs executed on this node — the number
	// cluster-wide dedup assertions sum across peers: a coalesced, cached or
	// forwarded answer does not increment it, only an actual local run.
	Computed int64 `json:"computed"`
	// Shed counts requests refused 429 at admission (queue full).
	Shed int64 `json:"shed"`
	// Coalesced counts misses answered by joining another request's
	// in-flight computation of the same key.
	Coalesced int64 `json:"coalesced"`
	// TimedOutQueued / TimedOutComputing split the deadline 503s by
	// whether the computation had begun when the deadline hit.
	TimedOutQueued    int64 `json:"timed_out_queued"`
	TimedOutComputing int64 `json:"timed_out_computing"`
	// AbandonedErrors counts detached (post-timeout) computations that
	// failed after every waiter had already been answered 503 — errors no
	// response could carry.
	AbandonedErrors int64       `json:"abandoned_errors"`
	InFlight        int64       `json:"in_flight"`
	Pending         int64       `json:"pending"`
	Workers         int         `json:"workers"`
	QueueCapacity   int         `json:"queue_capacity"`
	Cache           cache.Stats `json:"cache"`
	CacheEnabled    bool        `json:"cache_enabled"`
	// Substore carries the subtree result store's counters (per-node hits,
	// misses, evictions and byte footprint); zeros when disabled.
	Substore        substore.Stats `json:"substore"`
	SubstoreEnabled bool           `json:"substore_enabled"`
	// Cluster carries the multi-node tier's counters (forwards, fallbacks,
	// hot fills); absent on single-node servers.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Histograms exports the server's populated latency/size histograms
	// keyed by metric name (the same data GET /metrics renders); empty
	// histograms are omitted, and the whole field is absent when telemetry
	// is disabled or nothing has been recorded yet.
	Histograms map[string]telemetry.HistSnapshot `json:"histograms,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// StatusError is the client-side form of a non-2xx reply.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, when the reply carried
	// one (0 otherwise).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Code, e.Message)
}
