package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
	"floorplan/internal/telemetry"
)

func testTree() *plan.Node {
	return plan.NewVSlice(
		plan.NewLeaf("a"),
		plan.NewHSlice(plan.NewLeaf("b"), plan.NewLeaf("c")),
	)
}

func testLibrary() plan.Library {
	return plan.Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
		"c": {{W: 2, H: 5}, {W: 5, H: 2}},
	}
}

func testCache(t *testing.T, budget int64) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postOptimize sends one optimize request and returns status + body.
func postOptimize(t *testing.T, ts *httptest.Server, req *OptimizeRequest) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func decodeOptimize(t *testing.T, raw []byte) *OptimizeResponse {
	t.Helper()
	var out OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding optimize response %q: %v", raw, err)
	}
	return &out
}

func getStats(t *testing.T, ts *httptest.Server) *StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestOptimizeMissThenHit(t *testing.T) {
	col := telemetry.New()
	store, err := cache.New(cache.Config{MaxBytes: 1 << 20, Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Workers:   2,
		Cache:     store,
		Telemetry: col,
	})
	req := &OptimizeRequest{Tree: testTree(), Library: testLibrary()}

	status, raw, _ := postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", status, raw)
	}
	first := decodeOptimize(t, raw)
	if first.Runtime.Cache != "miss" {
		t.Fatalf("first request disposition = %q, want miss", first.Runtime.Cache)
	}
	res, err := first.DecodeResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Area <= 0 || res.Best.W <= 0 || res.Best.H <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if len(res.Placement) != 3 {
		t.Fatalf("placement has %d modules, want 3", len(res.Placement))
	}

	status, raw, _ = postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d, body %s", status, raw)
	}
	second := decodeOptimize(t, raw)
	if second.Runtime.Cache != "hit" {
		t.Fatalf("second request disposition = %q, want hit", second.Runtime.Cache)
	}
	if second.Key != first.Key {
		t.Fatalf("key changed across identical requests: %s vs %s", first.Key, second.Key)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs from fresh result:\n%s\nvs\n%s", first.Result, second.Result)
	}

	stats := getStats(t, ts)
	if !stats.CacheEnabled {
		t.Fatal("stats report cache disabled")
	}
	if stats.Requests != 2 || stats.Cache.Hits != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("stats = requests %d hits %d misses %d, want 2/1/1",
			stats.Requests, stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Cache.Entries != 1 || stats.Cache.Bytes <= 0 {
		t.Fatalf("cache occupancy = %d entries / %d bytes, want 1 entry, >0 bytes",
			stats.Cache.Entries, stats.Cache.Bytes)
	}

	// The serving metrics land in the runtime section of the report.
	rep := col.Report()
	if got := rep.Runtime.Counters["server.requests"]; got != 2 {
		t.Fatalf("server.requests counter = %d, want 2", got)
	}
	if got := rep.Runtime.Counters["cache.hits"]; got != 1 {
		t.Fatalf("cache.hits counter = %d, want 1", got)
	}
	if got := rep.Runtime.Watermarks["cache.bytes_peak"]; got <= 0 {
		t.Fatalf("cache.bytes_peak watermark = %d, want > 0", got)
	}
}

// TestResultDeterminism is the serving half of the determinism contract:
// the result payload is byte-identical across worker counts, across cache
// dispositions (miss, hit, bypass) and with the cache disabled entirely.
func TestResultDeterminism(t *testing.T) {
	_, cached := newTestServer(t, Config{Workers: 4, Cache: testCache(t, 1<<20)})
	_, uncached := newTestServer(t, Config{Workers: 4})

	type variant struct {
		name    string
		ts      *httptest.Server
		opts    RequestOptions
		wantDis string
	}
	variants := []variant{
		{"uncached-w1", uncached, RequestOptions{Workers: 1}, "off"},
		{"uncached-w8", uncached, RequestOptions{Workers: 8}, "off"},
		{"cached-miss-w1", cached, RequestOptions{Workers: 1}, "miss"},
		{"cached-hit-w8", cached, RequestOptions{Workers: 8}, "hit"},
		{"cached-bypass-w2", cached, RequestOptions{Workers: 2, NoCache: true}, "bypass"},
	}
	var baseline []byte
	var baselineKey string
	for _, v := range variants {
		status, raw, _ := postOptimize(t, v.ts, &OptimizeRequest{
			Tree: testTree(), Library: testLibrary(), Options: v.opts,
		})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", v.name, status, raw)
		}
		resp := decodeOptimize(t, raw)
		if resp.Runtime.Cache != v.wantDis {
			t.Fatalf("%s: disposition %q, want %q", v.name, resp.Runtime.Cache, v.wantDis)
		}
		if baseline == nil {
			baseline, baselineKey = resp.Result, resp.Key
			continue
		}
		if resp.Key != baselineKey {
			t.Fatalf("%s: key %s differs from baseline %s (workers must not enter the key)",
				v.name, resp.Key, baselineKey)
		}
		if !bytes.Equal(resp.Result, baseline) {
			t.Fatalf("%s: result differs from baseline:\n%s\nvs\n%s", v.name, resp.Result, baseline)
		}
	}
}

func TestSheddingWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Cache: testCache(t, 1<<20)})

	// Occupy the only worker slot so every request queues; with
	// QueueDepth=1 the admission bound is workers+queue = 2 pending.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	const n = 3
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct libraries keep the keys distinct, so this stays a
			// pure shedding test with no coalescing in the way.
			lib := testLibrary()
			lib["a"] = append(lib["a"], shape.RImpl{W: 1, H: int64(20 + i)})
			status, _, hdr := postOptimize(t, ts, &OptimizeRequest{
				Tree:    testTree(),
				Library: lib,
				Options: RequestOptions{TimeoutMs: 150},
			})
			if status != http.StatusOK && hdr.Get("Retry-After") == "" {
				t.Errorf("%d without Retry-After header", status)
			}
			statuses[i] = status
		}(i)
	}
	wg.Wait()

	var shed429, queued503 int
	for _, st := range statuses {
		switch st {
		case http.StatusTooManyRequests:
			shed429++
		case http.StatusServiceUnavailable:
			queued503++
		default:
			t.Fatalf("unexpected status %d (all: %v)", st, statuses)
		}
	}
	if shed429 != 1 || queued503 != 2 {
		t.Fatalf("got %d×429 and %d×503, want 1 and 2 (all: %v)", shed429, queued503, statuses)
	}
	// Queue-full shedding and queued-deadline timeouts land in distinct
	// counters; nothing ever began computing, so no run was abandoned.
	stats := getStats(t, ts)
	if stats.Shed != 1 || stats.TimedOutQueued != 2 || stats.TimedOutComputing != 0 {
		t.Fatalf("stats shed/timed_out_queued/timed_out_computing = %d/%d/%d, want 1/2/0",
			stats.Shed, stats.TimedOutQueued, stats.TimedOutComputing)
	}
	if calls, waiters := s.flight.Stats(); calls != 0 || waiters != 0 {
		t.Fatalf("flight group not drained: %d calls, %d waiters", calls, waiters)
	}
}

// TestCoalescedMisses is the single-flight contract: N concurrent identical
// requests against a cold cache run the optimizer exactly once, share one
// worker slot, answer byte-identically, and all but the leader report the
// "coalesced" disposition.
func TestCoalescedMisses(t *testing.T) {
	const n = 8
	var runs atomic.Int64
	release := make(chan struct{})
	testHookComputeStart = func() {
		runs.Add(1)
		<-release
	}
	defer func() { testHookComputeStart = nil }()

	col := telemetry.New()
	s, ts := newTestServer(t, Config{Workers: 4, Cache: testCache(t, 1<<20), Telemetry: col})

	type reply struct {
		status int
		resp   *OptimizeResponse
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
			replies[i] = reply{status, decodeOptimize(t, raw)}
		}(i)
	}

	// Hold the computation until every request has joined the call, then
	// let the one leader finish for everyone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		calls, waiters := s.flight.Stats()
		if calls == 1 && waiters == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %d calls, %d waiters", calls, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("optimizer ran %d times for %d identical requests, want exactly 1", got, n)
	}
	dispositions := map[string]int{}
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		dispositions[r.resp.Runtime.Cache]++
		if r.resp.Key != replies[0].resp.Key {
			t.Fatalf("request %d: key %s differs from %s", i, r.resp.Key, replies[0].resp.Key)
		}
		if !bytes.Equal(r.resp.Result, replies[0].resp.Result) {
			t.Fatalf("request %d: result not byte-identical to the leader's", i)
		}
	}
	if dispositions["coalesced"] < n-1 {
		t.Fatalf("dispositions = %v, want at least %d coalesced", dispositions, n-1)
	}
	stats := getStats(t, ts)
	if stats.Coalesced != int64(dispositions["coalesced"]) {
		t.Fatalf("stats.Coalesced = %d, want %d", stats.Coalesced, dispositions["coalesced"])
	}
	if stats.Cache.Entries != 1 {
		t.Fatalf("cache holds %d entries after one coalesced store, want 1", stats.Cache.Entries)
	}
	if got := col.Counter(telemetry.CtrServeCoalesced); got != int64(dispositions["coalesced"]) {
		t.Fatalf("server.coalesced counter = %d, want %d", got, dispositions["coalesced"])
	}

	// The cache is warm now: a repeat is a plain hit, not a new flight.
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusOK {
		t.Fatalf("warm request: status %d", status)
	}
	if resp := decodeOptimize(t, raw); resp.Runtime.Cache != "hit" {
		t.Fatalf("warm request disposition = %q, want hit", resp.Runtime.Cache)
	}
}

// TestAbandonedFailureCounted pins satellite visibility: a computation that
// outlives its only requester and then fails has nobody to answer, so the
// error must land in telemetry and /v1/stats instead of vanishing.
func TestAbandonedFailureCounted(t *testing.T) {
	release := make(chan struct{})
	testHookComputeStart = func() { <-release }
	defer func() { testHookComputeStart = nil }()

	col := telemetry.New()
	s, ts := newTestServer(t, Config{Workers: 1, Cache: testCache(t, 1<<20), Telemetry: col})
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{
		Tree:    testTree(),
		Library: testLibrary(),
		// MemoryLimit 1 makes the run fail — but only after the hook
		// releases it, long past the 50ms deadline.
		Options: RequestOptions{MemoryLimit: 1, TimeoutMs: 50},
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (body %s), want 503", status, raw)
	}
	close(release)
	s.wg.Wait()

	stats := getStats(t, ts)
	if stats.AbandonedErrors != 1 {
		t.Fatalf("stats.AbandonedErrors = %d, want 1", stats.AbandonedErrors)
	}
	if stats.TimedOutComputing != 1 {
		t.Fatalf("stats.TimedOutComputing = %d, want 1", stats.TimedOutComputing)
	}
	if got := col.Counter(telemetry.CtrServeAbandonedErrors); got != 1 {
		t.Fatalf("server.abandoned_errors counter = %d, want 1", got)
	}
}

// TestAbandonedRunWarmsCache pins the timeout contract: a request whose
// computation outlives its deadline gets 503, but the run finishes in the
// background and stores its result, so the retry is a cache hit.
func TestAbandonedRunWarmsCache(t *testing.T) {
	release := make(chan struct{})
	testHookComputeStart = func() { <-release }
	defer func() { testHookComputeStart = nil }()

	s, ts := newTestServer(t, Config{Workers: 1, Cache: testCache(t, 1<<20)})
	req := &OptimizeRequest{
		Tree:    testTree(),
		Library: testLibrary(),
		Options: RequestOptions{TimeoutMs: 50},
	}
	status, raw, hdr := postOptimize(t, ts, req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (body %s), want 503", status, raw)
	}
	if !strings.Contains(string(raw), "computing") {
		t.Fatalf("expected a deadline-while-computing error, got %s", raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}

	// Let the abandoned run finish and wait for its cache store. (The
	// deferred hook reset is ordered after the goroutine by wg.Wait; the
	// retry below is a cache hit and never spawns a computation.)
	close(release)
	s.wg.Wait()

	req.Options.TimeoutMs = 0
	status, raw, _ = postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("retry: status %d, body %s", status, raw)
	}
	if resp := decodeOptimize(t, raw); resp.Runtime.Cache != "hit" {
		t.Fatalf("retry disposition = %q, want hit (abandoned run should warm the cache)",
			resp.Runtime.Cache)
	}
}

func TestMemoryLimitRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{
		Tree:    testTree(),
		Library: testLibrary(),
		Options: RequestOptions{MemoryLimit: 1},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (body %s), want 422", status, raw)
	}

	// The server-side ceiling clamps even "unlimited" requests down.
	_, clamped := newTestServer(t, Config{Workers: 1, MaxMemoryLimit: 1})
	status, raw, _ = postOptimize(t, clamped, &OptimizeRequest{
		Tree:    testTree(),
		Library: testLibrary(),
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("clamped: status %d (body %s), want 422", status, raw)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	lib := `"library": {"a":[{"W":4,"H":7}], "b":[{"W":3,"H":3}], "c":[{"W":2,"H":5}]}`
	tree := `"tree": {"kind":"vslice","children":[{"kind":"leaf","module":"a"},{"kind":"leaf","module":"b"}]}`
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"missing tree", `{` + lib + `}`, http.StatusBadRequest},
		{"missing library", `{` + tree + `}`, http.StatusBadRequest},
		{"invalid tree", `{"tree":{"kind":"vslice"},` + lib + `}`, http.StatusBadRequest},
		{"unknown module", `{"tree":{"kind":"leaf","module":"zz"},` + lib + `}`, http.StatusBadRequest},
		{"empty module list", `{` + tree + `,"library":{"a":[{"W":4,"H":7}],"b":[]}}`, http.StatusBadRequest},
		{"negative workers", `{` + tree + `,` + lib + `,"options":{"workers":-1}}`, http.StatusBadRequest},
		{"negative memory limit", `{` + tree + `,` + lib + `,"options":{"memory_limit":-5}}`, http.StatusBadRequest},
		{"negative timeout", `{` + tree + `,` + lib + `,"options":{"timeout_ms":-100}}`, http.StatusBadRequest},
		{"negative k1", `{` + tree + `,` + lib + `,"options":{"k1":-3}}`, http.StatusBadRequest},
		{"negative k2", `{` + tree + `,` + lib + `,"options":{"k2":-3}}`, http.StatusBadRequest},
		{"negative s", `{` + tree + `,` + lib + `,"options":{"s":-1}}`, http.StatusBadRequest},
		{"oversized body", `{` + tree + `,` + lib + `,"pad":"` + strings.Repeat("x", 600) + `"}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		if status, body := post(tc.body); status != tc.want {
			t.Errorf("%s: status %d (body %s), want %d", tc.name, status, body, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/optimize: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	status, raw, _ := postOptimize(t, ts, &OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("optimize while draining: status %d (body %s), want 503", status, raw)
	}
}

// TestStartShutdown exercises the real listener path end to end.
func TestStartShutdown(t *testing.T) {
	s, err := New(Config{Workers: 1, Cache: testCache(t, 1<<20)})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	base := fmt.Sprintf("http://%s", addr)

	body, _ := json.Marshal(&OptimizeRequest{Tree: testTree(), Library: testLibrary()})
	resp, err := http.Post(base+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestMarshalResultStable pins the payload bytes as a pure function of the
// computation: two fresh computations of the same request marshal to the
// same bytes even on cacheless servers with different worker counts.
func TestMarshalResultStable(t *testing.T) {
	tree := plan.NewWheel(
		plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"),
		plan.NewLeaf("sw"), plan.NewLeaf("c"),
	)
	lib := plan.Library{
		"nw": {{W: 2, H: 4}, {W: 4, H: 2}},
		"ne": {{W: 3, H: 3}},
		"se": {{W: 2, H: 4}, {W: 4, H: 2}},
		"sw": {{W: 3, H: 5}, {W: 5, H: 3}},
		"c":  {{W: 1, H: 2}, {W: 2, H: 1}},
	}
	var payloads [][]byte
	for _, workers := range []int{1, 8} {
		_, ts := newTestServer(t, Config{Workers: 2})
		status, raw, _ := postOptimize(t, ts, &OptimizeRequest{
			Tree: tree, Library: lib,
			Options: RequestOptions{K1: 10, Workers: workers},
		})
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status %d, body %s", workers, status, raw)
		}
		payloads = append(payloads, decodeOptimize(t, raw).Result)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Fatalf("wheel payloads differ across worker counts:\n%s\nvs\n%s", payloads[0], payloads[1])
	}
	var res Result
	if err := json.Unmarshal(payloads[0], &res); err != nil {
		t.Fatal(err)
	}
	if res.Area <= 0 || len(res.Placement) != 5 {
		t.Fatalf("implausible wheel result: area %d, %d placed", res.Area, len(res.Placement))
	}
}
