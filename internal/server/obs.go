package server

import (
	"context"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"floorplan/internal/reqid"
	"floorplan/internal/slogx"
	"floorplan/internal/telemetry"
)

// This file is the server's request-scoped observability plumbing: every
// endpoint runs inside withObservability, which extracts (or mints) the
// request's W3C trace context, exposes it to handlers through the request
// context, captures the response status and byte count, records the
// per-disposition latency histogram and emits one structured access-log
// record per request.

// accessInfo accumulates one request's access-log record while the
// handler runs. The handler goroutine owns the plain fields; flight is
// shared with the (possibly detached) computation goroutine, which is why
// its timing slots are atomics.
type accessInfo struct {
	// trace is this request's identity: the trace ID propagated from the
	// client (or minted here) and a fresh server-side span ID.
	trace reqid.Context
	// parentSpan is the client's span ID when the request carried a
	// traceparent header.
	parentSpan string
	// disposition classifies how the request was answered: hit, miss,
	// coalesced, bypass, off, shed, draining, timeout_queued,
	// timeout_computing, invalid, error — plus the cluster set: forwarded
	// (answered by the owning peer), peer_fallback (owner unreachable,
	// computed locally), forwarded_shed and forwarded_error (owner's
	// non-2xx relayed). Empty for non-optimize endpoints.
	disposition string
	// flightTraceID is the leader's trace ID when this request coalesced
	// onto another request's computation.
	flightTraceID string
	// forwardedTo is the owning peer this request's key was (or would have
	// been) forwarded to; empty when this node owns the key.
	forwardedTo string
	// internalFrom is the origin node's id when this request arrived as an
	// intra-cluster hop (X-FP-Internal).
	internalFrom string
	// flight carries the answering computation's timing (leader's slot
	// wait and compute wall time); nil for cache hits and early exits.
	flight *flightMeta
}

// flightMeta is the annotation the leader stamps on its flight call
// (flight.Call.SetTag): the identity of the computation every coalesced
// follower shares, plus its timing. The timing slots are written by the
// detached computation goroutine and read by each waiter's handler
// goroutine, hence atomics.
type flightMeta struct {
	trace reqid.Context
	// forwardedTo is the owning peer the leader forwarded to ("" for local
	// computations); copied to coalesced waiters for tail attribution.
	forwardedTo string
	queueWaitNs atomic.Int64 // wait for a worker slot before Begin
	computeNs   atomic.Int64 // optimization wall time
	forwardNs   atomic.Int64 // wall time of the peer hop (forwarded calls)
	// fellBack flips when the owner never answered and the flight degraded
	// to a local computation; waiters report peer_fallback instead of
	// forwarded.
	fellBack atomic.Bool
	// subSpliced/subComputed are the computation's subtree-store scorecard
	// (nodes resolved from the store vs. evaluated), written by the
	// detached computation goroutine and copied into every sharing
	// request's ResponseRuntime. Zero when the substore is off.
	subSpliced  atomic.Int64
	subComputed atomic.Int64
	// spans is the computation's span tree, stashed by compute when slow
	// capture is on (nil otherwise); shared by every coalesced waiter.
	spans atomic.Pointer[[]telemetry.Span]
}

// accessKey keys the accessInfo in the request context.
type accessKey struct{}

// accessInfoFrom returns the request's accessInfo record. Handlers invoked
// outside withObservability (direct tests) get a discardable record so the
// code path never branches.
func accessInfoFrom(ctx context.Context) *accessInfo {
	if rec, ok := ctx.Value(accessKey{}).(*accessInfo); ok {
		return rec
	}
	return &accessInfo{trace: reqid.New()}
}

// statusWriter captures the status code and body size flowing through a
// ResponseWriter for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// withObservability wraps one endpoint with trace extraction, response
// capture, latency recording and access logging.
func (s *Server) withObservability(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		rec := &accessInfo{}
		if tc, err := reqid.Parse(r.Header.Get("traceparent")); err == nil {
			// Same trace as the caller, fresh span for the server's work.
			rec.trace = tc.Child()
			rec.parentSpan = tc.SpanID.String()
		} else {
			rec.trace = reqid.New()
		}
		ctx := reqid.NewContext(r.Context(), rec.trace)
		ctx = context.WithValue(ctx, accessKey{}, rec)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(started)
		if hist, ok := dispositionHist(rec.disposition); ok {
			// The request's trace ID rides along as the bucket's exemplar, so
			// a latency bucket on /metrics or in a cluster merge links to a
			// real trace in this node's access log.
			s.tel.RecordExemplar(hist, elapsed.Nanoseconds(), rec.trace.TraceID)
		}
		s.maybeCaptureSlow(r, sw, rec, elapsed)
		s.logAccess(r, sw, rec, elapsed)
	}
}

// dispositionHist maps an optimize disposition onto its end-to-end
// latency histogram. Unknown (including empty) dispositions record
// nothing.
func dispositionHist(d string) (telemetry.Hist, bool) {
	switch d {
	case "hit":
		return telemetry.HistServeHitNs, true
	case "miss":
		return telemetry.HistServeMissNs, true
	case "coalesced":
		return telemetry.HistServeCoalescedNs, true
	case "bypass", "off":
		return telemetry.HistServeBypassNs, true
	case "forwarded":
		return telemetry.HistServeForwardedNs, true
	case "peer_fallback":
		return telemetry.HistServeFallbackNs, true
	case "shed", "draining", "timeout_queued", "timeout_computing", "forwarded_shed":
		return telemetry.HistServeShedNs, true
	case "invalid", "error", "forwarded_error":
		return telemetry.HistServeErrorNs, true
	}
	return 0, false
}

// durMs renders a duration as fractional milliseconds for log records.
func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// logAccess emits the per-request access-log record. Scrape traffic
// (/metrics) logs at debug so a 15-second Prometheus interval does not
// drown the request log.
func (s *Server) logAccess(r *http.Request, sw *statusWriter, rec *accessInfo, elapsed time.Duration) {
	if s.logger == nil {
		return
	}
	level := slog.LevelInfo
	if r.URL.Path == "/metrics" {
		level = slog.LevelDebug
	}
	if !s.logger.Enabled(r.Context(), level) {
		return
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	attrs := []any{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int64("bytes", sw.bytes),
		slog.String("trace_id", rec.trace.TraceID.String()),
		slog.String("span_id", rec.trace.SpanID.String()),
		slog.Float64("elapsed_ms", durMs(elapsed)),
	}
	if id := s.cfg.NodeID; id != "" {
		attrs = append(attrs, slog.String("node_id", id))
	}
	if rec.parentSpan != "" {
		attrs = append(attrs, slog.String("parent_span_id", rec.parentSpan))
	}
	if rec.disposition != "" {
		attrs = append(attrs, slog.String("disposition", rec.disposition))
		if m := rec.flight; m != nil {
			attrs = append(attrs,
				slog.Float64("queue_wait_ms", durMs(time.Duration(m.queueWaitNs.Load()))),
				slog.Float64("compute_ms", durMs(time.Duration(m.computeNs.Load()))))
			if fwd := m.forwardNs.Load(); fwd > 0 {
				attrs = append(attrs, slog.Float64("forward_ms", durMs(time.Duration(fwd))))
			}
		}
	}
	if rec.forwardedTo != "" {
		attrs = append(attrs, slog.String("forwarded_to", rec.forwardedTo))
	}
	if rec.internalFrom != "" {
		attrs = append(attrs, slog.String("internal_from", rec.internalFrom))
	}
	if rec.flightTraceID != "" {
		attrs = append(attrs, slog.String("flight_trace_id", rec.flightTraceID))
	}
	s.logger.Log(r.Context(), level, "request", attrs...)
}

// debugSampled emits a sampled debug record for a high-volume event path;
// the record carries the running event count so rates survive sampling.
func (s *Server) debugSampled(sampler *slogx.Sampler, msg string, rec *accessInfo, attrs ...any) {
	if s.logger == nil || !s.logger.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	if !sampler.Allow() {
		return
	}
	attrs = append(attrs,
		slog.String("trace_id", rec.trace.TraceID.String()),
		slog.Uint64("event_count", sampler.Count()))
	s.logger.Debug(msg, attrs...)
}

// handleMetrics serves GET /metrics: the telemetry collector in Prometheus
// text exposition format. A server without a collector still renders every
// family at zero, so scrape configs never see a 404.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", telemetry.PromContentType)
	_ = s.tel.WritePrometheus(w)
}
