package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"floorplan/internal/reqid"
	"floorplan/internal/telemetry"
)

// recorderConfig enables the flight recorder with a hair trigger and a short
// interval (so the CPU capture sleeps 50ms, not 2.5s).
func recorderConfig() Config {
	return Config{
		Workers:           1,
		Telemetry:         telemetry.New(),
		ProfileTriggerP99: time.Millisecond,
		ProfileInterval:   100 * time.Millisecond,
		ProfileRing:       2,
	}
}

// TestFlightRecorderP99Trigger drives the watchdog directly: a slow
// exemplared observation lands in the window, the tick fires the p99 trigger,
// and the capture carries the reason, the trace ID, and both profiles —
// retrievable through GET /debug/profiles.
func TestFlightRecorderP99Trigger(t *testing.T) {
	s, ts := newTestServer(t, recorderConfig())
	if s.rec == nil {
		t.Fatal("flight recorder not constructed despite ProfileTriggerP99")
	}

	// A 50ms observation against a 1ms trigger, recorded with a known trace
	// — exactly what the obs middleware does for a genuinely slow request.
	trace := reqid.New()
	s.tel.RecordExemplar(telemetry.HistServeMissNs,
		(50 * time.Millisecond).Nanoseconds(), trace.TraceID)

	s.rec.tick()

	caps, total := s.rec.snapshot()
	if total != 1 || len(caps) != 1 {
		t.Fatalf("captures after trigger: total=%d len=%d, want 1", total, len(caps))
	}
	cap := caps[0]
	if cap.Reason != "p99" {
		t.Fatalf("capture reason %q, want p99", cap.Reason)
	}
	if cap.P99Ms < 1 {
		t.Fatalf("capture p99 %.3fms under the 1ms trigger", cap.P99Ms)
	}
	if cap.WindowRequests != 1 {
		t.Fatalf("window requests %d, want 1", cap.WindowRequests)
	}
	found := false
	for _, id := range cap.TraceIDs {
		if id == trace.TraceID.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("capture traces %v lack the slow request's %s", cap.TraceIDs, trace.TraceID)
	}
	if cap.Error != "" {
		t.Fatalf("capture error: %s", cap.Error)
	}
	if cap.CPUProfileBytes == 0 || cap.HeapProfileBytes == 0 {
		t.Fatalf("profile sizes cpu=%d heap=%d, want both nonzero",
			cap.CPUProfileBytes, cap.HeapProfileBytes)
	}

	// The index over HTTP mirrors the snapshot, without profile bytes.
	resp, err := http.Get(ts.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiles index: HTTP %d", resp.StatusCode)
	}
	var idx profilesResponse
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if idx.Captured != 1 || len(idx.Captures) != 1 || idx.Captures[0].Reason != "p99" {
		t.Fatalf("index = %+v, want one p99 capture", idx)
	}
	if idx.Capacity != 2 {
		t.Fatalf("index capacity %d, want the configured ring of 2", idx.Capacity)
	}

	// The raw heap profile downloads as bytes.
	resp2, err := http.Get(ts.URL + "/debug/profiles?id=1&kind=heap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || len(raw) == 0 {
		t.Fatalf("heap download: HTTP %d, %d bytes", resp2.StatusCode, len(raw))
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("heap download content type %q", ct)
	}

	// Cooldown: another slow request in the very next windows must not stack
	// a second capture immediately.
	s.tel.RecordExemplar(telemetry.HistServeMissNs,
		(50 * time.Millisecond).Nanoseconds(), reqid.New().TraceID)
	s.rec.tick()
	if _, total := s.rec.snapshot(); total != 1 {
		t.Fatalf("capture during cooldown: total=%d, want still 1", total)
	}
}

// TestFlightRecorderQuietWindow: a fast window fires nothing.
func TestFlightRecorderQuietWindow(t *testing.T) {
	s, _ := newTestServer(t, recorderConfig())
	s.tel.Record(telemetry.HistServeHitNs, int64(100*time.Microsecond))
	s.rec.tick()
	if _, total := s.rec.snapshot(); total != 0 {
		t.Fatalf("capture on a sub-threshold window: total=%d", total)
	}
}

// TestFlightRecorderShedTrigger: a shed request in the window triggers even
// when latencies look fine.
func TestFlightRecorderShedTrigger(t *testing.T) {
	s, _ := newTestServer(t, recorderConfig())
	s.shed.Add(1)
	s.rec.tick()
	caps, total := s.rec.snapshot()
	if total != 1 || len(caps) != 1 || caps[0].Reason != "shed" {
		t.Fatalf("captures = %+v (total %d), want one shed capture", caps, total)
	}
}

// TestProfilesDisabled: without ProfileTriggerP99 the endpoint 404s and the
// server runs recorder-free.
func TestProfilesDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	if s.rec != nil {
		t.Fatal("flight recorder constructed without ProfileTriggerP99")
	}
	resp, err := http.Get(ts.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("profiles on a disabled server: HTTP %d, want 404", resp.StatusCode)
	}
}
