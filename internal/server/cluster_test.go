package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/cluster"
	"floorplan/internal/plan"
)

// clusterNode is one in-process fpserve instance of a test cluster. hs is
// the HTTP front end, exposed so partial-failure tests can kill one node
// while the rest of the ring keeps serving.
type clusterNode struct {
	srv *Server
	url string
	hs  *http.Server
}

// startCluster boots n in-process nodes sharing one static peer list. The
// listeners bind before any ring is built — mirroring fpserve's -peers flag,
// where membership is known ahead of serving — so every node constructs the
// identical ring over the real URLs.
func startCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			Workers: 2,
			Cache:   testCache(t, 1<<20),
			NodeID:  fmt.Sprintf("node-%d", i),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		cl, err := cluster.New(cluster.Config{
			Self:   urls[i],
			Peers:  urls,
			NodeID: cfg.NodeID,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cluster = cl
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(lns[i]) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
			_ = s.Shutdown(ctx) // waits out detached computations
		})
		nodes[i] = &clusterNode{srv: s, url: urls[i], hs: hs}
	}
	return nodes
}

// postURL is postOptimize against a raw base URL with optional extra headers.
func postURL(t *testing.T, base string, req *OptimizeRequest, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func getStatsURL(t *testing.T, base string) *StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// keyOf derives the content address the server will compute for req,
// mirroring handleOptimize's KeySpec (no MaxMemoryLimit clamp in tests).
func keyOf(t *testing.T, req *OptimizeRequest) cache.Key {
	t.Helper()
	lib, err := plan.CanonicalLibrary(req.Library)
	if err != nil {
		t.Fatal(err)
	}
	k, err := cache.KeySpec{
		Tree:          req.Tree,
		Lib:           lib,
		K1:            req.Options.K1,
		K2:            req.Options.K2,
		Theta:         req.Options.Theta,
		S:             req.Options.S,
		MemoryLimit:   req.Options.MemoryLimit,
		SkipPlacement: req.Options.SkipPlacement,
	}.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// reqOwnedBy fabricates a request whose content address lands on owner's
// ring arc by perturbing Theta — a knob that changes the key without
// changing what a correct answer looks like for the tiny test tree. salt
// keeps different call sites from minting the same request.
func reqOwnedBy(t *testing.T, cl *cluster.Cluster, owner string, salt int) *OptimizeRequest {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		req := &OptimizeRequest{
			Tree:    testTree(),
			Library: testLibrary(),
			Options: RequestOptions{Theta: float64(salt*100_000+i+1) * 1e-9},
		}
		if node, _ := cl.Owner(keyOf(t, req)); node == owner {
			return req
		}
	}
	t.Fatalf("no request found whose key is owned by %q", owner)
	return nil
}

// TestClusterForwardDedupAndPeerFill is the tentpole end to end on two
// in-process nodes: a request at the non-owner is forwarded (one optimizer
// run cluster-wide, byte-identical bytes everywhere), the hot-marked reply
// fills the non-owner's local cache, and the next request for the key is a
// local hit with no second hop.
func TestClusterForwardDedupAndPeerFill(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	a, b := nodes[0], nodes[1]
	req := reqOwnedBy(t, a.srv.cfg.Cluster, b.url, 1)

	status, raw, _ := postURL(t, a.url, req, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded request: HTTP %d: %s", status, raw)
	}
	fwd := decodeOptimize(t, raw)
	if fwd.Runtime.Cache != "forwarded" {
		t.Fatalf("disposition %q, want forwarded", fwd.Runtime.Cache)
	}
	if fwd.Runtime.NodeID != "node-0" {
		t.Fatalf("responding node %q, want node-0", fwd.Runtime.NodeID)
	}

	sa, sb := getStatsURL(t, a.url), getStatsURL(t, b.url)
	if got := sa.Computed + sb.Computed; got != 1 {
		t.Fatalf("cluster-wide optimizer runs = %d, want exactly 1", got)
	}
	if sb.Computed != 1 {
		t.Fatalf("owner computed %d, want 1 (non-owner ran the optimizer)", sb.Computed)
	}
	if sa.Cluster == nil || sa.Cluster.Forwarded != 1 {
		t.Fatalf("origin cluster stats = %+v, want 1 forward", sa.Cluster)
	}
	if sa.Cluster.HotFills != 1 {
		t.Fatalf("hot_fills = %d, want 1 (the only tracked key is top-K by definition)",
			sa.Cluster.HotFills)
	}

	// The owner answers the same request from its cache, byte-identically.
	status, raw, _ = postURL(t, b.url, req, nil)
	if status != http.StatusOK {
		t.Fatalf("owner request: HTTP %d: %s", status, raw)
	}
	own := decodeOptimize(t, raw)
	if own.Runtime.Cache != "hit" {
		t.Fatalf("owner disposition %q, want hit", own.Runtime.Cache)
	}
	if own.Key != fwd.Key || !bytes.Equal(own.Result, fwd.Result) {
		t.Fatal("owner's bytes differ from the forwarded reply")
	}

	// Peer fill: the non-owner now answers locally — no second hop.
	status, raw, _ = postURL(t, a.url, req, nil)
	if status != http.StatusOK {
		t.Fatalf("replica request: HTTP %d: %s", status, raw)
	}
	rep := decodeOptimize(t, raw)
	if rep.Runtime.Cache != "hit" {
		t.Fatalf("replica disposition %q, want hit from the peer-filled cache", rep.Runtime.Cache)
	}
	if !bytes.Equal(rep.Result, fwd.Result) {
		t.Fatal("replica bytes differ from the forwarded reply")
	}
	if sa2 := getStatsURL(t, a.url); sa2.Cluster.Forwarded != 1 {
		t.Fatalf("replica hit forwarded again: %d hops", sa2.Cluster.Forwarded)
	}
}

// TestClusterLoopGuard: a request already carrying the hop marker is never
// forwarded again, even when the ring says a peer owns the key — a
// disagreeing ring degrades to a local computation, not a proxy loop.
func TestClusterLoopGuard(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	a, b := nodes[0], nodes[1]
	req := reqOwnedBy(t, a.srv.cfg.Cluster, b.url, 2)

	status, raw, _ := postURL(t, a.url, req, map[string]string{
		cluster.HeaderInternal: "node-x",
	})
	if status != http.StatusOK {
		t.Fatalf("hop-marked request: HTTP %d: %s", status, raw)
	}
	resp := decodeOptimize(t, raw)
	if resp.Runtime.Cache != "miss" {
		t.Fatalf("disposition %q, want miss (local computation)", resp.Runtime.Cache)
	}
	sa := getStatsURL(t, a.url)
	if sa.Computed != 1 {
		t.Fatalf("hop-marked request computed %d times locally, want 1", sa.Computed)
	}
	if sa.Cluster.Forwarded != 0 {
		t.Fatalf("hop-marked request was re-forwarded %d times", sa.Cluster.Forwarded)
	}
	if sa.Cluster.InternalRequests != 1 {
		t.Fatalf("internal_requests = %d, want 1", sa.Cluster.InternalRequests)
	}
	if sb := getStatsURL(t, b.url); sb.Computed != 0 {
		t.Fatalf("owner computed %d, want 0 — the loop guard leaked a hop", sb.Computed)
	}
}

// TestClusterPeerFallback: an owner that refuses connections costs one
// failed hop, not availability — the origin computes locally and the
// request succeeds with the peer_fallback disposition.
func TestClusterPeerFallback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close() // the port now refuses connections

	self := "http://origin-a"
	cl, err := cluster.New(cluster.Config{
		Self:        self,
		Peers:       []string{self, deadURL},
		NodeID:      "node-a",
		PeerTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Cache: testCache(t, 1<<20), Cluster: cl})
	req := reqOwnedBy(t, cl, deadURL, 3)

	status, raw, _ := postOptimize(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("request with a dead owner: HTTP %d: %s", status, raw)
	}
	resp := decodeOptimize(t, raw)
	if resp.Runtime.Cache != "peer_fallback" {
		t.Fatalf("disposition %q, want peer_fallback", resp.Runtime.Cache)
	}
	if len(resp.Result) == 0 {
		t.Fatal("fallback produced no result")
	}
	st := getStats(t, ts)
	if st.Computed != 1 {
		t.Fatalf("fallback computed %d times, want 1", st.Computed)
	}
	if st.Cluster.PeerFallbacks != 1 {
		t.Fatalf("peer_fallback = %d, want 1", st.Cluster.PeerFallbacks)
	}

	// The fallback stored locally: a retry is a plain hit, no second hop.
	status, raw, _ = postOptimize(t, ts, req)
	if status != http.StatusOK || decodeOptimize(t, raw).Runtime.Cache != "hit" {
		t.Fatalf("retry after fallback: HTTP %d, %s", status, raw)
	}
}

// TestClusterStatusRelay: a non-2xx owner answer is relayed verbatim —
// status, message and Retry-After — in exactly one upstream attempt, so the
// origin's client retry budget is the only one applied.
func TestClusterStatusRelay(t *testing.T) {
	var hits int
	var mu sync.Mutex
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Retry-After", "9")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"owner saturated"}`))
	}))
	defer owner.Close()

	self := "http://origin-a"
	cl, err := cluster.New(cluster.Config{
		Self:   self,
		Peers:  []string{self, owner.URL},
		NodeID: "node-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Cache: testCache(t, 1<<20), Cluster: cl})
	req := reqOwnedBy(t, cl, owner.URL, 4)

	status, raw, hdr := postOptimize(t, ts, req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("relayed status = %d, want the owner's 429", status)
	}
	if got := hdr.Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After = %q, want the owner's hint verbatim", got)
	}
	var body errorResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "owner saturated" {
		t.Fatalf("relayed message = %q, want the owner's verbatim", body.Error)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Fatalf("owner saw %d attempts for one request, want exactly 1", hits)
	}
}

// TestClusterPeerFillEvictionRace drives concurrent forwarded requests into
// a non-owner whose cache budget holds only a couple of entries, so peer
// fills (Cache.Put from runForward), local evictions and cache reads race
// constantly. Run under -race; correctness assertion: every request
// succeeds and a key's bytes never change.
func TestClusterPeerFillEvictionRace(t *testing.T) {
	nodes := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.Workers = 4
		if i == 0 {
			// Room for at most ~2 peer-filled payloads: every fill evicts.
			cfg.Cache = testCache(t, 2<<10)
		}
	})
	a, b := nodes[0], nodes[1]

	const distinct = 12
	reqs := make([]*OptimizeRequest, distinct)
	for i := range reqs {
		reqs[i] = reqOwnedBy(t, a.srv.cfg.Cluster, b.url, 100+i)
	}

	var mu sync.Mutex
	seen := make(map[string][]byte, distinct) // key -> first observed bytes
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				req := reqs[(g*31+i)%distinct]
				status, raw, _ := postURL(t, a.url, req, nil)
				if status != http.StatusOK {
					select {
					case errs <- fmt.Errorf("goroutine %d: HTTP %d: %s", g, status, raw):
					default:
					}
					return
				}
				resp := decodeOptimize(t, raw)
				mu.Lock()
				if prev, ok := seen[resp.Key]; !ok {
					seen[resp.Key] = resp.Result
				} else if !bytes.Equal(prev, resp.Result) {
					mu.Unlock()
					select {
					case errs <- fmt.Errorf("key %s answered with diverging bytes", resp.Key):
					default:
					}
					return
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if len(seen) != distinct {
		t.Fatalf("observed %d distinct keys, want %d", len(seen), distinct)
	}
	// The owner computed each key at most once — coalescing plus its own
	// cache absorb every repeat, however the non-owner's evictions fell.
	if sb := getStatsURL(t, b.url); sb.Computed > distinct {
		t.Fatalf("owner computed %d times for %d distinct keys", sb.Computed, distinct)
	}
}

// TestClusterNoCacheStaysLocal: a NoCache request never leaves the node it
// arrived at — private runs touch no shared state, including peers.
func TestClusterNoCacheStaysLocal(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	a, b := nodes[0], nodes[1]
	req := reqOwnedBy(t, a.srv.cfg.Cluster, b.url, 5)
	req.Options.NoCache = true

	status, raw, _ := postURL(t, a.url, req, nil)
	if status != http.StatusOK {
		t.Fatalf("NoCache request: HTTP %d: %s", status, raw)
	}
	if got := decodeOptimize(t, raw).Runtime.Cache; got != "bypass" {
		t.Fatalf("disposition %q, want bypass", got)
	}
	sa, sb := getStatsURL(t, a.url), getStatsURL(t, b.url)
	if sa.Computed != 1 || sa.Cluster.Forwarded != 0 || sb.Computed != 0 {
		t.Fatalf("NoCache leaked off-node: local computed %d, forwards %d, peer computed %d",
			sa.Computed, sa.Cluster.Forwarded, sb.Computed)
	}
}
