// Package server is the fpserve serving subsystem: an HTTP JSON API over
// the floorplan optimizer with cross-request memoization.
//
// Endpoints:
//
//	POST /v1/optimize  — optimize a plan tree + library (OptimizeRequest)
//	GET  /healthz      — liveness; 503 while draining
//	GET  /v1/stats     — cache, queue and pool statistics (StatsResponse)
//
// Production plumbing: a bounded worker pool (Config.Workers slots, the
// same semantics as floorplan.Options.Workers bounds goroutines) admits at
// most Workers concurrent evaluations with Config.QueueDepth requests
// waiting behind them; anything beyond that is shed with 429 and a
// Retry-After hint rather than queued without bound. Every request runs
// under a deadline and a clamped memory budget. Shutdown drains: in-flight
// requests finish, new ones get 503. When a Config.Cache is attached,
// results are memoized under their content address (cache.KeySpec), so a
// repeated request is answered byte-identically from memory — abandoned
// (timed-out) computations still warm the cache for the retry.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/telemetry"
)

// Config sizes a Server. The zero value serves with one worker slot per
// CPU, a queue of four waiting requests per slot, a 60-second deadline, a
// 32 MiB body cap, no memory-budget ceiling and no cache.
type Config struct {
	// Workers is the number of requests evaluated concurrently
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker slot
	// before the server sheds load (0 = 4×Workers).
	QueueDepth int
	// RequestTimeout is the per-request deadline (0 = 60s). Requests may
	// lower it via Options.TimeoutMs, never raise it.
	RequestTimeout time.Duration
	// MaxMemoryLimit caps every request's stored-implementation budget;
	// requests asking for more (or for unlimited) are clamped down to it.
	// 0 imposes no ceiling.
	MaxMemoryLimit int64
	// MaxBodyBytes caps the request body (0 = 32 MiB).
	MaxBodyBytes int64
	// Cache memoizes results across requests; nil disables.
	Cache *cache.Cache
	// Telemetry receives request/queue/cache counters, queue watermarks,
	// per-request serve spans and the optimizer's scalar metrics.
	Telemetry *telemetry.Collector
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.workers()
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 60 * time.Second
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 32 << 20
}

// Server serves optimization requests. Create with New.
type Server struct {
	cfg   Config
	sem   chan struct{}
	tel   *telemetry.Collector
	start time.Time

	pending  atomic.Int64 // admitted requests not yet answered
	inflight atomic.Int64 // requests holding a worker slot
	requests atomic.Int64
	shed     atomic.Int64
	draining atomic.Bool

	wg   sync.WaitGroup // background computations (incl. abandoned ones)
	http *http.Server
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("server: negative worker count %d", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.MaxMemoryLimit < 0 {
		return nil, fmt.Errorf("server: negative memory ceiling %d", cfg.MaxMemoryLimit)
	}
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.workers()),
		tel:   cfg.Telemetry,
		start: time.Now(),
	}, nil
}

// Handler returns the API routes, for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.http = &http.Server{Handler: s.Handler()}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains gracefully: health flips to 503, new optimize requests
// are refused, in-flight HTTP requests and background computations finish
// (or ctx expires).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		UptimeMs:      time.Since(s.start).Milliseconds(),
		Requests:      s.requests.Load(),
		Shed:          s.shed.Load(),
		InFlight:      s.inflight.Load(),
		Pending:       s.pending.Load(),
		Workers:       s.cfg.workers(),
		QueueCapacity: s.cfg.queueDepth(),
		Cache:         s.cfg.Cache.Stats(),
		CacheEnabled:  s.cfg.Cache != nil,
	})
}

// runOutcome is what a background computation hands back.
type runOutcome struct {
	payload []byte
	err     error
}

// testHookComputeStart, when non-nil, runs at the start of every background
// computation; tests use it to hold a run past its request deadline.
var testHookComputeStart func()

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.requests.Add(1)
	s.tel.Inc(telemetry.CtrServeRequests)
	started := time.Now()
	spanStart := s.tel.Now()

	// Admission: at most Workers in flight plus QueueDepth waiting; beyond
	// that, shed immediately — a bounded queue with 429 beats an unbounded
	// one with collapse.
	pending := s.pending.Add(1)
	defer s.pending.Add(-1)
	s.tel.Observe(telemetry.MaxServeQueue, pending)
	if pending > int64(s.cfg.workers()+s.cfg.queueDepth()) {
		s.shed.Add(1)
		s.tel.Inc(telemetry.CtrServeShed)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "saturated: request queue full")
		return
	}

	req, status, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	lib, err := plan.CanonicalLibrary(req.Library)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, m := range req.Tree.Modules() {
		if _, ok := lib[m]; !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("module %q not in library", m))
			return
		}
	}
	memLimit := req.Options.MemoryLimit
	if memLimit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative memory_limit %d", memLimit))
		return
	}
	if max := s.cfg.MaxMemoryLimit; max > 0 && (memLimit == 0 || memLimit > max) {
		memLimit = max
	}

	key, err := cache.KeySpec{
		Tree:          req.Tree,
		Lib:           lib,
		K1:            req.Options.K1,
		K2:            req.Options.K2,
		Theta:         req.Options.Theta,
		S:             req.Options.S,
		MemoryLimit:   memLimit,
		SkipPlacement: req.Options.SkipPlacement,
	}.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	mode := "off"
	if s.cfg.Cache != nil {
		if req.Options.NoCache {
			mode = "bypass"
		} else if payload, ok := s.cfg.Cache.Get(key); ok {
			s.recordServeSpan(spanStart, "hit")
			s.respond(w, key, payload, "hit", started)
			return
		} else {
			mode = "miss"
		}
	}

	// Acquire a worker slot under the request deadline.
	timeout := s.cfg.timeout()
	if ms := req.Options.TimeoutMs; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.shed.Add(1)
		s.tel.Inc(telemetry.CtrServeShed)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "deadline reached while queued")
		return
	}
	s.tel.Observe(telemetry.MaxServeInFlight, s.inflight.Add(1))

	// The computation runs detached from the HTTP goroutine: optimization
	// is not cancelable mid-evaluation, so on timeout we answer 503 and let
	// the run finish in the background — it still stores its result, which
	// warms the cache for the client's retry. Shutdown waits for these.
	outCh := make(chan runOutcome, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-s.sem; s.inflight.Add(-1) }()
		if testHookComputeStart != nil {
			testHookComputeStart()
		}
		payload, err := s.compute(req, lib, memLimit)
		if err == nil && s.cfg.Cache != nil && !req.Options.NoCache {
			s.cfg.Cache.Put(key, payload)
		}
		outCh <- runOutcome{payload: payload, err: err}
	}()

	select {
	case out := <-outCh:
		s.recordServeSpan(spanStart, mode)
		if out.err != nil {
			if optimizer.IsMemoryLimit(out.err) {
				writeError(w, http.StatusUnprocessableEntity, out.err.Error())
			} else {
				writeError(w, http.StatusInternalServerError, out.err.Error())
			}
			return
		}
		s.respond(w, key, out.payload, mode, started)
	case <-ctx.Done():
		s.recordServeSpan(spanStart, "timeout")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "deadline reached while computing")
	}
}

// decodeRequest parses and structurally validates the body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*OptimizeRequest, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	var req OptimizeRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	if req.Tree == nil {
		return nil, http.StatusBadRequest, errors.New("missing tree")
	}
	if err := req.Tree.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(req.Library) == 0 {
		return nil, http.StatusBadRequest, errors.New("missing library")
	}
	if req.Options.Workers < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Options.Workers)
	}
	return &req, 0, nil
}

// compute runs one optimization and marshals the deterministic payload.
// The optimizer's scalar telemetry folds into the server collector through
// a per-request shard (MergeScalars keeps the span slice bounded).
func (s *Server) compute(req *OptimizeRequest, lib plan.Library, memLimit int64) ([]byte, error) {
	olib := make(optimizer.Library, len(lib))
	for name, impls := range lib {
		olib[name] = shape.RList(impls) // canonical by construction
	}
	workers := req.Options.Workers
	if workers == 0 {
		// Default sequential: the pool already parallelizes across
		// requests; per-request parallelism is opt-in.
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	shard := s.tel.Shard()
	o, err := optimizer.New(olib, optimizer.Options{
		Policy: selection.Policy{
			K1:    req.Options.K1,
			K2:    req.Options.K2,
			Theta: req.Options.Theta,
			S:     req.Options.S,
		},
		MemoryLimit:   memLimit,
		SkipPlacement: req.Options.SkipPlacement,
		Workers:       workers,
		Telemetry:     shard,
	})
	if err != nil {
		return nil, err
	}
	res, err := o.Run(req.Tree)
	s.tel.MergeScalars(shard)
	if err != nil {
		return nil, err
	}
	return marshalResult(res)
}

func (s *Server) respond(w http.ResponseWriter, key cache.Key, payload []byte, mode string, started time.Time) {
	writeJSON(w, http.StatusOK, &OptimizeResponse{
		Key:    key.String(),
		Result: json.RawMessage(payload),
		Runtime: ResponseRuntime{
			ElapsedMs: time.Since(started).Milliseconds(),
			Cache:     mode,
		},
	})
}

func (s *Server) recordServeSpan(start time.Duration, disposition string) {
	if s.tel == nil {
		return
	}
	s.tel.RecordSpan(telemetry.Span{
		Name:  "optimize " + disposition,
		Cat:   "serve",
		Start: start,
		Dur:   s.tel.Now() - start,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
