// Package server is the fpserve serving subsystem: an HTTP JSON API over
// the floorplan optimizer with cross-request memoization.
//
// Endpoints:
//
//	POST /v1/optimize  — optimize a plan tree + library (OptimizeRequest)
//	GET  /healthz      — liveness; 503 while draining
//	GET  /v1/stats     — cache, queue and pool statistics (StatsResponse)
//	GET  /metrics      — Prometheus text exposition of the telemetry
//	                     collector (counters, gauges, latency histograms)
//
// Observability: every request runs under a W3C trace context — extracted
// from the caller's traceparent header or minted on arrival — that is
// returned in ResponseRuntime, stamped on the serve/flight/optimizer
// telemetry spans, and logged in one structured access record per request
// (Config.Logger). Coalesced followers report the leader's trace ID, so a
// client retry correlates with the server-side flight it joined.
//
// Production plumbing: a bounded worker pool (Config.Workers slots, the
// same semantics as floorplan.Options.Workers bounds goroutines) admits at
// most Workers concurrent evaluations with Config.QueueDepth requests
// waiting behind them; anything beyond that is shed with 429 and a
// Retry-After hint rather than queued without bound. Every request runs
// under a deadline and a clamped memory budget. Shutdown drains: in-flight
// requests finish, new ones get 503. When a Config.Cache is attached,
// results are memoized under their content address (cache.KeySpec), so a
// repeated request is answered byte-identically from memory — abandoned
// (timed-out) computations still warm the cache for the retry.
//
// Concurrent misses for the same content address are coalesced through an
// internal/flight group: one request leads the computation (one worker
// slot, one cache store) and the rest share its bytes, answered with the
// "coalesced" disposition. Retry-After hints on 429/503 are derived from
// observed queue pressure (pending depth × smoothed compute time) rather
// than a constant.
//
// Cluster mode (Config.Cluster): each content address has one owning
// backend on a consistent-hash ring. A request arriving at a non-owner
// first consults its local cache; on a miss the flight leader forwards the
// request to the owner — one hop, loop-guarded by the X-FP-Internal marker,
// traceparent-propagated — and local concurrent misses coalesce onto that
// single forward while the owner's own flight group coalesces across nodes,
// so a viral fingerprint costs one optimizer run cluster-wide. Owners track
// per-key hit EWMAs; responses for top-K keys carry X-FP-Hot and non-owners
// replicate exactly those into their local caches (peer fill), so hot keys
// are answered from any node without a hop. A non-2xx owner reply is
// relayed verbatim — status, message and Retry-After hint — in a single
// attempt (the origin client owns the retry budget); an owner that never
// answers degrades to local computation, counted as cluster.peer_fallback.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"floorplan/internal/buildinfo"
	"floorplan/internal/cache"
	"floorplan/internal/cluster"
	"floorplan/internal/flight"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/slogx"
	"floorplan/internal/substore"
	"floorplan/internal/telemetry"
)

// Config sizes a Server. The zero value serves with one worker slot per
// CPU, a queue of four waiting requests per slot, a 60-second deadline, a
// 32 MiB body cap, no memory-budget ceiling and no cache.
type Config struct {
	// Workers is the number of requests evaluated concurrently
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker slot
	// before the server sheds load (0 = 4×Workers).
	QueueDepth int
	// RequestTimeout is the per-request deadline (0 = 60s). Requests may
	// lower it via Options.TimeoutMs, never raise it.
	RequestTimeout time.Duration
	// MaxMemoryLimit caps every request's stored-implementation budget;
	// requests asking for more (or for unlimited) are clamped down to it.
	// 0 imposes no ceiling.
	MaxMemoryLimit int64
	// MaxBodyBytes caps the request body (0 = 32 MiB).
	MaxBodyBytes int64
	// Cache memoizes results across requests; nil disables.
	Cache *cache.Cache
	// Substore memoizes per-subtree optimizer results across requests:
	// two requests sharing a sub-floorplan share the evaluation work below
	// it, even when their full-workload cache keys differ. Responses are
	// byte-identical with or without it; nil disables. NoCache requests
	// never consult or fill it (a private run touches no shared state).
	Substore *substore.Store
	// Telemetry receives request/queue/cache counters, queue watermarks,
	// per-disposition latency histograms, per-request serve spans and the
	// optimizer's scalar metrics; GET /metrics renders it.
	Telemetry *telemetry.Collector
	// Logger receives one structured access-log record per request plus
	// sampled debug records on the shed/timeout/abandon paths; nil
	// disables logging.
	Logger *slog.Logger
	// SlowThreshold enables server-side tail capture: any request whose
	// end-to-end latency reaches it is recorded — with its queue/compute/
	// coalesce decomposition and the computation's span tree — into a
	// bounded ring served (and scrubbed) by GET /debug/slow. 0 disables
	// capture and the endpoint.
	SlowThreshold time.Duration
	// SlowCapacity bounds the capture ring (0 = 64); when full, the oldest
	// capture is evicted.
	SlowCapacity int
	// NodeID labels this server instance in /v1/stats, access-log records,
	// slow captures and response runtime envelopes; empty omits it. In
	// cluster mode it defaults to the cluster's node id.
	NodeID string
	// Cluster enables the multi-node tier: requests for content addresses
	// owned by a peer are forwarded there (single attempt, per-hop timeout,
	// verbatim error relay) with hot-key peer fill and local-compute
	// fallback when the owner is down. Nil serves single-node.
	Cluster *cluster.Cluster
	// ClusterStatsTimeout caps each per-peer stats fetch of one GET
	// /v1/cluster/stats fan-out (0 = 1s). A peer that misses it is reported
	// unreachable in the aggregate rather than failing the whole response.
	ClusterStatsTimeout time.Duration
	// ProfileTriggerP99 arms the profiling flight recorder: a telemetry
	// watchdog samples this node's own latency histograms every
	// ProfileInterval, and when the window's p99 crosses this threshold —
	// or requests were shed, or the queue watermark hit capacity — it
	// captures a CPU+heap profile pair into a bounded ring served by GET
	// /debug/profiles, annotated with the trigger reason and the window's
	// exemplar trace IDs. 0 disables the recorder and the endpoint.
	ProfileTriggerP99 time.Duration
	// ProfileRing bounds the capture ring (0 = 4); when full, the oldest
	// capture is evicted.
	ProfileRing int
	// ProfileInterval is the watchdog sampling period (0 = 5s).
	ProfileInterval time.Duration
	// KeepSpans retains each request's optimizer spans in the collector
	// (full Merge instead of MergeScalars), so a shutdown WriteTrace holds
	// every request's cross-layer trace. Off by default: span retention
	// grows without bound on a long-lived server, so only enable it for
	// bounded runs that export a trace (fpserve sets it when -trace is
	// given).
	KeepSpans bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 4 * c.workers()
}

func (c Config) timeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 60 * time.Second
}

func (c Config) slowCapacity() int {
	if c.SlowCapacity > 0 {
		return c.SlowCapacity
	}
	return 64
}

func (c Config) clusterStatsTimeout() time.Duration {
	if c.ClusterStatsTimeout > 0 {
		return c.ClusterStatsTimeout
	}
	return time.Second
}

func (c Config) profileRing() int {
	if c.ProfileRing > 0 {
		return c.ProfileRing
	}
	return 4
}

func (c Config) profileInterval() time.Duration {
	if c.ProfileInterval > 0 {
		return c.ProfileInterval
	}
	return 5 * time.Second
}

func (c Config) maxBody() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 32 << 20
}

// Server serves optimization requests. Create with New.
type Server struct {
	cfg    Config
	sem    chan struct{}
	tel    *telemetry.Collector
	logger *slog.Logger
	start  time.Time

	// Samplers bound the debug-log volume of the hot failure paths; shed
	// storms are exactly when per-event logging would melt the server.
	shedSampler    *slogx.Sampler
	timeoutSampler *slogx.Sampler
	abandonSampler *slogx.Sampler

	flight flight.Group[cache.Key, []byte] // coalesces concurrent misses per key
	slow   *slowRing                       // tail captures; nil when disabled
	rec    *flightRecorder                 // triggered profiler; nil when disabled

	pending           atomic.Int64 // admitted requests not yet answered
	inflight          atomic.Int64 // computations holding a worker slot
	requests          atomic.Int64
	computed          atomic.Int64 // optimizer runs executed on this node
	shed              atomic.Int64 // 429: queue full at admission
	coalesced         atomic.Int64 // misses that joined an in-flight computation
	timedOutQueued    atomic.Int64 // 503: deadline before the computation began
	timedOutComputing atomic.Int64 // 503: deadline while the computation ran
	abandonedErrs     atomic.Int64 // detached computations that failed unobserved
	avgComputeNs      atomic.Int64 // EWMA of computation wall time, for Retry-After
	draining          atomic.Bool

	wg   sync.WaitGroup // background computations (incl. abandoned ones)
	http *http.Server
}

// New validates the configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("server: negative worker count %d", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.MaxMemoryLimit < 0 {
		return nil, fmt.Errorf("server: negative memory ceiling %d", cfg.MaxMemoryLimit)
	}
	if cfg.SlowThreshold < 0 || cfg.SlowCapacity < 0 {
		return nil, fmt.Errorf("server: negative slow-capture threshold/capacity (%v, %d)",
			cfg.SlowThreshold, cfg.SlowCapacity)
	}
	var slow *slowRing
	if cfg.SlowThreshold > 0 {
		slow = newSlowRing(cfg.slowCapacity())
	}
	if cfg.ProfileTriggerP99 < 0 || cfg.ProfileRing < 0 || cfg.ProfileInterval < 0 {
		return nil, fmt.Errorf("server: negative profile trigger/ring/interval (%v, %d, %v)",
			cfg.ProfileTriggerP99, cfg.ProfileRing, cfg.ProfileInterval)
	}
	if cfg.NodeID == "" && cfg.Cluster != nil {
		cfg.NodeID = cfg.Cluster.NodeID()
	}
	srv := &Server{
		cfg:            cfg,
		sem:            make(chan struct{}, cfg.workers()),
		slow:           slow,
		tel:            cfg.Telemetry,
		logger:         cfg.Logger,
		start:          time.Now(),
		shedSampler:    slogx.NewSampler(16),
		timeoutSampler: slogx.NewSampler(16),
		abandonSampler: slogx.NewSampler(1),
	}
	if cfg.ProfileTriggerP99 > 0 {
		srv.rec = newFlightRecorder(srv)
	}
	return srv, nil
}

// Handler returns the API routes, for tests and embedding. Every route
// runs inside the observability middleware (trace extraction, access log,
// latency histograms).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.withObservability(s.handleHealth))
	mux.HandleFunc("/v1/stats", s.withObservability(s.handleStats))
	mux.HandleFunc("/v1/cluster/stats", s.withObservability(s.handleClusterStats))
	mux.HandleFunc("/v1/optimize", s.withObservability(s.handleOptimize))
	mux.HandleFunc("/metrics", s.withObservability(s.handleMetrics))
	mux.HandleFunc("/debug/slow", s.withObservability(s.handleSlow))
	mux.HandleFunc("/debug/profiles", s.withObservability(s.handleProfiles))
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.http = &http.Server{Handler: s.Handler()}
	go func() { _ = s.http.Serve(ln) }()
	s.rec.start()
	return ln.Addr(), nil
}

// Shutdown drains gracefully: health flips to 503, new optimize requests
// are refused, in-flight HTTP requests and background computations finish
// (or ctx expires).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.rec.stop()
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// statsResponse snapshots the node's full /v1/stats state — shared by
// handleStats and the cluster stats aggregator (which embeds this node's own
// snapshot next to the fetched peer ones).
func (s *Server) statsResponse() *StatsResponse {
	return &StatsResponse{
		StartTimeUnixMs:   s.start.UnixMilli(),
		UptimeMs:          time.Since(s.start).Milliseconds(),
		UptimeSeconds:     time.Since(s.start).Seconds(),
		NodeID:            s.cfg.NodeID,
		Version:           buildinfo.Get(),
		Requests:          s.requests.Load(),
		Computed:          s.computed.Load(),
		Shed:              s.shed.Load(),
		Coalesced:         s.coalesced.Load(),
		TimedOutQueued:    s.timedOutQueued.Load(),
		TimedOutComputing: s.timedOutComputing.Load(),
		AbandonedErrors:   s.abandonedErrs.Load(),
		InFlight:          s.inflight.Load(),
		Pending:           s.pending.Load(),
		Workers:           s.cfg.workers(),
		QueueCapacity:     s.cfg.queueDepth(),
		Cache:             s.cfg.Cache.Stats(),
		CacheEnabled:      s.cfg.Cache != nil,
		Substore:          s.cfg.Substore.Stats(),
		SubstoreEnabled:   s.cfg.Substore != nil,
		Cluster:           s.cfg.Cluster.Stats(),
		Histograms:        s.tel.HistSnapshots(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsResponse())
}

// testHookComputeStart, when non-nil, runs at the start of every background
// computation; tests use it to hold a run past its request deadline.
var testHookComputeStart func()

// errDraining refuses a computation whose flight call formed after drain
// began: the leader publishes it instead of spawning, and every waiter
// answers 503.
var errDraining = errors.New("draining")

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	rec := accessInfoFrom(r.Context())
	if r.Method != http.MethodPost {
		rec.disposition = "invalid"
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		rec.disposition = "draining"
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.requests.Add(1)
	s.tel.Inc(telemetry.CtrServeRequests)
	started := time.Now()
	spanStart := s.tel.Now()

	// Admission: at most Workers in flight plus QueueDepth waiting; beyond
	// that, shed immediately — a bounded queue with 429 beats an unbounded
	// one with collapse.
	pending := s.pending.Add(1)
	defer s.pending.Add(-1)
	s.tel.Observe(telemetry.MaxServeQueue, pending)
	if pending > int64(s.cfg.workers()+s.cfg.queueDepth()) {
		s.shed.Add(1)
		s.tel.Inc(telemetry.CtrServeShed)
		rec.disposition = "shed"
		s.debugSampled(s.shedSampler, "request shed", rec,
			slog.Int64("pending", pending))
		s.writeRetryable(w, http.StatusTooManyRequests, "saturated: request queue full")
		return
	}

	rec.disposition = "invalid"
	req, status, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	lib, err := plan.CanonicalLibrary(req.Library)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, m := range req.Tree.Modules() {
		if _, ok := lib[m]; !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("module %q not in library", m))
			return
		}
	}
	memLimit := req.Options.MemoryLimit
	if memLimit < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative memory_limit %d", memLimit))
		return
	}
	if max := s.cfg.MaxMemoryLimit; max > 0 && (memLimit == 0 || memLimit > max) {
		memLimit = max
	}

	key, err := cache.KeySpec{
		Tree:          req.Tree,
		Lib:           lib,
		K1:            req.Options.K1,
		K2:            req.Options.K2,
		Theta:         req.Options.Theta,
		S:             req.Options.S,
		MemoryLimit:   memLimit,
		SkipPlacement: req.Options.SkipPlacement,
	}.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Cluster-mode placement: resolve the key's owner once. A request
	// carrying the hop marker is already an intra-cluster forward and is
	// never forwarded again (loop guard) — a disagreeing ring degrades to a
	// local computation, not a proxy loop.
	cl := s.cfg.Cluster
	internalFrom := r.Header.Get(cluster.HeaderInternal)
	owner, ownsKey := "", true
	if cl != nil {
		if internalFrom != "" {
			rec.internalFrom = internalFrom
			cl.NoteInternal()
		}
		owner, ownsKey = cl.Owner(key)
	}

	mode := "off"
	if s.cfg.Cache != nil {
		if req.Options.NoCache {
			mode = "bypass"
		} else if payload, ok := s.cfg.Cache.Get(key); ok {
			if cl != nil {
				if ownsKey {
					s.markHot(w, key)
				} else if internalFrom == "" {
					cl.NoteReplicaHit()
				}
			}
			rec.disposition = "hit"
			s.recordServeSpan(spanStart, "hit", rec)
			s.respond(w, key, payload, "hit", started, rec)
			return
		} else {
			mode = "miss"
		}
	}
	if cl != nil && ownsKey && !req.Options.NoCache {
		// Owner-side misses (and the coalesced waiters behind them) feed
		// the hit EWMA too: a key going viral is hot before its first
		// computation finishes.
		s.markHot(w, key)
	}
	// Forward decision: non-owned keys leave this node unless the request
	// is an internal hop (loop guard) or demands a private run (NoCache
	// computes locally and never touches shared state).
	forward := cl != nil && !ownsKey && internalFrom == "" && !req.Options.NoCache
	if forward {
		mode = "forwarded"
		rec.forwardedTo = owner
	}

	timeout := s.cfg.timeout()
	if ms := req.Options.TimeoutMs; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Coalesce concurrent misses: every request for one content address
	// (except cache bypasses, which demand a private run) shares a single
	// flight call — one worker slot, one computation, one cache store. The
	// first joiner leads; the rest wait for its bytes and answer with the
	// "coalesced" disposition. Each waiter waits under its own deadline;
	// if all of them give up before a worker slot was acquired, the call
	// is abandoned and never computes.
	var call *flight.Call[[]byte]
	leader := true
	if req.Options.NoCache {
		call = flight.Solo[[]byte]()
	} else {
		call, leader = s.flight.Join(key)
	}
	defer call.Leave()
	if leader {
		// The leader's request identity names the shared computation: its
		// trace ID is stamped on the flight tag (so followers can report
		// it), on the flight span and on the optimizer's spans.
		meta := &flightMeta{trace: rec.trace, forwardedTo: rec.forwardedTo}
		rec.flight = meta
		call.SetTag(meta)
		// The computation runs detached from the HTTP goroutine:
		// optimization is not cancelable mid-evaluation, so on timeout we
		// answer 503 and let the run finish in the background — it still
		// stores its result, which warms the cache for the client's retry.
		// Shutdown waits for these. The draining re-check after Add closes
		// a race with Shutdown's wg.Wait: a handler past the entry check
		// could otherwise Add after Wait already returned and leak the
		// computation past "drain complete" (mid-Cache.Put at exit). The
		// atomics are sequentially consistent, so a false Load here proves
		// the Add preceded Wait's first look at the counter.
		s.wg.Add(1)
		if s.draining.Load() {
			s.wg.Done()
			call.Finish(nil, errDraining)
		} else if forward {
			go s.runForward(call, meta, req, lib, memLimit, key, owner)
		} else {
			go s.runCall(call, meta, req, lib, memLimit, key)
		}
	} else {
		s.coalesced.Add(1)
		s.tel.Inc(telemetry.CtrServeCoalesced)
		mode = "coalesced"
	}

	select {
	case <-call.Done():
		payload, err := call.Result()
		s.noteFlight(rec, call, leader)
		if mode == "forwarded" && rec.flight != nil && rec.flight.fellBack.Load() {
			// The owner never answered; the flight degraded to a local
			// computation mid-call.
			mode = "peer_fallback"
		}
		rec.disposition = mode
		s.recordServeSpan(spanStart, mode, rec)
		if err != nil {
			if errors.Is(err, errDraining) {
				// The drain re-check refused the computation after this
				// request joined (or led) the flight call.
				rec.disposition = "draining"
				writeError(w, http.StatusServiceUnavailable, "draining")
				return
			}
			var pe *cluster.PeerStatusError
			if errors.As(err, &pe) {
				// Relay the owner's answer verbatim — status, message and
				// Retry-After hint. No local re-derivation (this node queued
				// nothing) and no second hop (the origin client owns the
				// retry budget).
				if pe.Status == http.StatusTooManyRequests || pe.Status == http.StatusServiceUnavailable {
					rec.disposition = "forwarded_shed"
				} else {
					rec.disposition = "forwarded_error"
				}
				if pe.RetryAfter != "" {
					w.Header().Set("Retry-After", pe.RetryAfter)
				}
				writeError(w, pe.Status, pe.Message)
				return
			}
			rec.disposition = "error"
			if optimizer.IsMemoryLimit(err) {
				writeError(w, http.StatusUnprocessableEntity, err.Error())
			} else {
				writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		s.respond(w, key, payload, mode, started, rec)
	case <-ctx.Done():
		s.noteFlight(rec, call, leader)
		s.recordServeSpan(spanStart, "timeout", rec)
		if call.Begun() {
			s.timedOutComputing.Add(1)
			s.tel.Inc(telemetry.CtrServeTimeoutComputing)
			rec.disposition = "timeout_computing"
			s.debugSampled(s.timeoutSampler, "request deadline while computing", rec)
			s.writeRetryable(w, http.StatusServiceUnavailable, "deadline reached while computing")
		} else {
			s.timedOutQueued.Add(1)
			s.tel.Inc(telemetry.CtrServeTimeoutQueued)
			rec.disposition = "timeout_queued"
			s.debugSampled(s.timeoutSampler, "request deadline while queued", rec)
			s.writeRetryable(w, http.StatusServiceUnavailable, "deadline reached while queued")
		}
	}
}

// noteFlight copies the answering computation's identity onto a waiter's
// access record: followers report the leader's trace ID (and share its
// timing), the leader already carries its own.
func (s *Server) noteFlight(rec *accessInfo, call *flight.Call[[]byte], leader bool) {
	if leader {
		return
	}
	meta, ok := call.Tag().(*flightMeta)
	if !ok {
		return
	}
	rec.flight = meta
	rec.flightTraceID = meta.trace.TraceID.String()
	if rec.forwardedTo == "" {
		rec.forwardedTo = meta.forwardedTo
	}
}

// runCall is the leader side of one flight call: wait for a worker slot
// (racing abandonment — if every waiter gives up first, nothing runs),
// compute, store, publish. A computation that began always completes, even
// with zero waiters left; if it then fails, the error would otherwise
// vanish with them, so it is counted as an abandoned error.
func (s *Server) runCall(call *flight.Call[[]byte], meta *flightMeta, req *OptimizeRequest, lib plan.Library, memLimit int64, key cache.Key) {
	defer s.wg.Done()
	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-call.Abandoned():
		return
	}
	meta.queueWaitNs.Store(time.Since(queued).Nanoseconds())
	if !call.Begin() {
		// Abandoned in the instant the slot arrived; hand it back.
		<-s.sem
		return
	}
	s.computeCall(call, meta, req, lib, memLimit, key)
}

// computeCall is the slot-holding body of a computation: the caller has
// Begun the flight call and acquired a worker slot; computeCall runs the
// optimizer, stores the result and publishes the outcome. Shared by the
// plain miss path (runCall) and the owner-unreachable fallback (runForward).
func (s *Server) computeCall(call *flight.Call[[]byte], meta *flightMeta, req *OptimizeRequest, lib plan.Library, memLimit int64, key cache.Key) {
	s.tel.Observe(telemetry.MaxServeInFlight, s.inflight.Add(1))
	defer func() { <-s.sem; s.inflight.Add(-1) }()
	if testHookComputeStart != nil {
		testHookComputeStart()
	}
	s.computed.Add(1)
	computeStart := time.Now()
	spanStart := s.tel.Now()
	payload, err := s.compute(req, lib, memLimit, meta)
	elapsed := time.Since(computeStart)
	meta.computeNs.Store(elapsed.Nanoseconds())
	s.observeComputeTime(elapsed)
	if s.tel != nil {
		s.tel.RecordSpan(telemetry.Span{
			Name:    "flight compute",
			Cat:     "flight",
			Start:   spanStart,
			Dur:     s.tel.Now() - spanStart,
			TraceID: meta.trace.TraceID.String(),
		})
	}
	if err == nil && s.cfg.Cache != nil && !req.Options.NoCache {
		s.cfg.Cache.Put(key, payload)
	}
	s.finishCall(call, meta, payload, err)
}

// finishCall publishes a flight call's outcome and accounts for failures
// nobody was left to observe: a computation that began always completes,
// and if it then fails with zero waiters the error would vanish with them,
// so it is counted as an abandoned error.
func (s *Server) finishCall(call *flight.Call[[]byte], meta *flightMeta, payload []byte, err error) {
	if waiters := call.Finish(payload, err); err != nil && waiters == 0 {
		s.abandonedErrs.Add(1)
		s.tel.Inc(telemetry.CtrServeAbandonedErrors)
		if s.logger != nil && s.logger.Enabled(context.Background(), slog.LevelDebug) &&
			s.abandonSampler.Allow() {
			s.logger.Debug("abandoned computation failed",
				slog.String("trace_id", meta.trace.TraceID.String()),
				slog.String("error", err.Error()),
				slog.Uint64("event_count", s.abandonSampler.Count()))
		}
	}
}

// runForward is the leader side of a forwarded flight call: re-encode the
// request, hand it to the owning peer (a single attempt under the per-hop
// timeout, hop-marked and traceparent-propagated so the cross-node spans
// join one trace) and publish the owner's deterministic bytes to every
// local waiter — local concurrent misses coalesce onto this one forward
// while the owner's own flight group coalesces across nodes. A hot-marked
// reply also fills the local cache (peer fill), so the next request for
// the key is a local hit on this node. An owner that answered non-2xx
// finishes the call with its *PeerStatusError for verbatim relay; an owner
// that never answered degrades to computing locally (peer fallback). The
// call Begins before the hop — forwarding holds no local worker slot, and
// a Begun call cannot be abandoned, so the fallback may block on a slot
// unconditionally.
func (s *Server) runForward(call *flight.Call[[]byte], meta *flightMeta, req *OptimizeRequest, lib plan.Library, memLimit int64, key cache.Key, owner string) {
	defer s.wg.Done()
	cl := s.cfg.Cluster
	if !call.Begin() {
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		s.finishCall(call, meta, nil, fmt.Errorf("re-encoding request for forward: %w", err))
		return
	}
	start := time.Now()
	reply, err := cl.Forward(context.Background(), owner, body, meta.trace.Child().Traceparent())
	meta.forwardNs.Store(time.Since(start).Nanoseconds())
	if err == nil {
		if reply.Hot && s.cfg.Cache != nil {
			s.cfg.Cache.Put(key, reply.Payload)
			cl.NoteHotFill()
		}
		s.finishCall(call, meta, reply.Payload, nil)
		return
	}
	var pe *cluster.PeerStatusError
	if errors.As(err, &pe) {
		s.finishCall(call, meta, nil, pe)
		return
	}
	// Transport-level failure: the owner never answered. Degrade to a local
	// computation so a dead peer costs one hop of latency, not availability.
	cl.NotePeerFallback()
	meta.fellBack.Store(true)
	if s.logger != nil {
		s.logger.Warn("peer forward failed, computing locally",
			slog.String("owner", owner),
			slog.String("trace_id", meta.trace.TraceID.String()),
			slog.String("error", err.Error()))
	}
	queued := time.Now()
	s.sem <- struct{}{}
	meta.queueWaitNs.Store(time.Since(queued).Nanoseconds())
	s.computeCall(call, meta, req, lib, memLimit, key)
}

// markHot feeds one owner-served request for key into the hit EWMA and
// stamps the replication marker on the response when the key currently
// ranks in the top K, telling peers to fill their local caches.
func (s *Server) markHot(w http.ResponseWriter, key cache.Key) {
	if s.cfg.Cluster.TouchOwned(key) {
		w.Header().Set(cluster.HeaderHot, "1")
	}
}

// observeComputeTime folds one computation's wall time into the EWMA
// behind Retry-After hints (α = 1/8). The load/store pair may lose a
// concurrent update; the estimate tolerates that.
func (s *Server) observeComputeTime(d time.Duration) {
	n := d.Nanoseconds()
	if old := s.avgComputeNs.Load(); old > 0 {
		n = old + (n-old)/8
	}
	s.avgComputeNs.Store(n)
}

// retryAfterSeconds estimates how long until a retry is likely admitted:
// the pending queue drains in ceil(pending/workers) waves of roughly one
// smoothed computation each. Clamped to [1s, 60s] and recorded as the
// server.retry_after_ms watermark.
func (s *Server) retryAfterSeconds() int64 {
	avg := s.avgComputeNs.Load()
	if avg <= 0 {
		avg = int64(time.Second) // no completed computation yet
	}
	workers := int64(s.cfg.workers())
	pending := s.pending.Load()
	if pending < 1 {
		pending = 1
	}
	waves := (pending + workers - 1) / workers
	secs := (waves*avg + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	s.tel.Observe(telemetry.MaxServeRetryAfter, secs*1000)
	return secs
}

// writeRetryable answers a 429/503 with a queue-pressure-derived
// Retry-After hint.
func (s *Server) writeRetryable(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSeconds(), 10))
	writeError(w, status, msg)
}

// decodeRequest parses and structurally validates the body.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*OptimizeRequest, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	var req OptimizeRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	if req.Tree == nil {
		return nil, http.StatusBadRequest, errors.New("missing tree")
	}
	if err := req.Tree.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if len(req.Library) == 0 {
		return nil, http.StatusBadRequest, errors.New("missing library")
	}
	if req.Options.Workers < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Options.Workers)
	}
	if req.Options.TimeoutMs < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("negative timeout_ms %d", req.Options.TimeoutMs)
	}
	if req.Options.K1 < 0 || req.Options.K2 < 0 || req.Options.S < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("negative selection limit (k1 %d, k2 %d, s %d)",
			req.Options.K1, req.Options.K2, req.Options.S)
	}
	return &req, 0, nil
}

// compute runs one optimization and marshals the deterministic payload.
// The optimizer's scalar telemetry folds into the server collector through
// a per-request shard; spans are tagged with the leading request's trace ID
// and kept only under Config.KeepSpans (MergeScalars otherwise keeps the
// span slice bounded). With slow capture enabled, the shard's span tree is
// stashed on the flight meta before the shard is discarded, so a request
// that turns out slow can still attribute its compute time node by node.
func (s *Server) compute(req *OptimizeRequest, lib plan.Library, memLimit int64, meta *flightMeta) ([]byte, error) {
	olib := make(optimizer.Library, len(lib))
	for name, impls := range lib {
		olib[name] = shape.RList(impls) // canonical by construction
	}
	workers := req.Options.Workers
	if workers == 0 {
		// Default sequential: the pool already parallelizes across
		// requests; per-request parallelism is opt-in.
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	shard := s.tel.Shard()
	shard.SetTraceID(meta.trace.TraceID.String())
	// NoCache demands a private run: it must not read shared state another
	// request warmed, nor warm it — the same contract as the result cache.
	sub := s.cfg.Substore
	if req.Options.NoCache {
		sub = nil
	}
	o, err := optimizer.New(olib, optimizer.Options{
		Policy: selection.Policy{
			K1:    req.Options.K1,
			K2:    req.Options.K2,
			Theta: req.Options.Theta,
			S:     req.Options.S,
		},
		MemoryLimit:   memLimit,
		SkipPlacement: req.Options.SkipPlacement,
		Workers:       workers,
		Telemetry:     shard,
		Substore:      sub,
	})
	if err != nil {
		return nil, err
	}
	res, err := o.Run(req.Tree)
	if err == nil && sub != nil {
		meta.subSpliced.Store(int64(res.Reuse.SplicedNodes))
		meta.subComputed.Store(int64(res.Reuse.ComputedNodes))
	}
	if s.slow != nil {
		sp := shard.Spans()
		meta.spans.Store(&sp)
	}
	if s.cfg.KeepSpans {
		s.tel.Merge(shard)
	} else {
		s.tel.MergeScalars(shard)
	}
	if err != nil {
		return nil, err
	}
	return marshalResult(res)
}

func (s *Server) respond(w http.ResponseWriter, key cache.Key, payload []byte, mode string, started time.Time, rec *accessInfo) {
	// A coalesced follower reports the leader's trace ID — the trace the
	// answering computation actually ran under — with its own span ID.
	traceID := rec.trace.TraceID.String()
	if rec.flightTraceID != "" {
		traceID = rec.flightTraceID
	}
	rt := ResponseRuntime{
		ElapsedMs: time.Since(started).Milliseconds(),
		Cache:     mode,
		NodeID:    s.cfg.NodeID,
		TraceID:   traceID,
		SpanID:    rec.trace.SpanID.String(),
	}
	if rec.flight != nil {
		// Subtree-store scorecard of the computation that answered this
		// request (the leader's, for coalesced followers). Zero for cache
		// hits, forwards and substore-less runs; runtime data by nature —
		// what resolves depends on store warmth, never the result bytes.
		rt.SubtreeSpliced = rec.flight.subSpliced.Load()
		rt.SubtreeComputed = rec.flight.subComputed.Load()
	}
	writeJSON(w, http.StatusOK, &OptimizeResponse{
		Key:     key.String(),
		Result:  json.RawMessage(payload),
		Runtime: rt,
	})
}

func (s *Server) recordServeSpan(start time.Duration, disposition string, rec *accessInfo) {
	if s.tel == nil {
		return
	}
	s.tel.RecordSpan(telemetry.Span{
		Name:    "optimize " + disposition,
		Cat:     "serve",
		Start:   start,
		Dur:     s.tel.Now() - start,
		TraceID: rec.trace.TraceID.String(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
