package reqid

import (
	"context"
	"strings"
	"testing"
)

func TestNewIsValidAndUnique(t *testing.T) {
	a, b := New(), New()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("New produced invalid contexts: %+v %+v", a, b)
	}
	if a.TraceID == b.TraceID {
		t.Fatalf("two fresh trace IDs collided: %s", a.TraceID)
	}
	if a.SpanID == b.SpanID {
		t.Fatalf("two fresh span IDs collided: %s", a.SpanID)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	c := New()
	h := c.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
	back, err := Parse(h)
	if err != nil {
		t.Fatalf("Parse(%q): %v", h, err)
	}
	if back != c {
		t.Fatalf("round trip changed the context: %+v -> %+v", c, back)
	}
}

func TestParseW3CExample(t *testing.T) {
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c, err := Parse(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %s", got)
	}
	if got := c.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("span ID = %s", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // version-00 trailing data
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // non-hex
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
	}
	for _, h := range bad {
		if _, err := Parse(h); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", h)
		}
	}
}

func TestParseFutureVersionWithExtraData(t *testing.T) {
	// A future version may append fields; the known prefix must still parse.
	h := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	c, err := Parse(h)
	if err != nil {
		t.Fatalf("future-version traceparent rejected: %v", err)
	}
	if !c.Valid() {
		t.Fatalf("parsed invalid context %+v", c)
	}
}

func TestChildKeepsTrace(t *testing.T) {
	c := New()
	kid := c.Child()
	if kid.TraceID != c.TraceID {
		t.Fatalf("Child changed the trace ID: %s -> %s", c.TraceID, kid.TraceID)
	}
	if kid.SpanID == c.SpanID {
		t.Fatalf("Child kept the span ID %s", c.SpanID)
	}
	if !kid.Valid() {
		t.Fatalf("Child produced invalid context %+v", kid)
	}
}

func TestContextPlumbing(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	c := New()
	ctx := NewContext(context.Background(), c)
	back, ok := FromContext(ctx)
	if !ok || back != c {
		t.Fatalf("FromContext = %+v, %v; want %+v, true", back, ok, c)
	}
}
