// Package reqid generates and propagates W3C trace-context compatible
// request identities for the serving stack: a 16-byte trace ID naming one
// end-to-end request (shared by a client, its retries, and every server
// span the request touches) and an 8-byte span ID naming one hop's work
// within it. The wire form is the traceparent header of
// https://www.w3.org/TR/trace-context/:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// floorplan.Client injects the header on every attempt (minting a trace ID
// when the caller's context carries none), fpserve extracts it, and the
// telemetry layer stamps it on spans so one request's client attempt,
// server handling and optimizer evaluation all correlate under a single ID
// in logs and trace exports.
package reqid

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceID names one end-to-end request across processes.
type TraceID [16]byte

// SpanID names one hop's work within a trace.
type SpanID [8]byte

// String returns the ID as lowercase hex (32 characters).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is all-zero, which the W3C spec forbids on
// the wire.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the ID as lowercase hex (16 characters).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all-zero.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// Context is one hop's trace identity: which request (TraceID) and which
// piece of work within it (SpanID).
type Context struct {
	TraceID TraceID
	SpanID  SpanID
}

// New mints a fresh trace: random trace and span IDs.
func New() Context {
	var c Context
	fill(c.TraceID[:])
	fill(c.SpanID[:])
	return c
}

// Child returns a context in the same trace with a fresh span ID — the
// identity of a new hop (a retry attempt, a server handler) working on the
// same request.
func (c Context) Child() Context {
	out := Context{TraceID: c.TraceID}
	fill(out.SpanID[:])
	return out
}

// Valid reports whether both IDs are non-zero, the W3C requirement for a
// propagatable context.
func (c Context) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Traceparent renders the context as a version-00 traceparent header value
// with the sampled flag set.
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", c.TraceID, c.SpanID)
}

// Parse decodes a traceparent header value. Per the W3C spec it accepts
// any version except the reserved ff, requires lowercase hex fields of
// exact width, and rejects all-zero trace or span IDs.
func Parse(h string) (Context, error) {
	var c Context
	// version(2) - trace-id(32) - parent-id(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return c, fmt.Errorf("reqid: malformed traceparent %q", h)
	}
	var version [1]byte
	if _, err := decodeLowerHex(version[:], h[0:2]); err != nil {
		return c, fmt.Errorf("reqid: traceparent version: %w", err)
	}
	if version[0] == 0xff {
		return c, fmt.Errorf("reqid: reserved traceparent version ff")
	}
	if version[0] == 0 && len(h) != 55 {
		return c, fmt.Errorf("reqid: version-00 traceparent has trailing data %q", h)
	}
	if _, err := decodeLowerHex(c.TraceID[:], h[3:35]); err != nil {
		return Context{}, fmt.Errorf("reqid: trace ID: %w", err)
	}
	if _, err := decodeLowerHex(c.SpanID[:], h[36:52]); err != nil {
		return Context{}, fmt.Errorf("reqid: span ID: %w", err)
	}
	var flags [1]byte
	if _, err := decodeLowerHex(flags[:], h[53:55]); err != nil {
		return Context{}, fmt.Errorf("reqid: trace flags: %w", err)
	}
	if c.TraceID.IsZero() {
		return Context{}, fmt.Errorf("reqid: all-zero trace ID")
	}
	if c.SpanID.IsZero() {
		return Context{}, fmt.Errorf("reqid: all-zero span ID")
	}
	return c, nil
}

// decodeLowerHex is hex.Decode restricted to lowercase input, which is
// what the traceparent grammar demands (uppercase hex must be rejected).
func decodeLowerHex(dst []byte, src string) (int, error) {
	for i := 0; i < len(src); i++ {
		if src[i] >= 'A' && src[i] <= 'F' {
			return 0, fmt.Errorf("uppercase hex %q", src)
		}
	}
	return hex.Decode(dst, []byte(src))
}

// fill writes cryptographically random bytes, retrying the (vanishingly
// unlikely) all-zero draw because zero IDs are invalid on the wire.
func fill(b []byte) {
	for {
		// crypto/rand.Read never fails on supported platforms (Go 1.21+
		// panics internally instead of returning an error).
		_, _ = rand.Read(b)
		for _, x := range b {
			if x != 0 {
				return
			}
		}
	}
}

// ctxKey keys the trace context in a context.Context.
type ctxKey struct{}

// NewContext returns a copy of ctx carrying c.
func NewContext(ctx context.Context, c Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the trace context placed by NewContext.
func FromContext(ctx context.Context) (Context, bool) {
	c, ok := ctx.Value(ctxKey{}).(Context)
	return c, ok
}
