package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"floorplan/internal/plan"
)

// Key is a content address: the SHA-256 of the canonical encoding of an
// optimization problem. Equal problems — same subtree structure, same
// canonicalized module shape lists, same selection limits — produce equal
// keys no matter how the request was spelled (node labels, list order and
// redundant implementations do not participate).
type Key [sha256.Size]byte

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeySpec is everything that determines an optimization result. Workers is
// deliberately absent: successful runs are bit-identical for every worker
// count, so the worker setting must not fragment the cache.
type KeySpec struct {
	// Tree is the (sub)tree being optimized.
	Tree *plan.Node
	// Lib holds canonical implementation lists (as plan.CanonicalLibrary
	// returns them) for at least the modules the tree references.
	Lib plan.Library
	// Selection limits and trigger (the paper's K1, K2, θ, S).
	K1, K2, S int
	Theta     float64
	// MemoryLimit participates because a limited run can fail where an
	// unlimited one succeeds.
	MemoryLimit int64
	// SkipPlacement participates because it changes the result payload.
	SkipPlacement bool
}

// Key derives the content address. It fails on a nil tree or when a
// referenced module is missing from the library — a miss there must surface
// as a request error, not as a silently distinct cache entry.
func (s KeySpec) Key() (Key, error) {
	if s.Tree == nil {
		return Key{}, errors.New("cache: nil tree in key spec")
	}
	buf := make([]byte, 0, 4096)
	buf = s.Tree.AppendCanonical(buf)
	mods := s.Tree.Modules()
	for _, m := range mods {
		if len(s.Lib[m]) == 0 {
			return Key{}, fmt.Errorf("cache: module %q not in library", m)
		}
	}
	buf = plan.AppendCanonicalLibrary(buf, s.Lib, mods)
	buf = binary.AppendVarint(buf, int64(s.K1))
	buf = binary.AppendVarint(buf, int64(s.K2))
	buf = binary.AppendVarint(buf, int64(s.S))
	buf = binary.AppendUvarint(buf, math.Float64bits(s.Theta))
	buf = binary.AppendVarint(buf, s.MemoryLimit)
	if s.SkipPlacement {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return Key(sha256.Sum256(buf)), nil
}
