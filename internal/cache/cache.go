// Package cache is the serving layer's cross-request memo: a bounded,
// sharded, content-addressed store of optimization results keyed by the
// canonical hash of (subtree structure, module shape lists, selection
// limits). The paper makes one fixed-topology optimization cheap; callers
// that re-optimize near-identical trees thousands of times (interactive
// editors, annealers, workload generators) make the amortized cost matter,
// and a content-addressed cache turns repeated work into lookups.
//
// Values are opaque byte payloads (the server stores the marshaled
// deterministic result), so a hit is byte-identical to the original
// computation by construction. Storage is bounded by a byte budget
// accounted through an internal/memtrack.Tracker — the same
// reservation-based admission the optimizer uses for implementation counts
// — with per-shard LRU eviction making room; an entry larger than the whole
// budget is rejected rather than thrashing the cache. All operations are
// safe for concurrent use; locking is per shard.
package cache

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"floorplan/internal/memtrack"
	"floorplan/internal/telemetry"
)

// entryOverhead approximates the per-entry bookkeeping cost (key, map slot,
// LRU node) charged against the byte budget in addition to the payload.
const entryOverhead = 128

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the budget for payload bytes plus per-entry overhead.
	// Required: New fails on a non-positive budget (a disabled cache is a
	// nil *Cache, which every method accepts).
	MaxBytes int64
	// Shards is the number of independently locked shards (0 = 16; rounded
	// up to a power of two).
	Shards int
	// Telemetry receives hit/miss/eviction counters and the byte-footprint
	// watermark; nil disables recording.
	Telemetry *telemetry.Collector
}

// Cache is the sharded store. A nil *Cache is the disabled state: Get
// always misses, Put is a no-op.
type Cache struct {
	shards []shard
	mask   uint32
	mem    *memtrack.Tracker
	tel    *telemetry.Collector

	hits, misses, evictions, rejects atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
}

type entry struct {
	key   Key
	value []byte
	size  int64
}

// New builds a cache under the given byte budget.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive byte budget %d", cfg.MaxBytes)
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Cache{
		shards: make([]shard, p),
		mask:   uint32(p - 1),
		mem:    memtrack.NewTracker(cfg.MaxBytes),
		tel:    cfg.Telemetry,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c, nil
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[binary.LittleEndian.Uint32(k[:4])&c.mask]
}

// Get returns the payload stored under k and marks the entry recently used.
// The returned bytes are shared and must be treated as immutable. A nil
// cache always misses.
func (c *Cache) Get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		c.tel.Inc(telemetry.CtrCacheMisses)
		return nil, false
	}
	c.hits.Add(1)
	c.tel.Inc(telemetry.CtrCacheHits)
	return el.Value.(*entry).value, true
}

// Put stores value under k, evicting least-recently-used entries of the
// same shard until the byte budget admits it. Storing an existing key is a
// no-op (values are content-addressed: same key, same bytes). An entry the
// budget can never admit — or one that would require evicting the entire
// shard and still not fit — is dropped and counted as a reject. The caller
// must not modify value afterwards.
func (c *Cache) Put(k Key, value []byte) {
	if c == nil {
		return
	}
	size := int64(len(value)) + entryOverhead
	if size > c.mem.Limit() {
		// Never admissible: reject before sacrificing resident entries.
		c.rejects.Add(1)
		c.tel.Inc(telemetry.CtrCacheRejects)
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[k]; exists {
		return
	}
	for {
		err := c.mem.Add(size)
		if err == nil {
			break
		}
		if !errors.Is(err, memtrack.ErrLimit) || s.lru.Len() == 0 {
			// Oversize for the whole budget, or this shard has nothing
			// left to give back: drop the entry.
			c.rejects.Add(1)
			c.tel.Inc(telemetry.CtrCacheRejects)
			return
		}
		c.evictOldest(s)
	}
	el := s.lru.PushFront(&entry{key: k, value: value, size: size})
	s.entries[k] = el
	c.tel.Observe(telemetry.MaxCacheBytes, c.mem.Current())
}

// evictOldest removes the shard's least-recently-used entry and releases
// its bytes. The shard lock must be held.
func (c *Cache) evictOldest(s *shard) {
	el := s.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.entries, e.key)
	// Release cannot fail here: every stored entry's size was admitted.
	_ = c.mem.Release(e.size)
	c.evictions.Add(1)
	c.tel.Inc(telemetry.CtrCacheEvictions)
}

// Len returns the number of entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot for /v1/stats and tests.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	PeakBytes int64 `json:"peak_bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Rejects   int64 `json:"rejects"`
}

// Stats snapshots the cache. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Entries:   c.Len(),
		Bytes:     c.mem.Current(),
		PeakBytes: c.mem.Admitted(),
		Budget:    c.mem.Limit(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rejects:   c.rejects.Load(),
	}
}
