package cache

import (
	"testing"

	"floorplan/internal/plan"
)

func keyLib(t *testing.T, raw plan.Library) plan.Library {
	t.Helper()
	c, err := plan.CanonicalLibrary(raw)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyContentAddressing(t *testing.T) {
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	lib := keyLib(t, plan.Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
	})
	base := KeySpec{Tree: tree, Lib: lib, K1: 10}
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Equivalent spellings hash identically.
	relabelled := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	relabelled.Name = "root"
	shuffled := keyLib(t, plan.Library{
		"a": {{W: 7, H: 4}, {W: 4, H: 7}, {W: 7, H: 7}},
		"b": {{W: 3, H: 3}},
		"z": {{W: 1, H: 1}}, // irrelevant module
	})
	same := KeySpec{Tree: relabelled, Lib: shuffled, K1: 10}
	if k, err := same.Key(); err != nil || k != k0 {
		t.Fatalf("equivalent spec hashed differently: %v (err %v)", k, err)
	}

	// Each determining field fragments the address.
	variants := []KeySpec{
		{Tree: plan.NewHSlice(plan.NewLeaf("a"), plan.NewLeaf("b")), Lib: lib, K1: 10},
		{Tree: tree, Lib: keyLib(t, plan.Library{"a": {{W: 4, H: 7}}, "b": {{W: 3, H: 3}}}), K1: 10},
		{Tree: tree, Lib: lib, K1: 11},
		{Tree: tree, Lib: lib, K1: 10, K2: 5},
		{Tree: tree, Lib: lib, K1: 10, S: 100},
		{Tree: tree, Lib: lib, K1: 10, Theta: 0.5},
		{Tree: tree, Lib: lib, K1: 10, MemoryLimit: 1000},
		{Tree: tree, Lib: lib, K1: 10, SkipPlacement: true},
	}
	keys := map[Key]int{k0: -1}
	for i, v := range variants {
		k, err := v.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if j, dup := keys[k]; dup {
			t.Errorf("variants %d and %d collide", i, j)
		}
		keys[k] = i
	}
}

func TestKeyErrors(t *testing.T) {
	if _, err := (KeySpec{}).Key(); err == nil {
		t.Error("nil tree accepted")
	}
	tree := plan.NewLeaf("missing")
	if _, err := (KeySpec{Tree: tree, Lib: plan.Library{}}).Key(); err == nil {
		t.Error("missing module accepted")
	}
	present := plan.Library{"missing": {{W: 1, H: 1}}}
	if _, err := (KeySpec{Tree: tree, Lib: present}).Key(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
