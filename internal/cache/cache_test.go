package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"floorplan/internal/telemetry"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestHitMiss(t *testing.T) {
	c, err := New(Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("curve"))
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, []byte("curve")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(len("curve"))+entryOverhead {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestPutIdempotent(t *testing.T) {
	c, err := New(Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(2)
	c.Put(k, []byte("v"))
	before := c.Stats().Bytes
	c.Put(k, []byte("v"))
	if got := c.Stats().Bytes; got != before {
		t.Fatalf("re-Put changed accounting: %d -> %d", before, got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits exactly two single-byte entries; one shard so the LRU
	// order is global.
	budget := 2 * (1 + entryOverhead)
	c, err := New(Config{MaxBytes: int64(budget), Shards: 1, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := testKey(1), testKey(2), testKey(3)
	c.Put(k1, []byte("a"))
	c.Put(k2, []byte("b"))
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, []byte("c"))
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	for _, k := range []Key{k1, k3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %v evicted out of LRU order", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
}

func TestOversizeReject(t *testing.T) {
	c, err := New(Config{MaxBytes: entryOverhead + 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, big := testKey(1), testKey(2)
	c.Put(small, []byte("ok"))
	c.Put(big, make([]byte, 4096)) // cannot ever fit
	if _, ok := c.Get(big); ok {
		t.Fatal("oversize entry stored")
	}
	if st := c.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
	// The resident small entry was not sacrificed for an unfittable one.
	if _, ok := c.Get(small); !ok {
		t.Fatal("resident entry lost to an oversize reject")
	}
}

func TestNilCacheDisabled(t *testing.T) {
	var c *Cache
	c.Put(testKey(1), []byte("v"))
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len != 0")
	}
}

// TestRaceOneKey hammers a single key from many goroutines — the pattern a
// repeated-subtree workload produces — while a sibling key churns evictions
// in the same shard. Run under -race by `make check`.
func TestRaceOneKey(t *testing.T) {
	budget := 4 * (64 + entryOverhead)
	c, err := New(Config{MaxBytes: int64(budget), Shards: 1, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	hot := testKey(7)
	payload := bytes.Repeat([]byte("x"), 64)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if v, ok := c.Get(hot); ok {
					if !bytes.Equal(v, payload) {
						t.Errorf("corrupted payload: %d bytes", len(v))
						return
					}
				} else {
					c.Put(hot, payload)
				}
				// Churn a goroutine-local key to force concurrent evictions.
				k := testKey(byte(32 + g))
				c.Put(k, bytes.Repeat([]byte("y"), 64))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatal("no hits under concurrent hammering")
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
}

// TestRacePeerFillEviction models the cluster tier's peer-fill traffic: many
// goroutines repeatedly Put the same small key set — idempotent stores of
// identical bytes per key, exactly what hot-key replication produces — into a
// budget that holds only a fraction of it, so every fill races an eviction.
// Correctness under -race: a Get never returns another key's bytes and the
// budget invariant holds throughout.
func TestRacePeerFillEviction(t *testing.T) {
	const distinct = 12
	budget := 3 * (32 + entryOverhead) // room for ~3 of the 12 keys
	c, err := New(Config{MaxBytes: int64(budget), Shards: 2, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 32)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := (g*7 + i) % distinct
				k := testKey(byte(n))
				if v, ok := c.Get(k); ok {
					if !bytes.Equal(v, payload(n)) {
						t.Errorf("key %d answered another key's bytes", n)
						return
					}
				} else {
					c.Put(k, payload(n))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions: the budget did not force fill/evict contention")
	}
}

func TestShardedSpread(t *testing.T) {
	c, err := New(Config{MaxBytes: 1 << 20, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		var k Key
		k[0] = byte(i) // first key bytes select the shard
		c.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64", c.Len())
	}
	used := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		if len(c.shards[i].entries) > 0 {
			used++
		}
		c.shards[i].mu.Unlock()
	}
	if used < 2 {
		t.Fatalf("all entries landed in %d shard(s)", used)
	}
}
