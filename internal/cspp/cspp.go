// Package cspp solves the Constrained Shortest Path Problem of Section 4.1
// of Wang/Wong TR-91-26: given a weighted DAG, two vertices s and t and a
// positive integer k, find a minimum-weight path from s to t that visits
// exactly k vertices, or report that none exists.
//
// The dynamic program is the paper's Constrained_Shortest_Path verbatim:
// W(s,v,l) is the least weight of an s→v path with exactly l vertices,
// computed for l = 1..k in O(k(|V|+|E|)) time (Theorem 1). On a DAG every
// walk is a simple path, so no explicit simplicity constraint is needed; the
// solver verifies acyclicity up front.
//
// Two entry points are provided:
//
//   - Solve runs on an explicit Graph, exactly as in the paper.
//   - SolveDense runs on the implicit complete DAG over vertices 0..n-1
//     (every edge i→j with i < j present, weights from a callback). This is
//     the instance both selection algorithms generate (Sections 4.2–4.3);
//     skipping graph materialization keeps their memory at O(kn).
package cspp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Inf is the sentinel weight for "no such path", the paper's W = ∞.
const Inf = int64(math.MaxInt64)

// ErrNoPath is returned when no s→t path with exactly k vertices exists —
// the algorithm's "Can not find such a path." outcome.
var ErrNoPath = errors.New("cspp: no path with exactly k vertices")

// edge is a directed edge stored on its head so the DP can scan incoming
// edges, mirroring the paper's "for each edge (v_j, v_i) ∈ E" loop.
type edge struct {
	from   int
	weight int64
}

// Graph is a directed graph with positive edge weights. Vertices are
// 0..N-1. The zero Graph is unusable; create one with NewGraph.
type Graph struct {
	n  int
	in [][]edge // incoming edges per vertex
	m  int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cspp: graph needs at least one vertex, got %d", n)
	}
	return &Graph{n: n, in: make([][]edge, n)}, nil
}

// MustGraph is NewGraph for statically known sizes; it panics on error.
func MustGraph(n int) *Graph {
	g, err := NewGraph(n)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the directed edge from→to with the given weight.
// Negative weights and self-loops are rejected. The paper states w > 0, but
// the selection reductions of Sections 4.2–4.3 legitimately produce
// zero-weight edges (adjacent implementations cost nothing to bridge) and
// the DP is exact for any non-negative weights on a DAG, so zero is allowed.
func (g *Graph) AddEdge(from, to int, weight int64) error {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return fmt.Errorf("cspp: edge (%d,%d) out of range [0,%d)", from, to, g.n)
	}
	if from == to {
		return fmt.Errorf("cspp: self-loop on vertex %d", from)
	}
	if weight < 0 {
		return fmt.Errorf("cspp: edge (%d,%d) has negative weight %d", from, to, weight)
	}
	g.in[to] = append(g.in[to], edge{from: from, weight: weight})
	g.m++
	return nil
}

// acyclic reports whether g is a DAG, via Kahn's algorithm.
func (g *Graph) acyclic() bool {
	indeg := make([]int, g.n)
	for v := range g.in {
		indeg[v] = len(g.in[v])
	}
	out := make([][]int, g.n)
	for v, es := range g.in {
		for _, e := range es {
			out[e.from] = append(out[e.from], v)
		}
	}
	queue := make([]int, 0, g.n)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return seen == g.n
}

// dpState holds the DP's working storage: the two rolling weight rows and
// the per-layer predecessor tables. The optimizer's selection policies
// solve thousands of small CSPP instances per run — and, with the parallel
// evaluator, from many goroutines at once — so the tables are recycled
// through a sync.Pool instead of being reallocated per solve. Nothing in a
// Result aliases the pooled storage (the path is extracted into a fresh
// slice before release).
type dpState struct {
	prev, cur []int64
	pred      [][]int32
	// wt and col serve SolveDenseColumns: the full (k+1)×n weight table its
	// j-major order needs, and the reusable edge-weight column buffer.
	wt  [][]int64
	col []int64
}

var dpPool = sync.Pool{New: func() any { return new(dpState) }}

// Pool telemetry: solves, and whether a pooled state's weight rows could
// be reused or had to grow. Process-wide (the pool itself is process-wide);
// collectors snapshot deltas around a run, so concurrent runs see combined
// churn — documented in the telemetry report's runtime section.
var (
	poolSolves atomic.Int64
	poolHits   atomic.Int64
	poolMisses atomic.Int64
)

// PoolCounters returns the cumulative DP-table pool statistics: total
// solves, reuses of an adequately sized pooled table, and misses that had
// to allocate fresh rows.
func PoolCounters() (solves, hits, misses int64) {
	return poolSolves.Load(), poolHits.Load(), poolMisses.Load()
}

// getDP returns a dpState with prev/cur sized for n vertices (initialized
// to Inf with prev[0] left for the caller) and room for k+1 pred rows.
func getDP(n, k int) *dpState {
	d := dpPool.Get().(*dpState)
	poolSolves.Add(1)
	if cap(d.prev) >= n {
		poolHits.Add(1)
	} else {
		poolMisses.Add(1)
	}
	if cap(d.prev) < n {
		d.prev = make([]int64, n)
		d.cur = make([]int64, n)
	}
	d.prev = d.prev[:n]
	d.cur = d.cur[:n]
	for v := range d.prev {
		d.prev[v] = Inf
	}
	if cap(d.pred) < k+1 {
		pred := make([][]int32, k+1)
		copy(pred, d.pred)
		d.pred = pred
	}
	d.pred = d.pred[:k+1]
	return d
}

// row returns the pred row for layer l, sized for n vertices. Rows are not
// cleared here: both DP loops assign every entry before reading it.
func (d *dpState) row(l, n int) []int32 {
	if cap(d.pred[l]) < n {
		d.pred[l] = make([]int32, n)
	}
	d.pred[l] = d.pred[l][:n]
	return d.pred[l]
}

// wrow returns the weight row for layer l, sized for n vertices and filled
// with Inf.
func (d *dpState) wrow(l, n int) []int64 {
	if cap(d.wt) < l+1 {
		wt := make([][]int64, l+1)
		copy(wt, d.wt)
		d.wt = wt
	}
	if len(d.wt) < l+1 {
		d.wt = d.wt[:l+1]
	}
	if cap(d.wt[l]) < n {
		d.wt[l] = make([]int64, n)
	}
	d.wt[l] = d.wt[l][:n]
	for v := range d.wt[l] {
		d.wt[l][v] = Inf
	}
	return d.wt[l]
}

// colRun returns the column buffer sized for n vertices (not cleared; the
// column callback assigns every entry the DP reads).
func (d *dpState) colRun(n int) []int64 {
	if cap(d.col) < n {
		d.col = make([]int64, n)
	}
	d.col = d.col[:n]
	return d.col
}

func (d *dpState) release() { dpPool.Put(d) }

// Result is the output of a successful CSPP solve.
type Result struct {
	// Path is the vertex sequence from s to t; len(Path) == k.
	Path []int
	// Weight is the total path weight, 0 when k == 1.
	Weight int64
}

// Solve runs the paper's Constrained_Shortest_Path on g.
func Solve(g *Graph, s, t, k int) (Result, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return Result{}, fmt.Errorf("cspp: s=%d or t=%d out of range [0,%d)", s, t, g.n)
	}
	if k < 1 || k > g.n {
		return Result{}, fmt.Errorf("cspp: k=%d out of range [1,%d]", k, g.n)
	}
	if !g.acyclic() {
		return Result{}, errors.New("cspp: graph is not a DAG")
	}
	if k == 1 {
		if s != t {
			return Result{}, ErrNoPath
		}
		return Result{Path: []int{s}, Weight: 0}, nil
	}

	// W[l][v] with rolling rows; pred[l][v] records the vertex that
	// produced W(s,v,l), the paper's traceback bookkeeping.
	d := getDP(g.n, k)
	defer d.release()
	prev, cur := d.prev, d.cur
	prev[s] = 0
	for l := 2; l <= k; l++ {
		pred := d.row(l, g.n)
		for v := 0; v < g.n; v++ {
			cur[v] = Inf
			pred[v] = -1
			for _, e := range g.in[v] {
				if prev[e.from] == Inf {
					continue
				}
				if w := prev[e.from] + e.weight; w < cur[v] {
					cur[v] = w
					pred[v] = int32(e.from)
				}
			}
		}
		// A path of l >= 2 vertices cannot end at s again in a DAG.
		cur[s] = Inf
		prev, cur = cur, prev
	}
	if prev[t] == Inf {
		return Result{}, ErrNoPath
	}
	path := make([]int, k)
	path[k-1] = t
	v := t
	for l := k; l >= 2; l-- {
		v = int(d.pred[l][v])
		path[l-2] = v
	}
	if path[0] != s {
		// Cannot happen on a correct DP; guard against silent corruption.
		return Result{}, fmt.Errorf("cspp: traceback reached %d, not s=%d", path[0], s)
	}
	return Result{Path: path, Weight: prev[t]}, nil
}

// WeightFunc gives the weight of the implicit edge i→j (i < j) of a dense
// interval DAG. Weights must be >= 0; selection error weights can be zero
// (adjacent implementations cost nothing to bridge), which is harmless here
// because the interval DAG is acyclic by construction.
type WeightFunc func(i, j int) int64

// SolveDense solves the CSPP on the complete DAG over 0..n-1 with source 0
// and sink n-1: it returns the k vertex indices of a minimum-weight path
// visiting exactly k vertices. This is the reduction target of R_Selection
// and L_Selection, where vertex i is the i-th implementation of an
// irreducible list and w(i,j) = error(r_i, r_j).
func SolveDense(n, k int, weight WeightFunc) ([]int, int64, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("cspp: dense graph needs n >= 1, got %d", n)
	}
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("cspp: k=%d out of range [1,%d]", k, n)
	}
	if k == 1 {
		if n != 1 {
			return nil, 0, ErrNoPath
		}
		return []int{0}, 0, nil
	}
	d := getDP(n, k)
	defer d.release()
	prev, cur := d.prev, d.cur
	prev[0] = 0
	for l := 2; l <= k; l++ {
		pred := d.row(l, n)
		// With exactly l vertices used, the path tip can be no earlier than
		// vertex l-1 and must leave room for the remaining k-l hops.
		for v := 0; v < n; v++ {
			cur[v] = Inf
			pred[v] = -1
		}
		lo := l - 1
		hi := n - 1 - (k - l)
		for v := lo; v <= hi; v++ {
			for u := l - 2; u < v; u++ {
				if prev[u] == Inf {
					continue
				}
				if w := prev[u] + weight(u, v); w < cur[v] {
					cur[v] = w
					pred[v] = int32(u)
				}
			}
		}
		prev, cur = cur, prev
	}
	if prev[n-1] == Inf {
		return nil, 0, ErrNoPath
	}
	path := make([]int, k)
	path[k-1] = n - 1
	v := n - 1
	for l := k; l >= 2; l-- {
		v = int(d.pred[l][v])
		path[l-2] = v
	}
	return path, prev[n-1], nil
}

// ColumnFunc fills col[u] = w(u, v) for every 0 <= u < v, the incoming edge
// weights of dense-DAG vertex v. len(col) == v.
type ColumnFunc func(v int, col []int64)

// SolveDenseColumns is SolveDense in j-major order: the DP visits each
// vertex v once, asks the callback for v's full incoming weight column, and
// relaxes every feasible layer against it. Callers whose edge weights come
// from a per-column recurrence (the selection error tables of Sections
// 4.2–4.3) generate each column exactly once instead of once per layer —
// cutting the column work by a factor of k — and never materialize the
// O(n²) error table at all. Results are identical to SolveDense on the same
// weights: the layer scan order, u-ascending tie-break and feasible ranges
// are preserved exactly.
//
// Memory is O(kn) for the weight table — the same order as the predecessor
// table both solvers already keep.
func SolveDenseColumns(n, k int, column ColumnFunc) ([]int, int64, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("cspp: dense graph needs n >= 1, got %d", n)
	}
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("cspp: k=%d out of range [1,%d]", k, n)
	}
	if k == 1 {
		if n != 1 {
			return nil, 0, ErrNoPath
		}
		return []int{0}, 0, nil
	}
	d := getDP(n, k)
	defer d.release()
	col := d.colRun(n)
	for l := 1; l <= k; l++ {
		d.wrow(l, n)
	}
	wt := d.wt
	wt[1][0] = 0
	for l := 2; l <= k; l++ {
		pred := d.row(l, n)
		for v := range pred {
			pred[v] = -1
		}
	}
	for v := 1; v < n; v++ {
		column(v, col[:v])
		// v can sit at layer l only with l-1 predecessors before it and
		// k-l successors after it — the same feasible band SolveDense walks.
		lmin := k - (n - 1 - v)
		if lmin < 2 {
			lmin = 2
		}
		lmax := v + 1
		if lmax > k {
			lmax = k
		}
		for l := lmin; l <= lmax; l++ {
			prevRow := wt[l-1]
			best, bestAt := Inf, int32(-1)
			for u := l - 2; u < v; u++ {
				if prevRow[u] == Inf {
					continue
				}
				if w := prevRow[u] + col[u]; w < best {
					best, bestAt = w, int32(u)
				}
			}
			wt[l][v] = best
			d.pred[l][v] = bestAt
		}
	}
	if wt[k][n-1] == Inf {
		return nil, 0, ErrNoPath
	}
	path := make([]int, k)
	path[k-1] = n - 1
	v := n - 1
	for l := k; l >= 2; l-- {
		v = int(d.pred[l][v])
		path[l-2] = v
	}
	return path, wt[k][n-1], nil
}
