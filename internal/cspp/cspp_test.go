package cspp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure4 builds the worked example of the paper's Figure 4 (vertices are
// 0-based here: v1..v6 -> 0..5). Edge weights are chosen to reproduce every
// number quoted in Section 4.1: the unconstrained shortest path
// v1→v2→v3→v4→v5→v6 has weight 8, and the three 4-vertex paths
// v1→v2→v4→v6, v1→v3→v4→v6, v1→v2→v5→v6 weigh 11, 12 and 15.
func figure4(t *testing.T) *Graph {
	t.Helper()
	g := MustGraph(6)
	edges := []struct {
		from, to int
		w        int64
	}{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {3, 4, 2}, {4, 5, 2},
		{1, 3, 4}, {3, 5, 6}, {0, 2, 5}, {1, 4, 12},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFigure4(t *testing.T) {
	g := figure4(t)

	// Unconstrained shortest path = constrained with k = 6 here.
	res, err := Solve(g, 0, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 8 {
		t.Errorf("k=6 weight = %d, want 8", res.Weight)
	}
	wantPath := []int{0, 1, 2, 3, 4, 5}
	for i, v := range wantPath {
		if res.Path[i] != v {
			t.Fatalf("k=6 path = %v, want %v", res.Path, wantPath)
		}
	}

	// The paper's k = 4 instance: v1→v2→v4→v6 with weight 11.
	res, err = Solve(g, 0, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 11 {
		t.Errorf("k=4 weight = %d, want 11", res.Weight)
	}
	want4 := []int{0, 1, 3, 5}
	for i, v := range want4 {
		if res.Path[i] != v {
			t.Fatalf("k=4 path = %v, want %v", res.Path, want4)
		}
	}
}

func TestSolveKOne(t *testing.T) {
	g := figure4(t)
	res, err := Solve(g, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 1 || res.Path[0] != 2 || res.Weight != 0 {
		t.Errorf("k=1 result = %+v", res)
	}
	if _, err := Solve(g, 0, 2, 1); !errors.Is(err, ErrNoPath) {
		t.Errorf("k=1 with s != t should be ErrNoPath, got %v", err)
	}
}

func TestSolveNoPath(t *testing.T) {
	g := MustGraph(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, 0, 2, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable target should be ErrNoPath, got %v", err)
	}
	// Reachable, but not with the requested vertex count.
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, 0, 2, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("k=2 over a 3-vertex chain should be ErrNoPath, got %v", err)
	}
	if res, err := Solve(g, 0, 2, 3); err != nil || res.Weight != 2 {
		t.Errorf("k=3 = %+v, %v", res, err)
	}
}

func TestSolveRejectsCycle(t *testing.T) {
	g := MustGraph(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Solve(g, 0, 2, 3); err == nil || errors.Is(err, ErrNoPath) {
		t.Errorf("cyclic graph should be rejected with a distinct error, got %v", err)
	}
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("expected error for empty graph")
	}
	g := MustGraph(2)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("expected error for self-loop")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("expected error for negative weight")
	}
	if err := g.AddEdge(0, 1, 0); err != nil {
		t.Errorf("zero weight should be allowed: %v", err)
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("expected error for out-of-range vertex")
	}
	if _, err := Solve(g, 0, 1, 5); err == nil {
		t.Error("expected error for k > |V|")
	}
	if _, err := Solve(g, -1, 1, 1); err == nil {
		t.Error("expected error for bad s")
	}
	if g.N() != 2 || g.M() != 1 {
		t.Errorf("N=%d M=%d", g.N(), g.M())
	}
}

// bruteCSPP enumerates every path from s to t with exactly k vertices by
// DFS and returns the minimum weight, or Inf when none exists. Oracle for
// randomized testing.
func bruteCSPP(adj [][]int64, s, t, k int) int64 {
	n := len(adj)
	best := Inf
	var dfs func(v int, used int, w int64)
	dfs = func(v int, used int, w int64) {
		if used == k {
			if v == t && w < best {
				best = w
			}
			return
		}
		for u := 0; u < n; u++ {
			if adj[v][u] >= 0 {
				dfs(u, used+1, w+adj[v][u])
			}
		}
	}
	dfs(s, 1, 0)
	return best
}

// randomDAG builds a random DAG over a random topological order, returning
// both the Graph and an adjacency matrix (-1 = no edge).
func randomDAG(rng *rand.Rand, n int, density float64) (*Graph, [][]int64) {
	g := MustGraph(n)
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = make([]int64, n)
		for j := range adj[i] {
			adj[i][j] = -1
		}
	}
	order := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				w := rng.Int63n(20) // zero weights exercised too
				from, to := order[i], order[j]
				if err := g.AddEdge(from, to, w); err != nil {
					panic(err)
				}
				adj[from][to] = w
			}
		}
	}
	return g, adj
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		g, adj := randomDAG(r, n, 0.3+r.Float64()*0.5)
		s, tgt := r.Intn(n), r.Intn(n)
		k := 1 + r.Intn(n)
		want := bruteCSPP(adj, s, tgt, k)
		res, err := Solve(g, s, tgt, k)
		switch {
		case errors.Is(err, ErrNoPath):
			return want == Inf
		case err != nil:
			t.Logf("unexpected error: %v", err)
			return false
		default:
			if res.Weight != want {
				t.Logf("weight %d, want %d (n=%d s=%d t=%d k=%d)", res.Weight, want, n, s, tgt, k)
				return false
			}
			// Path integrity: k vertices, starts s, ends t, edges exist and
			// weights sum to the reported total.
			if len(res.Path) != k || res.Path[0] != s || res.Path[k-1] != tgt {
				return false
			}
			var sum int64
			for i := 0; i+1 < len(res.Path); i++ {
				w := adj[res.Path[i]][res.Path[i+1]]
				if w < 0 {
					t.Logf("path uses missing edge %d->%d", res.Path[i], res.Path[i+1])
					return false
				}
				sum += w
			}
			return sum == res.Weight
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDenseMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		w := make([][]int64, n)
		g := MustGraph(n)
		for i := range w {
			w[i] = make([]int64, n)
			for j := i + 1; j < n; j++ {
				w[i][j] = rng.Int63n(50)
				if err := g.AddEdge(i, j, w[i][j]); err != nil {
					t.Fatal(err)
				}
			}
		}
		k := 2 + rng.Intn(n-1)
		path, weight, err := SolveDense(n, k, func(i, j int) int64 { return w[i][j] })
		if err != nil {
			t.Fatalf("SolveDense: %v", err)
		}
		res, err := Solve(g, 0, n-1, k)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if weight != res.Weight {
			t.Fatalf("dense weight %d != explicit %d (n=%d k=%d)", weight, res.Weight, n, k)
		}
		if len(path) != k || path[0] != 0 || path[k-1] != n-1 {
			t.Fatalf("dense path malformed: %v", path)
		}
		var sum int64
		for i := 0; i+1 < len(path); i++ {
			if path[i] >= path[i+1] {
				t.Fatalf("dense path not increasing: %v", path)
			}
			sum += w[path[i]][path[i+1]]
		}
		if sum != weight {
			t.Fatalf("dense path weight %d != reported %d", sum, weight)
		}
	}
}

func TestSolveDenseEdgeCases(t *testing.T) {
	if _, _, err := SolveDense(0, 1, nil); err == nil {
		t.Error("expected error for n=0")
	}
	if _, _, err := SolveDense(5, 6, nil); err == nil {
		t.Error("expected error for k > n")
	}
	if _, _, err := SolveDense(5, 0, nil); err == nil {
		t.Error("expected error for k < 1")
	}
	path, weight, err := SolveDense(1, 1, nil)
	if err != nil || weight != 0 || len(path) != 1 || path[0] != 0 {
		t.Errorf("n=1 k=1: %v %d %v", path, weight, err)
	}
	if _, _, err := SolveDense(3, 1, nil); !errors.Is(err, ErrNoPath) {
		t.Errorf("n=3 k=1 should be ErrNoPath, got %v", err)
	}
	// k = n must select everything.
	path, weight, err = SolveDense(4, 4, func(i, j int) int64 {
		if j == i+1 {
			return 1
		}
		return 100
	})
	if err != nil || weight != 3 {
		t.Fatalf("k=n: %v %d %v", path, weight, err)
	}
}

func TestSolveDenseKTwo(t *testing.T) {
	// k=2 must take the direct edge 0 -> n-1.
	path, weight, err := SolveDense(6, 2, func(i, j int) int64 { return int64(10*i + j) })
	if err != nil {
		t.Fatal(err)
	}
	if weight != 5 || len(path) != 2 || path[0] != 0 || path[1] != 5 {
		t.Fatalf("k=2: %v %d", path, weight)
	}
}

// TestPooledBuffersReuse solves instances of varying sizes back to back and
// concurrently, checking that the recycled DP tables never leak state
// between solves. The weights make the optimal path unique so any
// contamination would flip the result.
func TestPooledBuffersReuse(t *testing.T) {
	solve := func(n, k int) ([]int, int64, error) {
		return SolveDense(n, k, func(i, j int) int64 { return int64((j - i) * (j - i)) })
	}
	// Sequential size churn: big, small, big again.
	for _, nk := range [][2]int{{40, 10}, {3, 2}, {40, 10}, {8, 8}, {40, 40}} {
		n, k := nk[0], nk[1]
		path, w, err := solve(n, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if len(path) != k || path[0] != 0 || path[k-1] != n-1 {
			t.Fatalf("n=%d k=%d: bad path %v", n, k, path)
		}
		if ref, refW, _ := solve(n, k); refW != w || len(ref) != len(path) {
			t.Fatalf("n=%d k=%d: unstable weight %d vs %d", n, k, w, refW)
		}
	}
	// Concurrent solves (run with -race): the pool must isolate states.
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				n := 5 + (g+i)%30
				k := 2 + (g+i)%(n-1)
				path, _, err := solve(n, k)
				if err != nil {
					done <- err
					return
				}
				if len(path) != k {
					done <- ErrNoPath
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
