package cspp

import (
	"math/rand"
	"testing"
)

// randWeights builds a deterministic dense weight matrix with many ties so
// the tie-break (lowest u wins) is actually exercised.
func randWeights(rng *rand.Rand, n, span int) [][]int64 {
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
		for j := i + 1; j < n; j++ {
			w[i][j] = int64(rng.Intn(span))
		}
	}
	return w
}

// TestSolveDenseColumnsMatchesSolveDense pins the j-major solver to the
// level-major one bit-for-bit: identical path (not just weight), for every
// feasible k, on tie-heavy instances. Bit-identical selection is what keeps
// the optimizer's output independent of which solver a code path uses.
func TestSolveDenseColumnsMatchesSolveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		w := randWeights(rng, n, 1+rng.Intn(6))
		weight := func(i, j int) int64 { return w[i][j] }
		column := func(v int, col []int64) {
			for u := 0; u < v; u++ {
				col[u] = w[u][v]
			}
		}
		for k := 2; k <= n; k++ {
			wantPath, wantW, wantErr := SolveDense(n, k, weight)
			gotPath, gotW, gotErr := SolveDenseColumns(n, k, column)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("n=%d k=%d: err mismatch %v vs %v", n, k, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if wantW != gotW {
				t.Fatalf("n=%d k=%d: weight %d vs %d", n, k, wantW, gotW)
			}
			for i := range wantPath {
				if wantPath[i] != gotPath[i] {
					t.Fatalf("n=%d k=%d: path %v vs %v", n, k, wantPath, gotPath)
				}
			}
		}
	}
}

func TestSolveDenseColumnsEdgeCases(t *testing.T) {
	zeroCol := func(v int, col []int64) {
		for u := range col {
			col[u] = 0
		}
	}
	if _, _, err := SolveDenseColumns(0, 1, zeroCol); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, _, err := SolveDenseColumns(3, 4, zeroCol); err == nil {
		t.Fatal("k>n must error")
	}
	path, w, err := SolveDenseColumns(1, 1, zeroCol)
	if err != nil || w != 0 || len(path) != 1 || path[0] != 0 {
		t.Fatalf("trivial instance: path=%v w=%d err=%v", path, w, err)
	}
	if _, _, err := SolveDenseColumns(2, 1, zeroCol); err != ErrNoPath {
		t.Fatalf("k=1 n=2 should be ErrNoPath, got %v", err)
	}
}

// BenchmarkCSPPFused measures the j-major dense solver on an instance with
// a cheap synthetic column recurrence, isolating the DP scan itself.
func BenchmarkCSPPFused(b *testing.B) {
	const n, k = 1024, 32
	column := func(v int, col []int64) {
		acc := int64(0)
		for u := v - 1; u >= 0; u-- {
			acc += int64(v - u)
			col[u] = acc
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveDenseColumns(n, k, column); err != nil {
			b.Fatal(err)
		}
	}
}
