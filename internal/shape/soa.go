package shape

import "sync"

// This file holds the structure-of-arrays views of shape lists and the
// pooled scratch buffers behind the dominance-pruning kernels. The pruning
// sweeps in pareto.go sort and scan *single keys* (one coordinate plus a
// carried index), so they want contiguous int64 columns rather than 32-byte
// structs: a column sweep touches 8 bytes per element instead of dragging
// whole implementations through the cache, and sorting (key, index) pairs
// with slices.SortFunc compiles to direct comparisons with no reflection.
// The pairwise brute-force kernel below the divide-and-conquer cutoff keeps
// the array-of-structs layout instead: it compares all four coordinates of
// the same two elements, which is exactly the access pattern AoS packs into
// one cache line. DESIGN.md §11 documents the split.

// RCols is the structure-of-arrays view of a rectangular implementation
// list: Ws[i], Hs[i] mirror list[i].W, list[i].H. The canonical RList
// invariants (Ws strictly decreasing, Hs strictly increasing) carry over.
// The Stockmeyer evaluator accumulates slicing merges directly on RCols so
// its inner loops stream over the height column alone.
type RCols struct {
	Ws, Hs []int64
}

// Len returns the number of implementations in the view.
func (c *RCols) Len() int { return len(c.Ws) }

// Reset empties the view, retaining capacity.
func (c *RCols) Reset() {
	c.Ws = c.Ws[:0]
	c.Hs = c.Hs[:0]
}

// Append adds one implementation to the view.
func (c *RCols) Append(w, h int64) {
	c.Ws = append(c.Ws, w)
	c.Hs = append(c.Hs, h)
}

// SetList replaces the view's contents with the columns of l.
func (c *RCols) SetList(l RList) {
	c.Reset()
	if cap(c.Ws) < len(l) {
		c.Ws = make([]int64, 0, len(l))
		c.Hs = make([]int64, 0, len(l))
	}
	for _, r := range l {
		c.Append(r.W, r.H)
	}
}

// RList materializes the view as an RList. The caller asserts the view is
// canonical; Validate on the result checks it in tests.
func (c *RCols) RList() RList {
	out := make(RList, len(c.Ws))
	for i := range out {
		out[i] = RImpl{W: c.Ws[i], H: c.Hs[i]}
	}
	return out
}

// LCols is the structure-of-arrays view of a set of L-shaped
// implementations: column i mirrors the paper's 4-tuple (w1, w2, h1, h2).
type LCols struct {
	W1s, W2s, H1s, H2s []int64
}

// Len returns the number of implementations in the view.
func (c *LCols) Len() int { return len(c.W1s) }

// Reset empties the view, retaining capacity.
func (c *LCols) Reset() {
	c.W1s = c.W1s[:0]
	c.W2s = c.W2s[:0]
	c.H1s = c.H1s[:0]
	c.H2s = c.H2s[:0]
}

// SetImpls replaces the view's contents with the columns of impls.
func (c *LCols) SetImpls(impls []LImpl) {
	c.Reset()
	if cap(c.W1s) < len(impls) {
		n := len(impls)
		c.W1s = make([]int64, 0, n)
		c.W2s = make([]int64, 0, n)
		c.H1s = make([]int64, 0, n)
		c.H2s = make([]int64, 0, n)
	}
	for _, l := range impls {
		c.W1s = append(c.W1s, l.W1)
		c.W2s = append(c.W2s, l.W2)
		c.H1s = append(c.H1s, l.H1)
		c.H2s = append(c.H2s, l.H2)
	}
}

// At returns implementation i of the view.
func (c *LCols) At(i int) LImpl {
	return LImpl{W1: c.W1s[i], W2: c.W2s[i], H1: c.H1s[i], H2: c.H2s[i]}
}

// keyIdx is a sort pair: one int64 key plus the element index it belongs
// to. The pruning filters sort these instead of permuting implementations.
type keyIdx struct {
	key int64
	idx int32
}

// pruneScratch pools the working storage of one MinimaL / MinimaR /
// LSetFromMinimal call: the dominance kernels run once per combine step, so
// recycling their buffers removes the dominant per-node allocation churn.
// A scratch is owned by exactly one call at a time (taken from and returned
// to a sync.Pool); none of the returned results alias it.
type pruneScratch struct {
	impls []LImpl  // sorted candidate copy (MinimaL non-destructive entry)
	keep  []bool   // survivor flags, indexed like the sorted candidates
	idx   []int32  // index range handed to minima4
	pairs []keyIdx // key/index sort buffer for the cross-half filters
	vals  []int64  // rank-coordinate scratch (sorted, deduplicated)
	fen   []int64  // Fenwick prefix-min storage
	pts   []point3 // 3-d projection buffer for degenerate W1 groups
}

var pruneScratchPool = sync.Pool{New: func() any { return new(pruneScratch) }}

func getPruneScratch() *pruneScratch  { return pruneScratchPool.Get().(*pruneScratch) }
func putPruneScratch(s *pruneScratch) { pruneScratchPool.Put(s) }

// boolRun returns a zeroed bool slice of length n from the scratch.
func (s *pruneScratch) boolRun(n int) []bool {
	if cap(s.keep) < n {
		s.keep = make([]bool, n)
	}
	s.keep = s.keep[:n]
	for i := range s.keep {
		s.keep[i] = false
	}
	return s.keep
}

// indexRun returns the identity permutation 0..n-1 from the scratch.
func (s *pruneScratch) indexRun(n int) []int32 {
	if cap(s.idx) < n {
		s.idx = make([]int32, n)
	}
	s.idx = s.idx[:n]
	for i := range s.idx {
		s.idx[i] = int32(i)
	}
	return s.idx
}

// pairRun returns an empty keyIdx buffer with capacity n.
func (s *pruneScratch) pairRun(n int) []keyIdx {
	if cap(s.pairs) < n {
		s.pairs = make([]keyIdx, 0, n)
	}
	return s.pairs[:0]
}

// valRun returns an empty int64 buffer with capacity n.
func (s *pruneScratch) valRun(n int) []int64 {
	if cap(s.vals) < n {
		s.vals = make([]int64, 0, n)
	}
	return s.vals[:0]
}

// fenwickRun returns Fenwick storage for n ranks, reset to +inf.
func (s *pruneScratch) fenwickRun(n int) []int64 {
	if cap(s.fen) < n+1 {
		s.fen = make([]int64, n+1)
	}
	s.fen = s.fen[:n+1]
	for i := range s.fen {
		s.fen[i] = fenwickInf
	}
	return s.fen
}

// ptsRun returns an empty point3 buffer with capacity n.
func (s *pruneScratch) ptsRun(n int) []point3 {
	if cap(s.pts) < n {
		s.pts = make([]point3, 0, n)
	}
	return s.pts[:0]
}

// rankOf returns the 1-based rank of v among the sorted distinct values in
// uniq: the smallest position whose value is >= v. A hand-rolled binary
// search keeps the pruning sweeps free of closure calls.
func rankOf(uniq []int64, v int64) int {
	lo, hi := 0, len(uniq)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if uniq[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// dedupSorted compacts consecutive duplicates in a sorted int64 slice.
func dedupSorted(vals []int64) []int64 {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
