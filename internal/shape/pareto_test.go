package shape

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomLImpls(rng *rand.Rand, n int, span int64) []LImpl {
	out := make([]LImpl, 0, n)
	for len(out) < n {
		w2 := 1 + rng.Int63n(span)
		w1 := w2 + rng.Int63n(span)
		h2 := 1 + rng.Int63n(span)
		h1 := h2 + rng.Int63n(span)
		out = append(out, LImpl{W1: w1, W2: w2, H1: h1, H2: h2})
	}
	return out
}

func sortedCopy(ls []LImpl) []LImpl {
	out := make([]LImpl, len(ls))
	copy(out, ls)
	sortLImpls(out)
	return out
}

func equalLSlices(a, b []LImpl) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMinimaLMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		span := int64(3 + r.Intn(12)) // small span => dense dominations
		in := randomLImpls(r, 1+r.Intn(120), span)
		fast := sortedCopy(MinimaL(in))
		slow := sortedCopy(MinimaLBrute(in))
		if !equalLSlices(fast, slow) {
			t.Logf("span=%d n=%d fast=%d slow=%d", span, len(in), len(fast), len(slow))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimaLLarge(t *testing.T) {
	// Exercise the divide-and-conquer path well past the brute cutoff.
	rng := rand.New(rand.NewSource(3))
	in := randomLImpls(rng, 5000, 40)
	fast := sortedCopy(MinimaL(in))
	slow := sortedCopy(MinimaLBrute(in))
	if !equalLSlices(fast, slow) {
		t.Fatalf("large case mismatch: fast=%d slow=%d", len(fast), len(slow))
	}
}

func TestMinimaLAntichain(t *testing.T) {
	// A pure antichain must be kept intact.
	var in []LImpl
	for i := int64(0); i < 100; i++ {
		in = append(in, LImpl{W1: 200 - i, W2: 100 - i/2, H1: 100 + i, H2: 1 + i})
	}
	got := MinimaL(in)
	if len(got) != len(in) {
		t.Fatalf("antichain reduced from %d to %d", len(in), len(got))
	}
}

func TestMinimaLChain(t *testing.T) {
	// A totally ordered chain must collapse to its single minimum.
	var in []LImpl
	for i := int64(1); i <= 64; i++ {
		in = append(in, LImpl{W1: 2 * i, W2: i, H1: 2 * i, H2: i})
	}
	got := MinimaL(in)
	if len(got) != 1 || got[0] != in[0] {
		t.Fatalf("chain minima = %v", got)
	}
}

func TestMinimaLDuplicates(t *testing.T) {
	a := LImpl{5, 3, 4, 2}
	in := []LImpl{a, a, a}
	got := MinimaL(in)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("duplicates should collapse to one survivor, got %v", got)
	}
}

func TestMinimaLEmpty(t *testing.T) {
	if got := MinimaL(nil); got != nil {
		t.Fatalf("MinimaL(nil) = %v", got)
	}
}

func TestMinFenwick(t *testing.T) {
	var s pruneScratch
	f := minFenwick{tree: s.fenwickRun(8)}
	if f.prefixMin(8) != fenwickInf {
		t.Fatal("fresh fenwick should report +inf")
	}
	f.update(3, 10)
	f.update(6, 4)
	tests := []struct {
		i    int
		want int64
	}{
		{2, fenwickInf}, {3, 10}, {5, 10}, {6, 4}, {8, 4},
	}
	for _, tc := range tests {
		if got := f.prefixMin(tc.i); got != tc.want {
			t.Errorf("prefixMin(%d) = %d, want %d", tc.i, got, tc.want)
		}
	}
	f.update(3, 2)
	if got := f.prefixMin(4); got != 2 {
		t.Errorf("after lowering, prefixMin(4) = %d, want 2", got)
	}
}

func TestMinima3Direct(t *testing.T) {
	pts := []point3{
		{a: 1, b: 5, c: 5, idx: 0},
		{a: 2, b: 4, c: 6, idx: 1},
		{a: 2, b: 6, c: 6, idx: 2}, // dominated by idx 0? a=2>=1,b=6>=5,c=6>=5: yes
		{a: 3, b: 3, c: 3, idx: 3},
		{a: 3, b: 3, c: 3, idx: 4}, // duplicate of idx 3 (caller must dedup; here both kept order-dependently)
	}
	keep := make([]bool, 5)
	// Dedup contract: minima3 assumes no duplicates; drop idx 4 for the test.
	minima3(pts[:4], keep, new(pruneScratch))
	if !keep[0] || !keep[1] || keep[2] || !keep[3] {
		t.Fatalf("keep = %v", keep)
	}
}

func TestMinimaRMatchesRList(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		in := randomRImpls(rng, 1+rng.Intn(80))
		got := MinimaR(in)
		want := newRListUnchecked(in)
		if len(got) != len(want) {
			t.Fatalf("MinimaR size %d, RList size %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MinimaR[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestMinimaLPermutationInvariant checks the result does not depend on input
// order.
func TestMinimaLPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomLImpls(rng, 300, 15)
	base := sortedCopy(MinimaL(in))
	for trial := 0; trial < 10; trial++ {
		perm := make([]LImpl, len(in))
		copy(perm, in)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := sortedCopy(MinimaL(perm))
		if !equalLSlices(base, got) {
			t.Fatalf("trial %d: permutation changed minima", trial)
		}
	}
}

func TestSortLImplsIsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomLImpls(rng, 200, 5)
	sortLImpls(in)
	if !sort.SliceIsSorted(in, func(i, j int) bool {
		a, b := in[i], in[j]
		if a.W1 != b.W1 {
			return a.W1 < b.W1
		}
		if a.W2 != b.W2 {
			return a.W2 < b.W2
		}
		if a.H1 != b.H1 {
			return a.H1 < b.H1
		}
		return a.H2 < b.H2
	}) {
		t.Fatal("sortLImpls did not produce lexicographic order")
	}
}
