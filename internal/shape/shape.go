// Package shape implements the implementation lists at the heart of
// floorplan area optimization: rectangular implementations (w, h), L-shaped
// implementations (w1, w2, h1, h2), the dominance relation between them
// (Definitions 1–2 of Wang/Wong, TR-91-26), and the canonical irreducible
// R-lists and L-lists the optimizer stores (Definitions 3–5).
//
// Conventions (matching the paper):
//
//   - A rectangular implementation is (W, H).
//   - An L-shaped implementation is (W1, W2, H1, H2) with W1 >= W2 and
//     H1 >= H2, where W1 is the bottom edge width, W2 the top edge width,
//     H1 the left edge height and H2 the right edge height. The notch sits
//     at the top-right: the occupied region is
//     [0,W1]x[0,H2] ∪ [0,W2]x[H2,H1].
//   - Implementation I1 dominates I2 when every component of I1 is >= the
//     corresponding component of I2; a dominating implementation is
//     redundant because anything built from it is at least as large.
//
// All constructors prune redundant implementations, so a shape list held by
// the optimizer is always irreducible.
package shape

import "fmt"

// RImpl is one implementation of a rectangular block.
type RImpl struct {
	W, H int64
}

// Area returns W*H.
func (r RImpl) Area() int64 { return r.W * r.H }

// Dominates reports whether r dominates o (Definition 1): r.W >= o.W and
// r.H >= o.H. Equal implementations dominate each other.
func (r RImpl) Dominates(o RImpl) bool { return r.W >= o.W && r.H >= o.H }

// Valid reports whether r has positive extents.
func (r RImpl) Valid() bool { return r.W > 0 && r.H > 0 }

// Rotate returns the 90-degree rotation of r.
func (r RImpl) Rotate() RImpl { return RImpl{W: r.H, H: r.W} }

// String implements fmt.Stringer.
func (r RImpl) String() string { return fmt.Sprintf("(%d,%d)", r.W, r.H) }

// LImpl is one implementation of an L-shaped block, as the paper's 4-tuple
// (w1, w2, h1, h2). The degenerate cases W1 == W2 or H1 == H2 describe a
// plain rectangle.
type LImpl struct {
	W1, W2, H1, H2 int64
}

// Valid reports whether l satisfies the canonical constraints
// W1 >= W2 > 0 and H1 >= H2 > 0.
func (l LImpl) Valid() bool {
	return l.W2 > 0 && l.H2 > 0 && l.W1 >= l.W2 && l.H1 >= l.H2
}

// IsRect reports whether l degenerates to a rectangle (empty notch).
func (l LImpl) IsRect() bool { return l.W1 == l.W2 || l.H1 == l.H2 }

// Rect returns the bounding box of l as a rectangular implementation.
func (l LImpl) Rect() RImpl { return RImpl{W: l.W1, H: l.H1} }

// Area returns the occupied area of the L: the full-width bottom slab plus
// the top-left slab above the notch line.
func (l LImpl) Area() int64 { return l.W1*l.H2 + l.W2*(l.H1-l.H2) }

// Dominates reports whether l dominates o (Definition 1): every one of the
// four components of l is >= the corresponding component of o.
func (l LImpl) Dominates(o LImpl) bool {
	return l.W1 >= o.W1 && l.W2 >= o.W2 && l.H1 >= o.H1 && l.H2 >= o.H2
}

// Dist returns the Manhattan (L1) distance between l and o viewed as points
// of R^4, the measure L_Selection uses for the cost of a discarded
// implementation (Section 4.3 of the paper).
func (l LImpl) Dist(o LImpl) int64 {
	return abs64(l.W1-o.W1) + abs64(l.W2-o.W2) + abs64(l.H1-o.H1) + abs64(l.H2-o.H2)
}

// String implements fmt.Stringer.
func (l LImpl) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", l.W1, l.W2, l.H1, l.H2)
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
