package shape

import (
	"fmt"
	"slices"
	"sort"
)

// RList is an irreducible R-list (Definitions 4–5): implementations sorted
// with strictly decreasing width and strictly increasing height, none
// dominating another. The first entry is the rightmost (widest, shortest)
// staircase corner, matching the paper's r_1 … r_n ordering.
//
// Construct RLists with NewRList; code elsewhere may assume the canonical
// order and irreducibility.
type RList []RImpl

// NewRList builds an irreducible R-list from arbitrary candidate
// implementations by discarding redundant (dominating) ones and sorting the
// survivors. Invalid candidates (non-positive extents) are rejected.
func NewRList(candidates []RImpl) (RList, error) {
	for _, c := range candidates {
		if !c.Valid() {
			return nil, fmt.Errorf("shape: invalid rectangular implementation %v", c)
		}
	}
	return newRListUnchecked(candidates), nil
}

// MustRList is NewRList for statically known inputs; it panics on error.
func MustRList(candidates []RImpl) RList {
	l, err := NewRList(candidates)
	if err != nil {
		panic(err)
	}
	return l
}

// newRListUnchecked prunes and sorts without validating extents. It is the
// hot path used by the combine package, whose candidates are valid by
// construction. One exact-size allocation: the sweep compacts survivors into
// the sorted copy in place instead of growing a second slice.
func newRListUnchecked(candidates []RImpl) RList {
	if len(candidates) == 0 {
		return nil
	}
	pts := make([]RImpl, len(candidates))
	copy(pts, candidates)
	return minimaRSorted(pts)
}

// MinimaRInPlace is R-list construction taking ownership of buf: it sorts
// and compacts buf, returning the canonical list as a prefix sharing buf's
// backing array. The combine stage uses it to prune arena-backed candidate
// buffers without copying them out.
func MinimaRInPlace(buf []RImpl) RList {
	if len(buf) == 0 {
		return nil
	}
	return minimaRSorted(buf)
}

// minimaRSorted prunes buf in place: sort by width ascending, height
// ascending; a left-to-right sweep then keeps exactly the minimal staircase
// (an implementation survives only if it is strictly shorter than everything
// narrower than it).
func minimaRSorted(buf []RImpl) RList {
	slices.SortFunc(buf, func(a, b RImpl) int {
		if a.W != b.W {
			return cmpInt64(a.W, b.W)
		}
		return cmpInt64(a.H, b.H)
	})
	kept := buf[:0]
	for _, p := range buf {
		if len(kept) > 0 && kept[len(kept)-1].W == p.W {
			// same width: the earlier (shorter) one dominates-from-above;
			// p is redundant (p.H >= previous H by sort order).
			continue
		}
		// Wider point p dominates any earlier point with H <= p.H; such an
		// earlier point makes p redundant. Earlier heights are strictly
		// decreasing, so only the last kept height matters.
		if len(kept) > 0 && kept[len(kept)-1].H <= p.H {
			continue
		}
		kept = append(kept, p)
	}
	// kept is sorted W ascending / H descending; the paper's R-list order is
	// W descending / H ascending.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return RList(kept)
}

// Validate checks the R-list invariants: all implementations valid, widths
// strictly decreasing, heights strictly increasing.
func (l RList) Validate() error {
	for i, r := range l {
		if !r.Valid() {
			return fmt.Errorf("shape: RList[%d] = %v invalid", i, r)
		}
		if i > 0 {
			prev := l[i-1]
			if r.W >= prev.W {
				return fmt.Errorf("shape: RList widths not strictly decreasing at %d: %v then %v", i, prev, r)
			}
			if r.H <= prev.H {
				return fmt.Errorf("shape: RList heights not strictly increasing at %d: %v then %v", i, prev, r)
			}
		}
	}
	return nil
}

// Best returns the minimum-area implementation and its index.
// It panics on an empty list.
func (l RList) Best() (RImpl, int) {
	if len(l) == 0 {
		panic("shape: Best of empty RList")
	}
	best, at := l[0], 0
	for i, r := range l[1:] {
		if r.Area() < best.Area() {
			best, at = r, i+1
		}
	}
	return best, at
}

// MinHeightFor returns the smallest height h such that (w, h) is feasible —
// on or above the staircase — and whether any implementation fits in width
// w at all. l must be canonical.
func (l RList) MinHeightFor(w int64) (int64, bool) {
	// Widths are strictly decreasing; find the first (widest) entry with
	// W <= w. Its height is minimal among all entries fitting width w.
	i := sort.Search(len(l), func(i int) bool { return l[i].W <= w })
	if i == len(l) {
		return 0, false
	}
	return l[i].H, true
}

// MinWidthFor is the transpose of MinHeightFor: the smallest feasible width
// under a height budget h.
func (l RList) MinWidthFor(h int64) (int64, bool) {
	// Heights are strictly increasing; the last entry with H <= h has the
	// smallest width among entries fitting height h.
	i := sort.Search(len(l), func(i int) bool { return l[i].H > h })
	if i == 0 {
		return 0, false
	}
	return l[i-1].W, true
}

// Clone returns a copy of l that shares no storage with it.
func (l RList) Clone() RList {
	if l == nil {
		return nil
	}
	out := make(RList, len(l))
	copy(out, l)
	return out
}

// Subset returns the R-list consisting of l's entries at the given sorted
// index list. Indices must be strictly increasing and in range; the result
// of selecting from a canonical list is canonical.
func (l RList) Subset(indices []int) (RList, error) {
	out := make(RList, 0, len(indices))
	prev := -1
	for _, idx := range indices {
		if idx <= prev || idx >= len(l) {
			return nil, fmt.Errorf("shape: bad subset index %d (prev %d, len %d)", idx, prev, len(l))
		}
		out = append(out, l[idx])
		prev = idx
	}
	return out, nil
}

// StaircaseArea returns the area bounded between the staircase of the full
// list and the staircase of a subset of it that shares the full list's
// endpoints — the paper's ERROR(R, R') (Section 4.2, Figure 6). indices must
// be strictly increasing, start at 0 and end at len(l)-1.
//
// This closed-form version exists independently of the selection package's
// O(n^2) dynamic program so that the two can be cross-checked in tests:
// between consecutive selected corners d_q < d_{q+1} the lost region is the
// union of strips (w_{d_q} - w_m)(h_{m+1} - h_m) for the skipped corners m.
func (l RList) StaircaseArea(indices []int) (int64, error) {
	if len(l) == 0 {
		return 0, nil
	}
	if len(indices) < 2 || indices[0] != 0 || indices[len(indices)-1] != len(l)-1 {
		return 0, fmt.Errorf("shape: subset must include both endpoints of the list")
	}
	var total int64
	for q := 0; q+1 < len(indices); q++ {
		i, j := indices[q], indices[q+1]
		if j <= i {
			return 0, fmt.Errorf("shape: subset indices not increasing: %d then %d", i, j)
		}
		for m := i + 1; m < j; m++ {
			total += (l[i].W - l[m].W) * (l[m+1].H - l[m].H)
		}
	}
	return total, nil
}

// Equal reports whether two R-lists contain the same implementations in the
// same order.
func (l RList) Equal(o RList) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}
