package shape

import "testing"

func TestRListClone(t *testing.T) {
	if got := RList(nil).Clone(); got != nil {
		t.Errorf("Clone(nil) = %v", got)
	}
	l := MustRList([]RImpl{{W: 5, H: 2}, {W: 3, H: 4}})
	c := l.Clone()
	if !c.Equal(l) {
		t.Fatal("clone differs")
	}
	c[0] = RImpl{W: 99, H: 99}
	if l[0].W == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestRListEqualBranches(t *testing.T) {
	a := MustRList([]RImpl{{W: 5, H: 2}, {W: 3, H: 4}})
	b := MustRList([]RImpl{{W: 5, H: 2}})
	if a.Equal(b) {
		t.Error("different lengths reported equal")
	}
	c := MustRList([]RImpl{{W: 5, H: 2}, {W: 2, H: 4}})
	if a.Equal(c) {
		t.Error("different contents reported equal")
	}
	if !a.Equal(a) {
		t.Error("self-equality failed")
	}
}

func TestStringers(t *testing.T) {
	if got := (RImpl{W: 3, H: 4}).String(); got != "(3,4)" {
		t.Errorf("RImpl.String = %s", got)
	}
	if got := (LImpl{W1: 5, W2: 3, H1: 4, H2: 2}).String(); got != "(5,3,4,2)" {
		t.Errorf("LImpl.String = %s", got)
	}
}
