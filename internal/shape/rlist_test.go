package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRListPrunesAndSorts(t *testing.T) {
	in := []RImpl{
		{3, 5}, {5, 3}, {4, 4}, // the staircase
		{5, 5},         // dominates everything
		{4, 5}, {5, 4}, // dominate a corner each
		{3, 5}, // duplicate
	}
	l, err := NewRList(in)
	if err != nil {
		t.Fatal(err)
	}
	want := RList{{5, 3}, {4, 4}, {3, 5}}
	if !l.Equal(want) {
		t.Fatalf("NewRList = %v, want %v", l, want)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRListRejectsInvalid(t *testing.T) {
	if _, err := NewRList([]RImpl{{0, 5}}); err == nil {
		t.Error("expected error for zero-width implementation")
	}
	if _, err := NewRList([]RImpl{{5, -1}}); err == nil {
		t.Error("expected error for negative-height implementation")
	}
}

func TestNewRListEmpty(t *testing.T) {
	l, err := NewRList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 0 {
		t.Errorf("expected empty list, got %v", l)
	}
}

func TestRListBest(t *testing.T) {
	l := MustRList([]RImpl{{10, 2}, {6, 3}, {4, 5}, {2, 12}})
	best, at := l.Best()
	if best != (RImpl{6, 3}) || at != 1 {
		t.Errorf("Best = %v at %d, want (6,3) at 1", best, at)
	}
}

func TestRListMinHeightFor(t *testing.T) {
	l := MustRList([]RImpl{{10, 2}, {6, 3}, {4, 5}})
	tests := []struct {
		w      int64
		wantH  int64
		wantOK bool
	}{
		{12, 2, true}, // room for the widest
		{10, 2, true},
		{9, 3, true}, // widest no longer fits
		{6, 3, true},
		{5, 5, true},
		{4, 5, true},
		{3, 0, false}, // nothing fits
	}
	for _, tc := range tests {
		h, ok := l.MinHeightFor(tc.w)
		if h != tc.wantH || ok != tc.wantOK {
			t.Errorf("MinHeightFor(%d) = (%d,%v), want (%d,%v)", tc.w, h, ok, tc.wantH, tc.wantOK)
		}
	}
}

func TestRListMinWidthFor(t *testing.T) {
	l := MustRList([]RImpl{{10, 2}, {6, 3}, {4, 5}})
	tests := []struct {
		h      int64
		wantW  int64
		wantOK bool
	}{
		{2, 10, true},
		{3, 6, true},
		{4, 6, true},
		{5, 4, true},
		{100, 4, true},
		{1, 0, false},
	}
	for _, tc := range tests {
		w, ok := l.MinWidthFor(tc.h)
		if w != tc.wantW || ok != tc.wantOK {
			t.Errorf("MinWidthFor(%d) = (%d,%v), want (%d,%v)", tc.h, w, ok, tc.wantW, tc.wantOK)
		}
	}
}

func TestRListSubset(t *testing.T) {
	l := MustRList([]RImpl{{10, 2}, {6, 3}, {4, 5}, {2, 12}})
	sub, err := l.Subset([]int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := RList{{10, 2}, {4, 5}, {2, 12}}
	if !sub.Equal(want) {
		t.Errorf("Subset = %v, want %v", sub, want)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subset of canonical list not canonical: %v", err)
	}
	if _, err := l.Subset([]int{0, 0}); err == nil {
		t.Error("expected error for repeated index")
	}
	if _, err := l.Subset([]int{0, 4}); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

// TestStaircaseAreaFigure6 reproduces the geometry of the paper's Figure 6:
// selecting R' = {r1, r3, r4, r6} from a 6-corner staircase loses exactly
// the two rectangles A1 (between r1 and r3, i.e. corner r2's strip) and A2
// (between r4 and r6, corner r5's strip).
func TestStaircaseAreaFigure6(t *testing.T) {
	l := MustRList([]RImpl{
		{12, 1}, {10, 2}, {8, 4}, {6, 6}, {4, 9}, {2, 11},
	})
	area, err := l.StaircaseArea([]int{0, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// A1: corner r2=(10,2) skipped between r1=(12,1) and r3=(8,4):
	//     (12-10)*(4-2) = 4.
	// A2: corner r5=(4,9) skipped between r4=(6,6) and r6=(2,11):
	//     (6-4)*(11-9) = 4.
	if area != 8 {
		t.Errorf("StaircaseArea = %d, want 8", area)
	}
}

func TestStaircaseAreaFullSelection(t *testing.T) {
	l := MustRList([]RImpl{{12, 1}, {10, 2}, {8, 4}, {6, 6}})
	area, err := l.StaircaseArea([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if area != 0 {
		t.Errorf("selecting everything should cost 0, got %d", area)
	}
}

func TestStaircaseAreaErrors(t *testing.T) {
	l := MustRList([]RImpl{{12, 1}, {10, 2}, {8, 4}})
	if _, err := l.StaircaseArea([]int{0, 1}); err == nil {
		t.Error("expected error when final endpoint missing")
	}
	if _, err := l.StaircaseArea([]int{1, 2}); err == nil {
		t.Error("expected error when first endpoint missing")
	}
}

// randomRImpls draws n implementations from a small grid so that duplicates
// and dominations are frequent.
func randomRImpls(rng *rand.Rand, n int) []RImpl {
	out := make([]RImpl, n)
	for i := range out {
		out[i] = RImpl{W: 1 + rng.Int63n(20), H: 1 + rng.Int63n(20)}
	}
	return out
}

func TestNewRListProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomRImpls(r, 1+r.Intn(60))
		l, err := NewRList(in)
		if err != nil {
			return false
		}
		if err := l.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Every kept element came from the input.
		inSet := make(map[RImpl]bool, len(in))
		for _, c := range in {
			inSet[c] = true
		}
		for _, k := range l {
			if !inSet[k] {
				t.Logf("kept %v not in input", k)
				return false
			}
		}
		// Minimality: every input element dominates (or equals) some kept
		// element, and no kept element dominates a different input element
		// that itself is kept.
		for _, c := range in {
			covered := false
			for _, k := range l {
				if c.Dominates(k) {
					covered = true
					break
				}
			}
			if !covered {
				t.Logf("input %v not covered by any kept element", c)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
