package shape

import (
	"math/rand"
	"testing"
)

// tieHeavyLImpls draws every coordinate from a tiny value set so exact
// duplicates, partial ties, and mutual-domination chains are all dense —
// the adversarial regime for the divide-and-conquer's equal-W1 degenerate
// branch and the Fenwick tie handling (prefixMin <= vs <).
func tieHeavyLImpls(rng *rand.Rand, n int, span int64) []LImpl {
	out := make([]LImpl, 0, n)
	for len(out) < n {
		w2 := 1 + rng.Int63n(span)
		h2 := 1 + rng.Int63n(span)
		out = append(out, LImpl{
			W1: w2 + rng.Int63n(span),
			W2: w2,
			H1: h2 + rng.Int63n(span),
			H2: h2,
		})
	}
	return out
}

// FuzzMinimaLAgainstBrute pins the Fenwick fast path to the quadratic
// oracle. The fuzz engine mutates the generator parameters rather than raw
// implementations so every input is valid by construction yet adversarially
// tie-heavy (span as low as 1 collapses the whole set onto a handful of
// points). `go test` runs the seed corpus, which is chosen to cross the
// brute-force cutoff in both directions.
func FuzzMinimaLAgainstBrute(f *testing.F) {
	f.Add(int64(1), uint16(8), uint8(1))
	f.Add(int64(2), uint16(64), uint8(2))
	f.Add(int64(3), uint16(200), uint8(3))  // > minima4SmallCutoff, dense ties
	f.Add(int64(4), uint16(500), uint8(1))  // deep recursion, one W1 value likely
	f.Add(int64(5), uint16(300), uint8(40)) // sparse: mostly antichain
	f.Add(int64(6), uint16(1000), uint8(5)) // large, several recursion levels
	f.Fuzz(func(t *testing.T, seed int64, n uint16, span uint8) {
		if n == 0 || n > 2000 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		in := tieHeavyLImpls(rng, int(n), int64(span)+1)
		fast := sortedCopy(MinimaL(in))
		slow := sortedCopy(MinimaLBrute(in))
		if !equalLSlices(fast, slow) {
			t.Fatalf("seed=%d n=%d span=%d: fast %d impls, brute %d", seed, n, span, len(fast), len(slow))
		}
		// The owning variant must agree element-for-element (it is the one
		// the combine arena path runs).
		buf := make([]LImpl, len(in))
		copy(buf, in)
		inPlace := MinimaLInPlace(buf)
		if !equalLSlices(inPlace, fast) {
			t.Fatalf("seed=%d: MinimaLInPlace diverged from MinimaL", seed)
		}
	})
}

// TestMinima4MatchesBrute drives the divide-and-conquer kernel directly
// against minima4Brute on the same sorted, deduplicated input — isolating
// the recursion + cross-half filter from MinimaL's dedup preamble.
func TestMinima4MatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		span := int64(1 + rng.Intn(6))
		in := tieHeavyLImpls(rng, minima4SmallCutoff+1+rng.Intn(400), span)
		sortLImpls(in)
		uniq := in[:0]
		for i, p := range in {
			if i == 0 || p != uniq[len(uniq)-1] {
				uniq = append(uniq, p)
			}
		}
		s := getPruneScratch()
		fastKeep := make([]bool, len(uniq))
		minima4(uniq, s.indexRun(len(uniq)), fastKeep, s)
		putPruneScratch(s)
		bruteKeep := make([]bool, len(uniq))
		idx := make([]int32, len(uniq))
		for i := range idx {
			idx[i] = int32(i)
		}
		minima4Brute(uniq, idx, bruteKeep)
		for i := range uniq {
			if fastKeep[i] != bruteKeep[i] {
				t.Fatalf("trial %d (span %d, n %d): keep[%d] fast=%v brute=%v for %v",
					trial, span, len(uniq), i, fastKeep[i], bruteKeep[i], uniq[i])
			}
		}
	}
}

// TestMinimaRInPlaceMatches pins the owning R variant to the copying one.
func TestMinimaRInPlaceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		in := randomRImpls(rng, 1+rng.Intn(200))
		want := MinimaR(in)
		buf := make([]RImpl, len(in))
		copy(buf, in)
		got := MinimaRInPlace(buf)
		if !RList(got).Equal(RList(want)) {
			t.Fatalf("trial %d: in-place %v, copying %v", trial, got, want)
		}
	}
}

// TestLSetFromMinimalMatches pins the no-reprune LSet constructor to the
// full MustLSet path.
func TestLSetFromMinimalMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		in := tieHeavyLImpls(rng, 1+rng.Intn(300), int64(1+rng.Intn(8)))
		want := MustLSet(in)
		got := LSetFromMinimal(MinimaL(in))
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got.Lists) != len(want.Lists) {
			t.Fatalf("trial %d: %d lists vs %d", trial, len(got.Lists), len(want.Lists))
		}
		for i := range got.Lists {
			if !equalLSlices(got.Lists[i], want.Lists[i]) {
				t.Fatalf("trial %d: list %d differs", trial, i)
			}
		}
	}
}
