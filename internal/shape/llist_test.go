package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLListValidate(t *testing.T) {
	good := LList{
		{W1: 10, W2: 4, H1: 3, H2: 1},
		{W1: 8, W2: 4, H1: 4, H2: 2},
		{W1: 6, W2: 4, H1: 6, H2: 5},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LList{
		{{10, 4, 3, 1}, {8, 5, 4, 2}},  // W2 changes
		{{8, 4, 3, 1}, {10, 4, 4, 2}},  // W1 increases
		{{10, 4, 5, 1}, {8, 4, 4, 2}},  // H1 decreases
		{{10, 4, 3, 3}, {8, 4, 4, 2}},  // H2 decreases
		{{10, 4, 3, 1}, {10, 4, 4, 2}}, // second dominates first
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad list %d passed validation: %v", i, l)
		}
	}
}

func TestLListSubset(t *testing.T) {
	l := LList{
		{W1: 10, W2: 4, H1: 3, H2: 1},
		{W1: 8, W2: 4, H1: 4, H2: 2},
		{W1: 6, W2: 4, H1: 6, H2: 5},
		{W1: 5, W2: 4, H1: 8, H2: 7},
	}
	sub, err := l.Subset([]int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 3 || sub[1] != l[2] {
		t.Fatalf("Subset = %v", sub)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subset not canonical: %v", err)
	}
	if _, err := l.Subset([]int{2, 1}); err == nil {
		t.Error("expected error for decreasing indices")
	}
}

func TestNewLSetBasic(t *testing.T) {
	set, err := NewLSet([]LImpl{
		{W1: 10, W2: 4, H1: 3, H2: 1},
		{W1: 8, W2: 4, H1: 4, H2: 2},
		{W1: 10, W2: 4, H1: 4, H2: 2}, // dominates the second
		{W1: 9, W2: 5, H1: 3, H2: 1},  // different W2 group
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Size() != 3 {
		t.Fatalf("Size = %d, want 3", set.Size())
	}
}

func TestNewLSetRejectsInvalid(t *testing.T) {
	if _, err := NewLSet([]LImpl{{W1: 3, W2: 4, H1: 5, H2: 2}}); err == nil {
		t.Error("expected error for W1 < W2")
	}
}

func TestNewLSetChainPartition(t *testing.T) {
	// An antichain within one W2 group where H1 and H2 move in opposite
	// directions as W1 falls; the greedy partition must split it.
	in := []LImpl{
		{W1: 10, W2: 4, H1: 5, H2: 1},
		{W1: 9, W2: 4, H1: 6, H2: 3}, // chains with the first
		{W1: 8, W2: 4, H1: 7, H2: 2}, // H2 drops vs previous: new chain
	}
	set := MustLSet(in)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Size() != 3 {
		t.Fatalf("Size = %d, want 3", set.Size())
	}
	if len(set.Lists) < 2 {
		t.Fatalf("expected at least 2 chains, got %d", len(set.Lists))
	}
}

func TestLSetAllAndBestRect(t *testing.T) {
	set := MustLSet([]LImpl{
		{W1: 10, W2: 4, H1: 3, H2: 1},
		{W1: 5, W2: 5, H1: 4, H2: 4}, // a 5x4 rectangle, area 20
	})
	if got := len(set.All()); got != set.Size() {
		t.Fatalf("All returned %d, Size %d", got, set.Size())
	}
	best, ok := set.BestRect()
	if !ok || best.Area() != 20 {
		t.Fatalf("BestRect = %v, %v", best, ok)
	}
	var empty LSet
	if _, ok := empty.BestRect(); ok {
		t.Error("BestRect on empty set should report false")
	}
}

func TestNewLSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomLImpls(r, 1+r.Intn(150), int64(3+r.Intn(10)))
		set, err := NewLSet(in)
		if err != nil {
			return false
		}
		if err := set.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// The set must hold exactly the Pareto minima of the input.
		want := sortedCopy(MinimaLBrute(in))
		got := sortedCopy(set.All())
		if !equalLSlices(got, want) {
			t.Logf("content mismatch: got %d, want %d", len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionChainsCoversInput(t *testing.T) {
	group := []LImpl{
		{W1: 10, W2: 4, H1: 2, H2: 1},
		{W1: 9, W2: 4, H1: 6, H2: 5},
		{W1: 8, W2: 4, H1: 3, H2: 2},
		{W1: 7, W2: 4, H1: 7, H2: 6},
		{W1: 6, W2: 4, H1: 4, H2: 3},
	}
	lists := partitionChains(group)
	total := 0
	for _, l := range lists {
		total += len(l)
		if err := l.Validate(); err != nil {
			t.Fatalf("chain %v invalid: %v", l, err)
		}
	}
	if total != len(group) {
		t.Fatalf("chains cover %d of %d points", total, len(group))
	}
}
