package shape

import (
	"encoding/binary"
	"testing"
)

// decodeImpls turns fuzz bytes into a list of small positive candidates.
func decodeImpls(data []byte) []RImpl {
	var out []RImpl
	for i := 0; i+4 <= len(data); i += 4 {
		w := int64(binary.LittleEndian.Uint16(data[i:])%512) + 1
		h := int64(binary.LittleEndian.Uint16(data[i+2:])%512) + 1
		out = append(out, RImpl{W: w, H: h})
	}
	return out
}

// FuzzNewRList checks the pruner's invariants on arbitrary candidate sets.
func FuzzNewRList(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 3, 0, 4, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := decodeImpls(data)
		l, err := NewRList(in)
		if err != nil {
			t.Fatalf("positive candidates rejected: %v", err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("non-canonical output: %v", err)
		}
		// Coverage: every input dominates some survivor.
		for _, c := range in {
			ok := false
			for _, k := range l {
				if c.Dominates(k) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("input %v not covered", c)
			}
		}
	})
}

func decodeLImpls(data []byte) []LImpl {
	var out []LImpl
	for i := 0; i+8 <= len(data); i += 8 {
		w2 := int64(binary.LittleEndian.Uint16(data[i:])%256) + 1
		dw := int64(binary.LittleEndian.Uint16(data[i+2:]) % 256)
		h2 := int64(binary.LittleEndian.Uint16(data[i+4:])%256) + 1
		dh := int64(binary.LittleEndian.Uint16(data[i+6:]) % 256)
		out = append(out, LImpl{W1: w2 + dw, W2: w2, H1: h2 + dh, H2: h2})
	}
	return out
}

// FuzzNewLSet checks L-set construction invariants on arbitrary candidates.
func FuzzNewLSet(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{9, 0, 0, 0, 9, 0, 0, 0, 5, 0, 3, 0, 5, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256] // keep Validate's quadratic check cheap
		}
		in := decodeLImpls(data)
		set, err := NewLSet(in)
		if err != nil {
			t.Fatalf("valid candidates rejected: %v", err)
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("invalid set produced: %v", err)
		}
		if want := len(MinimaL(in)); set.Size() != want {
			t.Fatalf("set holds %d, minima %d", set.Size(), want)
		}
	})
}
