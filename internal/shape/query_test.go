package shape

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStaircaseQueriesMatchLinearScan checks MinHeightFor/MinWidthFor, the
// binary searches traceback depends on, against a straightforward scan.
func TestStaircaseQueriesMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := newRListUnchecked(randomRImpls(r, 1+r.Intn(40)))
		if len(l) == 0 {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			w := 1 + r.Int63n(25)
			wantH, wantOK := int64(0), false
			for _, e := range l {
				if e.W <= w && (!wantOK || e.H < wantH) {
					wantH, wantOK = e.H, true
				}
			}
			h, ok := l.MinHeightFor(w)
			if h != wantH || ok != wantOK {
				t.Logf("MinHeightFor(%d) = (%d,%v), scan (%d,%v), list %v", w, h, ok, wantH, wantOK, l)
				return false
			}
			hq := 1 + r.Int63n(25)
			wantW, wantOK2 := int64(0), false
			for _, e := range l {
				if e.H <= hq && (!wantOK2 || e.W < wantW) {
					wantW, wantOK2 = e.W, true
				}
			}
			wv, ok2 := l.MinWidthFor(hq)
			if wv != wantW || ok2 != wantOK2 {
				t.Logf("MinWidthFor(%d) = (%d,%v), scan (%d,%v)", hq, wv, ok2, wantW, wantOK2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestFeasibilityDuality: (w, MinHeightFor(w)) is itself feasible and on
// the staircase boundary — reducing the height by one must break
// feasibility of width w.
func TestFeasibilityDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	for trial := 0; trial < 80; trial++ {
		l := newRListUnchecked(randomRImpls(rng, 1+rng.Intn(30)))
		if len(l) == 0 {
			continue
		}
		w := 1 + rng.Int63n(25)
		h, ok := l.MinHeightFor(w)
		if !ok {
			continue
		}
		// Feasible: some implementation fits in (w, h).
		wBack, ok2 := l.MinWidthFor(h)
		if !ok2 || wBack > w {
			t.Fatalf("(%d,%d) claimed feasible but MinWidthFor(%d) = (%d,%v)", w, h, h, wBack, ok2)
		}
		// Tight: (w, h-1) must not be feasible.
		if h > 1 {
			if wb, ok3 := l.MinWidthFor(h - 1); ok3 && wb <= w {
				t.Fatalf("(%d,%d) not tight: (%d,%d) also feasible", w, h, w, h-1)
			}
		}
	}
}
