package shape

import "slices"

// This file implements Pareto-minima pruning: from a candidate set, keep
// exactly the implementations not dominated by (componentwise >=) another.
// The optimizer calls this on every combine step, and unpruned candidate
// sets at high tree levels reach 10^5 entries, so the 3-d and 4-d cases use
// the classic divide-and-conquer of Kung/Luccio/Preparata with a Fenwick
// prefix-min sweep for the cross-half filter, giving O(n log^2 n) instead of
// the quadratic pairwise scan (which remains as the test oracle).
//
// The kernels are written against the structure-of-arrays scratch in soa.go:
// the sweeps sort (key, index) pairs and rank plain int64 columns with
// slices.SortFunc / slices.Sort — direct comparisons, no reflection — and
// every intermediate buffer comes from a pooled pruneScratch, so a prune is
// allocation-free in steady state.

// minFenwick is a Fenwick tree over 1-based ranks supporting prefix minima.
// Values only ever decrease, which is all the dominance sweep needs. The
// backing storage comes from the caller's pruneScratch.
type minFenwick struct {
	tree []int64
}

const fenwickInf = int64(1) << 62

// update lowers the value at rank i (1-based) to at most v.
func (f *minFenwick) update(i int, v int64) {
	for ; i < len(f.tree); i += i & (-i) {
		if v < f.tree[i] {
			f.tree[i] = v
		}
	}
}

// prefixMin returns the minimum value over ranks 1..i.
func (f *minFenwick) prefixMin(i int) int64 {
	m := fenwickInf
	for ; i > 0; i -= i & (-i) {
		if f.tree[i] < m {
			m = f.tree[i]
		}
	}
	return m
}

// point3 is a point in the 3-dimensional dominance order with a tag
// carrying it back to the caller's slice.
type point3 struct {
	a, b, c int64
	idx     int32
}

func cmpPoint3(p, q point3) int {
	switch {
	case p.a != q.a:
		return cmpInt64(p.a, q.a)
	case p.b != q.b:
		return cmpInt64(p.b, q.b)
	case p.c != q.c:
		return cmpInt64(p.c, q.c)
	default:
		return int(p.idx) - int(q.idx)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpKeyIdx(a, b keyIdx) int {
	if a.key != b.key {
		return cmpInt64(a.key, b.key)
	}
	return int(a.idx) - int(b.idx)
}

// minima3 marks, in keep, the indices of the Pareto-minimal points: those
// with no other point <= them componentwise (exact duplicates keep their
// first occurrence). pts may be in any order and is reordered in place.
func minima3(pts []point3, keep []bool, s *pruneScratch) {
	slices.SortFunc(pts, cmpPoint3)
	// Rank the b coordinates over the distinct values present.
	vals := s.valRun(len(pts))
	for _, p := range pts {
		vals = append(vals, p.b)
	}
	slices.Sort(vals)
	uniq := dedupSorted(vals)
	fw := minFenwick{tree: s.fenwickRun(len(uniq))}
	for _, p := range pts {
		r := rankOf(uniq, p.b)
		// Every point inserted so far sorts lexicographically before p, so
		// it has a <= p.a (ties broken consistently); p is redundant iff one
		// of them also has b <= p.b and c <= p.c.
		if fw.prefixMin(r) <= p.c {
			continue
		}
		keep[p.idx] = true
		fw.update(r, p.c)
	}
}

// MinimaR returns the Pareto-minimal subset of 2-d rectangular candidates.
// It is a thin wrapper over R-list construction, provided for symmetry.
func MinimaR(candidates []RImpl) []RImpl {
	return []RImpl(newRListUnchecked(candidates))
}

// MinimaL returns the Pareto-minimal subset of 4-d L-shaped candidates,
// deduplicated, in lexicographic order. Candidates are not modified.
func MinimaL(candidates []LImpl) []LImpl {
	if len(candidates) == 0 {
		return nil
	}
	s := getPruneScratch()
	if cap(s.impls) < len(candidates) {
		s.impls = make([]LImpl, len(candidates))
	}
	buf := s.impls[:len(candidates)]
	copy(buf, candidates)
	minimal := minimaLSorted(buf, s)
	out := make([]LImpl, len(minimal))
	copy(out, minimal)
	putPruneScratch(s)
	return out
}

// MinimaLInPlace is MinimaL taking ownership of buf: it sorts and compacts
// buf, returning the minimal, deduplicated, lexicographically ordered prefix
// (sharing buf's backing array). The combine stage uses it to prune its
// arena-backed candidate buffers without copying them out.
func MinimaLInPlace(buf []LImpl) []LImpl {
	if len(buf) == 0 {
		return buf[:0]
	}
	s := getPruneScratch()
	out := minimaLSorted(buf, s)
	putPruneScratch(s)
	return out
}

// minimaLSorted sorts buf lexicographically, deduplicates it, prunes
// dominated entries, and compacts the survivors into buf's prefix, which it
// returns.
func minimaLSorted(buf []LImpl, s *pruneScratch) []LImpl {
	sortLImpls(buf)
	// Deduplicate exact copies so mutual domination cannot erase both.
	uniq := buf[:0]
	for i, p := range buf {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	keep := s.boolRun(len(uniq))
	minima4(uniq, s.indexRun(len(uniq)), keep, s)
	out := uniq[:0]
	for i, p := range uniq {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}

func cmpLImpl(p, q LImpl) int {
	switch {
	case p.W1 != q.W1:
		return cmpInt64(p.W1, q.W1)
	case p.W2 != q.W2:
		return cmpInt64(p.W2, q.W2)
	case p.H1 != q.H1:
		return cmpInt64(p.H1, q.H1)
	default:
		return cmpInt64(p.H2, q.H2)
	}
}

func sortLImpls(pts []LImpl) {
	slices.SortFunc(pts, cmpLImpl)
}

// minima4SmallCutoff is the subproblem size below which the quadratic scan
// beats the divide-and-conquer bookkeeping. The brute kernel deliberately
// stays on the array-of-structs layout: it compares all four coordinates of
// element pairs, the one access pattern AoS serves better than columns.
const minima4SmallCutoff = 48

// minima4 marks the Pareto-minimal points among all[i] for i in idx.
// all must be sorted lexicographically with no duplicates; idx is a sorted
// (hence W1-nondecreasing) index subset.
func minima4(all []LImpl, idx []int32, keep []bool, s *pruneScratch) {
	if len(idx) == 0 {
		return
	}
	if len(idx) <= minima4SmallCutoff {
		minima4Brute(all, idx, keep)
		return
	}
	// Split on W1 so every low point has W1 <= every high point and equal
	// W1 values stay together.
	midVal := all[idx[len(idx)/2]].W1
	if all[idx[0]].W1 == all[idx[len(idx)-1]].W1 {
		// One W1 value: dominance degenerates to 3-d on (W2, H1, H2).
		pts := s.ptsRun(len(idx))
		for _, id := range idx {
			p := all[id]
			pts = append(pts, point3{a: p.W2, b: p.H1, c: p.H2, idx: id})
		}
		minima3(pts, keep, s)
		return
	}
	split := searchW1(all, idx, midVal, false)
	if split == len(idx) {
		// midVal is the maximum W1; split just below it instead.
		split = searchW1(all, idx, midVal, true)
	}
	lo, hi := idx[:split], idx[split:]
	minima4(all, lo, keep, s)
	minima4(all, hi, keep, s)
	// A high survivor is still redundant if some low survivor is <= it in
	// the remaining three dimensions (its W1 is <= automatically). Collect
	// the survivors as (W2, index) sort pairs for the cross-half filter.
	pairs := s.pairRun(len(idx))
	for _, id := range lo {
		if keep[id] {
			pairs = append(pairs, keyIdx{key: all[id].W2, idx: id})
		}
	}
	nLo := len(pairs)
	for _, id := range hi {
		if keep[id] {
			pairs = append(pairs, keyIdx{key: all[id].W2, idx: id})
		}
	}
	filterDominated3(all, pairs[:nLo], pairs[nLo:], keep, s)
}

// searchW1 returns the first position i in idx with all[idx[i]].W1 > v
// (orEq false) or >= v (orEq true).
func searchW1(all []LImpl, idx []int32, v int64, orEq bool) int {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		w := all[idx[mid]].W1
		if w > v || (orEq && w == v) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// minima4Brute is the quadratic reference used for small subproblems.
func minima4Brute(all []LImpl, idx []int32, keep []bool) {
	for i, id := range idx {
		p := all[id]
		redundant := false
		for j, jd := range idx {
			if i == j {
				continue
			}
			if p.Dominates(all[jd]) {
				redundant = true
				break
			}
		}
		if !redundant {
			keep[id] = true
		}
	}
}

// filterDominated3 clears keep for high points dominated in (W2, H1, H2) by
// some low point. Low points all have W1 <= every high point's W1. lo and hi
// carry each point's W2 as the sort key and are reordered in place.
func filterDominated3(all []LImpl, lo, hi []keyIdx, keep []bool, s *pruneScratch) {
	if len(lo) == 0 || len(hi) == 0 {
		return
	}
	slices.SortFunc(lo, cmpKeyIdx)
	slices.SortFunc(hi, cmpKeyIdx)

	// Rank H1 values across both sets.
	vals := s.valRun(len(lo) + len(hi))
	for _, p := range lo {
		vals = append(vals, all[p.idx].H1)
	}
	for _, p := range hi {
		vals = append(vals, all[p.idx].H1)
	}
	slices.Sort(vals)
	uniq := dedupSorted(vals)

	fw := minFenwick{tree: s.fenwickRun(len(uniq))}
	li := 0
	for _, hp := range hi {
		h := all[hp.idx]
		for li < len(lo) && lo[li].key <= hp.key {
			p := all[lo[li].idx]
			fw.update(rankOf(uniq, p.H1), p.H2)
			li++
		}
		if fw.prefixMin(rankOf(uniq, h.H1)) <= h.H2 {
			keep[hp.idx] = false
		}
	}
}

// MinimaLBrute is the quadratic oracle for MinimaL, exported for tests and
// benchmarks only.
func MinimaLBrute(candidates []LImpl) []LImpl {
	if len(candidates) == 0 {
		return nil
	}
	pts := make([]LImpl, len(candidates))
	copy(pts, candidates)
	sortLImpls(pts)
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	out := make([]LImpl, 0, len(uniq))
	for i, p := range uniq {
		redundant := false
		for j, q := range uniq {
			if i != j && p.Dominates(q) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, p)
		}
	}
	return out
}
