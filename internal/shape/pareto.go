package shape

import "sort"

// This file implements Pareto-minima pruning: from a candidate set, keep
// exactly the implementations not dominated by (componentwise >=) another.
// The optimizer calls this on every combine step, and unpruned candidate
// sets at high tree levels reach 10^5 entries, so the 3-d and 4-d cases use
// the classic divide-and-conquer of Kung/Luccio/Preparata with a Fenwick
// prefix-min sweep for the cross-half filter, giving O(n log^2 n) instead of
// the quadratic pairwise scan (which remains as the test oracle).

// minFenwick is a Fenwick tree over 1-based ranks supporting prefix minima.
// Values only ever decrease, which is all the dominance sweep needs.
type minFenwick struct {
	tree []int64
}

const fenwickInf = int64(1) << 62

func newMinFenwick(n int) *minFenwick {
	t := make([]int64, n+1)
	for i := range t {
		t[i] = fenwickInf
	}
	return &minFenwick{tree: t}
}

// update lowers the value at rank i (1-based) to at most v.
func (f *minFenwick) update(i int, v int64) {
	for ; i < len(f.tree); i += i & (-i) {
		if v < f.tree[i] {
			f.tree[i] = v
		}
	}
}

// prefixMin returns the minimum value over ranks 1..i.
func (f *minFenwick) prefixMin(i int) int64 {
	m := fenwickInf
	for ; i > 0; i -= i & (-i) {
		if f.tree[i] < m {
			m = f.tree[i]
		}
	}
	return m
}

// point3 is a point in the 3-dimensional dominance order with a tag
// carrying it back to the caller's slice.
type point3 struct {
	a, b, c int64
	idx     int
}

// minima3 marks, in keep, the indices of the Pareto-minimal points: those
// with no other point <= them componentwise (exact duplicates keep their
// first occurrence). pts may be in any order and is reordered in place.
func minima3(pts []point3, keep []bool) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].a != pts[j].a {
			return pts[i].a < pts[j].a
		}
		if pts[i].b != pts[j].b {
			return pts[i].b < pts[j].b
		}
		if pts[i].c != pts[j].c {
			return pts[i].c < pts[j].c
		}
		return pts[i].idx < pts[j].idx
	})
	ranks := rankOfB3(pts)
	fw := newMinFenwick(len(ranks))
	for i, p := range pts {
		r := ranks[i]
		// Every point inserted so far sorts lexicographically before p, so
		// it has a <= p.a (ties broken consistently); p is redundant iff one
		// of them also has b <= p.b and c <= p.c.
		if fw.prefixMin(r) <= p.c {
			continue
		}
		keep[p.idx] = true
		fw.update(r, p.c)
	}
}

// rankOfB3 returns, for each point, the 1-based rank of its b coordinate
// among the distinct b values present.
func rankOfB3(pts []point3) []int {
	bs := make([]int64, len(pts))
	for i, p := range pts {
		bs[i] = p.b
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	ranks := make([]int, len(pts))
	for i, p := range pts {
		ranks[i] = sort.Search(len(uniq), func(k int) bool { return uniq[k] >= p.b }) + 1
	}
	return ranks
}

// MinimaR returns the Pareto-minimal subset of 2-d rectangular candidates.
// It is a thin wrapper over R-list construction, provided for symmetry.
func MinimaR(candidates []RImpl) []RImpl {
	return []RImpl(newRListUnchecked(candidates))
}

// MinimaL returns the Pareto-minimal subset of 4-d L-shaped candidates,
// deduplicated, in lexicographic order. Candidates are not modified.
func MinimaL(candidates []LImpl) []LImpl {
	if len(candidates) == 0 {
		return nil
	}
	pts := make([]LImpl, len(candidates))
	copy(pts, candidates)
	sortLImpls(pts)
	// Deduplicate exact copies so mutual domination cannot erase both.
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	keep := make([]bool, len(uniq))
	minima4(uniq, indexRange(len(uniq)), keep)
	out := make([]LImpl, 0, len(uniq))
	for i, p := range uniq {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}

func sortLImpls(pts []LImpl) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].W1 != pts[j].W1 {
			return pts[i].W1 < pts[j].W1
		}
		if pts[i].W2 != pts[j].W2 {
			return pts[i].W2 < pts[j].W2
		}
		if pts[i].H1 != pts[j].H1 {
			return pts[i].H1 < pts[j].H1
		}
		return pts[i].H2 < pts[j].H2
	})
}

func indexRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// minima4SmallCutoff is the subproblem size below which the quadratic scan
// beats the divide-and-conquer bookkeeping.
const minima4SmallCutoff = 48

// minima4 marks the Pareto-minimal points among all[i] for i in idx.
// all must be sorted lexicographically with no duplicates; idx is a sorted
// (hence W1-nondecreasing) index subset.
func minima4(all []LImpl, idx []int, keep []bool) {
	if len(idx) == 0 {
		return
	}
	if len(idx) <= minima4SmallCutoff {
		minima4Brute(all, idx, keep)
		return
	}
	// Split on W1 so every low point has W1 <= every high point and equal
	// W1 values stay together.
	midVal := all[idx[len(idx)/2]].W1
	if all[idx[0]].W1 == all[idx[len(idx)-1]].W1 {
		// One W1 value: dominance degenerates to 3-d on (W2, H1, H2).
		pts := make([]point3, len(idx))
		for i, id := range idx {
			p := all[id]
			pts[i] = point3{a: p.W2, b: p.H1, c: p.H2, idx: id}
		}
		minima3(pts, keep)
		return
	}
	split := sort.Search(len(idx), func(i int) bool { return all[idx[i]].W1 > midVal })
	if split == len(idx) {
		// midVal is the maximum W1; split just below it instead.
		split = sort.Search(len(idx), func(i int) bool { return all[idx[i]].W1 >= midVal })
	}
	lo, hi := idx[:split], idx[split:]
	minima4(all, lo, keep)
	minima4(all, hi, keep)
	// A high survivor is still redundant if some low survivor is <= it in
	// the remaining three dimensions (its W1 is <= automatically).
	var loKept, hiKept []int
	for _, id := range lo {
		if keep[id] {
			loKept = append(loKept, id)
		}
	}
	for _, id := range hi {
		if keep[id] {
			hiKept = append(hiKept, id)
		}
	}
	filterDominated3(all, loKept, hiKept, keep)
}

// minima4Brute is the quadratic reference used for small subproblems.
func minima4Brute(all []LImpl, idx []int, keep []bool) {
	for i, id := range idx {
		p := all[id]
		redundant := false
		for j, jd := range idx {
			if i == j {
				continue
			}
			if p.Dominates(all[jd]) {
				redundant = true
				break
			}
		}
		if !redundant {
			keep[id] = true
		}
	}
}

// filterDominated3 clears keep for high points dominated in (W2, H1, H2) by
// some low point. Low points all have W1 <= every high point's W1.
func filterDominated3(all []LImpl, lo, hi []int, keep []bool) {
	if len(lo) == 0 || len(hi) == 0 {
		return
	}
	loSorted := make([]int, len(lo))
	copy(loSorted, lo)
	sort.Slice(loSorted, func(i, j int) bool { return all[loSorted[i]].W2 < all[loSorted[j]].W2 })
	hiSorted := make([]int, len(hi))
	copy(hiSorted, hi)
	sort.Slice(hiSorted, func(i, j int) bool { return all[hiSorted[i]].W2 < all[hiSorted[j]].W2 })

	// Rank H1 values across both sets.
	h1s := make([]int64, 0, len(lo)+len(hi))
	for _, id := range lo {
		h1s = append(h1s, all[id].H1)
	}
	for _, id := range hi {
		h1s = append(h1s, all[id].H1)
	}
	sort.Slice(h1s, func(i, j int) bool { return h1s[i] < h1s[j] })
	uniq := h1s[:0]
	for i, v := range h1s {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	rank := func(v int64) int {
		return sort.Search(len(uniq), func(k int) bool { return uniq[k] >= v }) + 1
	}

	fw := newMinFenwick(len(uniq))
	li := 0
	for _, hid := range hiSorted {
		h := all[hid]
		for li < len(loSorted) && all[loSorted[li]].W2 <= h.W2 {
			p := all[loSorted[li]]
			fw.update(rank(p.H1), p.H2)
			li++
		}
		if fw.prefixMin(rank(h.H1)) <= h.H2 {
			keep[hid] = false
		}
	}
}

// MinimaLBrute is the quadratic oracle for MinimaL, exported for tests and
// benchmarks only.
func MinimaLBrute(candidates []LImpl) []LImpl {
	if len(candidates) == 0 {
		return nil
	}
	pts := make([]LImpl, len(candidates))
	copy(pts, candidates)
	sortLImpls(pts)
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	out := make([]LImpl, 0, len(uniq))
	for i, p := range uniq {
		redundant := false
		for j, q := range uniq {
			if i != j && p.Dominates(q) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, p)
		}
	}
	return out
}
