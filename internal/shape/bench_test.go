package shape

import (
	"math/rand"
	"testing"
)

// benchRCandidates builds n unsorted rectangular candidates with heavy
// duplication — the raw output shape of a combine cross product.
func benchRCandidates(rng *rand.Rand, n int) []RImpl {
	out := make([]RImpl, n)
	for i := range out {
		out[i] = RImpl{W: 1 + rng.Int63n(int64(n)/2+1), H: 1 + rng.Int63n(int64(n)/2+1)}
	}
	return out
}

// benchLCandidates builds n unsorted L-shaped candidates spread over a few
// W2 groups, the raw output shape of an L-block cross product.
func benchLCandidates(rng *rand.Rand, n int) []LImpl {
	out := make([]LImpl, n)
	for i := range out {
		w2 := 1 + rng.Int63n(8)
		w1 := w2 + rng.Int63n(int64(n)/4+1)
		h2 := 1 + rng.Int63n(int64(n)/4+1)
		h1 := h2 + rng.Int63n(int64(n)/4+1)
		out[i] = LImpl{W1: w1, W2: w2, H1: h1, H2: h2}
	}
	return out
}

// BenchmarkMinimaR measures rectangular dominance pruning end to end:
// sort, dedup, Pareto sweep, canonical reversal.
func BenchmarkMinimaR(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cand := benchRCandidates(rng, 1<<16)
	buf := make([]RImpl, len(cand))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, cand)
		if got := MinimaRInPlace(buf); len(got) == 0 {
			b.Fatal("empty minima")
		}
	}
}

// BenchmarkMinimaL measures 4-coordinate dominance pruning — the
// divide-and-conquer Kung–Luccio–Preparata kernel with the Fenwick
// cross-half filter.
func BenchmarkMinimaL(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	cand := benchLCandidates(rng, 1<<13)
	buf := make([]LImpl, len(cand))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, cand)
		if got := MinimaLInPlace(buf); len(got) == 0 {
			b.Fatal("empty minima")
		}
	}
}
