package shape

import (
	"fmt"
	"slices"
)

// LList is an irreducible L-list (Definitions 3 and 5): implementations with
// a common top-edge width W2, ordered with W1 nonincreasing and H1, H2
// nondecreasing, none dominating another. L_Selection operates on exactly
// this structure — the monotone order is what makes Lemma 2 (and hence the
// neighbour formula of Lemma 3) hold.
type LList []LImpl

// Validate checks the L-list invariants.
func (l LList) Validate() error {
	for i, li := range l {
		if !li.Valid() {
			return fmt.Errorf("shape: LList[%d] = %v invalid", i, li)
		}
		if i == 0 {
			continue
		}
		prev := l[i-1]
		switch {
		case li.W2 != prev.W2:
			return fmt.Errorf("shape: LList W2 not constant at %d: %v then %v", i, prev, li)
		case li.W1 > prev.W1:
			return fmt.Errorf("shape: LList W1 increases at %d: %v then %v", i, prev, li)
		case li.H1 < prev.H1:
			return fmt.Errorf("shape: LList H1 decreases at %d: %v then %v", i, prev, li)
		case li.H2 < prev.H2:
			return fmt.Errorf("shape: LList H2 decreases at %d: %v then %v", i, prev, li)
		case prev.Dominates(li) || li.Dominates(prev):
			return fmt.Errorf("shape: LList not irreducible at %d: %v vs %v", i, prev, li)
		}
	}
	return nil
}

// Subset returns the entries at the given strictly increasing indices; a
// subset of a canonical L-list is canonical.
func (l LList) Subset(indices []int) (LList, error) {
	out := make(LList, 0, len(indices))
	prev := -1
	for _, idx := range indices {
		if idx <= prev || idx >= len(l) {
			return nil, fmt.Errorf("shape: bad subset index %d (prev %d, len %d)", idx, prev, len(l))
		}
		out = append(out, l[idx])
		prev = idx
	}
	return out, nil
}

// LSet stores all non-redundant implementations of an L-shaped block as a
// set of irreducible L-lists, the representation [9] uses and the paper's
// L_Selection consumes. Lists are ordered by (W2, first W1) for determinism.
type LSet struct {
	Lists []LList
}

// NewLSet prunes the candidates to their Pareto-minimal subset and partitions
// the survivors into irreducible L-lists.
//
// Within one W2 group the survivors form a 3-d antichain, which in general
// does not fit in a single monotone list; the group is split greedily into
// maximal monotone chains (repeated greedy passes over the points in
// (W1 desc, H1 asc, H2 asc) order). Any such partition is a valid "set of
// irreducible L-lists" in the paper's sense.
func NewLSet(candidates []LImpl) (LSet, error) {
	for _, c := range candidates {
		if !c.Valid() {
			return LSet{}, fmt.Errorf("shape: invalid L implementation %v", c)
		}
	}
	return newLSetUnchecked(candidates), nil
}

// MustLSet is NewLSet for statically known inputs; it panics on error.
func MustLSet(candidates []LImpl) LSet {
	s, err := NewLSet(candidates)
	if err != nil {
		panic(err)
	}
	return s
}

func newLSetUnchecked(candidates []LImpl) LSet {
	return lsetFromOwned(MinimaL(candidates))
}

// LSetFromMinimal partitions an already Pareto-minimal, deduplicated
// candidate set (as produced by MinimaL or MinimaLInPlace) into irreducible
// L-lists without re-pruning it. The input is reordered in place and
// overwritten as scratch; the result does not retain it. The combine stage
// uses this on its arena-backed buffers so the re-prune inside MustLSet —
// and the copy out of the arena — both disappear from the hot path.
func LSetFromMinimal(minimal []LImpl) LSet {
	return lsetFromOwned(minimal)
}

// cmpLGroup orders implementations by (W2, W1 desc, H1, H2): W2 groups stay
// contiguous and each group is in the greedy chain-partition order.
func cmpLGroup(p, q LImpl) int {
	switch {
	case p.W2 != q.W2:
		return cmpInt64(p.W2, q.W2)
	case p.W1 != q.W1:
		return cmpInt64(q.W1, p.W1)
	case p.H1 != q.H1:
		return cmpInt64(p.H1, q.H1)
	default:
		return cmpInt64(p.H2, q.H2)
	}
}

// lsetFromOwned builds the set from a minimal candidate slice it owns (and
// consumes as scratch).
func lsetFromOwned(minimal []LImpl) LSet {
	if len(minimal) == 0 {
		return LSet{}
	}
	slices.SortFunc(minimal, cmpLGroup)
	var set LSet
	for lo := 0; lo < len(minimal); {
		hi := lo
		for hi < len(minimal) && minimal[hi].W2 == minimal[lo].W2 {
			hi++
		}
		set.Lists = append(set.Lists, partitionChains(minimal[lo:hi])...)
		lo = hi
	}
	return set
}

// partitionChains splits one W2 group — already sorted by (W1 desc, H1 asc,
// H2 asc) — into monotone chains by repeated greedy passes. Each pass takes
// the longest prefix-greedy chain from the remaining points; the number of
// passes equals the number of lists produced. The group slice is consumed as
// scratch (compacted in place between passes); each chain is a fresh
// exact-capacity allocation, since chains are retained for the rest of the
// optimizer run and over-capacity here is resident waste.
func partitionChains(group []LImpl) []LList {
	var lists []LList
	remaining := group
	for len(remaining) > 0 {
		// First pass: size the greedy chain so it can be allocated exactly.
		last := remaining[0]
		n := 1
		for _, p := range remaining[1:] {
			if p.W1 <= last.W1 && p.H1 >= last.H1 && p.H2 >= last.H2 {
				last = p
				n++
			}
		}
		// Second pass: collect the chain, compacting the leftovers in place.
		chain := make(LList, 0, n)
		rest := remaining[:0]
		for i, p := range remaining {
			if i == 0 {
				chain = append(chain, p)
				continue
			}
			lastC := chain[len(chain)-1]
			if p.W1 <= lastC.W1 && p.H1 >= lastC.H1 && p.H2 >= lastC.H2 {
				chain = append(chain, p)
			} else {
				rest = append(rest, p)
			}
		}
		lists = append(lists, chain)
		remaining = rest
	}
	return lists
}

// Size returns the total number of implementations across all lists (the
// paper's N for an L-shaped block).
func (s LSet) Size() int {
	n := 0
	for _, l := range s.Lists {
		n += len(l)
	}
	return n
}

// All returns every implementation in the set, list by list.
func (s LSet) All() []LImpl {
	out := make([]LImpl, 0, s.Size())
	for _, l := range s.Lists {
		out = append(out, l...)
	}
	return out
}

// Validate checks that every list is a canonical irreducible L-list and that
// no implementation in one list dominates an implementation in another.
func (s LSet) Validate() error {
	for i, l := range s.Lists {
		if len(l) == 0 {
			return fmt.Errorf("shape: LSet list %d is empty", i)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("shape: LSet list %d: %w", i, err)
		}
	}
	all := s.All()
	minimal := MinimaL(all)
	if len(minimal) != len(all) {
		return fmt.Errorf("shape: LSet holds %d implementations but only %d are non-redundant", len(all), len(minimal))
	}
	return nil
}

// BestRect returns the minimum-area bounding box over all implementations,
// for diagnostics. It returns false when the set is empty.
func (s LSet) BestRect() (RImpl, bool) {
	best := RImpl{}
	found := false
	for _, l := range s.Lists {
		for _, li := range l {
			r := li.Rect()
			if !found || r.Area() < best.Area() {
				best, found = r, true
			}
		}
	}
	return best, found
}
