package shape

import (
	"fmt"
	"sort"
)

// LList is an irreducible L-list (Definitions 3 and 5): implementations with
// a common top-edge width W2, ordered with W1 nonincreasing and H1, H2
// nondecreasing, none dominating another. L_Selection operates on exactly
// this structure — the monotone order is what makes Lemma 2 (and hence the
// neighbour formula of Lemma 3) hold.
type LList []LImpl

// Validate checks the L-list invariants.
func (l LList) Validate() error {
	for i, li := range l {
		if !li.Valid() {
			return fmt.Errorf("shape: LList[%d] = %v invalid", i, li)
		}
		if i == 0 {
			continue
		}
		prev := l[i-1]
		switch {
		case li.W2 != prev.W2:
			return fmt.Errorf("shape: LList W2 not constant at %d: %v then %v", i, prev, li)
		case li.W1 > prev.W1:
			return fmt.Errorf("shape: LList W1 increases at %d: %v then %v", i, prev, li)
		case li.H1 < prev.H1:
			return fmt.Errorf("shape: LList H1 decreases at %d: %v then %v", i, prev, li)
		case li.H2 < prev.H2:
			return fmt.Errorf("shape: LList H2 decreases at %d: %v then %v", i, prev, li)
		case prev.Dominates(li) || li.Dominates(prev):
			return fmt.Errorf("shape: LList not irreducible at %d: %v vs %v", i, prev, li)
		}
	}
	return nil
}

// Subset returns the entries at the given strictly increasing indices; a
// subset of a canonical L-list is canonical.
func (l LList) Subset(indices []int) (LList, error) {
	out := make(LList, 0, len(indices))
	prev := -1
	for _, idx := range indices {
		if idx <= prev || idx >= len(l) {
			return nil, fmt.Errorf("shape: bad subset index %d (prev %d, len %d)", idx, prev, len(l))
		}
		out = append(out, l[idx])
		prev = idx
	}
	return out, nil
}

// LSet stores all non-redundant implementations of an L-shaped block as a
// set of irreducible L-lists, the representation [9] uses and the paper's
// L_Selection consumes. Lists are ordered by (W2, first W1) for determinism.
type LSet struct {
	Lists []LList
}

// NewLSet prunes the candidates to their Pareto-minimal subset and partitions
// the survivors into irreducible L-lists.
//
// Within one W2 group the survivors form a 3-d antichain, which in general
// does not fit in a single monotone list; the group is split greedily into
// maximal monotone chains (repeated greedy passes over the points in
// (W1 desc, H1 asc, H2 asc) order). Any such partition is a valid "set of
// irreducible L-lists" in the paper's sense.
func NewLSet(candidates []LImpl) (LSet, error) {
	for _, c := range candidates {
		if !c.Valid() {
			return LSet{}, fmt.Errorf("shape: invalid L implementation %v", c)
		}
	}
	return newLSetUnchecked(candidates), nil
}

// MustLSet is NewLSet for statically known inputs; it panics on error.
func MustLSet(candidates []LImpl) LSet {
	s, err := NewLSet(candidates)
	if err != nil {
		panic(err)
	}
	return s
}

func newLSetUnchecked(candidates []LImpl) LSet {
	minimal := MinimaL(candidates)
	if len(minimal) == 0 {
		return LSet{}
	}
	// Group by W2.
	sort.Slice(minimal, func(i, j int) bool {
		if minimal[i].W2 != minimal[j].W2 {
			return minimal[i].W2 < minimal[j].W2
		}
		if minimal[i].W1 != minimal[j].W1 {
			return minimal[i].W1 > minimal[j].W1
		}
		if minimal[i].H1 != minimal[j].H1 {
			return minimal[i].H1 < minimal[j].H1
		}
		return minimal[i].H2 < minimal[j].H2
	})
	var set LSet
	for lo := 0; lo < len(minimal); {
		hi := lo
		for hi < len(minimal) && minimal[hi].W2 == minimal[lo].W2 {
			hi++
		}
		set.Lists = append(set.Lists, partitionChains(minimal[lo:hi])...)
		lo = hi
	}
	return set
}

// partitionChains splits one W2 group — already sorted by (W1 desc, H1 asc,
// H2 asc) — into monotone chains by repeated greedy passes. Each pass takes
// the longest prefix-greedy chain from the remaining points; the number of
// passes equals the number of lists produced.
func partitionChains(group []LImpl) []LList {
	remaining := make([]LImpl, len(group))
	copy(remaining, group)
	var lists []LList
	for len(remaining) > 0 {
		var chain LList
		rest := remaining[:0]
		for _, p := range remaining {
			if len(chain) == 0 {
				chain = append(chain, p)
				continue
			}
			last := chain[len(chain)-1]
			if p.W1 <= last.W1 && p.H1 >= last.H1 && p.H2 >= last.H2 {
				chain = append(chain, p)
			} else {
				rest = append(rest, p)
			}
		}
		lists = append(lists, chain)
		remaining = rest
	}
	return lists
}

// Size returns the total number of implementations across all lists (the
// paper's N for an L-shaped block).
func (s LSet) Size() int {
	n := 0
	for _, l := range s.Lists {
		n += len(l)
	}
	return n
}

// All returns every implementation in the set, list by list.
func (s LSet) All() []LImpl {
	out := make([]LImpl, 0, s.Size())
	for _, l := range s.Lists {
		out = append(out, l...)
	}
	return out
}

// Validate checks that every list is a canonical irreducible L-list and that
// no implementation in one list dominates an implementation in another.
func (s LSet) Validate() error {
	for i, l := range s.Lists {
		if len(l) == 0 {
			return fmt.Errorf("shape: LSet list %d is empty", i)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("shape: LSet list %d: %w", i, err)
		}
	}
	all := s.All()
	minimal := MinimaL(all)
	if len(minimal) != len(all) {
		return fmt.Errorf("shape: LSet holds %d implementations but only %d are non-redundant", len(all), len(minimal))
	}
	return nil
}

// BestRect returns the minimum-area bounding box over all implementations,
// for diagnostics. It returns false when the set is empty.
func (s LSet) BestRect() (RImpl, bool) {
	best := RImpl{}
	found := false
	for _, l := range s.Lists {
		for _, li := range l {
			r := li.Rect()
			if !found || r.Area() < best.Area() {
				best, found = r, true
			}
		}
	}
	return best, found
}
