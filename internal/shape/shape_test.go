package shape

import "testing"

func TestRImplBasics(t *testing.T) {
	r := RImpl{W: 4, H: 3}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %d, want 12", got)
	}
	if rot := r.Rotate(); rot != (RImpl{W: 3, H: 4}) {
		t.Errorf("Rotate = %v", rot)
	}
	if !r.Valid() {
		t.Error("Valid = false for positive rect")
	}
	if (RImpl{W: 0, H: 3}).Valid() {
		t.Error("Valid = true for zero width")
	}
}

func TestRImplDominates(t *testing.T) {
	tests := []struct {
		a, b RImpl
		want bool
	}{
		{RImpl{4, 3}, RImpl{4, 3}, true},   // equal tuples dominate each other
		{RImpl{5, 3}, RImpl{4, 3}, true},   // wider
		{RImpl{4, 4}, RImpl{4, 3}, true},   // taller
		{RImpl{3, 3}, RImpl{4, 3}, false},  // narrower
		{RImpl{5, 2}, RImpl{4, 3}, false},  // incomparable
		{RImpl{10, 10}, RImpl{1, 1}, true}, // strictly larger
	}
	for _, tc := range tests {
		if got := tc.a.Dominates(tc.b); got != tc.want {
			t.Errorf("%v.Dominates(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLImplGeometry(t *testing.T) {
	l := LImpl{W1: 6, W2: 4, H1: 5, H2: 2}
	if !l.Valid() {
		t.Fatal("Valid = false")
	}
	if l.IsRect() {
		t.Error("IsRect = true for a proper L")
	}
	// Bottom slab 6x2 plus upper slab 4x3.
	if got := l.Area(); got != 6*2+4*3 {
		t.Errorf("Area = %d, want %d", got, 6*2+4*3)
	}
	if got := l.Rect(); got != (RImpl{W: 6, H: 5}) {
		t.Errorf("Rect = %v", got)
	}
	deg := LImpl{W1: 4, W2: 4, H1: 5, H2: 2}
	if !deg.IsRect() {
		t.Error("IsRect = false for W1 == W2")
	}
	if got := deg.Area(); got != 4*5 {
		t.Errorf("degenerate Area = %d, want 20", got)
	}
	deg2 := LImpl{W1: 6, W2: 4, H1: 2, H2: 2}
	if !deg2.IsRect() {
		t.Error("IsRect = false for H1 == H2")
	}
	if got := deg2.Area(); got != 6*2 {
		t.Errorf("degenerate Area = %d, want 12", got)
	}
}

func TestLImplValid(t *testing.T) {
	bad := []LImpl{
		{W1: 3, W2: 4, H1: 5, H2: 2}, // W1 < W2
		{W1: 4, W2: 4, H1: 1, H2: 2}, // H1 < H2
		{W1: 4, W2: 0, H1: 5, H2: 2}, // zero top width
		{W1: 4, W2: 4, H1: 5, H2: 0}, // zero right height
	}
	for _, l := range bad {
		if l.Valid() {
			t.Errorf("Valid = true for %v", l)
		}
	}
}

func TestLImplDominates(t *testing.T) {
	a := LImpl{6, 4, 5, 2}
	if !a.Dominates(a) {
		t.Error("self-domination should hold")
	}
	b := LImpl{6, 4, 5, 3}
	if !b.Dominates(a) || a.Dominates(b) {
		t.Error("one-coordinate increase should dominate one way only")
	}
	c := LImpl{7, 3, 5, 2}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("incomparable tuples should not dominate")
	}
}

func TestLImplDist(t *testing.T) {
	// The paper's Section 4.3 distance; with equal W2 the |w2 - w2'| term
	// vanishes.
	a := LImpl{10, 4, 3, 1}
	b := LImpl{7, 4, 5, 4}
	if got := a.Dist(b); got != 3+0+2+3 {
		t.Errorf("Dist = %d, want 8", got)
	}
	if a.Dist(b) != b.Dist(a) {
		t.Error("Dist not symmetric")
	}
	if a.Dist(a) != 0 {
		t.Error("Dist(a,a) != 0")
	}
}
