package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"floorplan/internal/cache"
)

// testKey derives a deterministic cache key from an integer, hashed so the
// ring projection (key bytes 8..16) is uniform like real content addresses.
func testKey(i int) cache.Key {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	return cache.Key(sha256.Sum256(seed[:]))
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return out
}

// TestRingDeterministic is the placement property the whole tier rests on:
// the owner of a key is a pure function of (node set, key) — independent of
// the order the peer list was spelled in, of duplicates in it, and of which
// process builds the ring (a rebuild stands in for a restart).
func TestRingDeterministic(t *testing.T) {
	nodes := nodeNames(5)
	a, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}

	shuffled := append([]string(nil), nodes...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	shuffled = append(shuffled, nodes[2]) // duplicate entry must be harmless
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewRing(nodes, 0) // "restarted process" rebuild
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10_000; i++ {
		k := testKey(i)
		oa, ob, oc := a.Owner(k), b.Owner(k), c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %d: owners diverge: ordered %q, shuffled %q, rebuilt %q", i, oa, ob, oc)
		}
	}
}

// TestRingGoldenOwners pins concrete placements so an accidental change to
// the vnode hash or the key projection — which would strand every cluster's
// cached ownership mid-upgrade — fails loudly, not statistically. Update
// the golden values only with a deliberate placement-format change.
func TestRingGoldenOwners(t *testing.T) {
	r, err := NewRing(nodeNames(4), 128)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[int]string{
		0: "http://node-0:8080",
		1: "http://node-1:8080",
		2: "http://node-0:8080",
		3: "http://node-3:8080",
		4: "http://node-3:8080",
		5: "http://node-1:8080",
		6: "http://node-0:8080",
		7: "http://node-0:8080",
	}
	for i, want := range golden {
		if got := r.Owner(testKey(i)); got != want {
			t.Errorf("golden owner of key %d: %q, want %q (placement format changed?)", i, got, want)
		}
	}
}

// TestRingBalance: with the default 128 vnodes, key load across 3–16 nodes
// stays within 15% of the mean (max/mean − 1 ≤ 0.15) for a uniform key
// population — the bound DESIGN.md promises for the tier's target sizes.
func TestRingBalance(t *testing.T) {
	const keys = 100_000
	for n := 3; n <= 16; n++ {
		r, err := NewRing(nodeNames(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			counts[r.Owner(testKey(i))]++
		}
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d received keys", n, len(counts))
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		mean := float64(keys) / float64(n)
		if imbalance := float64(max)/mean - 1; imbalance > 0.15 {
			t.Errorf("%d nodes: max/mean imbalance %.1f%% > 15%% (max %d, mean %.0f)",
				n, 100*imbalance, max, mean)
		}
	}
}

// TestRingMinimalMovement is consistent hashing's defining property: when a
// node leaves, exactly the keys it owned move (to some surviving node) and
// every other key keeps its owner. Checked exhaustively over a key sample
// for each possible departure from a 5-node ring.
func TestRingMinimalMovement(t *testing.T) {
	nodes := nodeNames(5)
	full, err := NewRing(nodes, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20_000
	for drop := 0; drop < len(nodes); drop++ {
		var rest []string
		for i, n := range nodes {
			if i != drop {
				rest = append(rest, n)
			}
		}
		shrunk, err := NewRing(rest, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			k := testKey(i)
			before, after := full.Owner(k), shrunk.Owner(k)
			if before == nodes[drop] {
				moved++
				if after == nodes[drop] {
					t.Fatalf("key %d still owned by removed node %q", i, nodes[drop])
				}
			} else if before != after {
				t.Fatalf("key %d moved %q -> %q although its owner survived the removal of %q",
					i, before, after, nodes[drop])
			}
		}
		if moved == 0 {
			t.Fatalf("removing %q moved no keys at all", nodes[drop])
		}
	}
}

// TestRingValidation covers the constructor's rejects.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	r, err := NewRing([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(testKey(1)); got != "solo" {
		t.Fatalf("single-node ring owner = %q", got)
	}
	if r.VNodes() != 4 {
		t.Fatalf("VNodes() = %d, want 4", r.VNodes())
	}
}

// TestOwnerPointWrap: a position past the last vnode wraps to the ring's
// first point.
func TestOwnerPointWrap(t *testing.T) {
	r, err := NewRing(nodeNames(3), 8)
	if err != nil {
		t.Fatal(err)
	}
	last := r.points[len(r.points)-1].hash
	if last == ^uint64(0) {
		t.Skip("last vnode sits at the ring maximum")
	}
	wantFirst := r.nodes[r.points[0].node]
	if got := r.OwnerPoint(last + 1); got != wantFirst {
		t.Fatalf("OwnerPoint(past last) = %q, want wrap to first point's node %q", got, wantFirst)
	}
	if got := r.OwnerPoint(r.points[0].hash); got != wantFirst {
		t.Fatalf("OwnerPoint(exactly first) = %q, want %q", got, wantFirst)
	}
}

// TestRingShares: shares sum to 1, stay near 1/n at the default vnode
// count, and a single-node ring owns everything.
func TestRingShares(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Shares(); s["solo"] != 1 {
		t.Fatalf("single-node share = %v, want 1", s["solo"])
	}

	const n = 5
	r, err = NewRing(nodeNames(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	if len(shares) != n {
		t.Fatalf("Shares() has %d entries, want %d", len(shares), n)
	}
	var sum float64
	for node, s := range shares {
		sum += s
		if s < 1.0/n*0.80 || s > 1.0/n*1.20 {
			t.Errorf("node %s share %.4f strays more than 20%% from fair %.4f", node, s, 1.0/n)
		}
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}

	// Shares must agree with empirical placement: sample keys and compare
	// each node's observed fraction to its arc-length share.
	counts := map[string]int{}
	const samples = 20000
	for i := 0; i < samples; i++ {
		counts[r.Owner(testKey(i))]++
	}
	for node, s := range shares {
		got := float64(counts[node]) / samples
		if got < s-0.02 || got > s+0.02 {
			t.Errorf("node %s: empirical share %.4f vs arc share %.4f", node, got, s)
		}
	}
}
