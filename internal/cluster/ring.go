// Package cluster is the multi-node serving tier: a consistent-hash ring
// that assigns every content-addressed cache key an owning fpserve backend,
// plus the peer protocol (forwarding, peer cache fill, hot-key replication,
// owner-failure fallback) the server layers over its existing HTTP API.
//
// Membership is static — the ring is built once from a -peers list every
// node shares — and placement is a pure function of (node name, key), so
// every node computes the same owner for a key without any coordination,
// across process restarts and regardless of the order the peer list was
// spelled in. Virtual nodes smooth the partition: each node projects
// VNodes points onto a 64-bit ring and a key belongs to the node owning
// the first point at or after the key's own projection.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"floorplan/internal/cache"
)

// DefaultVNodes is the virtual-node count per backend when Config leaves
// VNodes zero. Each virtual node contributes pointsPerVNode ring positions
// (the full SHA-256 digest sliced into 64-bit words, ketama-style), so 128
// vnodes place 512 points per backend — enough to keep the max/mean key
// imbalance within 15% for the 3–16 node clusters this tier targets
// (property-tested in TestRingBalance).
const DefaultVNodes = 128

// pointsPerVNode is how many ring positions one virtual-node digest yields:
// a SHA-256 digest is 32 bytes, exactly four 64-bit points. Slicing the
// digest instead of hashing four times buys the extra smoothing for free.
const pointsPerVNode = 4

// Ring is an immutable consistent-hash ring over a static node set. Build
// with NewRing; all methods are safe for concurrent use (the ring never
// mutates after construction).
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
	vnodes int
}

// ringPoint is one virtual node: a position on the 64-bit ring and the
// index (into nodes) of the backend owning it.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds the ring for the given node names (peer base URLs in the
// serving tier). Names are deduplicated and sorted first, so every process
// handed the same set — in any order — builds the identical ring. vnodes
// <= 0 selects DefaultVNodes.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name in ring")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		nodes:  uniq,
		points: make([]ringPoint, 0, len(uniq)*vnodes*pointsPerVNode),
		vnodes: vnodes,
	}
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			for _, h := range vnodeHashes(n, v) {
				r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
			}
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so placement
		// stays deterministic.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// vnodeHashes projects one virtual node onto the ring: SHA-256 of
// "<node>#<index>" sliced into four 64-bit positions. SHA-256 keeps vnode
// points uniform for any node naming scheme (URLs, short ids) so the arc
// lengths — and with them the key balance — do not depend on how operators
// spell their peer lists.
func vnodeHashes(node string, v int) [pointsPerVNode]uint64 {
	h := sha256.Sum256([]byte(node + "#" + strconv.Itoa(v)))
	var out [pointsPerVNode]uint64
	for i := range out {
		out[i] = binary.BigEndian.Uint64(h[8*i : 8*i+8])
	}
	return out
}

// keyPoint projects a cache key onto the ring. Bytes 8..16 keep the ring
// projection independent of the cache's shard selector (bytes 0..4): a
// node owns contiguous arcs of its projection, and reusing the shard bytes
// would collapse each arc's keys onto one or two local cache shards.
func keyPoint(k cache.Key) uint64 {
	return binary.BigEndian.Uint64(k[8:16])
}

// Owner returns the node owning key: the backend whose virtual node is the
// first at or clockwise after the key's ring position.
func (r *Ring) Owner(k cache.Key) string {
	return r.nodes[r.ownerIdx(keyPoint(k))]
}

// OwnerPoint resolves ownership of a raw ring position; exported for the
// ring property tests.
func (r *Ring) OwnerPoint(h uint64) string {
	return r.nodes[r.ownerIdx(h)]
}

func (r *Ring) ownerIdx(h uint64) int32 {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point to the ring's first
	}
	return r.points[i].node
}

// Nodes returns the ring's member names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// VNodes reports the per-node virtual-node count the ring was built with.
func (r *Ring) VNodes() int { return r.vnodes }

// Shares returns each node's exact fraction of the 64-bit ring it owns: the
// summed lengths of the arcs ending at its points, normalized by 2^64. This
// is the expected share of uniformly-hashed keys the node serves, so the
// cluster stats aggregator can report placement imbalance without sampling
// keys. The arcs are computed with wraparound subtraction (p − prev mod
// 2^64), so the shares of all nodes sum to exactly 1.
func (r *Ring) Shares() map[string]float64 {
	arcs := make([]uint64, len(r.nodes))
	prev := r.points[len(r.points)-1].hash // the wrap-around arc start
	for _, p := range r.points {
		arcs[p.node] += p.hash - prev
		prev = p.hash
	}
	// A single-node ring has one arc of length 2^64, which wraps to 0.
	if len(r.nodes) == 1 {
		return map[string]float64{r.nodes[0]: 1}
	}
	out := make(map[string]float64, len(r.nodes))
	for i, n := range r.nodes {
		out[n] = float64(arcs[i]) / (1 << 64)
	}
	return out
}
