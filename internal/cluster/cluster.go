package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"floorplan/internal/cache"
	"floorplan/internal/telemetry"
)

// Peer-protocol headers. The hop marker doubles as the loop guard: a
// request carrying it is already an intra-cluster hop and is never
// forwarded again, so a misconfigured ring degrades to local computation
// instead of a proxy loop.
const (
	// HeaderInternal marks an intra-cluster hop; its value is the origin
	// node's id (which the owner's access log records as the peer).
	HeaderInternal = "X-FP-Internal"
	// HeaderHot is set to "1" by an owner on responses whose key currently
	// ranks in its top-K hit EWMAs; peers replicate exactly these into
	// their local caches.
	HeaderHot = "X-FP-Hot"
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's base URL exactly as it appears in Peers.
	Self string
	// Peers lists every backend's base URL, including Self. Every node must
	// be started with the same set (order does not matter).
	Peers []string
	// NodeID labels this node in stats, logs and response envelopes
	// (default: Self).
	NodeID string
	// VNodes is the virtual-node count per backend (0 = DefaultVNodes).
	VNodes int
	// HotK is the top-K size for hot-key replication (0 = 32; negative
	// disables replication).
	HotK int
	// HotHalfLife is the decay half-life of the per-key hit EWMA (0 = 10s).
	HotHalfLife time.Duration
	// PeerTimeout caps one forward hop (0 = 2s). A forward is always a
	// single attempt: the origin client owns the retry budget, and a second
	// server-side attempt would double-apply it.
	PeerTimeout time.Duration
	// MaxResponseBytes caps a forwarded response body (0 = 64 MiB).
	MaxResponseBytes int64
	// HTTPClient overrides the forwarding transport (nil = a dedicated
	// client with per-host connection pooling).
	HTTPClient *http.Client
	// Telemetry receives the cluster.* counters/histograms; nil disables.
	Telemetry *telemetry.Collector
}

func (c Config) hotK() int {
	switch {
	case c.HotK > 0:
		return c.HotK
	case c.HotK < 0:
		return 0
	default:
		return 32
	}
}

func (c Config) hotHalfLife() time.Duration {
	if c.HotHalfLife > 0 {
		return c.HotHalfLife
	}
	return 10 * time.Second
}

func (c Config) peerTimeout() time.Duration {
	if c.PeerTimeout > 0 {
		return c.PeerTimeout
	}
	return 2 * time.Second
}

func (c Config) maxResponseBytes() int64 {
	if c.MaxResponseBytes > 0 {
		return c.MaxResponseBytes
	}
	return 64 << 20
}

// Cluster is one node's handle on the tier: ownership lookups, the peer
// forwarder and the hot-key tracker. Create with New; all methods are safe
// for concurrent use.
type Cluster struct {
	cfg  Config
	ring *Ring
	hot  *hotTracker
	hc   *http.Client
	tel  *telemetry.Collector

	forwardInflight atomic.Int64

	// Stats counters, snapshotted into /v1/stats.
	forwarded     atomic.Int64
	forwardErrors atomic.Int64
	peerFallbacks atomic.Int64
	internalIn    atomic.Int64
	hotFills      atomic.Int64
	replicaHits   atomic.Int64
}

// New validates the config and builds the node's cluster handle.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: config needs Self")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.NodeID == "" {
		cfg.NodeID = cfg.Self
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Cluster{
		cfg:  cfg,
		ring: ring,
		hot:  newHotTracker(cfg.hotK(), cfg.hotHalfLife(), nil),
		hc:   hc,
		tel:  cfg.Telemetry,
	}, nil
}

// NodeID returns this node's display id.
func (c *Cluster) NodeID() string { return c.cfg.NodeID }

// Self returns this node's base URL as it appears in the peer list.
func (c *Cluster) Self() string { return c.cfg.Self }

// Ring exposes the placement ring, for tests and introspection.
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner resolves a key's owning backend and whether that backend is this
// node.
func (c *Cluster) Owner(k cache.Key) (node string, self bool) {
	node = c.ring.Owner(k)
	return node, node == c.cfg.Self
}

// TouchOwned records one owner-served request for key on the hit EWMA and
// reports whether the key is currently hot (so the response can carry the
// replication marker).
func (c *Cluster) TouchOwned(k cache.Key) bool { return c.hot.Touch(k) }

// NoteInternal counts one hop-marked request served for a peer.
func (c *Cluster) NoteInternal() { c.internalIn.Add(1); c.tel.Inc(telemetry.CtrClusterInternal) }

// NoteReplicaHit counts one local cache hit on a key owned by a peer —
// replication (or an earlier fallback) paying off.
func (c *Cluster) NoteReplicaHit() { c.replicaHits.Add(1); c.tel.Inc(telemetry.CtrClusterReplicaHits) }

// NoteHotFill counts one peer-fill store of a hot key into the local cache.
func (c *Cluster) NoteHotFill() { c.hotFills.Add(1); c.tel.Inc(telemetry.CtrClusterHotFills) }

// NotePeerFallback counts one owner-unreachable fallback to local
// computation.
func (c *Cluster) NotePeerFallback() {
	c.peerFallbacks.Add(1)
	c.tel.Inc(telemetry.CtrClusterPeerFallback)
}

// PeerStatusError is a non-2xx reply from the owning peer, relayed to the
// origin's client verbatim: same status, same message, and — crucially —
// the owner's Retry-After hint exactly as sent. The origin must not
// re-derive the hint from its own queue (it did not queue anything) nor
// retry the hop itself (the client's retry budget already covers the
// logical request).
type PeerStatusError struct {
	// Node is the owning peer that answered.
	Node string
	// Status is the peer's HTTP status code.
	Status int
	// Message is the peer's error body.
	Message string
	// RetryAfter is the peer's Retry-After header value, verbatim ("" when
	// absent).
	RetryAfter string
}

func (e *PeerStatusError) Error() string {
	return fmt.Sprintf("cluster: peer %s answered HTTP %d: %s", e.Node, e.Status, e.Message)
}

// ForwardReply is a successful forwarded optimize: the owner's
// deterministic result payload plus the replication marker.
type ForwardReply struct {
	// Payload is the owner's deterministic result bytes (the response's
	// "result" field) — byte-identical to what the owner cached.
	Payload []byte
	// Hot reports whether the owner marked the key for replication.
	Hot bool
}

// forwardedResponse is the loosely-decoded owner reply; only the
// deterministic payload is extracted (the origin builds its own runtime
// envelope).
type forwardedResponse struct {
	Result json.RawMessage `json:"result"`
}

type forwardedError struct {
	Error string `json:"error"`
}

// Forward proxies one optimize body to the owning peer: a single POST with
// the per-hop timeout, the hop marker and the origin's traceparent (so the
// cross-node spans join one trace). It returns a ForwardReply on success, a
// *PeerStatusError when the owner answered non-2xx (to be relayed), or a
// transport error when the owner never answered (the caller falls back to
// computing locally).
func (c *Cluster) Forward(ctx context.Context, owner string, body []byte, traceparent string) (*ForwardReply, error) {
	c.forwarded.Add(1)
	c.tel.Inc(telemetry.CtrClusterForwarded)
	c.tel.Observe(telemetry.MaxClusterForwardInflight, c.forwardInflight.Add(1))
	defer c.forwardInflight.Add(-1)

	ctx, cancel := context.WithTimeout(ctx, c.cfg.peerTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(owner, "/")+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: building forward to %s: %w", owner, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderInternal, c.cfg.NodeID)
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}

	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.tel.Record(telemetry.HistClusterForwardNs, time.Since(start).Nanoseconds())
		return nil, fmt.Errorf("cluster: forwarding to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	max := c.cfg.maxResponseBytes()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
	c.tel.Record(telemetry.HistClusterForwardNs, time.Since(start).Nanoseconds())
	if err != nil {
		return nil, fmt.Errorf("cluster: reading forward reply from %s: %w", owner, err)
	}
	if int64(len(raw)) > max {
		return nil, fmt.Errorf("cluster: forward reply from %s exceeds the %d-byte limit", owner, max)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		c.forwardErrors.Add(1)
		c.tel.Inc(telemetry.CtrClusterForwardErrors)
		msg := strings.TrimSpace(string(raw))
		var fe forwardedError
		if json.Unmarshal(raw, &fe) == nil && fe.Error != "" {
			msg = fe.Error
		}
		return nil, &PeerStatusError{
			Node:       owner,
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: resp.Header.Get("Retry-After"),
		}
	}
	var fr forwardedResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		return nil, fmt.Errorf("cluster: decoding forward reply from %s: %w", owner, err)
	}
	if len(fr.Result) == 0 {
		return nil, fmt.Errorf("cluster: forward reply from %s carries no result payload", owner)
	}
	return &ForwardReply{Payload: fr.Result, Hot: resp.Header.Get(HeaderHot) == "1"}, nil
}

// FetchStats retrieves a peer's /v1/stats snapshot as raw JSON. The request
// carries the hop marker (so the peer's access log attributes the scrape and
// never re-fans it out) and is bounded by the caller's timeout (0 = the
// per-hop forward timeout) and the configured response-size cap. The cluster
// layer does not decode the body — the stats schema belongs to the server
// package, which sits above this one.
func (c *Cluster) FetchStats(ctx context.Context, peer string, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = c.cfg.peerTimeout()
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(peer, "/")+"/v1/stats", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: building stats fetch to %s: %w", peer, err)
	}
	req.Header.Set(HeaderInternal, c.cfg.NodeID)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching stats from %s: %w", peer, err)
	}
	defer resp.Body.Close()
	max := c.cfg.maxResponseBytes()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, max+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading stats from %s: %w", peer, err)
	}
	if int64(len(raw)) > max {
		return nil, fmt.Errorf("cluster: stats reply from %s exceeds the %d-byte limit", peer, max)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s answered stats with HTTP %d", peer, resp.StatusCode)
	}
	return raw, nil
}

// Stats is the point-in-time cluster snapshot embedded in /v1/stats.
type Stats struct {
	NodeID string   `json:"node_id"`
	Peers  []string `json:"peers"`
	VNodes int      `json:"vnodes"`
	// Forwarded counts requests this node proxied to their owner;
	// ForwardErrors the subset whose owner answered non-2xx (relayed);
	// PeerFallbacks the subset whose owner never answered and were computed
	// locally instead.
	Forwarded     int64 `json:"forwarded"`
	ForwardErrors int64 `json:"forward_errors"`
	PeerFallbacks int64 `json:"peer_fallback"`
	// InternalRequests counts hop-marked requests served for peers;
	// ReplicaHits local cache hits on peer-owned keys; HotFills peer-fill
	// stores of owner-marked hot keys.
	InternalRequests int64 `json:"internal_requests"`
	ReplicaHits      int64 `json:"replica_hits"`
	HotFills         int64 `json:"hot_fills"`
	// HotTracked is the current size of the hit-EWMA tracker.
	HotTracked int `json:"hot_tracked"`
}

// Stats snapshots the cluster counters. Safe on a nil receiver (reports
// zeros), so the single-node stats path needs no branch.
func (c *Cluster) Stats() *Stats {
	if c == nil {
		return nil
	}
	return &Stats{
		NodeID:           c.cfg.NodeID,
		Peers:            c.ring.Nodes(),
		VNodes:           c.ring.VNodes(),
		Forwarded:        c.forwarded.Load(),
		ForwardErrors:    c.forwardErrors.Load(),
		PeerFallbacks:    c.peerFallbacks.Load(),
		InternalRequests: c.internalIn.Load(),
		ReplicaHits:      c.replicaHits.Load(),
		HotFills:         c.hotFills.Load(),
		HotTracked:       c.hot.tracked(),
	}
}
