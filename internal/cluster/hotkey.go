package cluster

import (
	"math"
	"sort"
	"sync"
	"time"

	"floorplan/internal/cache"
)

// Hot-key replication: under zipfian skew a handful of fingerprints carry
// most of the traffic, and forwarding every one of their requests to a
// single owner turns that owner into the new ceiling. Each node tracks a
// decayed per-key hit rate (an EWMA with a configurable half-life) for the
// keys it serves as owner; the top-K keys by that score are "hot", the
// owner stamps X-FP-Hot on their responses, and peers fill their local
// caches from hot forwarded responses — so the next request for a hot key
// is a local hit on any node, no forward. Cold keys are proxied through
// without replication: duplicating the zipf tail into every node's LRU
// would just evict the head.

// hotTracker maintains the decayed scores. A single mutex guards the map;
// the tracker is touched once per owner-served request, which is cheap next
// to the optimize (or even cache-hit JSON) work around it.
type hotTracker struct {
	k          int           // top-K size; scores ranking in the top k are hot
	maxTracked int           // bound on tracked keys; lowest scores evicted past it
	halfLife   time.Duration // decay half-life of the hit EWMA
	now        func() time.Time

	mu        sync.Mutex
	scores    map[cache.Key]*hotScore
	threshold float64 // k-th largest decayed score at the last recalc
	touches   int     // touches since the last threshold recalc
}

type hotScore struct {
	score float64
	last  time.Time
}

// thresholdRecalcEvery bounds how stale the top-K threshold may grow: the
// k-th largest score is recomputed after this many touches rather than on
// every request (an O(n) scan amortized to O(1)).
const thresholdRecalcEvery = 64

func newHotTracker(k int, halfLife time.Duration, now func() time.Time) *hotTracker {
	if now == nil {
		now = time.Now
	}
	return &hotTracker{
		k:          k,
		maxTracked: 8 * k,
		halfLife:   halfLife,
		now:        now,
		scores:     make(map[cache.Key]*hotScore),
	}
}

// Touch records one owner-served request for key and reports whether the
// key is currently hot (top-K by decayed score). With k <= 0 tracking is
// disabled and nothing is ever hot.
func (t *hotTracker) Touch(k cache.Key) bool {
	if t == nil || t.k <= 0 {
		return false
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.scores[k]
	if s == nil {
		if len(t.scores) >= t.maxTracked {
			t.evictColdest(now)
		}
		s = &hotScore{last: now}
		t.scores[k] = s
	} else {
		s.score *= decay(now.Sub(s.last), t.halfLife)
		s.last = now
	}
	s.score++
	t.touches++
	if t.touches >= thresholdRecalcEvery || t.threshold == 0 {
		t.recalcThreshold(now)
		t.touches = 0
	}
	// Fewer tracked keys than K means everything tracked ranks in the top
	// K by definition.
	return len(t.scores) <= t.k || s.score >= t.threshold
}

// Hot reports whether key currently ranks in the top K, without counting a
// hit.
func (t *hotTracker) Hot(k cache.Key) bool {
	if t == nil || t.k <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.scores[k]
	if s == nil {
		return false
	}
	if len(t.scores) <= t.k {
		return true
	}
	return s.score*decay(t.now().Sub(s.last), t.halfLife) >= t.threshold
}

// hotScoreFloor is the decayed score below which an entry is noise: a key
// untouched for ten half-lives has kept under 0.1% of one hit's weight and
// can never rank anywhere near the top K. Pruning at the floor keeps churn
// workloads (every request a unique key) from pinning maxTracked stale
// entries forever — without it the map fills with decayed-to-zero keys
// that survive until an eviction scan happens to pick them, and every
// recalc/evict pass pays for scanning them.
const hotScoreFloor = 1.0 / 1024

// recalcThreshold recomputes the k-th largest decayed score, pruning
// entries whose decayed score has fallen below the noise floor along the
// way (deleting during the range is safe in Go). Caller holds the mutex.
func (t *hotTracker) recalcThreshold(now time.Time) {
	decayed := make([]float64, 0, len(t.scores))
	for k, s := range t.scores {
		d := s.score * decay(now.Sub(s.last), t.halfLife)
		if d < hotScoreFloor {
			delete(t.scores, k)
			continue
		}
		decayed = append(decayed, d)
	}
	if len(decayed) <= t.k {
		t.threshold = 0
		return
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(decayed)))
	t.threshold = decayed[t.k-1]
}

// evictColdest drops the lowest-scored tracked key to bound the map.
// Caller holds the mutex.
func (t *hotTracker) evictColdest(now time.Time) {
	var coldest cache.Key
	lowest := math.Inf(1)
	for k, s := range t.scores {
		if d := s.score * decay(now.Sub(s.last), t.halfLife); d < lowest {
			lowest = d
			coldest = k
		}
	}
	delete(t.scores, coldest)
}

// tracked reports the number of keys currently tracked, for tests and the
// stats snapshot.
func (t *hotTracker) tracked() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.scores)
}

// decay returns the EWMA multiplier for a gap of d under the given
// half-life: 2^(-d/halfLife).
func decay(d, halfLife time.Duration) float64 {
	if d <= 0 || halfLife <= 0 {
		return 1
	}
	return math.Exp2(-float64(d) / float64(halfLife))
}
