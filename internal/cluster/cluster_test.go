package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func twoNodeCluster(t *testing.T, self, peer string) *Cluster {
	t.Helper()
	c, err := New(Config{Self: self, Peers: []string{self, peer}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a"}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "c", Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("Self outside the peer list accepted")
	}
	c, err := New(Config{Self: "a", Peers: []string{"b", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeID() != "a" {
		t.Fatalf("NodeID defaulted to %q, want Self", c.NodeID())
	}
}

// TestForwardSuccess: a 2xx owner reply yields the result payload verbatim
// plus the hot marker, and the hop carries the loop-guard and trace
// headers.
func TestForwardSuccess(t *testing.T) {
	payload := `{"best":{"W":3,"H":4},"area":12}`
	var gotInternal, gotTrace, gotPath string
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotInternal = r.Header.Get(HeaderInternal)
		gotTrace = r.Header.Get("traceparent")
		gotPath = r.URL.Path
		w.Header().Set(HeaderHot, "1")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"key":    "k",
			"result": json.RawMessage(payload),
		})
	}))
	defer owner.Close()

	c := twoNodeCluster(t, "http://origin", owner.URL)
	tp := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	reply, err := c.Forward(context.Background(), owner.URL, []byte(`{"tree":null}`), tp)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Payload) != payload {
		t.Fatalf("payload = %s, want the owner's result verbatim", reply.Payload)
	}
	if !reply.Hot {
		t.Fatal("hot marker lost")
	}
	if gotPath != "/v1/optimize" {
		t.Fatalf("forwarded to %q", gotPath)
	}
	if gotInternal != "http://origin" {
		t.Fatalf("hop marker = %q, want the origin's node id", gotInternal)
	}
	if gotTrace != tp {
		t.Fatalf("traceparent = %q, want %q propagated", gotTrace, tp)
	}
	if s := c.Stats(); s.Forwarded != 1 || s.ForwardErrors != 0 {
		t.Fatalf("stats = %+v, want 1 forward, 0 errors", s)
	}
}

// TestForwardStatusRelay: a non-2xx owner reply becomes a PeerStatusError
// carrying the owner's status, decoded message and Retry-After hint
// *verbatim* — the single-attempt contract that keeps the client's retry
// budget from being applied twice.
func TestForwardStatusRelay(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"saturated: request queue full"}`))
	}))
	defer owner.Close()

	c := twoNodeCluster(t, "http://origin", owner.URL)
	_, err := c.Forward(context.Background(), owner.URL, []byte(`{}`), "")
	var pe *PeerStatusError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PeerStatusError", err)
	}
	if pe.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", pe.Status)
	}
	if pe.Message != "saturated: request queue full" {
		t.Fatalf("message = %q, want the owner's error body decoded", pe.Message)
	}
	if pe.RetryAfter != "7" {
		t.Fatalf("RetryAfter = %q, want the owner's header verbatim", pe.RetryAfter)
	}
	if pe.Node != owner.URL {
		t.Fatalf("node = %q, want %q", pe.Node, owner.URL)
	}
	if s := c.Stats(); s.ForwardErrors != 1 {
		t.Fatalf("forward_errors = %d, want 1", s.ForwardErrors)
	}
}

// TestForwardSingleAttempt: the owner sees exactly one request per Forward
// call even when it answers 503 — retries belong to the origin's client.
func TestForwardSingleAttempt(t *testing.T) {
	hits := 0
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer owner.Close()

	c := twoNodeCluster(t, "http://origin", owner.URL)
	_, err := c.Forward(context.Background(), owner.URL, []byte(`{}`), "")
	var pe *PeerStatusError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PeerStatusError", err)
	}
	if hits != 1 {
		t.Fatalf("owner saw %d requests for one Forward, want exactly 1", hits)
	}
}

// TestForwardTimeout: an owner that never answers within the per-hop
// timeout yields a transport error (not a PeerStatusError), the signal for
// the caller's local-compute fallback.
func TestForwardTimeout(t *testing.T) {
	block := make(chan struct{})
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer owner.Close()
	defer close(block)

	c, err := New(Config{
		Self:        "http://origin",
		Peers:       []string{"http://origin", owner.URL},
		PeerTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Forward(context.Background(), owner.URL, []byte(`{}`), "")
	if err == nil {
		t.Fatal("forward to a hung owner succeeded")
	}
	var pe *PeerStatusError
	if errors.As(err, &pe) {
		t.Fatalf("hung owner produced a status error %v, want a transport error", pe)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forward took %v, per-hop timeout did not apply", elapsed)
	}
}

// TestForwardDeadPeer: a connection refusal is a transport error too.
func TestForwardDeadPeer(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := dead.URL
	dead.Close() // port now refuses connections

	c := twoNodeCluster(t, "http://origin", url)
	_, err := c.Forward(context.Background(), url, []byte(`{}`), "")
	if err == nil {
		t.Fatal("forward to a dead peer succeeded")
	}
	var pe *PeerStatusError
	if errors.As(err, &pe) {
		t.Fatal("dead peer produced a status error, want a transport error")
	}
}

// TestForwardResponseCap: an oversized owner reply is refused rather than
// buffered without bound.
func TestForwardResponseCap(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"result":"` + strings.Repeat("x", 4096) + `"}`))
	}))
	defer owner.Close()

	c, err := New(Config{
		Self:             "http://origin",
		Peers:            []string{"http://origin", owner.URL},
		MaxResponseBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Forward(context.Background(), owner.URL, []byte(`{}`), ""); err == nil ||
		!strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("err = %v, want the byte-limit refusal", err)
	}
}

// TestStatsNil: the nil receiver snapshot keeps the single-node stats path
// branch-free.
func TestStatsNil(t *testing.T) {
	var c *Cluster
	if c.Stats() != nil {
		t.Fatal("nil cluster Stats() != nil")
	}
}

// TestOwnerSelf: Owner resolves self-ownership against the ring.
func TestOwnerSelf(t *testing.T) {
	c := twoNodeCluster(t, "http://a", "http://b")
	selfOwned, peerOwned := 0, 0
	for i := 0; i < 1000; i++ {
		node, self := c.Owner(testKey(i))
		if self {
			if node != "http://a" {
				t.Fatalf("self=true but node %q", node)
			}
			selfOwned++
		} else {
			if node != "http://b" {
				t.Fatalf("self=false but node %q", node)
			}
			peerOwned++
		}
	}
	if selfOwned == 0 || peerOwned == 0 {
		t.Fatalf("degenerate split: self %d, peer %d", selfOwned, peerOwned)
	}
}
