package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source for the decay math.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestHotTrackerTopK: with more distinct keys than K, only the most-hit
// keys rank hot; a key hit once among heavy hitters does not.
func TestHotTrackerTopK(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tr := newHotTracker(2, 10*time.Second, clock.now)

	// Two heavy hitters, several cold keys, interleaved far past the
	// threshold-recalc interval so the lazy threshold is fresh.
	for i := 0; i < 100; i++ {
		tr.Touch(testKey(0))
		tr.Touch(testKey(1))
		tr.Touch(testKey(2 + i%6))
	}
	if !tr.Hot(testKey(0)) || !tr.Hot(testKey(1)) {
		t.Fatal("heavy hitters not hot")
	}
	hotCold := 0
	for i := 2; i < 8; i++ {
		if tr.Hot(testKey(i)) {
			hotCold++
		}
	}
	// The rotating cold keys each hold ~1/6 of a hitter's score; none
	// should rank in the top 2.
	if hotCold != 0 {
		t.Fatalf("%d cold keys rank hot alongside 2 heavy hitters (k=2)", hotCold)
	}
}

// TestHotTrackerFewerThanK: while fewer keys are tracked than K, everything
// is hot by definition — the viral key is replicated from its first hit.
func TestHotTrackerFewerThanK(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tr := newHotTracker(32, 10*time.Second, clock.now)
	if !tr.Touch(testKey(1)) {
		t.Fatal("first touched key not hot with k=32 and 1 tracked")
	}
	if !tr.Hot(testKey(1)) {
		t.Fatal("Hot() disagrees with Touch()")
	}
	if tr.Hot(testKey(2)) {
		t.Fatal("never-touched key reported hot")
	}
}

// TestHotTrackerDecay: a former heavy hitter cools off after many
// half-lives and yields its slot to newly hot keys.
func TestHotTrackerDecay(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tr := newHotTracker(1, time.Second, clock.now)

	for i := 0; i < 200; i++ {
		tr.Touch(testKey(0))
	}
	// 30 half-lives: score 200 → ~2e-7.
	clock.advance(30 * time.Second)
	for i := 0; i < 200; i++ {
		tr.Touch(testKey(1))
	}
	if !tr.Hot(testKey(1)) {
		t.Fatal("fresh heavy hitter not hot")
	}
	if tr.Hot(testKey(0)) {
		t.Fatal("key idle for 30 half-lives still hot")
	}
}

// TestHotTrackerDisabled: k <= 0 disables tracking entirely.
func TestHotTrackerDisabled(t *testing.T) {
	tr := newHotTracker(0, time.Second, nil)
	if tr.Touch(testKey(0)) || tr.Hot(testKey(0)) {
		t.Fatal("disabled tracker marked a key hot")
	}
	if tr.tracked() != 0 {
		t.Fatal("disabled tracker tracked a key")
	}
	var nilTr *hotTracker
	if nilTr.Touch(testKey(0)) || nilTr.Hot(testKey(0)) || nilTr.tracked() != 0 {
		t.Fatal("nil tracker not inert")
	}
}

// TestHotTrackerBounded: the score map never exceeds maxTracked, evicting
// the coldest key when a new one arrives at capacity.
func TestHotTrackerBounded(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tr := newHotTracker(2, 10*time.Second, clock.now) // maxTracked = 16
	for i := 0; i < 1000; i++ {
		tr.Touch(testKey(i))
	}
	if n := tr.tracked(); n > tr.maxTracked {
		t.Fatalf("tracking %d keys, bound is %d", n, tr.maxTracked)
	}
}

// TestHotTrackerConcurrent exercises the mutex path under the race
// detector: concurrent touches of overlapping keys.
func TestHotTrackerConcurrent(t *testing.T) {
	tr := newHotTracker(8, 10*time.Second, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Touch(testKey(i % (4 + g)))
				tr.Hot(testKey(i % 16))
			}
		}(g)
	}
	wg.Wait()
	if !tr.Hot(testKey(0)) {
		t.Fatal("most-shared key not hot after concurrent touches")
	}
}

// TestHotTrackerChurnPrunesDecayed: under pure churn — every request a
// unique key — decayed-to-zero entries must be pruned at the noise floor,
// not merely capped at maxTracked. Each key is touched once; after ten
// half-lives its score is under hotScoreFloor and the next threshold
// recalc deletes it, so the live set stays near the number of keys seen
// within the last ten half-lives instead of pinning maxTracked stale
// entries forever.
func TestHotTrackerChurnPrunesDecayed(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	halfLife := time.Second
	tr := newHotTracker(64, halfLife, clock.now) // maxTracked = 512
	for i := 0; i < 5000; i++ {
		tr.Touch(testKey(i))
		clock.advance(halfLife / 8) // ten half-lives ≈ 80 keys back
	}
	// Live window: ~80 keys within ten half-lives, plus at most one
	// recalc interval (64 touches) of staleness.
	n := tr.tracked()
	if n > 80+thresholdRecalcEvery {
		t.Fatalf("churn left %d tracked keys; pruning should bound it near %d",
			n, 80+thresholdRecalcEvery)
	}
	if n >= tr.maxTracked/2 {
		t.Fatalf("tracking %d of %d keys under pure churn — decayed entries not pruned",
			n, tr.maxTracked)
	}
}
