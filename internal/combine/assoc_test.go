package combine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"floorplan/internal/shape"
)

// TestSliceMergeAssociative: multi-way slicing cuts fold into binary cuts
// in arbitrary order; the restructuring step depends on this.
func TestSliceMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRList(r, 1+r.Intn(10))
		b := randomRList(r, 1+r.Intn(10))
		c := randomRList(r, 1+r.Intn(10))
		if !VCut(VCut(a, b), c).Equal(VCut(a, VCut(b, c))) {
			t.Logf("VCut not associative:\n a=%v\n b=%v\n c=%v", a, b, c)
			return false
		}
		if !HCut(HCut(a, b), c).Equal(HCut(a, HCut(b, c))) {
			t.Logf("HCut not associative:\n a=%v\n b=%v\n c=%v", a, b, c)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestCutsTransposeDuality: HCut is VCut through a 90° rotation of all
// operands and the result.
func TestCutsTransposeDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	rot := func(l shape.RList) shape.RList {
		out := make([]shape.RImpl, len(l))
		for i, r := range l {
			out[i] = r.Rotate()
		}
		return shape.MustRList(out)
	}
	for trial := 0; trial < 60; trial++ {
		a := randomRList(rng, 1+rng.Intn(12))
		b := randomRList(rng, 1+rng.Intn(12))
		if !HCut(a, b).Equal(rot(VCut(rot(a), rot(b)))) {
			t.Fatalf("duality violated:\n a=%v\n b=%v", a, b)
		}
	}
}
