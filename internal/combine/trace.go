package combine

import "floorplan/internal/shape"

// This file reconstructs, for a combined implementation stored at a node,
// the pair of operand implementations that generated it. The optimizer's
// traceback calls these once per node on the winning path instead of
// storing per-implementation back-pointers, which would inflate exactly the
// memory the paper's selection algorithms exist to save.
//
// Every finder requires that target was produced by the matching combine
// call on the same operand lists; they return ok=false only on misuse.

// FindVPair returns operand implementations (a_i, b_j) with
// VCand(a_i, b_j) == target. It first tries the O(log n) staircase lookup —
// the minimal-width entries at the target height — and falls back to a full
// scan for robustness.
func FindVPair(a, b shape.RList, target shape.RImpl) (shape.RImpl, shape.RImpl, bool) {
	if ai, okA := minWidthAtHeight(a, target.H); okA {
		if bi, okB := minWidthAtHeight(b, target.H); okB {
			if VCand(ai, bi) == target {
				return ai, bi, true
			}
		}
	}
	for _, ai := range a {
		for _, bi := range b {
			if VCand(ai, bi) == target {
				return ai, bi, true
			}
		}
	}
	return shape.RImpl{}, shape.RImpl{}, false
}

// FindHPair is FindVPair for horizontal cuts.
func FindHPair(a, b shape.RList, target shape.RImpl) (shape.RImpl, shape.RImpl, bool) {
	if ai, okA := minHeightAtWidth(a, target.W); okA {
		if bi, okB := minHeightAtWidth(b, target.W); okB {
			if HCand(ai, bi) == target {
				return ai, bi, true
			}
		}
	}
	for _, ai := range a {
		for _, bi := range b {
			if HCand(ai, bi) == target {
				return ai, bi, true
			}
		}
	}
	return shape.RImpl{}, shape.RImpl{}, false
}

// minWidthAtHeight returns the minimal-width entry fitting height budget h
// — the entry sliceMerge pairs at that breakpoint. Heights ascend, so it is
// the last entry with H <= h.
func minWidthAtHeight(l shape.RList, h int64) (shape.RImpl, bool) {
	lo, hi := 0, len(l)-1
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if l[mid].H <= h {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best < 0 {
		return shape.RImpl{}, false
	}
	return l[best], true
}

// minHeightAtWidth returns the minimal-height entry fitting width budget w:
// widths descend and heights ascend, so it is the first entry with W <= w.
func minHeightAtWidth(l shape.RList, w int64) (shape.RImpl, bool) {
	lo, hi := 0, len(l)-1
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if l[mid].W <= w {
			best = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if best < 0 {
		return shape.RImpl{}, false
	}
	return l[best], true
}

// FindStackPair returns (bottom, top) with StackCand(bottom, top) == target.
func FindStackPair(bottom, top shape.RList, target shape.LImpl) (shape.RImpl, shape.RImpl, bool) {
	for _, a := range bottom {
		if a.H != target.H2 {
			continue
		}
		for _, b := range top {
			if StackCand(a, b) == target {
				return a, b, true
			}
		}
	}
	return shape.RImpl{}, shape.RImpl{}, false
}

// FindNotchPair returns (l_i, c_j) with NotchCand(l_i, c_j) == target.
func FindNotchPair(l shape.LSet, c shape.RList, target shape.LImpl) (shape.LImpl, shape.RImpl, bool) {
	for _, list := range l.Lists {
		if len(list) > 0 && list[0].W2 != target.W2 {
			continue // NotchCand preserves W2
		}
		for _, li := range list {
			for _, ci := range c {
				if NotchCand(li, ci) == target {
					return li, ci, true
				}
			}
		}
	}
	return shape.LImpl{}, shape.RImpl{}, false
}

// FindBottomPair returns (l_i, c_j) with BottomCand(l_i, c_j) == target.
func FindBottomPair(l shape.LSet, c shape.RList, target shape.LImpl) (shape.LImpl, shape.RImpl, bool) {
	for _, list := range l.Lists {
		if len(list) > 0 && list[0].W2 != target.W2 {
			continue // BottomCand preserves W2
		}
		for _, li := range list {
			for _, ci := range c {
				if BottomCand(li, ci) == target {
					return li, ci, true
				}
			}
		}
	}
	return shape.LImpl{}, shape.RImpl{}, false
}

// FindClosePair returns (l_i, c_j) with CloseCand(l_i, c_j) == target.
func FindClosePair(l shape.LSet, c shape.RList, target shape.RImpl) (shape.LImpl, shape.RImpl, bool) {
	for _, list := range l.Lists {
		for _, li := range list {
			if li.W1 > target.W || li.H1 > target.H {
				continue
			}
			for _, ci := range c {
				if CloseCand(li, ci) == target {
					return li, ci, true
				}
			}
		}
	}
	return shape.LImpl{}, shape.RImpl{}, false
}
