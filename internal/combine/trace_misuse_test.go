package combine

import (
	"testing"

	"floorplan/internal/shape"
)

// The Find* helpers return ok=false (not a wrong pair) when the target was
// not generated from the given operands.
func TestFindPairsMisuse(t *testing.T) {
	a := shape.RList{{W: 5, H: 5}}
	b := shape.RList{{W: 3, H: 3}}
	bogusL := shape.LImpl{W1: 100, W2: 50, H1: 100, H2: 50}
	bogusR := shape.RImpl{W: 999, H: 999}
	set := shape.MustLSet([]shape.LImpl{{W1: 6, W2: 3, H1: 7, H2: 2}})

	if _, _, ok := FindHPair(a, b, bogusR); ok {
		t.Error("FindHPair accepted an impossible target")
	}
	if _, _, ok := FindStackPair(a, b, bogusL); ok {
		t.Error("FindStackPair accepted an impossible target")
	}
	if _, _, ok := FindNotchPair(set, b, bogusL); ok {
		t.Error("FindNotchPair accepted an impossible target")
	}
	if _, _, ok := FindBottomPair(set, b, bogusL); ok {
		t.Error("FindBottomPair accepted an impossible target")
	}
	if _, _, ok := FindClosePair(set, b, bogusR); ok {
		t.Error("FindClosePair accepted an impossible target")
	}
}
