// Package combine implements the shape-list combination steps of the
// Wang–Wong DAC'90 optimizer ([9] in the paper): given the non-redundant
// implementation lists of two blocks, it produces the non-redundant list of
// their union, for every operation appearing in a restructured binary
// floorplan tree (package plan).
//
// # Geometry
//
// The clockwise pinwheel over an enveloping W×H rectangle uses cut
// abscissae x1 <= x2 and ordinates y1 <= y2:
//
//	B1 (NW) = [0,x1]×[y1,H]      B2 (NE) = [x1,W]×[y2,H]
//	B3 (SE) = [x2,W]×[0,y2]      B4 (SW) = [0,x2]×[0,y1]
//	B5 (C)  = [x1,x2]×[y1,y2]
//
// and is assembled as (((B4 ⊕ B1) ⊕ B5) ⊕ B3) ⊕ B2, where each partial
// union is an L-shaped block with its notch at the top-right, exactly the
// paper's 4-tuple convention.
//
// # Candidate formulas
//
// Each operation combines one implementation from each operand into a
// single minimal candidate (Cand functions below). Because a block's
// feasible shapes are upward-closed under dominance — slack can always be
// absorbed by the boundary basic rectangles — these max/sum formulas are
// exact, and because they are monotone in every input coordinate, combining
// only the operands' non-redundant implementations and pruning the
// candidates yields exactly the union's non-redundant set. DAC'90 generates
// a narrower candidate set as a constant-factor speedup; the resulting
// lists are identical.
package combine

import (
	"floorplan/internal/shape"
)

// VCand places a to the left of b (vertical cut): widths add, heights max.
func VCand(a, b shape.RImpl) shape.RImpl {
	return shape.RImpl{W: a.W + b.W, H: max64(a.H, b.H)}
}

// HCand stacks b on top of a (horizontal cut): heights add, widths max.
func HCand(a, b shape.RImpl) shape.RImpl {
	return shape.RImpl{W: max64(a.W, b.W), H: a.H + b.H}
}

// StackCand stacks the NW block b on the left part of the SW block a,
// opening a pinwheel: the result is L-shaped with bottom width
// max(a.W, b.W), top width b.W, left height a.H+b.H and right height a.H.
func StackCand(a, b shape.RImpl) shape.LImpl {
	return shape.LImpl{
		W1: max64(a.W, b.W),
		W2: b.W,
		H1: a.H + b.H,
		H2: a.H,
	}
}

// NotchCand places the center block c into the notch of l: on top of the
// bottom slab (height l.H2) and right of the top slab (width l.W2).
func NotchCand(l shape.LImpl, c shape.RImpl) shape.LImpl {
	h2 := l.H2 + c.H
	return shape.LImpl{
		W1: max64(l.W1, l.W2+c.W),
		W2: l.W2,
		H1: max64(l.H1, h2),
		H2: h2,
	}
}

// BottomCand appends the SE block c to the right of l's bottom edge.
func BottomCand(l shape.LImpl, c shape.RImpl) shape.LImpl {
	h2 := max64(l.H2, c.H)
	return shape.LImpl{
		W1: l.W1 + c.W,
		W2: l.W2,
		H1: max64(l.H1, h2),
		H2: h2,
	}
}

// CloseCand fills l's notch with the NE block c, completing a rectangle.
func CloseCand(l shape.LImpl, c shape.RImpl) shape.RImpl {
	return shape.RImpl{
		W: max64(l.W1, l.W2+c.W),
		H: max64(l.H1, l.H2+c.H),
	}
}

// VCut merges the R-lists of two blocks joined by a vertical cut. The merge
// is the classic Stockmeyer two-pointer walk over the union of height
// breakpoints, O(len(a)+len(b)); the result is canonical and irreducible.
func VCut(a, b shape.RList) shape.RList {
	return sliceMerge(a, b, true)
}

// HCut merges the R-lists of two blocks joined by a horizontal cut.
func HCut(a, b shape.RList) shape.RList {
	return sliceMerge(a, b, false)
}

// sliceMerge enumerates the non-redundant results of a slicing cut.
// For a vertical cut, the minimal width at height budget h is
// minW_a(h) + minW_b(h), and the staircase can only break at heights
// present in a or b. A horizontal cut is the transpose.
func sliceMerge(a, b shape.RList, vertical bool) shape.RList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if !vertical {
		a, b = transpose(a), transpose(b)
	}
	// Both lists are sorted with H ascending; walk their height values in
	// ascending merged order. Pointers ia/ib track the widest (last) entry
	// with H <= current h; widths shrink as h grows.
	candidates := make([]shape.RImpl, 0, len(a)+len(b))
	ia, ib := 0, 0 // indices of current minimal-width entries
	h := max64(a[0].H, b[0].H)
	for {
		for ia+1 < len(a) && a[ia+1].H <= h {
			ia++
		}
		for ib+1 < len(b) && b[ib+1].H <= h {
			ib++
		}
		candidates = append(candidates, shape.RImpl{W: a[ia].W + b[ib].W, H: h})
		// Next height breakpoint above h.
		next := int64(-1)
		if ia+1 < len(a) {
			next = a[ia+1].H
		}
		if ib+1 < len(b) && (next < 0 || b[ib+1].H < next) {
			next = b[ib+1].H
		}
		if next < 0 {
			break
		}
		h = next
	}
	out := shape.MustRList(candidates)
	if !vertical {
		out = transpose(out)
	}
	return out
}

// transpose swaps W and H of every entry, reversing to keep canonical
// order (W descending becomes H descending, so the reversed list has W
// descending again).
func transpose(l shape.RList) shape.RList {
	out := make(shape.RList, len(l))
	for i, r := range l {
		out[len(l)-1-i] = shape.RImpl{W: r.H, H: r.W}
	}
	return out
}

// candidateChunk bounds the transient candidate buffer during L-block cross
// products: the buffer is Pareto-pruned whenever it exceeds this size, so
// peak transient memory stays bounded even when operand lists are huge
// (pruning is idempotent and composable: minima(minima(A) ∪ B) =
// minima(A ∪ B)).
const candidateChunk = 1 << 21

// budgeter carries the optional early-abort budget through a cross-product
// generation. When budget > 0 and a *pruned* candidate buffer alone already
// exceeds it, generating the rest of the block is pointless: the caller's
// memory limit is guaranteed to be exceeded (a later prune can only shrink
// the buffer below budget if stronger dominators appear, which the abort
// deliberately forgoes — this mirrors the paper machine running out of
// memory mid-generation rather than after it). A negative budget is the
// exhausted sentinel: the combination aborts before generating anything.
type budgeter struct {
	budget    int
	chunk     int
	truncated bool
}

func newBudgeter(budget int) *budgeter {
	if budget < 0 {
		return &budgeter{budget: budget, chunk: 1, truncated: true}
	}
	chunk := candidateChunk
	if budget > 0 && budget*4 < chunk {
		chunk = budget * 4
		if chunk < 4096 {
			chunk = 4096
		}
	}
	return &budgeter{budget: budget, chunk: chunk}
}

// lCap sizes a candidate buffer for a cross product of the given operand
// cardinalities: the exact product when it is small, else the prune
// threshold (the buffer is Pareto-pruned whenever it reaches chunk, so it
// never needs to grow much beyond it).
func (bg *budgeter) lCap(a, b int) int {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > bg.chunk/b {
		return bg.chunk
	}
	return a * b
}

func (bg *budgeter) pruneL(buf []shape.LImpl, force bool) []shape.LImpl {
	if !force && len(buf) < bg.chunk {
		return buf
	}
	buf = shape.MinimaL(buf)
	if bg.budget > 0 && len(buf) > bg.budget {
		bg.truncated = true
	}
	return buf
}

func (bg *budgeter) pruneR(buf []shape.RImpl, force bool) []shape.RImpl {
	if !force && len(buf) < bg.chunk {
		return buf
	}
	buf = shape.MinimaR(buf)
	if bg.budget > 0 && len(buf) > bg.budget {
		bg.truncated = true
	}
	return buf
}

// LStack combines the SW and NW rectangular blocks into the pinwheel's
// first L-shaped partial block. budget > 0 enables early abort: when the
// non-redundant set provably exceeds it, generation stops and truncated is
// true (the partial set is returned for accounting).
func LStack(bottom, top shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := make([]shape.LImpl, 0, bg.lCap(len(bottom), len(top)))
	for _, a := range bottom {
		for _, b := range top {
			buf = append(buf, StackCand(a, b))
		}
		if buf = bg.pruneL(buf, false); bg.truncated {
			return shape.MustLSet(buf), true
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.MustLSet(buf), bg.truncated
}

// LNotch grows an L-shaped block by the center block.
func LNotch(l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := make([]shape.LImpl, 0, bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			for _, ci := range c {
				buf = append(buf, NotchCand(li, ci))
			}
			if buf = bg.pruneL(buf, false); bg.truncated {
				return shape.MustLSet(buf), true
			}
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.MustLSet(buf), bg.truncated
}

// LBottom grows an L-shaped block by the SE block.
func LBottom(l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := make([]shape.LImpl, 0, bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			for _, ci := range c {
				buf = append(buf, BottomCand(li, ci))
			}
			if buf = bg.pruneL(buf, false); bg.truncated {
				return shape.MustLSet(buf), true
			}
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.MustLSet(buf), bg.truncated
}

// Close completes the pinwheel with the NE block, yielding a rectangular
// block's R-list.
func Close(l shape.LSet, c shape.RList, budget int) (result shape.RList, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return nil, true
	}
	buf := make([]shape.RImpl, 0, bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			for _, ci := range c {
				buf = append(buf, CloseCand(li, ci))
			}
			if buf = bg.pruneR(buf, false); bg.truncated {
				return shape.MustRList(buf), true
			}
		}
	}
	buf = bg.pruneR(buf, true)
	return shape.MustRList(buf), bg.truncated
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
