// Package combine implements the shape-list combination steps of the
// Wang–Wong DAC'90 optimizer ([9] in the paper): given the non-redundant
// implementation lists of two blocks, it produces the non-redundant list of
// their union, for every operation appearing in a restructured binary
// floorplan tree (package plan).
//
// # Geometry
//
// The clockwise pinwheel over an enveloping W×H rectangle uses cut
// abscissae x1 <= x2 and ordinates y1 <= y2:
//
//	B1 (NW) = [0,x1]×[y1,H]      B2 (NE) = [x1,W]×[y2,H]
//	B3 (SE) = [x2,W]×[0,y2]      B4 (SW) = [0,x2]×[0,y1]
//	B5 (C)  = [x1,x2]×[y1,y2]
//
// and is assembled as (((B4 ⊕ B1) ⊕ B5) ⊕ B3) ⊕ B2, where each partial
// union is an L-shaped block with its notch at the top-right, exactly the
// paper's 4-tuple convention.
//
// # Candidate formulas
//
// Each operation combines one implementation from each operand into a
// single minimal candidate (Cand functions below). Because a block's
// feasible shapes are upward-closed under dominance — slack can always be
// absorbed by the boundary basic rectangles — these max/sum formulas are
// exact, and because they are monotone in every input coordinate, combining
// only the operands' non-redundant implementations and pruning the
// candidates yields exactly the union's non-redundant set. DAC'90 generates
// a narrower candidate set as a constant-factor speedup; the resulting
// lists are identical.
//
// # Allocation
//
// The L-block cross products build one large transient candidate buffer per
// call, pruned in place (shape.MinimaLInPlace / MinimaRInPlace) and
// partitioned into the retained result at the end. Callers on the optimizer
// hot path pass an Alloc so those buffers come from per-worker arena slabs
// (package arena) instead of the heap; the zero Alloc falls back to plain
// makes. Results never alias the buffers, so the caller may reset its arena
// as soon as the call returns.
package combine

import (
	"sort"

	"floorplan/internal/arena"
	"floorplan/internal/shape"
)

// VCand places a to the left of b (vertical cut): widths add, heights max.
func VCand(a, b shape.RImpl) shape.RImpl {
	return shape.RImpl{W: a.W + b.W, H: max64(a.H, b.H)}
}

// HCand stacks b on top of a (horizontal cut): heights add, widths max.
func HCand(a, b shape.RImpl) shape.RImpl {
	return shape.RImpl{W: max64(a.W, b.W), H: a.H + b.H}
}

// StackCand stacks the NW block b on the left part of the SW block a,
// opening a pinwheel: the result is L-shaped with bottom width
// max(a.W, b.W), top width b.W, left height a.H+b.H and right height a.H.
func StackCand(a, b shape.RImpl) shape.LImpl {
	return shape.LImpl{
		W1: max64(a.W, b.W),
		W2: b.W,
		H1: a.H + b.H,
		H2: a.H,
	}
}

// NotchCand places the center block c into the notch of l: on top of the
// bottom slab (height l.H2) and right of the top slab (width l.W2).
func NotchCand(l shape.LImpl, c shape.RImpl) shape.LImpl {
	h2 := l.H2 + c.H
	return shape.LImpl{
		W1: max64(l.W1, l.W2+c.W),
		W2: l.W2,
		H1: max64(l.H1, h2),
		H2: h2,
	}
}

// BottomCand appends the SE block c to the right of l's bottom edge.
func BottomCand(l shape.LImpl, c shape.RImpl) shape.LImpl {
	h2 := max64(l.H2, c.H)
	return shape.LImpl{
		W1: l.W1 + c.W,
		W2: l.W2,
		H1: max64(l.H1, h2),
		H2: h2,
	}
}

// CloseCand fills l's notch with the NE block c, completing a rectangle.
func CloseCand(l shape.LImpl, c shape.RImpl) shape.RImpl {
	return shape.RImpl{
		W: max64(l.W1, l.W2+c.W),
		H: max64(l.H1, l.H2+c.H),
	}
}

// VCut merges the R-lists of two blocks joined by a vertical cut. The merge
// is the classic Stockmeyer two-pointer walk over the union of height
// breakpoints, O(len(a)+len(b)); the result is canonical and irreducible.
func VCut(a, b shape.RList) shape.RList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return mergeV(a, b)
}

// HCut merges the R-lists of two blocks joined by a horizontal cut.
func HCut(a, b shape.RList) shape.RList {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	return mergeH(a, b)
}

// mergeV enumerates the non-redundant results of a vertical cut: the
// minimal width at height budget h is minW_a(h) + minW_b(h), and the
// staircase can only break at heights present in a or b. Each emitted
// candidate strictly grows H and — because at least one pointer advances
// per step on a canonical operand — strictly shrinks W, so the output is
// canonical by construction and needs no sort or prune.
func mergeV(a, b shape.RList) shape.RList {
	out := make(shape.RList, 0, len(a)+len(b))
	// Both lists are sorted with H ascending; walk their height values in
	// ascending merged order. Pointers ia/ib track the widest (last) entry
	// with H <= current h; widths shrink as h grows.
	ia, ib := 0, 0
	h := max64(a[0].H, b[0].H)
	for {
		for ia+1 < len(a) && a[ia+1].H <= h {
			ia++
		}
		for ib+1 < len(b) && b[ib+1].H <= h {
			ib++
		}
		out = append(out, shape.RImpl{W: a[ia].W + b[ib].W, H: h})
		// Next height breakpoint above h.
		next := int64(-1)
		if ia+1 < len(a) {
			next = a[ia+1].H
		}
		if ib+1 < len(b) && (next < 0 || b[ib+1].H < next) {
			next = b[ib+1].H
		}
		if next < 0 {
			break
		}
		h = next
	}
	return out
}

// mergeH is mergeV in the transposed domain: walk width breakpoints
// ascending (lists are W-descending, so from the back), summing minimal
// heights. Emission order is W ascending; one in-place reversal restores
// the canonical W-descending order.
func mergeH(a, b shape.RList) shape.RList {
	out := make(shape.RList, 0, len(a)+len(b))
	ia, ib := len(a)-1, len(b)-1
	w := max64(a[ia].W, b[ib].W)
	for {
		for ia > 0 && a[ia-1].W <= w {
			ia--
		}
		for ib > 0 && b[ib-1].W <= w {
			ib--
		}
		out = append(out, shape.RImpl{W: w, H: a[ia].H + b[ib].H})
		next := int64(-1)
		if ia > 0 {
			next = a[ia-1].W
		}
		if ib > 0 && (next < 0 || b[ib-1].W < next) {
			next = b[ib-1].W
		}
		if next < 0 {
			break
		}
		w = next
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// MergeCols is the structure-of-arrays form of VCut/HCut: it merges two
// canonical RCols views into dst (reset first), streaming over the
// contiguous width/height columns. The Stockmeyer evaluator folds whole
// slice lists through persistent RCols accumulators with it, so the inner
// breakpoint scan touches only the relevant int64 column.
func MergeCols(dst, a, b *shape.RCols, vertical bool) {
	dst.Reset()
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	if vertical {
		ia, ib := 0, 0
		h := max64(a.Hs[0], b.Hs[0])
		for {
			for ia+1 < len(a.Hs) && a.Hs[ia+1] <= h {
				ia++
			}
			for ib+1 < len(b.Hs) && b.Hs[ib+1] <= h {
				ib++
			}
			dst.Append(a.Ws[ia]+b.Ws[ib], h)
			next := int64(-1)
			if ia+1 < len(a.Hs) {
				next = a.Hs[ia+1]
			}
			if ib+1 < len(b.Hs) && (next < 0 || b.Hs[ib+1] < next) {
				next = b.Hs[ib+1]
			}
			if next < 0 {
				return
			}
			h = next
		}
	}
	ia, ib := a.Len()-1, b.Len()-1
	w := max64(a.Ws[ia], b.Ws[ib])
	for {
		for ia > 0 && a.Ws[ia-1] <= w {
			ia--
		}
		for ib > 0 && b.Ws[ib-1] <= w {
			ib--
		}
		dst.Append(w, a.Hs[ia]+b.Hs[ib])
		next := int64(-1)
		if ia > 0 {
			next = a.Ws[ia-1]
		}
		if ib > 0 && (next < 0 || b.Ws[ib-1] < next) {
			next = b.Ws[ib-1]
		}
		if next < 0 {
			break
		}
		w = next
	}
	for i, j := 0, dst.Len()-1; i < j; i, j = i+1, j-1 {
		dst.Ws[i], dst.Ws[j] = dst.Ws[j], dst.Ws[i]
		dst.Hs[i], dst.Hs[j] = dst.Hs[j], dst.Hs[i]
	}
}

// Alloc carries optional arena allocators for the transient candidate
// buffers of the L-block operations. The zero value allocates from the
// heap. Results returned by the operations never alias arena storage, so
// the owner may Reset the arenas as soon as a call returns.
type Alloc struct {
	L *arena.Arena[shape.LImpl]
	R *arena.Arena[shape.RImpl]
}

func (al Alloc) lBuf(n int) []shape.LImpl {
	if al.L != nil {
		return al.L.Buf(n)
	}
	return make([]shape.LImpl, 0, n)
}

func (al Alloc) rBuf(n int) []shape.RImpl {
	if al.R != nil {
		return al.R.Buf(n)
	}
	return make([]shape.RImpl, 0, n)
}

// candidateChunk bounds the transient candidate buffer during L-block cross
// products: the buffer is Pareto-pruned whenever it exceeds this size, so
// peak transient memory stays bounded even when operand lists are huge
// (pruning is idempotent and composable: minima(minima(A) ∪ B) =
// minima(A ∪ B)).
const candidateChunk = 1 << 21

// budgeter carries the optional early-abort budget through a cross-product
// generation. When budget > 0 and a *pruned* candidate buffer alone already
// exceeds it, generating the rest of the block is pointless: the caller's
// memory limit is guaranteed to be exceeded (a later prune can only shrink
// the buffer below budget if stronger dominators appear, which the abort
// deliberately forgoes — this mirrors the paper machine running out of
// memory mid-generation rather than after it). A negative budget is the
// exhausted sentinel: the combination aborts before generating anything.
type budgeter struct {
	budget    int
	chunk     int
	truncated bool
}

func newBudgeter(budget int) *budgeter {
	if budget < 0 {
		return &budgeter{budget: budget, chunk: 1, truncated: true}
	}
	chunk := candidateChunk
	if budget > 0 && budget*4 < chunk {
		chunk = budget * 4
		if chunk < 4096 {
			chunk = 4096
		}
	}
	return &budgeter{budget: budget, chunk: chunk}
}

// lCap sizes a candidate buffer for a cross product of the given operand
// cardinalities: the exact product when it is small, else the prune
// threshold plus one inner row of margin (the buffer is pruned back below
// chunk after each inner row, so it can overshoot by at most one row —
// sizing for that keeps arena-backed buffers from spilling to the heap).
func (bg *budgeter) lCap(a, b int) int {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > bg.chunk/b {
		return bg.chunk + b
	}
	return a * b
}

// pruneL prunes buf in place (the returned slice shares its backing array)
// whenever it crosses the chunk threshold, or unconditionally under force.
func (bg *budgeter) pruneL(buf []shape.LImpl, force bool) []shape.LImpl {
	if !force && len(buf) < bg.chunk {
		return buf
	}
	buf = shape.MinimaLInPlace(buf)
	if bg.budget > 0 && len(buf) > bg.budget {
		bg.truncated = true
	}
	return buf
}

func (bg *budgeter) pruneR(buf []shape.RImpl, force bool) []shape.RImpl {
	if !force && len(buf) < bg.chunk {
		return buf
	}
	buf = []shape.RImpl(shape.MinimaRInPlace(buf))
	if bg.budget > 0 && len(buf) > bg.budget {
		bg.truncated = true
	}
	return buf
}

// LStack combines the SW and NW rectangular blocks into the pinwheel's
// first L-shaped partial block. budget > 0 enables early abort: when the
// non-redundant set provably exceeds it, generation stops and truncated is
// true (the partial set is returned for accounting).
func LStack(bottom, top shape.RList, budget int) (result shape.LSet, truncated bool) {
	return LStackA(Alloc{}, bottom, top, budget)
}

// LStackA is LStack drawing its transient buffer from al.
func LStackA(al Alloc, bottom, top shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := al.lBuf(bg.lCap(len(bottom), len(top)))
	for _, a := range bottom {
		for _, b := range top {
			buf = append(buf, StackCand(a, b))
		}
		if buf = bg.pruneL(buf, false); bg.truncated {
			return shape.LSetFromMinimal(buf), true
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.LSetFromMinimal(buf), bg.truncated
}

// LNotch grows an L-shaped block by the center block.
func LNotch(l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	return LNotchA(Alloc{}, l, c, budget)
}

// LNotchA is LNotch drawing its transient buffer from al.
func LNotchA(al Alloc, l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := al.lBuf(bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			for _, ci := range c {
				buf = append(buf, NotchCand(li, ci))
				// Once the notch column fits under the bottom slab
				// (W2+c.W <= W1), W1 stays clamped while H2 = H2+c.H keeps
				// growing down the canonical list: this candidate
				// dominates the rest of the row.
				if li.W2+ci.W <= li.W1 {
					break
				}
			}
			if buf = bg.pruneL(buf, false); bg.truncated {
				return shape.LSetFromMinimal(buf), true
			}
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.LSetFromMinimal(buf), bg.truncated
}

// LBottom grows an L-shaped block by the SE block.
func LBottom(l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	return LBottomA(Alloc{}, l, c, budget)
}

// LBottomA is LBottom drawing its transient buffer from al.
func LBottomA(al Alloc, l shape.LSet, c shape.RList, budget int) (result shape.LSet, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return shape.LSet{}, true
	}
	buf := al.lBuf(bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			// SE blocks shorter than the bottom slab (c.H <= H2) disappear
			// behind it: those candidates share (H1, H2) and differ only in
			// W1 = W1+c.W, so the last of the run (smallest c.W) dominates
			// the others. Skip straight to it.
			idx := sort.Search(len(c), func(i int) bool { return c[i].H > li.H2 })
			if idx > 0 {
				buf = append(buf, BottomCand(li, c[idx-1]))
			}
			for _, ci := range c[idx:] {
				buf = append(buf, BottomCand(li, ci))
			}
			if buf = bg.pruneL(buf, false); bg.truncated {
				return shape.LSetFromMinimal(buf), true
			}
		}
	}
	buf = bg.pruneL(buf, true)
	return shape.LSetFromMinimal(buf), bg.truncated
}

// Close completes the pinwheel with the NE block, yielding a rectangular
// block's R-list.
func Close(l shape.LSet, c shape.RList, budget int) (result shape.RList, truncated bool) {
	return CloseA(Alloc{}, l, c, budget)
}

// CloseA is Close drawing its transient buffer from al. The returned list
// is a fresh exact-size copy (it is retained by the optimizer, so it must
// not alias recyclable arena storage).
func CloseA(al Alloc, l shape.LSet, c shape.RList, budget int) (result shape.RList, truncated bool) {
	bg := newBudgeter(budget)
	if bg.truncated {
		return nil, true
	}
	buf := al.rBuf(bg.lCap(l.Size(), len(c)))
	for _, list := range l.Lists {
		for _, li := range list {
			// NE blocks shorter than the notch (H2+c.H <= H1) all close to
			// height H1 and differ only in width, so the last of that run
			// dominates the others; and once the block fits the notch
			// horizontally (W2+c.W <= W1) the width clamps at W1 while the
			// height keeps growing — that candidate dominates the rest.
			idx := sort.Search(len(c), func(i int) bool { return li.H2+c[i].H > li.H1 })
			if idx > 0 {
				buf = append(buf, CloseCand(li, c[idx-1]))
			}
			for _, ci := range c[idx:] {
				buf = append(buf, CloseCand(li, ci))
				if li.W2+ci.W <= li.W1 {
					break
				}
			}
			if buf = bg.pruneR(buf, false); bg.truncated {
				return shape.RList(buf).Clone(), true
			}
		}
	}
	buf = bg.pruneR(buf, true)
	return shape.RList(buf).Clone(), bg.truncated
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
