package combine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"floorplan/internal/shape"
)

func randomRList(rng *rand.Rand, n int) shape.RList {
	raw := make([]shape.RImpl, n)
	for i := range raw {
		raw[i] = shape.RImpl{W: 1 + rng.Int63n(30), H: 1 + rng.Int63n(30)}
	}
	l := shape.MustRList(raw)
	if len(l) == 0 {
		return shape.RList{{W: 1, H: 1}}
	}
	return l
}

func TestCandFormulas(t *testing.T) {
	a := shape.RImpl{W: 6, H: 2}
	b := shape.RImpl{W: 4, H: 5}
	if got := VCand(a, b); got != (shape.RImpl{W: 10, H: 5}) {
		t.Errorf("VCand = %v", got)
	}
	if got := HCand(a, b); got != (shape.RImpl{W: 6, H: 7}) {
		t.Errorf("HCand = %v", got)
	}
	// Pinwheel steps on a worked example:
	// B4 = 6x2 bottom, B1 = 4x5 on the left top.
	l1 := StackCand(a, b)
	if l1 != (shape.LImpl{W1: 6, W2: 4, H1: 7, H2: 2}) {
		t.Fatalf("StackCand = %v", l1)
	}
	// B5 = 3x4 in the notch: right height 2+4=6, bottom width max(6, 4+3)=7,
	// left height max(7, 6)=7.
	l2 := NotchCand(l1, shape.RImpl{W: 3, H: 4})
	if l2 != (shape.LImpl{W1: 7, W2: 4, H1: 7, H2: 6}) {
		t.Fatalf("NotchCand = %v", l2)
	}
	// B3 = 2x3 appended right of the bottom: width 7+2=9; its height 3 is
	// under the notch line 6, so heights stay.
	l3 := BottomCand(l2, shape.RImpl{W: 2, H: 3})
	if l3 != (shape.LImpl{W1: 9, W2: 4, H1: 7, H2: 6}) {
		t.Fatalf("BottomCand = %v", l3)
	}
	// B2 = 4x2 closing the top-right: W = max(9, 4+4) = 9,
	// H = max(7, 6+2) = 8.
	r := CloseCand(l3, shape.RImpl{W: 4, H: 2})
	if r != (shape.RImpl{W: 9, H: 8}) {
		t.Fatalf("CloseCand = %v", r)
	}
}

func TestCandDegenerateGrowth(t *testing.T) {
	// A top block wider than the bottom degenerates the L to a rectangle.
	l := StackCand(shape.RImpl{W: 3, H: 2}, shape.RImpl{W: 5, H: 4})
	if l != (shape.LImpl{W1: 5, W2: 5, H1: 6, H2: 2}) {
		t.Fatalf("StackCand = %v", l)
	}
	if !l.IsRect() {
		t.Error("expected degenerate L")
	}
	// A tall SE block raises the notch line.
	l2 := BottomCand(shape.LImpl{W1: 6, W2: 3, H1: 5, H2: 2}, shape.RImpl{W: 2, H: 7})
	if l2 != (shape.LImpl{W1: 8, W2: 3, H1: 7, H2: 7}) {
		t.Fatalf("BottomCand = %v", l2)
	}
	if !l2.IsRect() {
		t.Error("H1 == H2 should be degenerate")
	}
}

func TestCandMonotone(t *testing.T) {
	// The combine formulas must be monotone: growing any input coordinate
	// never shrinks any output coordinate. This is what makes dominance
	// pruning of operands safe.
	rng := rand.New(rand.NewSource(51))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := shape.LImpl{W1: 5 + r.Int63n(20), W2: 1 + r.Int63n(5), H1: 5 + r.Int63n(20), H2: 1 + r.Int63n(5)}
		c := shape.RImpl{W: 1 + r.Int63n(10), H: 1 + r.Int63n(10)}
		bigger := shape.LImpl{W1: l.W1 + r.Int63n(4), W2: l.W2 + r.Int63n(4), H1: l.H1 + r.Int63n(4), H2: l.H2 + r.Int63n(4)}
		if bigger.W2 > bigger.W1 {
			bigger.W1 = bigger.W2
		}
		if bigger.H2 > bigger.H1 {
			bigger.H1 = bigger.H2
		}
		biggerC := shape.RImpl{W: c.W + r.Int63n(4), H: c.H + r.Int63n(4)}
		if !NotchCand(bigger, biggerC).Dominates(NotchCand(l, c)) {
			return false
		}
		if !BottomCand(bigger, biggerC).Dominates(BottomCand(l, c)) {
			return false
		}
		if !CloseCand(bigger, biggerC).Dominates(CloseCand(l, c)) {
			return false
		}
		a := shape.RImpl{W: 1 + r.Int63n(10), H: 1 + r.Int63n(10)}
		biggerA := shape.RImpl{W: a.W + r.Int63n(4), H: a.H + r.Int63n(4)}
		if !StackCand(biggerA, biggerC).Dominates(StackCand(a, c)) {
			return false
		}
		if !VCand(biggerA, biggerC).Dominates(VCand(a, c)) {
			return false
		}
		if !HCand(biggerA, biggerC).Dominates(HCand(a, c)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// bruteVCut prunes the full cross product — the oracle for the two-pointer
// merge.
func bruteVCut(a, b shape.RList) shape.RList {
	var all []shape.RImpl
	for _, ai := range a {
		for _, bi := range b {
			all = append(all, VCand(ai, bi))
		}
	}
	return shape.MustRList(all)
}

func bruteHCut(a, b shape.RList) shape.RList {
	var all []shape.RImpl
	for _, ai := range a {
		for _, bi := range b {
			all = append(all, HCand(ai, bi))
		}
	}
	return shape.MustRList(all)
}

func TestVCutMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRList(r, 1+r.Intn(20))
		b := randomRList(r, 1+r.Intn(20))
		got := VCut(a, b)
		want := bruteVCut(a, b)
		if !got.Equal(want) {
			t.Logf("VCut mismatch:\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestHCutMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRList(r, 1+r.Intn(20))
		b := randomRList(r, 1+r.Intn(20))
		got := HCut(a, b)
		want := bruteHCut(a, b)
		if !got.Equal(want) {
			t.Logf("HCut mismatch:\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCutsEmptyOperand(t *testing.T) {
	a := randomRList(rand.New(rand.NewSource(1)), 5)
	if got := VCut(a, nil); got != nil {
		t.Errorf("VCut with empty operand = %v", got)
	}
	if got := HCut(nil, a); got != nil {
		t.Errorf("HCut with empty operand = %v", got)
	}
}

func TestCutsCommute(t *testing.T) {
	// Both cuts are symmetric in their operands at the shape level.
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 50; trial++ {
		a := randomRList(rng, 1+rng.Intn(15))
		b := randomRList(rng, 1+rng.Intn(15))
		if !VCut(a, b).Equal(VCut(b, a)) {
			t.Fatal("VCut not commutative")
		}
		if !HCut(a, b).Equal(HCut(b, a)) {
			t.Fatal("HCut not commutative")
		}
	}
}

func TestLStackMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		a := randomRList(rng, 1+rng.Intn(12))
		b := randomRList(rng, 1+rng.Intn(12))
		set, _ := LStack(a, b, 0)
		if err := set.Validate(); err != nil {
			t.Fatal(err)
		}
		var all []shape.LImpl
		for _, ai := range a {
			for _, bi := range b {
				all = append(all, StackCand(ai, bi))
			}
		}
		want := shape.MinimaL(all)
		if set.Size() != len(want) {
			t.Fatalf("LStack size %d, want %d", set.Size(), len(want))
		}
	}
}

func TestWheelPipelineShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 25; trial++ {
		lists := make([]shape.RList, 5)
		for i := range lists {
			lists[i] = randomRList(rng, 1+rng.Intn(8))
		}
		l1, _ := LStack(lists[3], lists[0], 0) // B4 ⊕ B1
		if err := l1.Validate(); err != nil {
			t.Fatal(err)
		}
		l2, _ := LNotch(l1, lists[4], 0) // ⊕ B5
		if err := l2.Validate(); err != nil {
			t.Fatal(err)
		}
		l3, _ := LBottom(l2, lists[2], 0) // ⊕ B3
		if err := l3.Validate(); err != nil {
			t.Fatal(err)
		}
		final, _ := Close(l3, lists[1], 0) // ⊕ B2
		if err := final.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(final) == 0 {
			t.Fatal("wheel produced no implementations")
		}
		// Every final area must be at least the sum of the smallest module
		// areas (blocks cannot overlap).
		var minSum int64
		for _, l := range lists {
			best := l[0].Area()
			for _, r := range l[1:] {
				if r.Area() < best {
					best = r.Area()
				}
			}
			minSum += best
		}
		for _, r := range final {
			if r.Area() < minSum {
				t.Fatalf("final area %d below module area sum %d", r.Area(), minSum)
			}
		}
	}
}

func TestFindVPairAndHPair(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 60; trial++ {
		a := randomRList(rng, 1+rng.Intn(15))
		b := randomRList(rng, 1+rng.Intn(15))
		for _, target := range VCut(a, b) {
			ai, bi, ok := FindVPair(a, b, target)
			if !ok {
				t.Fatalf("FindVPair failed for %v", target)
			}
			if VCand(ai, bi) != target {
				t.Fatalf("FindVPair returned wrong pair %v %v for %v", ai, bi, target)
			}
		}
		for _, target := range HCut(a, b) {
			ai, bi, ok := FindHPair(a, b, target)
			if !ok {
				t.Fatalf("FindHPair failed for %v", target)
			}
			if HCand(ai, bi) != target {
				t.Fatalf("FindHPair returned wrong pair %v %v for %v", ai, bi, target)
			}
		}
	}
}

func TestFindVPairMisuse(t *testing.T) {
	a := shape.RList{{W: 5, H: 5}}
	b := shape.RList{{W: 3, H: 3}}
	if _, _, ok := FindVPair(a, b, shape.RImpl{W: 100, H: 100}); ok {
		t.Error("FindVPair should fail for an impossible target")
	}
}

func TestFindLPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	for trial := 0; trial < 25; trial++ {
		lists := make([]shape.RList, 5)
		for i := range lists {
			lists[i] = randomRList(rng, 1+rng.Intn(6))
		}
		l1, _ := LStack(lists[3], lists[0], 0)
		for _, list := range l1.Lists {
			for _, target := range list {
				a, b, ok := FindStackPair(lists[3], lists[0], target)
				if !ok || StackCand(a, b) != target {
					t.Fatalf("FindStackPair failed for %v", target)
				}
			}
		}
		l2, _ := LNotch(l1, lists[4], 0)
		for _, list := range l2.Lists {
			for _, target := range list {
				li, ci, ok := FindNotchPair(l1, lists[4], target)
				if !ok || NotchCand(li, ci) != target {
					t.Fatalf("FindNotchPair failed for %v", target)
				}
			}
		}
		l3, _ := LBottom(l2, lists[2], 0)
		for _, list := range l3.Lists {
			for _, target := range list {
				li, ci, ok := FindBottomPair(l2, lists[2], target)
				if !ok || BottomCand(li, ci) != target {
					t.Fatalf("FindBottomPair failed for %v", target)
				}
			}
		}
		final, _ := Close(l3, lists[1], 0)
		for _, target := range final {
			li, ci, ok := FindClosePair(l3, lists[1], target)
			if !ok || CloseCand(li, ci) != target {
				t.Fatalf("FindClosePair failed for %v", target)
			}
		}
	}
}

// TestSingletonWheel pins down the full pipeline on single-implementation
// modules where the optimal envelope can be computed by hand.
func TestSingletonWheel(t *testing.T) {
	one := func(w, h int64) shape.RList { return shape.RList{{W: w, H: h}} }
	// Perfectly interlocking pinwheel in a 10x10 square with x1=4, x2=7,
	// y1=3, y2=6:
	b1 := one(4, 7) // NW: [0,4]x[3,10]
	b2 := one(6, 4) // NE: [4,10]x[6,10]
	b3 := one(3, 6) // SE: [7,10]x[0,6]
	b4 := one(7, 3) // SW: [0,7]x[0,3]
	b5 := one(3, 3) // C:  [4,7]x[3,6]
	l1, _ := LStack(b4, b1, 0)
	if l1.Size() != 1 || l1.All()[0] != (shape.LImpl{W1: 7, W2: 4, H1: 10, H2: 3}) {
		t.Fatalf("l1 = %v", l1.All())
	}
	l2, _ := LNotch(l1, b5, 0)
	if l2.All()[0] != (shape.LImpl{W1: 7, W2: 4, H1: 10, H2: 6}) {
		t.Fatalf("l2 = %v", l2.All())
	}
	l3, _ := LBottom(l2, b3, 0)
	if l3.All()[0] != (shape.LImpl{W1: 10, W2: 4, H1: 10, H2: 6}) {
		t.Fatalf("l3 = %v", l3.All())
	}
	final, _ := Close(l3, b2, 0)
	if len(final) != 1 || final[0] != (shape.RImpl{W: 10, H: 10}) {
		t.Fatalf("final = %v", final)
	}
}

func TestBudgetTruncation(t *testing.T) {
	// An antichain-producing stack: distinct widths and heights everywhere,
	// so the candidate set is large; a tiny budget must truncate.
	rng := rand.New(rand.NewSource(59))
	a := randomRList(rng, 20)
	b := randomRList(rng, 20)
	full, truncated := LStack(a, b, 0)
	if truncated {
		t.Fatal("unlimited run reported truncation")
	}
	if full.Size() < 3 {
		t.Skip("degenerate random case")
	}
	partial, truncated := LStack(a, b, 1)
	if !truncated {
		t.Fatalf("budget 1 with %d survivors did not truncate", full.Size())
	}
	if partial.Size() < 1 {
		t.Fatal("truncated run returned nothing for accounting")
	}
	// A generous budget must not truncate and must match the full result.
	same, truncated := LStack(a, b, full.Size())
	if truncated || same.Size() != full.Size() {
		t.Fatalf("budget == size truncated=%v size=%d want %d", truncated, same.Size(), full.Size())
	}
}

// TestExhaustedBudgetSentinel checks the negative-budget sentinel: every
// cross-product combiner must abort before generating a single candidate,
// returning an empty, truncated result. This is what the optimizer passes
// when the memory limit is already fully consumed.
func TestExhaustedBudgetSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := randomRList(rng, 10)
	b := randomRList(rng, 10)
	set, truncated := LStack(a, b, -1)
	if !truncated || set.Size() != 0 {
		t.Fatalf("LStack sentinel: truncated=%v size=%d, want true/0", truncated, set.Size())
	}
	l, truncated := LStack(a, b, 0)
	if truncated {
		t.Fatal("unlimited LStack truncated")
	}
	if set, truncated := LNotch(l, b, -1); !truncated || set.Size() != 0 {
		t.Fatalf("LNotch sentinel: truncated=%v size=%d", truncated, set.Size())
	}
	if set, truncated := LBottom(l, b, -1); !truncated || set.Size() != 0 {
		t.Fatalf("LBottom sentinel: truncated=%v size=%d", truncated, set.Size())
	}
	if list, truncated := Close(l, b, -1); !truncated || len(list) != 0 {
		t.Fatalf("Close sentinel: truncated=%v len=%d", truncated, len(list))
	}
}

// TestSentinelIdenticalResultsOtherwise pins that a positive or zero budget
// is unaffected by the sentinel plumbing and the preallocated buffers:
// results must match the historical behavior exactly.
func TestSentinelIdenticalResultsOtherwise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		a := randomRList(rng, 3+rng.Intn(12))
		b := randomRList(rng, 3+rng.Intn(12))
		c := randomRList(rng, 3+rng.Intn(12))
		l, truncated := LStack(a, b, 0)
		if truncated {
			t.Fatal("unlimited LStack truncated")
		}
		closed, truncated := Close(l, c, 0)
		if truncated {
			t.Fatal("unlimited Close truncated")
		}
		if err := closed.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
