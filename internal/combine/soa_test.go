package combine

import (
	"math/rand"
	"testing"

	"floorplan/internal/shape"
)

// TestMergeColsMatchesCuts pins the structure-of-arrays merge to the
// list-based cuts in both orientations, including empty operands.
func TestMergeColsMatchesCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var dst, ca, cb shape.RCols
	for trial := 0; trial < 200; trial++ {
		a := randomRList(rng, rng.Intn(20))
		b := randomRList(rng, rng.Intn(20))
		ca.SetList(a)
		cb.SetList(b)
		for _, vertical := range []bool{true, false} {
			var want shape.RList
			if vertical {
				want = VCut(a, b)
			} else {
				want = HCut(a, b)
			}
			MergeCols(&dst, &ca, &cb, vertical)
			got := dst.RList()
			if err := got.Validate(); len(got) > 0 && err != nil {
				t.Fatalf("trial %d vertical=%v: non-canonical merge: %v", trial, vertical, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d vertical=%v:\n got %v\nwant %v", trial, vertical, got, want)
			}
		}
	}
}

// BenchmarkCombineMerge measures the canonical two-pointer merge on two
// large staircases — the inner loop of every slicing cut.
func BenchmarkCombineMerge(b *testing.B) {
	a := staircase(4096, 3)
	c := staircase(4096, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := VCut(a, c); len(got) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkMergeCols measures the same merge on the structure-of-arrays
// accumulators the Stockmeyer evaluator folds through.
func BenchmarkMergeCols(b *testing.B) {
	var dst, ca, cb shape.RCols
	ca.SetList(staircase(4096, 3))
	cb.SetList(staircase(4096, 5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeCols(&dst, &ca, &cb, true)
		if dst.Len() == 0 {
			b.Fatal("empty merge")
		}
	}
}

// staircase builds a canonical n-step R-list with the given step size.
func staircase(n int, step int64) shape.RList {
	impls := make([]shape.RImpl, n)
	for i := range impls {
		impls[i] = shape.RImpl{W: int64(n-i) * step, H: int64(i+1) * step}
	}
	return shape.MustRList(impls)
}
