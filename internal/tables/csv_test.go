package tables

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func sampleTable() *Table {
	plain := Outcome{OK: false, M: 300144, CPU: 17 * time.Second}
	return &Table{
		Number:    4,
		Floorplan: "FP4",
		Modules:   245,
		Config:    DefaultConfig(),
		Rows: []Row{
			{
				Case:  Case{ID: 1, N: 20, Aspect: 6, Seed: 1},
				Ref:   Outcome{OK: true, M: 113710, CPU: 1450 * time.Millisecond, Area: 3836461896},
				Plain: &plain,
				Sel: []SelRun{
					{K: 1000, Out: Outcome{OK: true, M: 98611, CPU: 1500 * time.Millisecond, Area: 3859620099}, Delta: 0.6037, HasDelta: true},
					{K: 2000, Out: Outcome{OK: false, M: 300500, CPU: 2 * time.Second}},
				},
			},
		},
	}
}

func TestCSVWellFormed(t *testing.T) {
	out, err := sampleTable().CSV()
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(out))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, out)
	}
	// Header + ref + plain + 2 sel rows.
	if len(records) != 5 {
		t.Fatalf("%d records, want 5:\n%s", len(records), out)
	}
	header := records[0]
	if header[0] != "table" || header[len(header)-1] != "delta_pct" {
		t.Fatalf("header = %v", header)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			t.Fatalf("record %d has %d fields, want %d", i, len(rec), len(header))
		}
	}
	// The ref row carries the fixed K1 of Table 4.
	if records[1][6] != "ref" || records[1][7] != "40" {
		t.Fatalf("ref row = %v", records[1])
	}
	// The plain row is marked and failed.
	if records[2][6] != "plain" || records[2][8] != "false" {
		t.Fatalf("plain row = %v", records[2])
	}
	// A successful selection row has area and delta.
	if records[3][11] == "" || records[3][12] == "" {
		t.Fatalf("sel row missing area/delta: %v", records[3])
	}
	// A failed selection row has neither.
	if records[4][11] != "" || records[4][12] != "" {
		t.Fatalf("failed sel row should have empty area/delta: %v", records[4])
	}
}

func TestCSVTables13HaveEmptyRefK(t *testing.T) {
	tbl := sampleTable()
	tbl.Number = 1
	tbl.Rows[0].Plain = nil
	out, err := tbl.CSV()
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if records[1][7] != "" {
		t.Fatalf("table 1 ref K should be empty, got %q", records[1][7])
	}
}
