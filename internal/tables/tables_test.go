package tables

import (
	"strings"
	"testing"
	"time"

	"floorplan/internal/gen"
)

// miniConfig keeps unit tests fast: small modules, small floorplan rows.
func miniConfig() Config {
	return Config{
		MemoryLimit: 0,
		MinArea:     2000,
		MaxArea:     20000,
		S:           100,
		Theta:       0,
	}
}

func TestPaperCasesStructure(t *testing.T) {
	for table := 1; table <= 4; table++ {
		cases, fp, err := paperCases(table)
		if err != nil {
			t.Fatal(err)
		}
		if len(cases) != 4 {
			t.Fatalf("table %d: %d cases, want 4", table, len(cases))
		}
		wantFP := map[int]string{1: "FP1", 2: "FP2", 3: "FP3", 4: "FP4"}[table]
		if fp != wantFP {
			t.Fatalf("table %d: floorplan %s, want %s", table, fp, wantFP)
		}
		for i, c := range cases {
			if c.ID != i+1 {
				t.Errorf("table %d case %d: ID %d", table, i, c.ID)
			}
			if c.N != 20 && c.N != 40 {
				t.Errorf("table %d case %d: N=%d", table, i, c.N)
			}
			// The paper's K1 sweeps.
			if table != 4 {
				want := "[20 30 40]"
				if c.N == 40 {
					want = "[40 50 60]"
				}
				if got := sliceStr(c.K1s); got != want {
					t.Errorf("table %d case %d: K1s %s, want %s", table, i, got, want)
				}
			} else {
				if sliceStr(c.K1s) != "[40]" || sliceStr(c.K2s) != "[1000 1500 2000]" {
					t.Errorf("table 4 case %d: K1s %v K2s %v", i, c.K1s, c.K2s)
				}
			}
		}
	}
	if _, _, err := paperCases(5); err == nil {
		t.Error("table 5 accepted")
	}
	if _, err := Run(0, DefaultConfig()); err == nil {
		t.Error("table 0 accepted")
	}
}

func sliceStr(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = itoa(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var digits []byte
	for x > 0 {
		digits = append([]byte{byte('0' + x%10)}, digits...)
		x /= 10
	}
	return string(digits)
}

// TestRunRowMini exercises one full table row on a small module set and
// checks the structural invariants the paper tables rest on.
func TestRunRowMini(t *testing.T) {
	tree, err := gen.ByName("FP1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := miniConfig()
	c := Case{ID: 1, N: 8, Aspect: 4, Seed: 1, K1s: []int{4, 6}}
	row, err := runRow(1, tree, c, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Ref.OK {
		t.Fatal("reference run failed without a limit")
	}
	if len(row.Sel) != 2 {
		t.Fatalf("%d selection runs", len(row.Sel))
	}
	for _, s := range row.Sel {
		if !s.Out.OK {
			t.Fatalf("K1=%d failed", s.K)
		}
		if !s.HasDelta {
			t.Fatalf("K1=%d missing delta", s.K)
		}
		if s.Delta < 0 {
			t.Fatalf("K1=%d: selection beat the optimum (%.3f%%)", s.K, s.Delta)
		}
		if s.Out.M > row.Ref.M {
			t.Fatalf("K1=%d: selection increased M: %d > %d", s.K, s.Out.M, row.Ref.M)
		}
	}
	// Tighter limits use no more memory.
	if row.Sel[0].Out.M > row.Sel[1].Out.M+row.Sel[1].Out.M/4 {
		t.Logf("note: K1=%d M=%d vs K1=%d M=%d", row.Sel[0].K, row.Sel[0].Out.M, row.Sel[1].K, row.Sel[1].Out.M)
	}
}

// TestRunRowTable4Mini checks the Table 4 row logic (R-only reference,
// K2 sweep) on a small FP1 stand-in tree via runRow's table-4 branch.
func TestRunRowTable4Mini(t *testing.T) {
	tree, err := gen.ByName("FP1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := miniConfig()
	c := Case{ID: 1, N: 8, Aspect: 4, Seed: 2, K1s: []int{40}, K2s: []int{50, 200}}
	row, err := runRow(4, tree, c, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Ref.OK {
		t.Fatal("R-only reference failed")
	}
	if len(row.Sel) != 2 {
		t.Fatalf("%d K2 runs", len(row.Sel))
	}
	for _, s := range row.Sel {
		if !s.Out.OK || !s.HasDelta {
			t.Fatalf("K2=%d: %+v", s.K, s)
		}
		if s.Out.M > row.Ref.M {
			t.Fatalf("K2=%d increased M: %d > %d", s.K, s.Out.M, row.Ref.M)
		}
	}
}

// TestMemoryFailureRow checks the "> M" reporting path.
func TestMemoryFailureRow(t *testing.T) {
	tree, err := gen.ByName("FP1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := miniConfig()
	cfg.MemoryLimit = 500
	c := Case{ID: 1, N: 8, Aspect: 4, Seed: 1, K1s: []int{4}}
	row, err := runRow(1, tree, c, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Ref.OK {
		t.Fatal("plain run should exceed a 500-implementation limit")
	}
	if row.Ref.M <= 500 {
		t.Fatalf("failed run must report the over-limit count, got %d", row.Ref.M)
	}
	// Selection runs under the same limit should still be reported (they
	// may pass or fail), and deltas must be absent without a reference.
	for _, s := range row.Sel {
		if s.HasDelta {
			t.Fatal("delta must be unavailable when the reference failed")
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Number:    1,
		Floorplan: "FP1",
		Modules:   25,
		RefLabel:  "[9]",
		SelLabel:  "[9]+R_Selection",
		Config:    DefaultConfig(),
		Rows: []Row{
			{
				Case: Case{ID: 1, N: 20},
				Ref:  Outcome{OK: true, M: 67871, CPU: 16200 * time.Millisecond, Area: 1000},
				Sel: []SelRun{
					{K: 20, Out: Outcome{OK: true, M: 15834, CPU: 5300 * time.Millisecond, Area: 1012}, Delta: 1.21, HasDelta: true},
					{K: 30, Out: Outcome{OK: false, M: 400001}},
				},
			},
		},
	}
	out := tbl.Format()
	for _, want := range []string{"Table 1", "FP1", "25 modules", "67871", "1.21%", "> 400001", "-", "K1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Table 4 uses the K2 column header.
	tbl.Number = 4
	if !strings.Contains(tbl.Format(), "K2") {
		t.Error("table 4 should use a K2 column")
	}
}

func TestOutcomeString(t *testing.T) {
	ok := Outcome{OK: true, M: 100, CPU: time.Second}
	if !strings.Contains(ok.String(), "M=100") {
		t.Errorf("ok outcome: %s", ok)
	}
	fail := Outcome{OK: false, M: 999}
	if !strings.Contains(fail.String(), "M>999") || !strings.Contains(fail.String(), "out of memory") {
		t.Errorf("fail outcome: %s", fail)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MemoryLimit != 300000 {
		t.Errorf("calibrated limit = %d, want 300000 (see EXPERIMENTS.md)", cfg.MemoryLimit)
	}
	if cfg.S == 0 || cfg.Theta == 0 {
		t.Error("Section 5 knobs should default on")
	}
}
