package tables

import (
	"encoding/json"
	"testing"

	"floorplan/internal/telemetry"
)

// TestRunCasesTelemetry runs a mini grid with a collector attached and
// checks the cell-level plumbing: one cell counter and one cell span per
// optimizer run, per-cell wall/peak/generated columns filled from the
// shard, and the finished Table embedding a report that survives the JSON
// round trip.
func TestRunCasesTelemetry(t *testing.T) {
	cfg := miniConfig()
	cfg.Telemetry = telemetry.New()
	cfg.Workers = 2
	cases := []Case{
		{ID: 1, N: 6, Aspect: 4, Seed: 1, K1s: []int{4, 5}},
		{ID: 2, N: 6, Aspect: 5, Seed: 2, K1s: []int{4}},
	}
	tbl, err := RunCases(1, "FP1", cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 cells for case 1's sweep + 1 for case 2's, plus one reference each.
	const wantCells = 5
	if got := cfg.Telemetry.Counter(telemetry.CtrCells); got != wantCells {
		t.Errorf("cells counter = %d, want %d", got, wantCells)
	}
	var cellSpans int
	for _, s := range cfg.Telemetry.Spans() {
		if s.Cat == "cell" {
			cellSpans++
			if s.Track != 1 && s.Track != 2 {
				t.Errorf("cell span %q on track %d, want the case ID", s.Name, s.Track)
			}
		}
	}
	if cellSpans != wantCells {
		t.Errorf("%d cell spans, want %d", cellSpans, wantCells)
	}
	for _, row := range tbl.Rows {
		outs := []Outcome{row.Ref}
		for _, s := range row.Sel {
			outs = append(outs, s.Out)
		}
		for _, o := range outs {
			if o.Generated <= 0 {
				t.Errorf("case %d: cell has no generated count", row.Case.ID)
			}
			if o.PeakStored != o.M {
				t.Errorf("case %d: collector peak %d != stats M %d on a successful run",
					row.Case.ID, o.PeakStored, o.M)
			}
		}
	}
	if tbl.Telemetry == nil {
		t.Fatal("table did not embed a telemetry report")
	}
	data, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Telemetry *telemetry.Report `json:"telemetry"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Telemetry == nil || doc.Telemetry.Schema != telemetry.Schema {
		t.Fatalf("embedded report missing or wrong schema: %+v", doc.Telemetry)
	}
	if doc.Telemetry.Counters["tables.cells"] != wantCells {
		t.Errorf("embedded report cells = %d, want %d", doc.Telemetry.Counters["tables.cells"], wantCells)
	}
}
