package tables

import (
	"fmt"
	"strings"
	"time"

	"floorplan/internal/gen"
	"floorplan/internal/selection"
)

// AblationUniform quantifies the value of the paper's CSPP-optimal
// R_Selection against naive uniform subsampling: same floorplan (FP1),
// same module set, same limits — only the selection rule differs. The
// paper's algorithm should match or beat uniform subsampling in area at
// every K1, at identical memory.
func AblationUniform(cfg Config) (string, error) {
	tree, err := gen.ByName("FP1")
	if err != nil {
		return "", err
	}
	c := Case{ID: 3, N: 40, Aspect: 6, Seed: 3}
	lib, err := caseLibrary(tree, c, cfg)
	if err != nil {
		return "", err
	}
	ref := runOnce(tree, lib, selection.Policy{}, cfg, "ablation ref", c.ID)
	if !ref.OK {
		return "", fmt.Errorf("tables: ablation reference run failed")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — optimal R_Selection vs uniform subsampling (FP1, N=%d)\n", c.N)
	fmt.Fprintf(&b, "reference [9]: area %d, M=%d, CPU %.2fs\n\n", ref.Area, ref.M, ref.CPU.Seconds())
	fmt.Fprintf(&b, "%-5s | %-28s | %-28s\n", "K1", "optimal (paper)", "uniform")
	fmt.Fprintf(&b, "%-5s | %-12s %-15s | %-12s %-15s\n", "", "M", "area delta", "M", "area delta")
	fmt.Fprintln(&b, strings.Repeat("-", 70))
	for _, k1 := range []int{10, 20, 40, 60} {
		opt := runOnce(tree, lib, selection.Policy{K1: k1}, cfg, fmt.Sprintf("ablation opt K1=%d", k1), c.ID)
		uni := runOnce(tree, lib, selection.Policy{K1: k1, RUniform: true}, cfg, fmt.Sprintf("ablation uni K1=%d", k1), c.ID)
		fmt.Fprintf(&b, "%-5d | %-12d %-15s | %-12d %-15s\n",
			k1, opt.M, deltaStr(opt, ref), uni.M, deltaStr(uni, ref))
	}
	fmt.Fprintln(&b, "\n(area delta is relative to the unrestricted optimum; lower is better)")
	return b.String(), nil
}

func deltaStr(o, ref Outcome) string {
	if !o.OK || !ref.OK {
		return "-"
	}
	return fmt.Sprintf("+%.3f%%", 100*float64(o.Area-ref.Area)/float64(ref.Area))
}

// AblationThetaS sweeps the paper's two Section 5 speed-up knobs on an FP4
// case: the θ trigger (only run L_Selection when K2/X < θ) and the
// heuristic pre-reduction threshold S.
func AblationThetaS(cfg Config) (string, error) {
	tree, err := gen.ByName("FP4")
	if err != nil {
		return "", err
	}
	c := Case{ID: 1, N: 20, Aspect: 6, Seed: 1}
	lib, err := caseLibrary(tree, c, cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — θ and S sensitivity (FP4, N=%d, K1=40, K2=1000)\n\n", c.N)
	fmt.Fprintf(&b, "%-8s %-6s | %-10s %-8s %-10s %-12s\n", "theta", "S", "M", "L-sels", "CPU", "area")
	fmt.Fprintln(&b, strings.Repeat("-", 62))
	for _, theta := range []float64{0, 0.25, 0.5, 0.75} {
		for _, s := range []int{200, 500} {
			p := selection.Policy{K1: 40, K2: 1000, Theta: theta, S: s}
			out := runOnce(tree, lib, p, cfg, fmt.Sprintf("ablation theta=%.2f S=%d", theta, s), c.ID)
			area := "-"
			if out.OK {
				area = fmt.Sprintf("%d", out.Area)
			}
			fmt.Fprintf(&b, "%-8.2f %-6d | %-10d %-8d %-10s %-12s\n",
				theta, s, out.M, out.LSel, out.CPU.Round(time.Millisecond), area)
		}
	}
	fmt.Fprintln(&b, "\nθ=0 always runs L_Selection when X > K2; larger θ skips borderline blocks.")
	return b.String(), nil
}
