package tables

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestRunCasesMiniTable exercises the full table protocol (reference +
// sweep + formatting + CSV) at unit-test scale.
func TestRunCasesMiniTable(t *testing.T) {
	cfg := miniConfig()
	cases := []Case{
		{ID: 1, N: 6, Aspect: 4, Seed: 1, K1s: []int{4, 5}},
		{ID: 2, N: 6, Aspect: 5, Seed: 2, K1s: []int{4, 5}},
	}
	tbl, err := RunCases(1, "FP1", cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !row.Ref.OK {
			t.Fatalf("case %d reference failed", row.Case.ID)
		}
		for _, s := range row.Sel {
			if !s.Out.OK || !s.HasDelta || s.Delta < 0 {
				t.Fatalf("case %d K1=%d: %+v", row.Case.ID, s.K, s)
			}
		}
	}
	out := tbl.Format()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "FP1") {
		t.Fatalf("format:\n%s", out)
	}
	csvOut, err := tbl.CSV()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 cases × (1 ref + 2 sel) = 7 lines.
	if got := strings.Count(strings.TrimSpace(csvOut), "\n") + 1; got != 7 {
		t.Fatalf("CSV has %d lines, want 7:\n%s", got, csvOut)
	}
}

// TestRunCasesMiniTable4 exercises the Table 4 protocol, including the
// plain-[9] verification line, at unit-test scale.
func TestRunCasesMiniTable4(t *testing.T) {
	cfg := miniConfig()
	cfg.MemoryLimit = 2500 // small enough that plain [9] fails on FP1/N=8
	cases := []Case{{ID: 1, N: 8, Aspect: 5, Seed: 3, K2s: []int{40, 80}}}
	tbl, err := RunCases(4, "FP1", cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	if row.Plain == nil {
		t.Fatal("table 4 must include the plain [9] verification run")
	}
	if row.Plain.OK {
		t.Skip("plain [9] fit in the mini budget; calibration-dependent")
	}
	out := tbl.Format()
	if !strings.Contains(out, "[9] alone, case 1: out of memory") {
		t.Fatalf("missing plain-failure line:\n%s", out)
	}
}

func TestRunCasesRejectsBadInputs(t *testing.T) {
	if _, err := RunCases(7, "FP1", nil, miniConfig()); err == nil {
		t.Error("table 7 accepted")
	}
	if _, err := RunCases(1, "FP9", nil, miniConfig()); err == nil {
		t.Error("unknown floorplan accepted")
	}
}

// TestAblationsMini runs both ablations at reduced scale so their plumbing
// (including formatting) is covered by the unit suite.
func TestAblationsMini(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs take seconds")
	}
	cfg := miniConfig()
	uni, err := AblationUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform", "optimal", "K1"} {
		if !strings.Contains(uni, want) {
			t.Fatalf("uniform ablation missing %q:\n%s", want, uni)
		}
	}
	th, err := AblationThetaS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"theta", "L-sels"} {
		if !strings.Contains(th, want) {
			t.Fatalf("theta ablation missing %q:\n%s", want, th)
		}
	}
}

// zeroCPUs strips the wall-clock columns, the only fields allowed to differ
// between worker counts.
func zeroCPUs(tbl *Table) {
	for i := range tbl.Rows {
		tbl.Rows[i].Ref.CPU, tbl.Rows[i].Ref.Wall = 0, 0
		if tbl.Rows[i].Plain != nil {
			tbl.Rows[i].Plain.CPU, tbl.Rows[i].Plain.Wall = 0, 0
		}
		for j := range tbl.Rows[i].Sel {
			tbl.Rows[i].Sel[j].Out.CPU, tbl.Rows[i].Sel[j].Out.Wall = 0, 0
		}
	}
	tbl.Config.Workers = 0
	tbl.Config.Progress = nil
}

// TestRunCasesWorkersEquivalent runs the same mini grid sequentially and
// with a parallel worker pool: every cell is an independent deterministic
// optimization, so the tables must agree exactly outside the CPU columns.
func TestRunCasesWorkersEquivalent(t *testing.T) {
	cases := []Case{
		{ID: 1, N: 6, Aspect: 4, Seed: 1, K1s: []int{4, 5}},
		{ID: 2, N: 6, Aspect: 5, Seed: 2, K1s: []int{4, 5}},
	}
	seqCfg := miniConfig()
	seqCfg.Workers = 1
	ref, err := RunCases(1, "FP1", cases, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		cfg := miniConfig()
		cfg.Workers = w
		var progress bytes.Buffer
		cfg.Progress = &progress
		got, err := RunCases(1, "FP1", cases, cfg)
		if err != nil {
			t.Fatal(err)
		}
		zeroCPUs(ref)
		zeroCPUs(got)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers %d: tables diverged:\n%+v\nvs\n%+v", w, got, ref)
		}
		// 2 cases × (1 ref + 2 sweeps) = 6 atomic progress lines.
		lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
		if len(lines) != 6 {
			t.Fatalf("workers %d: %d progress lines, want 6:\n%s", w, len(lines), progress.String())
		}
		for _, l := range lines {
			if !strings.Contains(l, "M=") {
				t.Fatalf("workers %d: garbled progress line %q", w, l)
			}
		}
	}
}

// TestRunCasesWorkersTable4 checks the parallel path through the Table 4
// protocol (reference + plain + K2 sweep), including a memory-limit
// failure cell.
func TestRunCasesWorkersTable4(t *testing.T) {
	cfg := miniConfig()
	cfg.MemoryLimit = 2500
	cases := []Case{{ID: 1, N: 8, Aspect: 5, Seed: 3, K2s: []int{40, 80}}}
	seqCfg := cfg
	seqCfg.Workers = 1
	ref, err := RunCases(4, "FP1", cases, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	got, err := RunCases(4, "FP1", cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	zeroCPUs(ref)
	zeroCPUs(got)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("tables diverged:\n%+v\nvs\n%+v", got, ref)
	}
}
