package tables

import (
	"encoding/json"
	"testing"
)

func TestJSONRoundTrips(t *testing.T) {
	cfg := miniConfig()
	cfg.MemoryLimit = 2500
	cases := []Case{{ID: 1, N: 8, Aspect: 5, Seed: 3, K2s: []int{40, 80}}}
	tbl, err := RunCases(4, "FP1", cases, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tbl.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Table       int    `json:"table"`
		Floorplan   string `json:"floorplan"`
		Modules     int    `json:"modules"`
		MemoryLimit int64  `json:"memory_limit"`
		Rows        []struct {
			Case int `json:"case"`
			N    int `json:"n"`
			Ref  struct {
				OK    bool  `json:"ok"`
				M     int64 `json:"m"`
				CPUms int64 `json:"cpu_ms"`
				Area  int64 `json:"area"`
			} `json:"ref"`
			Plain *struct {
				OK   bool  `json:"ok"`
				M    int64 `json:"m"`
				Area int64 `json:"area"`
			} `json:"plain"`
			Sel []struct {
				K        int      `json:"k"`
				DeltaPct *float64 `json:"delta_pct"`
				Out      struct {
					OK bool  `json:"ok"`
					M  int64 `json:"m"`
				} `json:"out"`
			} `json:"sel"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	if doc.Table != 4 || doc.Floorplan != "FP1" || doc.MemoryLimit != 2500 {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Rows) != 1 {
		t.Fatalf("%d rows", len(doc.Rows))
	}
	row := doc.Rows[0]
	if row.Case != 1 || row.N != 8 {
		t.Fatalf("case header wrong: %+v", row)
	}
	if row.Plain == nil {
		t.Fatal("table 4 JSON must include the plain run")
	}
	if row.Plain.OK {
		t.Fatal("plain [9] should have hit the memory limit in this fixture")
	}
	if row.Plain.Area != 0 {
		t.Fatal("failed runs must omit area")
	}
	if len(row.Sel) != 2 || row.Sel[0].K != 40 || row.Sel[1].K != 80 {
		t.Fatalf("sel sweep wrong: %+v", row.Sel)
	}
	for _, s := range row.Sel {
		if s.Out.OK && row.Ref.OK && s.DeltaPct == nil {
			t.Fatalf("K=%d: missing delta despite both runs succeeding", s.K)
		}
	}
	// The numbers must agree with the in-memory table.
	if row.Ref.M != tbl.Rows[0].Ref.M || row.Ref.OK != tbl.Rows[0].Ref.OK {
		t.Fatalf("ref mismatch: %+v vs %+v", row.Ref, tbl.Rows[0].Ref)
	}
}
