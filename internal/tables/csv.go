package tables

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// CSV renders the table as machine-readable CSV, one line per optimizer
// run. Columns:
//
//	table, floorplan, case, N, aspect, seed, run, K, ok, M, cpu_ms,
//	area, delta_pct
//
// run is "ref" for the row's reference configuration and "sel" for the
// swept selection runs; K is empty for "ref" rows of Tables 1–3 and 40
// (the fixed K1) for Table 4; delta_pct is empty when unavailable.
func (t *Table) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := []string{
		"table", "floorplan", "case", "N", "aspect", "seed",
		"run", "K", "ok", "M", "cpu_ms", "area", "delta_pct",
	}
	if err := w.Write(header); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		base := []string{
			strconv.Itoa(t.Number),
			t.Floorplan,
			strconv.Itoa(row.Case.ID),
			strconv.Itoa(row.Case.N),
			strconv.FormatFloat(row.Case.Aspect, 'g', -1, 64),
			strconv.FormatInt(row.Case.Seed, 10),
		}
		refK := ""
		if t.Number == 4 {
			refK = "40"
		}
		if err := w.Write(append(append([]string{}, base...), outcomeCells("ref", refK, row.Ref, "")...)); err != nil {
			return "", err
		}
		if row.Plain != nil {
			if err := w.Write(append(append([]string{}, base...), outcomeCells("plain", "", *row.Plain, "")...)); err != nil {
				return "", err
			}
		}
		for _, s := range row.Sel {
			delta := ""
			if s.HasDelta {
				delta = fmt.Sprintf("%.4f", s.Delta)
			}
			cells := outcomeCells("sel", strconv.Itoa(s.K), s.Out, delta)
			if err := w.Write(append(append([]string{}, base...), cells...)); err != nil {
				return "", err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return b.String(), nil
}

func outcomeCells(run, k string, o Outcome, delta string) []string {
	area := ""
	if o.OK {
		area = strconv.FormatInt(o.Area, 10)
	}
	return []string{
		run,
		k,
		strconv.FormatBool(o.OK),
		strconv.FormatInt(o.M, 10),
		strconv.FormatInt(o.CPU.Milliseconds(), 10),
		area,
		delta,
	}
}
