// Package tables regenerates the paper's evaluation: Tables 1–4 of
// Wang/Wong TR-91-26, plus this repository's ablation experiments.
//
// Each paper table runs four test cases (four different module sets) on one
// of the floorplans FP1–FP4. A case is (N, aspect, seed): N matches the
// paper's N column; the aspect-ratio spread and seed realize "4 different
// sets of modules" and are calibrated so that the paper's qualitative
// outcomes reproduce on this substrate — which cases run out of memory,
// who wins, and by roughly what factor. EXPERIMENTS.md records the
// calibration and the paper-vs-measured comparison.
//
// Absolute implementation counts depend on the (unavailable) exact module
// sets and Figure 8 artwork; on this substrate the non-redundant sets are a
// few times smaller than the paper's, so the memory limit is calibrated to
// 300,000 implementations (the paper's machine died above ~800,000) to land
// the out-of-memory crossover on the same cases. See DESIGN.md §3 and
// EXPERIMENTS.md.
package tables

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/telemetry"
)

// Case describes one of the paper's "test case #" rows.
type Case struct {
	ID     int
	N      int     // non-redundant implementations per module
	Aspect float64 // module aspect-ratio spread (module-set diversity)
	Seed   int64   // module-set seed
	// K1s / K2s are the selection limits swept in the row (three per row in
	// the paper).
	K1s []int
	K2s []int
}

// Config carries the harness-wide knobs.
type Config struct {
	// MemoryLimit is the stored-implementation cap modelling the paper
	// machine's memory; 0 disables failure reproduction.
	MemoryLimit int64
	// MinArea/MaxArea bound module areas.
	MinArea, MaxArea int64
	// S is the heuristic pre-reduction threshold per L-list (Section 5).
	S int
	// Theta is the L_Selection trigger ratio (Section 5).
	Theta float64
	// Progress, when non-nil, receives one line per completed run. With
	// Workers > 1 lines arrive in completion order, not case order; each
	// line is still written atomically.
	Progress io.Writer
	// Workers bounds how many optimizer runs of the table grid execute
	// concurrently (0 means runtime.GOMAXPROCS(0), 1 is fully sequential).
	// Every cell of a table — reference, plain and swept selection runs of
	// every case — is an independent optimization, so the grid
	// parallelizes perfectly and the results are identical for any worker
	// count; only the CPU columns (wall-clock of each run) vary with load.
	Workers int
	// Telemetry, when non-nil, receives every cell's metrics: each cell
	// runs its optimizer against a Shard of this collector, the shards are
	// merged back in, and per-cell wall times and spans (Track = case ID)
	// land in the runtime section. The finished Table carries a Report
	// snapshot for embedding in machine-readable output.
	Telemetry *telemetry.Collector
}

// DefaultConfig returns the calibrated configuration used by fpbench and
// the benchmarks.
func DefaultConfig() Config {
	return Config{
		MemoryLimit: 300000,
		MinArea:     2000000,
		MaxArea:     20000000,
		S:           500,
		Theta:       0.5,
	}
}

// Outcome is one optimizer run's result in a table row.
type Outcome struct {
	OK      bool
	M       int64 // the paper's M; when !OK the count at abort ("> M")
	CPU     time.Duration
	Area    int64 // valid when OK
	MaxLSet int
	// RSel and LSel count selection invocations during the run.
	RSel, LSel int
	// Wall is the cell's end-to-end wall time, including library setup and
	// harness overhead (CPU covers only the optimizer's evaluation phase).
	Wall time.Duration
	// Generated and PeakStored are sourced from the cell's telemetry shard
	// when Config.Telemetry is set (zero otherwise): total implementations
	// generated across all nodes, and the collector's view of the memtrack
	// peak (equal to M on successful runs).
	Generated, PeakStored int64
}

// String formats the outcome's M column as the paper does.
func (o Outcome) String() string {
	if o.OK {
		return fmt.Sprintf("M=%d CPU=%s", o.M, o.CPU.Round(time.Millisecond))
	}
	return fmt.Sprintf("M>%d (out of memory) CPU=%s", o.M, o.CPU.Round(time.Millisecond))
}

// SelRun is one selection configuration's outcome within a row.
type SelRun struct {
	K   int // K1 for Tables 1–3, K2 for Table 4
	Out Outcome
	// Delta is (A_sel - A_ref)/A_ref in percent; valid only when both the
	// reference run and this run succeeded.
	Delta    float64
	HasDelta bool
}

// Row is one test case's results.
type Row struct {
	Case Case
	// Ref is the row's reference run: plain [9] for Tables 1–3, [9]+
	// R_Selection for Table 4.
	Ref Outcome
	// Plain is set only for Table 4: the plain [9] run backing the paper's
	// note that "[9] failed to run for each of these test examples".
	Plain *Outcome
	// Sel holds the swept selection runs.
	Sel []SelRun
}

// Table is a regenerated paper table.
type Table struct {
	Number    int
	Floorplan string
	Modules   int
	RefLabel  string // "[9]" or "[9]+R_Selection"
	SelLabel  string // "[9]+R_Selection" or "[9]+R_Selection+L_Selection"
	Rows      []Row
	Config    Config
	// Telemetry is a report snapshot of Config.Telemetry taken when the
	// table finished; nil when no collector was configured. JSON embeds it.
	Telemetry *telemetry.Report
}

// paperCases returns the calibrated case matrix for one of the paper's
// tables. The K1 sweeps follow the paper exactly: {20,30,40} for N=20 rows
// and {40,50,60} for N=40 rows; Table 4 fixes K1=40 and sweeps
// K2 ∈ {1000,1500,2000}.
func paperCases(table int) ([]Case, string, error) {
	k1For := func(n int) []int {
		if n == 20 {
			return []int{20, 30, 40}
		}
		return []int{40, 50, 60}
	}
	mk := func(specs [][3]float64) []Case {
		out := make([]Case, len(specs))
		for i, s := range specs {
			n := int(s[0])
			out[i] = Case{ID: i + 1, N: n, Aspect: s[1], Seed: int64(s[2]), K1s: k1For(n)}
		}
		return out
	}
	switch table {
	case 1:
		return mk([][3]float64{{20, 6, 1}, {20, 7, 2}, {40, 6, 3}, {40, 7, 4}}), "FP1", nil
	case 2:
		return mk([][3]float64{{20, 6, 1}, {20, 7, 2}, {40, 5, 3}, {40, 5.5, 4}}), "FP2", nil
	case 3:
		return mk([][3]float64{{20, 5, 1}, {20, 9, 2}, {40, 7, 3}, {40, 8, 4}}), "FP3", nil
	case 4:
		cases := mk([][3]float64{{20, 6, 1}, {20, 7, 2}, {40, 9, 3}, {40, 10, 4}})
		for i := range cases {
			cases[i].K1s = []int{40}
			cases[i].K2s = []int{1000, 1500, 2000}
		}
		return cases, "FP4", nil
	default:
		return nil, "", fmt.Errorf("tables: no table %d in the paper", table)
	}
}

// Run regenerates one of the paper's tables (1–4) with the calibrated case
// matrix.
func Run(table int, cfg Config) (*Table, error) {
	cases, fp, err := paperCases(table)
	if err != nil {
		return nil, err
	}
	return RunCases(table, fp, cases, cfg)
}

// RunCases runs a table's protocol (reference run + selection sweep per
// case) over a custom case matrix and floorplan — the paper tables use
// paperCases; tests and custom studies may substitute smaller ones.
func RunCases(table int, fp string, cases []Case, cfg Config) (*Table, error) {
	if table < 1 || table > 4 {
		return nil, fmt.Errorf("tables: no table %d in the paper", table)
	}
	tree, err := gen.ByName(fp)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Number:    table,
		Floorplan: fp,
		Modules:   tree.ModuleCount(),
		RefLabel:  "[9]",
		SelLabel:  "[9]+R_Selection",
		Config:    cfg,
	}
	if table == 4 {
		t.RefLabel = "[9]+R_Selection (K1=40)"
		t.SelLabel = "[9]+R_Selection+L_Selection"
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		// Fully sequential: runs execute — and report progress — in the
		// table's reading order.
		for _, c := range cases {
			row, err := runRow(table, tree, c, cfg, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, *row)
		}
		if cfg.Telemetry != nil {
			t.Telemetry = cfg.Telemetry.Report()
		}
		return t, nil
	}
	// Every cell in the grid is independent, so all rows launch at once and
	// a shared semaphore bounds how many optimizer runs are in flight. Row
	// goroutines never hold a token themselves — only cell runs do — so a
	// stalled row cannot starve the pool.
	if cfg.Progress != nil {
		cfg.Progress = &syncWriter{w: cfg.Progress}
	}
	sem := make(chan struct{}, workers)
	rows := make([]*Row, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], errs[i] = runRow(table, tree, cases[i], cfg, sem)
		}(i)
	}
	wg.Wait()
	// Report the first error in case order, deterministically.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, *row)
	}
	if cfg.Telemetry != nil {
		t.Telemetry = cfg.Telemetry.Report()
	}
	return t, nil
}

// syncWriter makes each progress line atomic when runs complete
// concurrently.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// runRow runs one case's reference run and selection sweep. With a nil sem
// the cells run sequentially in table order; otherwise each cell runs in its
// own goroutine gated by sem. Deltas are relative to the reference outcome,
// so they are filled in after every cell has finished.
func runRow(table int, tree *plan.Node, c Case, cfg Config, sem chan struct{}) (*Row, error) {
	lib, err := caseLibrary(tree, c, cfg)
	if err != nil {
		return nil, err
	}
	row := &Row{Case: c}

	refPolicy := selection.Policy{}
	if table == 4 {
		refPolicy = selection.Policy{K1: 40}
	}
	type cell struct {
		dst    *Outcome
		policy selection.Policy
		label  string
	}
	cells := []cell{{&row.Ref, refPolicy, fmt.Sprintf("table%d case%d ref", table, c.ID)}}
	if table == 4 {
		row.Plain = &Outcome{}
		cells = append(cells, cell{row.Plain, selection.Policy{}, fmt.Sprintf("table4 case%d plain", c.ID)})
		row.Sel = make([]SelRun, len(c.K2s))
		for i, k2 := range c.K2s {
			row.Sel[i].K = k2
			cells = append(cells, cell{
				&row.Sel[i].Out,
				selection.Policy{K1: 40, K2: k2, Theta: cfg.Theta, S: cfg.S},
				fmt.Sprintf("table4 case%d K2=%d", c.ID, k2),
			})
		}
	} else {
		row.Sel = make([]SelRun, len(c.K1s))
		for i, k1 := range c.K1s {
			row.Sel[i].K = k1
			cells = append(cells, cell{
				&row.Sel[i].Out,
				selection.Policy{K1: k1},
				fmt.Sprintf("table%d case%d K1=%d", table, c.ID, k1),
			})
		}
	}
	if sem == nil {
		for _, j := range cells {
			*j.dst = runOnce(tree, lib, j.policy, cfg, j.label, c.ID)
		}
	} else {
		var wg sync.WaitGroup
		for _, j := range cells {
			wg.Add(1)
			go func(j cell) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				*j.dst = runOnce(tree, lib, j.policy, cfg, j.label, c.ID)
			}(j)
		}
		wg.Wait()
	}
	for i := range row.Sel {
		row.Sel[i] = selRun(row.Sel[i].K, row.Sel[i].Out, row.Ref)
	}
	return row, nil
}

func selRun(k int, out Outcome, ref Outcome) SelRun {
	s := SelRun{K: k, Out: out}
	if out.OK && ref.OK {
		s.Delta = 100 * float64(out.Area-ref.Area) / float64(ref.Area)
		s.HasDelta = true
	}
	return s
}

func caseLibrary(tree *plan.Node, c Case, cfg Config) (optimizer.Library, error) {
	rng := rand.New(rand.NewSource(c.Seed))
	params := gen.ModuleParams{
		N:         c.N,
		MinArea:   cfg.MinArea,
		MaxArea:   cfg.MaxArea,
		MaxAspect: c.Aspect,
	}
	lib, err := gen.Library(rng, tree, params)
	if err != nil {
		return nil, err
	}
	return optimizer.Library(lib), nil
}

func runOnce(tree *plan.Node, lib optimizer.Library, policy selection.Policy, cfg Config, label string, caseID int) Outcome {
	// Each cell records into its own shard so per-cell counters can be read
	// off cleanly before the shard folds into the table-wide collector.
	cell := cfg.Telemetry.Shard()
	cellStart := cfg.Telemetry.Now()
	wallStart := time.Now()
	opts := optimizer.Options{
		Policy:        policy,
		MemoryLimit:   cfg.MemoryLimit,
		SkipPlacement: true,
		// The paper's M column is defined by the sequential bottom-up
		// admission order, and the grid-level parallelism above already
		// saturates the machine, so each cell's optimizer stays
		// single-worker.
		Workers:   1,
		Telemetry: cell,
	}
	o, err := optimizer.New(lib, opts)
	if err != nil {
		// Configuration errors are programming errors in the harness.
		panic(fmt.Sprintf("tables: %s: %v", label, err))
	}
	res, err := o.Run(tree)
	out := Outcome{}
	if res != nil {
		out.M = res.Stats.PeakStored
		out.CPU = res.Stats.Elapsed
		out.MaxLSet = res.Stats.MaxLSet
		out.RSel = res.Stats.RSelections
		out.LSel = res.Stats.LSelections
	}
	if err == nil {
		out.OK = true
		out.Area = res.Best.Area()
	} else if !optimizer.IsMemoryLimit(err) {
		panic(fmt.Sprintf("tables: %s: unexpected failure: %v", label, err))
	}
	out.Wall = time.Since(wallStart)
	if cell.Enabled() {
		out.Generated = cell.Counter(telemetry.CtrGenerated)
		out.PeakStored = cell.Watermark(telemetry.MaxPeakStored)
		tel := cfg.Telemetry
		tel.Inc(telemetry.CtrCells)
		tel.Record(telemetry.HistCellNs, out.Wall.Nanoseconds())
		tel.RecordSpan(telemetry.Span{
			Name: label, Cat: "cell", Track: caseID,
			Start: cellStart, Dur: tel.Now() - cellStart,
			Args: map[string]int64{
				"peak":      out.PeakStored,
				"generated": out.Generated,
			},
		})
		tel.Merge(cell)
	}
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, "%s: %s\n", label, out)
	}
	return out
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d — %s (%d modules), memory limit %d implementations\n",
		t.Number, t.Floorplan, t.Modules, t.Config.MemoryLimit)
	kCol := "K1"
	deltaCol := "(A_R-A_OPT)/A_OPT"
	if t.Number == 4 {
		kCol = "K2"
		deltaCol = "(A_R+L-A_R)/A_R"
	}
	fmt.Fprintf(&b, "%-5s %-3s %-28s | %-5s %-12s %-10s %s\n",
		"case", "N", t.RefLabel+": M / CPU", kCol, "M", "CPU", deltaCol)
	fmt.Fprintln(&b, strings.Repeat("-", 96))
	for _, row := range t.Rows {
		if row.Plain != nil {
			status := "completed (unexpected)"
			if !row.Plain.OK {
				status = fmt.Sprintf("out of memory (> %d stored)", row.Plain.M)
			}
			fmt.Fprintf(&b, "  [9] alone, case %d: %s after %s\n", row.Case.ID, status, cpu(*row.Plain))
		}
		refM := fmt.Sprintf("%d", row.Ref.M)
		if !row.Ref.OK {
			refM = fmt.Sprintf("> %d", row.Ref.M)
		}
		refCell := fmt.Sprintf("%s / %s", refM, cpu(row.Ref))
		for i, s := range row.Sel {
			lead := fmt.Sprintf("%-5s %-3s %-28s", "", "", "")
			if i == 0 {
				lead = fmt.Sprintf("%-5d %-3d %-28s", row.Case.ID, row.Case.N, refCell)
			}
			mCell := fmt.Sprintf("%d", s.Out.M)
			if !s.Out.OK {
				mCell = fmt.Sprintf("> %d", s.Out.M)
			}
			delta := "-"
			if s.HasDelta {
				delta = fmt.Sprintf("%.2f%%", s.Delta)
			}
			fmt.Fprintf(&b, "%s | %-5d %-12s %-10s %s\n", lead, s.K, mCell, cpu(s.Out), delta)
		}
	}
	return b.String()
}

func cpu(o Outcome) string {
	return fmt.Sprintf("%.2fs", o.CPU.Seconds())
}
