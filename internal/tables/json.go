package tables

import (
	"encoding/json"

	"floorplan/internal/telemetry"
)

// jsonOutcome is one optimizer run in the JSON rendering. M carries the
// paper's M column; when ok is false it is the stored count at abort and
// reads "> M". area is omitted for failed runs. wall_ms is the cell's
// end-to-end wall clock (cpu_ms covers only the evaluation phase);
// generated and peak_stored come from the cell's telemetry shard and are
// omitted when no collector was configured.
type jsonOutcome struct {
	OK         bool  `json:"ok"`
	M          int64 `json:"m"`
	CPUms      int64 `json:"cpu_ms"`
	WallMs     int64 `json:"wall_ms"`
	Area       int64 `json:"area,omitempty"`
	Generated  int64 `json:"generated,omitempty"`
	PeakStored int64 `json:"peak_stored,omitempty"`
}

type jsonSel struct {
	K        int         `json:"k"`
	Out      jsonOutcome `json:"out"`
	DeltaPct *float64    `json:"delta_pct,omitempty"`
}

type jsonRow struct {
	Case   int          `json:"case"`
	N      int          `json:"n"`
	Aspect float64      `json:"aspect"`
	Seed   int64        `json:"seed"`
	Ref    jsonOutcome  `json:"ref"`
	Plain  *jsonOutcome `json:"plain,omitempty"`
	Sel    []jsonSel    `json:"sel"`
}

type jsonTable struct {
	Table       int               `json:"table"`
	Floorplan   string            `json:"floorplan"`
	Modules     int               `json:"modules"`
	MemoryLimit int64             `json:"memory_limit"`
	RefLabel    string            `json:"ref_label"`
	SelLabel    string            `json:"sel_label"`
	Rows        []jsonRow         `json:"rows"`
	Telemetry   *telemetry.Report `json:"telemetry,omitempty"`
}

func toJSONOutcome(o Outcome) jsonOutcome {
	j := jsonOutcome{
		OK:         o.OK,
		M:          o.M,
		CPUms:      o.CPU.Milliseconds(),
		WallMs:     o.Wall.Milliseconds(),
		Generated:  o.Generated,
		PeakStored: o.PeakStored,
	}
	if o.OK {
		j.Area = o.Area
	}
	return j
}

// JSON renders the table as an indented machine-readable document, the
// benchmark harness's structured counterpart to Format/CSV. The layout
// mirrors the paper's: one row per test case with the reference run, the
// optional plain-[9] verification run (Table 4), and the swept selection
// runs with their area deltas in percent.
func (t *Table) JSON() ([]byte, error) {
	doc := jsonTable{
		Table:       t.Number,
		Floorplan:   t.Floorplan,
		Modules:     t.Modules,
		MemoryLimit: t.Config.MemoryLimit,
		RefLabel:    t.RefLabel,
		SelLabel:    t.SelLabel,
		Rows:        make([]jsonRow, 0, len(t.Rows)),
	}
	for _, row := range t.Rows {
		r := jsonRow{
			Case:   row.Case.ID,
			N:      row.Case.N,
			Aspect: row.Case.Aspect,
			Seed:   row.Case.Seed,
			Ref:    toJSONOutcome(row.Ref),
			Sel:    make([]jsonSel, 0, len(row.Sel)),
		}
		if row.Plain != nil {
			p := toJSONOutcome(*row.Plain)
			r.Plain = &p
		}
		for _, s := range row.Sel {
			js := jsonSel{K: s.K, Out: toJSONOutcome(s.Out)}
			if s.HasDelta {
				d := s.Delta
				js.DeltaPct = &d
			}
			r.Sel = append(r.Sel, js)
		}
		doc.Rows = append(doc.Rows, r)
	}
	doc.Telemetry = t.Telemetry
	return json.MarshalIndent(doc, "", "  ")
}
