package plan

import (
	"crypto/sha256"
	"encoding/binary"

	"floorplan/internal/shape"
)

// Per-subtree content addressing for the optimizer's subtree result store.
//
// SubtreeDigests assigns every node of a restructured binary tree a
// Merkle-style SHA-256 digest of the optimization sub-problem it roots: a
// leaf digests its canonical shape list, a composite digests its kind plus
// both child digests. Two nodes receive the same digest exactly when the
// bottom-up shape-curve evaluation below them is the same computation —
// the property the subtree store relies on to splice stored curves across
// requests and across edits of one tree.
//
// The preimages are domain-separated from every other hashed encoding in
// the repository: they start with a tag byte ∈ {0xf0, 0xf1}, while
// AppendCanonical emits a Kind byte (small non-negative) or the 0xff nil
// sentinel first and the full-workload cache key preimage therefore starts
// with the root node's Kind byte. No subtree preimage is a prefix of
// another (every variable-length field is length-prefixed and digests are
// fixed-width), so concatenation ambiguity cannot alias two sub-problems.
//
// Deliberate exclusions, mirroring what evaluation depends on:
//   - Leaf module NAMES are excluded: two leaves whose canonical shape
//     lists are identical byte-for-byte are the same sub-problem, whatever
//     the modules are called. Traceback reads the module name from the
//     tree, never from the evaluated curve, so sharing is safe.
//   - BinClose's Mirror flag is excluded: shape sets are mirror-invariant
//     (evaluation ignores the flag; only placement traceback reflects).
//
// The ctx argument is mixed into every node's preimage and must encode
// everything outside the tree that changes evaluation results — the
// selection policy, plus a format version (see optimizer.substoreContext).

// Digest is the SHA-256 content address of one subtree's sub-problem.
type Digest [32]byte

// Subtree preimage domain tags. These values are reserved: they must not
// collide with any first byte AppendCanonical can emit (node Kind bytes,
// or 0xff for nil), which keeps subtree digests and full-workload cache
// keys in disjoint namespaces even before hashing.
const (
	subtreeLeafTag      = 0xf0
	subtreeCompositeTag = 0xf1
)

// SubtreeDigests computes the digest of every subtree of root, indexed by
// preorder ID (root.HasPreorderIDs must hold; Restructure guarantees it).
// lib supplies each leaf's canonical shape list — the caller must have
// canonicalized the library first, or equal sub-problems with shuffled
// lists will digest apart.
func SubtreeDigests(root *BinNode, ctx []byte, lib Library) []Digest {
	out := make([]Digest, root.Count())
	var buf []byte
	var walk func(b *BinNode) Digest
	walk = func(b *BinNode) Digest {
		if b.Kind == BinLeaf {
			buf = appendLeafPreimage(buf[:0], ctx, lib[b.Module])
		} else {
			// Children are digested before buf is touched, so the
			// shared scratch is safe to reuse across levels.
			l := walk(b.Left)
			r := walk(b.Right)
			buf = appendCompositePreimage(buf[:0], ctx, b.Kind, l, r)
		}
		d := Digest(sha256.Sum256(buf))
		out[b.ID] = d
		return d
	}
	walk(root)
	return out
}

// appendLeafPreimage appends the digest preimage of a leaf with the given
// canonical shape list.
func appendLeafPreimage(dst []byte, ctx []byte, impls []shape.RImpl) []byte {
	dst = append(dst, subtreeLeafTag)
	dst = binary.AppendUvarint(dst, uint64(len(ctx)))
	dst = append(dst, ctx...)
	dst = binary.AppendUvarint(dst, uint64(len(impls)))
	for _, im := range impls {
		dst = binary.AppendVarint(dst, im.W)
		dst = binary.AppendVarint(dst, im.H)
	}
	return dst
}

// appendCompositePreimage appends the digest preimage of a composite node
// combining two already-digested children.
func appendCompositePreimage(dst []byte, ctx []byte, kind BinKind, l, r Digest) []byte {
	dst = append(dst, subtreeCompositeTag)
	dst = binary.AppendUvarint(dst, uint64(len(ctx)))
	dst = append(dst, ctx...)
	dst = append(dst, byte(kind))
	dst = append(dst, l[:]...)
	dst = append(dst, r[:]...)
	return dst
}
