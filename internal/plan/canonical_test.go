package plan

import (
	"bytes"
	"testing"

	"floorplan/internal/shape"
)

func TestAppendCanonicalDistinguishesTrees(t *testing.T) {
	trees := []*Node{
		NewLeaf("a"),
		NewLeaf("b"),
		NewVSlice(NewLeaf("a"), NewLeaf("b")),
		NewHSlice(NewLeaf("a"), NewLeaf("b")),
		NewVSlice(NewLeaf("b"), NewLeaf("a")),
		NewVSlice(NewLeaf("a"), NewLeaf("b"), NewLeaf("c")),
		NewVSlice(NewVSlice(NewLeaf("a"), NewLeaf("b")), NewLeaf("c")),
		NewWheel(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e")),
		NewCCWWheel(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e")),
	}
	seen := make(map[string]int)
	for i, tr := range trees {
		enc := string(tr.AppendCanonical(nil))
		if j, dup := seen[enc]; dup {
			t.Errorf("trees %d and %d encode identically", i, j)
		}
		seen[enc] = i
	}
}

func TestAppendCanonicalIgnoresNames(t *testing.T) {
	a := NewVSlice(NewLeaf("a"), NewLeaf("b"))
	b := NewVSlice(NewLeaf("a"), NewLeaf("b"))
	b.Name = "labelled"
	b.Children[0].Name = "left"
	if !bytes.Equal(a.AppendCanonical(nil), b.AppendCanonical(nil)) {
		t.Fatal("node names changed the canonical encoding")
	}
}

func TestAppendCanonicalPrefixUnambiguous(t *testing.T) {
	// A leaf whose module embeds structural bytes must not collide with the
	// structure it mimics.
	a := NewLeaf("ab")
	b := NewLeaf("a")
	enc := a.AppendCanonical(nil)
	if bytes.HasPrefix(enc, b.AppendCanonical(nil)) {
		t.Fatal("encoding of a leaf is a prefix of a longer module name's encoding")
	}
}

func TestModulesSortedDeduped(t *testing.T) {
	tr := NewVSlice(NewLeaf("z"), NewLeaf("a"), NewLeaf("z"), NewLeaf("m"))
	got := tr.Modules()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Modules() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Modules() = %v, want %v", got, want)
		}
	}
}

func TestAppendCanonicalLibraryEquivalence(t *testing.T) {
	// Equivalent libraries — shuffled order, redundant entries — encode
	// identically once canonicalized; a changed shape or an extra relevant
	// module does not.
	base := Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
	}
	shuffled := Library{
		"a": {{W: 7, H: 4}, {W: 4, H: 7}, {W: 7, H: 7}}, // (7,7) redundant
		"b": {{W: 3, H: 3}},
	}
	changed := Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 4}},
	}
	mods := []string{"a", "b"}
	canon := func(l Library) []byte {
		c, err := CanonicalLibrary(l)
		if err != nil {
			t.Fatal(err)
		}
		return AppendCanonicalLibrary(nil, c, mods)
	}
	if !bytes.Equal(canon(base), canon(shuffled)) {
		t.Fatal("equivalent libraries encode differently")
	}
	if bytes.Equal(canon(base), canon(changed)) {
		t.Fatal("different libraries encode identically")
	}
	// Irrelevant modules (absent from the name slice) don't perturb it.
	withExtra := Library{
		"a": {{W: 4, H: 7}, {W: 7, H: 4}},
		"b": {{W: 3, H: 3}},
		"z": {{W: 9, H: 9}},
	}
	if !bytes.Equal(canon(base), canon(withExtra)) {
		t.Fatal("irrelevant module changed the encoding")
	}
}

func TestCanonicalModuleSharedRules(t *testing.T) {
	if _, err := CanonicalModule("m", nil); err == nil {
		t.Error("empty module accepted")
	}
	if _, err := CanonicalModule("m", []shape.RImpl{{W: 0, H: 1}}); err == nil {
		t.Error("invalid implementation accepted")
	}
	l, err := CanonicalModule("m", []shape.RImpl{{W: 7, H: 4}, {W: 4, H: 7}, {W: 7, H: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("redundant implementation survived: %v", l)
	}
}
