package plan

import (
	"encoding/json"
	"fmt"
)

// jsonNode is the serialized form of a Node.
type jsonNode struct {
	Kind     string      `json:"kind"`
	Module   string      `json:"module,omitempty"`
	Name     string      `json:"name,omitempty"`
	CCW      bool        `json:"ccw,omitempty"`
	Children []*jsonNode `json:"children,omitempty"`
}

// MarshalJSON encodes the node with string kinds, e.g.
//
//	{"kind":"wheel","children":[{"kind":"leaf","module":"m1"}, …]}
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSONNode(n))
}

func toJSONNode(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	j := &jsonNode{Kind: n.Kind.String(), Module: n.Module, Name: n.Name, CCW: n.CCW}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}

// UnmarshalJSON decodes the format produced by MarshalJSON. The decoded
// tree is not automatically validated; call Validate.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	dec, err := fromJSONNode(&j)
	if err != nil {
		return err
	}
	*n = *dec
	return nil
}

func fromJSONNode(j *jsonNode) (*Node, error) {
	if j == nil {
		return nil, fmt.Errorf("plan: null node in JSON")
	}
	n := &Node{Module: j.Module, Name: j.Name, CCW: j.CCW}
	switch j.Kind {
	case "leaf":
		n.Kind = Leaf
	case "hslice":
		n.Kind = HSlice
	case "vslice":
		n.Kind = VSlice
	case "wheel":
		n.Kind = Wheel
	default:
		return nil, fmt.Errorf("plan: unknown node kind %q", j.Kind)
	}
	for _, c := range j.Children {
		dec, err := fromJSONNode(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, dec)
	}
	return n, nil
}

// ParseTree decodes and validates a floorplan tree from JSON.
func ParseTree(data []byte) (*Node, error) {
	var n Node
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("plan: decoding tree: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// EncodeTree validates and encodes a floorplan tree as indented JSON.
func EncodeTree(n *Node) ([]byte, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(n, "", "  ")
}
