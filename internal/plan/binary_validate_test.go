package plan

import "testing"

func leafBN(m string) *BinNode { return &BinNode{Kind: BinLeaf, Module: m} }

func TestBinNodeValidateBranches(t *testing.T) {
	lstack := &BinNode{Kind: BinLStack, Left: leafBN("a"), Right: leafBN("b")}
	cases := []struct {
		name string
		node *BinNode
	}{
		{"nil node", nil},
		{"leaf without module", &BinNode{Kind: BinLeaf}},
		{"leaf with children", &BinNode{Kind: BinLeaf, Module: "m", Left: leafBN("x")}},
		{"missing left", &BinNode{Kind: BinVCut, Right: leafBN("b")}},
		{"missing right", &BinNode{Kind: BinVCut, Left: leafBN("a")}},
		{"L-shaped right operand", &BinNode{Kind: BinVCut, Left: leafBN("a"), Right: lstack}},
		{"vcut with L left", &BinNode{Kind: BinVCut, Left: lstack, Right: leafBN("c")}},
		{"lnotch with rect left", &BinNode{Kind: BinLNotch, Left: leafBN("a"), Right: leafBN("b")}},
		{"close with rect left", &BinNode{Kind: BinClose, Left: leafBN("a"), Right: leafBN("b")}},
		{"mirror on non-close", func() *BinNode {
			n := &BinNode{Kind: BinLStack, Left: leafBN("a"), Right: leafBN("b"), Mirror: true}
			return n
		}()},
		{"invalid nested child", &BinNode{Kind: BinVCut, Left: &BinNode{Kind: BinLeaf}, Right: leafBN("b")}},
	}
	for _, tc := range cases {
		if err := tc.node.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	// Well-formed trees of each internal kind pass.
	good := []*BinNode{
		leafBN("m"),
		{Kind: BinVCut, Left: leafBN("a"), Right: leafBN("b")},
		{Kind: BinHCut, Left: leafBN("a"), Right: leafBN("b")},
		lstack,
		{Kind: BinLNotch, Left: lstack, Right: leafBN("c")},
		{Kind: BinClose, Left: lstack, Right: leafBN("c"), Mirror: true},
	}
	for i, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
}

func TestBinNodeCountsOnNil(t *testing.T) {
	var n *BinNode
	if n.Count() != 0 || n.CountL() != 0 {
		t.Error("nil counts should be zero")
	}
}
