package plan

import (
	"strings"
	"testing"
)

// figure1Tree is a small mixed tree: a wheel whose NW block is a vertical
// slice of two modules.
func figure1Tree() *Node {
	return NewWheel(
		NewVSlice(NewLeaf("a"), NewLeaf("b")),
		NewLeaf("c"),
		NewLeaf("d"),
		NewLeaf("e"),
		NewLeaf("f"),
	)
}

func TestValidateAcceptsGoodTrees(t *testing.T) {
	trees := []*Node{
		NewLeaf("m"),
		NewVSlice(NewLeaf("a"), NewLeaf("b"), NewLeaf("c")),
		NewHSlice(NewLeaf("a"), NewLeaf("b")),
		figure1Tree(),
		NewCCWWheel(NewLeaf("1"), NewLeaf("2"), NewLeaf("3"), NewLeaf("4"), NewLeaf("5")),
	}
	for i, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Errorf("tree %d: %v", i, err)
		}
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	shared := NewLeaf("x")
	bad := []struct {
		name string
		tree *Node
	}{
		{"leaf without module", &Node{Kind: Leaf}},
		{"leaf with children", &Node{Kind: Leaf, Module: "m", Children: []*Node{NewLeaf("c")}}},
		{"slice with one child", NewVSlice(NewLeaf("a"))},
		{"wheel with four children", &Node{Kind: Wheel, Children: []*Node{NewLeaf("1"), NewLeaf("2"), NewLeaf("3"), NewLeaf("4")}}},
		{"internal with module", &Node{Kind: VSlice, Module: "m", Children: []*Node{NewLeaf("a"), NewLeaf("b")}}},
		{"nil child", NewVSlice(NewLeaf("a"), nil)},
		{"shared node", NewVSlice(shared, shared)},
		{"unknown kind", &Node{Kind: Kind(99)}},
	}
	for _, tc := range bad {
		if err := tc.tree.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestTreeMetrics(t *testing.T) {
	tr := figure1Tree()
	if got := tr.ModuleCount(); got != 6 {
		t.Errorf("ModuleCount = %d, want 6", got)
	}
	if got := len(tr.Leaves()); got != 6 {
		t.Errorf("len(Leaves) = %d, want 6", got)
	}
	if got := tr.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := tr.WheelCount(); got != 1 {
		t.Errorf("WheelCount = %d, want 1", got)
	}
	if got := NewLeaf("m").Depth(); got != 1 {
		t.Errorf("leaf Depth = %d, want 1", got)
	}
}

func TestRestructureSliceFold(t *testing.T) {
	tr := NewVSlice(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"))
	b, err := Restructure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// ((a|b)|c)|d: three BinVCut nodes, four leaves.
	if got := b.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := b.CountL(); got != 0 {
		t.Errorf("CountL = %d, want 0 for slicing tree", got)
	}
	mods := b.Modules()
	if strings.Join(mods, "") != "abcd" {
		t.Errorf("Modules = %v", mods)
	}
	if b.Kind != BinVCut || b.Right.Module != "d" {
		t.Errorf("fold shape wrong: %v / %v", b.Kind, b.Right.Module)
	}
}

func TestRestructureWheel(t *testing.T) {
	tr := NewWheel(NewLeaf("nw"), NewLeaf("ne"), NewLeaf("se"), NewLeaf("sw"), NewLeaf("c"))
	b, err := Restructure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// (((sw ⊕ nw) ⊕ c) ⊕ se) ⊕ ne
	if b.Kind != BinClose || b.Mirror {
		t.Fatalf("root = %v mirror=%v", b.Kind, b.Mirror)
	}
	if b.Right.Module != "ne" {
		t.Errorf("closing block = %q, want ne", b.Right.Module)
	}
	l3 := b.Left
	if l3.Kind != BinLBottom || l3.Right.Module != "se" {
		t.Errorf("step 3 = %v %q", l3.Kind, l3.Right.Module)
	}
	l2 := l3.Left
	if l2.Kind != BinLNotch || l2.Right.Module != "c" {
		t.Errorf("step 2 = %v %q", l2.Kind, l2.Right.Module)
	}
	l1 := l2.Left
	if l1.Kind != BinLStack || l1.Left.Module != "sw" || l1.Right.Module != "nw" {
		t.Errorf("step 1 = %v %q %q", l1.Kind, l1.Left.Module, l1.Right.Module)
	}
	if got := b.CountL(); got != 3 {
		t.Errorf("CountL = %d, want 3", got)
	}
}

func TestRestructureCCWWheel(t *testing.T) {
	tr := NewCCWWheel(NewLeaf("nw"), NewLeaf("ne"), NewLeaf("se"), NewLeaf("sw"), NewLeaf("c"))
	b, err := Restructure(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Mirror {
		t.Fatal("CCW wheel should set Mirror on its BinClose")
	}
	// Mirrored roles: the closing (NE-role) block is the original nw.
	if b.Right.Module != "nw" {
		t.Errorf("closing block = %q, want nw", b.Right.Module)
	}
	if b.Left.Left.Left.Left.Module != "se" {
		t.Errorf("bottom block = %q, want se", b.Left.Left.Left.Left.Module)
	}
}

func TestRestructureRejectsInvalid(t *testing.T) {
	if _, err := Restructure(&Node{Kind: Leaf}); err == nil {
		t.Error("expected validation error")
	}
}

func TestRestructureAssignsUniqueIDs(t *testing.T) {
	b, err := Restructure(figure1Tree())
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[int]bool)
	var walk func(*BinNode)
	walk = func(n *BinNode) {
		if n == nil {
			return
		}
		if ids[n.ID] {
			t.Fatalf("duplicate ID %d", n.ID)
		}
		ids[n.ID] = true
		walk(n.Left)
		walk(n.Right)
	}
	walk(b)
	if len(ids) != b.Count() {
		t.Fatalf("%d ids for %d nodes", len(ids), b.Count())
	}
}

func TestBinNodeValidateCatchesCorruption(t *testing.T) {
	b, err := Restructure(figure1Tree())
	if err != nil {
		t.Fatal(err)
	}
	// Swap a close node's operands: right becomes L-shaped.
	b.Left, b.Right = b.Right, b.Left
	if err := b.Validate(); err == nil {
		t.Error("expected validation failure after operand swap")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := figure1Tree()
	orig.Name = "demo"
	orig.Children[1].Name = "ne-block"
	data, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if !treesEqual(orig, back) {
		t.Fatalf("round trip changed tree:\n%s", data)
	}
}

func treesEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Module != b.Module || a.Name != b.Name || a.CCW != b.CCW || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestParseTreeErrors(t *testing.T) {
	cases := []string{
		`{`,                                  // malformed JSON
		`{"kind":"spiral"}`,                  // unknown kind
		`{"kind":"leaf"}`,                    // invalid (no module)
		`{"kind":"wheel","children":[null]}`, // null child
	}
	for _, c := range cases {
		if _, err := ParseTree([]byte(c)); err == nil {
			t.Errorf("ParseTree(%q) succeeded", c)
		}
	}
}

func TestCCWJSONRoundTrip(t *testing.T) {
	orig := NewCCWWheel(NewLeaf("1"), NewLeaf("2"), NewLeaf("3"), NewLeaf("4"), NewLeaf("5"))
	data, err := EncodeTree(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.CCW {
		t.Error("CCW flag lost in round trip")
	}
}

func TestKindStrings(t *testing.T) {
	if Leaf.String() != "leaf" || Wheel.String() != "wheel" || HSlice.String() != "hslice" || VSlice.String() != "vslice" {
		t.Error("Kind.String wrong")
	}
	if BinLeaf.String() != "leaf" || BinClose.String() != "close" || BinLStack.String() != "lstack" {
		t.Error("BinKind.String wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") || !strings.Contains(BinKind(42).String(), "42") {
		t.Error("unknown kind formatting wrong")
	}
}
