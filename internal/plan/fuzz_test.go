package plan

import (
	"bytes"
	"testing"
)

// FuzzParseTree checks that arbitrary input never panics the parser and
// that anything it accepts survives an encode/decode round trip.
func FuzzParseTree(f *testing.F) {
	seeds := []string{
		`{"kind":"leaf","module":"m"}`,
		`{"kind":"vslice","children":[{"kind":"leaf","module":"a"},{"kind":"leaf","module":"b"}]}`,
		`{"kind":"wheel","ccw":true,"children":[
			{"kind":"leaf","module":"1"},{"kind":"leaf","module":"2"},
			{"kind":"leaf","module":"3"},{"kind":"leaf","module":"4"},
			{"kind":"leaf","module":"5"}]}`,
		`{"kind":"spiral"}`,
		`{"kind":"hslice","children":[null]}`,
		`not json at all`,
		`{"kind":"wheel","children":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ParseTree(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted trees are valid and round-trip.
		if err := tree.Validate(); err != nil {
			t.Fatalf("ParseTree accepted an invalid tree: %v", err)
		}
		enc, err := EncodeTree(tree)
		if err != nil {
			t.Fatalf("EncodeTree failed on accepted tree: %v", err)
		}
		back, err := ParseTree(enc)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.ModuleCount() != tree.ModuleCount() || back.Depth() != tree.Depth() {
			t.Fatal("round trip changed the tree")
		}
	})
}

// FuzzParseLibrary checks that arbitrary input never panics the library
// parser and that anything it accepts is a fixed point of the shared
// canonicalization path: parse → encode → parse yields identical bytes.
// Seeds mirror the examples/ corpora (the quickstart wheel library) and
// fpgen's output format.
func FuzzParseLibrary(f *testing.F) {
	seeds := []string{
		// examples/quickstart's five-module wheel library.
		`{"nw":[{"W":4,"H":7}],"ne":[{"W":6,"H":4}],"se":[{"W":3,"H":6}],
		  "sw":[{"W":7,"H":3}],"c":[{"W":3,"H":3}]}`,
		// fpgen-style indented output with a redundant implementation.
		`{
		  "cpu": [
		    {"W": 4, "H": 7},
		    {"W": 7, "H": 4},
		    {"W": 7, "H": 7}
		  ],
		  "pll": [
		    {"W": 3, "H": 3}
		  ]
		}`,
		// examples/orientation-style rotatable module.
		`{"m000":[{"W":40,"H":55},{"W":55,"H":40}]}`,
		`{}`,
		`{"m": []}`,
		`{"m": [{"W":0,"H":1}]}`,
		`{"m": [{"W":-3,"H":4}]}`,
		// Extents that pass W>0/H>0 but overflow the int64 area product
		// (2^32 × 2^32 ≡ 0) — must be rejected by the MaxExtent bound.
		`{"m": [{"W":4294967296,"H":4294967296}]}`,
		`{"m": [{"W":2147483648,"H":1}]}`,
		`{"m": [{"W":2147483647,"H":2147483647}]}`,
		`{"m": null}`,
		`[1,2,3]`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := ParseLibrary(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		for name, impls := range lib {
			if len(impls) == 0 {
				t.Fatalf("ParseLibrary accepted empty module %q", name)
			}
			for _, im := range impls {
				if !im.Valid() {
					t.Fatalf("ParseLibrary accepted invalid implementation %v in %q", im, name)
				}
				if im.W > MaxExtent || im.H > MaxExtent {
					t.Fatalf("ParseLibrary accepted oversize implementation %v in %q", im, name)
				}
				if im.Area() <= 0 {
					t.Fatalf("ParseLibrary accepted non-positive area %d for %v in %q", im.Area(), im, name)
				}
			}
		}
		enc, err := EncodeLibrary(lib)
		if err != nil {
			t.Fatalf("EncodeLibrary failed on accepted library: %v", err)
		}
		back, err := ParseLibrary(enc)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		enc2, err := EncodeLibrary(back)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("parse/encode not a fixed point")
		}
	})
}
