package plan

import (
	"testing"
)

// FuzzParseTree checks that arbitrary input never panics the parser and
// that anything it accepts survives an encode/decode round trip.
func FuzzParseTree(f *testing.F) {
	seeds := []string{
		`{"kind":"leaf","module":"m"}`,
		`{"kind":"vslice","children":[{"kind":"leaf","module":"a"},{"kind":"leaf","module":"b"}]}`,
		`{"kind":"wheel","ccw":true,"children":[
			{"kind":"leaf","module":"1"},{"kind":"leaf","module":"2"},
			{"kind":"leaf","module":"3"},{"kind":"leaf","module":"4"},
			{"kind":"leaf","module":"5"}]}`,
		`{"kind":"spiral"}`,
		`{"kind":"hslice","children":[null]}`,
		`not json at all`,
		`{"kind":"wheel","children":[]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ParseTree(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted trees are valid and round-trip.
		if err := tree.Validate(); err != nil {
			t.Fatalf("ParseTree accepted an invalid tree: %v", err)
		}
		enc, err := EncodeTree(tree)
		if err != nil {
			t.Fatalf("EncodeTree failed on accepted tree: %v", err)
		}
		back, err := ParseTree(enc)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.ModuleCount() != tree.ModuleCount() || back.Depth() != tree.Depth() {
			t.Fatal("round trip changed the tree")
		}
	})
}
