package plan

import (
	"encoding/binary"
	"sort"
)

// Canonical binary encoding for content-addressed caching.
//
// AppendCanonical and AppendCanonicalLibrary produce a compact, unambiguous
// byte encoding of a subtree and of the module shape lists it references.
// Two inputs yield the same bytes exactly when they describe the same
// optimization problem: node Names are excluded (diagnostic labels do not
// affect results), module names and the CCW flag are included, and every
// length is varint-prefixed so no concatenation of fields is ambiguous.
// The cache layer hashes these bytes to derive its content address.

// AppendCanonical appends the canonical encoding of the subtree rooted at n
// to dst and returns the extended slice. A nil node encodes as a distinct
// sentinel so malformed trees still hash deterministically.
func (n *Node) AppendCanonical(dst []byte) []byte {
	if n == nil {
		return append(dst, 0xff)
	}
	dst = append(dst, byte(n.Kind))
	if n.CCW {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendString(dst, n.Module)
	dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
	for _, c := range n.Children {
		dst = c.AppendCanonical(dst)
	}
	return dst
}

// Modules returns the sorted, deduplicated module names referenced by the
// subtree's leaves.
func (n *Node) Modules() []string {
	seen := make(map[string]bool)
	var out []string
	for _, leaf := range n.Leaves() {
		if !seen[leaf.Module] {
			seen[leaf.Module] = true
			out = append(out, leaf.Module)
		}
	}
	sort.Strings(out)
	return out
}

// AppendCanonicalLibrary appends the canonical encoding of the named
// modules' shape lists, in the given order (callers pass a sorted name
// slice, typically Node.Modules, so irrelevant library entries never
// perturb the encoding). The lists must already be canonical — irreducible
// and staircase-ordered, as CanonicalLibrary returns them — which is what
// makes the encoding content-addressed: equivalent libraries with redundant
// entries or shuffled lists canonicalize to identical bytes. Modules absent
// from the library encode as empty lists; callers that require presence
// must check beforehand.
func AppendCanonicalLibrary(dst []byte, lib Library, modules []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(modules)))
	for _, name := range modules {
		dst = appendString(dst, name)
		impls := lib[name]
		dst = binary.AppendUvarint(dst, uint64(len(impls)))
		for _, im := range impls {
			dst = binary.AppendVarint(dst, im.W)
			dst = binary.AppendVarint(dst, im.H)
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
