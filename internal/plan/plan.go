// Package plan models floorplan topologies as floorplan trees and
// restructures them for bottom-up area optimization.
//
// A floorplan tree (Section 2 of the paper, Figure 1) describes how an
// enveloping rectangle is recursively partitioned. This package supports
// the constructs of hierarchical floorplans of order 5, the input class of
// the Wang–Wong DAC'90 optimizer the paper builds on:
//
//   - Leaf: a basic rectangle holding one module.
//   - HSlice / VSlice: a slicing cut into two or more parts (children
//     stacked bottom-to-top, or placed left-to-right).
//   - Wheel: the order-5 non-slicing pinwheel of five blocks.
//
// Restructure converts a floorplan tree T into the binary tree T' of
// Figure 3, in which every internal node represents either a rectangular
// block or an L-shaped block; the optimizer evaluates T' bottom-up.
package plan

import (
	"fmt"
)

// Kind enumerates floorplan tree node kinds.
type Kind int

const (
	// Leaf is a basic rectangle assigned one module.
	Leaf Kind = iota
	// HSlice cuts a rectangle with horizontal lines; children are listed
	// bottom to top. Heights add, widths max.
	HSlice
	// VSlice cuts a rectangle with vertical lines; children are listed
	// left to right. Widths add, heights max.
	VSlice
	// Wheel is the order-5 pinwheel. Children are listed
	// [NW, NE, SE, SW, center]; see the package comment of internal/combine
	// for the exact geometry.
	Wheel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case HSlice:
		return "hslice"
	case VSlice:
		return "vslice"
	case Wheel:
		return "wheel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a floorplan tree node. Build trees with the NewX constructors and
// check them with Validate.
type Node struct {
	Kind     Kind
	Module   string  // Leaf: the module library key
	Children []*Node // internal nodes
	// CCW marks a counter-clockwise wheel (the mirror image of the default
	// clockwise pinwheel).
	CCW bool
	// Name optionally labels the node for diagnostics and rendering.
	Name string
}

// NewLeaf returns a leaf node referencing a module by name.
func NewLeaf(module string) *Node { return &Node{Kind: Leaf, Module: module} }

// NewHSlice returns a horizontal slicing node over the children, listed
// bottom to top.
func NewHSlice(children ...*Node) *Node { return &Node{Kind: HSlice, Children: children} }

// NewVSlice returns a vertical slicing node over the children, listed left
// to right.
func NewVSlice(children ...*Node) *Node { return &Node{Kind: VSlice, Children: children} }

// NewWheel returns a clockwise pinwheel node over exactly five children
// [NW, NE, SE, SW, center].
func NewWheel(nw, ne, se, sw, center *Node) *Node {
	return &Node{Kind: Wheel, Children: []*Node{nw, ne, se, sw, center}}
}

// NewCCWWheel returns a counter-clockwise pinwheel, the mirror image of
// NewWheel with the same child roles.
func NewCCWWheel(nw, ne, se, sw, center *Node) *Node {
	n := NewWheel(nw, ne, se, sw, center)
	n.CCW = true
	return n
}

// Validate checks structural well-formedness: leaves name a module and have
// no children, slices have at least two children, wheels exactly five, and
// the tree is free of nil nodes and cycles.
func (n *Node) Validate() error {
	seen := make(map[*Node]bool)
	return n.validate(seen, "root")
}

func (n *Node) validate(seen map[*Node]bool, path string) error {
	if n == nil {
		return fmt.Errorf("plan: nil node at %s", path)
	}
	if seen[n] {
		return fmt.Errorf("plan: node %s appears more than once (tree is a DAG or cyclic)", path)
	}
	seen[n] = true
	switch n.Kind {
	case Leaf:
		if n.Module == "" {
			return fmt.Errorf("plan: leaf at %s has no module", path)
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("plan: leaf at %s has %d children", path, len(n.Children))
		}
	case HSlice, VSlice:
		if len(n.Children) < 2 {
			return fmt.Errorf("plan: %s at %s needs >= 2 children, has %d", n.Kind, path, len(n.Children))
		}
		if n.Module != "" {
			return fmt.Errorf("plan: internal node at %s names module %q", path, n.Module)
		}
	case Wheel:
		if len(n.Children) != 5 {
			return fmt.Errorf("plan: wheel at %s needs exactly 5 children, has %d", path, len(n.Children))
		}
		if n.Module != "" {
			return fmt.Errorf("plan: internal node at %s names module %q", path, n.Module)
		}
	default:
		return fmt.Errorf("plan: unknown kind %d at %s", int(n.Kind), path)
	}
	for i, c := range n.Children {
		if err := c.validate(seen, fmt.Sprintf("%s.%d", path, i)); err != nil {
			return err
		}
	}
	return nil
}

// ModuleCount returns the number of leaves.
func (n *Node) ModuleCount() int {
	if n == nil {
		return 0
	}
	if n.Kind == Leaf {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.ModuleCount()
	}
	return total
}

// Leaves appends all leaf nodes in depth-first order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.walkLeaves(&out)
	return out
}

func (n *Node) walkLeaves(out *[]*Node) {
	if n == nil {
		return
	}
	if n.Kind == Leaf {
		*out = append(*out, n)
		return
	}
	for _, c := range n.Children {
		c.walkLeaves(out)
	}
}

// Depth returns the height of the tree (a lone leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	if n.Kind == Leaf {
		return 1
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// WheelCount returns the number of wheel nodes, a proxy for how non-slicing
// (and hence how L-heavy) the floorplan is.
func (n *Node) WheelCount() int {
	if n == nil || n.Kind == Leaf {
		return 0
	}
	total := 0
	if n.Kind == Wheel {
		total = 1
	}
	for _, c := range n.Children {
		total += c.WheelCount()
	}
	return total
}
