package plan

import (
	"bytes"
	"fmt"
	"testing"

	"floorplan/internal/shape"
)

var subtreeTestLib = Library{
	"a": {{W: 4, H: 7}, {W: 7, H: 4}},
	"b": {{W: 3, H: 3}},
	"c": {{W: 2, H: 5}, {W: 5, H: 2}},
	"d": {{W: 6, H: 1}},
	"e": {{W: 2, H: 2}},
}

func digestsOf(t *testing.T, tree *Node, ctx []byte, lib Library) []Digest {
	t.Helper()
	bin, err := Restructure(tree)
	if err != nil {
		t.Fatal(err)
	}
	return SubtreeDigests(bin, ctx, lib)
}

// TestSubtreeDigestsDistinguish checks that structurally different
// sub-problems never share a root digest.
func TestSubtreeDigestsDistinguish(t *testing.T) {
	trees := []*Node{
		NewLeaf("a"),
		NewLeaf("b"),
		NewVSlice(NewLeaf("a"), NewLeaf("b")),
		NewHSlice(NewLeaf("a"), NewLeaf("b")),
		NewVSlice(NewLeaf("b"), NewLeaf("a")),
		// Note: VSlice(a,b,c) and VSlice(VSlice(a,b),c) restructure to the
		// SAME left-leaning binary tree, so they share a digest by design;
		// the right-leaning nesting below is a genuinely different one.
		NewVSlice(NewLeaf("a"), NewLeaf("b"), NewLeaf("c")),
		NewVSlice(NewLeaf("a"), NewVSlice(NewLeaf("b"), NewLeaf("c"))),
		NewWheel(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e")),
		NewWheel(NewLeaf("b"), NewLeaf("a"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e")),
	}
	ctx := []byte{1}
	seen := make(map[Digest]int)
	for i, tr := range trees {
		d := digestsOf(t, tr, ctx, subtreeTestLib)[0]
		if j, dup := seen[d]; dup {
			t.Errorf("trees %d and %d share a root digest", i, j)
		}
		seen[d] = i
	}
}

// TestSubtreeDigestsIgnoreNames pins the deliberate name exclusion: two
// trees whose leaves carry different module names but byte-identical
// canonical shape lists are the same sub-problem and digest identically,
// node for node.
func TestSubtreeDigestsIgnoreNames(t *testing.T) {
	t1 := NewVSlice(NewLeaf("a"), NewHSlice(NewLeaf("b"), NewLeaf("c")))
	t2 := NewVSlice(NewLeaf("x"), NewHSlice(NewLeaf("y"), NewLeaf("z")))
	lib2 := Library{"x": subtreeTestLib["a"], "y": subtreeTestLib["b"], "z": subtreeTestLib["c"]}
	ctx := []byte{1}
	d1 := digestsOf(t, t1, ctx, subtreeTestLib)
	d2 := digestsOf(t, t2, ctx, lib2)
	if len(d1) != len(d2) {
		t.Fatalf("digest counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("node %d digests apart under renamed modules", i)
		}
	}
}

// TestSubtreeDigestsMirrorInvariant pins the Mirror exclusion: a clockwise
// wheel and its mirror image — the counter-clockwise wheel with NW/NE and
// SW/SE exchanged, which Restructure maps to the same block assignment with
// only the Mirror flag set — evaluate to the same shape sets (only
// placement traceback reflects), so they must share digests and stored
// results.
func TestSubtreeDigestsMirrorInvariant(t *testing.T) {
	cw := NewWheel(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e"))
	ccw := NewCCWWheel(NewLeaf("b"), NewLeaf("a"), NewLeaf("d"), NewLeaf("c"), NewLeaf("e"))
	ctx := []byte{1}
	if digestsOf(t, cw, ctx, subtreeTestLib)[0] != digestsOf(t, ccw, ctx, subtreeTestLib)[0] {
		t.Fatal("wheel orientation changed the digest; shape sets are mirror-invariant")
	}
}

// TestSubtreeDigestsCtxSensitivity checks that the evaluation context is
// mixed into every node's digest — a policy change invalidates the whole
// tree, leaves included.
func TestSubtreeDigestsCtxSensitivity(t *testing.T) {
	tree := NewVSlice(NewLeaf("a"), NewHSlice(NewLeaf("b"), NewLeaf("c")))
	d1 := digestsOf(t, tree, []byte{1, 7}, subtreeTestLib)
	d2 := digestsOf(t, tree, []byte{1, 8}, subtreeTestLib)
	for i := range d1 {
		if d1[i] == d2[i] {
			t.Fatalf("node %d digest survived a context change", i)
		}
	}
}

// TestSubtreeDigestsImplSensitivity checks that a changed implementation
// list dirties the leaf and every ancestor, and nothing else.
func TestSubtreeDigestsImplSensitivity(t *testing.T) {
	tree := NewVSlice(NewLeaf("a"), NewHSlice(NewLeaf("b"), NewLeaf("c")))
	lib2 := Library{
		"a": subtreeTestLib["a"],
		"b": {{W: 1, H: 9}},
		"c": subtreeTestLib["c"],
	}
	ctx := []byte{1}
	d1 := digestsOf(t, tree, ctx, subtreeTestLib)
	d2 := digestsOf(t, tree, ctx, lib2)
	// Preorder of the restructured binary tree: 0 = root vcut, 1 = leaf a,
	// 2 = hcut, 3 = leaf b, 4 = leaf c.
	changed := map[int]bool{0: true, 2: true, 3: true}
	for i := range d1 {
		if changed[i] && d1[i] == d2[i] {
			t.Fatalf("node %d digest survived an implementation-list change on its spine", i)
		}
		if !changed[i] && d1[i] != d2[i] {
			t.Fatalf("node %d digest changed although its sub-problem did not", i)
		}
	}
}

// TestSubtreePreimagePrefixUnambiguous checks, pairwise over an adversarial
// corpus, that no preimage is a proper prefix of another — the property
// that makes digest equality imply sub-problem equality — and that the
// domain tags stay disjoint from every first byte AppendCanonical emits.
func TestSubtreePreimagePrefixUnambiguous(t *testing.T) {
	ctxs := [][]byte{nil, {0}, {1}, {1, 0}, {1, 0, 0}, {0xf0}, {0xf1, 0xf1}}
	implSets := [][]shape.RImpl{
		nil,
		{{W: 1, H: 1}},
		{{W: 1, H: 2}, {W: 2, H: 1}},
		{{W: 0xf0, H: 0xf1}},
		{{W: 240, H: 240}, {W: 241, H: 241}},
	}
	var zero, patt Digest
	for i := range patt {
		patt[i] = 0xf0
	}
	var corpus [][]byte
	for _, ctx := range ctxs {
		for _, impls := range implSets {
			corpus = append(corpus, appendLeafPreimage(nil, ctx, impls))
		}
		for _, kind := range []BinKind{BinLeaf, BinVCut, BinHCut, BinLStack, BinLNotch, BinLBottom, BinClose} {
			corpus = append(corpus, appendCompositePreimage(nil, ctx, kind, zero, patt))
			corpus = append(corpus, appendCompositePreimage(nil, ctx, kind, patt, zero))
		}
	}
	seen := make(map[string]bool)
	var uniq [][]byte
	for _, p := range corpus {
		if !seen[string(p)] {
			seen[string(p)] = true
			uniq = append(uniq, p)
		}
	}
	for i, p := range uniq {
		for j, q := range uniq {
			if i != j && bytes.HasPrefix(q, p) {
				t.Fatalf("preimage %d is a proper prefix of preimage %d:\n%x\n%x", i, j, p, q)
			}
		}
	}
	// Domain separation from the canonical tree encoding (the cache-key
	// preimage): no canonical encoding starts with a subtree tag.
	for _, tr := range []*Node{
		NewLeaf("a"),
		NewVSlice(NewLeaf("a"), NewLeaf("b")),
		NewWheel(NewLeaf("a"), NewLeaf("b"), NewLeaf("c"), NewLeaf("d"), NewLeaf("e")),
	} {
		enc := tr.AppendCanonical(nil)
		if enc[0] == subtreeLeafTag || enc[0] == subtreeCompositeTag {
			t.Fatalf("canonical encoding starts with reserved subtree tag %#x", enc[0])
		}
	}
}

// subtreeRefEncode is an unambiguous reference encoding of the sub-problem
// a node roots: structure, kinds and canonical shape lists — exactly what
// the digest is meant to identify (names and Mirror excluded).
func subtreeRefEncode(b *BinNode, lib Library) string {
	if b.Kind == BinLeaf {
		return fmt.Sprintf("L%v", lib[b.Module])
	}
	return fmt.Sprintf("%d(%s,%s)", b.Kind, subtreeRefEncode(b.Left, lib), subtreeRefEncode(b.Right, lib))
}

// FuzzSubtreeDigests builds trees from arbitrary bytes and checks the
// digest's defining property on every pair of nodes: digests are equal
// exactly when the reference encodings of the sub-problems are equal. The
// library deliberately maps two module names to one identical list, so
// name-blind sharing is exercised on every input that uses both.
func FuzzSubtreeDigests(f *testing.F) {
	f.Add([]byte{0, 4, 1})
	f.Add([]byte{0, 4, 8, 1, 5})
	f.Add([]byte{0, 4, 8, 12, 0, 2, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 2, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		lists := [][]shape.RImpl{
			{{W: 1, H: 2}, {W: 2, H: 1}},
			{{W: 3, H: 3}},
			{{W: 1, H: 2}, {W: 2, H: 1}}, // same list as 0, different name
			{{W: 2, H: 5}, {W: 5, H: 2}},
		}
		lib := make(Library, len(lists))
		for i, l := range lists {
			lib[fmt.Sprintf("m%d", i)] = l
		}
		// Stack machine: byte%3 == 0 pushes a leaf (module from the upper
		// bits), 1 joins two nodes with a slice, 2 closes five into a wheel.
		var stack []*Node
		for _, c := range data {
			switch c % 3 {
			case 0:
				stack = append(stack, NewLeaf(fmt.Sprintf("m%d", (c>>2)%4)))
			case 1:
				if len(stack) >= 2 {
					l, r := stack[len(stack)-2], stack[len(stack)-1]
					stack = stack[:len(stack)-2]
					if (c>>2)&1 == 0 {
						stack = append(stack, NewVSlice(l, r))
					} else {
						stack = append(stack, NewHSlice(l, r))
					}
				}
			case 2:
				if len(stack) >= 5 {
					k := stack[len(stack)-5:]
					w := NewWheel(k[0], k[1], k[2], k[3], k[4])
					if (c>>2)&1 == 1 {
						w = NewCCWWheel(k[0], k[1], k[2], k[3], k[4])
					}
					stack = append(stack[:len(stack)-5], w)
				}
			}
		}
		for len(stack) > 1 {
			l, r := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], NewVSlice(l, r))
		}
		if len(stack) == 0 {
			return
		}
		bin, err := Restructure(stack[0])
		if err != nil {
			return
		}
		ctx := []byte{1}
		digests := SubtreeDigests(bin, ctx, lib)
		again := SubtreeDigests(bin, ctx, lib)
		var nodes []*BinNode
		var collect func(b *BinNode)
		collect = func(b *BinNode) {
			nodes = append(nodes, b)
			if b.Kind != BinLeaf {
				collect(b.Left)
				collect(b.Right)
			}
		}
		collect(bin)
		refs := make([]string, len(nodes))
		for i, b := range nodes {
			if digests[b.ID] != again[b.ID] {
				t.Fatalf("node %d digest not deterministic", b.ID)
			}
			refs[i] = subtreeRefEncode(b, lib)
		}
		for i, bi := range nodes {
			for j, bj := range nodes {
				if j <= i {
					continue
				}
				same := digests[bi.ID] == digests[bj.ID]
				if same != (refs[i] == refs[j]) {
					t.Fatalf("nodes %d and %d: digest equality %v but sub-problem equality %v\n%s\n%s",
						bi.ID, bj.ID, same, refs[i] == refs[j], refs[i], refs[j])
				}
			}
		}
	})
}
