package plan

import (
	"encoding/json"
	"fmt"

	"floorplan/internal/shape"
)

// Library maps module names to rectangular implementation lists — the
// module-library JSON format shared by fpgen, fpopt and fpserve. Lists may
// be given in any order with redundant entries; the canonicalization path
// below prunes and sorts them.
type Library map[string][]shape.RImpl

// MaxExtent bounds a single implementation extent (width or height).
// Without it, a pair of large positive extents overflows the int64 area
// product — e.g. W = H = 2^32 gives Area() == 0 — and the degenerate
// "zero-area" curve sails through every downstream comparison. 2^31−1
// keeps any single implementation's area under 2^62, leaving slack for
// the envelope sums placement verification computes.
const MaxExtent = int64(1)<<31 - 1

// CanonicalModule validates and canonicalizes one module's implementation
// list: the module must have at least one implementation and every
// implementation positive extents no larger than MaxExtent (so areas can
// never overflow to zero or negative); the result is the irreducible,
// staircase-ordered R-list. This is the single validation path shared by
// EncodeLibrary and ParseLibrary (and by the optimizer entry points), so
// the rules cannot drift between the encode and decode directions.
func CanonicalModule(name string, impls []shape.RImpl) (shape.RList, error) {
	if len(impls) == 0 {
		return nil, fmt.Errorf("plan: module %q has no implementations", name)
	}
	for _, im := range impls {
		if im.W > MaxExtent || im.H > MaxExtent {
			return nil, fmt.Errorf("plan: module %q: implementation %dx%d exceeds the maximum extent %d",
				name, im.W, im.H, MaxExtent)
		}
	}
	l, err := shape.NewRList(impls)
	if err != nil {
		return nil, fmt.Errorf("plan: module %q: %w", name, err)
	}
	return l, nil
}

// CanonicalLibrary canonicalizes every module list through CanonicalModule.
func CanonicalLibrary(lib Library) (Library, error) {
	out := make(Library, len(lib))
	for name, impls := range lib {
		l, err := CanonicalModule(name, impls)
		if err != nil {
			return nil, err
		}
		out[name] = []shape.RImpl(l)
	}
	return out, nil
}

// EncodeLibrary canonicalizes and serializes a module library as indented
// JSON, the format fpgen emits and fpopt/fpserve consume:
//
//	{"cpu": [{"W":4,"H":7},{"W":7,"H":4}], …}
//
// Redundant implementations are pruned and lists staircase-ordered before
// encoding, so the file round-trips bit-exactly.
func EncodeLibrary(lib Library) ([]byte, error) {
	canonical, err := CanonicalLibrary(lib)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(canonical, "", "  ")
}

// ParseLibrary decodes a module library from JSON and validates it through
// the same canonicalization path EncodeLibrary uses.
func ParseLibrary(data []byte) (Library, error) {
	var lib Library
	if err := json.Unmarshal(data, &lib); err != nil {
		return nil, fmt.Errorf("plan: decoding library: %w", err)
	}
	return CanonicalLibrary(lib)
}
