package plan

import "fmt"

// BinKind enumerates the combine operations of the restructured binary tree
// T'. Each internal BinNode merges its Left operand (a rectangular or
// L-shaped partial block) with its Right operand (always a rectangular
// block) into a bigger block.
type BinKind int

const (
	// BinLeaf is a module leaf (rectangular).
	BinLeaf BinKind = iota
	// BinVCut joins Left and Right side by side (Left to the left):
	// a vertical slicing cut. Result is rectangular.
	BinVCut
	// BinHCut stacks Right on top of Left: a horizontal slicing cut.
	// Result is rectangular.
	BinHCut
	// BinLStack starts a pinwheel: Right (the NW block B1) is stacked on
	// the left part of Left (the SW block B4), producing an L-shaped block
	// with its notch at the top-right.
	BinLStack
	// BinLNotch grows a pinwheel: Right (the center block B5) is placed in
	// the notch, on top of the bottom slab and right of the top slab.
	// Result is L-shaped.
	BinLNotch
	// BinLBottom grows a pinwheel: Right (the SE block B3) is appended to
	// the right of the bottom edge. Result is L-shaped.
	BinLBottom
	// BinClose finishes a pinwheel: Right (the NE block B2) fills the
	// notch's top-right corner, completing a rectangle.
	BinClose
)

// String implements fmt.Stringer.
func (k BinKind) String() string {
	switch k {
	case BinLeaf:
		return "leaf"
	case BinVCut:
		return "vcut"
	case BinHCut:
		return "hcut"
	case BinLStack:
		return "lstack"
	case BinLNotch:
		return "lnotch"
	case BinLBottom:
		return "lbottom"
	case BinClose:
		return "close"
	default:
		return fmt.Sprintf("BinKind(%d)", int(k))
	}
}

// BinNode is a node of the restructured binary tree T'. Every BinNode
// represents either a rectangular block (BinLeaf, BinVCut, BinHCut,
// BinClose) or an L-shaped block (BinLStack, BinLNotch, BinLBottom),
// exactly the property Figure 3 of the paper establishes.
type BinNode struct {
	Kind        BinKind
	Left, Right *BinNode
	// Module is the module key for BinLeaf nodes.
	Module string
	// Mirror marks a BinClose whose wheel was counter-clockwise: the
	// placement of the whole wheel is reflected horizontally at traceback.
	// Shape sets are mirror-invariant, so evaluation ignores it.
	Mirror bool
	// ID is a stable preorder index assigned by Restructure, used by the
	// optimizer for stats tables.
	ID int
}

// IsL reports whether the node represents an L-shaped block.
func (b *BinNode) IsL() bool {
	switch b.Kind {
	case BinLStack, BinLNotch, BinLBottom:
		return true
	default:
		return false
	}
}

// Count returns the number of BinNodes in the subtree.
func (b *BinNode) Count() int {
	if b == nil {
		return 0
	}
	return 1 + b.Left.Count() + b.Right.Count()
}

// CountL returns the number of L-shaped BinNodes in the subtree.
func (b *BinNode) CountL() int {
	if b == nil {
		return 0
	}
	n := 0
	if b.IsL() {
		n = 1
	}
	return n + b.Left.CountL() + b.Right.CountL()
}

// Restructure converts a validated floorplan tree into the binary tree T'.
//
//   - A slicing node with children c1..cn folds left into n-1 binary cuts:
//     ((c1 ⊕ c2) ⊕ c3) ⊕ … — multi-way slicing cuts are associative.
//   - A clockwise wheel [B1..B5] = [NW, NE, SE, SW, C] becomes
//     (((B4 ⊕ B1) ⊕ B5) ⊕ B3) ⊕ B2 with L-shaped intermediates, following
//     the geometry x1 <= x2, y1 <= y2 of the pinwheel.
//   - A counter-clockwise wheel is the mirror image; since rectangle
//     implementation sets are mirror-invariant, it is evaluated as the
//     clockwise wheel of the mirrored child roles
//     [NE, NW, SW, SE, C] and only the final placement is reflected
//     (BinNode.Mirror).
func Restructure(root *Node) (*BinNode, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	b := restructure(root)
	assignIDs(b, new(int))
	return b, nil
}

func restructure(n *Node) *BinNode {
	switch n.Kind {
	case Leaf:
		return &BinNode{Kind: BinLeaf, Module: n.Module}
	case HSlice, VSlice:
		kind := BinHCut
		if n.Kind == VSlice {
			kind = BinVCut
		}
		acc := restructure(n.Children[0])
		for _, c := range n.Children[1:] {
			acc = &BinNode{Kind: kind, Left: acc, Right: restructure(c)}
		}
		return acc
	case Wheel:
		nw, ne, se, sw, center := n.Children[0], n.Children[1], n.Children[2], n.Children[3], n.Children[4]
		if n.CCW {
			// Mirror the roles: the CCW wheel seen in a mirror is the CW
			// wheel with NW/NE and SW/SE exchanged.
			nw, ne = ne, nw
			sw, se = se, sw
		}
		b4 := restructure(sw)
		b1 := restructure(nw)
		b5 := restructure(center)
		b3 := restructure(se)
		b2 := restructure(ne)
		l1 := &BinNode{Kind: BinLStack, Left: b4, Right: b1}
		l2 := &BinNode{Kind: BinLNotch, Left: l1, Right: b5}
		l3 := &BinNode{Kind: BinLBottom, Left: l2, Right: b3}
		return &BinNode{Kind: BinClose, Left: l3, Right: b2, Mirror: n.CCW}
	default:
		panic(fmt.Sprintf("plan: restructure on invalid kind %v", n.Kind))
	}
}

// AssignIDs renumbers the subtree's IDs as a fresh preorder walk starting
// at 0, the numbering Restructure produces. The optimizer's evaluator
// indexes its per-node tables by ID, so hand-built binary trees whose IDs
// are not the preorder permutation 0..Count-1 are renumbered before a run.
func (b *BinNode) AssignIDs() { assignIDs(b, new(int)) }

// HasPreorderIDs reports whether the subtree's IDs are exactly the preorder
// indices 0..Count-1 — the invariant the optimizer's ID-indexed per-node
// tables rely on.
func (b *BinNode) HasPreorderIDs() bool {
	next := 0
	var walk func(*BinNode) bool
	walk = func(n *BinNode) bool {
		if n == nil {
			return true
		}
		if n.ID != next {
			return false
		}
		next++
		return walk(n.Left) && walk(n.Right)
	}
	return walk(b)
}

func assignIDs(b *BinNode, next *int) {
	if b == nil {
		return
	}
	b.ID = *next
	*next++
	assignIDs(b.Left, next)
	assignIDs(b.Right, next)
}

// Validate checks the structural invariants of a binary tree: leaves have a
// module and no children; every internal node has both children; the Right
// operand of every internal node is rectangular; the Left operand of
// BinLNotch/BinLBottom/BinClose is L-shaped and of BinVCut/BinHCut/BinLStack
// is rectangular.
func (b *BinNode) Validate() error {
	if b == nil {
		return fmt.Errorf("plan: nil BinNode")
	}
	if b.Kind == BinLeaf {
		if b.Module == "" {
			return fmt.Errorf("plan: BinLeaf without module")
		}
		if b.Left != nil || b.Right != nil {
			return fmt.Errorf("plan: BinLeaf with children")
		}
		return nil
	}
	if b.Left == nil || b.Right == nil {
		return fmt.Errorf("plan: %v node missing operand", b.Kind)
	}
	if b.Right.IsL() {
		return fmt.Errorf("plan: %v node has L-shaped right operand", b.Kind)
	}
	wantLLeft := b.Kind == BinLNotch || b.Kind == BinLBottom || b.Kind == BinClose
	if b.Left.IsL() != wantLLeft {
		return fmt.Errorf("plan: %v node: left operand L-shaped=%v, want %v", b.Kind, b.Left.IsL(), wantLLeft)
	}
	if b.Mirror && b.Kind != BinClose {
		return fmt.Errorf("plan: Mirror set on %v node", b.Kind)
	}
	if err := b.Left.Validate(); err != nil {
		return err
	}
	return b.Right.Validate()
}

// Modules returns the module keys of the subtree's leaves, left to right.
func (b *BinNode) Modules() []string {
	var out []string
	var walk func(*BinNode)
	walk = func(n *BinNode) {
		if n == nil {
			return
		}
		if n.Kind == BinLeaf {
			out = append(out, n.Module)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(b)
	return out
}
