// Package benchsnap measures the repository's pinned performance grid and
// serializes it as a committed BENCH_*.json snapshot — the recorded perf
// trajectory every scaling claim builds on.
//
// The grid has two tiers:
//
//   - grid/* cells run the full optimizer on fixed (floorplan, module-set,
//     policy) workloads spanning small to large, the same substrate as the
//     paper tables (package tables). ns/op is the end-to-end run, and
//     peak_impls pins the paper's M so a snapshot also guards against
//     algorithmic drift, not just speed.
//   - micro/* cells isolate the hot kernels: Pareto pruning (MinimaL /
//     MinimaR), the staircase merge, and the selection DPs.
//
// Every cell reports ns/op, allocs/op and bytes/op via testing.Benchmark
// with allocation reporting forced on, so allocation regressions fail the
// snapshot diff (scripts/bench_diff.sh) loudly.
//
// Snapshots embed the previous baseline: Write preserves the baseline of an
// existing snapshot file (or adopts an explicit one), and the diff script
// compares current-vs-baseline entirely offline, keeping `make check` fast
// and deterministic.
package benchsnap

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"floorplan/internal/combine"
	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/substore"
)

// Schema identifies the snapshot file layout.
const Schema = "floorplan/bench-snapshot/v1"

// Cell is one measured grid entry.
type Cell struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// PeakImpls is the optimizer's M for grid cells (0 for micro cells); it
	// pins the computation itself, so a snapshot diff also catches silent
	// algorithmic changes.
	PeakImpls int64 `json:"peak_impls,omitempty"`
	// Iters is the benchmark iteration count behind the averages.
	Iters int `json:"iters"`
	// Large marks the cells the committed improvement trajectory is judged
	// on (the fpbench grid's large cells).
	Large bool `json:"large,omitempty"`
}

// Snapshot is one measured pass over the pinned grid.
type Snapshot struct {
	Schema     string `json:"schema"`
	PR         int    `json:"pr"`
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Cells      []Cell `json:"cells"`
	// Baseline is the previous snapshot this one is diffed against; nil in
	// a fresh file (the first snapshot is its own baseline).
	Baseline *Snapshot `json:"baseline,omitempty"`
}

// Lookup returns the named cell.
func (s *Snapshot) Lookup(name string) (Cell, bool) {
	for _, c := range s.Cells {
		if c.Name == name {
			return c, true
		}
	}
	return Cell{}, false
}

// gridCell describes one full-optimizer workload.
type gridCell struct {
	name     string
	fp       string // floorplan name (gen.ByName)
	n        int    // implementations per module
	aspect   float64
	seed     int64
	policy   selection.Policy
	memLimit int64
	large    bool
}

// grid is the pinned workload set. Names are stable across PRs — the diff
// script matches cells by name — so entries may be added but not renamed.
func grid() []gridCell {
	return []gridCell{
		{name: "grid/fp1_n8", fp: "FP1", n: 8, aspect: 4, seed: 1,
			policy: selection.Policy{K1: 6}, memLimit: 300000},
		{name: "grid/fp2_n12", fp: "FP2", n: 12, aspect: 5, seed: 2,
			policy: selection.Policy{K1: 20, K2: 800, Theta: 0.5, S: 500}, memLimit: 300000},
		{name: "grid/fp2_n20", fp: "FP2", n: 20, aspect: 6, seed: 3,
			policy: selection.Policy{K1: 30, K2: 1000, Theta: 0.5, S: 500}, memLimit: 300000, large: true},
		{name: "grid/fp3_n20", fp: "FP3", n: 20, aspect: 5, seed: 1,
			policy: selection.Policy{K1: 40, K2: 1500, Theta: 0.5, S: 500}, memLimit: 300000, large: true},
	}
}

// Run measures the pinned grid and returns a fresh snapshot (no baseline).
func Run(pr int) (*Snapshot, error) {
	s := &Snapshot{
		Schema:     Schema,
		PR:         pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, g := range grid() {
		cell, err := runGrid(g)
		if err != nil {
			return nil, err
		}
		s.Cells = append(s.Cells, cell)
	}
	edit, err := runEditLoop()
	if err != nil {
		return nil, err
	}
	s.Cells = append(s.Cells, edit)
	s.Cells = append(s.Cells,
		microCell("micro/minima_l_8k", benchMinimaL),
		microCell("micro/minima_r_64k", benchMinimaR),
		microCell("micro/combine_merge_4k", benchCombineMerge),
		microCell("micro/rselect_2k_k64", benchRSelect),
		microCell("micro/lselect_1k_k48", benchLSelect),
	)
	return s, nil
}

func runGrid(g gridCell) (Cell, error) {
	tree, err := gen.ByName(g.fp)
	if err != nil {
		return Cell{}, err
	}
	rng := rand.New(rand.NewSource(g.seed))
	rawLib, err := gen.Library(rng, tree, gen.ModuleParams{
		N: g.n, MinArea: 2000000, MaxArea: 20000000, MaxAspect: g.aspect,
	})
	if err != nil {
		return Cell{}, err
	}
	lib := optimizer.Library(rawLib)
	opt, err := optimizer.New(lib, optimizer.Options{
		Policy:        g.policy,
		MemoryLimit:   g.memLimit,
		SkipPlacement: true,
		Workers:       1,
	})
	if err != nil {
		return Cell{}, err
	}
	var peak int64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := opt.Run(tree)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			peak = res.Stats.PeakStored
		}
	})
	if runErr != nil {
		return Cell{}, fmt.Errorf("benchsnap: %s: %w", g.name, runErr)
	}
	if r.N == 0 {
		return Cell{}, fmt.Errorf("benchsnap: %s: benchmark did not run", g.name)
	}
	return Cell{
		Name:        g.name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		PeakImpls:   peak,
		Iters:       r.N,
		Large:       g.large,
	}, nil
}

// runEditLoop measures the incremental re-optimization path the subtree
// store exists for: against a warm store, each op regenerates one module's
// implementation list and re-solves, so only the root-to-leaf spine through
// the edited leaf is evaluated — everything else splices. PeakImpls is left
// zero: the peak varies with the regenerated list, unlike the pinned grid
// workloads.
func runEditLoop() (Cell, error) {
	const name = "grid/editloop_fp2_n12"
	tree, err := gen.ByName("FP2")
	if err != nil {
		return Cell{}, err
	}
	params := gen.ModuleParams{N: 12, MinArea: 2000000, MaxArea: 20000000, MaxAspect: 5}
	rng := rand.New(rand.NewSource(11))
	rawLib, err := gen.Library(rng, tree, params)
	if err != nil {
		return Cell{}, err
	}
	lib := optimizer.Library(rawLib)
	store, err := substore.New(substore.Config{MaxBytes: 64 << 20})
	if err != nil {
		return Cell{}, err
	}
	policy := selection.Policy{K1: 20, K2: 800, Theta: 0.5, S: 500}
	opts := optimizer.Options{
		Policy:        policy,
		SkipPlacement: true,
		Workers:       1,
		Substore:      store,
	}
	opt, err := optimizer.New(lib, opts)
	if err != nil {
		return Cell{}, err
	}
	if _, err := opt.Run(tree); err != nil {
		return Cell{}, fmt.Errorf("benchsnap: %s: priming run: %w", name, err)
	}
	modules := tree.Modules()
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nl, err := gen.Module(rng, params)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			lib[modules[i%len(modules)]] = nl
			opt, err := optimizer.New(lib, opts)
			if err != nil {
				runErr = err
				b.FailNow()
			}
			if _, err := opt.Run(tree); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Cell{}, fmt.Errorf("benchsnap: %s: %w", name, runErr)
	}
	if r.N == 0 {
		return Cell{}, fmt.Errorf("benchsnap: %s: benchmark did not run", name)
	}
	return Cell{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iters:       r.N,
	}, nil
}

func microCell(name string, fn func(b *testing.B)) Cell {
	r := testing.Benchmark(fn)
	return Cell{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iters:       r.N,
	}
}

// LCandidates generates a deterministic, tie-heavy L-implementation
// candidate set of the kind the combine cross products emit: many shared
// coordinate values so dominance pruning's tie handling is on the hot path.
// Exported for reuse by the package benchmarks of internal/shape.
func LCandidates(n int, seed int64) []shape.LImpl {
	rng := rand.New(rand.NewSource(seed))
	out := make([]shape.LImpl, 0, n)
	for len(out) < n {
		w2 := int64(rng.Intn(64) + 1)
		h2 := int64(rng.Intn(64) + 1)
		out = append(out, shape.LImpl{
			W1: w2 + int64(rng.Intn(64)),
			W2: w2,
			H1: h2 + int64(rng.Intn(64)),
			H2: h2,
		})
	}
	return out
}

// RCandidates generates a deterministic rectangular candidate set with
// heavy width/height ties.
func RCandidates(n int, seed int64) []shape.RImpl {
	rng := rand.New(rand.NewSource(seed))
	out := make([]shape.RImpl, 0, n)
	for len(out) < n {
		out = append(out, shape.RImpl{
			W: int64(rng.Intn(512) + 1),
			H: int64(rng.Intn(512) + 1),
		})
	}
	return out
}

// Staircase generates a canonical n-corner R-list.
func Staircase(n int, seed int64) shape.RList {
	rng := rand.New(rand.NewSource(seed))
	impls := make([]shape.RImpl, n)
	w := int64(n) * 8
	h := int64(16)
	for i := range impls {
		impls[i] = shape.RImpl{W: w, H: h}
		w -= int64(rng.Intn(7) + 1)
		h += int64(rng.Intn(7) + 1)
	}
	return shape.MustRList(impls)
}

// MonotoneLList generates a canonical n-entry L-list (constant W2, W1
// nonincreasing, H1/H2 nondecreasing, no dominance).
func MonotoneLList(n int, seed int64) shape.LList {
	rng := rand.New(rand.NewSource(seed))
	out := make(shape.LList, n)
	w1 := int64(n)*6 + 100
	h1 := int64(50)
	h2 := int64(20)
	for i := range out {
		out[i] = shape.LImpl{W1: w1, W2: 90, H1: h1, H2: h2}
		w1 -= int64(rng.Intn(5) + 1)
		h1 += int64(rng.Intn(5) + 1)
		h2 += int64(rng.Intn(5))
	}
	if out[0].W1 < 90 {
		panic("benchsnap: list too long for base width")
	}
	return out
}

func benchMinimaL(b *testing.B) {
	cands := LCandidates(8192, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shape.MinimaL(cands)
	}
}

func benchMinimaR(b *testing.B) {
	cands := RCandidates(65536, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shape.MinimaR(cands)
	}
}

func benchCombineMerge(b *testing.B) {
	x := Staircase(4096, 11)
	y := Staircase(4096, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(combine.VCut(x, y)) == 0 {
			b.Fatal("empty merge")
		}
	}
}

func benchRSelect(b *testing.B) {
	l := Staircase(2048, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selection.RSelect(l, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLSelect(b *testing.B) {
	l := MonotoneLList(1024, 10)
	if err := l.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selection.LSelect(l, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// Write serializes s to path. When the file already holds a snapshot with a
// baseline — or holds a snapshot that should itself become the baseline —
// the baseline is carried forward: a snapshot is always diffed against the
// oldest recorded predecessor until the baseline is explicitly reset by
// deleting the file.
func Write(s *Snapshot, path string, baseline *Snapshot) error {
	if baseline != nil {
		b := *baseline
		b.Baseline = nil
		s.Baseline = &b
	} else if prev, err := Read(path); err == nil {
		if prev.Baseline != nil {
			s.Baseline = prev.Baseline
		} else {
			prev.Baseline = nil
			s.Baseline = prev
		}
	}
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Read parses a snapshot file.
func Read(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("benchsnap: %s: %w", path, err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("benchsnap: %s: unknown schema %q", path, s.Schema)
	}
	return &s, nil
}
