package benchsnap

import (
	"strings"
	"testing"
)

func snap(cells ...Cell) *Snapshot {
	return &Snapshot{Schema: Schema, Cells: cells}
}

func TestDiffPasses(t *testing.T) {
	old := snap(
		Cell{Name: "grid/a", NsPerOp: 1000, AllocsPerOp: 50},
		Cell{Name: "micro/b", NsPerOp: 200, AllocsPerOp: 8},
	)
	new := snap(
		Cell{Name: "grid/a", NsPerOp: 1099, AllocsPerOp: 50}, // within 10% slack
		Cell{Name: "micro/b", NsPerOp: 100, AllocsPerOp: 2},  // improved
		Cell{Name: "micro/c", NsPerOp: 5, AllocsPerOp: 1},    // new cell: no gate
	)
	report, err := Diff(old, new)
	if err != nil {
		t.Fatalf("diff failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "grid/a") || !strings.Contains(report, "no baseline") {
		t.Fatalf("report missing expected lines:\n%s", report)
	}
}

func TestDiffNsRegressionFails(t *testing.T) {
	old := snap(Cell{Name: "grid/a", NsPerOp: 1000, AllocsPerOp: 50})
	new := snap(Cell{Name: "grid/a", NsPerOp: 1101, AllocsPerOp: 50})
	if _, err := Diff(old, new); err == nil {
		t.Fatal("expected ns/op regression failure")
	}
}

func TestDiffAllocRegressionFails(t *testing.T) {
	old := snap(Cell{Name: "grid/a", NsPerOp: 1000, AllocsPerOp: 50})
	new := snap(Cell{Name: "grid/a", NsPerOp: 900, AllocsPerOp: 51})
	if _, err := Diff(old, new); err == nil {
		t.Fatal("expected allocs/op regression failure")
	}
}

func TestDiffMissingCellFails(t *testing.T) {
	old := snap(Cell{Name: "grid/a", NsPerOp: 1000, AllocsPerOp: 50})
	new := snap(Cell{Name: "grid/b", NsPerOp: 1000, AllocsPerOp: 50})
	if _, err := Diff(old, new); err == nil {
		t.Fatal("expected missing-cell failure")
	}
}
