package benchsnap

import (
	"fmt"
	"strings"
)

// NsRegressionPct is the allowed ns/op slack between two snapshots before
// the diff gate fails: wall time above old * (100+NsRegressionPct)/100 on
// any pinned cell is a regression. Allocation counts get no slack — they
// are deterministic for a pinned workload, so any increase is a real
// behavior change.
const NsRegressionPct = 10

// Diff compares every cell present in both snapshots and returns a
// human-readable report plus an error when the gate fails: a pinned cell
// regressed by more than NsRegressionPct in ns/op, or at all in allocs/op.
// Cells present in only one snapshot are reported but never fail the gate
// (the pinned set may legitimately grow between PRs).
func Diff(old, new *Snapshot) (string, error) {
	var b strings.Builder
	var failures []string
	matched := 0
	for _, nc := range new.Cells {
		oc, ok := old.Lookup(nc.Name)
		if !ok {
			fmt.Fprintf(&b, "  %-24s new cell (no baseline)\n", nc.Name)
			continue
		}
		matched++
		nsRatio := float64(nc.NsPerOp) / float64(oc.NsPerOp)
		fmt.Fprintf(&b, "  %-24s ns/op %12d -> %12d (%.2fx)  allocs/op %8d -> %8d\n",
			nc.Name, oc.NsPerOp, nc.NsPerOp, nsRatio, oc.AllocsPerOp, nc.AllocsPerOp)
		if nc.NsPerOp*100 > oc.NsPerOp*(100+NsRegressionPct) {
			failures = append(failures, fmt.Sprintf(
				"%s: ns/op regressed %d -> %d (> %d%% slack)",
				nc.Name, oc.NsPerOp, nc.NsPerOp, NsRegressionPct))
		}
		if nc.AllocsPerOp > oc.AllocsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op regressed %d -> %d",
				nc.Name, oc.AllocsPerOp, nc.AllocsPerOp))
		}
	}
	for _, oc := range old.Cells {
		if _, ok := new.Lookup(oc.Name); !ok {
			failures = append(failures, fmt.Sprintf("%s: cell disappeared from the pinned set", oc.Name))
		}
	}
	if matched == 0 {
		failures = append(failures, "no common cells between the snapshots")
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("benchsnap: diff gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
