package arena

import (
	"testing"

	"floorplan/internal/memtrack"
)

func TestAllocFullSliceExpression(t *testing.T) {
	a := New[int64](nil, 16)
	x := a.Alloc(4)
	y := a.Alloc(4)
	for i := range y {
		y[i] = int64(100 + i)
	}
	// Appending past x's capacity must reallocate, never bleed into y.
	x = append(x[:4], -1, -2)
	_ = x
	for i := range y {
		if y[i] != int64(100+i) {
			t.Fatalf("append through x corrupted y[%d] = %d", i, y[i])
		}
	}
}

func TestOversizeAndTailSkip(t *testing.T) {
	a := New[int64](nil, 8)
	a.Alloc(5) // slab 0, 3 elements left
	big := a.Alloc(20)
	if len(big) != 20 || cap(big) != 20 {
		t.Fatalf("oversize alloc len=%d cap=%d", len(big), cap(big))
	}
	if got := a.Bytes(); got != (8+20)*8 {
		t.Fatalf("Bytes() = %d, want %d", got, (8+20)*8)
	}
}

func TestResetReusesSlabs(t *testing.T) {
	a := New[int64](nil, 64)
	first := a.Alloc(10)
	before := a.Bytes()
	for cycle := 0; cycle < 5; cycle++ {
		a.Reset()
		again := a.Alloc(10)
		if &again[0] != &first[0] {
			t.Fatal("Reset did not recycle the first slab")
		}
		if a.Bytes() != before {
			t.Fatalf("cycle %d grew slabs: %d -> %d bytes", cycle, before, a.Bytes())
		}
	}
}

func TestLedgerChargeAndRelease(t *testing.T) {
	ledger := memtrack.NewTracker(0) // unlimited
	a := New[int32](ledger, 100)
	a.Alloc(1)
	if got := ledger.Current(); got != 400 {
		t.Fatalf("ledger after one slab = %d, want 400", got)
	}
	a.Alloc(100) // doesn't fit the 99-element tail: second slab
	if got := ledger.Current(); got != 800 {
		t.Fatalf("ledger after two slabs = %d, want 800", got)
	}
	a.Reset()
	if got := ledger.Current(); got != 800 {
		t.Fatalf("Reset must keep the charge, got %d", got)
	}
	a.Free()
	if got := ledger.Current(); got != 0 {
		t.Fatalf("Free must release the charge, got %d", got)
	}
	if got := ledger.Peak(); got != 800 {
		t.Fatalf("peak = %d, want 800", got)
	}
	// The arena stays usable after Free.
	a.Alloc(3)
	if got := ledger.Current(); got != 400 {
		t.Fatalf("ledger after post-Free alloc = %d, want 400", got)
	}
}

func TestBufIsEmptyWithCapacity(t *testing.T) {
	a := New[byte](nil, 32)
	b := a.Buf(10)
	if len(b) != 0 || cap(b) != 10 {
		t.Fatalf("Buf(10): len=%d cap=%d", len(b), cap(b))
	}
}
