// Package arena provides typed slab allocators for the optimizer hot path.
//
// The combine stage builds one large transient candidate buffer per node —
// pruned in place, partitioned into retained lists, then dead. Allocating
// those buffers individually makes the garbage collector walk and reclaim
// megabytes of short-lived backing arrays per node. An Arena instead carves
// them out of a small number of large slabs: Reset makes every slab
// reusable at node retirement without returning memory to the runtime (and
// without re-zeroing it — the buffers are append targets, fully overwritten
// before they are read), and Free releases the slabs at the end of a run.
//
// Each Arena charges its slab bytes to a memtrack.Tracker ledger at slab
// creation (reservation-style, like the optimizer's implementation-count
// ledger) and releases them in bulk on Free, so telemetry can report a
// byte-accurate slab watermark. The ledger is accounting, not admission
// control: pass an unlimited Tracker. An Arena with a limited ledger panics
// when the limit is hit — callers that want enforcement check the ledger
// themselves before allocating.
//
// An Arena is not safe for concurrent use; the optimizer gives each worker
// its own.
package arena

import (
	"fmt"
	"unsafe"

	"floorplan/internal/memtrack"
)

// Arena is a slab allocator for elements of type T. The zero value is not
// usable; construct with New.
type Arena[T any] struct {
	ledger   *memtrack.Tracker // byte ledger; nil disables accounting
	elemSize int64
	slabCap  int   // elements per regular slab
	slabs    [][]T // every slab ever created, retained across Resets
	active   int   // slab currently being filled
	used     int   // elements handed out from the active slab
	charged  int64 // bytes currently charged to the ledger
}

// New returns an arena cutting regular slabs of slabCap elements, charging
// slab bytes to ledger (which may be nil).
func New[T any](ledger *memtrack.Tracker, slabCap int) *Arena[T] {
	if slabCap <= 0 {
		panic("arena: non-positive slab capacity")
	}
	var zero T
	return &Arena[T]{
		ledger:   ledger,
		elemSize: int64(unsafe.Sizeof(zero)),
		slabCap:  slabCap,
	}
}

// Alloc returns a slice of n elements with cap == n (a full slice
// expression, so appends past n can never bleed into a neighbouring
// allocation). The contents are unspecified: slabs are recycled by Reset
// without re-zeroing. The slice is valid until Reset or Free.
func (a *Arena[T]) Alloc(n int) []T {
	if n < 0 {
		panic("arena: negative allocation")
	}
	for {
		if a.active < len(a.slabs) {
			s := a.slabs[a.active]
			if len(s)-a.used >= n {
				out := s[a.used : a.used+n : a.used+n]
				a.used += n
				return out
			}
			// The tail of this slab is too small (it stays wasted until the
			// next Reset); move on.
			a.active++
			a.used = 0
			continue
		}
		c := a.slabCap
		if n > c {
			c = n // oversize request gets a dedicated slab
		}
		a.charge(int64(c) * a.elemSize)
		a.slabs = append(a.slabs, make([]T, c))
	}
}

// Buf is Alloc returning a zero-length slice with capacity n, the shape an
// append-built candidate buffer wants.
func (a *Arena[T]) Buf(n int) []T {
	return a.Alloc(n)[:0]
}

// Reset makes every slab reusable without releasing memory or ledger
// charge. All previously returned slices become invalid.
func (a *Arena[T]) Reset() {
	a.active = 0
	a.used = 0
}

// Free drops the slabs and releases the ledger charge. The arena remains
// usable; subsequent Allocs start fresh slabs.
func (a *Arena[T]) Free() {
	a.slabs = nil
	a.active = 0
	a.used = 0
	if a.ledger != nil && a.charged > 0 {
		if err := a.ledger.Release(a.charged); err != nil {
			panic(fmt.Sprintf("arena: slab ledger release: %v", err))
		}
	}
	a.charged = 0
}

// Bytes returns the bytes currently held in slabs (== the ledger charge).
func (a *Arena[T]) Bytes() int64 { return a.charged }

func (a *Arena[T]) charge(bytes int64) {
	if a.ledger != nil {
		if err := a.ledger.Add(bytes); err != nil {
			panic(fmt.Sprintf("arena: slab ledger rejected %d bytes: %v", bytes, err))
		}
	}
	a.charged += bytes
}
