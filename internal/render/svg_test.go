package render

import (
	"strings"
	"testing"

	"floorplan/internal/optimizer"
)

func TestSVGRendering(t *testing.T) {
	p := demoPlacement(t)
	out := SVG(p, 400)
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatalf("not an SVG document:\n%s", out)
	}
	// One outline rect + five module rects (no slack in the perfect
	// pinwheel, so no dashed insets).
	if got := strings.Count(out, "<rect"); got != 6 {
		t.Errorf("%d rects, want 6:\n%s", got, out)
	}
	if strings.Contains(out, "stroke-dasharray") {
		t.Error("perfect pinwheel should have no slack insets")
	}
	for _, name := range []string{"nw", "ne", "se", "sw"} {
		if !strings.Contains(out, ">"+name+"<") {
			t.Errorf("label %q missing", name)
		}
	}
}

func TestSVGEdgeCases(t *testing.T) {
	if out := SVG(nil, 100); !strings.Contains(out, "<svg") {
		t.Error("nil placement should yield an empty SVG document")
	}
	if out := SVG(&optimizer.Placement{}, 100); !strings.Contains(out, "<svg") {
		t.Error("empty placement should yield an empty SVG document")
	}
	// Tiny width is clamped.
	p := demoPlacement(t)
	if out := SVG(p, 1); !strings.Contains(out, `width="64"`) {
		t.Error("width not clamped to 64")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	p := demoPlacement(t)
	p.Modules[0].Module = "a<b&c"
	out := SVG(p, 800)
	if strings.Contains(out, "a<b&c") {
		t.Error("unescaped name in SVG")
	}
	if !strings.Contains(out, "a&lt;b&amp;c") {
		t.Error("escaped name missing")
	}
}
