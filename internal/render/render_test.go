package render

import (
	"strings"
	"testing"

	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

func demoPlacement(t *testing.T) *optimizer.Placement {
	t.Helper()
	lib := optimizer.Library{
		"nw": shape.RList{{W: 4, H: 7}},
		"ne": shape.RList{{W: 6, H: 4}},
		"se": shape.RList{{W: 3, H: 6}},
		"sw": shape.RList{{W: 7, H: 3}},
		"c":  shape.RList{{W: 3, H: 3}},
	}
	tree := plan.NewWheel(plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"), plan.NewLeaf("sw"), plan.NewLeaf("c"))
	o, err := optimizer.New(lib, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(tree)
	if err != nil {
		t.Fatal(err)
	}
	return res.Placement
}

func TestPlacementRendering(t *testing.T) {
	out := Placement(demoPlacement(t), 60)
	if !strings.Contains(out, "envelope 10x10") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, name := range []string{"nw", "ne", "se", "sw", "c"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing label %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "-") || !strings.Contains(out, "|") {
		t.Errorf("no box art:\n%s", out)
	}
}

func TestPlacementEmptyAndTiny(t *testing.T) {
	if got := Placement(nil, 40); !strings.Contains(got, "empty") {
		t.Errorf("nil placement: %q", got)
	}
	if got := Placement(&optimizer.Placement{}, 40); !strings.Contains(got, "empty") {
		t.Errorf("zero placement: %q", got)
	}
	// Tiny width is clamped rather than crashing.
	out := Placement(demoPlacement(t), 1)
	if len(out) == 0 {
		t.Error("tiny width produced nothing")
	}
}

func TestTreeRendering(t *testing.T) {
	tree := plan.NewWheel(
		plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b")),
		plan.NewLeaf("c"), plan.NewLeaf("d"), plan.NewLeaf("e"), plan.NewLeaf("f"),
	)
	tree.Name = "demo"
	out := Tree(tree)
	for _, want := range []string{"wheel demo [6 modules]", "vslice [2 modules]", "leaf a", "leaf f"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	ccw := plan.NewCCWWheel(plan.NewLeaf("1"), plan.NewLeaf("2"), plan.NewLeaf("3"), plan.NewLeaf("4"), plan.NewLeaf("5"))
	if !strings.Contains(Tree(ccw), "(ccw)") {
		t.Error("CCW marker missing")
	}
	if !strings.Contains(Tree(nil), "nil") {
		t.Error("nil tree not handled")
	}
}

func TestPlacementTable(t *testing.T) {
	out := PlacementTable(demoPlacement(t))
	if !strings.Contains(out, "whitespace 0 (0.00%)") {
		t.Errorf("perfect pinwheel should report zero whitespace:\n%s", out)
	}
	for _, name := range []string{"nw", "ne", "se", "sw"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing module %q:\n%s", name, out)
		}
	}
	if !strings.Contains(PlacementTable(nil), "no placement") {
		t.Error("nil placement not handled")
	}
}
