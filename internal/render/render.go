// Package render draws floorplan placements and trees as ASCII art, for the
// example programs and CLI tools (Figure 8-style pictures of the test
// floorplans).
package render

import (
	"fmt"
	"sort"
	"strings"

	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
)

// Placement renders the floorplan as a character grid of the given maximum
// width. Every module's box is outlined with +-| characters and labeled
// with as much of its name as fits. Aspect ratio is roughly preserved
// (characters are about twice as tall as wide, so vertical resolution is
// halved).
func Placement(p *optimizer.Placement, maxWidth int) string {
	if p == nil || len(p.Modules) == 0 {
		return "(empty placement)\n"
	}
	if maxWidth < 16 {
		maxWidth = 16
	}
	// Scale layout units to character cells.
	sx := float64(maxWidth-1) / float64(p.Envelope.W)
	sy := sx / 2 // terminal cells are ~2x taller than wide
	rows := int(float64(p.Envelope.H)*sy) + 1
	if rows < 4 {
		rows = 4
	}
	cols := maxWidth
	grid := make([][]byte, rows+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols+1))
	}
	// Draw boxes in a deterministic order.
	mods := p.ByModule()
	for _, m := range mods {
		x0 := int(float64(m.Box.MinX) * sx)
		x1 := int(float64(m.Box.MaxX) * sx)
		// Flip y: row 0 is the top of the floorplan.
		y0 := rows - int(float64(m.Box.MaxY)*sy)
		y1 := rows - int(float64(m.Box.MinY)*sy)
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if y1 <= y0 {
			y1 = y0 + 1
		}
		drawBox(grid, x0, y0, x1, y1)
		label := m.Module
		if len(label) > x1-x0-1 {
			label = label[:max(0, x1-x0-1)]
		}
		if label != "" && y0+1 <= y1-1 {
			copy(grid[y0+1][x0+1:], label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "envelope %dx%d, area %d\n", p.Envelope.W, p.Envelope.H, p.Envelope.Area())
	for _, row := range grid {
		line := strings.TrimRight(string(row), " ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func drawBox(grid [][]byte, x0, y0, x1, y1 int) {
	clampY := func(y int) int {
		if y < 0 {
			return 0
		}
		if y >= len(grid) {
			return len(grid) - 1
		}
		return y
	}
	y0, y1 = clampY(y0), clampY(y1)
	clampX := func(x int) int {
		if x < 0 {
			return 0
		}
		if x >= len(grid[0]) {
			return len(grid[0]) - 1
		}
		return x
	}
	x0, x1 = clampX(x0), clampX(x1)
	for x := x0; x <= x1; x++ {
		grid[y0][x] = horiz(grid[y0][x])
		grid[y1][x] = horiz(grid[y1][x])
	}
	for y := y0; y <= y1; y++ {
		grid[y][x0] = vert(grid[y][x0])
		grid[y][x1] = vert(grid[y][x1])
	}
	grid[y0][x0], grid[y0][x1] = '+', '+'
	grid[y1][x0], grid[y1][x1] = '+', '+'
}

func horiz(old byte) byte {
	if old == '|' || old == '+' {
		return '+'
	}
	return '-'
}

func vert(old byte) byte {
	if old == '-' || old == '+' {
		return '+'
	}
	return '|'
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Tree renders a floorplan tree as an indented outline.
func Tree(n *plan.Node) string {
	var b strings.Builder
	renderTree(&b, n, 0)
	return b.String()
}

func renderTree(b *strings.Builder, n *plan.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n == nil {
		fmt.Fprintf(b, "%s(nil)\n", indent)
		return
	}
	switch n.Kind {
	case plan.Leaf:
		fmt.Fprintf(b, "%sleaf %s\n", indent, n.Module)
	default:
		label := n.Kind.String()
		if n.Kind == plan.Wheel && n.CCW {
			label += " (ccw)"
		}
		if n.Name != "" {
			label += " " + n.Name
		}
		fmt.Fprintf(b, "%s%s [%d modules]\n", indent, label, n.ModuleCount())
		for _, c := range n.Children {
			renderTree(b, c, depth+1)
		}
	}
}

// PlacementTable lists every module's box and implementation, sorted by
// module name.
func PlacementTable(p *optimizer.Placement) string {
	if p == nil {
		return "(no placement)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %8s\n", "module", "position", "box", "impl", "slack")
	mods := p.ByModule()
	sort.SliceStable(mods, func(i, j int) bool { return mods[i].Module < mods[j].Module })
	for _, m := range mods {
		slack := m.Box.Area() - m.Impl.Area()
		fmt.Fprintf(&b, "%-10s %12s %12s %10s %8d\n",
			m.Module,
			fmt.Sprintf("(%d,%d)", m.Box.MinX, m.Box.MinY),
			fmt.Sprintf("%dx%d", m.Box.Width(), m.Box.Height()),
			fmt.Sprintf("%dx%d", m.Impl.W, m.Impl.H),
			slack)
	}
	slack, frac := p.WhiteSpace()
	fmt.Fprintf(&b, "envelope %dx%d area %d, whitespace %d (%.2f%%)\n",
		p.Envelope.W, p.Envelope.H, p.Envelope.Area(), slack, 100*frac)
	return b.String()
}
