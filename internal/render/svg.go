package render

import (
	"fmt"
	"strings"

	"floorplan/internal/optimizer"
)

// svgPalette cycles through fill colors for module boxes.
var svgPalette = []string{
	"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
	"#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
}

// SVG renders the placement as a standalone SVG document of the given pixel
// width (height follows the floorplan's aspect ratio). Each module box is
// drawn with its name; slack inside a box is visible as the gap between the
// box outline and its module-implementation inset.
func SVG(p *optimizer.Placement, width int) string {
	if p == nil || len(p.Modules) == 0 || p.Envelope.W <= 0 || p.Envelope.H <= 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`
	}
	if width < 64 {
		width = 64
	}
	scale := float64(width) / float64(p.Envelope.W)
	height := int(float64(p.Envelope.H)*scale) + 1

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="white" stroke="black"/>`+"\n", width, height)
	mods := p.ByModule()
	for i, m := range mods {
		x := float64(m.Box.MinX) * scale
		// SVG y grows downward; flip so the floorplan origin is bottom-left.
		y := float64(p.Envelope.H-m.Box.MaxY) * scale
		w := float64(m.Box.Width()) * scale
		h := float64(m.Box.Height()) * scale
		fill := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black" stroke-width="1"/>`+"\n",
			x, y, w, h, fill)
		// The implementation inset (lower-left of the box).
		iw := float64(m.Impl.W) * scale
		ih := float64(m.Impl.H) * scale
		if iw < w || ih < h {
			iy := float64(p.Envelope.H-m.Box.MinY) * scale
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="black" stroke-width="0.5" stroke-dasharray="3,2"/>`+"\n",
				x, iy-ih, iw, ih)
		}
		fontSize := h / 4
		if wBased := w / float64(len(m.Module)+1) * 1.8; wBased < fontSize {
			fontSize = wBased
		}
		if fontSize > 16 {
			fontSize = 16
		}
		if fontSize >= 4 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.1f" font-family="monospace">%s</text>`+"\n",
				x+2, y+fontSize+1, fontSize, svgEscape(m.Module))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
