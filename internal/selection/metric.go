package selection

import (
	"fmt"

	"floorplan/internal/shape"
)

// Metric selects the distance used by L_Selection to price a discarded
// implementation. Footnote 2 of the paper: "we can use any L_p metric to
// measure the distance … all the lemmas and theorem presented in this
// subsection remain correct for any L_p metric." The lemmas only need the
// distance to be monotone in the per-coordinate differences, which every
// choice below satisfies.
type Metric int

const (
	// Manhattan is the paper's default L1 metric.
	Manhattan Metric = iota
	// Chebyshev is the L∞ metric: the largest coordinate difference.
	Chebyshev
	// EuclideanSq is the squared L2 metric. The square keeps arithmetic
	// exact over int64; minimizing summed squared distances penalizes
	// large gaps harder than L1.
	EuclideanSq
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Manhattan:
		return "L1"
	case Chebyshev:
		return "Linf"
	case EuclideanSq:
		return "L2sq"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Valid reports whether m names a known metric.
func (m Metric) Valid() bool {
	return m == Manhattan || m == Chebyshev || m == EuclideanSq
}

// Dist returns the distance between two L-shaped implementations under m.
func (m Metric) Dist(a, b shape.LImpl) int64 {
	d1 := abs64(a.W1 - b.W1)
	d2 := abs64(a.W2 - b.W2)
	d3 := abs64(a.H1 - b.H1)
	d4 := abs64(a.H2 - b.H2)
	switch m {
	case Manhattan:
		return d1 + d2 + d3 + d4
	case Chebyshev:
		return max64(max64(d1, d2), max64(d3, d4))
	case EuclideanSq:
		return d1*d1 + d2*d2 + d3*d3 + d4*d4
	default:
		panic(fmt.Sprintf("selection: unknown metric %d", int(m)))
	}
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ComputeLErrorMetric is Compute_L_Error under an arbitrary metric.
func ComputeLErrorMetric(l shape.LList, m Metric) *LErrorTable {
	n := len(l)
	t := &LErrorTable{n: n, tab: make([]int64, n*n)}
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			var e int64
			for q := i + 1; q < j; q++ {
				dl := m.Dist(l[i], l[q])
				dr := m.Dist(l[q], l[j])
				if dr < dl {
					dl = dr
				}
				e += dl
			}
			t.tab[i*n+j] = e
		}
	}
	return t
}

// LSubsetErrorMetric evaluates ERROR(L, L') from its definition under an
// arbitrary metric (test oracle; see LSubsetError).
func LSubsetErrorMetric(l shape.LList, indices []int, m Metric) (int64, error) {
	n := len(l)
	if len(indices) < 2 || indices[0] != 0 || indices[len(indices)-1] != n-1 {
		return 0, fmt.Errorf("selection: subset must include both endpoints")
	}
	retained := make(map[int]bool, len(indices))
	prev := -1
	for _, idx := range indices {
		if idx <= prev || idx >= n {
			return 0, fmt.Errorf("selection: bad subset index %d", idx)
		}
		retained[idx] = true
		prev = idx
	}
	var total int64
	for q := 0; q < n; q++ {
		if retained[q] {
			continue
		}
		best := int64(-1)
		for _, idx := range indices {
			d := m.Dist(l[q], l[idx])
			if best < 0 || d < best {
				best = d
			}
		}
		total += best
	}
	return total, nil
}
