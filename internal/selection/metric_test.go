package selection

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"floorplan/internal/shape"
)

func TestMetricStringsAndValidity(t *testing.T) {
	if Manhattan.String() != "L1" || Chebyshev.String() != "Linf" || EuclideanSq.String() != "L2sq" {
		t.Error("metric names wrong")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Error("unknown metric formatting wrong")
	}
	if !Manhattan.Valid() || !Chebyshev.Valid() || !EuclideanSq.Valid() {
		t.Error("known metrics reported invalid")
	}
	if Metric(9).Valid() {
		t.Error("unknown metric reported valid")
	}
}

func TestMetricDist(t *testing.T) {
	a := shape.LImpl{W1: 10, W2: 4, H1: 3, H2: 1}
	b := shape.LImpl{W1: 7, W2: 4, H1: 5, H2: 4}
	// Deltas: 3, 0, 2, 3.
	if got := Manhattan.Dist(a, b); got != 8 {
		t.Errorf("L1 = %d", got)
	}
	if got := Chebyshev.Dist(a, b); got != 3 {
		t.Errorf("Linf = %d", got)
	}
	if got := EuclideanSq.Dist(a, b); got != 9+0+4+9 {
		t.Errorf("L2sq = %d", got)
	}
	for _, m := range []Metric{Manhattan, Chebyshev, EuclideanSq} {
		if m.Dist(a, b) != m.Dist(b, a) {
			t.Errorf("%v not symmetric", m)
		}
		if m.Dist(a, a) != 0 {
			t.Errorf("%v: d(a,a) != 0", m)
		}
	}
}

func TestMetricDistPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Metric(9).Dist(shape.LImpl{}, shape.LImpl{})
}

// TestLemma3HoldsForAllMetrics checks footnote 2: the neighbour-restricted
// error equals the global definition under every supported metric.
func TestLemma3HoldsForAllMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, m := range []Metric{Manhattan, Chebyshev, EuclideanSq} {
		for trial := 0; trial < 60; trial++ {
			n := 3 + rng.Intn(12)
			l := randomLList(rng, n)
			table := ComputeLErrorMetric(l, m)
			indices := []int{0}
			for i := 1; i < n-1; i++ {
				if rng.Intn(2) == 0 {
					indices = append(indices, i)
				}
			}
			indices = append(indices, n-1)
			var viaTable int64
			for q := 0; q+1 < len(indices); q++ {
				viaTable += table.At(indices[q], indices[q+1])
			}
			direct, err := LSubsetErrorMetric(l, indices, m)
			if err != nil {
				t.Fatal(err)
			}
			if viaTable != direct {
				t.Fatalf("%v: neighbour formula %d != global %d\n%v %v", m, viaTable, direct, l, indices)
			}
		}
	}
}

// lSelectBruteMetric is the exhaustive oracle under a metric.
func lSelectBruteMetric(l shape.LList, k int, m Metric) int64 {
	n := len(l)
	best := int64(-1)
	indices := make([]int, k)
	indices[0], indices[k-1] = 0, n-1
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k-1 {
			e, err := LSubsetErrorMetric(l, indices, m)
			if err != nil {
				panic(err)
			}
			if best < 0 || e < best {
				best = e
			}
			return
		}
		for i := from; i <= n-2-(k-2-pos); i++ {
			indices[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(1, 1)
	return best
}

func TestLSelectMetricOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		k := 2 + r.Intn(n-2)
		l := randomLList(r, n)
		for _, m := range []Metric{Manhattan, Chebyshev, EuclideanSq} {
			res, err := LSelectMetric(l, k, m)
			if err != nil {
				t.Logf("%v: %v", m, err)
				return false
			}
			want := lSelectBruteMetric(l, k, m)
			if res.Error != want {
				t.Logf("%v: n=%d k=%d got %d want %d", m, n, k, res.Error, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLSelectMetricRejectsUnknown(t *testing.T) {
	l := randomLList(rand.New(rand.NewSource(1)), 5)
	if _, err := LSelectMetric(l, 3, Metric(42)); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestLSelectDefaultIsManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	l := randomLList(rng, 12)
	a, err := LSelect(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LSelectMetric(l, 5, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Error != b.Error {
		t.Fatalf("LSelect %d != LSelectMetric(L1) %d", a.Error, b.Error)
	}
}

func TestPolicyWithMetric(t *testing.T) {
	if err := (Policy{K2: 10, LMetric: Chebyshev}).Validate(); err != nil {
		t.Errorf("Chebyshev policy rejected: %v", err)
	}
	if err := (Policy{K2: 10, LMetric: Metric(9)}).Validate(); err == nil {
		t.Error("unknown metric policy accepted")
	}
	// Different metrics generally select different subsets.
	rng := rand.New(rand.NewSource(94))
	set := shape.LSet{Lists: []shape.LList{randomLList(rng, 60)}}
	p1 := Policy{K2: 10, LMetric: Manhattan}
	p2 := Policy{K2: 10, LMetric: EuclideanSq}
	r1, _, err := p1.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := p2.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size() != 10 || r2.Size() != 10 {
		t.Fatalf("sizes %d, %d", r1.Size(), r2.Size())
	}
}
