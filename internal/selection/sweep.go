package selection

import (
	"fmt"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// SweepPoint is one point of the error-vs-k trade-off curve of an
// irreducible R-list.
type SweepPoint struct {
	// K is the subset size.
	K int
	// Error is ERROR(R, R') of the optimal K-subset.
	Error int64
}

// RSweep computes the full trade-off curve of R_Selection in a single
// dynamic program: for every k in [2, min(kmax, n)], the minimum staircase
// error of keeping exactly k implementations. One O(kmax · n²) pass — the
// same cost as a single R_Selection at kmax — yields every point, because
// the CSPP table W(s, v, l) already contains the optimum for each l.
//
// The curve is non-increasing in K and hits zero at K = n.
func RSweep(l shape.RList, kmax int) ([]SweepPoint, error) {
	n := len(l)
	if n == 0 {
		return nil, fmt.Errorf("selection: RSweep on empty list")
	}
	if kmax < 2 {
		return nil, fmt.Errorf("selection: RSweep needs kmax >= 2, got %d", kmax)
	}
	if kmax > n {
		kmax = n
	}
	if n == 1 {
		return []SweepPoint{{K: 1, Error: 0}}, nil
	}
	const inf = cspp.Inf
	prev := make([]int64, n)
	cur := make([]int64, n)
	for i := range prev {
		prev[i] = inf
	}
	prev[0] = 0
	col := make([]int64, n)
	points := make([]SweepPoint, 0, kmax-1)
	for level := 2; level <= kmax; level++ {
		for j := 0; j < n; j++ {
			cur[j] = inf
		}
		for j := level - 1; j < n; j++ {
			rErrorColumn(l, j, col)
			best := inf
			for i := level - 2; i < j; i++ {
				if prev[i] == inf {
					continue
				}
				if w := prev[i] + col[i]; w < best {
					best = w
				}
			}
			cur[j] = best
		}
		if cur[n-1] != inf {
			points = append(points, SweepPoint{K: level, Error: cur[n-1]})
		}
		prev, cur = cur, prev
	}
	return points, nil
}

// RSelectBudget picks the smallest subset whose staircase error does not
// exceed budget, and returns that selection. A zero budget returns the full
// list (only a complete selection has zero error on a strictly monotone
// staircase). This is the "error budget" dual of the paper's fixed-K1 rule:
// instead of capping memory per block and accepting whatever error results,
// cap the error per block and accept whatever memory results.
func RSelectBudget(l shape.RList, budget int64) (RResult, error) {
	n := len(l)
	if n == 0 {
		return RResult{}, fmt.Errorf("selection: RSelectBudget on empty list")
	}
	if budget < 0 {
		return RResult{}, fmt.Errorf("selection: negative error budget %d", budget)
	}
	if n <= 2 {
		return identityR(l), nil
	}
	curve, err := RSweep(l, n)
	if err != nil {
		return RResult{}, err
	}
	for _, p := range curve {
		if p.Error <= budget {
			return RSelect(l, p.K)
		}
	}
	// Unreachable: K = n always has zero error.
	return identityR(l), nil
}
