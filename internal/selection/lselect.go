package selection

import (
	"fmt"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// LResult is the outcome of L_Selection on a single irreducible L-list.
type LResult struct {
	// Selected is the retained sub-list, still canonical.
	Selected shape.LList
	// Indices are the retained positions within the input list.
	Indices []int
	// Error is ERROR(L, L'): the summed nearest-neighbour distance of the
	// discarded implementations.
	Error int64
}

// LSelect is the paper's L_Selection (Section 4.3): it optimally selects k
// implementations from an irreducible L-list minimizing ERROR(L, L'), by
// building the Compute_L_Error table and solving the CSPP on the complete
// interval DAG over list positions. Both endpoints are always retained.
//
// Complexity: O(n^3) time dominated by Compute_L_Error (Theorem 3), O(n^2)
// memory for the table. Callers bound n with HeuristicLReduce first (the
// paper's Section 5 "S" technique) when lists are long.
func LSelect(l shape.LList, k int) (LResult, error) {
	return LSelectMetric(l, k, Manhattan)
}

// LSelectMetric is L_Selection under an arbitrary distance metric; the
// paper's footnote 2 observes that every lemma holds for any L_p metric.
func LSelectMetric(l shape.LList, k int, m Metric) (LResult, error) {
	if !m.Valid() {
		return LResult{}, fmt.Errorf("selection: unknown metric %v", m)
	}
	n := len(l)
	if n == 0 {
		return LResult{}, fmt.Errorf("selection: LSelect on empty list")
	}
	if k >= n {
		return identityL(l), nil
	}
	if k < 2 {
		return LResult{}, fmt.Errorf("selection: LSelect needs k >= 2 to keep both endpoints, got k=%d for n=%d", k, n)
	}
	if m == Manhattan && lListTelescopes(l) {
		// Fused pass: error columns from prefix sums, no O(n³) table. The
		// selection is bit-identical to the table path (see fused.go).
		return lSelectFused(l, k)
	}
	tableLPasses.Add(1)
	table := ComputeLErrorMetric(l, m)
	indices, weight, err := cspp.SolveDense(n, k, table.At)
	if err != nil {
		return LResult{}, fmt.Errorf("selection: LSelect CSPP: %w", err)
	}
	sub, err := l.Subset(indices)
	if err != nil {
		return LResult{}, fmt.Errorf("selection: LSelect traceback: %w", err)
	}
	return LResult{Selected: sub, Indices: indices, Error: weight}, nil
}

func identityL(l shape.LList) LResult {
	idx := make([]int, len(l))
	for i := range idx {
		idx[i] = i
	}
	sub := make(shape.LList, len(l))
	copy(sub, l)
	return LResult{Selected: sub, Indices: idx, Error: 0}
}

// LSelectBrute is the exponential oracle for LSelect: minimum ERROR(L, L')
// over every k-subset containing both endpoints, with the error evaluated
// from its definition (global nearest retained implementation). Exported
// for tests only.
func LSelectBrute(l shape.LList, k int) (LResult, error) {
	n := len(l)
	if n == 0 {
		return LResult{}, fmt.Errorf("selection: LSelectBrute on empty list")
	}
	if k >= n {
		return identityL(l), nil
	}
	if k < 2 {
		return LResult{}, fmt.Errorf("selection: k=%d too small", k)
	}
	best := LResult{Error: -1}
	indices := make([]int, k)
	indices[0], indices[k-1] = 0, n-1
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k-1 {
			e, err := LSubsetError(l, indices)
			if err != nil {
				panic(err)
			}
			if best.Error < 0 || e < best.Error {
				sub, err := l.Subset(indices)
				if err != nil {
					panic(err)
				}
				best = LResult{Selected: sub, Indices: append([]int(nil), indices...), Error: e}
			}
			return
		}
		for i := from; i <= n-2-(k-2-pos); i++ {
			indices[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(1, 1)
	return best, nil
}

// HeuristicLReduce implements the paper's Section 5 speed-up: when a list is
// longer than S, a cheap heuristic first cuts it to S implementations and
// the exact L_Selection then finishes the job. The heuristic keeps both
// endpoints and samples the interior uniformly — the natural
// shape-preserving choice given that the list is monotone in every
// coordinate (the paper leaves the heuristic unspecified).
func HeuristicLReduce(l shape.LList, s int) shape.LList {
	n := len(l)
	if s >= n || n <= 2 {
		out := make(shape.LList, n)
		copy(out, l)
		return out
	}
	if s < 2 {
		s = 2
	}
	out := make(shape.LList, 0, s)
	prevPos := -1
	for i := 0; i < s; i++ {
		// Evenly spaced positions from 0 to n-1 inclusive, rounded.
		pos := (i*(n-1) + (s-1)/2) / (s - 1)
		if pos == prevPos {
			continue
		}
		out = append(out, l[pos])
		prevPos = pos
	}
	return out
}
