package selection

import (
	"fmt"
	"sync/atomic"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// This file implements the fused error+CSPP passes: instead of
// materializing an error table and handing it to the level-major dense
// solver, selection drives cspp.SolveDenseColumns, generating each error
// column exactly once — on the fly, from a recurrence — while the DP
// consumes it.
//
// For R_Selection this turns the per-(layer, j) column regeneration of the
// streamed DP into a single generation per j (a factor-k reduction of the
// column work). For L_Selection under the Manhattan metric it removes the
// O(n³) Compute_L_Error table entirely: on a canonical L-list the L1
// distance telescopes (see lFusedColumn), so one prefix-sum array plus a
// monotone two-pointer yields any error column in amortized O(n), for an
// O(kn²) total — the same bound as R_Selection. Non-telescoping metrics
// (Chebyshev, squared Euclidean) keep the table path; that is the fused
// pass's applicability cutoff, not a size heuristic, and DESIGN.md §11
// records it.
//
// Both fused passes produce bit-identical selections to the table paths:
// the weights are algebraically equal and SolveDenseColumns preserves
// SolveDense's scan order and tie-breaks exactly (pinned by tests here and
// in package cspp).

// Fused-pass hit counters. Process-wide (like the cspp DP pool counters):
// telemetry collectors snapshot deltas around a run, so concurrent runs see
// combined counts — documented in the report's runtime section.
var (
	fusedRPasses atomic.Int64
	fusedLPasses atomic.Int64
	tableLPasses atomic.Int64
)

// FusedCounters returns the cumulative fused-pass statistics: R-selections
// solved via the fused column DP, L-selections solved via the fused
// Manhattan pass, and L-selections that fell back to the error table.
func FusedCounters() (fusedR, fusedL, tableL int64) {
	return fusedRPasses.Load(), fusedLPasses.Load(), tableLPasses.Load()
}

// lListTelescopes reports whether the fused Manhattan recurrence applies to
// l: constant W2, W1 nonincreasing, H1 and H2 nondecreasing — the canonical
// irreducible L-list shape (LList.Validate), under which the L1 distance
// between positions i < q collapses to s(q) - s(i) with s = H1 + H2 - W1.
// Canonicality is part of LSelect's contract, but the O(n) check keeps the
// fused path self-guarding: a non-canonical list silently falls back to the
// general table, whose abs-based distances need no monotonicity.
func lListTelescopes(l shape.LList) bool {
	for i := 1; i < len(l); i++ {
		if l[i].W2 != l[0].W2 || l[i].W1 > l[i-1].W1 ||
			l[i].H1 < l[i-1].H1 || l[i].H2 < l[i-1].H2 {
			return false
		}
	}
	return true
}

// lSelectFused is L_Selection under the Manhattan metric on a telescoping
// list. For retained neighbours i < j, each discarded q in between pays
// min(s(q)-s(i), s(j)-s(q)); the discarded positions split at the largest m
// with 2·s(m) <= s(i)+s(j) (ties pay the left neighbour, matching the
// table's `if dr < dl` comparison), so with prefix sums of s each error
// column col[i] = error(i, j) closes in O(1) after a monotone pointer move.
func lSelectFused(l shape.LList, k int) (LResult, error) {
	n := len(l)
	s := make([]int64, n)
	p := make([]int64, n+1)
	for i, li := range l {
		s[i] = li.H1 + li.H2 - li.W1
		p[i+1] = p[i] + s[i]
	}
	column := func(v int, col []int64) {
		m := v - 1
		sv := s[v]
		for i := v - 1; i >= 0; i-- {
			si := s[i]
			for m > i && 2*s[m] > si+sv {
				m--
			}
			col[i] = (p[m+1] - p[i+1]) - int64(m-i)*si +
				int64(v-1-m)*sv - (p[v] - p[m+1])
		}
	}
	indices, weight, err := cspp.SolveDenseColumns(n, k, column)
	if err != nil {
		return LResult{}, fmt.Errorf("selection: LSelect CSPP: %w", err)
	}
	fusedLPasses.Add(1)
	sub, err := l.Subset(indices)
	if err != nil {
		return LResult{}, fmt.Errorf("selection: LSelect traceback: %w", err)
	}
	return LResult{Selected: sub, Indices: indices, Error: weight}, nil
}
