package selection

import (
	"math/rand"
	"testing"

	"floorplan/internal/shape"
)

func TestPolicyValidate(t *testing.T) {
	good := []Policy{
		{},
		{K1: 40},
		{K1: 40, K2: 1000, Theta: 0.5, S: 600},
		{K2: 2, Theta: 1},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	bad := []Policy{
		{K1: -1},
		{K2: -2},
		{S: -3},
		{K1: 1},
		{K2: 1},
		{Theta: 1.5},
		{Theta: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed", p)
		}
	}
}

func TestPolicyWantR(t *testing.T) {
	p := Policy{K1: 40}
	if p.WantR(40) || p.WantR(10) {
		t.Error("WantR should be false at or below the limit")
	}
	if !p.WantR(41) {
		t.Error("WantR should be true above the limit")
	}
	if (Policy{}).WantR(1000) {
		t.Error("K1=0 disables R_Selection")
	}
}

func TestPolicyWantLTheta(t *testing.T) {
	p := Policy{K2: 1000}
	if p.WantL(1000) {
		t.Error("x == K2 should not trigger")
	}
	if !p.WantL(1001) {
		t.Error("x > K2 with theta=0 should trigger")
	}
	// θ = 0.5: trigger only when K2/x < 0.5, i.e. x > 2000.
	p.Theta = 0.5
	if p.WantL(1500) {
		t.Error("K2/x = 0.67 >= θ should not trigger")
	}
	if p.WantL(2000) {
		t.Error("K2/x = 0.5 >= θ should not trigger")
	}
	if !p.WantL(2001) {
		t.Error("K2/x < θ should trigger")
	}
	if (Policy{Theta: 0.5}).WantL(5000) {
		t.Error("K2=0 disables L_Selection")
	}
}

func TestReduceRPassThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	l := randomRList(rng, 30)
	p := Policy{K1: 30}
	got, admitted, err := p.ReduceR(l)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Error("list at the limit should pass through")
	}
	if admitted != 0 {
		t.Errorf("pass-through admitted error %d, want 0", admitted)
	}
	p.K1 = 10
	got, admitted, err = p.ReduceR(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("reduced to %d, want 10", len(got))
	}
	if admitted <= 0 {
		t.Errorf("strict reduction admitted error %d, want > 0", admitted)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceLSetBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Three lists with distinct sizes; force W2 apart by regenerating until
	// distinct (randomLList picks w2 in a small range).
	lists := []shape.LList{
		randomLList(rng, 40),
		randomLList(rng, 20),
		randomLList(rng, 10),
	}
	set := shape.LSet{Lists: lists}
	total := set.Size() // 70
	p := Policy{K2: 35}
	out, _, err := p.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets: floor(35*40/70)=20, floor(35*20/70)=10, floor(35*10/70)=5.
	want := []int{20, 10, 5}
	for i, l := range out.Lists {
		if len(l) != want[i] {
			t.Errorf("list %d reduced to %d, want %d", i, len(l), want[i])
		}
		if err := l.Validate(); err != nil {
			t.Errorf("list %d invalid after reduction: %v", i, err)
		}
	}
	if total != 70 {
		t.Fatalf("generator sizes changed: %d", total)
	}
}

func TestReduceLSetPassThroughAndClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	set := shape.LSet{Lists: []shape.LList{randomLList(rng, 5)}}
	p := Policy{K2: 5}
	out, _, err := p.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 5 {
		t.Error("set within limit should pass through")
	}
	// A tiny list inside a big set keeps at least its two endpoints.
	set = shape.LSet{Lists: []shape.LList{randomLList(rng, 3), randomLList(rng, 97)}}
	p = Policy{K2: 10}
	out, _, err = p.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Lists[0]) < 2 {
		t.Errorf("small list shrunk below 2: %d", len(out.Lists[0]))
	}
	if len(out.Lists[1]) > 10 {
		t.Errorf("large list got %d > K2", len(out.Lists[1]))
	}
}

func TestReduceLSetWithHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	set := shape.LSet{Lists: []shape.LList{randomLList(rng, 200)}}
	p := Policy{K2: 20, S: 50}
	out, _, err := p.ReduceLSet(set)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Lists[0]); got != 20 {
		t.Fatalf("reduced to %d, want 20", got)
	}
	if err := out.Lists[0].Validate(); err != nil {
		t.Fatal(err)
	}
	// Heuristic + exact never loses the endpoints.
	orig := set.Lists[0]
	red := out.Lists[0]
	if red[0] != orig[0] || red[len(red)-1] != orig[len(orig)-1] {
		t.Error("endpoints lost through heuristic + exact pipeline")
	}
}

// TestOptimalBeatsUniform quantifies the point of the paper's optimal
// selection: on random staircases the CSPP-optimal subset never has larger
// error than uniform sampling, and usually strictly smaller.
func TestOptimalBeatsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	strictlyBetter := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(40)
		k := 4 + rng.Intn(8)
		l := randomRList(rng, n)
		opt, err := RSelect(l, k)
		if err != nil {
			t.Fatal(err)
		}
		uni := UniformRReduce(l, k)
		idx := make([]int, 0, len(uni))
		j := 0
		for i, orig := range l {
			if j < len(uni) && uni[j] == orig {
				idx = append(idx, i)
				j++
			}
		}
		uniErr, err := l.StaircaseArea(idx)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Error > uniErr {
			t.Fatalf("optimal %d worse than uniform %d", opt.Error, uniErr)
		}
		if opt.Error < uniErr {
			strictlyBetter++
		}
	}
	if strictlyBetter == 0 {
		t.Error("optimal selection never strictly beat uniform sampling across all trials")
	}
}
