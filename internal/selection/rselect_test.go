package selection

import (
	"math/rand"
	"testing"
	"testing/quick"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// randomRList builds a random canonical irreducible R-list with n corners.
func randomRList(rng *rand.Rand, n int) shape.RList {
	ws := make([]int64, n)
	hs := make([]int64, n)
	w := int64(1 + rng.Intn(5))
	h := int64(1 + rng.Intn(5))
	for i := 0; i < n; i++ {
		ws[i] = w
		hs[i] = h
		w += 1 + rng.Int63n(6)
		h += 1 + rng.Int63n(6)
	}
	l := make(shape.RList, n)
	for i := 0; i < n; i++ {
		// widths descending, heights ascending
		l[i] = shape.RImpl{W: ws[n-1-i], H: hs[i]}
	}
	return l
}

func TestComputeRErrorMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		l := randomRList(rng, n)
		if err := l.Validate(); err != nil {
			t.Fatalf("generator broke: %v", err)
		}
		table := ComputeRError(l)
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// error(i,j) is the staircase area of the sub-list l[i..j]
				// with only its endpoints selected.
				sub := l[i : j+1]
				want, err := sub.StaircaseArea([]int{0, j - i})
				if err != nil {
					t.Fatal(err)
				}
				if got := table.At(i, j); got != want {
					t.Fatalf("error(%d,%d) = %d, want %d (list %v)", i, j, got, want, l)
				}
			}
		}
	}
}

func TestRErrorColumnMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		l := randomRList(rng, n)
		table := ComputeRError(l)
		col := make([]int64, n)
		for j := 1; j < n; j++ {
			rErrorColumn(l, j, col)
			for i := 0; i < j; i++ {
				if col[i] != table.At(i, j) {
					t.Fatalf("column error(%d,%d) = %d, want %d", i, j, col[i], table.At(i, j))
				}
			}
		}
	}
}

func TestRErrorTableAtPanics(t *testing.T) {
	l := randomRList(rand.New(rand.NewSource(1)), 5)
	table := ComputeRError(l)
	if table.N() != 5 {
		t.Fatalf("N = %d", table.N())
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			table.At(bad[0], bad[1])
		}()
	}
}

func TestRSelectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		k := 2 + r.Intn(n-2)
		l := randomRList(r, n)
		fast, err := RSelect(l, k)
		if err != nil {
			t.Logf("RSelect: %v", err)
			return false
		}
		slow, err := RSelectBrute(l, k)
		if err != nil {
			t.Logf("RSelectBrute: %v", err)
			return false
		}
		if fast.Error != slow.Error {
			t.Logf("n=%d k=%d: fast error %d, brute %d", n, k, fast.Error, slow.Error)
			return false
		}
		// The reported error must match the geometry of the chosen subset.
		area, err := l.StaircaseArea(fast.Indices)
		if err != nil {
			t.Logf("StaircaseArea: %v", err)
			return false
		}
		if area != fast.Error {
			t.Logf("reported error %d != subset area %d", fast.Error, area)
			return false
		}
		return len(fast.Selected) == k && fast.Selected.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRSelectIdentityAndErrors(t *testing.T) {
	l := randomRList(rand.New(rand.NewSource(2)), 6)
	res, err := RSelect(l, 6)
	if err != nil || res.Error != 0 || !res.Selected.Equal(l) {
		t.Fatalf("k=n should be identity: %+v, %v", res, err)
	}
	res, err = RSelect(l, 10)
	if err != nil || res.Error != 0 || !res.Selected.Equal(l) {
		t.Fatalf("k>n should be identity: %+v, %v", res, err)
	}
	if _, err := RSelect(l, 1); err == nil {
		t.Error("k=1 on n>1 should fail")
	}
	if _, err := RSelect(nil, 2); err == nil {
		t.Error("empty list should fail")
	}
	one := shape.RList{{W: 3, H: 4}}
	res, err = RSelect(one, 5)
	if err != nil || len(res.Selected) != 1 {
		t.Fatalf("singleton identity: %+v, %v", res, err)
	}
}

func TestRSelectEndpointsAlwaysKept(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(40)
		k := 2 + rng.Intn(n-2)
		l := randomRList(rng, n)
		res, err := RSelect(l, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Indices[0] != 0 || res.Indices[len(res.Indices)-1] != n-1 {
			t.Fatalf("endpoints dropped: %v", res.Indices)
		}
	}
}

func TestRSelectErrorMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := randomRList(rng, 30)
	prev := int64(-1)
	for k := 29; k >= 2; k-- {
		res, err := RSelect(l, k)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Error < prev {
			t.Fatalf("error decreased when k fell to %d: %d < %d", k, res.Error, prev)
		}
		prev = res.Error
	}
}

// TestRSelectionGraph reproduces the paper's Figure 7 construction: build
// the explicit weighted DAG from an R-list (edge (i,j) weighted
// error(r_i, r_j)), solve it with the general CSPP algorithm, and confirm
// R_Selection reports the same optimum.
func TestRSelectionGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		k := 2 + rng.Intn(n-2)
		l := randomRList(rng, n)
		table := ComputeRError(l)
		g := cspp.MustGraph(n)
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				if err := g.AddEdge(i, j, table.At(i, j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		graphRes, err := cspp.Solve(g, 0, n-1, k)
		if err != nil {
			t.Fatal(err)
		}
		selRes, err := RSelect(l, k)
		if err != nil {
			t.Fatal(err)
		}
		if graphRes.Weight != selRes.Error {
			t.Fatalf("graph optimum %d != RSelect %d (n=%d k=%d)", graphRes.Weight, selRes.Error, n, k)
		}
	}
}

func TestUniformRReduce(t *testing.T) {
	l := randomRList(rand.New(rand.NewSource(3)), 20)
	got := UniformRReduce(l, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != l[0] || got[4] != l[19] {
		t.Fatal("endpoints not kept")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if res := UniformRReduce(l, 25); !res.Equal(l) {
		t.Error("k >= n should be identity")
	}
	// Uniform sampling is never better than the optimal selection.
	opt, err := RSelect(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	uniIdx := []int{0, 5, 10, 14, 19}
	_ = uniIdx
	var idx []int
	for _, g := range got {
		for i, orig := range l {
			if g == orig {
				idx = append(idx, i)
				break
			}
		}
	}
	uniArea, err := l.StaircaseArea(idx)
	if err != nil {
		t.Fatal(err)
	}
	if uniArea < opt.Error {
		t.Fatalf("uniform area %d beat optimal %d", uniArea, opt.Error)
	}
}
