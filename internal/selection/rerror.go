// Package selection implements the two optimal implementation-selection
// algorithms that are the contribution of Wang/Wong TR-91-26 (DAC 1992):
// R_Selection for rectangular blocks (Section 4.2) and L_Selection for
// L-shaped blocks (Section 4.3), together with the supporting Section 5
// machinery — per-list budgets, the θ trigger and the heuristic
// pre-reduction used when a list is too long for the exact algorithm.
//
// Both algorithms reduce "pick the best k-subset of an irreducible list" to
// a constrained shortest path problem on a complete interval DAG whose edge
// (i, j) costs the error of discarding every implementation strictly
// between positions i and j; see package cspp.
package selection

import (
	"fmt"

	"floorplan/internal/shape"
)

// RErrorTable holds error(r_i, r_j) for all 0 <= i < j < n of one
// irreducible R-list: the area between the list's staircase and the single
// step from r_i to r_j (the paper's Compute_R_Error output).
type RErrorTable struct {
	n   int
	tab []int64 // row-major upper triangle, full n*n for simple indexing
}

// ComputeRError runs the paper's O(n^2) Compute_R_Error dynamic program:
//
//	error(r_i, r_{i+1}) = 0
//	error(r_i, r_{i+l}) = error(r_i, r_{i+l-1}) +
//	                      (w_i - w_{i+l-1}) * (h_{i+l} - h_{i+l-1})
func ComputeRError(l shape.RList) *RErrorTable {
	n := len(l)
	t := &RErrorTable{n: n, tab: make([]int64, n*n)}
	// l = 1 band (adjacent corners) is zero by initialization.
	for span := 2; span <= n-1; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			t.tab[i*n+j] = t.tab[i*n+j-1] + (l[i].W-l[j-1].W)*(l[j].H-l[j-1].H)
		}
	}
	return t
}

// At returns error(r_i, r_j). It panics unless 0 <= i < j < n.
func (t *RErrorTable) At(i, j int) int64 {
	if i < 0 || j <= i || j >= t.n {
		panic(fmt.Sprintf("selection: RErrorTable.At(%d,%d) out of range, n=%d", i, j, t.n))
	}
	return t.tab[i*t.n+j]
}

// N returns the list length the table was built for.
func (t *RErrorTable) N() int { return t.n }

// rErrorColumn fills col[i] = error(r_i, r_j) for all i < j using the
// column recurrence
//
//	error(j-1, j) = 0
//	error(i, j)   = error(i+1, j) + (w_i - w_{i+1}) * (h_j - h_{i+1})
//
// which is algebraically identical to Compute_R_Error but lets R_Selection
// run in O(k n^2) time with O(n) working memory instead of materializing
// the full table (important: R-lists can hold thousands of corners).
func rErrorColumn(l shape.RList, j int, col []int64) {
	col[j-1] = 0
	hj := l[j].H
	for i := j - 2; i >= 0; i-- {
		col[i] = col[i+1] + (l[i].W-l[i+1].W)*(hj-l[i+1].H)
	}
}
