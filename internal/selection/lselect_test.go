package selection

import (
	"math/rand"
	"testing"
	"testing/quick"

	"floorplan/internal/shape"
)

// randomLList builds a random canonical irreducible L-list with n entries:
// W2 constant, W1 strictly decreasing, H1 strictly increasing, H2
// nondecreasing — strict monotonicity in W1/H1 guarantees irreducibility.
func randomLList(rng *rand.Rand, n int) shape.LList {
	w2 := int64(3 + rng.Intn(10))
	w1 := make([]int64, n)
	w1[n-1] = w2 + rng.Int63n(4)
	for i := n - 2; i >= 0; i-- {
		w1[i] = w1[i+1] + 1 + rng.Int63n(5)
	}
	h2 := make([]int64, n)
	h1 := make([]int64, n)
	h2[0] = 1 + rng.Int63n(4)
	h1[0] = h2[0] + rng.Int63n(4)
	for i := 1; i < n; i++ {
		h2[i] = h2[i-1] + rng.Int63n(4)
		h1[i] = h1[i-1] + 1 + rng.Int63n(4)
		if h1[i] < h2[i] {
			h1[i] = h2[i]
		}
	}
	l := make(shape.LList, n)
	for i := 0; i < n; i++ {
		l[i] = shape.LImpl{W1: w1[i], W2: w2, H1: h1[i], H2: h2[i]}
	}
	return l
}

func TestRandomLListIsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		l := randomLList(rng, 2+rng.Intn(20))
		if err := l.Validate(); err != nil {
			t.Fatalf("generator produced invalid list: %v\n%v", err, l)
		}
	}
}

// TestLemma3NeighbourFormula verifies that the neighbour-restricted cost of
// Compute_L_Error agrees with the global nearest-retained-implementation
// definition of ERROR(L, L') — the content of the paper's Lemmas 2 and 3.
func TestLemma3NeighbourFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(12)
		l := randomLList(rng, n)
		table := ComputeLError(l)
		// Random subset with endpoints.
		indices := []int{0}
		for i := 1; i < n-1; i++ {
			if rng.Intn(2) == 0 {
				indices = append(indices, i)
			}
		}
		indices = append(indices, n-1)
		var viaTable int64
		for q := 0; q+1 < len(indices); q++ {
			viaTable += table.At(indices[q], indices[q+1])
		}
		direct, err := LSubsetError(l, indices)
		if err != nil {
			t.Fatal(err)
		}
		if viaTable != direct {
			t.Fatalf("neighbour formula %d != global definition %d\nlist %v\nsubset %v", viaTable, direct, l, indices)
		}
	}
}

func TestComputeLErrorBasics(t *testing.T) {
	l := randomLList(rand.New(rand.NewSource(4)), 6)
	table := ComputeLError(l)
	if table.N() != 6 {
		t.Fatalf("N = %d", table.N())
	}
	for i := 0; i < 5; i++ {
		if table.At(i, i+1) != 0 {
			t.Errorf("adjacent error(%d,%d) = %d, want 0", i, i+1, table.At(i, i+1))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At(3,2) did not panic")
			}
		}()
		table.At(3, 2)
	}()
}

func TestLSelectMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(9)
		k := 2 + r.Intn(n-2)
		l := randomLList(r, n)
		fast, err := LSelect(l, k)
		if err != nil {
			t.Logf("LSelect: %v", err)
			return false
		}
		slow, err := LSelectBrute(l, k)
		if err != nil {
			t.Logf("LSelectBrute: %v", err)
			return false
		}
		if fast.Error != slow.Error {
			t.Logf("n=%d k=%d: fast %d, brute %d", n, k, fast.Error, slow.Error)
			return false
		}
		direct, err := LSubsetError(l, fast.Indices)
		if err != nil || direct != fast.Error {
			t.Logf("reported %d != direct %d (%v)", fast.Error, direct, err)
			return false
		}
		return len(fast.Selected) == k && fast.Selected.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLSelectIdentityAndErrors(t *testing.T) {
	l := randomLList(rand.New(rand.NewSource(5)), 7)
	res, err := LSelect(l, 7)
	if err != nil || res.Error != 0 || len(res.Selected) != 7 {
		t.Fatalf("k=n should be identity: %+v, %v", res, err)
	}
	if _, err := LSelect(l, 1); err == nil {
		t.Error("k=1 on n>1 should fail")
	}
	if _, err := LSelect(nil, 3); err == nil {
		t.Error("empty list should fail")
	}
}

func TestLSelectEndpointsKept(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(30)
		k := 2 + rng.Intn(n-2)
		l := randomLList(rng, n)
		res, err := LSelect(l, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Selected[0] != l[0] || res.Selected[k-1] != l[n-1] {
			t.Fatalf("endpoints dropped: %v", res.Indices)
		}
	}
}

func TestHeuristicLReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	l := randomLList(rng, 50)
	red := HeuristicLReduce(l, 10)
	if len(red) != 10 {
		t.Fatalf("len = %d, want 10", len(red))
	}
	if red[0] != l[0] || red[len(red)-1] != l[49] {
		t.Fatal("endpoints not kept")
	}
	if err := red.Validate(); err != nil {
		t.Fatalf("reduced list invalid: %v", err)
	}
	// No-ops.
	if got := HeuristicLReduce(l, 50); len(got) != 50 {
		t.Errorf("s=n should be identity, got %d", len(got))
	}
	if got := HeuristicLReduce(l, 100); len(got) != 50 {
		t.Errorf("s>n should be identity, got %d", len(got))
	}
	two := l[:2]
	if got := HeuristicLReduce(two, 1); len(got) != 2 {
		t.Errorf("n=2 must keep both endpoints, got %d", len(got))
	}
}
