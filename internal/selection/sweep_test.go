package selection

import (
	"math/rand"
	"testing"
)

func TestRSweepMatchesIndividualSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(20)
		l := randomRList(rng, n)
		curve, err := RSweep(l, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(curve) != n-1 {
			t.Fatalf("curve has %d points for n=%d", len(curve), n)
		}
		for _, p := range curve {
			res, err := RSelect(l, p.K)
			if err != nil {
				t.Fatal(err)
			}
			if res.Error != p.Error {
				t.Fatalf("k=%d: sweep %d != RSelect %d", p.K, p.Error, res.Error)
			}
		}
	}
}

func TestRSweepMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	l := randomRList(rng, 40)
	curve, err := RSweep(l, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Error > curve[i-1].Error {
			t.Fatalf("curve not non-increasing at k=%d: %d > %d",
				curve[i].K, curve[i].Error, curve[i-1].Error)
		}
	}
	last := curve[len(curve)-1]
	if last.K != 40 || last.Error != 0 {
		t.Fatalf("curve must end at (n, 0), got (%d, %d)", last.K, last.Error)
	}
}

func TestRSweepKmaxClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	l := randomRList(rng, 8)
	curve, err := RSweep(l, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 7 {
		t.Fatalf("%d points, want 7", len(curve))
	}
	short, err := RSweep(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 3 || short[len(short)-1].K != 4 {
		t.Fatalf("short sweep wrong: %+v", short)
	}
}

func TestRSweepErrors(t *testing.T) {
	if _, err := RSweep(nil, 5); err == nil {
		t.Error("empty list accepted")
	}
	l := randomRList(rand.New(rand.NewSource(1)), 5)
	if _, err := RSweep(l, 1); err == nil {
		t.Error("kmax=1 accepted")
	}
}

func TestRSelectBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		l := randomRList(rng, n)
		// Full-budget (error of keeping just the endpoints) must select 2.
		endpoints, err := RSelect(l, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RSelectBudget(l, endpoints.Error)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) != 2 {
			t.Fatalf("max budget should keep 2, kept %d", len(res.Selected))
		}
		// Zero budget keeps everything (strictly monotone staircase).
		res, err = RSelectBudget(l, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Selected) != n {
			t.Fatalf("zero budget kept %d of %d", len(res.Selected), n)
		}
		// A middle budget keeps the smallest k whose error fits, and the
		// error is within budget.
		mid := endpoints.Error / 2
		res, err = RSelectBudget(l, mid)
		if err != nil {
			t.Fatal(err)
		}
		if res.Error > mid {
			t.Fatalf("budget %d exceeded: %d", mid, res.Error)
		}
		if len(res.Selected) > 2 {
			// k-1 must not fit the budget (minimality).
			smaller, err := RSelect(l, len(res.Selected)-1)
			if err != nil {
				t.Fatal(err)
			}
			if smaller.Error <= mid {
				t.Fatalf("k=%d kept but k-1 error %d also fits budget %d",
					len(res.Selected), smaller.Error, mid)
			}
		}
	}
}

func TestRSelectBudgetErrors(t *testing.T) {
	if _, err := RSelectBudget(nil, 10); err == nil {
		t.Error("empty list accepted")
	}
	l := randomRList(rand.New(rand.NewSource(2)), 5)
	if _, err := RSelectBudget(l, -1); err == nil {
		t.Error("negative budget accepted")
	}
	two := l[:2]
	res, err := RSelectBudget(two, 0)
	if err != nil || len(res.Selected) != 2 {
		t.Fatalf("tiny list: %+v %v", res, err)
	}
}
