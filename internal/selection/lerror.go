package selection

import (
	"fmt"

	"floorplan/internal/shape"
)

// LErrorTable holds error(l_i, l_j) for all 0 <= i < j < n of one
// irreducible L-list: the summed cost of discarding every implementation
// strictly between positions i and j, where each discarded l_q costs its
// Manhattan distance to the nearer of its two retained neighbours (Lemma 3
// of the paper shows the nearest retained implementation is always one of
// the two neighbours, by the monotonicity of Lemma 2).
type LErrorTable struct {
	n   int
	tab []int64
}

// ComputeLError runs the paper's O(n^3) Compute_L_Error:
//
//	error(l_i, l_j) = sum over i < q < j of min(dist(l_i, l_q), dist(l_q, l_j))
func ComputeLError(l shape.LList) *LErrorTable {
	n := len(l)
	t := &LErrorTable{n: n, tab: make([]int64, n*n)}
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			var e int64
			for q := i + 1; q < j; q++ {
				dl := l[i].Dist(l[q])
				dr := l[q].Dist(l[j])
				if dr < dl {
					dl = dr
				}
				e += dl
			}
			t.tab[i*n+j] = e
		}
	}
	return t
}

// At returns error(l_i, l_j). It panics unless 0 <= i < j < n.
func (t *LErrorTable) At(i, j int) int64 {
	if i < 0 || j <= i || j >= t.n {
		panic(fmt.Sprintf("selection: LErrorTable.At(%d,%d) out of range, n=%d", i, j, t.n))
	}
	return t.tab[i*t.n+j]
}

// N returns the list length the table was built for.
func (t *LErrorTable) N() int { return t.n }

// LSubsetError computes ERROR(L, L') directly from the definition — each
// discarded implementation pays its distance to the nearest retained one,
// searched over the *whole* retained set rather than just the neighbours.
// It is the independent oracle used to validate Lemma 3 and the selection
// results in tests. indices must be strictly increasing and include both
// endpoints.
func LSubsetError(l shape.LList, indices []int) (int64, error) {
	n := len(l)
	if len(indices) < 2 || indices[0] != 0 || indices[len(indices)-1] != n-1 {
		return 0, fmt.Errorf("selection: subset must include both endpoints")
	}
	retained := make(map[int]bool, len(indices))
	prev := -1
	for _, idx := range indices {
		if idx <= prev || idx >= n {
			return 0, fmt.Errorf("selection: bad subset index %d", idx)
		}
		retained[idx] = true
		prev = idx
	}
	var total int64
	for q := 0; q < n; q++ {
		if retained[q] {
			continue
		}
		best := int64(-1)
		for _, idx := range indices {
			d := l[q].Dist(l[idx])
			if best < 0 || d < best {
				best = d
			}
		}
		total += best
	}
	return total, nil
}
