package selection

import (
	"fmt"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// RResult is the outcome of R_Selection.
type RResult struct {
	// Selected is the retained sub-list, still canonical and irreducible.
	Selected shape.RList
	// Indices are the positions of the retained implementations within the
	// input list, strictly increasing, always containing 0 and n-1.
	Indices []int
	// Error is ERROR(R, R'): the staircase area lost by the selection.
	Error int64
}

// RSelect is the paper's R_Selection (Section 4.2): it optimally selects k
// implementations from an irreducible R-list so that the bounded area
// between the full staircase and the selected staircase is minimum. The
// endpoints r_1 and r_n are always retained (they bound the feasible
// region), matching the paper's d_1 = 1, d_k = n.
//
// When k >= len(l) the list is returned unchanged with zero error. k < 2 is
// rejected for lists of length >= 2, since both endpoints must survive.
//
// Complexity: O(k n^2) time — the CSPP bound of Theorem 2 with |E| = O(n^2)
// — and O(k n) memory; the error table of Compute_R_Error is never
// materialized. The fused pass (cspp.SolveDenseColumns, j-major order)
// generates each error column exactly once with the column recurrence while
// the DP consumes it, instead of regenerating it per layer.
func RSelect(l shape.RList, k int) (RResult, error) {
	n := len(l)
	if n == 0 {
		return RResult{}, fmt.Errorf("selection: RSelect on empty list")
	}
	if k >= n {
		return identityR(l), nil
	}
	if k < 2 {
		return RResult{}, fmt.Errorf("selection: RSelect needs k >= 2 to keep both endpoints, got k=%d for n=%d", k, n)
	}
	indices, weight, err := cspp.SolveDenseColumns(n, k, func(v int, col []int64) {
		rErrorColumn(l, v, col)
	})
	if err != nil {
		// Unreachable for a complete interval DAG with 2 <= k < n; guard
		// against silent miscomputation.
		return RResult{}, fmt.Errorf("selection: RSelect CSPP (n=%d, k=%d): %w", n, k, err)
	}
	fusedRPasses.Add(1)
	sub, err := l.Subset(indices)
	if err != nil {
		return RResult{}, fmt.Errorf("selection: RSelect traceback: %w", err)
	}
	return RResult{Selected: sub, Indices: indices, Error: weight}, nil
}

func identityR(l shape.RList) RResult {
	idx := make([]int, len(l))
	for i := range idx {
		idx[i] = i
	}
	return RResult{Selected: l.Clone(), Indices: idx, Error: 0}
}

// RSelectBrute is the exponential oracle for RSelect: it tries every
// k-subset containing both endpoints and returns one with minimum staircase
// error. Exported for tests and benchmarks only.
func RSelectBrute(l shape.RList, k int) (RResult, error) {
	n := len(l)
	if n == 0 {
		return RResult{}, fmt.Errorf("selection: RSelectBrute on empty list")
	}
	if k >= n {
		return identityR(l), nil
	}
	if k < 2 {
		return RResult{}, fmt.Errorf("selection: k=%d too small", k)
	}
	best := RResult{Error: -1}
	indices := make([]int, k)
	indices[0], indices[k-1] = 0, n-1
	var rec func(pos, from int)
	rec = func(pos, from int) {
		if pos == k-1 {
			area, err := l.StaircaseArea(indices)
			if err != nil {
				panic(err)
			}
			if best.Error < 0 || area < best.Error {
				sub, err := l.Subset(indices)
				if err != nil {
					panic(err)
				}
				best = RResult{Selected: sub, Indices: append([]int(nil), indices...), Error: area}
			}
			return
		}
		for i := from; i < n-1-(k-1-pos-1); i++ {
			indices[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(1, 1)
	return best, nil
}
