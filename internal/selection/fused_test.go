package selection

import (
	"math/rand"
	"testing"

	"floorplan/internal/cspp"
	"floorplan/internal/shape"
)

// tieHeavyLList builds a canonical telescoping L-list with many repeated
// s = H1+H2-W1 values, so the fused column's split-point tie rule (ties pay
// the left neighbour) is exercised rather than dodged.
func tieHeavyLList(rng *rand.Rand, n int) shape.LList {
	w2 := int64(2 + rng.Intn(5))
	l := make(shape.LList, n)
	w1 := w2 + int64(n) + rng.Int63n(5)
	h1 := int64(1 + rng.Intn(3))
	h2 := int64(1 + rng.Intn(3))
	for i := 0; i < n; i++ {
		l[i] = shape.LImpl{W1: w1, W2: w2, H1: h1, H2: h2}
		// Tiny nonnegative steps with frequent zeros keep s(i) tie-heavy
		// while preserving canonical monotonicity.
		w1 -= rng.Int63n(2)
		if w1 < w2 {
			w1 = w2
		}
		h1 += rng.Int63n(2)
		h2 += rng.Int63n(2)
	}
	return l
}

// TestFusedLColumnMatchesTable pins the prefix-sum column of lSelectFused to
// the Compute_L_Error table entry by entry, on both strictly-monotone and
// tie-heavy canonical lists.
func TestFusedLColumnMatchesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(30)
		var l shape.LList
		if trial%2 == 0 {
			l = randomLList(rng, n)
		} else {
			l = tieHeavyLList(rng, n)
		}
		if !lListTelescopes(l) {
			t.Fatalf("generator produced non-telescoping list: %v", l)
		}
		table := ComputeLError(l)

		s := make([]int64, n)
		p := make([]int64, n+1)
		for i, li := range l {
			s[i] = li.H1 + li.H2 - li.W1
			p[i+1] = p[i] + s[i]
		}
		col := make([]int64, n)
		for v := 1; v < n; v++ {
			m := v - 1
			sv := s[v]
			for i := v - 1; i >= 0; i-- {
				si := s[i]
				for m > i && 2*s[m] > si+sv {
					m--
				}
				col[i] = (p[m+1] - p[i+1]) - int64(m-i)*si +
					int64(v-1-m)*sv - (p[v] - p[m+1])
			}
			for i := 0; i < v; i++ {
				if got, want := col[i], table.At(i, v); got != want {
					t.Fatalf("trial %d n=%d: col[%d][%d] = %d, table %d\nlist %v",
						trial, n, i, v, got, want, l)
				}
			}
		}
	}
}

// TestLSelectFusedMatchesTablePath runs the Manhattan L_Selection through
// both implementations — the fused pass (what LSelectMetric now uses) and
// the explicit table + level-major solver — and requires bit-identical
// indices and weight.
func TestLSelectFusedMatchesTablePath(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(25)
		var l shape.LList
		if trial%2 == 0 {
			l = randomLList(rng, n)
		} else {
			l = tieHeavyLList(rng, n)
		}
		for k := 2; k < n; k++ {
			got, err := LSelect(l, k)
			if err != nil {
				t.Fatalf("fused LSelect n=%d k=%d: %v", n, k, err)
			}
			table := ComputeLError(l)
			wantIdx, wantW, err := cspp.SolveDense(n, k, table.At)
			if err != nil {
				t.Fatalf("table path n=%d k=%d: %v", n, k, err)
			}
			if got.Error != wantW {
				t.Fatalf("n=%d k=%d: fused error %d, table %d", n, k, got.Error, wantW)
			}
			for i := range wantIdx {
				if got.Indices[i] != wantIdx[i] {
					t.Fatalf("n=%d k=%d: fused indices %v, table %v",
						n, k, got.Indices, wantIdx)
				}
			}
		}
	}
}

// TestLListTelescopesGuard checks the fused pass's applicability guard: a
// canonical list passes, and each monotonicity violation falls back.
func TestLListTelescopesGuard(t *testing.T) {
	base := shape.LList{
		{W1: 9, W2: 3, H1: 2, H2: 2},
		{W1: 7, W2: 3, H1: 4, H2: 3},
		{W1: 5, W2: 3, H1: 6, H2: 5},
	}
	if !lListTelescopes(base) {
		t.Fatal("canonical list must telescope")
	}
	mutations := []func(l shape.LList){
		func(l shape.LList) { l[1].W2 = 4 },  // W2 not constant
		func(l shape.LList) { l[1].W1 = 10 }, // W1 increases
		func(l shape.LList) { l[2].H1 = 3 },  // H1 decreases
		func(l shape.LList) { l[2].H2 = 2 },  // H2 decreases
	}
	for i, mutate := range mutations {
		l := make(shape.LList, len(base))
		copy(l, base)
		mutate(l)
		if lListTelescopes(l) {
			t.Fatalf("mutation %d should not telescope: %v", i, l)
		}
	}
}

// TestFusedCountersAdvance checks the telemetry counters move on the paths
// they label: fused R on RSelect, fused L on Manhattan LSelect, table L on a
// non-Manhattan metric.
func TestFusedCountersAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	l := randomLList(rng, 8)
	r := shape.MustRList([]shape.RImpl{{W: 5, H: 1}, {W: 4, H: 2}, {W: 3, H: 3}, {W: 2, H: 5}, {W: 1, H: 8}})

	r0, l0, t0 := FusedCounters()
	if _, err := RSelect(r, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := LSelect(l, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := LSelectMetric(l, 4, Chebyshev); err != nil {
		t.Fatal(err)
	}
	r1, l1, t1 := FusedCounters()
	if r1 <= r0 {
		t.Errorf("fused R counter did not advance: %d -> %d", r0, r1)
	}
	if l1 <= l0 {
		t.Errorf("fused L counter did not advance: %d -> %d", l0, l1)
	}
	if t1 <= t0 {
		t.Errorf("table L counter did not advance: %d -> %d", t0, t1)
	}
}
