package selection

import (
	"fmt"

	"floorplan/internal/shape"
)

// Policy collects the user-facing knobs of Section 5 of the paper.
type Policy struct {
	// K1 is the limit on the number of implementations kept per rectangular
	// block. Zero disables R_Selection.
	K1 int
	// K2 is the limit on the number of implementations kept per L-shaped
	// block (across all of its L-lists). Zero disables L_Selection.
	K2 int
	// Theta is the paper's θ ∈ (0, 1]: L_Selection runs only when
	// K2/X < Theta, i.e. when the block's implementation count X is
	// sufficiently larger than K2. Zero means "always run when X > K2"
	// (θ = 1).
	Theta float64
	// S is the paper's heuristic threshold: an individual L-list longer
	// than S is first reduced to S by HeuristicLReduce before the exact
	// L_Selection runs. Zero means no heuristic pre-reduction.
	S int
	// RUniform replaces the optimal R_Selection with naive uniform
	// subsampling. It exists only for the repository's ablation benchmarks
	// quantifying the value of the paper's CSPP-optimal selection.
	RUniform bool
	// LMetric selects the distance used by L_Selection (footnote 2 of the
	// paper: any L_p metric works). The zero value is the paper's
	// Manhattan (L1) metric.
	LMetric Metric
}

// Validate rejects nonsensical settings.
func (p Policy) Validate() error {
	if p.K1 < 0 || p.K2 < 0 || p.S < 0 {
		return fmt.Errorf("selection: negative policy values: %+v", p)
	}
	if p.K1 == 1 || p.K2 == 1 {
		return fmt.Errorf("selection: limits must be >= 2 (both list endpoints are always kept): %+v", p)
	}
	if p.Theta < 0 || p.Theta > 1 {
		return fmt.Errorf("selection: theta must be in [0, 1], got %v", p.Theta)
	}
	if !p.LMetric.Valid() {
		return fmt.Errorf("selection: unknown L metric %v", p.LMetric)
	}
	return nil
}

// WantR reports whether R_Selection should run on a rectangular block with
// n implementations.
func (p Policy) WantR(n int) bool { return p.K1 > 0 && n > p.K1 }

// WantL reports whether L_Selection should run on an L-shaped block with x
// implementations: x must exceed K2 and, when θ is set, K2/x must fall
// below θ.
func (p Policy) WantL(x int) bool {
	if p.K2 <= 0 || x <= p.K2 {
		return false
	}
	if p.Theta > 0 && float64(p.K2)/float64(x) >= p.Theta {
		return false
	}
	return true
}

// ReduceR applies R_Selection under the policy: lists not exceeding K1
// pass through untouched. The second result is the admitted selection
// error ERROR(R, R') — the staircase area the reduction gave up — which
// telemetry totals across the run (0 for pass-through and for the uniform
// ablation baseline, whose error is not computed).
func (p Policy) ReduceR(l shape.RList) (shape.RList, int64, error) {
	if !p.WantR(len(l)) {
		return l, 0, nil
	}
	if p.RUniform {
		return UniformRReduce(l, p.K1), 0, nil
	}
	res, err := RSelect(l, p.K1)
	if err != nil {
		return nil, 0, err
	}
	return res.Selected, res.Error, nil
}

// ReduceLSet applies L_Selection to an L-shaped block stored as a set of
// irreducible L-lists, implementing the paper's final paragraph of Section
// 4.3: to shrink the block's total from N to K, each list L gets the budget
// ⌊K·|L|/N⌋ — the limits are "dynamically adjusted" in proportion to list
// size. Budgets are clamped to [2, |L|] because the selection always keeps
// a list's two endpoints. Lists longer than S are pre-reduced heuristically
// first (Section 5). The second result is the total admitted selection
// error summed over the exact L_Selection runs (the heuristic pre-reduction
// does not report an error and contributes 0).
func (p Policy) ReduceLSet(set shape.LSet) (shape.LSet, int64, error) {
	total := set.Size()
	if !p.WantL(total) {
		return set, 0, nil
	}
	out := shape.LSet{Lists: make([]shape.LList, 0, len(set.Lists))}
	var admitted int64
	for _, l := range set.Lists {
		budget := p.K2 * len(l) / total
		if budget < 2 {
			budget = 2
		}
		if budget > len(l) {
			budget = len(l)
		}
		reduced := l
		if p.S > 0 && len(reduced) > p.S {
			reduced = HeuristicLReduce(reduced, p.S)
		}
		if len(reduced) > budget {
			res, err := LSelectMetric(reduced, budget, p.LMetric)
			if err != nil {
				return shape.LSet{}, 0, err
			}
			reduced = res.Selected
			admitted += res.Error
		}
		out.Lists = append(out.Lists, reduced)
	}
	return out, admitted, nil
}

// UniformRReduce is the naive baseline R_Selection is compared against in
// this repository's ablation benchmarks: keep both endpoints and sample the
// interior uniformly, ignoring the staircase geometry entirely.
func UniformRReduce(l shape.RList, k int) shape.RList {
	n := len(l)
	if k >= n || n <= 2 {
		return l.Clone()
	}
	if k < 2 {
		k = 2
	}
	out := make(shape.RList, 0, k)
	prevPos := -1
	for i := 0; i < k; i++ {
		pos := (i*(n-1) + (k-1)/2) / (k - 1)
		if pos == prevPos {
			continue
		}
		out = append(out, l[pos])
		prevPos = pos
	}
	return out
}
