package search

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
)

func moduleNames(t *plan.Node) []string {
	var out []string
	for _, l := range t.Leaves() {
		out = append(out, l.Module)
	}
	sort.Strings(out)
	return out
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCloneIsDeep(t *testing.T) {
	orig := gen.FP1()
	c := Clone(orig)
	if !equalNames(moduleNames(orig), moduleNames(c)) {
		t.Fatal("clone changed modules")
	}
	c.Leaves()[0].Module = "mutated"
	if orig.Leaves()[0].Module == "mutated" {
		t.Fatal("clone shares leaves")
	}
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}

func TestMutatePreservesValidityAndModules(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 100; trial++ {
		base, err := gen.RandomTree(rng, 2+rng.Intn(20), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		names := moduleNames(base)
		work := Clone(base)
		for step := 0; step < 10; step++ {
			Mutate(work, rng)
			if err := work.Validate(); err != nil {
				t.Fatalf("mutation broke tree: %v", err)
			}
			if !equalNames(moduleNames(work), names) {
				t.Fatal("mutation changed the module multiset")
			}
		}
	}
}

func TestMutateDegenerateTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	single := plan.NewLeaf("m")
	for i := 0; i < 20; i++ {
		Mutate(single, rng)
		if err := single.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func annealFixture(t *testing.T, seed int64) (*plan.Node, optimizer.Library) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree, err := gen.RandomTree(rng, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.Library(rng, tree, gen.DefaultModuleParams(4))
	if err != nil {
		t.Fatal(err)
	}
	return tree, optimizer.Library(raw)
}

func TestAnnealImprovesOrEquals(t *testing.T) {
	tree, lib := annealFixture(t, 143)
	res, err := Anneal(tree, lib, Options{Seed: 1, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestArea > res.InitialArea {
		t.Fatalf("search worsened the area: %d > %d", res.BestArea, res.InitialArea)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if !equalNames(moduleNames(res.Best), moduleNames(tree)) {
		t.Fatal("search changed the module multiset")
	}
	// The best topology's claimed area must be real.
	opt, err := optimizer.New(lib, optimizer.Options{Policy: selection.Policy{K1: 8}, SkipPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	check, err := opt.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if check.Best.Area() != res.BestArea {
		t.Fatalf("claimed %d, re-evaluated %d", res.BestArea, check.Best.Area())
	}
}

func TestAnnealDeterministic(t *testing.T) {
	tree, lib := annealFixture(t, 144)
	a, err := Anneal(tree, lib, Options{Seed: 7, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(tree, lib, Options{Seed: 7, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestArea != b.BestArea || a.Accepted != b.Accepted || a.Proposed != b.Proposed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestAnnealDoesNotMutateInput(t *testing.T) {
	tree, lib := annealFixture(t, 145)
	before, err := plan.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Anneal(tree, lib, Options{Seed: 2, Iterations: 40}); err != nil {
		t.Fatal(err)
	}
	after, err := plan.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("Anneal mutated its input tree")
	}
}

func TestAnnealValidation(t *testing.T) {
	tree, lib := annealFixture(t, 146)
	if _, err := Anneal(&plan.Node{Kind: plan.Leaf}, lib, Options{}); err == nil {
		t.Error("invalid tree accepted")
	}
	if _, err := Anneal(tree, lib, Options{Iterations: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := Anneal(tree, lib, Options{InitialTemp: 0.001, FinalTemp: 0.05}); err == nil {
		t.Error("inverted temperatures accepted")
	}
	// Zero iterations means "default": the run proposes moves.
	res, err := Anneal(tree, lib, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposed == 0 {
		t.Error("default run proposed no moves")
	}
}

// sequentialReference is the pre-batching annealer loop, kept verbatim as a
// test oracle: Anneal with Workers == 1 must reproduce it exactly — same rng
// stream, same trajectory, same counters.
func sequentialReference(t *testing.T, tree *plan.Node, lib optimizer.Library, opts Options) *Result {
	t.Helper()
	opts = opts.withDefaults()
	opt, err := optimizer.New(lib, optimizer.Options{Policy: opts.Policy, SkipPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	evaluate := func(n *plan.Node) int64 {
		res, err := opt.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Area()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	current := Clone(tree)
	currentArea := evaluate(current)
	result := &Result{Best: Clone(current), BestArea: currentArea, InitialArea: currentArea}
	t0 := opts.InitialTemp * float64(currentArea)
	t1 := opts.FinalTemp * float64(currentArea)
	cool := math.Pow(t1/t0, 1/float64(opts.Iterations))
	temp := t0
	for i := 0; i < opts.Iterations; i++ {
		candidate := Clone(current)
		if !Mutate(candidate, rng) {
			temp *= cool
			continue
		}
		result.Proposed++
		area := evaluate(candidate)
		delta := float64(area - currentArea)
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			result.Accepted++
			current, currentArea = candidate, area
			if area < result.BestArea {
				result.Improved++
				result.Best = Clone(candidate)
				result.BestArea = area
			}
		}
		temp *= cool
	}
	return result
}

func encodeTree(t *testing.T, n *plan.Node) string {
	t.Helper()
	b, err := plan.EncodeTree(n)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAnnealWorkersOneMatchesSequential(t *testing.T) {
	tree, lib := annealFixture(t, 147)
	opts := Options{Seed: 11, Iterations: 80, Workers: 1}
	got, err := Anneal(tree, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialReference(t, tree, lib, opts)
	if got.BestArea != want.BestArea || got.InitialArea != want.InitialArea ||
		got.Proposed != want.Proposed || got.Accepted != want.Accepted ||
		got.Improved != want.Improved {
		t.Fatalf("Workers=1 diverged from the sequential annealer:\n got %+v\nwant %+v", got, want)
	}
	if encodeTree(t, got.Best) != encodeTree(t, want.Best) {
		t.Fatal("Workers=1 found a different best topology than the sequential annealer")
	}
}

// TestAnnealWorkersDeterministic checks that for a fixed (Seed, Workers)
// pair the batched annealer is fully reproducible even though candidate
// evaluations run concurrently: acceptance is sequential in proposal order,
// so scheduling cannot leak into the trajectory.
func TestAnnealWorkersDeterministic(t *testing.T) {
	tree, lib := annealFixture(t, 148)
	for _, w := range []int{2, 4} {
		opts := Options{Seed: 21, Iterations: 60, Workers: w}
		a, err := Anneal(tree, lib, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Anneal(tree, lib, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.BestArea != b.BestArea || a.Proposed != b.Proposed ||
			a.Accepted != b.Accepted || a.Improved != b.Improved {
			t.Fatalf("workers %d: non-deterministic: %+v vs %+v", w, a, b)
		}
		if encodeTree(t, a.Best) != encodeTree(t, b.Best) {
			t.Fatalf("workers %d: best topologies diverged", w)
		}
		if a.BestArea > a.InitialArea {
			t.Fatalf("workers %d: search worsened the area", w)
		}
		if err := a.Best.Validate(); err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if !equalNames(moduleNames(a.Best), moduleNames(tree)) {
			t.Fatalf("workers %d: module multiset changed", w)
		}
	}
}

func TestAnnealNegativeWorkers(t *testing.T) {
	tree, lib := annealFixture(t, 149)
	if _, err := Anneal(tree, lib, Options{Workers: -2}); err == nil {
		t.Error("negative worker count accepted")
	}
}
