// Package search explores floorplan *topologies* by simulated annealing,
// using the area optimizer as its inner evaluator.
//
// The paper's problem setting (its Section 1) fixes the topology and
// optimizes module shapes; the topology itself comes from an earlier design
// step. This package provides that step for the reproduction's examples: a
// seeded annealer over floorplan trees whose energy is the optimal area the
// Wang–Wong optimizer achieves on the candidate topology. Because every
// candidate costs one full area optimization, the inner runs use the
// paper's own R_Selection to stay fast — the selection algorithms are what
// make topology search over non-slicing floorplans affordable at all.
//
// Moves (all topology-preserving of the module set):
//
//   - swap the modules of two leaves;
//   - flip a slicing cut's orientation;
//   - rotate a wheel's arms or flip its chirality;
//   - swap two disjoint subtrees.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/telemetry"
)

// Options configures the annealer.
type Options struct {
	// Seed makes the search reproducible.
	Seed int64
	// Iterations is the number of annealing steps (default 200 when zero;
	// negative is rejected).
	Iterations int
	// InitialTemp and FinalTemp bound the geometric cooling schedule,
	// expressed as fractions of the initial area (defaults 0.05 and 0.001).
	InitialTemp, FinalTemp float64
	// Policy speeds up the inner optimizations (default K1=8).
	Policy selection.Policy
	// Workers bounds how many candidate topologies are evaluated
	// concurrently per annealing batch (0 means runtime.GOMAXPROCS(0)).
	// Workers == 1 reproduces the classic sequential annealer exactly —
	// same rng stream, same trajectory. Workers > 1 evaluates batches of
	// speculative candidates in parallel and accepts them sequentially in
	// proposal order, so the trajectory is deterministic for a fixed
	// (Seed, Workers) pair but differs between worker counts: candidates
	// proposed after an accepted move in the same batch are stale (they
	// mutated the pre-acceptance topology) and are discarded.
	Workers int
	// Telemetry, when non-nil, receives per-move accept/reject counters,
	// candidate evaluation times, speculation waste and per-batch spans
	// carrying the annealing temperature. The annealer's counters are
	// trajectory statistics, not worker-count-invariant folds, so they are
	// deterministic only for a fixed (Seed, Workers) pair.
	Telemetry *telemetry.Collector
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 200
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 0.05
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = 0.001
	}
	if o.Policy.K1 == 0 && o.Policy.K2 == 0 {
		o.Policy = selection.Policy{K1: 8}
	}
	return o
}

// Result is the outcome of Anneal.
type Result struct {
	// Best is the best topology found (a deep copy; the input is not
	// modified).
	Best *plan.Node
	// BestArea is the optimizer's area on Best under the search policy.
	BestArea int64
	// InitialArea is the area of the starting topology.
	InitialArea int64
	// Proposed, Accepted and Improved count moves.
	Proposed, Accepted, Improved int
}

// Anneal searches for a lower-area topology starting from tree.
func Anneal(tree *plan.Node, lib optimizer.Library, opts Options) (*Result, error) {
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Iterations < 0 {
		return nil, fmt.Errorf("search: negative iterations %d", opts.Iterations)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("search: negative worker count %d", opts.Workers)
	}
	if opts.InitialTemp < opts.FinalTemp || opts.FinalTemp <= 0 {
		return nil, fmt.Errorf("search: bad temperature range [%v, %v]", opts.FinalTemp, opts.InitialTemp)
	}
	// Inner optimizations stay sequential (Workers: 1): the annealer's
	// parallelism is across candidates, and the search trees are small
	// enough that nested node-level parallelism would only add overhead.
	opt, err := optimizer.New(lib, optimizer.Options{Policy: opts.Policy, SkipPlacement: true, Workers: 1})
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	evaluate := func(t *plan.Node) (int64, error) {
		evalStart := tel.Now()
		res, err := opt.Run(t)
		tel.Record(telemetry.HistAnnealNs, int64(tel.Now()-evalStart))
		if err != nil {
			return 0, err
		}
		return res.Best.Area(), nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	current := Clone(tree)
	currentArea, err := evaluate(current)
	if err != nil {
		return nil, err
	}
	result := &Result{
		Best:        Clone(current),
		BestArea:    currentArea,
		InitialArea: currentArea,
	}
	t0 := opts.InitialTemp * float64(currentArea)
	t1 := opts.FinalTemp * float64(currentArea)
	cool := math.Pow(t1/t0, 1/float64(opts.Iterations))
	temp := t0

	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Speculative batched annealing: propose up to `workers` candidates
	// sequentially from the single rng (so the mutation stream depends only
	// on the seed and worker count), evaluate them concurrently, then run
	// the Metropolis acceptance test sequentially in proposal order. The
	// first acceptance invalidates the rest of the batch — those candidates
	// were derived from the superseded topology — so they are discarded:
	// their evaluations still count as Proposed (the work was done) but
	// they take no acceptance test, draw no rng, and their errors are
	// irrelevant. Every slot consumes one iteration and one cooling step,
	// exactly as in the sequential schedule. With workers == 1 each batch
	// is a single candidate and the loop is the classic annealer verbatim.
	type slot struct {
		candidate *plan.Node
		changed   bool
		area      int64
		err       error
	}
	for iter := 0; iter < opts.Iterations; {
		n := workers
		if rem := opts.Iterations - iter; n > rem {
			n = rem
		}
		batchStart := tel.Now()
		batchTemp := temp
		batch := make([]slot, n)
		for i := range batch {
			c := Clone(current)
			batch[i] = slot{candidate: c, changed: Mutate(c, rng)}
		}
		var wg sync.WaitGroup
		for i := range batch {
			if !batch[i].changed {
				continue
			}
			wg.Add(1)
			go func(s *slot) {
				defer wg.Done()
				s.area, s.err = evaluate(s.candidate)
			}(&batch[i])
		}
		wg.Wait()
		accepted := false
		var wasted int64
		for i := range batch {
			s := &batch[i]
			if s.changed {
				result.Proposed++
				tel.Inc(telemetry.CtrMovesProposed)
			}
			if s.changed && accepted {
				// Stale speculation: evaluated against a superseded topology.
				wasted++
			}
			if s.changed && !accepted {
				if s.err != nil {
					return nil, fmt.Errorf("search: evaluating candidate: %w", s.err)
				}
				delta := float64(s.area - currentArea)
				if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
					accepted = true
					result.Accepted++
					tel.Inc(telemetry.CtrMovesAccepted)
					current, currentArea = s.candidate, s.area
					if s.area < result.BestArea {
						result.Improved++
						tel.Inc(telemetry.CtrMovesImproved)
						result.Best = Clone(s.candidate)
						result.BestArea = s.area
					}
				}
			}
			temp *= cool
			iter++
		}
		tel.Add(telemetry.CtrBatchWaste, wasted)
		tel.RecordSpan(telemetry.Span{
			Name: "batch", Cat: "anneal",
			Start: batchStart, Dur: tel.Now() - batchStart,
			Args: map[string]int64{
				"candidates": int64(n),
				"temp":       int64(batchTemp),
				"wasted":     wasted,
			},
		})
	}
	return result, nil
}

// Clone deep-copies a floorplan tree.
func Clone(n *plan.Node) *plan.Node {
	if n == nil {
		return nil
	}
	out := &plan.Node{Kind: n.Kind, Module: n.Module, CCW: n.CCW, Name: n.Name}
	for _, c := range n.Children {
		out.Children = append(out.Children, Clone(c))
	}
	return out
}

// Mutate applies one random topology move in place and reports whether
// anything changed. The module multiset is always preserved.
func Mutate(tree *plan.Node, rng *rand.Rand) bool {
	switch rng.Intn(4) {
	case 0:
		return swapLeafModules(tree, rng)
	case 1:
		return flipSlice(tree, rng)
	case 2:
		return perturbWheel(tree, rng)
	default:
		return swapSubtrees(tree, rng)
	}
}

func swapLeafModules(tree *plan.Node, rng *rand.Rand) bool {
	leaves := tree.Leaves()
	if len(leaves) < 2 {
		return false
	}
	i := rng.Intn(len(leaves))
	j := rng.Intn(len(leaves) - 1)
	if j >= i {
		j++
	}
	leaves[i].Module, leaves[j].Module = leaves[j].Module, leaves[i].Module
	return true
}

func flipSlice(tree *plan.Node, rng *rand.Rand) bool {
	var slices []*plan.Node
	walk(tree, func(n *plan.Node) {
		if n.Kind == plan.HSlice || n.Kind == plan.VSlice {
			slices = append(slices, n)
		}
	})
	if len(slices) == 0 {
		return false
	}
	n := slices[rng.Intn(len(slices))]
	if n.Kind == plan.HSlice {
		n.Kind = plan.VSlice
	} else {
		n.Kind = plan.HSlice
	}
	return true
}

func perturbWheel(tree *plan.Node, rng *rand.Rand) bool {
	var wheels []*plan.Node
	walk(tree, func(n *plan.Node) {
		if n.Kind == plan.Wheel {
			wheels = append(wheels, n)
		}
	})
	if len(wheels) == 0 {
		return false
	}
	n := wheels[rng.Intn(len(wheels))]
	if rng.Intn(2) == 0 {
		n.CCW = !n.CCW
		return true
	}
	// Rotate the four arms [NW, NE, SE, SW]; the center stays.
	c := n.Children
	c[0], c[1], c[2], c[3] = c[3], c[0], c[1], c[2]
	return true
}

func swapSubtrees(tree *plan.Node, rng *rand.Rand) bool {
	// Collect child slots (parent, index) so swaps rewire the tree.
	type slot struct {
		parent *plan.Node
		idx    int
	}
	var slots []slot
	walk(tree, func(n *plan.Node) {
		for i := range n.Children {
			slots = append(slots, slot{parent: n, idx: i})
		}
	})
	if len(slots) < 2 {
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		a := slots[rng.Intn(len(slots))]
		b := slots[rng.Intn(len(slots))]
		sa := a.parent.Children[a.idx]
		sb := b.parent.Children[b.idx]
		if sa == sb || isAncestor(sa, sb) || isAncestor(sb, sa) {
			continue
		}
		a.parent.Children[a.idx], b.parent.Children[b.idx] = sb, sa
		return true
	}
	return false
}

func isAncestor(a, b *plan.Node) bool {
	if a == nil {
		return false
	}
	for _, c := range a.Children {
		if c == b || isAncestor(c, b) {
			return true
		}
	}
	return false
}

func walk(n *plan.Node, fn func(*plan.Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		walk(c, fn)
	}
}
