// Package oracle provides an independent reference evaluator for floorplan
// area optimization, used to cross-validate the production optimizer.
//
// For a FIXED choice of one implementation per module, the minimal
// enveloping rectangle of a floorplan tree follows directly from the
// geometry definitions:
//
//   - a vertical slice sums widths and maxes heights (transposed for
//     horizontal slices);
//
//   - a clockwise pinwheel with cut lines x1 <= x2, y1 <= y2 has
//     independent width and height programs, each solved greedily:
//
//     x1 = w_nw                     y1 = h_sw
//     x2 = max(x1 + w_c, w_sw)      y2 = max(y1 + h_c, h_se)
//     W  = max(x2 + w_se, x1+w_ne)  H  = max(y2 + h_ne, y1 + h_nw)
//
// Crucially, this code shares no formulas with package combine (which
// assembles the pinwheel through L-shaped partial blocks); agreement
// between the two on every input is a strong correctness check, exercised
// by the optimizer's tests.
//
// BruteMin enumerates every implementation assignment, so it is only
// usable on small instances — exactly what a test oracle is for.
package oracle

import (
	"fmt"

	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

// Assignment fixes one implementation per module name.
type Assignment map[string]shape.RImpl

// Evaluate returns the minimal enveloping rectangle of the tree under a
// fixed assignment.
func Evaluate(tree *plan.Node, a Assignment) (shape.RImpl, error) {
	if err := tree.Validate(); err != nil {
		return shape.RImpl{}, err
	}
	return eval(tree, a)
}

func eval(n *plan.Node, a Assignment) (shape.RImpl, error) {
	switch n.Kind {
	case plan.Leaf:
		impl, ok := a[n.Module]
		if !ok {
			return shape.RImpl{}, fmt.Errorf("oracle: module %q not assigned", n.Module)
		}
		if !impl.Valid() {
			return shape.RImpl{}, fmt.Errorf("oracle: module %q assigned invalid %v", n.Module, impl)
		}
		return impl, nil
	case plan.VSlice:
		var w, h int64
		for _, c := range n.Children {
			r, err := eval(c, a)
			if err != nil {
				return shape.RImpl{}, err
			}
			w += r.W
			if r.H > h {
				h = r.H
			}
		}
		return shape.RImpl{W: w, H: h}, nil
	case plan.HSlice:
		var w, h int64
		for _, c := range n.Children {
			r, err := eval(c, a)
			if err != nil {
				return shape.RImpl{}, err
			}
			h += r.H
			if r.W > w {
				w = r.W
			}
		}
		return shape.RImpl{W: w, H: h}, nil
	case plan.Wheel:
		nw, err := eval(n.Children[0], a)
		if err != nil {
			return shape.RImpl{}, err
		}
		ne, err := eval(n.Children[1], a)
		if err != nil {
			return shape.RImpl{}, err
		}
		se, err := eval(n.Children[2], a)
		if err != nil {
			return shape.RImpl{}, err
		}
		sw, err := eval(n.Children[3], a)
		if err != nil {
			return shape.RImpl{}, err
		}
		c, err := eval(n.Children[4], a)
		if err != nil {
			return shape.RImpl{}, err
		}
		if n.CCW {
			// The mirror image: exchange the roles across the vertical
			// axis; child shapes are mirror-invariant.
			nw, ne = ne, nw
			sw, se = se, sw
		}
		// Width program: x1 <= x2 <= W.
		x1 := nw.W
		x2 := max64(x1+c.W, sw.W)
		w := max64(x2+se.W, x1+ne.W)
		// Height program: y1 <= y2 <= H.
		y1 := sw.H
		y2 := max64(y1+c.H, se.H)
		h := max64(y2+ne.H, y1+nw.H)
		return shape.RImpl{W: w, H: h}, nil
	default:
		return shape.RImpl{}, fmt.Errorf("oracle: unknown node kind %v", n.Kind)
	}
}

// BruteMin returns the minimum envelope area over every combination of
// module implementations, together with one minimizing assignment. The
// library must cover every leaf. Cost is the product of list lengths —
// keep instances tiny.
func BruteMin(tree *plan.Node, lib map[string]shape.RList) (int64, Assignment, error) {
	if err := tree.Validate(); err != nil {
		return 0, nil, err
	}
	leaves := tree.Leaves()
	names := make([]string, len(leaves))
	seen := make(map[string]bool, len(leaves))
	for i, l := range leaves {
		names[i] = l.Module
		if seen[l.Module] {
			// The optimizer lets two leaves of the same module choose
			// different implementations; a per-name assignment cannot
			// express that, so reject rather than silently diverge.
			return 0, nil, fmt.Errorf("oracle: module %q appears at several leaves", l.Module)
		}
		seen[l.Module] = true
		if len(lib[l.Module]) == 0 {
			return 0, nil, fmt.Errorf("oracle: module %q missing from library", l.Module)
		}
	}
	bestArea := int64(-1)
	var bestAssign Assignment
	current := make(Assignment, len(names))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(names) {
			r, err := eval(tree, current)
			if err != nil {
				return err
			}
			if bestArea < 0 || r.Area() < bestArea {
				bestArea = r.Area()
				bestAssign = make(Assignment, len(current))
				for k, v := range current {
					bestAssign[k] = v
				}
			}
			return nil
		}
		for _, impl := range lib[names[i]] {
			current[names[i]] = impl
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, nil, err
	}
	return bestArea, bestAssign, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
