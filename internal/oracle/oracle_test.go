package oracle

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

func TestEvaluateSlices(t *testing.T) {
	a := Assignment{"a": {W: 4, H: 2}, "b": {W: 3, H: 5}}
	v := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	r, err := Evaluate(v, a)
	if err != nil {
		t.Fatal(err)
	}
	if r != (shape.RImpl{W: 7, H: 5}) {
		t.Fatalf("VSlice = %v", r)
	}
	h := plan.NewHSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	r, err = Evaluate(h, a)
	if err != nil {
		t.Fatal(err)
	}
	if r != (shape.RImpl{W: 4, H: 7}) {
		t.Fatalf("HSlice = %v", r)
	}
}

func TestEvaluatePerfectPinwheel(t *testing.T) {
	a := Assignment{
		"nw": {W: 4, H: 7}, "ne": {W: 6, H: 4}, "se": {W: 3, H: 6},
		"sw": {W: 7, H: 3}, "c": {W: 3, H: 3},
	}
	wheel := plan.NewWheel(plan.NewLeaf("nw"), plan.NewLeaf("ne"), plan.NewLeaf("se"), plan.NewLeaf("sw"), plan.NewLeaf("c"))
	r, err := Evaluate(wheel, a)
	if err != nil {
		t.Fatal(err)
	}
	if r != (shape.RImpl{W: 10, H: 10}) {
		t.Fatalf("pinwheel = %v", r)
	}
	// The mirrored wheel with mirrored roles has the same envelope.
	ccw := plan.NewCCWWheel(plan.NewLeaf("ne"), plan.NewLeaf("nw"), plan.NewLeaf("sw"), plan.NewLeaf("se"), plan.NewLeaf("c"))
	r2, err := Evaluate(ccw, a)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Fatalf("CCW = %v, want %v", r2, r)
	}
}

func TestEvaluateErrors(t *testing.T) {
	tree := plan.NewLeaf("x")
	if _, err := Evaluate(tree, Assignment{}); err == nil {
		t.Error("missing assignment accepted")
	}
	if _, err := Evaluate(tree, Assignment{"x": {W: 0, H: 1}}); err == nil {
		t.Error("invalid implementation accepted")
	}
	if _, err := Evaluate(&plan.Node{Kind: plan.Leaf}, nil); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestBruteMinRejectsSharedModules(t *testing.T) {
	tree := plan.NewVSlice(plan.NewLeaf("m"), plan.NewLeaf("m"))
	lib := map[string]shape.RList{"m": {{W: 1, H: 1}}}
	if _, _, err := BruteMin(tree, lib); err == nil {
		t.Error("shared module accepted")
	}
}

func TestBruteMinMissingModule(t *testing.T) {
	tree := plan.NewLeaf("m")
	if _, _, err := BruteMin(tree, nil); err == nil {
		t.Error("missing library accepted")
	}
}

func TestBruteMinSimple(t *testing.T) {
	tree := plan.NewVSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	lib := map[string]shape.RList{
		"a": shape.MustRList([]shape.RImpl{{W: 4, H: 2}, {W: 2, H: 4}}),
		"b": shape.MustRList([]shape.RImpl{{W: 3, H: 3}}),
	}
	area, assign, err := BruteMin(tree, lib)
	if err != nil {
		t.Fatal(err)
	}
	if area != 20 {
		t.Fatalf("area = %d, want 20", area)
	}
	if assign["a"] != (shape.RImpl{W: 2, H: 4}) {
		t.Fatalf("assignment = %v", assign)
	}
}

// TestEvaluateMonotone: growing any module implementation never shrinks the
// envelope — the upward-closure property the whole bottom-up machinery
// relies on, checked against the independent evaluator.
func TestEvaluateMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		tree, err := gen.RandomTree(rng, 2+rng.Intn(10), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		assign := Assignment{}
		for _, l := range tree.Leaves() {
			assign[l.Module] = shape.RImpl{W: 1 + rng.Int63n(20), H: 1 + rng.Int63n(20)}
		}
		base, err := Evaluate(tree, assign)
		if err != nil {
			t.Fatal(err)
		}
		// Grow one random module.
		leaves := tree.Leaves()
		pick := leaves[rng.Intn(len(leaves))].Module
		grown := Assignment{}
		for k, v := range assign {
			grown[k] = v
		}
		grown[pick] = shape.RImpl{W: assign[pick].W + rng.Int63n(5), H: assign[pick].H + rng.Int63n(5)}
		bigger, err := Evaluate(tree, grown)
		if err != nil {
			t.Fatal(err)
		}
		if bigger.W < base.W || bigger.H < base.H {
			t.Fatalf("envelope shrank from %v to %v after growing %s", base, bigger, pick)
		}
	}
}
